open Vstamp_core
open Vstamp_sim

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

(* --- Rng --- *)

let test_rng_deterministic () =
  let draws seed =
    let rec go rng k acc =
      if k = 0 then List.rev acc
      else
        let x, rng = Rng.int rng 1000 in
        go rng (k - 1) (x :: acc)
    in
    go (Rng.make seed) 20 []
  in
  Alcotest.(check (list int)) "same seed same draws" (draws 42) (draws 42);
  check_bool "different seeds differ" true (draws 42 <> draws 43)

let test_rng_bounds () =
  let rec go rng k =
    if k > 0 then begin
      let x, rng = Rng.int rng 7 in
      check_bool "in range" true (x >= 0 && x < 7);
      let f, rng = Rng.float rng in
      check_bool "float in [0,1)" true (f >= 0.0 && f < 1.0);
      go rng (k - 1)
    end
  in
  go (Rng.make 9) 200;
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int (Rng.make 1) 0))

let test_rng_pick () =
  let x, _ = Rng.pick (Rng.make 5) [ "a"; "b"; "c" ] in
  check_bool "picks a member" true (List.mem x [ "a"; "b"; "c" ]);
  let w, _ = Rng.pick_weighted (Rng.make 5) [ (0, "never"); (10, "always") ] in
  Alcotest.(check string) "weight zero never drawn" "always" w

let test_rng_shuffle () =
  let xs = List.init 10 Fun.id in
  let ys, _ = Rng.shuffle (Rng.make 3) xs in
  Alcotest.(check (list int)) "permutation" xs (List.sort compare ys)

let test_rng_split () =
  let a, b = Rng.split (Rng.make 1) in
  let xa, _ = Rng.int a 1000000 and xb, _ = Rng.int b 1000000 in
  check_bool "split streams differ" true (xa <> xb)

(* --- Stats --- *)

let test_stats () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "mean empty" 0.0 (Stats.mean []);
  check_int "max" 9 (Stats.max_int_list [ 3; 9; 1 ]);
  check_int "min" 1 (Stats.min_int_list [ 3; 9; 1 ]);
  check_int "sum" 13 (Stats.sum_int [ 3; 9; 1 ]);
  check_int "p50" 2 (Stats.percentile 50.0 [ 3; 1; 2 ]);
  check_int "p100" 3 (Stats.percentile 100.0 [ 3; 1; 2 ]);
  Alcotest.(check (float 1e-9)) "stddev" 1.0 (Stats.stddev [ 1.0; 2.0; 3.0 ])

let test_stats_table () =
  let buf = Buffer.create 64 in
  let ppf = Format.formatter_of_buffer buf in
  Stats.pp_table ppf ~header:[ "a"; "bb" ] [ [ "x"; "y" ]; [ "long"; "z" ] ];
  Format.pp_print_flush ppf ();
  check_bool "renders" true (String.length (Buffer.contents buf) > 0)

(* --- Partition --- *)

let test_partition_mirror () =
  let p = Partition.initial in
  let p = Partition.apply p (Execution.Fork 0) in
  Alcotest.(check (list int)) "child inherits group" [ 0; 0 ] (Partition.groups p);
  let p = Partition.regroup p [ 0; 1 ] in
  let p = Partition.apply p (Execution.Fork 1) in
  Alcotest.(check (list int)) "fork in group 1" [ 0; 1; 1 ] (Partition.groups p);
  check_bool "cross-group join forbidden" false
    (Partition.op_allowed p (Execution.Join (0, 1)));
  check_bool "intra-group join allowed" true
    (Partition.op_allowed p (Execution.Join (1, 2)));
  let p = Partition.apply p (Execution.Join (1, 2)) in
  Alcotest.(check (list int)) "join keeps group" [ 0; 1 ] (Partition.groups p)

let test_partition_helpers () =
  let p = Partition.of_groups [ 0; 1; 0; 2 ] in
  Alcotest.(check (list int)) "positions_in 0" [ 0; 2 ] (Partition.positions_in p 0);
  check_int "group_count" 3 (Partition.group_count p);
  Alcotest.(check (list int)) "merge_all" [ 0; 0; 0; 0 ]
    (Partition.groups (Partition.merge_all p));
  Alcotest.(check (list int)) "round_robin" [ 0; 1; 0; 1; 0 ]
    (Partition.round_robin ~groups:2 5);
  Alcotest.check_raises "regroup arity"
    (Invalid_argument "Partition.regroup: arity mismatch") (fun () ->
      ignore (Partition.regroup p [ 0 ]))

let test_partition_alignment () =
  (* group list stays as long as the frontier for any trace *)
  let ops = Workload.uniform ~seed:11 ~n_ops:60 () in
  let p =
    List.fold_left
      (fun p op ->
        let p = Partition.apply p op in
        p)
      Partition.initial ops
  in
  check_int "aligned size" (Execution.final_frontier_size ops) (Partition.size p)

(* --- Workload validity --- *)

let workload_cases =
  [
    ("uniform", Workload.uniform ~seed:3 ~n_ops:200 ());
    ("deep_fork", Workload.deep_fork ~depth:30 ());
    ("deep_fork no update", Workload.deep_fork ~update_between:false ~depth:30 ());
    ("sync_star", Workload.sync_star ~peers:5 ~rounds:6 ());
    ("sync_star multi-update", Workload.sync_star ~updates_per_round:3 ~peers:3 ~rounds:4 ());
    ("gossip", Workload.gossip ~seed:3 ~replicas:6 ~rounds:20 ());
    ("churn", Workload.churn ~seed:3 ~target:6 ~n_ops:200 ());
    ( "partitioned",
      Workload.partitioned ~seed:3 ~replicas:8 ~groups:2 ~phases:4
        ~syncs_per_phase:5 () );
  ]

let test_workloads_valid () =
  List.iter
    (fun (name, ops) ->
      check_bool (name ^ " valid") true (Execution.trace_valid ops);
      check_bool (name ^ " nonempty") true (ops <> []))
    workload_cases

let test_workloads_deterministic () =
  Alcotest.(check bool)
    "same seed, same trace" true
    (Workload.uniform ~seed:5 ~n_ops:100 () = Workload.uniform ~seed:5 ~n_ops:100 ());
  Alcotest.(check bool)
    "different seed, different trace" true
    (Workload.uniform ~seed:5 ~n_ops:100 () <> Workload.uniform ~seed:6 ~n_ops:100 ())

let test_sync_star_shape () =
  let ops = Workload.sync_star ~peers:3 ~rounds:2 () in
  (* 3 forks + 2 rounds * 3 peers * (1 update + join + fork) *)
  check_int "op count" (3 + (2 * 3 * 3)) (List.length ops);
  check_int "frontier stays peers+1" 4 (Execution.final_frontier_size ops)

let test_gossip_fixed_frontier () =
  let ops = Workload.gossip ~seed:1 ~replicas:5 ~rounds:10 () in
  check_int "frontier fixed" 5 (Execution.final_frontier_size ops)

let test_deep_fork_shape () =
  let ops = Workload.deep_fork ~depth:10 () in
  check_int "frontier grows" 11 (Execution.final_frontier_size ops)

let test_all_named () =
  List.iter
    (fun (name, ops) ->
      check_bool (name ^ " valid") true (Execution.trace_valid ops))
    (Workload.all_named ~n_ops:120)

let test_partitioned_respects_groups () =
  (* during partition phases the generated joins stay within label
     groups; verify by mirroring the label/group bookkeeping *)
  let groups = 2 in
  let ops =
    Workload.partitioned ~seed:5 ~replicas:6 ~groups ~phases:3
      ~syncs_per_phase:6 ()
  in
  (* labels mirror positions exactly as the generator builds them *)
  let labels = ref [ 0 ] and fresh = ref 1 in
  let apply op =
    match op with
    | Execution.Update _ -> ()
    | Execution.Fork i ->
        let l = List.nth !labels i in
        ignore l;
        labels :=
          List.concat
            (List.mapi
               (fun k x -> if k = i then [ x; !fresh ] else [ x ])
               !labels);
        incr fresh
    | Execution.Join (i, j) ->
        let li = List.nth !labels i in
        let lo = min i j in
        let kept = List.filteri (fun k _ -> k <> i && k <> j) !labels in
        let rec insert pos acc = function
          | rest when pos = lo -> List.rev_append acc (li :: rest)
          | [] -> List.rev (li :: acc)
          | x :: rest -> insert (pos + 1) (x :: acc) rest
        in
        labels := insert 0 [] kept
  in
  (* joins from syncs pair same-group labels during partition phases;
     heal phases may cross.  We conservatively check that the fraction of
     cross-group joins is positive only because heal phases exist, and
     that at least one intra-group join occurred. *)
  let intra = ref 0 and cross = ref 0 in
  List.iter
    (fun op ->
      (match op with
      | Execution.Join (i, j) ->
          let gi = List.nth !labels i mod groups
          and gj = List.nth !labels j mod groups in
          if gi = gj then incr intra else incr cross
      | _ -> ());
      apply op)
    ops;
  check_bool "intra-group joins happen" true (!intra > 0)

(* --- Trackers and System --- *)

let test_tracker_names () =
  let names = List.map Tracker.name Tracker.all in
  check_bool "distinct names" true
    (List.length names = List.length (List.sort_uniq compare names));
  check_bool "stamps present" true (List.mem "stamps" names)

(* stamps_nonreducing is deliberately absent: without Section 6
   reduction id widths compound across syncs (each join sums them, each
   fork copies them), which is exponential on sync-heavy workloads — the
   very pathology reduction removes.  It gets its own small-trace test. *)
let exact_trackers =
  [
    Tracker.stamps;
    Tracker.stamps_list;
    Tracker.version_vectors;
    Tracker.dynamic_vv;
    Tracker.histories;
  ]

let test_exact_trackers_accurate () =
  List.iter
    (fun (wname, ops) ->
      List.iter
        (fun t ->
          let r = System.run t ops in
          match r.System.accuracy with
          | None -> Alcotest.fail "oracle expected"
          | Some a ->
              check_bool
                (Printf.sprintf "%s on %s exact" r.System.tracker wname)
                true (System.perfect a))
        exact_trackers)
    workload_cases

let test_plausible_one_sided () =
  (* plausible clocks may invent orderings but never lose one *)
  List.iter
    (fun (wname, ops) ->
      List.iter
        (fun size ->
          let r = System.run (Tracker.plausible size) ops in
          match r.System.accuracy with
          | None -> Alcotest.fail "oracle expected"
          | Some a ->
              check_int
                (Printf.sprintf "plausible-%d on %s never misses" size wname)
                0 a.System.missed_orderings)
        [ 2; 4; 8 ])
    workload_cases

let test_plausible_actually_errs () =
  (* with one slot, two concurrent updates fold onto the same counter and
     the truly-concurrent pair looks equal *)
  let ops = [ Execution.Fork 0; Update 0; Update 1 ] in
  let r = System.run (Tracker.plausible 1) ops in
  match r.System.accuracy with
  | Some a -> check_bool "spurious orderings exist" true (a.System.spurious_orderings > 0)
  | None -> Alcotest.fail "oracle expected"

let test_system_counts () =
  let ops = [ Execution.Update 0; Fork 0; Join (0, 1); Fork 0; Update 1 ] in
  let r = System.run Tracker.stamps ops in
  check_int "ops" 5 r.System.ops;
  check_int "updates" 2 r.System.updates;
  check_int "forks" 2 r.System.forks;
  check_int "joins" 1 r.System.joins;
  check_int "frontier" 2 r.System.final.System.frontier

let test_system_no_oracle () =
  let r = System.run ~with_oracle:false Tracker.stamps [ Execution.Fork 0 ] in
  check_bool "no accuracy" true (r.System.accuracy = None)

let test_run_all () =
  let rs = System.run_all Tracker.all (Workload.uniform ~seed:2 ~n_ops:30 ~max_frontier:6 ()) in
  check_int "one result per tracker" (List.length Tracker.all) (List.length rs);
  List.iter
    (fun r ->
      check_bool "rows render" true (List.length (System.to_row r) = List.length System.header))
    rs

let test_nonreducing_exact_small () =
  let ops = Workload.uniform ~seed:4 ~n_ops:40 ~max_frontier:6 () in
  match (System.run Tracker.stamps_nonreducing ops).System.accuracy with
  | Some a -> check_bool "non-reducing exact on small trace" true (System.perfect a)
  | None -> Alcotest.fail "oracle expected"

(* Reduction fires when the frontier narrows (the paper: "a join
   decreases the number of elements in a frontier, leading to smaller
   identities"), not during steady-state syncs which preserve it. *)
let test_reduction_collapses_merges () =
  let grow = Workload.deep_fork ~depth:6 () in
  let merge = List.init 6 (fun _ -> Execution.Join (0, 1)) in
  let ops = grow @ merge in
  let red = System.run ~with_oracle:false Tracker.stamps ops in
  let raw = System.run ~with_oracle:false Tracker.stamps_nonreducing ops in
  check_int "full merge collapses to the seed" 0
    red.System.final.System.total_bits;
  check_bool "non-reducing keeps the debris" true
    (raw.System.final.System.total_bits > 0);
  match Execution.Run_stamps.run ops with
  | [ s ] -> check_bool "merged stamp is the seed" true (Stamp.equal s Stamp.seed)
  | _ -> Alcotest.fail "single survivor expected"

let test_reduction_smaller_under_churn () =
  let ops = Workload.churn ~seed:3 ~target:5 ~n_ops:120 () in
  let red = System.run ~with_oracle:false Tracker.stamps ops in
  let raw = System.run ~with_oracle:false Tracker.stamps_nonreducing ops in
  check_bool "reduction shrinks churn frontiers" true
    (red.System.final.System.total_bits < raw.System.final.System.total_bits)

(* --- Scenarios: the paper's figures --- *)

let test_fig1 () =
  let f = Scenario.Fig1.run () in
  check_bool "matches the paper" true (Scenario.Fig1.matches_paper f);
  check_int "three timelines" 3 (List.length f.Scenario.Fig1.timeline)

let test_fig1_relations () =
  let f = Scenario.Fig1.run () in
  List.iter
    (fun (x, y, r) ->
      match (x, y) with
      | "B", "C" ->
          Alcotest.(check string) "B equivalent C" "equal" (Relation.to_string r)
      | _ ->
          Alcotest.(check string)
            (x ^ " inconsistent " ^ y)
            "concurrent" (Relation.to_string r))
    f.Scenario.Fig1.relations

let test_fig4 () =
  let f = Scenario.Fig4.run () in
  check_bool "matches the paper" true (Scenario.Fig4.matches_paper f);
  check_int "reduction chain length" 3 (List.length f.Scenario.Fig4.g_reduction_chain);
  check_bool "trace is the figure's trace" true
    (Execution.trace_valid Scenario.Fig4.trace);
  List.iter
    (fun (x, y, r) ->
      match (x, y) with
      | "d1", "e1" ->
          Alcotest.(check string) "d1 ~ e1" "equal" (Relation.to_string r)
      | "d1", _ ->
          Alcotest.(check string) ("d1 obsolete vs " ^ y) "dominated"
            (Relation.to_string r)
      | _ -> ())
    (Scenario.Fig4.frontier_queries f)

let test_fig3 () =
  let f = Scenario.Fig3.run () in
  check_bool "fork/join encoding induces the vv order" true
    (Scenario.Fig3.encodings_agree f)

let test_frontier_sizes () =
  Alcotest.(check (list int))
    "figure 2 frontier evolution"
    [ 1; 1; 2; 3; 3; 3; 2; 1 ]
    (Scenario.Frontiers.frontier_sizes ())

(* --- property: accuracy of exact trackers on random traces --- *)

let prop_exact_on_random =
  QCheck2.Test.make ~name:"stamps/vv/dvv exact on random traces" ~count:100
    ~print:Vstamp_test_support.Gen.trace_print
    (Vstamp_test_support.Gen.trace ())
    (fun ops ->
      List.for_all
        (fun t ->
          match (System.run t ops).System.accuracy with
          | Some a -> System.perfect a
          | None -> false)
        [ Tracker.stamps; Tracker.version_vectors; Tracker.dynamic_vv ])

let prop_plausible_one_sided =
  QCheck2.Test.make ~name:"plausible clocks never miss an ordering"
    ~count:100 ~print:Vstamp_test_support.Gen.trace_print
    (Vstamp_test_support.Gen.trace ())
    (fun ops ->
      List.for_all
        (fun size ->
          match (System.run (Tracker.plausible size) ops).System.accuracy with
          | Some a -> a.System.missed_orderings = 0
          | None -> false)
        [ 1; 3; 5 ])

(* --- Weather --- *)

let test_weather_deterministic () =
  let w = Weather.make ~seed:7 ~epoch:4 ~severity:0.8 () in
  let w' = Weather.make ~seed:7 ~epoch:4 ~severity:0.8 () in
  for step = 0 to 20 do
    Alcotest.(check (array int))
      "same seed same grouping"
      (Weather.groups_at w ~step ~n:5)
      (Weather.groups_at w' ~step ~n:5)
  done;
  (* groupings are constant within an epoch *)
  Alcotest.(check (array int))
    "epoch-stable"
    (Weather.groups_at w ~step:0 ~n:5)
    (Weather.groups_at w ~step:3 ~n:5)

let test_weather_severity_extremes () =
  let calm = Weather.make ~severity:0. () in
  for step = 0 to 30 do
    check_int "severity 0 fully connected" 1
      (Weather.group_count calm ~step ~n:6);
    check_bool "any pair allowed" true (Weather.allowed calm ~step ~n:6 0 5)
  done;
  let storm = Weather.make ~seed:3 ~epoch:2 ~severity:1.0 () in
  let fragmented = ref false in
  for step = 0 to 30 do
    check_bool "reflexive under any weather" true
      (Weather.allowed storm ~step ~n:6 2 2);
    if Weather.group_count storm ~step ~n:6 > 1 then fragmented := true
  done;
  check_bool "severity 1 fragments" true !fragmented

let test_weather_validation () =
  Alcotest.check_raises "severity out of range"
    (Invalid_argument "Weather.make: severity must be in [0, 1]") (fun () ->
      ignore (Weather.make ~severity:1.5 ()));
  Alcotest.check_raises "bad epoch"
    (Invalid_argument "Weather.make: epoch must be >= 1") (fun () ->
      ignore (Weather.make ~epoch:0 ~severity:0.5 ()))

(* --- Lag scenario --- *)

let lag_cfg =
  { Lag.default_config with Lag.severity = 0.8; rounds = 10; seed = 42 }

let test_lag_converges () =
  let r = Lag.run lag_cfg Tracker.stamps in
  check_bool "converged after heal" true r.Lag.converged;
  check_bool "convergence measured" true (r.Lag.convergence <> None);
  check_bool "final matrix all-equal" true
    (Vstamp_obs.Convergence.converged r.Lag.final);
  check_int "frontier size" 3 r.Lag.replicas;
  check_bool "weather blocked some syncs" true (r.Lag.blocked_syncs > 0);
  check_bool "divergence was observed" true (r.Lag.peak_width > 1)

let test_lag_deterministic () =
  let strip r = { r with Lag.convergence = None } in
  let a = strip (Lag.run lag_cfg Tracker.stamps) in
  let b = strip (Lag.run lag_cfg Tracker.stamps) in
  check_bool "identical modulo wall clock" true (a = b);
  let c = strip (Lag.run { lag_cfg with Lag.seed = 43 } Tracker.stamps) in
  check_bool "seed matters" true (a <> c)

let test_lag_delta_ledger () =
  let r = Lag.run lag_cfg Tracker.stamps in
  check_bool "ships something" true (r.Lag.shipped_bytes > 0);
  check_bool "minimal never exceeds shipped" true
    (r.Lag.minimal_bytes <= r.Lag.shipped_bytes);
  check_int "redundant = shipped - minimal"
    (r.Lag.shipped_bytes - r.Lag.minimal_bytes)
    r.Lag.redundant_bytes;
  check_bool "efficiency in (0, 1]" true
    (r.Lag.delta_efficiency > 0. && r.Lag.delta_efficiency <= 1.)

let test_lag_vv_agrees () =
  (* the same weather drives both mechanisms to the same oracle view *)
  let a = Lag.run lag_cfg Tracker.stamps in
  let b = Lag.run lag_cfg Tracker.version_vectors in
  check_bool "vv converges too" true b.Lag.converged;
  check_int "same update schedule" a.Lag.updates b.Lag.updates;
  check_int "same peak lag (oracle-side)" a.Lag.peak_lag b.Lag.peak_lag

let test_lag_publishes () =
  let registry = Vstamp_obs.Registry.create () in
  let rounds = ref 0 in
  let r =
    Lag.run ~registry ~on_round:(fun _ -> incr rounds) lag_cfg Tracker.stamps
  in
  check_bool "on_round fired per observation" true
    (!rounds >= lag_cfg.Lag.rounds);
  let snap = Vstamp_obs.Registry.snapshot registry in
  let mem name = List.mem_assoc name snap in
  check_bool "replica lag gauge" true (mem "vstamp_replica_lag{replica=\"0\"}");
  check_bool "pairs gauge" true
    (mem "vstamp_divergence_pairs{kind=\"concurrent\"}");
  check_bool "width gauge" true (mem "vstamp_frontier_width");
  check_bool "shipped counter" true (mem "sim_sync_shipped_bytes_total");
  let count name =
    match List.assoc name snap with
    | Vstamp_obs.Registry.Counter c -> Vstamp_obs.Metric.count c
    | _ -> Alcotest.failf "%s is not a counter" name
  in
  check_int "published totals match the result"
    r.Lag.shipped_bytes
    (count "sim_sync_shipped_bytes_total");
  check_int "published minimal matches"
    r.Lag.minimal_bytes
    (count "sim_sync_minimal_bytes_total")

let test_lag_validation () =
  Alcotest.check_raises "needs 2 replicas"
    (Invalid_argument "Lag.run: need at least 2 replicas") (fun () ->
      ignore (Lag.run { lag_cfg with Lag.replicas = 1 } Tracker.stamps))

let () =
  Alcotest.run "sim"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "pick" `Quick test_rng_pick;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle;
          Alcotest.test_case "split" `Quick test_rng_split;
        ] );
      ( "stats",
        [
          Alcotest.test_case "aggregates" `Quick test_stats;
          Alcotest.test_case "table" `Quick test_stats_table;
        ] );
      ( "partition",
        [
          Alcotest.test_case "mirror" `Quick test_partition_mirror;
          Alcotest.test_case "helpers" `Quick test_partition_helpers;
          Alcotest.test_case "alignment" `Quick test_partition_alignment;
        ] );
      ( "workload",
        [
          Alcotest.test_case "all valid" `Quick test_workloads_valid;
          Alcotest.test_case "deterministic" `Quick test_workloads_deterministic;
          Alcotest.test_case "sync_star shape" `Quick test_sync_star_shape;
          Alcotest.test_case "gossip fixed frontier" `Quick
            test_gossip_fixed_frontier;
          Alcotest.test_case "deep_fork shape" `Quick test_deep_fork_shape;
          Alcotest.test_case "all_named" `Quick test_all_named;
          Alcotest.test_case "partitioned groups" `Quick
            test_partitioned_respects_groups;
        ] );
      ( "system",
        [
          Alcotest.test_case "tracker names" `Quick test_tracker_names;
          Alcotest.test_case "exact trackers accurate" `Quick
            test_exact_trackers_accurate;
          Alcotest.test_case "plausible one-sided" `Quick
            test_plausible_one_sided;
          Alcotest.test_case "plausible errs" `Quick test_plausible_actually_errs;
          Alcotest.test_case "non-reducing exact (small)" `Quick
            test_nonreducing_exact_small;
          Alcotest.test_case "op counts" `Quick test_system_counts;
          Alcotest.test_case "without oracle" `Quick test_system_no_oracle;
          Alcotest.test_case "run_all" `Quick test_run_all;
          Alcotest.test_case "reduction collapses merges" `Quick
            test_reduction_collapses_merges;
          Alcotest.test_case "reduction shrinks churn" `Quick
            test_reduction_smaller_under_churn;
        ] );
      ( "paper figures",
        [
          Alcotest.test_case "figure 1" `Quick test_fig1;
          Alcotest.test_case "figure 1 relations" `Quick test_fig1_relations;
          Alcotest.test_case "figure 4" `Quick test_fig4;
          Alcotest.test_case "figure 3" `Quick test_fig3;
          Alcotest.test_case "frontier sizes" `Quick test_frontier_sizes;
        ] );
      ( "weather",
        [
          Alcotest.test_case "deterministic epochs" `Quick
            test_weather_deterministic;
          Alcotest.test_case "severity extremes" `Quick
            test_weather_severity_extremes;
          Alcotest.test_case "validation" `Quick test_weather_validation;
        ] );
      ( "lag",
        [
          Alcotest.test_case "diverges then converges" `Quick
            test_lag_converges;
          Alcotest.test_case "deterministic" `Quick test_lag_deterministic;
          Alcotest.test_case "delta ledger" `Quick test_lag_delta_ledger;
          Alcotest.test_case "vv under the same weather" `Quick
            test_lag_vv_agrees;
          Alcotest.test_case "publication" `Quick test_lag_publishes;
          Alcotest.test_case "validation" `Quick test_lag_validation;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_exact_on_random; prop_plausible_one_sided ] );
    ]
