(* Stamp-ordered span merging: determinism of the linearization and its
   Chrome export under input permutation, correctness of the stamp order
   against a real version-stamp lineage, and contradiction detection. *)

open Vstamp_core
open Vstamp_obs
module Tr = Trace_ctx
module Tm = Trace_merge

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_string = Alcotest.(check string)

(* the real happens-before oracle: parse text labels back into stamps *)
let stamp_leq : Tm.leq =
 fun a b ->
  match
    (Vstamp_codec.Text.stamp_of_string a, Vstamp_codec.Text.stamp_of_string b)
  with
  | Ok sa, Ok sb -> Some (Stamp.leq sa sb)
  | _ -> None

let span ?parent ?domain ?stamp ~node ~id ~start_ms ~end_ms name =
  {
    Tr.sp_trace = "trace-1";
    sp_id = id;
    sp_parent = parent;
    sp_node = node;
    sp_name = name;
    sp_start_ns = Int64.of_int (start_ms * 1_000_000);
    sp_end_ns = Int64.of_int (end_ms * 1_000_000);
    sp_domain = domain;
    sp_stamp = stamp;
    sp_attrs = [];
  }

(* A three-replica lineage where two non-sibling replicas update and
   join (the third keeps the frontier wide, so the Section 6 reduction
   does not collapse the joined id back towards seed).  Stamp order must
   place the fork-point span below both replica spans and both below the
   join span, while the two replica spans stay concurrent. *)
let lineage () =
  let s label = Some (Stamp.to_string label) in
  match Stamp.fork_many Stamp.seed 3 with
  | [ a; _bystander; b ] ->
      let a' = Stamp.update a in
      let b' = Stamp.update b in
      let joined = Stamp.update (Stamp.join a' b') in
      (* wall clocks deliberately skewed: node-b's clock runs early *)
      let root =
        span "launch" ~node:"parent" ~id:"s0" ~start_ms:0 ~end_ms:1
          ~domain:"d" ?stamp:(s Stamp.seed)
      in
      let wa =
        span "work-a" ~node:"node-a" ~id:"sa" ~start_ms:10 ~end_ms:12
          ~domain:"d" ?stamp:(s a')
      in
      let wb =
        span "work-b" ~node:"node-b" ~id:"sb" ~start_ms:5 ~end_ms:7
          ~domain:"d" ?stamp:(s b')
      in
      let jn =
        span "join" ~node:"node-a" ~id:"sj" ~start_ms:20 ~end_ms:21
          ~domain:"d" ?stamp:(s joined)
      in
      (root, wa, wb, jn)
  | _ -> assert false

let index id spans =
  let rec go i = function
    | [] -> Alcotest.failf "span %s missing from merge" id
    | sp :: _ when sp.Tr.sp_id = id -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 spans

let test_merge_respects_stamp_order () =
  let root, wa, wb, jn = lineage () in
  let merged = Tm.merge ~leq:stamp_leq [ jn; wa; root; wb ] in
  check_int "all spans kept" 4 (List.length merged);
  let pos id = index id merged in
  check_bool "launch before work-a" true (pos "s0" < pos "sa");
  check_bool "launch before work-b" true (pos "s0" < pos "sb");
  check_bool "work-a before join" true (pos "sa" < pos "sj");
  check_bool "work-b before join" true (pos "sb" < pos "sj")

let test_merge_deterministic_under_permutation () =
  let root, wa, wb, jn = lineage () in
  let base = [ root; wa; wb; jn ] in
  let permutations =
    [
      [ root; wa; wb; jn ];
      [ jn; wb; wa; root ];
      [ wa; jn; root; wb ];
      [ wb; root; jn; wa ];
    ]
  in
  let chrome sps = Jsonx.to_string (Tm.to_chrome (Tm.merge ~leq:stamp_leq sps)) in
  let reference = chrome base in
  List.iteri
    (fun i p ->
      check_string
        (Printf.sprintf "permutation %d byte-identical" i)
        reference (chrome p))
    permutations;
  (* and stable under repetition *)
  check_string "re-merge byte-identical" reference (chrome base)

(* a strictly ordered label pair: seed below an updated fork child *)
let lo_hi () =
  let child, _ = Stamp.fork Stamp.seed in
  ( Some (Stamp.to_string Stamp.seed),
    Some (Stamp.to_string (Stamp.update child)) )

let test_wall_time_breaks_ties () =
  (* equal stamps (same node, no communication) fall back to wall time *)
  let st = Some (Stamp.to_string (Stamp.update Stamp.seed)) in
  let a =
    span "i0" ~node:"n" ~id:"x1" ~start_ms:30 ~end_ms:31 ~domain:"d" ?stamp:st
  in
  let b =
    span "i1" ~node:"n" ~id:"x2" ~start_ms:10 ~end_ms:11 ~domain:"d" ?stamp:st
  in
  let merged = Tm.merge ~leq:stamp_leq [ a; b ] in
  check_bool "earlier wall time first" true
    (index "x2" merged < index "x1" merged)

let test_domain_scopes_comparison () =
  (* identical lineage labels in different domains must not be ordered *)
  let lo, hi = lo_hi () in
  let a =
    span "a" ~node:"n1" ~id:"d1" ~start_ms:0 ~end_ms:1 ~domain:"left"
      ?stamp:lo
  in
  let b =
    span "b" ~node:"n2" ~id:"d2" ~start_ms:2 ~end_ms:3 ~domain:"right"
      ?stamp:hi
  in
  let rp = Tm.validate ~leq:stamp_leq [ a; b ] in
  check_int "no cross-domain pairs" 0 rp.Tm.rp_ordered_pairs

let test_validate_counts () =
  let root, wa, wb, jn = lineage () in
  let rp = Tm.validate ~leq:stamp_leq [ root; wa; wb; jn ] in
  check_int "spans" 4 rp.Tm.rp_spans;
  check_int "stamped" 4 rp.Tm.rp_stamped;
  check_int "nodes" 3 (List.length rp.Tm.rp_nodes);
  (* root<wa, root<wb, root<jn, wa<jn, wb<jn — wa ∥ wb contributes none *)
  check_int "ordered pairs" 5 rp.Tm.rp_ordered_pairs;
  (* root(parent)<wa, root<wb, root<jn(node-a), wb(node-b)<jn(node-a) *)
  check_int "cross-node pairs" 4 rp.Tm.rp_cross_node_ordered_pairs;
  check_int "no contradictions" 0 (List.length rp.Tm.rp_contradictions)

let test_contradiction_detected () =
  (* stamps say a < b but b finished entirely before a began *)
  let lo, hi = lo_hi () in
  let a =
    span "early" ~node:"n1" ~id:"c1" ~start_ms:100 ~end_ms:110 ~domain:"d"
      ?stamp:lo
  in
  let b =
    span "late" ~node:"n2" ~id:"c2" ~start_ms:0 ~end_ms:10 ~domain:"d"
      ?stamp:hi
  in
  let rp = Tm.validate ~leq:stamp_leq [ a; b ] in
  check_int "one contradiction" 1 (List.length rp.Tm.rp_contradictions);
  let x, y = List.hd rp.Tm.rp_contradictions in
  check_string "causally earlier" "c1" x.Tr.sp_id;
  check_string "causally later" "c2" y.Tr.sp_id;
  (* and the json report carries the count *)
  let j = Tm.report_json rp in
  (match Jsonx.member "schema" j with
  | Some (Jsonx.String s) -> check_string "schema" Tm.report_schema s
  | _ -> Alcotest.fail "report missing schema");
  match Option.bind (Jsonx.member "contradiction_count" j) Jsonx.to_int with
  | Some n -> check_int "contradiction_count" 1 n
  | None -> Alcotest.fail "report missing contradiction_count"

let test_chrome_shape () =
  let root, wa, wb, jn = lineage () in
  let j = Tm.to_chrome (Tm.merge ~leq:stamp_leq [ root; wa; wb; jn ]) in
  match Jsonx.member "traceEvents" j with
  | Some (Jsonx.List evs) ->
      (* 4 complete events plus one metadata event per node lane *)
      let xs =
        List.filter
          (fun e ->
            match Option.bind (Jsonx.member "ph" e) Jsonx.to_str with
            | Some "X" -> true
            | _ -> false)
          evs
      in
      check_int "complete events" 4 (List.length xs);
      check_bool "seq argument present" true
        (List.for_all
           (fun e ->
             match
               Option.bind (Jsonx.member "args" e) (Jsonx.member "seq")
             with
             | Some _ -> true
             | None -> false)
           xs)
  | _ -> Alcotest.fail "to_chrome: missing traceEvents"

(* regression: the label-pair memo is bounded — force it over its
   limit and check the merge survives a reset unchanged *)
let test_memo_reset () =
  let chain n =
    let rec go acc s i =
      if i >= n then List.rev acc
      else
        (* fork and abandon one half: the surviving replica's id
           deepens every step (nothing rejoins, so the reduction
           cannot reclaim it) and update copies it, giving a strictly
           increasing chain of distinct labels *)
        let a, _abandoned = Stamp.fork s in
        let s = Stamp.update a in
        let sp =
          span
            (Printf.sprintf "step-%d" i)
            ~node:"n" ~id:(Printf.sprintf "s%d" i) ~start_ms:i
            ~end_ms:(i + 1) ~domain:"d"
            ~stamp:(Stamp.to_string s)
        in
        go (sp :: acc) s (i + 1)
    in
    go [] Stamp.seed 0
  in
  let spans = chain 14 in
  let reference = List.map (fun s -> s.Tr.sp_id) (Tm.merge ~leq:stamp_leq spans) in
  let before = Tm.memo_resets () in
  Tm.set_memo_limit 8;
  let bounded =
    Fun.protect
      ~finally:(fun () -> Tm.set_memo_limit Tm.default_memo_limit)
      (fun () -> List.map (fun s -> s.Tr.sp_id) (Tm.merge ~leq:stamp_leq spans))
  in
  check_bool "memo reset fired" true (Tm.memo_resets () > before);
  check_bool "merge unchanged by resets" true (bounded = reference);
  Alcotest.check_raises "limit below 1 refused"
    (Invalid_argument "Trace_merge.set_memo_limit: limit < 1") (fun () ->
      Tm.set_memo_limit 0)

let () =
  Alcotest.run "trace_merge"
    [
      ( "merge",
        [
          Alcotest.test_case "respects stamp order" `Quick
            test_merge_respects_stamp_order;
          Alcotest.test_case "deterministic under permutation" `Quick
            test_merge_deterministic_under_permutation;
          Alcotest.test_case "wall time breaks ties" `Quick
            test_wall_time_breaks_ties;
        ] );
      ( "validate",
        [
          Alcotest.test_case "domains scope comparison" `Quick
            test_domain_scopes_comparison;
          Alcotest.test_case "pair accounting" `Quick test_validate_counts;
          Alcotest.test_case "contradiction detected" `Quick
            test_contradiction_detected;
        ] );
      ( "export",
        [ Alcotest.test_case "chrome shape" `Quick test_chrome_shape ] );
      ( "memo",
        [ Alcotest.test_case "bounded with reset" `Quick test_memo_reset ] );
    ]
