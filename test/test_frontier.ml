open Vstamp_core

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

(* a frontier with known structure: a dominates; b equivalent to a;
   c stale; d concurrent with everyone who updated *)
let rigged () =
  let base = Stamp.update Stamp.seed in
  let l, r = Stamp.fork base in
  let c, l2 = Stamp.fork l in
  let d, r2 = Stamp.fork r in
  let a = Stamp.update l2 in
  let d = Stamp.update d in
  (* b syncs with a: they end equivalent and dominant *)
  let a, b = Stamp.sync a r2 in
  (a, b, c, d)

let test_structure () =
  let a, b, c, d = rigged () in
  let f = Frontier.of_list [ a; b; c; d ] in
  check_int "size" 4 (Frontier.size f);
  check_bool "a and b equivalent" true (Stamp.equivalent a b);
  check_bool "c obsolete vs a" true (Stamp.obsolete c a);
  check_bool "d concurrent with a" true (Stamp.inconsistent d a)

let test_dominant_obsolete () =
  let a, b, c, d = rigged () in
  let f = Frontier.of_list [ a; b; c; d ] in
  let dominant = Frontier.dominant f in
  check_bool "a dominant" true (List.memq a dominant);
  check_bool "b dominant" true (List.memq b dominant);
  check_bool "d dominant (concurrent, not dominated)" true (List.memq d dominant);
  check_bool "c not dominant" false (List.memq c dominant);
  let stale = Frontier.obsolete f in
  check_bool "c is the only obsolete" true
    (List.memq c stale && List.length stale = 1)

let test_conflicts () =
  let a, b, c, d = rigged () in
  let f = Frontier.of_list [ a; b; c; d ] in
  let conflicts = Frontier.conflicts f in
  (* d conflicts with a and with b (both saw a's update, d saw its own) *)
  check_int "two conflicting pairs" 2 (List.length conflicts);
  check_bool "consistency flag" false (Frontier.consistent f);
  check_bool "initial consistent" true (Frontier.consistent Frontier.initial)

let test_all_equivalent () =
  let a, b, _, _ = rigged () in
  check_bool "a,b equivalent" true (Frontier.all_equivalent (Frontier.of_list [ a; b ]));
  check_bool "empty trivially" true (Frontier.all_equivalent (Frontier.of_list []));
  let x = Stamp.update a in
  check_bool "not after update" false
    (Frontier.all_equivalent (Frontier.of_list [ x; b ]))

let test_classify () =
  let a, b, c, _ = rigged () in
  let f = Frontier.of_list [ a; b; c ] in
  let rels = Frontier.classify f c in
  check_int "two relations" 2 (List.length rels);
  check_bool "c dominated by both" true
    (List.for_all (Relation.equal Relation.Dominated) rels)

let test_prune () =
  let a, b, c, d = rigged () in
  let f = Frontier.of_list [ a; b; c; d ] in
  let pruned = Frontier.prune f in
  check_int "one fewer element" 3 (Frontier.size pruned);
  (* knowledge preserved: the collector still dominates where a did *)
  check_bool "no obsolete members remain" true
    (Frontier.obsolete pruned = [])

let test_prune_noop () =
  let a, b, _, d = rigged () in
  let f = Frontier.of_list [ a; b; d ] in
  check_int "nothing to prune" 3 (Frontier.size (Frontier.prune f))

let test_merge_all () =
  let a, b, c, d = rigged () in
  let merged = Frontier.merge_all (Frontier.of_list [ a; b; c; d ]) in
  check_bool "merge heals the id space" true
    (Name_tree.is_bottom (Stamp.id merged));
  Alcotest.check_raises "empty" (Invalid_argument "Frontier.merge_all: empty frontier")
    (fun () -> ignore (Frontier.merge_all (Frontier.of_list [])))

let test_total_bits () =
  let f = Frontier.of_list [ Stamp.seed ] in
  check_int "seed frontier" 0 (Frontier.total_bits f)

(* --- properties over random traces --- *)

let prop name f =
  QCheck2.Test.make ~name ~count:200 ~print:Vstamp_test_support.Gen.trace_print
    (Vstamp_test_support.Gen.trace ())
    f

let props =
  [
    prop "dominant + obsolete partition the frontier" (fun ops ->
        let f = Frontier.of_list (Execution.Run_stamps.run ops) in
        let d = Frontier.dominant f and o = Frontier.obsolete f in
        List.length d + List.length o = Frontier.size f
        && List.for_all (fun x -> not (List.memq x o)) d);
    prop "prune removes exactly the obsolete members" (fun ops ->
        let f = Frontier.of_list (Execution.Run_stamps.run ops) in
        let pruned = Frontier.prune f in
        Frontier.size pruned
        = Frontier.size f - List.length (Frontier.obsolete f)
        && Frontier.obsolete pruned = []);
    prop "prune preserves the dominant knowledge" (fun ops ->
        let f = Frontier.of_list (Execution.Run_stamps.run ops) in
        let before = Frontier.merge_all f in
        let after = Frontier.merge_all (Frontier.prune f) in
        (* both merges carry the same causal knowledge *)
        Name_tree.equal (Stamp.update_name before) (Stamp.update_name after));
    prop "a non-reducing total join dominates every member" (fun ops ->
        (* merge_all reduces, which rewrites the update component of the
           retired configuration (stamps only order coexisting elements),
           so the domination check uses the raw join *)
        match Execution.Run_stamps.run ops with
        | [] -> true
        | x :: rest ->
            let m = List.fold_left (Stamp.join ~reduce:false) x rest in
            Stamp.dominates_all m (x :: rest));
    prop "conflicts are symmetric-free distinct pairs" (fun ops ->
        let f = Frontier.of_list (Execution.Run_stamps.run ops) in
        List.for_all
          (fun (x, y) -> Stamp.inconsistent x y && not (x == y))
          (Frontier.conflicts f));
  ]

let () =
  Alcotest.run "frontier"
    [
      ( "queries",
        [
          Alcotest.test_case "structure" `Quick test_structure;
          Alcotest.test_case "dominant/obsolete" `Quick test_dominant_obsolete;
          Alcotest.test_case "conflicts" `Quick test_conflicts;
          Alcotest.test_case "all_equivalent" `Quick test_all_equivalent;
          Alcotest.test_case "classify" `Quick test_classify;
        ] );
      ( "pruning",
        [
          Alcotest.test_case "prune" `Quick test_prune;
          Alcotest.test_case "prune no-op" `Quick test_prune_noop;
          Alcotest.test_case "merge_all" `Quick test_merge_all;
          Alcotest.test_case "total_bits" `Quick test_total_bits;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest props);
    ]
