open Vstamp_core
open Vstamp_sim

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let test_create () =
  let n = Network.create ~nodes:4 in
  check_int "four nodes" 4 (Network.node_count n);
  check_bool "quiescent" true (Network.quiescent n);
  check_bool "all idle" true
    (List.for_all (Network.is_idle n) [ 0; 1; 2; 3 ]);
  (* initial split partitions the id space: the frontier is a valid
     configuration *)
  check_bool "invariants hold" true (Invariants.all (Network.frontier n));
  check_bool "bad size" true
    (try
       ignore (Network.create ~nodes:0);
       false
     with Invalid_argument _ -> true)

let test_update () =
  let n = Network.create ~nodes:2 in
  match Network.update n 0 with
  | None -> Alcotest.fail "idle node must accept updates"
  | Some n' -> (
      match (Network.stamp_of n' 0, Network.stamp_of n' 1) with
      | Some a, Some b ->
          check_bool "updated dominates peer" true (Stamp.obsolete b a)
      | _ -> Alcotest.fail "stamps missing")

let test_sync_roundtrip () =
  let n = Network.create ~nodes:2 in
  let n = Option.get (Network.update n 0) in
  let n = Option.get (Network.start_sync n ~from:0 ~target:1) in
  check_bool "initiator waiting" false (Network.is_idle n 0);
  check_int "one message" 1 (Network.inflight_count n);
  let n = Option.get (Network.deliver n 0) in
  check_int "reply in flight" 1 (Network.inflight_count n);
  let n = Option.get (Network.deliver n 0) in
  check_bool "quiescent" true (Network.quiescent n);
  match (Network.stamp_of n 0, Network.stamp_of n 1) with
  | Some a, Some b ->
      check_bool "equivalent after sync" true (Stamp.equivalent a b)
  | _ -> Alcotest.fail "stamps missing"

let test_waiting_node_rejects_ops () =
  let n = Network.create ~nodes:2 in
  let n = Option.get (Network.start_sync n ~from:0 ~target:1) in
  check_bool "no update while waiting" true (Network.update n 0 = None);
  check_bool "no second sync while waiting" true
    (Network.start_sync n ~from:0 ~target:1 = None)

let test_mutual_request_bounce () =
  (* both nodes request each other: the bounce rule must resolve it *)
  let n = Network.create ~nodes:2 in
  let n = Option.get (Network.start_sync n ~from:0 ~target:1) in
  let n = Option.get (Network.start_sync n ~from:1 ~target:0) in
  let n = Network.drain n in
  check_bool "quiescent after drain" true (Network.quiescent n)

let test_self_sync_rejected () =
  let n = Network.create ~nodes:2 in
  check_bool "self sync" true
    (try
       ignore (Network.start_sync n ~from:0 ~target:0);
       false
     with Invalid_argument _ -> true)

let test_deliver_out_of_range () =
  let n = Network.create ~nodes:2 in
  check_bool "nothing to deliver" true (Network.deliver n 0 = None)

let test_run_convergence_structure () =
  let n = Network.run ~seed:42 ~steps:400 ~nodes:5 () in
  check_bool "quiescent" true (Network.quiescent n);
  check_int "frontier complete" 5 (List.length (Network.frontier n));
  check_bool "oracle agreement" true (Network.consistent_with_oracle n);
  check_bool "invariants hold" true (Invariants.all (Network.frontier n));
  let updates, syncs, delivered = Network.stats n in
  check_bool "things happened" true (updates > 0 && syncs > 0 && delivered > 0)

let test_full_gossip_converges () =
  (* ring of syncs: everyone ends equivalent *)
  let n = Network.create ~nodes:4 in
  let n = Option.get (Network.update n 2) in
  let n =
    List.fold_left
      (fun n (a, b) ->
        let n = Option.get (Network.start_sync n ~from:a ~target:b) in
        Network.drain n)
      n
      [ (0, 1); (1, 2); (2, 3); (3, 0); (0, 1); (1, 2) ]
  in
  let stamps = Network.frontier n in
  check_bool "all equivalent" true
    (match stamps with
    | x :: rest -> List.for_all (Stamp.equivalent x) rest
    | [] -> false)

(* Why the transport must not duplicate replicas: if a sync request is
   both delivered AND "recovered" by a false timeout at the sender, the
   identity exists twice and the frontier invariants break immediately —
   exactly the corruption the reliable-hand-off requirement prevents. *)
let test_identity_duplication_corrupts () =
  let a, b = Stamp.fork Stamp.seed in
  let b = Stamp.update b in
  (* the request carrying [a] reaches b, which joins it in (the join
     reduces to the seed since together they cover the id space) ... *)
  let b' = Stamp.join b a in
  (* ... while a false timeout makes the sender keep using [a] *)
  check_bool "I2 violated by the duplicated identity" false
    (Invariants.i2 [ a; b' ]);
  (* and causality answers become wrong: the truth is concurrent (a and
     b each saw an update the other did not), but the duplicated join
     collapsed b's knowledge to {eps}, so b' now looks merely stale *)
  let a' = Stamp.update a in
  Alcotest.check
    (Alcotest.testable Relation.pp Relation.equal)
    "spurious ordering instead of concurrency" Relation.Dominates
    (Stamp.relation a' b')

(* --- properties --- *)

let prop_random_schedules_sound =
  QCheck2.Test.make ~name:"any random schedule stays oracle-consistent"
    ~count:60
    ~print:(fun (seed, steps, nodes) ->
      Printf.sprintf "seed=%d steps=%d nodes=%d" seed steps nodes)
    QCheck2.Gen.(triple (int_bound 10000) (int_bound 300) (int_range 1 6))
    (fun (seed, steps, nodes) ->
      let n = Network.run ~seed ~steps ~nodes () in
      Network.quiescent n
      && Network.consistent_with_oracle n
      && Invariants.all (Network.frontier n)
      && List.length (Network.frontier n) = nodes)

let prop_interleaved_invariants =
  QCheck2.Test.make ~name:"invariants hold at every intermediate state"
    ~count:40
    ~print:(fun (seed, steps) -> Printf.sprintf "seed=%d steps=%d" seed steps)
    QCheck2.Gen.(pair (int_bound 10000) (int_bound 120))
    (fun (seed, steps) ->
      let rec go rng t k ok =
        if (not ok) || k = 0 then ok
        else
          let t', rng = Network.step rng t in
          (* live replicas plus in-flight ones always form a frontier;
             checking the live subset suffices for I2 pairwise claims *)
          go rng t' (k - 1) (Invariants.i2 (Network.frontier t'))
      in
      go (Rng.make seed) (Network.create ~nodes:4) steps true)

let () =
  Alcotest.run "network"
    [
      ( "protocol",
        [
          Alcotest.test_case "create" `Quick test_create;
          Alcotest.test_case "update" `Quick test_update;
          Alcotest.test_case "sync round trip" `Quick test_sync_roundtrip;
          Alcotest.test_case "waiting rejects ops" `Quick
            test_waiting_node_rejects_ops;
          Alcotest.test_case "mutual request bounce" `Quick
            test_mutual_request_bounce;
          Alcotest.test_case "self sync rejected" `Quick test_self_sync_rejected;
          Alcotest.test_case "deliver out of range" `Quick
            test_deliver_out_of_range;
          Alcotest.test_case "identity duplication corrupts" `Quick
            test_identity_duplication_corrupts;
        ] );
      ( "convergence",
        [
          Alcotest.test_case "random run" `Quick test_run_convergence_structure;
          Alcotest.test_case "gossip ring" `Quick test_full_gossip_converges;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_random_schedules_sound; prop_interleaved_invariants ] );
    ]
