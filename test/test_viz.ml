open Vstamp_core
open Vstamp_sim

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let lines s = String.split_on_char '\n' (String.trim s)

let test_single_lineage () =
  let out = Viz.to_string [ Execution.Update 0; Update 0 ] in
  check_int "one row" 1 (List.length (lines out));
  check_bool "two stars" true
    (String.length (List.hd (lines out)) > 0
    && List.length (String.split_on_char '*' (List.hd (lines out))) = 3)

let test_fork_opens_row () =
  let out = Viz.to_string [ Execution.Fork 0 ] in
  check_int "two rows" 2 (List.length (lines out))

let test_join_retires_row () =
  let out = Viz.to_string [ Execution.Fork 0; Join (0, 1) ] in
  let ls = lines out in
  check_int "two rows still printed" 2 (List.length ls);
  check_bool "retirement mark present" true
    (String.length (List.nth ls 1) > 0
    && String.contains (List.nth ls 1) '\'')

let test_figure2_shape () =
  let out = Viz.to_string Scenario.Fig4.trace in
  (* three lineages: the a/b/d line, the c line, the e line *)
  check_int "three rows" 3 (List.length (lines out));
  (* three updates in the run *)
  let stars =
    String.fold_left (fun n c -> if c = '*' then n + 1 else n) 0 out
  in
  check_int "three updates drawn" 3 stars

let test_stamp_labels () =
  let ops = Scenario.Fig4.trace in
  let out = Viz.draw ~with_stamps:true ops in
  check_bool "final stamp label present" true
    (let seed = Stamp.to_string Stamp.seed in
     let rec contains i =
       i + String.length seed <= String.length out
       && (String.sub out i (String.length seed) = seed || contains (i + 1))
     in
     contains 0)

let test_header () =
  Alcotest.(check string)
    "header" "start fork(0) update(1)"
    (Viz.header [ Execution.Fork 0; Update 1 ])

let test_column_count () =
  let ops = [ Execution.Fork 0; Update 1; Join (0, 1) ] in
  let out = Viz.to_string ops in
  let first = List.hd (lines out) in
  (* 4 chars per column, columns = ops + 1 *)
  check_int "width" (4 * (List.length ops + 1)) (String.length first)

(* --- DOT output --- *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let count_char c s =
  String.fold_left (fun n x -> if x = c then n + 1 else n) 0 s

let unescaped_quotes line =
  let n = ref 0 and esc = ref false in
  String.iter
    (fun c ->
      if !esc then esc := false
      else if c = '\\' then esc := true
      else if c = '"' then incr n)
    line;
  !n

let test_dot_grammar () =
  let dot = Viz.to_dot Scenario.Fig4.trace in
  check_bool "digraph header" true
    (String.length dot > 8 && String.sub dot 0 8 = "digraph ");
  check_int "balanced braces" (count_char '{' dot) (count_char '}' dot);
  check_bool "has edges" true (contains dot "->");
  (* stamp notation's '+' and '|' pass through quoted labels unmangled *)
  check_bool "f1 stamp labelled" true (contains dot "[1|01+1]");
  (* no line may leave a quoted string open (escaping regression) *)
  List.iter
    (fun line ->
      check_int
        (Printf.sprintf "balanced quotes on %S" line)
        0
        (unescaped_quotes line mod 2))
    (String.split_on_char '\n' dot)

let prop_dot_any_trace =
  QCheck2.Test.make ~name:"dot renders any valid trace" ~count:100
    ~print:Vstamp_test_support.Gen.trace_print
    (Vstamp_test_support.Gen.trace ())
    (fun ops ->
      let dot = Viz.to_dot ops in
      String.sub dot 0 8 = "digraph "
      && count_char '{' dot = count_char '}' dot
      && List.for_all
           (fun line -> unescaped_quotes line mod 2 = 0)
           (String.split_on_char '\n' dot))

let prop_renders_any_trace =
  QCheck2.Test.make ~name:"viz renders any valid trace" ~count:300
    ~print:Vstamp_test_support.Gen.trace_print
    (Vstamp_test_support.Gen.trace ())
    (fun ops ->
      let out = Viz.draw ~with_stamps:true ops in
      String.length out > 0
      (* rows = 1 + number of forks *)
      && List.length (lines out)
         = 1
           + List.length
               (List.filter (function Execution.Fork _ -> true | _ -> false) ops))

let () =
  Alcotest.run "viz"
    [
      ( "rendering",
        [
          Alcotest.test_case "single lineage" `Quick test_single_lineage;
          Alcotest.test_case "fork opens row" `Quick test_fork_opens_row;
          Alcotest.test_case "join retires row" `Quick test_join_retires_row;
          Alcotest.test_case "figure 2 shape" `Quick test_figure2_shape;
          Alcotest.test_case "stamp labels" `Quick test_stamp_labels;
          Alcotest.test_case "header" `Quick test_header;
          Alcotest.test_case "column count" `Quick test_column_count;
        ] );
      ("dot", [ Alcotest.test_case "grammar and escaping" `Quick test_dot_grammar ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_renders_any_trace; prop_dot_any_trace ] );
    ]
