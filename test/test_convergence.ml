(* The convergence observatory: pairwise classification, divergence
   matrices (width, entropy, rendering), oracle staleness, the
   convergence timer, and the /lag.json assembly. *)

open Vstamp_obs

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_string = Alcotest.(check string)

let kind =
  Alcotest.testable
    (fun ppf k -> Format.pp_print_string ppf (Convergence.kind_slug k))
    ( = )

(* replicas as integer sets ordered by inclusion: the smallest structure
   with genuine concurrency *)
module IS = Set.Make (Int)

let set xs = IS.of_list xs

let leq = IS.subset

(* --- classify --- *)

let test_classify () =
  Alcotest.check kind "equal" Convergence.Equal
    (Convergence.classify ~leq_ab:true ~leq_ba:true);
  Alcotest.check kind "dominates" Convergence.Dominates
    (Convergence.classify ~leq_ab:false ~leq_ba:true);
  Alcotest.check kind "dominated" Convergence.Dominated
    (Convergence.classify ~leq_ab:true ~leq_ba:false);
  Alcotest.check kind "concurrent" Convergence.Concurrent
    (Convergence.classify ~leq_ab:false ~leq_ba:false);
  Alcotest.(check (list string))
    "slugs"
    [ "equal"; "dominates"; "dominated"; "concurrent" ]
    (List.map Convergence.kind_slug Convergence.all_kinds)

(* --- matrix --- *)

let test_matrix_cells () =
  (* {1} below {1,2}; {3} concurrent with both *)
  let m = Convergence.matrix ~leq [| set [ 1 ]; set [ 1; 2 ]; set [ 3 ] |] in
  check_int "size" 3 (Convergence.size m);
  Alcotest.check kind "diagonal" Convergence.Equal (Convergence.cell m 2 2);
  Alcotest.check kind "0 below 1" Convergence.Dominated
    (Convergence.cell m 0 1);
  Alcotest.check kind "1 above 0" Convergence.Dominates
    (Convergence.cell m 1 0);
  Alcotest.check kind "0 vs 2 concurrent" Convergence.Concurrent
    (Convergence.cell m 0 2);
  Alcotest.(check (list (pair kind int)))
    "pair counts (unordered, every kind present)"
    [
      (Convergence.Equal, 0);
      (Convergence.Dominates, 0);
      (Convergence.Dominated, 1);
      (Convergence.Concurrent, 2);
    ]
    (Convergence.pair_counts m);
  check_bool "not converged" false (Convergence.converged m)

let test_matrix_converged () =
  let m = Convergence.matrix ~leq [| set [ 1; 2 ]; set [ 1; 2 ] |] in
  check_bool "equal pair converged" true (Convergence.converged m);
  check_int "width 1" 1 (Convergence.width m);
  Alcotest.(check (float 1e-9)) "entropy 0" 0. (Convergence.entropy m);
  check_bool "empty converged" true
    (Convergence.converged (Convergence.matrix ~leq [||]));
  check_bool "singleton converged" true
    (Convergence.converged (Convergence.matrix ~leq [| set [ 9 ] |]))

let test_width () =
  (* one dominated replica does not widen the frontier *)
  let chain =
    Convergence.matrix ~leq [| set [ 1 ]; set [ 1; 2 ]; set [ 1; 2; 3 ] |]
  in
  check_int "chain width" 1 (Convergence.width chain);
  (* three mutually concurrent maximal replicas *)
  let fan = Convergence.matrix ~leq [| set [ 1 ]; set [ 2 ]; set [ 3 ] |] in
  check_int "fan width" 3 (Convergence.width fan);
  (* two equal maxima collapse into one class *)
  let twin =
    Convergence.matrix ~leq [| set [ 1; 2 ]; set [ 1; 2 ]; set [ 3 ] |]
  in
  check_int "equal maxima share a class" 2 (Convergence.width twin);
  check_int "empty width" 0 (Convergence.width (Convergence.matrix ~leq [||]))

let test_entropy () =
  (* all three pairs concurrent: a single kind, entropy 0 *)
  let fan = Convergence.matrix ~leq [| set [ 1 ]; set [ 2 ]; set [ 3 ] |] in
  Alcotest.(check (float 1e-9)) "uniform kind" 0. (Convergence.entropy fan);
  (* mixed kinds have positive entropy, bounded by 2 bits *)
  let mixed =
    Convergence.matrix ~leq [| set [ 1 ]; set [ 1; 2 ]; set [ 3 ] |]
  in
  let h = Convergence.entropy mixed in
  check_bool "positive" true (h > 0.);
  check_bool "at most 2 bits" true (h <= 2.)

let test_matrix_render () =
  let m = Convergence.matrix ~leq [| set [ 1 ]; set [ 1; 2 ]; set [ 3 ] |] in
  (match Convergence.matrix_to_json m with
  | Jsonx.Obj fields ->
      check_int "n" 3
        (Option.value ~default:(-1)
           (Option.bind (List.assoc_opt "n" fields) Jsonx.to_int));
      (match List.assoc_opt "rows" fields with
      | Some (Jsonx.List [ Jsonx.String r0; Jsonx.String r1; Jsonx.String r2 ])
        ->
          check_string "row 0" ".<#" r0;
          check_string "row 1" ">.#" r1;
          check_string "row 2" "##." r2
      | _ -> Alcotest.fail "rows not a 3-string list")
  | _ -> Alcotest.fail "matrix_to_json not an object");
  let rendered = Format.asprintf "%a" Convergence.pp_matrix m in
  check_bool "pp shows concurrency" true (String.contains rendered '#');
  check_bool "pp shows order" true (String.contains rendered '<')

(* --- staleness --- *)

let test_staleness () =
  let union = IS.union and cardinal = IS.cardinal in
  Alcotest.(check (array int))
    "lag against global knowledge" [| 2; 1; 3 |]
    (Convergence.staleness ~union ~cardinal
       [ set [ 1; 2 ]; set [ 2; 3; 4 ]; set [ 1 ] ]);
  Alcotest.(check (array int))
    "zero everywhere iff all know all" [| 0; 0 |]
    (Convergence.staleness ~union ~cardinal [ set [ 1; 2 ]; set [ 1; 2 ] ]);
  Alcotest.(check (array int))
    "empty input" [||]
    (Convergence.staleness ~union ~cardinal [])

(* --- timer --- *)

let test_timer () =
  let t = Convergence.Timer.create () in
  check_bool "no result before any write" true
    (Convergence.Timer.result t = None);
  Convergence.Timer.note_write t ~step:3;
  Convergence.Timer.note_check t ~step:4 ~converged:false;
  check_bool "no result while diverged" true
    (Convergence.Timer.result t = None);
  Convergence.Timer.note_check t ~step:7 ~converged:true;
  (match Convergence.Timer.result t with
  | Some (ns, steps) ->
      check_int "steps from last write" 4 steps;
      check_bool "ns non-negative" true (Int64.compare ns 0L >= 0)
  | None -> Alcotest.fail "expected a result after convergence");
  (* a later converged check must not move the latch point *)
  Convergence.Timer.note_check t ~step:9 ~converged:true;
  (match Convergence.Timer.result t with
  | Some (_, steps) -> check_int "first convergence latched" 4 steps
  | None -> Alcotest.fail "latch lost");
  (* divergence unlatches; only stable convergence counts *)
  Convergence.Timer.note_check t ~step:10 ~converged:false;
  check_bool "unlatched by divergence" true
    (Convergence.Timer.result t = None);
  Convergence.Timer.note_check t ~step:12 ~converged:true;
  (match Convergence.Timer.result t with
  | Some (_, steps) -> check_int "re-latched later" 9 steps
  | None -> Alcotest.fail "expected re-latch");
  (* a fresh write restarts the measurement *)
  Convergence.Timer.note_write t ~step:13;
  check_bool "write clears the latch" true
    (Convergence.Timer.result t = None)

(* --- publication and /lag.json --- *)

let field = Jsonx.member

let test_publish_and_lag_json () =
  let registry = Registry.create () in
  let m = Convergence.matrix ~leq [| set [ 1 ]; set [ 1; 2 ]; set [ 3 ] |] in
  Convergence.publish_matrix ~registry m;
  Convergence.publish_lag ~registry [| 2; 0; 3 |];
  let t = Convergence.Timer.create () in
  Convergence.Timer.note_write t ~step:1;
  Convergence.Timer.note_check t ~step:5 ~converged:true;
  Convergence.Timer.publish ~registry t;
  Metric.add (Registry.counter registry "sim_sync_shipped_bytes_total") 100;
  Metric.add (Registry.counter registry "sim_sync_minimal_bytes_total") 60;
  Metric.add (Registry.counter registry "sim_sync_redundant_bytes_total") 40;
  Metric.set (Registry.gauge registry "sim_sync_delta_efficiency") 0.6;
  let j = Convergence.lag_json registry in
  let num name obj =
    match Option.bind (Jsonx.member name obj) Jsonx.to_float with
    | Some f -> f
    | None -> Alcotest.failf "missing numeric field %s" name
  in
  (match field "replica_lag" j with
  | Some lag ->
      Alcotest.(check (float 0.)) "replica 2 lag" 3. (num "2" lag);
      Alcotest.(check (float 0.)) "replica 1 lag" 0. (num "1" lag)
  | None -> Alcotest.fail "no replica_lag");
  (match field "divergence_pairs" j with
  | Some pairs ->
      Alcotest.(check (float 0.)) "concurrent pairs" 2. (num "concurrent" pairs);
      Alcotest.(check (float 0.)) "dominated pairs" 1. (num "dominated" pairs)
  | None -> Alcotest.fail "no divergence_pairs");
  Alcotest.(check (float 0.)) "frontier width" 2. (num "frontier_width" j);
  Alcotest.(check (float 0.)) "convergence steps" 4. (num "convergence_steps" j);
  (match field "sync_delta" j with
  | Some d ->
      Alcotest.(check (float 0.))
        "shipped counter" 100.
        (num "sim_sync_shipped_bytes_total" d);
      Alcotest.(check (float 0.))
        "efficiency gauge" 0.6
        (num "sim_sync_delta_efficiency" d)
  | None -> Alcotest.fail "no sync_delta")

let test_lag_json_empty_registry () =
  let j = Convergence.lag_json (Registry.create ()) in
  (match field "replica_lag" j with
  | Some (Jsonx.Obj []) -> ()
  | _ -> Alcotest.fail "expected empty replica_lag");
  check_bool "null width before publication" true
    (field "frontier_width" j = Some Jsonx.Null);
  check_bool "null convergence before publication" true
    (field "convergence_ns" j = Some Jsonx.Null)

let () =
  Alcotest.run "convergence"
    [
      ( "pairs",
        [
          Alcotest.test_case "classify" `Quick test_classify;
          Alcotest.test_case "matrix cells and counts" `Quick test_matrix_cells;
          Alcotest.test_case "converged matrices" `Quick test_matrix_converged;
          Alcotest.test_case "frontier width" `Quick test_width;
          Alcotest.test_case "entropy" `Quick test_entropy;
          Alcotest.test_case "rendering" `Quick test_matrix_render;
        ] );
      ( "staleness",
        [ Alcotest.test_case "oracle lag" `Quick test_staleness ] );
      ("timer", [ Alcotest.test_case "latching" `Quick test_timer ]);
      ( "lag_json",
        [
          Alcotest.test_case "published registry" `Quick
            test_publish_and_lag_json;
          Alcotest.test_case "empty registry" `Quick
            test_lag_json_empty_registry;
        ] );
    ]
