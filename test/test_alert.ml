(* The alerting plane: rules-file grammar, the threshold / rate /
   absence / invariant conditions, for-duration debounce, the
   firing -> resolved lifecycle with its gauge and events. *)

open Vstamp_obs

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_string = Alcotest.(check string)

let checkf msg = Alcotest.(check (float 1e-9)) msg

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec go i =
    i + m <= n && (String.sub haystack i m = needle || go (i + 1))
  in
  m = 0 || go 0

let parse_one line =
  match Alert.parse_rule line with
  | Ok (Some r) -> r
  | Ok None -> Alcotest.failf "line %S parsed to nothing" line
  | Error m -> Alcotest.failf "line %S: %s" line m

let state_of t name =
  match
    List.find_opt (fun (r, _) -> r.Alert.name = name) (Alert.states t)
  with
  | Some (_, s) -> s
  | None -> Alcotest.failf "no rule %S" name

let gauge_of registry name =
  match
    Registry.find registry
      (Registry.with_labels "vstamp_alerts_firing" [ ("rule", name) ])
  with
  | Some (Registry.Gauge g) -> Metric.value g
  | _ -> Alcotest.failf "no firing gauge for %S" name

(* --- grammar --- *)

let test_durations () =
  let ok s = match Alert.duration_of_string s with Ok f -> f | Error m -> Alcotest.failf "%s" m in
  checkf "ms" 0.5 (ok "500ms");
  checkf "s" 5. (ok "5s");
  checkf "m" 120. (ok "2m");
  checkf "h" 5400. (ok "1.5h");
  checkf "bare seconds" 3. (ok "3");
  check_bool "garbage rejected" true
    (match Alert.duration_of_string "soon" with Error _ -> true | Ok _ -> false);
  check_bool "negative rejected" true
    (match Alert.duration_of_string "-5s" with Error _ -> true | Ok _ -> false)

let test_parse_rule_forms () =
  (match Alert.parse_rule "# comment" with
  | Ok None -> ()
  | _ -> Alcotest.fail "comment not skipped");
  (match Alert.parse_rule "   " with
  | Ok None -> ()
  | _ -> Alcotest.fail "blank not skipped");
  let r = parse_one "hot soak_ops_total > 100 for 5s" in
  check_string "name" "hot" r.Alert.name;
  checkf "for" 5. r.Alert.for_s;
  (match r.Alert.cond with
  | Alert.Threshold { metric; op = Alert.Gt; value } ->
      check_string "metric" "soak_ops_total" metric;
      checkf "value" 100. value
  | _ -> Alcotest.fail "not a threshold");
  (match (parse_one "fast rate(ops) >= 2.5").Alert.cond with
  | Alert.Rate { metric = "ops"; op = Alert.Ge; value } -> checkf "rate value" 2.5 value
  | _ -> Alcotest.fail "not a rate");
  (match (parse_one "gone absent(heartbeat_total)").Alert.cond with
  | Alert.Absent { metric = "heartbeat_total" } -> ()
  | _ -> Alcotest.fail "not an absence");
  (match (parse_one "broken invariant_violation for 1m").Alert.cond with
  | Alert.Invariant_violation -> ()
  | _ -> Alcotest.fail "not an invariant rule");
  check_bool "bad op rejected" true
    (match Alert.parse_rule "x m >!> 1" with Error _ -> true | Ok _ -> false);
  check_bool "missing value rejected" true
    (match Alert.parse_rule "x m >" with Error _ -> true | Ok _ -> false)

let test_round_trip () =
  List.iter
    (fun line ->
      let r = parse_one line in
      let r' = parse_one (Alert.rule_to_string r) in
      check_bool (line ^ " round-trips") true (r = r'))
    [
      "hot ops > 100 for 5s";
      "cold ops <= 0.5";
      "fast rate(ops) != 3";
      "gone absent(hb)";
      "broken invariant_violation for 500ms";
    ]

let test_parse_rules_file () =
  let text = "# rules\nhot ops > 1\n\nfast rate(ops) < 9 for 2s\n" in
  (match Alert.parse_rules text with
  | Ok rs -> check_int "two rules" 2 (List.length rs)
  | Error m -> Alcotest.failf "parse_rules: %s" m);
  (match Alert.parse_rules "ok ops > 1\nbroken ops >!> 2\n" with
  | Error m ->
      check_bool "error names the line" true (contains m "line 2")
  | Ok _ -> Alcotest.fail "bad line accepted");
  match Alert.parse_rules "dup ops > 1\ndup ops > 2\n" with
  | Error m ->
      check_bool "duplicate rejected" true (contains m "dup")
  | Ok _ -> Alcotest.fail "duplicate names accepted"

(* --- lifecycle --- *)

let test_threshold_fire_resolve () =
  let registry = Registry.create () in
  let sink = Sink.memory () in
  let g = Registry.gauge registry "depth" in
  let t = Alert.create ~registry ~sink [ parse_one "deep depth >= 5" ] in
  checkf "gauge registered at 0" 0. (gauge_of registry "deep");
  Alert.eval ~now_s:1. t;
  check_bool "below threshold: inactive" true (state_of t "deep" = Alert.Inactive);
  Metric.set g 7.;
  Alert.eval ~now_s:2. t;
  check_bool "fires immediately (no for)" true (state_of t "deep" = Alert.Firing);
  checkf "gauge flipped" 1. (gauge_of registry "deep");
  check_bool "any_firing" true (Alert.any_firing t);
  check_int "one firing rule" 1 (List.length (Alert.firing t));
  Metric.set g 2.;
  Alert.eval ~now_s:3. t;
  check_bool "resolved" true (state_of t "deep" = Alert.Inactive);
  checkf "gauge back to 0" 0. (gauge_of registry "deep");
  check_bool "nothing firing" false (Alert.any_firing t);
  (* transition ring: firing then resolved, oldest first *)
  (match Alert.transitions t with
  | [ a; b ] ->
      check_bool "first to firing" true a.Alert.to_firing;
      check_bool "then resolved" false b.Alert.to_firing;
      checkf "fired at t=2" 2. a.Alert.at_s
  | trs -> Alcotest.failf "expected 2 transitions, got %d" (List.length trs));
  (* events landed in the sink with the rule name attached *)
  let names =
    List.map (fun e -> e.Event.name) (Sink.contents sink)
  in
  Alcotest.(check (list string))
    "events emitted" [ "alert.firing"; "alert.resolved" ] names;
  check_int "evals counted" 3 (Alert.evals t)

let test_for_duration_debounce () =
  let registry = Registry.create () in
  let g = Registry.gauge registry "depth" in
  let t = Alert.create ~registry [ parse_one "deep depth >= 5 for 10s" ] in
  Metric.set g 9.;
  Alert.eval ~now_s:0. t;
  check_bool "pending, not firing" true (state_of t "deep" = Alert.Pending);
  Alert.eval ~now_s:5. t;
  check_bool "still pending within window" true
    (state_of t "deep" = Alert.Pending);
  checkf "gauge stays 0 while pending" 0. (gauge_of registry "deep");
  Alert.eval ~now_s:10. t;
  check_bool "fires once held for the window" true
    (state_of t "deep" = Alert.Firing);
  (* a dip while pending resets the debounce *)
  Metric.set g 1.;
  Alert.eval ~now_s:11. t;
  Metric.set g 9.;
  Alert.eval ~now_s:12. t;
  check_bool "back to pending after the dip" true
    (state_of t "deep" = Alert.Pending)

let test_rate_rule () =
  let registry = Registry.create () in
  let c = Registry.counter registry "ops_total" in
  let t = Alert.create ~registry [ parse_one "fast rate(ops_total) >= 2" ] in
  Alert.eval ~now_s:0. t;
  check_bool "no rate on first eval" true (state_of t "fast" = Alert.Inactive);
  Metric.add c 10;
  Alert.eval ~now_s:5. t;
  (* 10 ops in 5 s = 2/s *)
  check_bool "fires at the threshold rate" true
    (state_of t "fast" = Alert.Firing);
  Alert.eval ~now_s:10. t;
  check_bool "resolves when the counter stalls" true
    (state_of t "fast" = Alert.Inactive)

let test_absent_rule () =
  let registry = Registry.create () in
  let t = Alert.create ~registry [ parse_one "gone absent(hb_total)" ] in
  Alert.eval ~now_s:0. t;
  check_bool "missing metric fires" true (state_of t "gone" = Alert.Firing);
  let c = Registry.counter registry "hb_total" in
  Metric.inc c;
  Alert.eval ~now_s:1. t;
  check_bool "appearing metric resolves" true
    (state_of t "gone" = Alert.Inactive);
  Alert.eval ~now_s:2. t;
  check_bool "a stalled counter is absent again" true
    (state_of t "gone" = Alert.Firing);
  Metric.inc c;
  Alert.eval ~now_s:3. t;
  check_bool "an advancing counter resolves" true
    (state_of t "gone" = Alert.Inactive)

let test_invariant_rule () =
  let registry = Registry.create () in
  let v =
    Registry.counter registry
      "vstamp_invariant_violations_total{monitor=\"stamps\"}"
  in
  (* violations that predate the engine are baseline, not alerts *)
  Metric.add v 3;
  let t = Alert.create ~registry [ parse_one "broken invariant_violation" ] in
  Alert.eval ~now_s:0. t;
  check_bool "baseline does not fire" true
    (state_of t "broken" = Alert.Inactive);
  Metric.inc v;
  Alert.eval ~now_s:1. t;
  check_bool "new violation fires" true (state_of t "broken" = Alert.Firing)

let test_to_json_shape () =
  let registry = Registry.create () in
  let g = Registry.gauge registry "depth" in
  Metric.set g 9.;
  let t = Alert.create ~registry [ parse_one "deep depth >= 5" ] in
  Alert.eval ~now_s:1. t;
  let j = Alert.to_json t in
  let rules =
    match Jsonx.member "rules" j with
    | Some (Jsonx.List rs) -> rs
    | _ -> Alcotest.fail "no rules list"
  in
  check_int "one rule" 1 (List.length rules);
  let r = List.hd rules in
  check_bool "rule state serialised" true
    (Option.bind (Jsonx.member "state" r) Jsonx.to_str = Some "firing");
  check_bool "firing count" true
    (Option.bind (Jsonx.member "firing" j) Jsonx.to_int = Some 1);
  match Jsonx.member "transitions" j with
  | Some (Jsonx.List (_ :: _)) -> ()
  | _ -> Alcotest.fail "no transitions in payload"

let () =
  Alcotest.run "alert"
    [
      ( "grammar",
        [
          Alcotest.test_case "durations" `Quick test_durations;
          Alcotest.test_case "rule forms" `Quick test_parse_rule_forms;
          Alcotest.test_case "rule_to_string round trip" `Quick test_round_trip;
          Alcotest.test_case "rules file" `Quick test_parse_rules_file;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "threshold fire/resolve" `Quick
            test_threshold_fire_resolve;
          Alcotest.test_case "for-duration debounce" `Quick
            test_for_duration_debounce;
          Alcotest.test_case "rate rule" `Quick test_rate_rule;
          Alcotest.test_case "absence rule" `Quick test_absent_rule;
          Alcotest.test_case "invariant rule baselines" `Quick
            test_invariant_rule;
          Alcotest.test_case "/alerts.json payload" `Quick test_to_json_shape;
        ] );
    ]
