open Vstamp_core
open Vstamp_itc

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let rel = Alcotest.testable Relation.pp Relation.equal

(* --- Id trees --- *)

let test_id_norm () =
  check_bool "(0,0) -> 0" true (Itc.Id.norm (Branch (Zero, Zero)) = Itc.Id.Zero);
  check_bool "(1,1) -> 1" true (Itc.Id.norm (Branch (One, One)) = Itc.Id.One);
  check_bool "mixed stays" true
    (Itc.Id.norm (Branch (One, Zero)) = Itc.Id.Branch (One, Zero))

let test_id_split_seed () =
  let l, r = Itc.Id.split Itc.Id.One in
  check_bool "left half" true (l = Itc.Id.Branch (One, Zero));
  check_bool "right half" true (r = Itc.Id.Branch (Zero, One));
  check_bool "disjoint" true (Itc.Id.disjoint l r);
  check_bool "sum restores" true (Itc.Id.sum l r = Itc.Id.One)

let test_id_split_zero () =
  let l, r = Itc.Id.split Itc.Id.Zero in
  check_bool "both zero" true (l = Itc.Id.Zero && r = Itc.Id.Zero)

let test_id_split_nested () =
  let l, r = Itc.Id.split (Itc.Id.Branch (One, Zero)) in
  check_bool "pieces disjoint" true (Itc.Id.disjoint l r);
  check_bool "pieces well-formed" true
    (Itc.Id.well_formed l && Itc.Id.well_formed r);
  check_bool "sum restores" true (Itc.Id.sum l r = Itc.Id.Branch (One, Zero))

let test_id_sum_overlap () =
  check_bool "overlap raises" true
    (try
       ignore (Itc.Id.sum Itc.Id.One Itc.Id.One);
       false
     with Itc.Id.Overlap -> true)

let test_id_well_formed () =
  check_bool "unnormalized rejected" false
    (Itc.Id.well_formed (Branch (One, One)));
  check_bool "normalized ok" true
    (Itc.Id.well_formed (Branch (One, Branch (Zero, One))))

(* --- Event trees --- *)

let test_event_norm () =
  let open Itc.Event in
  check_bool "equal leaves collapse" true
    (norm (Node (1, Leaf 2, Leaf 2)) = Leaf 3);
  check_bool "minima sink" true
    (norm (Node (1, Leaf 2, Leaf 3)) = Node (3, Leaf 0, Leaf 1));
  check_bool "already normal" true (norm (Node (0, Leaf 0, Leaf 1)) = Node (0, Leaf 0, Leaf 1))

let test_event_minmax () =
  let open Itc.Event in
  let e = Node (1, Leaf 0, Node (2, Leaf 0, Leaf 3)) in
  check_int "min" 1 (min_value e);
  check_int "max" 6 (max_value e)

let test_event_leq () =
  let open Itc.Event in
  check_bool "leaf order" true (leq (Leaf 1) (Leaf 2));
  check_bool "leaf order strict" false (leq (Leaf 2) (Leaf 1));
  check_bool "leaf vs node" true (leq (Leaf 1) (Node (1, Leaf 0, Leaf 2)));
  check_bool "leaf vs node fails" false (leq (Leaf 2) (Node (1, Leaf 0, Leaf 2)));
  check_bool "node vs leaf" true (leq (Node (1, Leaf 0, Leaf 2)) (Leaf 3));
  check_bool "node vs leaf fails" false (leq (Node (1, Leaf 0, Leaf 2)) (Leaf 2));
  check_bool "concurrent nodes" false
    (leq (Node (0, Leaf 1, Leaf 0)) (Node (0, Leaf 0, Leaf 1)))

let test_event_join () =
  let open Itc.Event in
  check_bool "leaf max" true (join (Leaf 1) (Leaf 3) = Leaf 3);
  let a = Node (0, Leaf 1, Leaf 0) and b = Node (0, Leaf 0, Leaf 1) in
  check_bool "pointwise max" true (join a b = Leaf 1);
  check_bool "join upper bound" true (leq a (join a b) && leq b (join a b))

(* --- stamps: the fork/event/join protocol --- *)

let test_seed () =
  check_bool "well-formed" true (Itc.well_formed Itc.seed);
  check_bool "size small" true (Itc.size_bits Itc.seed <= 16);
  check_bool "leq reflexive" true (Itc.leq Itc.seed Itc.seed)

let test_update_fork_join_cycle () =
  let a, b = Itc.fork Itc.seed in
  Alcotest.check rel "forks equal" Relation.Equal (Itc.relation a b);
  let a = Itc.update a in
  Alcotest.check rel "updated dominates" Relation.Dominates (Itc.relation a b);
  let b = Itc.update b in
  Alcotest.check rel "both updated concurrent" Relation.Concurrent
    (Itc.relation a b);
  let j = Itc.join a b in
  Alcotest.check rel "join dominates a" Relation.Dominates (Itc.relation j a);
  Alcotest.check rel "join dominates b" Relation.Dominates (Itc.relation j b);
  check_bool "join id restored" true (Itc.id j = Itc.Id.One)

let test_update_idempotent_knowledge () =
  (* after sole-owner updates, event tree is a plain counter *)
  let s = Itc.update (Itc.update Itc.seed) in
  check_bool "flat counter" true (Itc.event_tree s = Itc.Event.Leaf 2)

let test_peek () =
  let a = Itc.update Itc.seed in
  let p = Itc.peek a in
  check_bool "anonymous" true (Itc.id p = Itc.Id.Zero);
  Alcotest.check rel "carries knowledge" Relation.Equal (Itc.relation p a);
  check_bool "cannot update" true
    (try
       ignore (Itc.update p);
       false
     with Invalid_argument _ -> true)

let test_sync () =
  let a, b = Itc.fork Itc.seed in
  let a = Itc.update a in
  let a, b = Itc.sync a b in
  Alcotest.check rel "synced equal" Relation.Equal (Itc.relation a b)

let test_figure4_analogue () =
  (* the Fig. 2/4 run of the version-stamp paper, executed over ITC *)
  let a2 = Itc.update Itc.seed in
  let b1, c1 = Itc.fork a2 in
  let d1, e1 = Itc.fork b1 in
  let c2 = Itc.update (Itc.update c1) in
  Alcotest.check rel "d obsolete vs c" Relation.Dominated (Itc.relation d1 c2);
  Alcotest.check rel "d equivalent e" Relation.Equal (Itc.relation d1 e1);
  let f1 = Itc.join e1 c2 in
  Alcotest.check rel "d obsolete vs f" Relation.Dominated (Itc.relation d1 f1);
  let g1 = Itc.join d1 f1 in
  check_bool "id space healed" true (Itc.id g1 = Itc.Id.One);
  check_bool "well-formed through run" true (Itc.well_formed g1)

(* --- differential against causal histories over random traces --- *)

module Itc_subject = struct
  type t = Itc.t

  type state = unit

  let initial = ((), Itc.seed)

  let update () x = ((), Itc.update x)

  let fork () x = ((), Itc.fork x)

  let join () a b = ((), Itc.join a b)
end

module Run_itc = Execution.Run (Itc_subject)

let prop_itc_matches_oracle =
  QCheck2.Test.make ~name:"ITC order agrees with causal histories" ~count:200
    ~print:Vstamp_test_support.Gen.trace_print
    (Vstamp_test_support.Gen.trace ())
    (fun ops ->
      let stamps = Array.of_list (Run_itc.run ops) in
      let hists = Array.of_list (Execution.Run_histories.run ops) in
      let n = Array.length stamps in
      let ok = ref true in
      for x = 0 to n - 1 do
        for y = 0 to n - 1 do
          if
            Itc.leq stamps.(x) stamps.(y)
            <> Causal_history.subset hists.(x) hists.(y)
          then ok := false
        done
      done;
      !ok)

let prop_itc_well_formed =
  QCheck2.Test.make ~name:"ITC stamps stay well-formed along traces"
    ~count:200 ~print:Vstamp_test_support.Gen.trace_print
    (Vstamp_test_support.Gen.trace ())
    (fun ops ->
      Run_itc.run_steps ops
      |> List.for_all (List.for_all Itc.well_formed))

let prop_itc_ids_disjoint =
  QCheck2.Test.make ~name:"frontier ITC ids stay pairwise disjoint"
    ~count:200 ~print:Vstamp_test_support.Gen.trace_print
    (Vstamp_test_support.Gen.trace ())
    (fun ops ->
      let frontier = Run_itc.run ops in
      List.for_all
        (fun a ->
          List.for_all
            (fun b -> a == b || Itc.Id.disjoint (Itc.id a) (Itc.id b))
            frontier)
        frontier)

let prop_event_join_lattice =
  let gen_event =
    let open QCheck2.Gen in
    let rec tree depth =
      if depth = 0 then map (fun n -> Itc.Event.Leaf n) (int_bound 4)
      else
        oneof
          [
            map (fun n -> Itc.Event.Leaf n) (int_bound 4);
            map3
              (fun n l r -> Itc.Event.norm (Itc.Event.Node (n, l, r)))
              (int_bound 4) (tree (depth - 1)) (tree (depth - 1));
          ]
    in
    tree 3
  in
  QCheck2.Test.make ~name:"event join is a semilattice" ~count:300
    QCheck2.Gen.(triple gen_event gen_event gen_event)
    (fun (a, b, c) ->
      let open Itc.Event in
      equal (join a b) (join b a)
      && equal (join (join a b) c) (join a (join b c))
      && equal (join a a) a
      && leq a (join a b)
      && (leq a b = equal (join a b) b))

(* --- fill/grow internals --- *)

let test_update_fill_path () =
  (* a replica owning the left half absorbs knowledge from the right by
     inflation (fill), without growing the tree *)
  let a, b = Itc.fork Itc.seed in
  let b = Itc.update b in
  let a = Itc.join a (Itc.peek b) in
  (* a's event tree has a bump in the right region it does not own *)
  let a' = Itc.update a in
  check_bool "well-formed" true (Itc.well_formed a');
  Alcotest.check rel "update dominates" Relation.Dominates (Itc.relation a' a)

let test_update_grow_path () =
  (* a half-owner updating repeatedly must grow its region of the event
     tree rather than inflate *)
  let a, b = Itc.fork Itc.seed in
  let a = Itc.update (Itc.update a) in
  check_bool "still well-formed" true (Itc.well_formed a);
  Alcotest.check rel "strictly ahead of the idle sibling" Relation.Dominates
    (Itc.relation a b)

let test_deep_fork_updates () =
  (* many nested forks, each updating: trees stay normalized *)
  let rec go s k acc =
    if k = 0 then acc
    else
      let l, r = Itc.fork s in
      go (Itc.update l) (k - 1) (Itc.update r :: acc)
  in
  let replicas = go Itc.seed 6 [] in
  check_bool "all well-formed" true (List.for_all Itc.well_formed replicas);
  (* merging everything restores a flat counter *)
  match replicas with
  | [] -> Alcotest.fail "unreachable"
  | x :: rest ->
      let m = List.fold_left Itc.join x rest in
      check_bool "ids partial" true (Itc.well_formed m)

let test_event_norm_idempotent () =
  let open Itc.Event in
  let e = Node (2, Node (1, Leaf 0, Leaf 3), Leaf 0) in
  check_bool "norm idempotent" true (norm (norm e) = norm e);
  check_bool "norm well-formed" true (well_formed (norm e))

(* --- wire codec --- *)

let test_wire_roundtrip () =
  let stamps =
    let a, b = Itc.fork Itc.seed in
    let a = Itc.update a in
    let b1, b2 = Itc.fork b in
    let b1 = Itc.update (Itc.update b1) in
    [ Itc.seed; a; b1; b2; Itc.join a b1; Itc.peek b1 ]
  in
  List.iter
    (fun s ->
      match Itc.Wire.of_string (Itc.Wire.to_string s) with
      | Ok s' -> check_bool (Itc.to_string s) true (Itc.equal s s')
      | Error e -> Alcotest.failf "decode failed: %a" Itc.Wire.pp_error e)
    stamps

let test_wire_bits_matches_size () =
  let a, b = Itc.fork Itc.seed in
  let a = Itc.update a in
  let j = Itc.join a b in
  List.iter
    (fun s -> check_int "bits = size_bits" (Itc.size_bits s) (Itc.Wire.bits s))
    [ Itc.seed; a; j ]

let test_wire_truncated () =
  match Itc.Wire.of_string "" with
  | Error Itc.Wire.Truncated -> ()
  | _ -> Alcotest.fail "expected Truncated"

let prop_wire_roundtrip_traces =
  QCheck2.Test.make ~name:"ITC wire round trip along traces" ~count:200
    ~print:Vstamp_test_support.Gen.trace_print
    (Vstamp_test_support.Gen.trace ())
    (fun ops ->
      List.for_all
        (fun s ->
          match Itc.Wire.of_string (Itc.Wire.to_string s) with
          | Ok s' -> Itc.equal s s'
          | Error _ -> false)
        (Run_itc.run ops))

let prop_wire_total =
  QCheck2.Test.make ~name:"ITC wire decoder is total" ~count:1000
    QCheck2.Gen.(map Bytes.unsafe_to_string (bytes_size (int_bound 16)))
    (fun input ->
      match Itc.Wire.of_string input with
      | Ok s -> Itc.well_formed s
      | Error _ -> true
      | exception _ -> false)

let () =
  Alcotest.run "itc"
    [
      ( "id trees",
        [
          Alcotest.test_case "norm" `Quick test_id_norm;
          Alcotest.test_case "split seed" `Quick test_id_split_seed;
          Alcotest.test_case "split zero" `Quick test_id_split_zero;
          Alcotest.test_case "split nested" `Quick test_id_split_nested;
          Alcotest.test_case "sum overlap" `Quick test_id_sum_overlap;
          Alcotest.test_case "well_formed" `Quick test_id_well_formed;
        ] );
      ( "event trees",
        [
          Alcotest.test_case "norm" `Quick test_event_norm;
          Alcotest.test_case "min/max" `Quick test_event_minmax;
          Alcotest.test_case "leq" `Quick test_event_leq;
          Alcotest.test_case "join" `Quick test_event_join;
        ] );
      ( "stamps",
        [
          Alcotest.test_case "seed" `Quick test_seed;
          Alcotest.test_case "fork/event/join cycle" `Quick
            test_update_fork_join_cycle;
          Alcotest.test_case "flat counter" `Quick test_update_idempotent_knowledge;
          Alcotest.test_case "peek" `Quick test_peek;
          Alcotest.test_case "sync" `Quick test_sync;
          Alcotest.test_case "figure 4 analogue" `Quick test_figure4_analogue;
        ] );
      ( "fill/grow",
        [
          Alcotest.test_case "fill path" `Quick test_update_fill_path;
          Alcotest.test_case "grow path" `Quick test_update_grow_path;
          Alcotest.test_case "deep forks" `Quick test_deep_fork_updates;
          Alcotest.test_case "norm idempotent" `Quick test_event_norm_idempotent;
        ] );
      ( "wire codec",
        [
          Alcotest.test_case "round trip" `Quick test_wire_roundtrip;
          Alcotest.test_case "bits = size_bits" `Quick
            test_wire_bits_matches_size;
          Alcotest.test_case "truncated" `Quick test_wire_truncated;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_itc_matches_oracle;
            prop_itc_well_formed;
            prop_itc_ids_disjoint;
            prop_event_join_lattice;
            prop_wire_roundtrip_traces;
            prop_wire_total;
          ] );
    ]
