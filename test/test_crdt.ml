open Vstamp_core
open Vstamp_crdt

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_str = Alcotest.(check string)

let test_create_read () =
  let r = Mv_register.create "v1" in
  Alcotest.(check (list string)) "single value" [ "v1" ] (Mv_register.read r);
  check_bool "not conflicted" false (Mv_register.is_conflicted r);
  check_str "value_exn" "v1" (Mv_register.value_exn r)

let test_write () =
  let r = Mv_register.write (Mv_register.create "v1") "v2" in
  check_str "overwritten" "v2" (Mv_register.value_exn r)

let test_fork_and_stale_merge () =
  let a, b = Mv_register.fork (Mv_register.create "v1") in
  let a = Mv_register.write a "v2" in
  let merged = Mv_register.merge a b in
  check_str "dominant value wins" "v2" (Mv_register.value_exn merged);
  let merged' = Mv_register.merge b a in
  check_str "direction irrelevant" "v2" (Mv_register.value_exn merged')

let test_concurrent_merge () =
  let a, b = Mv_register.fork (Mv_register.create "v1") in
  let a = Mv_register.write a "from-a" in
  let b = Mv_register.write b "from-b" in
  let merged = Mv_register.merge a b in
  check_bool "conflicted" true (Mv_register.is_conflicted merged);
  check_int "two candidates" 2 (List.length (Mv_register.read merged));
  check_bool "both present" true
    (List.mem "from-a" (Mv_register.read merged)
    && List.mem "from-b" (Mv_register.read merged));
  Alcotest.check_raises "value_exn raises"
    (Invalid_argument "Mv_register.value_exn: 2 concurrent values") (fun () ->
      ignore (Mv_register.value_exn merged))

let test_concurrent_same_value_dedup () =
  let a, b = Mv_register.fork (Mv_register.create "v1") in
  let a = Mv_register.write a "same" in
  let b = Mv_register.write b "same" in
  let merged = Mv_register.merge a b in
  check_int "deduplicated" 1 (List.length (Mv_register.read merged))

let test_resolve () =
  let a, b = Mv_register.fork (Mv_register.create "v1") in
  let a = Mv_register.write a "A" in
  let b = Mv_register.write b "B" in
  let merged = Mv_register.merge a b in
  let resolved = Mv_register.resolve merged ~value:"AB" in
  check_bool "resolved" false (Mv_register.is_conflicted resolved);
  check_str "chosen value" "AB" (Mv_register.value_exn resolved)

let test_sync () =
  let a, b = Mv_register.fork (Mv_register.create "v1") in
  let a = Mv_register.write a "v2" in
  let a, b = Mv_register.sync a b in
  check_bool "both equal after sync" true
    (Relation.equal Relation.Equal (Mv_register.relation a b));
  check_str "b caught up" "v2" (Mv_register.value_exn b)

let test_resolution_survives_later_merge () =
  let a, b = Mv_register.fork (Mv_register.create "v1") in
  let a = Mv_register.write a "A" in
  let b = Mv_register.write b "B" in
  let a, b = Mv_register.sync a b in
  (* both are now conflicted; a resolves, then meets b again *)
  let a = Mv_register.resolve a ~value:"AB" in
  let merged = Mv_register.merge a b in
  check_str "resolution dominates the stale conflict" "AB"
    (Mv_register.value_exn merged)

let test_partition_story () =
  (* registers replicate inside a partition with no id service *)
  let hub = Mv_register.create "draft-0" in
  let hub, field1 = Mv_register.fork hub in
  let field1, field2 = Mv_register.fork field1 in
  let field2, field3 = Mv_register.fork field2 in
  (* two field devices write concurrently *)
  let field1 = Mv_register.write field1 "field1-draft" in
  let field3 = Mv_register.write field3 "field3-draft" in
  (* partition heals: cascade of merges *)
  let m = Mv_register.merge (Mv_register.merge field1 field2) field3 in
  let m = Mv_register.merge m hub in
  check_int "both concurrent drafts survive" 2
    (List.length (Mv_register.read m));
  let final = Mv_register.resolve m ~value:"consolidated" in
  check_str "consolidated" "consolidated" (Mv_register.value_exn final)

(* --- properties --- *)

(* random interleavings of write/fork/merge on a pool of replicas *)
let prop_merge_never_loses_dominant_writes =
  QCheck2.Test.make ~name:"a merge never drops a value it must keep"
    ~count:300
    QCheck2.Gen.(list_size (int_bound 20) (int_bound 2))
    (fun script ->
      (* pool starts with one register; 0 = write, 1 = fork, 2 = merge *)
      let counter = ref 0 in
      let fresh () =
        incr counter;
        Printf.sprintf "w%d" !counter
      in
      let pool = ref [ Mv_register.create (fresh ()) ] in
      List.iter
        (fun op ->
          match (op, !pool) with
          | 0, r :: rest -> pool := Mv_register.write r (fresh ()) :: rest
          | 1, r :: rest ->
              let a, b = Mv_register.fork r in
              pool := a :: b :: rest
          | 2, a :: b :: rest -> pool := Mv_register.merge a b :: rest
          | _ -> ())
        script;
      (* invariant: every replica holds at least one candidate, and no
         candidate list has duplicates *)
      List.for_all
        (fun r ->
          let vs = Mv_register.read r in
          vs <> [] && List.length vs = List.length (List.sort_uniq compare vs))
        !pool)

let prop_merge_commutative_values =
  QCheck2.Test.make ~name:"merge candidate sets are order-insensitive"
    ~count:300
    QCheck2.Gen.(pair bool bool)
    (fun (wa, wb) ->
      let a, b = Mv_register.fork (Mv_register.create "v0") in
      let a = if wa then Mv_register.write a "va" else a in
      let b = if wb then Mv_register.write b "vb" else b in
      let m1 = List.sort compare (Mv_register.read (Mv_register.merge a b)) in
      let m2 = List.sort compare (Mv_register.read (Mv_register.merge b a)) in
      m1 = m2)

let () =
  Alcotest.run "crdt"
    [
      ( "mv_register",
        [
          Alcotest.test_case "create/read" `Quick test_create_read;
          Alcotest.test_case "write" `Quick test_write;
          Alcotest.test_case "stale merge" `Quick test_fork_and_stale_merge;
          Alcotest.test_case "concurrent merge" `Quick test_concurrent_merge;
          Alcotest.test_case "dedup same value" `Quick
            test_concurrent_same_value_dedup;
          Alcotest.test_case "resolve" `Quick test_resolve;
          Alcotest.test_case "sync" `Quick test_sync;
          Alcotest.test_case "resolution survives merge" `Quick
            test_resolution_survives_later_merge;
          Alcotest.test_case "partition story" `Quick test_partition_story;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_merge_never_loses_dominant_writes; prop_merge_commutative_values ] );
    ]
