(* Vstamp_obs.Bench_store: run parsing, the metric flattening behind
   `vstamp bench diff/check`, config comparability, and the JSONL
   ledger. *)

module Obs = Vstamp_obs
module BS = Obs.Bench_store
open Obs.Jsonx

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_string = Alcotest.(check string)

let run_of_json j =
  match BS.of_json j with
  | Ok r -> r
  | Error m -> Alcotest.failf "of_json rejected a valid run: %s" m

(* a miniature but shape-complete /3 run *)
let mk_run ?(schema = "vstamp-bench-core/3") ?(join_ns = 100.0)
    ?(ratio = 4.0) ?(config = Obj [ ("quick", Bool false) ]) () =
  run_of_json
    (Obj
       [
         ("schema", String schema);
         ("seed", Int 7);
         ("git_rev", String "deadbeef");
         ("config", config);
         ( "op_latency_ns",
           Obj
             [
               ("ops/stamp/join d8", Float join_ns);
               ("ops/stamp/update d8", Float 10.0);
               ( "ablation/list/join:12",
                 Obj [ ("timed_out", Bool true); ("probe_ms", Float 317.0) ] );
             ] );
         ( "sizes",
           List
             [
               Obj
                 [
                   ("workload", String "uniform");
                   ("n", Int 100);
                   ("tracker", String "stamps");
                   ("mean_bits", Float 50.0);
                   ("p95_bits", Float 80.0);
                   ("peak_bits", Int 120);
                 ];
             ] );
         ( "reduction",
           List
             [
               Obj
                 [
                   ("trace", String "churn");
                   ("reduced_bits", Int 100);
                   ("raw_bits", Int 400);
                   ("ratio", Float ratio);
                 ];
             ] );
         ( "monitor_overhead",
           Obj
             [
               ( "uniform",
                 Obj
                   [
                     ("monitor_slowdown", Float 50.0);
                     ("sampled_slowdown", Float 2.0);
                   ] );
             ] );
       ])

(* --- parsing --- *)

let test_of_json () =
  check_bool "accepts /2" true
    (Result.is_ok
       (BS.of_json (Obj [ ("schema", String "vstamp-bench-core/2") ])));
  check_bool "accepts /3" true
    (Result.is_ok
       (BS.of_json (Obj [ ("schema", String "vstamp-bench-core/3") ])));
  check_bool "rejects foreign schema" true
    (Result.is_error (BS.of_json (Obj [ ("schema", String "other/1") ])));
  check_bool "rejects missing schema" true
    (Result.is_error (BS.of_json (Obj [ ("x", Int 1) ])));
  let r = mk_run () in
  check_string "schema accessor" "vstamp-bench-core/3" (BS.schema r);
  check_bool "git_rev accessor" true (BS.git_rev r = Some "deadbeef")

(* --- metric flattening --- *)

let test_metrics () =
  let ms = BS.metrics (mk_run ()) in
  let names = List.map (fun (n, _, _) -> n) ms in
  check_bool "sorted" true (names = List.sort compare names);
  let value name =
    match List.find_opt (fun (n, _, _) -> n = name) ms with
    | Some (_, v, _) -> v
    | None -> Alcotest.failf "metric %s missing" name
  in
  check_bool "latency" true (value "latency/ops/stamp/join d8" = 100.0);
  check_bool "size" true (value "size/uniform/n=100/stamps/p95_bits" = 80.0);
  check_bool "reduction bits" true (value "reduction/churn/reduced_bits" = 100.0);
  check_bool "reduction ratio" true (value "reduction/churn/ratio" = 4.0);
  check_bool "monitor" true (value "monitor/uniform/sampled_slowdown" = 2.0);
  check_bool "timed-out case omitted" true
    (not (List.mem "latency/ablation/list/join:12" names))

(* --- deltas, directions, and the gate --- *)

let test_compare_and_gate () =
  let baseline = mk_run () in
  (* join 2x slower (regression), ratio 2x better (improvement) *)
  let current = mk_run ~join_ns:200.0 ~ratio:8.0 () in
  match BS.compare_runs ~baseline current with
  | Error m -> Alcotest.failf "same-config compare refused: %s" m
  | Ok deltas ->
      let find name =
        match List.find_opt (fun d -> d.BS.metric = name) deltas with
        | Some d -> d
        | None -> Alcotest.failf "delta %s missing" name
      in
      let join = find "latency/ops/stamp/join d8" in
      check_bool "lower-better regression is positive" true
        (abs_float (join.BS.worse_pct -. 100.0) < 1e-9);
      let ratio = find "reduction/churn/ratio" in
      check_bool "higher-better improvement is negative" true
        (ratio.BS.worse_pct < 0.0);
      let regs = BS.regressions ~tolerance:50.0 deltas in
      check_int "one regression beyond 50%" 1 (List.length regs);
      check_string "it is the join" "latency/ops/stamp/join d8"
        (List.hd regs).BS.metric;
      check_int "no regressions at 150%" 0
        (List.length (BS.regressions ~tolerance:150.0 deltas));
      check_bool "ratio improvement found" true
        (List.exists
           (fun d -> d.BS.metric = "reduction/churn/ratio")
           (BS.improvements ~tolerance:10.0 deltas))

let test_config_compatibility () =
  let a = mk_run () in
  let b = mk_run ~config:(Obj [ ("quick", Bool true) ]) () in
  (match BS.config_compatibility ~baseline:a ~current:a with
  | `Same -> ()
  | _ -> Alcotest.fail "identical configs should be `Same");
  (match BS.config_compatibility ~baseline:a ~current:b with
  | `Mismatch _ -> ()
  | _ -> Alcotest.fail "different configs should be `Mismatch");
  check_bool "mismatch refused" true
    (Result.is_error (BS.compare_runs ~baseline:a b));
  check_bool "mismatch overridable" true
    (Result.is_ok (BS.compare_runs ~ignore_config:true ~baseline:a b));
  (* /2 runs predate the config block: comparable, compatibility unknown *)
  let legacy =
    run_of_json
      (Obj
         [
           ("schema", String "vstamp-bench-core/2");
           ("op_latency_ns", Obj [ ("ops/stamp/join d8", Float 90.0) ]);
         ])
  in
  (match BS.config_compatibility ~baseline:legacy ~current:a with
  | `Unknown -> ()
  | _ -> Alcotest.fail "legacy run should be `Unknown");
  match BS.compare_runs ~baseline:legacy a with
  | Ok [ d ] ->
      check_string "legacy compares on the intersection"
        "latency/ops/stamp/join d8" d.BS.metric
  | Ok ds -> Alcotest.failf "expected one delta, got %d" (List.length ds)
  | Error m -> Alcotest.failf "legacy compare refused: %s" m

let test_zero_baseline () =
  let d =
    match
      BS.compare_runs
        ~baseline:(mk_run ~join_ns:0.0 ())
        (mk_run ~join_ns:5.0 ())
    with
    | Ok ds -> List.find (fun d -> d.BS.metric = "latency/ops/stamp/join d8") ds
    | Error m -> Alcotest.failf "compare failed: %s" m
  in
  check_bool "zero baseline going up is +inf" true (d.BS.worse_pct = infinity)

(* --- the ledger --- *)

let test_ledger_roundtrip () =
  let file = Filename.temp_file "vstamp_bench" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists file then Sys.remove file)
    (fun () ->
      Sys.remove file;
      let entry rev =
        Obj
          [
            ("schema", String "vstamp-bench-core/3");
            ("git_rev", String rev);
          ]
      in
      BS.append ~file (entry "aaa");
      BS.append ~file (entry "bbb");
      match BS.history ~file with
      | Error m -> Alcotest.failf "history failed: %s" m
      | Ok entries ->
          check_int "two entries" 2 (List.length entries);
          check_bool "oldest first" true
            (List.map
               (fun j -> Obs.Jsonx.member "git_rev" j)
               entries
            = [ Some (String "aaa"); Some (String "bbb") ]))

let test_ledger_errors () =
  check_bool "missing ledger is an error" true
    (Result.is_error (BS.history ~file:"/nonexistent/ledger.jsonl"));
  check_bool "missing run file is an error" true
    (Result.is_error (BS.load ~file:"/nonexistent/run.json"));
  let file = Filename.temp_file "vstamp_bench" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists file then Sys.remove file)
    (fun () ->
      let oc = open_out file in
      output_string oc "{\"schema\":\"vstamp-bench-core/3\"}\n\nnot json\n";
      close_out oc;
      match BS.history ~file with
      | Ok _ -> Alcotest.fail "malformed line accepted"
      | Error m ->
          check_bool "error names line 3" true
            (String.length m > 0
            &&
            let re = file ^ ":3" in
            String.length m >= String.length re
            && String.sub m 0 (String.length re) = re))

let () =
  Alcotest.run "bench_store"
    [
      ( "parse",
        [
          Alcotest.test_case "of_json" `Quick test_of_json;
          Alcotest.test_case "metrics" `Quick test_metrics;
        ] );
      ( "compare",
        [
          Alcotest.test_case "deltas and gate" `Quick test_compare_and_gate;
          Alcotest.test_case "config compatibility" `Quick
            test_config_compatibility;
          Alcotest.test_case "zero baseline" `Quick test_zero_baseline;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "roundtrip" `Quick test_ledger_roundtrip;
          Alcotest.test_case "errors" `Quick test_ledger_errors;
        ] );
    ]
