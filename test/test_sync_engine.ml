(* The shared anti-entropy engine: the delta ledger's arithmetic, and
   the headline refactor property — a session split into wire legs
   (offer / wants / fulfil / reconcile / apply, what [Vstamp_net] ships
   between processes) produces stores identical to the in-process
   [Stamped_kv.sync], while never shipping more than a full-state
   exchange of the two replicas. *)

open Vstamp_kvs
module Ledger = Vstamp_sync.Ledger
module Registry = Vstamp_obs.Registry
module Metric = Vstamp_obs.Metric
module St = Vstamp_core.Stamp.Over_tree

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

(* --- the ledger --- *)

let test_ledger_tally () =
  let t = Ledger.create () in
  check_int "redundant empty" 0 (Ledger.redundant t);
  Alcotest.(check (float 0.)) "efficiency empty" 1.0 (Ledger.efficiency t);
  Ledger.add t ~shipped:10 ~minimal:4;
  Ledger.add t ~shipped:6 ~minimal:6;
  check_int "shipped" 16 t.Ledger.shipped;
  check_int "minimal" 10 t.Ledger.minimal;
  check_int "entries" 2 t.Ledger.entries;
  check_int "redundant" 6 (Ledger.redundant t);
  Alcotest.(check (float 1e-9))
    "efficiency" (10. /. 16.) (Ledger.efficiency t)

let test_ledger_counters () =
  let r = Registry.create () in
  let c = Ledger.counters ~registry:r ~prefix:"x_" () in
  Ledger.round c;
  Ledger.round c;
  Ledger.account c ~shipped:8 ~minimal:2;
  check_int "rounds" 2 (Metric.count (Registry.counter r "x_rounds_total"));
  check_int "shipped" 8 (Metric.count (Registry.counter r "x_shipped_bytes_total"));
  check_int "minimal" 2 (Metric.count (Registry.counter r "x_minimal_bytes_total"));
  check_int "redundant" 6
    (Metric.count (Registry.counter r "x_redundant_bytes_total"));
  Alcotest.(check (float 1e-9))
    "efficiency gauge" 0.25
    (Metric.value (Registry.gauge r "x_delta_efficiency"))

let test_ledger_publisher () =
  let r = Registry.create () in
  let p = Ledger.publisher ~registry:r ~prefix:"y_" () in
  let t = Ledger.create () in
  Ledger.add t ~shipped:10 ~minimal:4;
  Ledger.publish p t;
  Ledger.add t ~shipped:5 ~minimal:5;
  Ledger.publish p t;
  (* growth-only publication: totals equal the tally, not double *)
  check_int "shipped" 15 (Metric.count (Registry.counter r "y_shipped_bytes_total"));
  check_int "minimal" 9 (Metric.count (Registry.counter r "y_minimal_bytes_total"));
  check_int "redundant" 6
    (Metric.count (Registry.counter r "y_redundant_bytes_total"))

(* --- wire legs vs in-process session --- *)

module KV = Stamped_kv

let put s (k, v) = KV.put s ~key:k v

let build stores = List.fold_left put KV.empty stores

(* Observable store state: keys, candidate sets, and the exact stamps. *)
let state s =
  List.map (fun k -> (k, List.sort compare (KV.get s k), KV.stamp s k)) (KV.keys s)

let same_store what x y =
  Alcotest.(check bool) what true (state x = state y)

let wire_session a b =
  let frontier = KV.offer a in
  let wanted = KV.wants b frontier in
  let items = KV.fulfil a wanted in
  let tally = Ledger.create () in
  let b', results = KV.reconcile ~tally b frontier items in
  let a' = KV.apply a results in
  (a', b', tally)

let meta_bytes st = (St.size_bits st + 7) / 8

(* What a naive exchange ships: both replicas' entire stores — every
   stamp and every candidate value, both directions. *)
let full_state_bytes s =
  List.fold_left
    (fun acc k ->
      let m = match KV.stamp s k with Some st -> meta_bytes st | None -> 0 in
      let p =
        List.fold_left (fun n v -> n + String.length v) 0 (KV.get s k)
      in
      acc + m + p)
    0 (KV.keys s)

let build_on s ops = List.fold_left put s ops

let divergent_pair () =
  let base = build [ ("k1", "v1"); ("k2", "v2"); ("k3", "v3") ] in
  let a, b = KV.sync base KV.empty in
  (* diverge: overwrite on both sides, plus disjoint new keys *)
  let a = build_on a [ ("k1", "a-side"); ("only-a", "x") ]
  and b = build_on b [ ("k1", "b-side"); ("k2", "newer"); ("only-b", "y") ] in
  (a, b)

let test_wire_equals_inprocess () =
  let a, b = divergent_pair () in
  let a1, b1 = KV.sync a b in
  let a2, b2, tally = wire_session a b in
  same_store "initiator stores agree" a1 a2;
  same_store "responder stores agree" b1 b2;
  check_bool "converged" true (KV.converged a2 b2);
  check_bool "shipped bounded by full state" true
    (tally.Ledger.shipped <= full_state_bytes a + full_state_bytes b);
  check_bool "minimal <= shipped" true
    (tally.Ledger.minimal <= tally.Ledger.shipped)

let test_wire_second_round_ships_no_payload () =
  let a, b = divergent_pair () in
  let a, b, _ = wire_session a b in
  let a', b', tally = wire_session a b in
  same_store "initiator stable" a a';
  same_store "responder stable" b b';
  (* everything equal with matching digests: the minimal delta is 0 *)
  check_int "minimal second round" 0 tally.Ledger.minimal

(* --- the qcheck equivalence property --- *)

let gen_key = QCheck2.Gen.oneofl [ "alpha"; "beta"; "gamma"; "delta"; "eps" ]

let gen_op =
  QCheck2.Gen.(pair gen_key (string_size ~gen:printable (int_bound 8)))

let gen_scenario =
  QCheck2.Gen.(
    triple
      (list_size (int_bound 6) gen_op)
      (list_size (int_bound 6) gen_op)
      (list_size (int_bound 6) gen_op))

let print_scenario (base, ops_a, ops_b) =
  let ops l =
    "[" ^ String.concat "; " (List.map (fun (k, v) -> k ^ "=" ^ v) l) ^ "]"
  in
  Printf.sprintf "base %s a %s b %s" (ops base) (ops ops_a) (ops ops_b)

let prop_wire_equivalence =
  QCheck2.Test.make ~name:"wire legs = in-process session, shipped bounded"
    ~count:500 ~print:print_scenario gen_scenario (fun (base, ops_a, ops_b) ->
      let s0 = build base in
      let a0, b0 = KV.sync s0 KV.empty in
      let a = build_on a0 ops_a and b = build_on b0 ops_b in
      let a1, b1 = KV.sync a b in
      let a2, b2, tally = wire_session a b in
      state a1 = state a2
      && state b1 = state b2
      && KV.converged a2 b2
      && tally.Ledger.shipped <= full_state_bytes a + full_state_bytes b
      && tally.Ledger.minimal <= tally.Ledger.shipped)

let prop_wire_idempotent =
  QCheck2.Test.make ~name:"second wire round is a fixpoint with 0 minimal"
    ~count:200 ~print:print_scenario gen_scenario (fun (base, ops_a, ops_b) ->
      let s0 = build base in
      let a0, b0 = KV.sync s0 KV.empty in
      let a = build_on a0 ops_a and b = build_on b0 ops_b in
      let a, b, _ = wire_session a b in
      let a', b', tally = wire_session a b in
      state a = state a' && state b = state b' && tally.Ledger.minimal = 0)

let () =
  Alcotest.run "sync engine"
    [
      ( "ledger",
        [
          Alcotest.test_case "tally arithmetic" `Quick test_ledger_tally;
          Alcotest.test_case "registry counters" `Quick test_ledger_counters;
          Alcotest.test_case "growth publisher" `Quick test_ledger_publisher;
        ] );
      ( "wire legs",
        [
          Alcotest.test_case "equals in-process sync" `Quick
            test_wire_equals_inprocess;
          Alcotest.test_case "second round ships nothing" `Quick
            test_wire_second_round_ships_no_payload;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_wire_equivalence; prop_wire_idempotent ] );
    ]
