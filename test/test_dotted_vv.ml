open Vstamp_vv

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let sorted s = List.sort compare (Dotted_vv.values s)

(* --- basic protocol --- *)

let test_empty () =
  check_bool "empty" true (Dotted_vv.is_empty Dotted_vv.empty);
  check_bool "no conflict" false (Dotted_vv.conflict Dotted_vv.empty);
  check_bool "well-formed" true (Dotted_vv.well_formed Dotted_vv.empty)

let test_first_put () =
  let s = Dotted_vv.put Dotted_vv.empty ~replica:0 ~context:Version_vector.zero "v1" in
  Alcotest.(check (list string)) "one value" [ "v1" ] (Dotted_vv.values s);
  check_bool "well-formed" true (Dotted_vv.well_formed s);
  check_int "context has the dot" 1 (Version_vector.get (Dotted_vv.context s) 0)

let test_causal_overwrite () =
  let s = Dotted_vv.put Dotted_vv.empty ~replica:0 ~context:Version_vector.zero "v1" in
  let _, ctx = Dotted_vv.get s in
  let s = Dotted_vv.put s ~replica:0 ~context:ctx "v2" in
  Alcotest.(check (list string)) "overwritten" [ "v2" ] (Dotted_vv.values s);
  check_bool "no conflict" false (Dotted_vv.conflict s)

let test_blind_put_keeps_siblings () =
  let s = Dotted_vv.put Dotted_vv.empty ~replica:0 ~context:Version_vector.zero "v1" in
  (* a client that read nothing cannot overwrite anything *)
  let s = Dotted_vv.put s ~replica:0 ~context:Version_vector.zero "v2" in
  Alcotest.(check (list string)) "both survive" [ "v1"; "v2" ] (sorted s);
  check_bool "conflict" true (Dotted_vv.conflict s)

let test_concurrent_clients () =
  let s0 = Dotted_vv.put Dotted_vv.empty ~replica:0 ~context:Version_vector.zero "base" in
  let _, ctx = Dotted_vv.get s0 in
  (* two clients read the same state, both put *)
  let s1 = Dotted_vv.put s0 ~replica:0 ~context:ctx "from-A" in
  let s2 = Dotted_vv.put s1 ~replica:0 ~context:ctx "from-B" in
  (* each overwrote base, neither overwrote the other *)
  Alcotest.(check (list string)) "two siblings" [ "from-A"; "from-B" ] (sorted s2);
  (* a third client reads both and reconciles *)
  let _, ctx = Dotted_vv.get s2 in
  let s3 = Dotted_vv.put s2 ~replica:0 ~context:ctx "merged" in
  Alcotest.(check (list string)) "reconciled" [ "merged" ] (Dotted_vv.values s3)

let test_per_server_counters () =
  let s = Dotted_vv.put Dotted_vv.empty ~replica:3 ~context:Version_vector.zero "x" in
  let s = Dotted_vv.put s ~replica:7 ~context:Version_vector.zero "y" in
  match Dotted_vv.dots s with
  | [ d1; d2 ] ->
      check_bool "distinct replicas" true
        (d1.Dotted_vv.replica <> d2.Dotted_vv.replica);
      check_int "counters start at 1" 1 d1.Dotted_vv.counter;
      check_int "counters start at 1 (2)" 1 d2.Dotted_vv.counter
  | _ -> Alcotest.fail "two dots expected"

(* --- replication --- *)

let test_sync_propagates () =
  let a = Dotted_vv.put Dotted_vv.empty ~replica:0 ~context:Version_vector.zero "v1" in
  let b = Dotted_vv.empty in
  let m = Dotted_vv.sync a b in
  Alcotest.(check (list string)) "value arrives" [ "v1" ] (Dotted_vv.values m);
  check_bool "well-formed" true (Dotted_vv.well_formed m)

let test_sync_removes_superseded () =
  let a = Dotted_vv.put Dotted_vv.empty ~replica:0 ~context:Version_vector.zero "v1" in
  let b = Dotted_vv.sync Dotted_vv.empty a in
  (* replica 1 overwrites causally *)
  let _, ctx = Dotted_vv.get b in
  let b = Dotted_vv.put b ~replica:1 ~context:ctx "v2" in
  (* now syncing back must delete v1 at a: its dot is covered by b's
     context and b no longer stores it *)
  let m = Dotted_vv.sync a b in
  Alcotest.(check (list string)) "superseded removed" [ "v2" ] (Dotted_vv.values m)

let test_sync_keeps_concurrent () =
  let a = Dotted_vv.put Dotted_vv.empty ~replica:0 ~context:Version_vector.zero "at-a" in
  let b = Dotted_vv.put Dotted_vv.empty ~replica:1 ~context:Version_vector.zero "at-b" in
  let m = Dotted_vv.sync a b in
  Alcotest.(check (list string)) "both kept" [ "at-a"; "at-b" ] (sorted m)

let test_sync_commutative_idempotent () =
  let a = Dotted_vv.put Dotted_vv.empty ~replica:0 ~context:Version_vector.zero "x" in
  let b = Dotted_vv.put Dotted_vv.empty ~replica:1 ~context:Version_vector.zero "y" in
  let ab = Dotted_vv.sync a b and ba = Dotted_vv.sync b a in
  Alcotest.(check (list string)) "commutes" (sorted ab) (sorted ba);
  let abab = Dotted_vv.sync ab ab in
  Alcotest.(check (list string)) "idempotent" (sorted ab) (sorted abab)

(* --- differential model: siblings are exactly the maximal writes --- *)

(* Model: every put is an event with a causal history (the context's
   events plus itself); live values of an entry are the writes not
   strictly dominated by any other write seen by that entry.  We mirror
   puts/syncs on (value, history) sets and compare value sets. *)
module Model = struct
  module Iset = Set.Make (Int)

  type entry = { writes : (string * Iset.t) list; seen : Iset.t }

  let empty = { writes = []; seen = Iset.empty }

  let put e ~event ~context_events value =
    let history = Iset.add event context_events in
    let writes =
      (value, history)
      :: List.filter
           (fun (_, h) -> not (Iset.subset h history))
           e.writes
    in
    { writes; seen = Iset.union e.seen history }

  let sync a b =
    let survives (v, h) other =
      List.exists (fun (v', h') -> v = v' && Iset.equal h h') other.writes
      || not (Iset.subset h other.seen)
    in
    let keep mine other = List.filter (fun w -> survives w other) mine.writes in
    let wa = keep a b in
    let wb =
      List.filter
        (fun (v, h) ->
          (not (List.exists (fun (v', h') -> v = v' && Iset.equal h h') wa))
          && (List.exists (fun (v', h') -> v = v' && Iset.equal h h') a.writes
             || not (Iset.subset h a.seen)))
        b.writes
    in
    { writes = wa @ wb; seen = Iset.union a.seen b.seen }

  let values e = List.map fst e.writes
end

(* random programs over 2 server replicas of one key *)
type cmd = Put of int * bool (* replica, echo latest context? *) | Sync

let gen_cmd =
  QCheck2.Gen.(
    oneof
      [
        map2 (fun r echo -> Put (r, echo)) (int_bound 1) bool;
        return Sync;
      ])

let print_cmd = function
  | Put (r, echo) -> Printf.sprintf "put(%d,%s)" r (if echo then "ctx" else "blind")
  | Sync -> "sync"

(* shared runner so the random property and the exhaustive enumeration
   use the same machinery *)
let runs_like_model cmds =
  let module Iset = Model.Iset in
  let servers = [| Dotted_vv.empty; Dotted_vv.empty |] in
  let models = [| Model.empty; Model.empty |] in
  let next_event = ref 0 in
  let counter = ref 0 in
  let seen_events = [| Iset.empty; Iset.empty |] in
  let value () =
    incr counter;
    Printf.sprintf "w%d" !counter
  in
  List.iter
    (fun cmd ->
      match cmd with
      | Put (r, echo) ->
          let context, context_events =
            if echo then (Dotted_vv.context servers.(r), seen_events.(r))
            else (Vstamp_vv.Version_vector.zero, Iset.empty)
          in
          let v = value () in
          let e = !next_event in
          incr next_event;
          servers.(r) <- Dotted_vv.put servers.(r) ~replica:r ~context v;
          models.(r) <- Model.put models.(r) ~event:e ~context_events v;
          seen_events.(r) <- Iset.add e (Iset.union seen_events.(r) context_events)
      | Sync ->
          let merged = Dotted_vv.sync servers.(0) servers.(1) in
          servers.(0) <- merged;
          servers.(1) <- merged;
          let m = Model.sync models.(0) models.(1) in
          models.(0) <- m;
          models.(1) <- m;
          let u = Iset.union seen_events.(0) seen_events.(1) in
          seen_events.(0) <- u;
          seen_events.(1) <- u)
    cmds;
  Array.for_all
    (fun i ->
      List.sort compare (Dotted_vv.values servers.(i))
      = List.sort compare (Model.values models.(i))
      && Dotted_vv.well_formed servers.(i))
    [| 0; 1 |]

let test_exhaustive_small_programs () =
  (* every program of length <= 5 over both replicas: 5 possible steps
     (blind/contextual put at each replica, sync) -> 3 906 programs *)
  let steps =
    [ Put (0, false); Put (0, true); Put (1, false); Put (1, true); Sync ]
  in
  let rec programs k =
    if k = 0 then [ [] ]
    else
      let shorter = programs (k - 1) in
      shorter
      @ List.concat_map (fun p -> List.map (fun s -> s :: p) steps)
          (List.filter (fun p -> List.length p = k - 1) shorter)
  in
  let all = programs 5 in
  List.iter
    (fun cmds ->
      if not (runs_like_model cmds) then
        Alcotest.failf "model disagreement on %s"
          (String.concat ";" (List.map print_cmd cmds)))
    all;
  Alcotest.(check bool)
    (Printf.sprintf "all %d programs agree" (List.length all))
    true
    (List.length all > 3000)

let prop_matches_model =
  QCheck2.Test.make ~name:"DVV siblings match the maximal-writes model"
    ~count:400
    ~print:(fun cmds -> String.concat ";" (List.map print_cmd cmds))
    QCheck2.Gen.(list_size (int_bound 20) gen_cmd)
    runs_like_model

let () =
  Alcotest.run "dotted_vv"
    [
      ( "protocol",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "first put" `Quick test_first_put;
          Alcotest.test_case "causal overwrite" `Quick test_causal_overwrite;
          Alcotest.test_case "blind put keeps siblings" `Quick
            test_blind_put_keeps_siblings;
          Alcotest.test_case "concurrent clients" `Quick test_concurrent_clients;
          Alcotest.test_case "per-server counters" `Quick test_per_server_counters;
        ] );
      ( "replication",
        [
          Alcotest.test_case "sync propagates" `Quick test_sync_propagates;
          Alcotest.test_case "sync removes superseded" `Quick
            test_sync_removes_superseded;
          Alcotest.test_case "sync keeps concurrent" `Quick
            test_sync_keeps_concurrent;
          Alcotest.test_case "sync commutative/idempotent" `Quick
            test_sync_commutative_idempotent;
          Alcotest.test_case "exhaustive small programs" `Slow
            test_exhaustive_small_programs;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_matches_model ]);
    ]
