(* QCheck generators shared by the property-test suites. *)

open Vstamp_core

let digit : Bits.digit QCheck2.Gen.t =
  QCheck2.Gen.map (fun b -> if b then Bits.One else Bits.Zero) QCheck2.Gen.bool

let bits ?(max_len = 8) () : Bits.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* len = int_bound max_len in
  let+ ds = list_repeat len digit in
  Bits.of_digits ds

(* An arbitrary name: maximal elements of a random string list. *)
let name ?(max_len = 6) ?(max_width = 6) () : Name.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* width = int_bound max_width in
  let+ ss = list_repeat width (bits ~max_len ()) in
  Name.of_list ss

let name_tree ?max_len ?max_width () : Name_tree.t QCheck2.Gen.t =
  QCheck2.Gen.map
    (fun n -> Name_tree.of_list (Name.to_list n))
    (name ?max_len ?max_width ())

let name_packed ?max_len ?max_width () : Name_packed.t QCheck2.Gen.t =
  QCheck2.Gen.map
    (fun n -> Name_packed.of_list (Name.to_list n))
    (name ?max_len ?max_width ())

(* A valid trace: ops are generated against the frontier size as the
   trace is built, so every prefix is applicable.  [bias] tilts the
   op mix; sizes stay in [1, max_frontier]. *)
type bias = { update_weight : int; fork_weight : int; join_weight : int }

let default_bias = { update_weight = 3; fork_weight = 2; join_weight = 2 }

let trace ?(bias = default_bias) ?(max_frontier = 8) ?(max_len = 40) () :
    Execution.op list QCheck2.Gen.t =
  let open QCheck2.Gen in
  let op_for size =
    let weighted =
      List.concat
        [
          List.init bias.update_weight (fun _ ->
              map (fun i -> Execution.Update (i mod size)) (int_bound (size - 1)));
          (if size < max_frontier then
             List.init bias.fork_weight (fun _ ->
                 map (fun i -> Execution.Fork (i mod size)) (int_bound (size - 1)))
           else []);
          (if size >= 2 then
             List.init bias.join_weight (fun _ ->
                 map2
                   (fun i j ->
                     let i = i mod size in
                     let j = j mod (size - 1) in
                     let j = if j >= i then j + 1 else j in
                     Execution.Join (i, j))
                   (int_bound (size - 1))
                   (int_bound (size - 2)))
           else []);
        ]
    in
    oneof weighted
  in
  let* len = int_bound max_len in
  let rec build size k acc =
    if k = 0 then return (List.rev acc)
    else
      let* op = op_for size in
      build (size + Execution.size_delta op) (k - 1) (op :: acc)
  in
  build 1 len []

let trace_print ops =
  String.concat ";" (List.map Execution.op_to_string ops)
