(* The GC/runtime sampler: metric families registered on attach,
   counters fed by deltas from the attach-time baseline, heap gauges,
   and the allocation-rate gauge. *)

open Vstamp_obs

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let counter_value registry name =
  match Registry.find registry name with
  | Some (Registry.Counter c) -> Metric.count c
  | _ -> Alcotest.failf "no counter %S" name

let gauge_value registry name =
  match Registry.find registry name with
  | Some (Registry.Gauge g) -> Metric.value g
  | _ -> Alcotest.failf "no gauge %S" name

let families =
  [
    "runtime_minor_words_total";
    "runtime_major_words_total";
    "runtime_promoted_words_total";
    "runtime_minor_collections_total";
    "runtime_major_collections_total";
    "runtime_compactions_total";
  ]

(* keep the allocation observable: build and return real structure *)
let churn () =
  let rec build n acc = if n = 0 then acc else build (n - 1) (n :: acc) in
  ignore (Sys.opaque_identity (build 100_000 []) : int list)

let test_families_registered_at_zero () =
  let registry = Registry.create () in
  let rt = Runtime.create ~registry () in
  check_int "no samples yet" 0 (Runtime.samples_taken rt);
  List.iter
    (fun name ->
      check_int (name ^ " starts at 0") 0 (counter_value registry name))
    families;
  check_bool "heap gauge present" true
    (Registry.find registry "runtime_heap_words" <> None);
  check_bool "rate gauge present" true
    (Registry.find registry "runtime_allocation_rate_words_per_s" <> None)

let test_counters_advance_with_allocation () =
  let registry = Registry.create () in
  let rt = Runtime.create ~registry () in
  churn ();
  Runtime.sample ~now_s:1. rt;
  check_int "one sample" 1 (Runtime.samples_taken rt);
  check_bool "minor words grew" true
    (counter_value registry "runtime_minor_words_total" > 0);
  check_bool "heap gauge set" true
    (gauge_value registry "runtime_heap_words" > 0.);
  check_bool "top heap gauge set" true
    (gauge_value registry "runtime_top_heap_words" > 0.)

let test_counters_monotone () =
  let registry = Registry.create () in
  let rt = Runtime.create ~registry () in
  let read () = List.map (fun n -> counter_value registry n) families in
  let prev = ref (read ()) in
  for i = 1 to 5 do
    churn ();
    Runtime.sample ~now_s:(float_of_int i) rt;
    let cur = read () in
    List.iter2
      (fun p c -> check_bool "counter never decreases" true (c >= p))
      !prev cur;
    prev := cur
  done;
  check_int "five samples" 5 (Runtime.samples_taken rt)

let test_allocation_rate () =
  let registry = Registry.create () in
  let rt = Runtime.create ~registry () in
  Runtime.sample ~now_s:10. rt;
  Alcotest.(check (float 0.))
    "rate is 0 after one sample" 0.
    (gauge_value registry "runtime_allocation_rate_words_per_s");
  churn ();
  Runtime.sample ~now_s:12. rt;
  check_bool "rate positive once two samples exist" true
    (gauge_value registry "runtime_allocation_rate_words_per_s" > 0.)

let test_flows_into_tsdb () =
  (* the soak wiring: runtime sampled into a registry that the flight
     recorder snapshots *)
  let registry = Registry.create () in
  let rt = Runtime.create ~registry () in
  let tsdb = Tsdb.create () in
  churn ();
  Runtime.sample ~now_s:1. rt;
  Tsdb.sample tsdb ~now_s:1. registry;
  check_bool "recorder sees the runtime counters" true
    (Tsdb.series_kind tsdb "runtime_minor_words_total" = Some Tsdb.Counter);
  check_bool "recorder sees the heap gauge" true
    (Tsdb.series_kind tsdb "runtime_heap_words" = Some Tsdb.Gauge)

let () =
  Alcotest.run "runtime"
    [
      ( "registration",
        [
          Alcotest.test_case "families at zero" `Quick
            test_families_registered_at_zero;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "counters advance" `Quick
            test_counters_advance_with_allocation;
          Alcotest.test_case "counters monotone" `Quick test_counters_monotone;
          Alcotest.test_case "allocation rate" `Quick test_allocation_rate;
          Alcotest.test_case "feeds the flight recorder" `Quick
            test_flows_into_tsdb;
        ] );
    ]
