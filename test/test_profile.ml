(* Vstamp_obs.Profile: per-stack aggregation, the hot-op ordering, and
   the collapsed-stack flamegraph output. *)

module Obs = Vstamp_obs
module P = Obs.Profile

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_string = Alcotest.(check string)

let test_record_aggregates () =
  let p = P.create () in
  P.record p ~stack:[ "stamps"; "join" ] ~ns:100L ~alloc_bytes:8.0;
  P.record p ~stack:[ "stamps"; "join" ] ~ns:50L ~alloc_bytes:4.0;
  P.record p ~stack:[ "stamps"; "update" ] ~ns:10L ~alloc_bytes:0.0;
  (match P.rows p with
  | [ join; update ] ->
      (* rows are sorted by stack: join before update *)
      check_bool "join stack" true (join.P.stack = [ "stamps"; "join" ]);
      check_int "join count" 2 join.P.count;
      check_bool "join ns summed" true (join.P.total_ns = 150L);
      check_bool "join alloc summed" true (join.P.total_alloc_bytes = 12.0);
      check_int "update count" 1 update.P.count
  | rows -> Alcotest.failf "expected 2 rows, got %d" (List.length rows));
  check_bool "total" true (P.total_ns p = 160L);
  P.reset p;
  check_int "reset empties" 0 (List.length (P.rows p));
  check_bool "empty stack rejected" true
    (match P.record p ~stack:[] ~ns:1L ~alloc_bytes:0.0 with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_time_measures () =
  (* a synthetic clock makes the measurement exact: each now_ns call
     advances one millisecond *)
  let ticks = ref 0 in
  Obs.Clock.set_source (fun () ->
      incr ticks;
      float_of_int !ticks *. 1e-3);
  Fun.protect
    ~finally:(fun () -> Obs.Clock.set_source Sys.time)
    (fun () ->
      let p = P.create () in
      let r = P.time p [ "work" ] (fun () -> 42) in
      check_int "result passed through" 42 r;
      (match P.rows p with
      | [ row ] ->
          check_int "one call" 1 row.P.count;
          check_bool "exactly one synthetic ms" true (row.P.total_ns = 1_000_000L)
      | rows -> Alcotest.failf "expected 1 row, got %d" (List.length rows));
      (* the finally path records even when f raises *)
      check_bool "raising f still recorded" true
        (match P.time p [ "work" ] (fun () -> failwith "boom") with
        | (_ : int) -> false
        | exception Failure _ -> true);
      match P.rows p with
      | [ row ] -> check_int "two calls after raise" 2 row.P.count
      | rows -> Alcotest.failf "expected 1 row, got %d" (List.length rows))

let test_top_ordering () =
  let p = P.create () in
  P.record p ~stack:[ "a" ] ~ns:100L ~alloc_bytes:1.0;
  P.record p ~stack:[ "b" ] ~ns:10L ~alloc_bytes:100.0;
  P.record p ~stack:[ "c" ] ~ns:1L ~alloc_bytes:0.0;
  P.record p ~stack:[ "c" ] ~ns:1L ~alloc_bytes:0.0;
  let heads by = List.map (fun r -> List.hd r.P.stack) (P.top ~by ~n:3 p) in
  check_bool "by ns" true (heads `Ns = [ "a"; "b"; "c" ]);
  check_bool "by alloc" true (heads `Alloc = [ "b"; "a"; "c" ]);
  check_bool "by count" true (heads `Count = [ "c"; "a"; "b" ]);
  check_int "n truncates" 1 (List.length (P.top ~n:1 p))

let test_folded_output () =
  let p = P.create () in
  P.record p ~stack:[ "stamps"; "join" ] ~ns:150L ~alloc_bytes:12.0;
  P.record p ~stack:[ "stamps"; "leq d8" ] ~ns:10L ~alloc_bytes:2.0;
  check_string "folded, sorted, sanitized, integer weights"
    "stamps;join 150\nstamps;leq_d8 10\n"
    (P.to_folded p);
  check_string "alloc weight" "stamps;join 12\nstamps;leq_d8 2\n"
    (P.to_folded ~weight:`Alloc p)

let test_json () =
  let p = P.create () in
  P.record p ~stack:[ "x" ] ~ns:5L ~alloc_bytes:16.0;
  match P.to_json p with
  | Obs.Jsonx.List [ row ] ->
      check_bool "stack field" true
        (Obs.Jsonx.member "stack" row
        = Some (Obs.Jsonx.List [ Obs.Jsonx.String "x" ]));
      check_bool "count field" true
        (Obs.Jsonx.member "count" row = Some (Obs.Jsonx.Int 1));
      check_bool "ns field" true
        (Obs.Jsonx.member "total_ns" row = Some (Obs.Jsonx.Int 5))
  | j -> Alcotest.failf "unexpected json: %s" (Obs.Jsonx.to_string j)

(* --- System.run wiring: the per-op stacks show up with plausible
       shares --- *)

let test_system_attribution () =
  let open Vstamp_sim in
  let p = P.create () in
  let ops = Workload.uniform ~seed:3 ~n_ops:80 () in
  let r = System.run ~check_invariants:true ~profile:p Tracker.stamps ops in
  let stacks = List.map (fun row -> row.P.stack) (P.rows p) in
  List.iter
    (fun frame ->
      check_bool (frame ^ " stack present") true
        (List.mem [ "stamps"; frame ] stacks))
    [ "update"; "fork"; "join"; "monitor"; "oracle" ];
  let count frame =
    match
      List.find_opt (fun row -> row.P.stack = [ "stamps"; frame ]) (P.rows p)
    with
    | Some row -> row.P.count
    | None -> 0
  in
  check_int "one timed cell per update" r.System.updates (count "update");
  check_int "one timed cell per fork" r.System.forks (count "fork");
  check_int "one timed cell per join" r.System.joins (count "join");
  check_bool "monitor checked every step" true
    (count "monitor" = List.length ops + 1)

let () =
  Alcotest.run "profile"
    [
      ( "profile",
        [
          Alcotest.test_case "record aggregates" `Quick test_record_aggregates;
          Alcotest.test_case "time measures" `Quick test_time_measures;
          Alcotest.test_case "top ordering" `Quick test_top_ordering;
          Alcotest.test_case "folded output" `Quick test_folded_output;
          Alcotest.test_case "json" `Quick test_json;
        ] );
      ( "system",
        [
          Alcotest.test_case "run attribution" `Quick test_system_attribution;
        ] );
    ]
