(* Vstamp_sim.Telemetry: the registry mirror of the core Instr counters
   must agree with Instr exactly — every op counted once, under the
   op label Instr itself reports. *)

open Vstamp_core
module Obs = Vstamp_obs

let check_int = Alcotest.(check int)

let counter_value reg name = Obs.Metric.count (Obs.Registry.counter reg name)

(* a scripted op sequence with a known op census *)
let scripted () =
  let s = Stamp.update Stamp.seed in
  let a, b = Stamp.fork s in
  let a = Stamp.update a in
  let b = Stamp.update b in
  let j = Stamp.join ~reduce:false a b in
  let c, d = Stamp.fork j in
  let m = Stamp.join ~reduce:false (Stamp.update c) d in
  ignore (Stamp.reduce m)

let with_telemetry ~registry f =
  Instr.reset ();
  Vstamp_sim.Telemetry.attach ~registry ();
  Fun.protect ~finally:Vstamp_sim.Telemetry.detach f

let test_registry_matches_instr () =
  let registry = Obs.Registry.create () in
  with_telemetry ~registry scripted;
  let c = Instr.read () in
  (* the script's census, counted by hand *)
  check_int "updates" 4 c.Instr.updates;
  check_int "forks" 2 c.Instr.forks;
  check_int "joins" 2 c.Instr.joins;
  check_int "reduces" 1 c.Instr.reduces;
  (* ...and the registry mirror agrees with Instr, op for op *)
  List.iter
    (fun (op, instr_count) ->
      check_int
        (Printf.sprintf "core_stamp_ops_total{op=%S} mirrors Instr" op)
        instr_count
        (counter_value registry
           (Printf.sprintf "core_stamp_ops_total{op=%S}" op)))
    [
      ("update", c.Instr.updates);
      ("fork", c.Instr.forks);
      ("join", c.Instr.joins);
      ("reduce", c.Instr.reduces);
    ]

(* the same agreement must survive a whole simulated run, where ops are
   driven through Tracker/System instead of called directly *)
let test_registry_matches_instr_after_run () =
  let registry = Obs.Registry.create () in
  with_telemetry ~registry (fun () ->
      ignore
        (Vstamp_sim.System.run ~with_oracle:false Vstamp_sim.Tracker.stamps
           (Vstamp_sim.Workload.uniform ~seed:11 ~n_ops:150 ())
          : Vstamp_sim.System.result));
  let c = Instr.read () in
  List.iter
    (fun (op, instr_count) ->
      check_int
        (Printf.sprintf "op=%S after a run" op)
        instr_count
        (counter_value registry
           (Printf.sprintf "core_stamp_ops_total{op=%S}" op)))
    [
      ("update", c.Instr.updates);
      ("fork", c.Instr.forks);
      ("join", c.Instr.joins);
      ("reduce", c.Instr.reduces);
    ];
  (* a run has plenty of each op; zero would mean the mirror tested
     nothing *)
  Alcotest.(check bool) "ops actually happened" true (c.Instr.updates > 0 && c.Instr.forks > 0 && c.Instr.joins > 0)

let test_sync_counters_gauges () =
  let registry = Obs.Registry.create () in
  with_telemetry ~registry scripted;
  Vstamp_sim.Telemetry.sync_counters registry;
  let c = Instr.read () in
  List.iter
    (fun (name, v) ->
      let g =
        match Obs.Registry.find registry ("core_" ^ name) with
        | Some (Obs.Registry.Gauge g) -> Obs.Metric.value g
        | _ -> Alcotest.failf "gauge core_%s missing" name
      in
      check_int ("core_" ^ name) v (int_of_float g))
    [ ("updates", c.Instr.updates); ("forks", c.Instr.forks) ]

let () =
  Alcotest.run "telemetry"
    [
      ( "mirror",
        [
          Alcotest.test_case "scripted ops" `Quick test_registry_matches_instr;
          Alcotest.test_case "simulated run" `Quick
            test_registry_matches_instr_after_run;
          Alcotest.test_case "sync_counters gauges" `Quick
            test_sync_counters_gauges;
        ] );
    ]
