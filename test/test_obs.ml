open Vstamp_obs

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_string = Alcotest.(check string)

let check_float = Alcotest.(check (float 1e-9))

(* --- Metric: counters --- *)

let test_counter () =
  let c = Metric.counter () in
  check_int "fresh counter" 0 (Metric.count c);
  Metric.inc c;
  Metric.inc c;
  Metric.add c 5;
  check_int "inc and add" 7 (Metric.count c);
  Metric.add c 0;
  check_int "add zero" 7 (Metric.count c);
  Alcotest.check_raises "negative add"
    (Invalid_argument "Metric.add: counters are monotone") (fun () ->
      Metric.add c (-1));
  Metric.reset_counter c;
  check_int "reset" 0 (Metric.count c)

(* --- Metric: gauges --- *)

let test_gauge () =
  let g = Metric.gauge () in
  check_float "fresh gauge" 0.0 (Metric.value g);
  Metric.set g 3.5;
  check_float "set" 3.5 (Metric.value g);
  Metric.add_gauge g (-1.25);
  check_float "add negative ok" 2.25 (Metric.value g);
  Metric.reset_gauge g;
  check_float "reset" 0.0 (Metric.value g)

(* --- Metric: histograms --- *)

let test_histogram_basics () =
  let h = Metric.histogram () in
  check_int "empty count" 0 (Metric.observations h);
  check_float "empty mean" 0.0 (Metric.mean h);
  check_float "empty quantile" 0.0 (Metric.quantile h 0.5);
  List.iter (Metric.observe h) [ 1.0; 2.0; 3.0; 4.0 ];
  check_int "count" 4 (Metric.observations h);
  check_float "sum exact" 10.0 (Metric.sum h);
  check_float "mean exact" 2.5 (Metric.mean h);
  check_float "min exact" 1.0 (Metric.min_value h);
  check_float "max exact" 4.0 (Metric.max_value h);
  Metric.reset_histogram h;
  check_int "reset count" 0 (Metric.observations h);
  check_float "reset sum" 0.0 (Metric.sum h)

let test_histogram_quantiles () =
  let h = Metric.histogram () in
  (* 1..1000: quantiles must land within the bucket resolution (~9%). *)
  for i = 1 to 1000 do
    Metric.observe_int h i
  done;
  let close ~expect got =
    let err = abs_float (got -. expect) /. expect in
    check_bool
      (Printf.sprintf "quantile near %g (got %g, err %.3f)" expect got err)
      true (err < 0.10)
  in
  close ~expect:500.0 (Metric.quantile h 0.5);
  close ~expect:950.0 (Metric.quantile h 0.95);
  close ~expect:990.0 (Metric.quantile h 0.99);
  let p = Metric.percentiles h in
  check_bool "p50 <= p95" true (p.Metric.p50 <= p.Metric.p95);
  check_bool "p95 <= p99" true (p.Metric.p95 <= p.Metric.p99);
  check_bool "p99 <= max" true (p.Metric.p99 <= p.Metric.max);
  check_float "max exact" 1000.0 p.Metric.max;
  (* quantiles are clamped into [min, max] *)
  check_bool "q0.01 >= min" true (Metric.quantile h 0.01 >= 1.0);
  check_bool "q1 <= max" true (Metric.quantile h 1.0 <= 1000.0)

let test_histogram_small_and_negative () =
  let h = Metric.histogram () in
  Metric.observe h 0.25;
  (* below 1.0 lands in the zero bucket *)
  Metric.observe h (-3.0);
  (* negative clamps but still counts *)
  check_int "count includes clamped" 2 (Metric.observations h);
  check_float "sum keeps real values" (-2.75) (Metric.sum h);
  check_float "min exact" (-3.0) (Metric.min_value h);
  check_float "max exact" 0.25 (Metric.max_value h)

(* --- Jsonx --- *)

let test_jsonx_roundtrip () =
  let samples =
    [
      Jsonx.Null;
      Jsonx.Bool true;
      Jsonx.Bool false;
      Jsonx.Int 0;
      Jsonx.Int (-42);
      Jsonx.Int max_int;
      Jsonx.Float 1.5;
      Jsonx.Float (-0.0078125);
      Jsonx.Float 1e100;
      Jsonx.String "";
      Jsonx.String "plain";
      Jsonx.String "esc \" \\ \n \t \r \x00 \x1f";
      Jsonx.String "utf8: \xc3\xa9\xe2\x82\xac";
      Jsonx.List [];
      Jsonx.List [ Jsonx.Int 1; Jsonx.String "two"; Jsonx.Null ];
      Jsonx.Obj [];
      Jsonx.Obj
        [
          ("a", Jsonx.Int 1);
          ("b", Jsonx.List [ Jsonx.Obj [ ("c", Jsonx.Bool false) ] ]);
        ];
    ]
  in
  List.iter
    (fun v ->
      let s = Jsonx.to_string v in
      check_bool "single line" true (not (String.contains s '\n'));
      match Jsonx.of_string s with
      | Ok v' -> check_bool ("roundtrip " ^ s) true (Jsonx.equal v v')
      | Error e -> Alcotest.failf "parse error on %s: %s" s e)
    samples

let test_jsonx_int_float_distinct () =
  (* 1 parses as Int, 1.0 as Float; the printer keeps them apart. *)
  check_string "int prints bare" "1" (Jsonx.to_string (Jsonx.Int 1));
  let f = Jsonx.to_string (Jsonx.Float 1.0) in
  check_bool "float keeps a dot or exponent" true
    (String.contains f '.' || String.contains f 'e');
  (match Jsonx.of_string "7" with
  | Ok (Jsonx.Int 7) -> ()
  | _ -> Alcotest.fail "7 should parse as Int");
  match Jsonx.of_string "7.0" with
  | Ok (Jsonx.Float 7.0) -> ()
  | _ -> Alcotest.fail "7.0 should parse as Float"

let test_jsonx_parse_errors () =
  let bad = [ ""; "{"; "[1,"; "truth"; "\"unterminated"; "{\"a\" 1}"; "1 2" ] in
  List.iter
    (fun s ->
      match Jsonx.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected parse error on %S" s)
    bad

let test_jsonx_accessors () =
  let v =
    Jsonx.Obj [ ("n", Jsonx.Int 3); ("f", Jsonx.Float 2.5); ("s", Jsonx.String "x") ]
  in
  check_bool "member n" true (Jsonx.member "n" v = Some (Jsonx.Int 3));
  check_bool "member missing" true (Jsonx.member "zz" v = None);
  check_bool "to_int" true (Jsonx.to_int (Jsonx.Int 3) = Some 3);
  check_bool "to_float of int" true (Jsonx.to_float (Jsonx.Int 3) = Some 3.0);
  check_bool "to_str" true (Jsonx.to_str (Jsonx.String "x") = Some "x")

(* --- Event --- *)

let test_event_roundtrip () =
  let ev =
    Event.v ~ts:(Event.Step 12) "sim.step"
      [ ("op", Jsonx.String "join"); ("total_bits", Jsonx.Int 96) ]
  in
  let line = Event.to_string ev in
  check_bool "one line" true (not (String.contains line '\n'));
  (match Event.of_string line with
  | Ok ev' -> check_bool "roundtrip" true (Event.equal ev ev')
  | Error e -> Alcotest.failf "parse error: %s" e);
  let wall = Event.v ~ts:(Event.Wall_ns 123456789L) "x" [] in
  (match Event.of_string (Event.to_string wall) with
  | Ok ev' -> check_bool "wall roundtrip" true (Event.equal wall ev')
  | Error e -> Alcotest.failf "wall parse error: %s" e);
  let untimed = Event.v "y" [ ("k", Jsonx.Null) ] in
  match Event.of_string (Event.to_string untimed) with
  | Ok ev' -> check_bool "untimed roundtrip" true (Event.equal untimed ev')
  | Error e -> Alcotest.failf "untimed parse error: %s" e

(* qcheck: arbitrary events survive the JSONL round trip *)

let field_name_gen =
  QCheck2.Gen.(
    map
      (fun s -> "f_" ^ s)
      (string_size ~gen:(char_range 'a' 'z') (int_range 0 8)))

let jsonx_gen =
  QCheck2.Gen.(
    sized @@ fix (fun self n ->
        let leaf =
          oneof
            [
              return Jsonx.Null;
              map (fun b -> Jsonx.Bool b) bool;
              map (fun i -> Jsonx.Int i) int;
              map (fun f -> Jsonx.Float f) (float_range (-1e6) 1e6);
              map (fun s -> Jsonx.String s) (string_size (int_range 0 12));
            ]
        in
        if n = 0 then leaf
        else
          frequency
            [
              (3, leaf);
              ( 1,
                map
                  (fun l -> Jsonx.List l)
                  (list_size (int_range 0 3) (self (n / 2))) );
              ( 1,
                map
                  (fun l -> Jsonx.Obj l)
                  (list_size (int_range 0 3)
                     (pair field_name_gen (self (n / 2)))) );
            ]))

let event_gen =
  QCheck2.Gen.(
    let ts =
      oneof
        [
          return Event.Untimed;
          map (fun k -> Event.Step k) nat;
          map (fun n -> Event.Wall_ns (Int64.of_int n)) nat;
        ]
    in
    map
      (fun (ts, name, fields) ->
        (* dedupe field names: Obj equality is order-sensitive and the
           decoder keeps the first binding *)
        let seen = Hashtbl.create 8 in
        let fields =
          List.filter
            (fun (k, _) ->
              if Hashtbl.mem seen k then false
              else begin
                Hashtbl.add seen k ();
                true
              end)
            fields
        in
        Event.v ~ts ("ev_" ^ name) fields)
      (triple ts
         (string_size ~gen:(char_range 'a' 'z') (int_range 0 10))
         (list_size (int_range 0 5) (pair field_name_gen jsonx_gen))))

let qcheck_event_roundtrip =
  QCheck2.Test.make ~count:300 ~name:"event JSONL roundtrip" event_gen
    (fun ev ->
      match Event.of_string (Event.to_string ev) with
      | Ok ev' -> Event.equal ev ev'
      | Error _ -> false)

let qcheck_jsonx_roundtrip =
  QCheck2.Test.make ~count:300 ~name:"jsonx roundtrip" jsonx_gen (fun v ->
      match Jsonx.of_string (Jsonx.to_string v) with
      | Ok v' -> Jsonx.equal v v'
      | Error _ -> false)

(* --- Registry --- *)

let test_registry () =
  let r = Registry.create () in
  let c = Registry.counter r "ops_total" in
  Metric.inc c;
  check_bool "get-or-create returns same" true
    (Registry.counter r "ops_total" == c);
  check_int "count survives re-get" 1
    (Metric.count (Registry.counter r "ops_total"));
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Registry: \"ops_total\" is not a gauge") (fun () ->
      ignore (Registry.gauge r "ops_total"));
  ignore (Registry.gauge r "depth");
  ignore (Registry.histogram r "lat_ns{op=\"join\"}");
  check_int "cardinal" 3 (Registry.cardinal r);
  check_bool "find" true (Registry.find r "depth" <> None);
  check_bool "find missing" true (Registry.find r "nope" = None);
  let names = List.map fst (Registry.snapshot r) in
  check_bool "snapshot sorted" true (names = List.sort compare names);
  Registry.reset r;
  check_int "reset keeps registration" 3 (Registry.cardinal r);
  check_int "reset zeroes" 0 (Metric.count (Registry.counter r "ops_total"));
  Registry.clear r;
  check_int "clear drops" 0 (Registry.cardinal r)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_registry_exposition () =
  let r = Registry.create () in
  Metric.add (Registry.counter r "reqs_total") 3;
  Metric.set (Registry.gauge r "temp") 21.5;
  let h = Registry.histogram r "lat_ns{op=\"join\"}" in
  List.iter (Metric.observe h) [ 10.0; 20.0; 30.0 ];
  let prom = Registry.to_prometheus r in
  check_bool "counter line" true (contains ~needle:"reqs_total 3" prom);
  check_bool "gauge line" true (contains ~needle:"temp 21.5" prom);
  check_bool "histogram count with labels" true
    (contains ~needle:"lat_ns_count{op=\"join\"} 3" prom);
  check_bool "histogram quantile label" true
    (contains ~needle:"quantile=\"0.5\"" prom);
  let json = Registry.to_json r in
  (match Jsonx.member "reqs_total" json with
  | Some v -> check_bool "json counter" true (Jsonx.to_int v = Some 3)
  | None -> Alcotest.fail "reqs_total missing from json");
  (match Jsonx.member "lat_ns{op=\"join\"}" json with
  | Some v ->
      check_bool "json histogram count" true
        (Jsonx.member "count" v |> Option.map Jsonx.to_int
        = Some (Some 3))
  | None -> Alcotest.fail "histogram missing from json");
  (* the JSON snapshot is itself valid JSON text *)
  match Jsonx.of_string (Jsonx.to_string json) with
  | Ok v -> check_bool "snapshot parses back" true (Jsonx.equal v json)
  | Error e -> Alcotest.failf "snapshot reparse: %s" e

(* --- Span --- *)

let test_span () =
  let r = Registry.create () in
  let v = Span.time ~registry:r "work_ns" (fun () -> 42) in
  check_int "time returns value" 42 v;
  Span.record ~registry:r "work_ns" 1000L;
  check_int "two observations" 2
    (Metric.observations (Registry.histogram r "work_ns"));
  check_bool "durations nonnegative" true
    (Metric.min_value (Registry.histogram r "work_ns") >= 0.0)

(* --- Sink --- *)

let test_sink_memory () =
  let s = Sink.memory () in
  let e1 = Event.v ~ts:(Event.Step 1) "a" [] in
  let e2 = Event.v ~ts:(Event.Step 2) "b" [ ("x", Jsonx.Int 1) ] in
  Sink.emit s e1;
  Sink.emit s e2;
  check_int "emitted" 2 (Sink.emitted s);
  (match Sink.contents s with
  | [ a; b ] ->
      check_bool "order preserved" true (Event.equal a e1 && Event.equal b e2)
  | l -> Alcotest.failf "expected 2 events, got %d" (List.length l));
  Sink.emit Sink.null e1;
  check_bool "null keeps nothing" true (Sink.contents Sink.null = [])

let test_sink_file () =
  let path = Filename.temp_file "vstamp_obs" ".jsonl" in
  let s = Sink.to_file path in
  Sink.emit s (Event.v ~ts:(Event.Step 0) "hello" [ ("n", Jsonx.Int 7) ]);
  Sink.emit s (Event.v "bye" []);
  Sink.close s;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  let lines = List.rev !lines in
  check_int "two lines" 2 (List.length lines);
  List.iter
    (fun l ->
      match Event.of_string l with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "bad line %S: %s" l e)
    lines

(* --- Core instrumentation (Instr) --- *)

let sim_trace () = Vstamp_sim.Workload.uniform ~seed:5 ~n_ops:80 ()

let test_instr_counters () =
  let open Vstamp_core in
  let ops = sim_trace () in
  Instr.reset ();
  Instr.enabled := false;
  ignore (Execution.Run_stamps.run ops);
  let off = Instr.read () in
  check_int "disabled counts nothing"
    0
    (off.Instr.updates + off.Instr.forks + off.Instr.joins);
  Instr.enabled := true;
  let frontier = Execution.Run_stamps.run ops in
  List.iter (fun s -> ignore (Vstamp_codec.Wire.stamp_to_string s)) frontier;
  Instr.enabled := false;
  let on = Instr.read () in
  check_bool "updates counted" true (on.Instr.updates > 0);
  check_bool "forks counted" true (on.Instr.forks > 0);
  check_bool "joins counted" true (on.Instr.joins > 0);
  check_bool "wire bytes counted" true (on.Instr.wire_bytes_encoded > 0);
  check_int "stamps encoded = frontier" (List.length frontier)
    on.Instr.wire_stamps_encoded;
  Instr.reset ();
  let zero = Instr.read () in
  check_int "reset zeroes" 0
    (zero.Instr.updates + zero.Instr.forks + zero.Instr.joins
   + zero.Instr.wire_bytes_encoded)

let test_instr_observer () =
  let open Vstamp_core in
  let seen = ref 0 in
  Instr.reset ();
  Instr.set_observer
    (Some
       (fun ev ->
         incr seen;
         check_bool "bits_after nonnegative" true (ev.Instr.bits_after >= 0);
         check_bool "depth nonnegative" true (ev.Instr.depth >= 0)));
  Instr.enabled := true;
  ignore (Execution.Run_stamps.run (sim_trace ()));
  Instr.enabled := false;
  Instr.set_observer None;
  let c = Instr.read () in
  check_int "observer saw every op" (c.Instr.updates + c.Instr.forks + c.Instr.joins + c.Instr.reduces)
    !seen;
  Instr.reset ()

(* --- Determinism of the simulator event stream --- *)

let run_lines () =
  let sink = Sink.memory () in
  let registry = Registry.create () in
  ignore
    (Vstamp_sim.System.run ~with_oracle:false ~registry ~sink
       Vstamp_sim.Tracker.stamps (sim_trace ()));
  List.map Event.to_string (Sink.contents sink)

let test_sim_stream_deterministic () =
  let a = run_lines () in
  let b = run_lines () in
  check_bool "two runs byte-identical" true (a = b);
  check_bool "stream nonempty" true (List.length a > 2);
  List.iter
    (fun line ->
      match Event.of_string line with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "unparseable line %S: %s" line e)
    a;
  (* stable digest: same trace, same digest, run to run *)
  let digest lines = Digest.to_hex (Digest.string (String.concat "\n" lines)) in
  check_string "stable digest" (digest a) (digest b);
  (* the stream starts with sim.start at step 0 and ends with sim.result *)
  match (List.hd a, List.rev a |> List.hd) with
  | first, last ->
      check_bool "starts with sim.start" true
        (contains ~needle:"\"event\":\"sim.start\"" first);
      check_bool "ends with sim.result" true
        (contains ~needle:"\"event\":\"sim.result\"" last)

let test_telemetry_attach () =
  let open Vstamp_core in
  let r = Registry.create () in
  Instr.reset ();
  Vstamp_sim.Telemetry.attach ~registry:r ();
  ignore (Execution.Run_stamps.run (sim_trace ()));
  Vstamp_sim.Telemetry.detach ();
  Vstamp_sim.Telemetry.sync_counters r;
  let fork_count =
    Metric.count (Registry.counter r "core_stamp_ops_total{op=\"fork\"}")
  in
  check_bool "observer mirrored forks" true (fork_count > 0);
  check_float "gauge mirrors counter" (float_of_int fork_count)
    (Metric.value (Registry.gauge r "core_forks"));
  let ev = Vstamp_sim.Telemetry.counters_event ~step:9 () in
  (match Event.of_string (Event.to_string ev) with
  | Ok ev' -> check_bool "counters event roundtrips" true (Event.equal ev ev')
  | Error e -> Alcotest.failf "counters event: %s" e);
  Instr.reset ()

(* --- Stats.summary (percentile aggregation) --- *)

let test_stats_summary () =
  let s = Vstamp_sim.Stats.summary [ 5; 1; 9; 3; 7 ] in
  check_int "n" 5 s.Vstamp_sim.Stats.n;
  check_float "mean" 5.0 s.Vstamp_sim.Stats.mean;
  check_int "max" 9 s.Vstamp_sim.Stats.max;
  check_bool "p50 <= p95" true
    (s.Vstamp_sim.Stats.p50 <= s.Vstamp_sim.Stats.p95);
  check_bool "p95 <= p99" true
    (s.Vstamp_sim.Stats.p95 <= s.Vstamp_sim.Stats.p99);
  check_bool "p99 <= max" true
    (s.Vstamp_sim.Stats.p99 <= float_of_int s.Vstamp_sim.Stats.max);
  let empty = Vstamp_sim.Stats.summary [] in
  check_int "empty n" 0 empty.Vstamp_sim.Stats.n;
  check_float "empty mean" 0.0 empty.Vstamp_sim.Stats.mean

(* --- Label escaping (the /metrics text exposition) --- *)

let test_label_escape_basics () =
  check_string "backslash" "a\\\\b" (Registry.escape_label_value "a\\b");
  check_string "quote" "say \\\"hi\\\"" (Registry.escape_label_value "say \"hi\"");
  check_string "newline" "l1\\nl2" (Registry.escape_label_value "l1\nl2");
  (match Registry.unescape_label_value "a\\\\b\\\"c\\nd" with
  | Ok s -> check_string "unescape" "a\\b\"c\nd" s
  | Error m -> Alcotest.failf "unescape failed: %s" m);
  (match Registry.unescape_label_value "trailing\\" with
  | Ok _ -> Alcotest.fail "dangling backslash must be rejected"
  | Error _ -> ());
  match Registry.unescape_label_value "bad\\q" with
  | Ok _ -> Alcotest.fail "unknown escape must be rejected"
  | Error _ -> ()

(* Satellite property: label values containing backslashes, double
   quotes and newlines survive the round trip through the /metrics
   text format — both at the string level (escape then unescape) and
   through an actual exposition of a labelled counter. *)
let label_value_gen =
  QCheck2.Gen.(
    string_size
      ~gen:
        (frequency
           [
             (5, printable);
             (2, return '\\');
             (2, return '"');
             (2, return '\n');
           ])
      (0 -- 24))

let qcheck_label_escape_roundtrip =
  QCheck2.Test.make ~count:500 ~name:"label value escape round trip"
    label_value_gen (fun v ->
      Registry.unescape_label_value (Registry.escape_label_value v) = Ok v)

let qcheck_label_metrics_roundtrip =
  QCheck2.Test.make ~count:300 ~name:"label values survive /metrics text"
    label_value_gen (fun v ->
      let r = Registry.create () in
      let name = Registry.with_labels "escape_test_total" [ ("k", v) ] in
      Metric.inc (Registry.counter r name);
      let text = Registry.to_prometheus r in
      let sample =
        List.find_opt
          (fun l -> String.length l > 0 && l.[0] <> '#')
          (String.split_on_char '\n' text)
      in
      match sample with
      | None -> false
      | Some line ->
          (* the escaped value cannot contain a raw quote or newline, so
             the sample is one line bracketed by fixed prefix/suffix *)
          let prefix = "escape_test_total{k=\"" and suffix = "\"} 1" in
          let plen = String.length prefix and slen = String.length suffix in
          String.length line >= plen + slen
          && String.sub line 0 plen = prefix
          && String.sub line (String.length line - slen) slen = suffix
          && String.sub line plen (String.length line - plen - slen)
             |> Registry.unescape_label_value = Ok v)

(* --- runner --- *)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "obs"
    [
      ( "metric",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram basics" `Quick test_histogram_basics;
          Alcotest.test_case "histogram quantiles" `Quick
            test_histogram_quantiles;
          Alcotest.test_case "histogram edge values" `Quick
            test_histogram_small_and_negative;
        ] );
      ( "jsonx",
        [
          Alcotest.test_case "roundtrip" `Quick test_jsonx_roundtrip;
          Alcotest.test_case "int/float distinct" `Quick
            test_jsonx_int_float_distinct;
          Alcotest.test_case "parse errors" `Quick test_jsonx_parse_errors;
          Alcotest.test_case "accessors" `Quick test_jsonx_accessors;
          qc qcheck_jsonx_roundtrip;
        ] );
      ( "event",
        [
          Alcotest.test_case "roundtrip" `Quick test_event_roundtrip;
          qc qcheck_event_roundtrip;
        ] );
      ( "registry",
        [
          Alcotest.test_case "lifecycle" `Quick test_registry;
          Alcotest.test_case "exposition" `Quick test_registry_exposition;
          Alcotest.test_case "span" `Quick test_span;
          Alcotest.test_case "label escaping" `Quick test_label_escape_basics;
          qc qcheck_label_escape_roundtrip;
          qc qcheck_label_metrics_roundtrip;
        ] );
      ( "sink",
        [
          Alcotest.test_case "memory" `Quick test_sink_memory;
          Alcotest.test_case "file" `Quick test_sink_file;
        ] );
      ( "instrumentation",
        [
          Alcotest.test_case "counters" `Quick test_instr_counters;
          Alcotest.test_case "observer" `Quick test_instr_observer;
          Alcotest.test_case "telemetry bridge" `Quick test_telemetry_attach;
        ] );
      ( "simulator",
        [
          Alcotest.test_case "deterministic stream" `Quick
            test_sim_stream_deterministic;
          Alcotest.test_case "stats summary" `Quick test_stats_summary;
        ] );
    ]
