(* The flight recorder's time-series store: bounded memory, counter
   increase semantics, multi-resolution roll-ups, tier fallback on
   query, registry sampling and the dump round trip. *)

open Vstamp_obs

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let checkf msg = Alcotest.(check (float 1e-9)) msg

(* --- construction --- *)

let test_create_validation () =
  let bad f = try ignore (f () : Tsdb.t); false with Invalid_argument _ -> true in
  check_bool "capacity 0" true (bad (fun () -> Tsdb.create ~capacity:0 ()));
  check_bool "tiers 0" true (bad (fun () -> Tsdb.create ~tiers:0 ()));
  check_bool "downsample 1" true (bad (fun () -> Tsdb.create ~downsample:1 ()));
  check_bool "max_series 0" true (bad (fun () -> Tsdb.create ~max_series:0 ()))

(* --- recording semantics --- *)

let one_bucket t metric =
  match Tsdb.query t ~metric ~from_s:0. ~to_s:1e9 ~step_s:1e9 with
  | [ p ] -> p
  | ps -> Alcotest.failf "expected one bucket, got %d" (List.length ps)

let test_counter_increase_semantics () =
  let t = Tsdb.create () in
  (* cumulative 10, 15 then a reset to 12: stored increases 10, 5, 12 *)
  Tsdb.observe t ~now_s:1. ~kind:Tsdb.Counter "c" 10.;
  Tsdb.observe t ~now_s:2. ~kind:Tsdb.Counter "c" 15.;
  Tsdb.observe t ~now_s:3. ~kind:Tsdb.Counter "c" 12.;
  let p = one_bucket t "c" in
  checkf "min is smallest increase" 5. p.Tsdb.min;
  checkf "max is reset value" 12. p.Tsdb.max;
  checkf "sum of increases" 27. p.Tsdb.sum;
  check_int "count" 3 p.Tsdb.count;
  checkf "last increase" 12. p.Tsdb.last;
  check_bool "kind recorded" true (Tsdb.series_kind t "c" = Some Tsdb.Counter)

let test_gauge_raw_semantics () =
  let t = Tsdb.create () in
  List.iteri
    (fun i v -> Tsdb.observe t ~now_s:(float_of_int i) ~kind:Tsdb.Gauge "g" v)
    [ 3.; 1.; 2. ];
  let p = one_bucket t "g" in
  checkf "min" 1. p.Tsdb.min;
  checkf "max" 3. p.Tsdb.max;
  checkf "sum" 6. p.Tsdb.sum;
  checkf "last raw value" 2. p.Tsdb.last

(* --- roll-ups and tier fallback --- *)

let test_rollup_and_fallback () =
  (* tier 0 holds 4 raw points; every 4 pushes roll into tier 1 *)
  let t = Tsdb.create ~capacity:4 ~tiers:2 ~downsample:4 () in
  for i = 1 to 16 do
    Tsdb.observe t ~now_s:(float_of_int i) ~kind:Tsdb.Gauge "g" (float_of_int i)
  done;
  (* from 13: the raw tier still reaches back, full detail *)
  let raw = one_bucket t "g" in
  ignore raw;
  let fine =
    match Tsdb.query t ~metric:"g" ~from_s:13. ~to_s:17. ~step_s:4. with
    | [ p ] -> p
    | ps -> Alcotest.failf "fine query: %d buckets" (List.length ps)
  in
  checkf "fine min" 13. fine.Tsdb.min;
  check_int "fine count" 4 fine.Tsdb.count;
  (* from 0: only the coarse tier reaches back; the roll-ups preserve
     the full min/max/sum/count even though the raw points are gone *)
  let coarse =
    match Tsdb.query t ~metric:"g" ~from_s:0. ~to_s:17. ~step_s:17. with
    | [ p ] -> p
    | ps -> Alcotest.failf "coarse query: %d buckets" (List.length ps)
  in
  checkf "coarse min survives eviction" 1. coarse.Tsdb.min;
  checkf "coarse max" 16. coarse.Tsdb.max;
  checkf "coarse sum" 136. coarse.Tsdb.sum;
  check_int "coarse count" 16 coarse.Tsdb.count;
  checkf "coarse last" 16. coarse.Tsdb.last;
  (* bucketed: the coarse tier has 4 roll-ups at t = 4, 8, 12, 16 *)
  let buckets = Tsdb.query t ~metric:"g" ~from_s:0. ~to_s:17. ~step_s:5. in
  check_bool "multiple coarse buckets" true (List.length buckets >= 2);
  check_bool "unknown metric yields nothing" true
    (Tsdb.query t ~metric:"nope" ~from_s:0. ~to_s:17. ~step_s:1. = [])

(* --- bounded memory: the tentpole invariant --- *)

let test_memory_capped () =
  let t = Tsdb.create ~capacity:8 ~tiers:3 ~downsample:4 () in
  Tsdb.observe t ~now_s:0. ~kind:Tsdb.Gauge "g" 0.;
  let footprint0 = Tsdb.footprint_bytes t in
  check_bool "footprint accounted" true (footprint0 > 0);
  for i = 1 to 10_000 do
    Tsdb.observe t ~now_s:(float_of_int i) ~kind:Tsdb.Gauge "g" (float_of_int i)
  done;
  check_int "footprint unchanged after 10k samples" footprint0
    (Tsdb.footprint_bytes t);
  check_bool "points bounded by tiers * capacity" true
    (Tsdb.points_retained t <= 3 * 8);
  (match Tsdb.time_bounds t with
  | None -> Alcotest.fail "no time bounds"
  | Some (lo, hi) ->
      checkf "newest is the last sample" 10_000. hi;
      check_bool "oldest moved forward (rings rotated)" true (lo > 0.))

let test_max_series_dropped () =
  let t = Tsdb.create ~max_series:2 () in
  Tsdb.observe t ~now_s:1. ~kind:Tsdb.Gauge "a" 1.;
  Tsdb.observe t ~now_s:1. ~kind:Tsdb.Gauge "b" 1.;
  Tsdb.observe t ~now_s:1. ~kind:Tsdb.Gauge "c" 1.;
  Alcotest.(check (list string)) "only first two kept" [ "a"; "b" ]
    (Tsdb.names t);
  check_bool "drops counted" true (Tsdb.dropped_series t >= 1)

(* --- registry sampling --- *)

let test_sample_registry () =
  let registry = Registry.create () in
  let c = Registry.counter registry "ops_total" in
  let g = Registry.gauge registry "depth" in
  let h = Registry.histogram registry "latency" in
  Metric.add c 5;
  Metric.set g 2.5;
  Metric.observe h 1.0;
  let t = Tsdb.create () in
  Tsdb.sample t ~now_s:1. registry;
  Metric.add c 3;
  Metric.observe h 1.0;
  Tsdb.sample t ~now_s:2. registry;
  check_int "two samples" 2 (Tsdb.samples_taken t);
  check_bool "counter series" true
    (Tsdb.series_kind t "ops_total" = Some Tsdb.Counter);
  check_bool "gauge series" true (Tsdb.series_kind t "depth" = Some Tsdb.Gauge);
  check_bool "histogram series" true
    (Tsdb.series_kind t "latency" = Some Tsdb.Histogram);
  let p = one_bucket t "ops_total" in
  checkf "counter increases: 5 then 3" 8. p.Tsdb.sum;
  checkf "last increase" 3. p.Tsdb.last;
  let ph = one_bucket t "latency" in
  checkf "histogram records observation increases" 2. ph.Tsdb.sum

(* --- dump round trip --- *)

let test_json_round_trip () =
  let t = Tsdb.create ~capacity:4 ~tiers:2 ~downsample:4 () in
  for i = 1 to 10 do
    Tsdb.observe t ~now_s:(float_of_int i) ~kind:Tsdb.Gauge "g" (float_of_int i);
    Tsdb.observe t ~now_s:(float_of_int i) ~kind:Tsdb.Counter "c"
      (float_of_int (i * 2))
  done;
  let alerts = Jsonx.Obj [ ("firing", Jsonx.Int 1) ] in
  let dump = Tsdb.to_json ~alerts t in
  (* canonical serialisation survives a string round trip too *)
  let reparsed =
    match Jsonx.of_string (Jsonx.to_string dump) with
    | Ok j -> j
    | Error m -> Alcotest.failf "dump did not reparse: %s" m
  in
  match Tsdb.of_json reparsed with
  | Error m -> Alcotest.failf "of_json failed: %s" m
  | Ok (t', alerts') ->
      Alcotest.(check (list string)) "names preserved" (Tsdb.names t)
        (Tsdb.names t');
      check_bool "kind preserved" true
        (Tsdb.series_kind t' "c" = Some Tsdb.Counter);
      check_bool "alerts block preserved" true
        (alerts' = Some (Jsonx.Obj [ ("firing", Jsonx.Int 1) ]));
      let same metric =
        let q t =
          Tsdb.query t ~metric ~from_s:0. ~to_s:11. ~step_s:1.
        in
        Alcotest.(check int)
          (metric ^ " point count preserved")
          (List.length (q t)) (List.length (q t'));
        List.iter2
          (fun (a : Tsdb.point) (b : Tsdb.point) ->
            checkf (metric ^ " t") a.Tsdb.t_s b.Tsdb.t_s;
            checkf (metric ^ " sum") a.Tsdb.sum b.Tsdb.sum;
            check_int (metric ^ " count") a.Tsdb.count b.Tsdb.count)
          (q t) (q t')
      in
      same "g";
      same "c";
      check_bool "time bounds preserved" true
        (Tsdb.time_bounds t = Tsdb.time_bounds t')

let test_of_json_rejects_garbage () =
  let bad j =
    match Tsdb.of_json j with Ok _ -> false | Error _ -> true
  in
  check_bool "missing schema" true (bad (Jsonx.Obj []));
  check_bool "wrong schema" true
    (bad (Jsonx.Obj [ ("schema", Jsonx.String "vstamp-tsdb/999") ]))

let () =
  Alcotest.run "tsdb"
    [
      ( "construction",
        [ Alcotest.test_case "parameter validation" `Quick test_create_validation ]
      );
      ( "recording",
        [
          Alcotest.test_case "counter increases + reset" `Quick
            test_counter_increase_semantics;
          Alcotest.test_case "gauges raw" `Quick test_gauge_raw_semantics;
        ] );
      ( "tiers",
        [
          Alcotest.test_case "roll-up cascade + query fallback" `Quick
            test_rollup_and_fallback;
        ] );
      ( "memory",
        [
          Alcotest.test_case "footprint capped over 10k samples" `Quick
            test_memory_capped;
          Alcotest.test_case "max_series drops extras" `Quick
            test_max_series_dropped;
        ] );
      ( "registry",
        [ Alcotest.test_case "snapshot sampling" `Quick test_sample_registry ]
      );
      ( "dump",
        [
          Alcotest.test_case "to_json/of_json round trip" `Quick
            test_json_round_trip;
          Alcotest.test_case "of_json rejects garbage" `Quick
            test_of_json_rejects_garbage;
        ] );
    ]
