(* Fuzzing the boundaries: decoders and parsers must be total —
   arbitrary input yields [Ok] or a typed [Error], never an exception —
   and accepted input must always produce well-formed values. *)

open Vstamp_core
open Vstamp_codec

let gen_bytes =
  QCheck2.Gen.(map Bytes.unsafe_to_string (bytes_size (int_bound 24)))

let gen_ascii = QCheck2.Gen.(string_size ~gen:printable (int_bound 24))

let print_hex s =
  String.concat ""
    (List.init (String.length s) (fun i -> Printf.sprintf "%02x" (Char.code s.[i])))

let prop_wire_stamp_total =
  QCheck2.Test.make ~name:"wire stamp decoder is total and validating"
    ~count:2000 ~print:print_hex gen_bytes (fun input ->
      match Wire.stamp_of_string input with
      | Ok s -> Stamp.well_formed s
      | Error (Wire.Truncated | Wire.Malformed _) -> true
      | exception _ -> false)

let prop_wire_name_total =
  QCheck2.Test.make ~name:"wire name decoder is total and validating"
    ~count:2000 ~print:print_hex gen_bytes (fun input ->
      match Wire.name_of_string input with
      | Ok n -> Name_tree.well_formed n
      | Error _ -> true
      | exception _ -> false)

let prop_wire_vv_total =
  QCheck2.Test.make ~name:"wire vv decoder is total" ~count:2000
    ~print:print_hex gen_bytes (fun input ->
      match Wire.vv_of_string input with
      | Ok _ | Error _ -> true
      | exception _ -> false)

let prop_text_stamp_total =
  QCheck2.Test.make ~name:"text stamp parser is total and validating"
    ~count:2000 ~print:Fun.id gen_ascii (fun input ->
      match Text.stamp_of_string input with
      | Ok s -> Stamp.well_formed s
      | Error _ -> true
      | exception _ -> false)

let prop_text_name_total =
  QCheck2.Test.make ~name:"text name parser is total and validating"
    ~count:2000 ~print:Fun.id gen_ascii (fun input ->
      match Text.name_of_string input with
      | Ok n -> Name_tree.well_formed n
      | Error _ -> true
      | exception _ -> false)

(* Near-miss fuzzing: take a valid encoding and flip one bit; the decoder
   must still be total, and whatever decodes must still be well-formed. *)
let prop_wire_bitflip =
  let gen =
    QCheck2.Gen.(
      pair (Vstamp_test_support.Gen.trace ~max_len:12 ()) (int_bound 200))
  in
  QCheck2.Test.make ~name:"bit-flipped wire stamps decode safely" ~count:500
    ~print:(fun (ops, k) ->
      Printf.sprintf "%s / flip %d" (Vstamp_test_support.Gen.trace_print ops) k)
    gen
    (fun (ops, k) ->
      match Execution.Run_stamps.run ops with
      | [] -> true
      | s :: _ -> (
          let enc = Bytes.of_string (Wire.stamp_to_string s) in
          if Bytes.length enc = 0 then true
          else begin
            let bit = k mod (Bytes.length enc * 8) in
            let byte = bit / 8 in
            Bytes.set enc byte
              (Char.chr (Char.code (Bytes.get enc byte) lxor (1 lsl (bit mod 8))));
            match Wire.stamp_of_string (Bytes.to_string enc) with
            | Ok s' -> Stamp.well_formed s'
            | Error _ -> true
            | exception _ -> false
          end))

(* Truncation fuzzing: every strict prefix of a valid encoding must
   decode to an error or a (different but) well-formed stamp. *)
let prop_wire_truncation =
  QCheck2.Test.make ~name:"truncated wire stamps decode safely" ~count:300
    ~print:Vstamp_test_support.Gen.trace_print
    (Vstamp_test_support.Gen.trace ~max_len:12 ())
    (fun ops ->
      match Execution.Run_stamps.run ops with
      | [] -> true
      | s :: _ ->
          let enc = Wire.stamp_to_string s in
          List.for_all
            (fun len ->
              match Wire.stamp_of_string (String.sub enc 0 len) with
              | Ok s' -> Stamp.well_formed s'
              | Error _ -> true
              | exception _ -> false)
            (List.init (String.length enc) Fun.id))

(* The text parser and printer agree on the grammar corner cases. *)
let unit_cases () =
  List.iter
    (fun input ->
      match Text.stamp_of_string input with
      | Ok _ | Error _ -> ())
    [
      "";
      "[";
      "]";
      "[|]";
      "[e|";
      "[\xce";
      "[\xce\xb5|\xce\xb5]";
      "[++|++]";
      "[0+|1]";
      "[ | ]";
      String.make 1000 '[';
      "[0101010101010101010101010101010101010101|1]";
    ]

let () =
  Alcotest.run "fuzz"
    [
      ( "decoders",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_wire_stamp_total;
            prop_wire_name_total;
            prop_wire_vv_total;
            prop_text_stamp_total;
            prop_text_name_total;
            prop_wire_bitflip;
            prop_wire_truncation;
          ] );
      ( "corner cases",
        [ Alcotest.test_case "text grammar corners" `Quick unit_cases ] );
    ]
