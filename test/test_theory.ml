(* Executable checks of the paper's formal results:

   - Invariants I1, I2, I3 hold in every reachable configuration
     (Section 4), with and without Section 6 reduction.
   - Proposition 5.1 / Corollary 5.2: stamp order coincides with causal
     history inclusion on every frontier, for every element and subset.
   - The reduction rule preserves the relation R(V) (Section 6).
   - Mutation tests: a deliberately broken mechanism is caught by the
     oracle, demonstrating the differential harness has teeth. *)

open Vstamp_core
module Corr = Correspondence.Make (Stamp.Over_tree)
module Corr_list = Correspondence.Make (Stamp.Over_list)

let trace_gen ?bias ?max_frontier ?max_len () =
  Vstamp_test_support.Gen.trace ?bias ?max_frontier ?max_len ()

let print = Vstamp_test_support.Gen.trace_print

let prop ?(count = 300) name gen f = QCheck2.Test.make ~name ~count ~print gen f

(* --- invariants --- *)

let invariant_props =
  [
    prop "I1+I2+I3 hold at every step (reducing)" (trace_gen ()) (fun ops ->
        Execution.Run_stamps.run_steps ops |> List.for_all Invariants.all);
    prop "I1+I2+I3 hold at every step (non-reducing)" (trace_gen ())
      (fun ops ->
        Execution.Run_stamps_nonreducing.run_steps ops
        |> List.for_all Invariants.all);
    prop "I1+I2+I3 hold at every step (list implementation)" (trace_gen ())
      (fun ops ->
        Execution.Run_stamps_list.run_steps ops
        |> List.for_all Invariants.Over_list.all);
    prop "check finds no violations on reachable configurations"
      (trace_gen ()) (fun ops ->
        Execution.Run_stamps.run_steps ops
        |> List.for_all (fun f -> Invariants.check f = []));
  ]

(* hand-built violations prove the checkers can fail *)

let n = Name_tree.of_strings

let mk u i = Stamp.make_unchecked ~update:(n u) ~id:(n i)

let test_i1_detects () =
  Alcotest.(check bool) "I1 fails" false (Invariants.i1 (mk [ "0" ] [ "1" ]))

let test_i2_detects () =
  (* two frontier members with comparable id strings *)
  let a = mk [ "" ] [ "0" ] and b = mk [ "" ] [ "01" ] in
  Alcotest.(check bool) "I2 fails" false (Invariants.i2 [ a; b ]);
  Alcotest.(check bool) "violation reported" true
    (List.exists
       (function Invariants.I2 _ -> true | _ -> false)
       (Invariants.check [ a; b ]))

let test_i3_detects () =
  (* x knows update 0 which falls under y's id 0, but y does not know it *)
  let x = mk [ "0" ] [ "1" ] and y = mk [ "" ] [ "0" ] in
  Alcotest.(check bool) "I3 fails" false (Invariants.i3 [ x; y ]);
  Alcotest.(check bool) "violation reported" true
    (List.exists
       (function Invariants.I3 _ -> true | _ -> false)
       (Invariants.check [ x; y ]))

let test_i2_singleton_trivial () =
  Alcotest.(check bool) "single element frontier" true
    (Invariants.i2 [ mk [ "" ] [ "" ] ])

(* --- the main theorem --- *)

let correspondence_props =
  [
    prop "Corollary 5.2: pairwise order agrees with the oracle"
      (trace_gen ()) (fun ops ->
        let stamps = Execution.Run_stamps.run ops in
        let hists = Execution.Run_histories.run ops in
        Corr.pairwise_agree stamps hists);
    prop "Corollary 5.2 on every intermediate frontier" ~count:150
      (trace_gen ~max_len:25 ()) (fun ops ->
        let s_steps = Execution.Run_stamps.run_steps ops in
        let h_steps = Execution.Run_histories.run_steps ops in
        List.for_all2 Corr.pairwise_agree s_steps h_steps);
    prop "Proposition 5.1: set-quantified agreement" ~count:150
      (trace_gen ~max_frontier:7 ()) (fun ops ->
        let stamps = Execution.Run_stamps.run ops in
        let hists = Execution.Run_histories.run ops in
        Corr.set_agree stamps hists);
    prop "Proposition 5.1 for the non-reducing model" ~count:150
      (trace_gen ~max_frontier:7 ()) (fun ops ->
        let stamps = Execution.Run_stamps_nonreducing.run ops in
        let hists = Execution.Run_histories.run ops in
        Corr.set_agree stamps hists);
    prop "Proposition 5.1 for the list implementation" ~count:150
      (trace_gen ~max_frontier:7 ()) (fun ops ->
        let stamps = Execution.Run_stamps_list.run ops in
        let hists = Execution.Run_histories.run ops in
        Corr_list.set_agree stamps hists);
  ]

(* --- Section 6: reduction preserves R(V) --- *)

let reduction_props =
  [
    prop "reducing and non-reducing frontiers induce the same R(V)"
      ~count:150 (trace_gen ~max_frontier:7 ()) (fun ops ->
        let red = Execution.Run_stamps.run ops in
        let raw = Execution.Run_stamps_nonreducing.run ops in
        let n = List.length red in
        List.for_all
          (fun subset ->
            let pick f = List.map (List.nth f) subset in
            List.for_all2
              (fun x x' ->
                Stamp.dominated_by_join x (pick red)
                = Stamp.dominated_by_join x' (pick raw))
              red raw)
          (Corr.subsets n));
    prop "reduced stamps never grow" (trace_gen ()) (fun ops ->
        let red = Execution.Run_stamps.run ops in
        let raw = Execution.Run_stamps_nonreducing.run ops in
        List.for_all2
          (fun r w -> Stamp.size_bits r <= Stamp.size_bits w)
          red raw);
  ]

(* --- confluence: the rewrite order does not matter --- *)

(* An independent reducer that applies the Section 6 rule to a randomly
   chosen applicable sibling pair at each step (seeded), instead of the
   deterministic strategies of the two library implementations.  All
   three must land on the same normal form — an executable check of the
   confluence claim the paper leaves informal. *)
let random_order_reduce seed (u : Name.t) (id : Name.t) =
  let pairs_of id =
    List.filter_map
      (fun s0 ->
        match Bits.sibling s0 with
        | Some s1 when Bits.compare s0 s1 < 0 && Name.mem s1 id -> Some (s0, s1)
        | _ -> None)
      (Name.to_list id)
  in
  let rec go rng u id =
    match pairs_of id with
    | [] -> (u, id)
    | candidates ->
        let (s0, s1), rng = Vstamp_sim.Rng.pick rng candidates in
        let parent = Option.get (Bits.parent s0) in
        let strip n =
          Name.of_list
            (List.filter
               (fun r -> not (Bits.equal r s0 || Bits.equal r s1))
               (Name.to_list n))
        in
        let id' = Name.of_list (parent :: Name.to_list (strip id)) in
        let u' =
          if Name.mem s0 u || Name.mem s1 u then
            Name.of_list (parent :: Name.to_list (strip u))
          else u
        in
        go rng u' id'
  in
  go (Vstamp_sim.Rng.make seed) u id

let prop_confluence =
  QCheck2.Test.make
    ~name:"reduction is confluent: random rewrite orders reach the same normal form"
    ~count:300
    ~print:(fun (ops, seed) ->
      Printf.sprintf "%s / seed %d" (print ops) seed)
    (QCheck2.Gen.pair
       (Vstamp_test_support.Gen.trace ~max_len:25 ())
       QCheck2.Gen.(int_bound 100000))
    (fun (ops, seed) ->
      (* build interesting unreduced stamps from a non-reducing run *)
      Execution.Run_stamps_nonreducing.run ops
      |> List.for_all (fun s ->
             let u = Name_tree.to_name (Stamp.update_name s) in
             let id = Name_tree.to_name (Stamp.id s) in
             let ru, ri = random_order_reduce seed u id in
             let lu, li = Name.reduce_stamp ~u ~id in
             let tu, ti =
               Name_tree.reduce_stamp ~u:(Name_tree.of_name u)
                 ~id:(Name_tree.of_name id)
             in
             Name.equal ru lu && Name.equal ri li
             && Name.equal lu (Name_tree.to_name tu)
             && Name.equal li (Name_tree.to_name ti)))

(* --- mutation tests: break the mechanism, expect the oracle to notice --- *)

(* A broken subject whose update forgets to copy the id: updates become
   invisible, so obsolescence is misreported as equivalence. *)
module Broken_update = struct
  type t = Stamp.t

  type state = unit

  let initial = ((), Stamp.seed)

  let update () x = ((), x)

  let fork () x = ((), Stamp.fork x)

  let join () a b = ((), Stamp.join a b)
end

module Run_broken = Execution.Run (Broken_update)

let test_mutation_caught () =
  (* fork, update one side: a real mechanism must order the two sides *)
  let ops = [ Execution.Fork 0; Update 0 ] in
  let broken = Run_broken.run ops in
  let hists = Execution.Run_histories.run ops in
  Alcotest.(check bool)
    "oracle detects the broken mechanism" false
    (Corr.pairwise_agree broken hists)

(* A broken join that keeps only the left update component. *)
module Broken_join = struct
  type t = Stamp.t

  type state = unit

  let initial = ((), Stamp.seed)

  let update () x = ((), Stamp.update x)

  let fork () x = ((), Stamp.fork x)

  let join () a b =
    ( (),
      Stamp.make_unchecked ~update:(Stamp.update_name a)
        ~id:(Name_tree.join (Stamp.id a) (Stamp.id b)) )
end

module Run_broken_join = Execution.Run (Broken_join)

let test_mutation_join_caught () =
  (* join must combine knowledge: b's update would be forgotten *)
  (* a third replica that never hears of the update makes the forgotten
     knowledge observable on the resulting two-element frontier *)
  let ops = [ Execution.Fork 0; Fork 1; Update 1; Join (0, 1) ] in
  let broken = Run_broken_join.run ops in
  let hists = Execution.Run_histories.run ops in
  Alcotest.(check bool)
    "oracle detects the broken join" false
    (Corr.pairwise_agree broken hists)

let test_counterexample_reporting () =
  let ops = [ Execution.Fork 0; Update 0 ] in
  let broken = Run_broken.run ops in
  let hists = Execution.Run_histories.run ops in
  match Corr.pairwise_counterexample broken hists with
  | None -> Alcotest.fail "expected a counterexample"
  | Some c ->
      let rendered = Format.asprintf "%a" Corr.pp_counterexample c in
      Alcotest.(check bool) "renders" true (String.length rendered > 0)

let test_subsets () =
  Alcotest.(check int) "subsets of 3" 7 (List.length (Corr.subsets 3));
  Alcotest.(check int)
    "capped subsets" 6
    (List.length (Corr.subsets ~max_subset_size:2 3));
  Alcotest.(check int) "subsets of 1" 1 (List.length (Corr.subsets 1))

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "theory"
    [
      ("invariants (properties)", qcheck invariant_props);
      ( "invariants (detection)",
        [
          Alcotest.test_case "I1 detects" `Quick test_i1_detects;
          Alcotest.test_case "I2 detects" `Quick test_i2_detects;
          Alcotest.test_case "I3 detects" `Quick test_i3_detects;
          Alcotest.test_case "I2 singleton" `Quick test_i2_singleton_trivial;
        ] );
      ("correspondence (properties)", qcheck correspondence_props);
      ("reduction (properties)", qcheck (reduction_props @ [ prop_confluence ]));
      ( "mutation",
        [
          Alcotest.test_case "broken update caught" `Quick test_mutation_caught;
          Alcotest.test_case "broken join caught" `Quick
            test_mutation_join_caught;
          Alcotest.test_case "counterexample rendering" `Quick
            test_counterexample_reporting;
          Alcotest.test_case "subset enumeration" `Quick test_subsets;
        ] );
    ]
