open Vstamp_core
open Vstamp_sim
module Obs = Vstamp_obs

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let counter_value reg name = Obs.Metric.count (Obs.Registry.counter reg name)

(* --- the monitor itself --- *)

let test_monitor_pass () =
  let reg = Obs.Registry.create () in
  let sink = Obs.Sink.memory () in
  let m = Obs.Monitor.create ~registry:reg ~sink "t" in
  check_bool "clean check passes" true (Obs.Monitor.check m ~step:1 (fun () -> []));
  check_int "checks" 1 (Obs.Monitor.checks m);
  check_int "violations" 0 (Obs.Monitor.violations m);
  check_int "checks counter" 1
    (counter_value reg {|vstamp_invariant_checks_total{monitor="t"}|});
  check_int "violations counter" 0
    (counter_value reg {|vstamp_invariant_violations_total{monitor="t"}|});
  check_int "no events" 0 (List.length (Obs.Sink.contents sink));
  check_bool "no first violation" true (Obs.Monitor.first_violation m = None)

let test_monitor_fail () =
  let reg = Obs.Registry.create () in
  let sink = Obs.Sink.memory () in
  let m = Obs.Monitor.create ~registry:reg ~sink "t" in
  let witness () = [ ("broken", Obs.Jsonx.Bool true) ] in
  check_bool "failing check reports" false (Obs.Monitor.check m ~step:7 witness);
  check_bool "later clean check still passes" true
    (Obs.Monitor.check m ~step:8 (fun () -> []));
  check_int "checks" 2 (Obs.Monitor.checks m);
  check_int "violations" 1 (Obs.Monitor.violations m);
  check_int "violations counter" 1
    (counter_value reg {|vstamp_invariant_violations_total{monitor="t"}|});
  (match Obs.Sink.contents sink with
  | [ ev ] ->
      Alcotest.(check string) "event name" "invariant.violation" ev.Obs.Event.name;
      check_bool "step timestamp" true (ev.Obs.Event.ts = Obs.Event.Step 7);
      check_bool "monitor field" true
        (List.assoc_opt "monitor" ev.Obs.Event.fields
        = Some (Obs.Jsonx.String "t"));
      check_bool "witness field" true
        (List.assoc_opt "broken" ev.Obs.Event.fields = Some (Obs.Jsonx.Bool true))
  | evs -> Alcotest.failf "expected one event, got %d" (List.length evs));
  match Obs.Monitor.first_violation m with
  | Some (7, fields) ->
      check_bool "first violation witness" true
        (List.assoc_opt "broken" fields = Some (Obs.Jsonx.Bool true))
  | _ -> Alcotest.fail "first violation not recorded"

(* --- System.run wiring: clean mechanisms never violate --- *)

let test_run_clean () =
  let ops = Workload.uniform ~seed:5 ~n_ops:120 () in
  List.iter
    (fun tracker ->
      let reg = Obs.Registry.create () in
      let (_ : System.result) =
        System.run ~with_oracle:false ~registry:reg ~check_invariants:true
          tracker ops
      in
      let name = Tracker.name tracker in
      check_int
        (Printf.sprintf "%s: one check per step plus the seed" name)
        (List.length ops + 1)
        (counter_value reg
           (Printf.sprintf "vstamp_invariant_checks_total{monitor=%S}" name));
      check_int
        (Printf.sprintf "%s: no violations" name)
        0
        (counter_value reg
           (Printf.sprintf "vstamp_invariant_violations_total{monitor=%S}" name)))
    [ Tracker.stamps; Tracker.stamps_list; Tracker.version_vectors ]

(* --- a deliberately corrupted mechanism is caught with a minimal
       witness --- *)

(* I1 demands update <= id; this stamp's update part names a subtree the
   id does not own. *)
let bad_stamp =
  Stamp.make_unchecked
    ~update:(Name_tree.of_list [ Bits.of_digits [ Bits.One ] ])
    ~id:(Name_tree.of_list [ Bits.of_digits [ Bits.Zero ] ])

module Corrupt = struct
  type t = Stamp.t

  type state = int

  let name = "corrupt"

  let initial = (0, Stamp.seed)

  let update n s = (n + 1, if n + 1 >= 3 then bad_stamp else Stamp.update s)

  let fork n s = (n, Stamp.fork s)

  let join n a b = (n, Stamp.join a b)

  let leq = Stamp.leq

  let size_bits = Stamp.size_bits

  let invariants = Invariants.check

  let pp = Stamp.pp
end

let corrupt = Tracker.Packed (module Corrupt)

let test_corrupted_stamp_caught () =
  let ops = Execution.[ Update 0; Update 0; Update 0; Update 0; Update 0 ] in
  let reg = Obs.Registry.create () in
  let sink = Obs.Sink.memory () in
  let file = Filename.temp_file "vstamp_violation" ".trace" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists file then Sys.remove file)
    (fun () ->
      match
        System.run ~with_oracle:false ~registry:reg ~sink
          ~check_invariants:true ~violation_out:file corrupt ops
      with
      | (_ : System.result) -> Alcotest.fail "corruption not detected"
      | exception
          System.Invariant_violation
            { tracker; step; violations; prefix; saved; _ } -> (
          Alcotest.(check string) "tracker named" "corrupt" tracker;
          check_int "detected at the third update" 3 step;
          check_bool "I1 witness at position 0" true
            (List.mem (Invariants.I1 0) violations);
          check_int "minimal prefix stops at the offending op" 3
            (List.length prefix);
          check_bool "prefix saved" true (saved = Some file);
          (* the saved prefix is a loadable, replayable trace *)
          (match Trace.load ~file with
          | Ok ops' -> check_bool "saved prefix loads" true (ops' = prefix)
          | Error e -> Alcotest.failf "saved prefix unloadable: %a" Trace.pp_error e);
          check_int "violation counted" 1
            (counter_value reg
               {|vstamp_invariant_violations_total{monitor="corrupt"}|});
          (* the violation event carries the serialized witness *)
          match
            List.filter
              (fun ev -> ev.Obs.Event.name = "invariant.violation")
              (Obs.Sink.contents sink)
          with
          | [ ev ] ->
              check_bool "witness serialized" true
                (match List.assoc_opt "violations" ev.Obs.Event.fields with
                | Some (Obs.Jsonx.List (_ :: _)) -> true
                | _ -> false)
          | evs ->
              Alcotest.failf "expected one violation event, got %d"
                (List.length evs)))

(* --- order sanity: a broken leq trips the monitor even when the
       stamps themselves are fine --- *)

module Broken_order = struct
  type t = Stamp.t

  type state = unit

  let name = "broken-order"

  let initial = ((), Stamp.seed)

  let update () s = ((), Stamp.update s)

  let fork () s = ((), Stamp.fork s)

  let join () a b = ((), Stamp.join a b)

  let leq _ _ = false

  let size_bits = Stamp.size_bits

  let invariants _ = []

  let pp = Stamp.pp
end

let test_broken_order_caught () =
  match
    System.run ~with_oracle:false ~check_invariants:true
      (Tracker.Packed (module Broken_order))
      [ Execution.Update 0 ]
  with
  | (_ : System.result) -> Alcotest.fail "broken order not detected"
  | exception System.Invariant_violation { step; violations; prefix; _ } ->
      check_int "caught on the seed frontier" 0 step;
      check_bool "no stamp-invariant witnesses" true (violations = []);
      check_int "empty prefix" 0 (List.length prefix)

(* monitors off (the default): the corrupted run completes silently *)
let test_default_off () =
  let ops = Execution.[ Update 0; Update 0; Update 0; Update 0 ] in
  let r = System.run ~with_oracle:false corrupt ops in
  check_int "run completed" 4 r.System.ops

(* --- sampling --- *)

let test_sampling_every_n () =
  let m = Obs.Monitor.create ~registry:(Obs.Registry.create ()) ~sampling:(Obs.Monitor.Every_n 3) "t" in
  let evaluated = ref 0 in
  for step = 0 to 9 do
    ignore
      (Obs.Monitor.check m ~step (fun () ->
           incr evaluated;
           [])
        : bool)
  done;
  (* pre-increment election: offered steps 0,3,6,9 are checked *)
  check_int "4 of 10 checked" 4 (Obs.Monitor.checks m);
  check_int "witness evaluated only when checked" 4 !evaluated;
  check_int "all offers seen" 10 (Obs.Monitor.steps_seen m);
  check_bool "coverage is checks/seen" true
    (abs_float (Obs.Monitor.coverage m -. 0.4) < 1e-9);
  check_bool "last checked step" true
    (Obs.Monitor.last_checked_step m = Some 9)

let test_sampling_probability_injected () =
  (* inject the draws: the monitor checks exactly when draw < p *)
  let draws = ref [ 0.9; 0.1; 0.5; 0.0 ] in
  let sample () =
    match !draws with
    | [] -> 1.0
    | d :: rest ->
        draws := rest;
        d
  in
  let m =
    Obs.Monitor.create ~registry:(Obs.Registry.create ())
      ~sampling:(Obs.Monitor.Probability 0.4) ~sample "t"
  in
  let checked = ref [] in
  for step = 0 to 3 do
    ignore
      (Obs.Monitor.check m ~step (fun () ->
           checked := step :: !checked;
           [])
        : bool)
  done;
  check_bool "draws 0.1 and 0.0 elected" true (List.rev !checked = [ 1; 3 ]);
  check_int "two checks" 2 (Obs.Monitor.checks m)

let test_sampling_skip_passes_without_evaluating () =
  let m =
    Obs.Monitor.create ~registry:(Obs.Registry.create ())
      ~sampling:(Obs.Monitor.Every_n 1000) "t"
  in
  ignore (Obs.Monitor.check m ~step:0 (fun () -> []) : bool);
  (* a skipped step reports success and must not run the witness *)
  check_bool "skipped step passes" true
    (Obs.Monitor.check m ~step:1 (fun () -> Alcotest.fail "witness ran"));
  (* force overrides the policy *)
  check_bool "forced step evaluates" false
    (Obs.Monitor.check m ~force:true ~step:2 (fun () ->
         [ ("broken", Obs.Jsonx.Bool true) ]));
  check_int "two checks (step 0 and forced)" 2 (Obs.Monitor.checks m)

let test_sampling_validation () =
  let invalid f = match f () with _ -> false | exception Invalid_argument _ -> true in
  check_bool "Every_n 0 rejected" true
    (invalid (fun () -> Obs.Monitor.create ~sampling:(Obs.Monitor.Every_n 0) "t"));
  check_bool "negative probability rejected" true
    (invalid (fun () ->
         Obs.Monitor.create ~sampling:(Obs.Monitor.Probability (-0.1)) "t"));
  check_bool "probability over 1 rejected" true
    (invalid (fun () ->
         Obs.Monitor.create ~sampling:(Obs.Monitor.Probability 1.5) "t"))

let test_sampled_violation_event_replay_window () =
  let sink = Obs.Sink.memory () in
  let m =
    Obs.Monitor.create ~registry:(Obs.Registry.create ()) ~sink
      ~sampling:(Obs.Monitor.Every_n 2) "t"
  in
  (* step 0 checked clean, step 1 skipped, step 2 checked and violating:
     the event must name (0, 2] as the replay window *)
  ignore (Obs.Monitor.check m ~step:0 (fun () -> []) : bool);
  ignore (Obs.Monitor.check m ~step:1 (fun () -> [ ("missed", Obs.Jsonx.Bool true) ]) : bool);
  check_bool "violation at the sampled step" false
    (Obs.Monitor.check m ~step:2 (fun () -> [ ("broken", Obs.Jsonx.Bool true) ]));
  match Obs.Sink.contents sink with
  | [ ev ] ->
      let field name = List.assoc_opt name ev.Obs.Event.fields in
      check_bool "sampling policy recorded" true
        (field "sampling" = Some (Obs.Jsonx.String "every_n:2"));
      check_bool "previous checked step recorded" true
        (field "prev_checked_step" = Some (Obs.Jsonx.Int 0));
      check_bool "seen recorded" true
        (field "steps_seen" = Some (Obs.Jsonx.Int 3));
      check_bool "checked recorded" true
        (field "steps_checked" = Some (Obs.Jsonx.Int 2))
  | evs -> Alcotest.failf "expected one event, got %d" (List.length evs)

(* --- sampled System.run: deterministic thinning, forced final check --- *)

let test_run_sampled_counts () =
  let ops = Workload.uniform ~seed:5 ~n_ops:120 () in
  let checks_with sampling =
    let reg = Obs.Registry.create () in
    let (_ : System.result) =
      System.run ~with_oracle:false ~registry:reg ~check_invariants:true
        ~sampling Tracker.stamps ops
    in
    counter_value reg {|vstamp_invariant_checks_total{monitor="stamps"}|}
  in
  (* 121 offered steps (seed + 120 ops); every 10th from the seed is 13,
     and the 13th lands on the final step, so no extra forced check *)
  check_int "Every_n 10 checks 13 steps" 13
    (checks_with (Obs.Monitor.Every_n 10));
  (* every 7th checks 18 steps ending at 119; the final frontier is then
     force-checked on top *)
  check_int "Every_n 7 checks 18+1 steps" 19
    (checks_with (Obs.Monitor.Every_n 7));
  check_int "Always still checks everything" 121
    (checks_with Obs.Monitor.Always)

let test_run_sampled_deterministic () =
  let ops = Workload.uniform ~seed:5 ~n_ops:200 () in
  let coverage ~sample_seed =
    let reg = Obs.Registry.create () in
    let (_ : System.result) =
      System.run ~with_oracle:false ~registry:reg ~check_invariants:true
        ~sampling:(Obs.Monitor.Probability 0.25) ~sample_seed Tracker.stamps
        ops
    in
    ( counter_value reg {|vstamp_invariant_checks_total{monitor="stamps"}|},
      match Obs.Registry.find reg {|vstamp_monitor_coverage{monitor="stamps"}|} with
      | Some (Obs.Registry.Gauge g) -> Obs.Metric.value g
      | _ -> nan )
  in
  let c1, cov1 = coverage ~sample_seed:42 in
  let c2, cov2 = coverage ~sample_seed:42 in
  check_int "same seed, same checks" c1 c2;
  check_bool "same seed, same coverage" true (cov1 = cov2);
  check_bool "coverage near the probability" true
    (cov1 > 0.1 && cov1 < 0.5);
  let c3, _ = coverage ~sample_seed:43 in
  check_bool "a different seed may thin differently" true (c3 > 0)

let test_run_sampled_still_catches () =
  (* the corrupt tracker violates from its third update onward; a sparse
     Every_n 5 skips steps 1-4 but the step-5 check (and the forced
     final check semantics) still catch it, and the event names the
     replay window *)
  let ops = Execution.[ Update 0; Update 0; Update 0; Update 0; Update 0 ] in
  let sink = Obs.Sink.memory () in
  match
    System.run ~with_oracle:false ~registry:(Obs.Registry.create ()) ~sink
      ~check_invariants:true ~sampling:(Obs.Monitor.Every_n 5) corrupt ops
  with
  | (_ : System.result) -> Alcotest.fail "corruption not detected"
  | exception System.Invariant_violation { step; prefix; _ } -> (
      check_int "caught at the first sampled step past it" 5 step;
      check_int "prefix covers the whole window" 5 (List.length prefix);
      match
        List.filter
          (fun ev -> ev.Obs.Event.name = "invariant.violation")
          (Obs.Sink.contents sink)
      with
      | [ ev ] ->
          let field name = List.assoc_opt name ev.Obs.Event.fields in
          check_bool "policy in event" true
            (field "sampling" = Some (Obs.Jsonx.String "every_n:5"));
          check_bool "window start in event" true
            (field "prev_checked_step" = Some (Obs.Jsonx.Int 0))
      | evs ->
          Alcotest.failf "expected one violation event, got %d"
            (List.length evs))

let () =
  Alcotest.run "monitor"
    [
      ( "monitor",
        [
          Alcotest.test_case "passing checks" `Quick test_monitor_pass;
          Alcotest.test_case "failing checks" `Quick test_monitor_fail;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "every_n election" `Quick test_sampling_every_n;
          Alcotest.test_case "probability election" `Quick
            test_sampling_probability_injected;
          Alcotest.test_case "skip and force" `Quick
            test_sampling_skip_passes_without_evaluating;
          Alcotest.test_case "validation" `Quick test_sampling_validation;
          Alcotest.test_case "violation replay window" `Quick
            test_sampled_violation_event_replay_window;
        ] );
      ( "system",
        [
          Alcotest.test_case "clean mechanisms" `Quick test_run_clean;
          Alcotest.test_case "corrupted stamp caught" `Quick
            test_corrupted_stamp_caught;
          Alcotest.test_case "broken order caught" `Quick
            test_broken_order_caught;
          Alcotest.test_case "off by default" `Quick test_default_off;
          Alcotest.test_case "sampled check counts" `Quick
            test_run_sampled_counts;
          Alcotest.test_case "sampled runs deterministic" `Quick
            test_run_sampled_deterministic;
          Alcotest.test_case "sampling still catches" `Quick
            test_run_sampled_still_catches;
        ] );
    ]
