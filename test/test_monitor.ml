open Vstamp_core
open Vstamp_sim
module Obs = Vstamp_obs

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let counter_value reg name = Obs.Metric.count (Obs.Registry.counter reg name)

(* --- the monitor itself --- *)

let test_monitor_pass () =
  let reg = Obs.Registry.create () in
  let sink = Obs.Sink.memory () in
  let m = Obs.Monitor.create ~registry:reg ~sink "t" in
  check_bool "clean check passes" true (Obs.Monitor.check m ~step:1 (fun () -> []));
  check_int "checks" 1 (Obs.Monitor.checks m);
  check_int "violations" 0 (Obs.Monitor.violations m);
  check_int "checks counter" 1
    (counter_value reg {|vstamp_invariant_checks_total{monitor="t"}|});
  check_int "violations counter" 0
    (counter_value reg {|vstamp_invariant_violations_total{monitor="t"}|});
  check_int "no events" 0 (List.length (Obs.Sink.contents sink));
  check_bool "no first violation" true (Obs.Monitor.first_violation m = None)

let test_monitor_fail () =
  let reg = Obs.Registry.create () in
  let sink = Obs.Sink.memory () in
  let m = Obs.Monitor.create ~registry:reg ~sink "t" in
  let witness () = [ ("broken", Obs.Jsonx.Bool true) ] in
  check_bool "failing check reports" false (Obs.Monitor.check m ~step:7 witness);
  check_bool "later clean check still passes" true
    (Obs.Monitor.check m ~step:8 (fun () -> []));
  check_int "checks" 2 (Obs.Monitor.checks m);
  check_int "violations" 1 (Obs.Monitor.violations m);
  check_int "violations counter" 1
    (counter_value reg {|vstamp_invariant_violations_total{monitor="t"}|});
  (match Obs.Sink.contents sink with
  | [ ev ] ->
      Alcotest.(check string) "event name" "invariant.violation" ev.Obs.Event.name;
      check_bool "step timestamp" true (ev.Obs.Event.ts = Obs.Event.Step 7);
      check_bool "monitor field" true
        (List.assoc_opt "monitor" ev.Obs.Event.fields
        = Some (Obs.Jsonx.String "t"));
      check_bool "witness field" true
        (List.assoc_opt "broken" ev.Obs.Event.fields = Some (Obs.Jsonx.Bool true))
  | evs -> Alcotest.failf "expected one event, got %d" (List.length evs));
  match Obs.Monitor.first_violation m with
  | Some (7, fields) ->
      check_bool "first violation witness" true
        (List.assoc_opt "broken" fields = Some (Obs.Jsonx.Bool true))
  | _ -> Alcotest.fail "first violation not recorded"

(* --- System.run wiring: clean mechanisms never violate --- *)

let test_run_clean () =
  let ops = Workload.uniform ~seed:5 ~n_ops:120 () in
  List.iter
    (fun tracker ->
      let reg = Obs.Registry.create () in
      let (_ : System.result) =
        System.run ~with_oracle:false ~registry:reg ~check_invariants:true
          tracker ops
      in
      let name = Tracker.name tracker in
      check_int
        (Printf.sprintf "%s: one check per step plus the seed" name)
        (List.length ops + 1)
        (counter_value reg
           (Printf.sprintf "vstamp_invariant_checks_total{monitor=%S}" name));
      check_int
        (Printf.sprintf "%s: no violations" name)
        0
        (counter_value reg
           (Printf.sprintf "vstamp_invariant_violations_total{monitor=%S}" name)))
    [ Tracker.stamps; Tracker.stamps_list; Tracker.version_vectors ]

(* --- a deliberately corrupted mechanism is caught with a minimal
       witness --- *)

(* I1 demands update <= id; this stamp's update part names a subtree the
   id does not own. *)
let bad_stamp =
  Stamp.make_unchecked
    ~update:(Name_tree.of_list [ Bits.of_digits [ Bits.One ] ])
    ~id:(Name_tree.of_list [ Bits.of_digits [ Bits.Zero ] ])

module Corrupt = struct
  type t = Stamp.t

  type state = int

  let name = "corrupt"

  let initial = (0, Stamp.seed)

  let update n s = (n + 1, if n + 1 >= 3 then bad_stamp else Stamp.update s)

  let fork n s = (n, Stamp.fork s)

  let join n a b = (n, Stamp.join a b)

  let leq = Stamp.leq

  let size_bits = Stamp.size_bits

  let invariants = Invariants.check

  let pp = Stamp.pp
end

let corrupt = Tracker.Packed (module Corrupt)

let test_corrupted_stamp_caught () =
  let ops = Execution.[ Update 0; Update 0; Update 0; Update 0; Update 0 ] in
  let reg = Obs.Registry.create () in
  let sink = Obs.Sink.memory () in
  let file = Filename.temp_file "vstamp_violation" ".trace" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists file then Sys.remove file)
    (fun () ->
      match
        System.run ~with_oracle:false ~registry:reg ~sink
          ~check_invariants:true ~violation_out:file corrupt ops
      with
      | (_ : System.result) -> Alcotest.fail "corruption not detected"
      | exception
          System.Invariant_violation
            { tracker; step; violations; prefix; saved; _ } -> (
          Alcotest.(check string) "tracker named" "corrupt" tracker;
          check_int "detected at the third update" 3 step;
          check_bool "I1 witness at position 0" true
            (List.mem (Invariants.I1 0) violations);
          check_int "minimal prefix stops at the offending op" 3
            (List.length prefix);
          check_bool "prefix saved" true (saved = Some file);
          (* the saved prefix is a loadable, replayable trace *)
          (match Trace.load ~file with
          | Ok ops' -> check_bool "saved prefix loads" true (ops' = prefix)
          | Error e -> Alcotest.failf "saved prefix unloadable: %a" Trace.pp_error e);
          check_int "violation counted" 1
            (counter_value reg
               {|vstamp_invariant_violations_total{monitor="corrupt"}|});
          (* the violation event carries the serialized witness *)
          match
            List.filter
              (fun ev -> ev.Obs.Event.name = "invariant.violation")
              (Obs.Sink.contents sink)
          with
          | [ ev ] ->
              check_bool "witness serialized" true
                (match List.assoc_opt "violations" ev.Obs.Event.fields with
                | Some (Obs.Jsonx.List (_ :: _)) -> true
                | _ -> false)
          | evs ->
              Alcotest.failf "expected one violation event, got %d"
                (List.length evs)))

(* --- order sanity: a broken leq trips the monitor even when the
       stamps themselves are fine --- *)

module Broken_order = struct
  type t = Stamp.t

  type state = unit

  let name = "broken-order"

  let initial = ((), Stamp.seed)

  let update () s = ((), Stamp.update s)

  let fork () s = ((), Stamp.fork s)

  let join () a b = ((), Stamp.join a b)

  let leq _ _ = false

  let size_bits = Stamp.size_bits

  let invariants _ = []

  let pp = Stamp.pp
end

let test_broken_order_caught () =
  match
    System.run ~with_oracle:false ~check_invariants:true
      (Tracker.Packed (module Broken_order))
      [ Execution.Update 0 ]
  with
  | (_ : System.result) -> Alcotest.fail "broken order not detected"
  | exception System.Invariant_violation { step; violations; prefix; _ } ->
      check_int "caught on the seed frontier" 0 step;
      check_bool "no stamp-invariant witnesses" true (violations = []);
      check_int "empty prefix" 0 (List.length prefix)

(* monitors off (the default): the corrupted run completes silently *)
let test_default_off () =
  let ops = Execution.[ Update 0; Update 0; Update 0; Update 0 ] in
  let r = System.run ~with_oracle:false corrupt ops in
  check_int "run completed" 4 r.System.ops

let () =
  Alcotest.run "monitor"
    [
      ( "monitor",
        [
          Alcotest.test_case "passing checks" `Quick test_monitor_pass;
          Alcotest.test_case "failing checks" `Quick test_monitor_fail;
        ] );
      ( "system",
        [
          Alcotest.test_case "clean mechanisms" `Quick test_run_clean;
          Alcotest.test_case "corrupted stamp caught" `Quick
            test_corrupted_stamp_caught;
          Alcotest.test_case "broken order caught" `Quick
            test_broken_order_caught;
          Alcotest.test_case "off by default" `Quick test_default_off;
        ] );
    ]
