open Vstamp_core

(* The same behavioural suite runs over both stamp instantiations. *)
module Suite
    (N : Name_intf.S)
    (S : Stamp.S with type name = N.t) (Info : sig
      val label : string
    end) =
struct
  let stamp = Alcotest.testable S.pp S.equal

  let rel = Alcotest.testable Relation.pp Relation.equal

  let check_bool = Alcotest.(check bool)

  let n ss = N.of_strings ss

  let mk u i = S.make ~update:(n u) ~id:(n i)

  (* --- construction --- *)

  let test_seed () =
    Alcotest.check stamp "seed is ({eps},{eps})" (mk [ "" ] [ "" ]) S.seed;
    check_bool "seed well formed" true (S.well_formed S.seed);
    check_bool "seed reduced" true (S.is_reduced S.seed)

  let test_make_checks_i1 () =
    Alcotest.check_raises "update must be <= id"
      (Invalid_argument "Stamp.make: update component not dominated by id (I1)")
      (fun () -> ignore (S.make ~update:(n [ "0" ]) ~id:(n [ "1" ])))

  let test_make_unchecked () =
    let bad = S.make_unchecked ~update:(n [ "0" ]) ~id:(n [ "1" ]) in
    check_bool "well_formed detects I1 violation" false (S.well_formed bad)

  (* --- the three operations --- *)

  let test_update () =
    let s = mk [ "" ] [ "01" ] in
    let s' = S.update s in
    Alcotest.check stamp "update copies id" (mk [ "01" ] [ "01" ]) s';
    Alcotest.check stamp "update idempotent" s' (S.update s')

  let test_fork () =
    let l, r = S.fork (mk [ "" ] [ "0" ]) in
    Alcotest.check stamp "left fork" (mk [ "" ] [ "00" ]) l;
    Alcotest.check stamp "right fork" (mk [ "" ] [ "01" ]) r

  let test_fork_multi_string_id () =
    let l, r = S.fork (mk [ "1" ] [ "01"; "1" ]) in
    Alcotest.check stamp "left fork appends to all strings"
      (mk [ "1" ] [ "010"; "10" ]) l;
    Alcotest.check stamp "right fork appends to all strings"
      (mk [ "1" ] [ "011"; "11" ]) r

  let test_join_basic () =
    let a = mk [ "1" ] [ "1" ] and b = mk [ "" ] [ "01" ] in
    let j = S.join ~reduce:false a b in
    Alcotest.check stamp "non-reduced join" (mk [ "1" ] [ "01"; "1" ]) j

  let test_join_commutative () =
    let a = mk [ "1" ] [ "1" ] and b = mk [ "" ] [ "01" ] in
    Alcotest.check stamp "join commutes" (S.join a b) (S.join b a)

  let test_join_reduces () =
    let a = mk [ "0" ] [ "0" ] and b = mk [ "" ] [ "1" ] in
    (* union id {0,1} collapses to {eps}; u = {0} is patched to {eps} *)
    Alcotest.check stamp "join reduces to seed shape" (mk [ "" ] [ "" ])
      (S.join a b);
    Alcotest.check stamp "non-reducing keeps the pair" (mk [ "0" ] [ "0"; "1" ])
      (S.join ~reduce:false a b)

  let test_fork_many () =
    let fleet = S.fork_many S.seed 5 in
    Alcotest.(check int) "five replicas" 5 (List.length fleet);
    (* pairwise distinguishable ids, all equivalent knowledge *)
    List.iteri
      (fun i a ->
        List.iteri
          (fun j b ->
            if i <> j then begin
              check_bool "ids differ" false (N.equal (S.id a) (S.id b));
              Alcotest.check rel "equivalent" Relation.Equal (S.relation a b)
            end)
          fleet)
      fleet;
    (* merging the fleet back restores the seed *)
    (match fleet with
    | x :: rest ->
        Alcotest.check stamp "merge restores seed" S.seed
          (List.fold_left (fun acc s -> S.join acc s) x rest)
    | [] -> Alcotest.fail "unreachable");
    Alcotest.(check int) "singleton" 1 (List.length (S.fork_many S.seed 1));
    check_bool "zero rejected" true
      (try
         ignore (S.fork_many S.seed 0);
         false
       with Invalid_argument _ -> true)

  let test_sync () =
    let a = S.update (mk [ "" ] [ "0" ]) and b = mk [ "" ] [ "1" ] in
    let a', b' = S.sync a b in
    Alcotest.check rel "sync leaves equivalents" Relation.Equal
      (S.relation a' b');
    check_bool "distinct ids" false (N.equal (S.id a') (S.id b'))

  let test_reduce_explicit () =
    let s = S.make ~update:(n [ "1" ]) ~id:(n [ "00"; "01"; "1" ]) in
    Alcotest.check stamp "figure 4 rewrite chain ends at seed" S.seed
      (S.reduce s);
    check_bool "is_reduced false before" false (S.is_reduced s);
    check_bool "is_reduced true after" true (S.is_reduced (S.reduce s))

  (* --- ordering --- *)

  let test_relation_cases () =
    let base = mk [ "" ] [ "0" ] in
    let updated = S.update base in
    Alcotest.check rel "base obsolete vs updated" Relation.Dominated
      (S.relation base updated);
    Alcotest.check rel "updated dominates base" Relation.Dominates
      (S.relation updated base);
    Alcotest.check rel "reflexive equal" Relation.Equal (S.relation base base);
    let other = S.update (mk [ "" ] [ "1" ]) in
    Alcotest.check rel "two updated forks concurrent" Relation.Concurrent
      (S.relation updated other);
    check_bool "inconsistent predicate" true (S.inconsistent updated other);
    check_bool "obsolete predicate" true (S.obsolete base updated);
    check_bool "equivalent predicate" true (S.equivalent base base)

  let test_leq () =
    let a = mk [ "" ] [ "0" ] in
    let b = S.update a in
    check_bool "a <= b" true (S.leq a b);
    check_bool "b not <= a" false (S.leq b a);
    check_bool "leq reflexive" true (S.leq a a)

  let test_dominates_all () =
    let a = S.update (mk [ "" ] [ "00" ]) in
    let b = S.update (mk [ "" ] [ "01" ]) in
    let both = S.join ~reduce:false a b in
    check_bool "join dominates both" true (S.dominates_all both [ a; b ]);
    check_bool "a alone does not dominate both" false
      (S.dominates_all a [ a; b ]);
    check_bool "a dominated by the pair" true (S.dominated_by_join a [ a; b ]);
    check_bool "join dominated by the pair" true
      (S.dominated_by_join both [ a; b ]);
    check_bool "join not dominated by a alone" false
      (S.dominated_by_join both [ a ])

  (* --- size and diagnostics --- *)

  let test_sizes () =
    let s = mk [ "1" ] [ "00"; "01"; "1" ] in
    Alcotest.(check int) "size_bits" 6 (S.size_bits s);
    Alcotest.(check int) "id_width" 3 (S.id_width s);
    Alcotest.(check int) "max_depth" 2 (S.max_depth s);
    Alcotest.(check int) "seed size" 0 (S.size_bits S.seed)

  let test_pp () =
    Alcotest.(check string) "paper notation" "[1|01+1]"
      (S.to_string (mk [ "1" ] [ "01"; "1" ]));
    Alcotest.(check string) "seed" "[\xce\xb5|\xce\xb5]" (S.to_string S.seed)

  let test_has_updates () =
    check_bool "seed carries {eps}" true (S.has_updates S.seed);
    let no_u = S.make ~update:N.empty ~id:(n [ "0" ]) in
    check_bool "empty update" false (S.has_updates no_u)

  (* --- the figure 2 / figure 4 execution, step by step --- *)

  let test_figure4 () =
    (* a1 -u-> a2; fork a2 -> b,c; fork b -> d,e; update c twice;
       f = join e c; g = join d f.  Figure 4 of the paper. *)
    let a1 = S.seed in
    let a2 = S.update a1 in
    Alcotest.check stamp "a2 = [eps|eps]" (mk [ "" ] [ "" ]) a2;
    let b, c = S.fork a2 in
    Alcotest.check stamp "b = [eps|0]" (mk [ "" ] [ "0" ]) b;
    Alcotest.check stamp "c = [eps|1]" (mk [ "" ] [ "1" ]) c;
    let d, e = S.fork b in
    Alcotest.check stamp "d = [eps|00]" (mk [ "" ] [ "00" ]) d;
    Alcotest.check stamp "e = [eps|01]" (mk [ "" ] [ "01" ]) e;
    let c1 = S.update c in
    Alcotest.check stamp "c after update = [1|1]" (mk [ "1" ] [ "1" ]) c1;
    let c2 = S.update c1 in
    Alcotest.check stamp "second update invisible" c1 c2;
    (* frontier checks before the joins *)
    Alcotest.check rel "d obsolete vs c" Relation.Dominated (S.relation d c2);
    Alcotest.check rel "d equivalent to e" Relation.Equal (S.relation d e);
    let f = S.join e c2 in
    Alcotest.check stamp "f = [1|01+1]" (mk [ "1" ] [ "01"; "1" ]) f;
    Alcotest.check rel "d obsolete vs f" Relation.Dominated (S.relation d f);
    let g_raw = S.join ~reduce:false d f in
    Alcotest.check stamp "g unreduced = [1|00+01+1]"
      (S.make ~update:(n [ "1" ]) ~id:(n [ "00"; "01"; "1" ]))
      g_raw;
    let g = S.join d f in
    Alcotest.check stamp "g reduces to [eps|eps]" S.seed g;
    Alcotest.check stamp "explicit reduce agrees" g (S.reduce g_raw)

  let tests =
    [
      ( Info.label ^ " construction",
        [
          Alcotest.test_case "seed" `Quick test_seed;
          Alcotest.test_case "make checks I1" `Quick test_make_checks_i1;
          Alcotest.test_case "make_unchecked" `Quick test_make_unchecked;
        ] );
      ( Info.label ^ " operations",
        [
          Alcotest.test_case "update" `Quick test_update;
          Alcotest.test_case "fork" `Quick test_fork;
          Alcotest.test_case "fork multi-string id" `Quick
            test_fork_multi_string_id;
          Alcotest.test_case "join basic" `Quick test_join_basic;
          Alcotest.test_case "join commutative" `Quick test_join_commutative;
          Alcotest.test_case "join reduces" `Quick test_join_reduces;
          Alcotest.test_case "sync" `Quick test_sync;
          Alcotest.test_case "fork_many" `Quick test_fork_many;
          Alcotest.test_case "explicit reduce" `Quick test_reduce_explicit;
        ] );
      ( Info.label ^ " ordering",
        [
          Alcotest.test_case "relation cases" `Quick test_relation_cases;
          Alcotest.test_case "leq" `Quick test_leq;
          Alcotest.test_case "dominates_all / dominated_by_join" `Quick
            test_dominates_all;
        ] );
      ( Info.label ^ " diagnostics",
        [
          Alcotest.test_case "sizes" `Quick test_sizes;
          Alcotest.test_case "printing" `Quick test_pp;
          Alcotest.test_case "has_updates" `Quick test_has_updates;
        ] );
      ( Info.label ^ " paper figures",
        [ Alcotest.test_case "figure 4 run" `Quick test_figure4 ] );
    ]
end

module Tree_suite =
  Suite (Name_tree) (Stamp.Over_tree)
    (struct
      let label = "tree"
    end)

module List_suite =
  Suite (Name) (Stamp.Over_list)
    (struct
      let label = "list"
    end)

module Packed_suite =
  Suite (Name_packed) (Stamp.Over_packed)
    (struct
      let label = "packed"
    end)

(* --- cross-implementation properties over random traces --- *)

let to_list_stamp (s : Stamp.Over_tree.t) : Stamp.Over_list.t =
  Stamp.Over_list.make_unchecked
    ~update:(Name.of_list (Name_tree.to_list (Stamp.Over_tree.update_name s)))
    ~id:(Name.of_list (Name_tree.to_list (Stamp.Over_tree.id s)))

let cross_props =
  let trace_gen = Vstamp_test_support.Gen.trace () in
  [
    QCheck2.Test.make ~name:"tree and list stamps agree along any trace"
      ~count:300 ~print:Vstamp_test_support.Gen.trace_print trace_gen
      (fun ops ->
        let tree_frontier = Execution.Run_stamps.run ops in
        let list_frontier = Execution.Run_stamps_list.run ops in
        List.for_all2
          (fun t l -> Stamp.Over_list.equal (to_list_stamp t) l)
          tree_frontier list_frontier);
    QCheck2.Test.make
      ~name:"reduction commutes with the relation on every frontier pair"
      ~count:300 ~print:Vstamp_test_support.Gen.trace_print trace_gen
      (fun ops ->
        let reduced = Execution.Run_stamps.run ops in
        let raw = Execution.Run_stamps_nonreducing.run ops in
        List.for_all
          (fun (a, a') ->
            List.for_all
              (fun (b, b') ->
                Relation.equal (Stamp.relation a b) (Stamp.relation a' b'))
              (List.combine reduced raw))
          (List.combine reduced raw));
    QCheck2.Test.make ~name:"every stamp along a trace is well-formed and reduced"
      ~count:300 ~print:Vstamp_test_support.Gen.trace_print trace_gen
      (fun ops ->
        Execution.Run_stamps.run_steps ops
        |> List.for_all
             (List.for_all (fun s -> Stamp.well_formed s && Stamp.is_reduced s)));
  ]

let () =
  Alcotest.run "stamp"
    (Tree_suite.tests @ List_suite.tests @ Packed_suite.tests
    @ [ ("cross/trace properties", List.map QCheck_alcotest.to_alcotest cross_props) ])
