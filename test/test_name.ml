open Vstamp_core

let b = Bits.of_string

(* The same behavioural suite runs against both name implementations;
   anything list-specific or trie-specific follows after the functor. *)
module Suite (N : Name_intf.S) (Info : sig
  val label : string

  val gen : N.t QCheck2.Gen.t
end) =
struct
  let name_t = Alcotest.testable N.pp N.equal

  let n ss = N.of_strings ss

  let check_bool = Alcotest.(check bool)

  let check_int = Alcotest.(check int)

  let test_constants () =
    check_bool "empty is empty" true (N.is_empty N.empty);
    check_bool "bottom not empty" false (N.is_empty N.bottom);
    check_bool "bottom is bottom" true (N.is_bottom N.bottom);
    check_bool "empty not bottom" false (N.is_bottom N.empty);
    check_int "empty cardinal" 0 (N.cardinal N.empty);
    check_int "bottom cardinal" 1 (N.cardinal N.bottom);
    Alcotest.check name_t "bottom = {eps}" N.bottom (n [ "" ])

  let test_of_list_maximal () =
    (* {0, 01} is not a valid antichain: 0 <= 01, keep the maximal 01 *)
    Alcotest.check name_t "drops dominated prefix" (n [ "01" ]) (n [ "0"; "01" ]);
    Alcotest.check name_t "drops duplicates" (n [ "0" ]) (n [ "0"; "0" ]);
    Alcotest.check name_t "keeps incomparables" (n [ "00"; "01" ])
      (n [ "00"; "01" ]);
    Alcotest.check name_t "eps dominated by anything" (n [ "1" ]) (n [ ""; "1" ]);
    Alcotest.check name_t "deep chain" (n [ "0110" ]) (n [ ""; "0"; "01"; "011"; "0110" ])

  let test_mem () =
    check_bool "mem exact" true (N.mem (b "01") (n [ "01"; "1" ]));
    check_bool "mem prefix is not member" false (N.mem (b "0") (n [ "01"; "1" ]));
    check_bool "mem extension is not member" false
      (N.mem (b "011") (n [ "01"; "1" ]));
    check_bool "mem empty" false (N.mem Bits.epsilon N.empty);
    check_bool "mem bottom" true (N.mem Bits.epsilon N.bottom)

  let test_to_list_sorted () =
    Alcotest.(check (list string))
      "shortlex members"
      [ "1"; "00"; "011" ]
      (List.map Bits.to_string (N.to_list (n [ "011"; "1"; "00" ])))

  let test_size_metrics () =
    let x = n [ "00"; "011"; "1" ] in
    check_int "cardinal" 3 (N.cardinal x);
    check_int "total_bits" 6 (N.total_bits x);
    check_int "max_depth" 3 (N.max_depth x);
    check_int "bottom total_bits" 0 (N.total_bits N.bottom);
    check_int "bottom max_depth" 0 (N.max_depth N.bottom)

  (* --- the order: paper examples of Definition 4.1 --- *)

  let test_leq_paper_examples () =
    check_bool "{00,011} <= {000,011,1}" true
      (N.leq (n [ "00"; "011" ]) (n [ "000"; "011"; "1" ]));
    check_bool "{00,10} not <= {000,011,1}" false
      (N.leq (n [ "00"; "10" ]) (n [ "000"; "011"; "1" ]))

  let test_leq_basics () =
    check_bool "empty <= empty" true (N.leq N.empty N.empty);
    check_bool "empty <= bottom" true (N.leq N.empty N.bottom);
    check_bool "bottom not <= empty" false (N.leq N.bottom N.empty);
    check_bool "bottom <= {0,1}" true (N.leq N.bottom (n [ "0"; "1" ]));
    check_bool "bottom <= {0}" true (N.leq N.bottom (n [ "0" ]));
    check_bool "{0,1} not <= bottom" false (N.leq (n [ "0"; "1" ]) N.bottom);
    check_bool "{0} not <= {1}" false (N.leq (n [ "0" ]) (n [ "1" ]))

  let test_join_paper_example () =
    (* {00,011} |_| {000,01,1} = {000,011,1} *)
    Alcotest.check name_t "paper join"
      (n [ "000"; "011"; "1" ])
      (N.join (n [ "00"; "011" ]) (n [ "000"; "01"; "1" ]))

  let test_join_basics () =
    Alcotest.check name_t "join with empty" (n [ "01" ])
      (N.join N.empty (n [ "01" ]));
    Alcotest.check name_t "join bottom with deeper" (n [ "0"; "1" ])
      (N.join N.bottom (n [ "0"; "1" ]));
    Alcotest.check name_t "join disjoint" (n [ "00"; "01"; "1" ])
      (N.join (n [ "00"; "1" ]) (n [ "01" ]));
    Alcotest.check name_t "join idempotent on overlap" (n [ "0"; "1" ])
      (N.join (n [ "0"; "1" ]) (n [ "0" ]))

  let test_meet_basics () =
    Alcotest.check name_t "meet with empty" N.empty (N.meet N.empty (n [ "01" ]));
    Alcotest.check name_t "meet bottom with anything nonempty" N.bottom
      (N.meet N.bottom (n [ "0"; "1" ]));
    Alcotest.check name_t "meet of disjoint branches" N.bottom
      (N.meet (n [ "0" ]) (n [ "1" ]));
    Alcotest.check name_t "meet chain" (n [ "01" ])
      (N.meet (n [ "01" ]) (n [ "010"; "011" ]));
    Alcotest.check name_t "meet mixed"
      (n [ "00"; "01" ])
      (N.meet (n [ "00"; "011" ]) (n [ "000"; "01" ]))

  let test_dominates_string () =
    let x = n [ "00"; "011" ] in
    check_bool "eps dominated" true (N.dominates_string x Bits.epsilon);
    check_bool "0 dominated" true (N.dominates_string x (b "0"));
    check_bool "member dominated" true (N.dominates_string x (b "011"));
    check_bool "extension not dominated" false (N.dominates_string x (b "0111"));
    check_bool "other branch not dominated" false (N.dominates_string x (b "1"));
    check_bool "nothing dominated by empty" false
      (N.dominates_string N.empty Bits.epsilon)

  let test_incomparable_with () =
    check_bool "disjoint branches" true
      (N.incomparable_with (n [ "00" ]) (n [ "01"; "1" ]));
    check_bool "shared member" false
      (N.incomparable_with (n [ "00" ]) (n [ "00" ]));
    check_bool "prefix across" false
      (N.incomparable_with (n [ "0" ]) (n [ "01" ]));
    check_bool "empty incomparable with all" true
      (N.incomparable_with N.empty (n [ "0" ]));
    check_bool "bottom comparable with anything nonempty" false
      (N.incomparable_with N.bottom (n [ "0" ]))

  let test_append_digit () =
    Alcotest.check name_t "append 0"
      (n [ "00"; "10" ])
      (N.append_digit Bits.Zero (n [ "0"; "1" ]));
    Alcotest.check name_t "append 1"
      (n [ "01"; "11" ])
      (N.append_digit Bits.One (n [ "0"; "1" ]));
    Alcotest.check name_t "append on bottom" (n [ "0" ])
      (N.append_digit Bits.Zero N.bottom);
    Alcotest.check name_t "append on empty" N.empty
      (N.append_digit Bits.Zero N.empty)

  (* --- reduction --- *)

  let test_reduce_simple () =
    (* ({eps}, {0,1}) -> ({eps}, {eps}) : siblings collapse, u untouched *)
    let u, id = N.reduce_stamp ~u:N.bottom ~id:(n [ "0"; "1" ]) in
    Alcotest.check name_t "id collapsed" N.bottom id;
    Alcotest.check name_t "u unchanged" N.bottom u

  let test_reduce_updates_u () =
    (* ({0}, {0,1}) -> ({eps}, {eps}) : s0 in u, so u is patched *)
    let u, id = N.reduce_stamp ~u:(n [ "0" ]) ~id:(n [ "0"; "1" ]) in
    Alcotest.check name_t "id collapsed" N.bottom id;
    Alcotest.check name_t "u patched to parent" N.bottom u

  let test_reduce_cascades () =
    (* {00,01,1} -> {0,1} -> {eps} *)
    let u, id = N.reduce_stamp ~u:N.empty ~id:(n [ "00"; "01"; "1" ]) in
    Alcotest.check name_t "cascaded to bottom" N.bottom id;
    Alcotest.check name_t "empty u unchanged" N.empty u

  let test_reduce_cascade_patches_u () =
    (* u = {00, 1}: first collapse 00,01 -> 0 (00 in u), then 0,1 -> eps
       (both now in u) *)
    let u, id = N.reduce_stamp ~u:(n [ "00"; "1" ]) ~id:(n [ "00"; "01"; "1" ]) in
    Alcotest.check name_t "id to bottom" N.bottom id;
    Alcotest.check name_t "u follows" N.bottom u

  let test_reduce_no_siblings () =
    (* {00, 1} has no sibling pair: normal form already *)
    let u, id = N.reduce_stamp ~u:(n [ "1" ]) ~id:(n [ "00"; "1" ]) in
    Alcotest.check name_t "id unchanged" (n [ "00"; "1" ]) id;
    Alcotest.check name_t "u unchanged" (n [ "1" ]) u

  let test_reduce_partial () =
    (* only the 010,011 pair collapses; 000 has no sibling, and the new 01
       has no sibling 00 either *)
    let u, id = N.reduce_stamp ~u:(n [ "011" ]) ~id:(n [ "000"; "010"; "011" ]) in
    Alcotest.check name_t "partially reduced" (n [ "000"; "01" ]) id;
    Alcotest.check name_t "u patched" (n [ "01" ]) u

  let test_reduce_fig4 () =
    (* Figure 4's final join: stamps [1|0+1] come from joining
       [1|00+01+1]-style states; check the exact published collapse
       ({1}, {00,01,1}) -> ({1}, {eps})?  No: 00,01 -> 0 then 0,1 -> eps,
       u = {1} patched at the second step -> ({eps},{eps}). *)
    let u, id = N.reduce_stamp ~u:(n [ "1" ]) ~id:(n [ "00"; "01"; "1" ]) in
    Alcotest.check name_t "id" N.bottom id;
    Alcotest.check name_t "u" N.bottom u

  (* --- well-formedness and printing --- *)

  let test_well_formed () =
    check_bool "empty" true (N.well_formed N.empty);
    check_bool "bottom" true (N.well_formed N.bottom);
    check_bool "constructed" true (N.well_formed (n [ "00"; "011"; "1" ]))

  let test_pp () =
    Alcotest.(check string) "empty" "\xc3\xb8" (N.to_string N.empty);
    Alcotest.(check string) "bottom" "\xce\xb5" (N.to_string N.bottom);
    Alcotest.(check string) "paper style" "00+01+1" (N.to_string (n [ "00"; "01"; "1" ]))

  (* --- properties --- *)

  let gen2 = QCheck2.Gen.pair Info.gen Info.gen

  let gen3 = QCheck2.Gen.triple Info.gen Info.gen Info.gen

  let prop count name gen f = QCheck2.Test.make ~name ~count gen f

  let props =
    [
      prop 300 "leq reflexive" Info.gen (fun x -> N.leq x x);
      prop 300 "leq antisymmetric (partial order, not just pre-order)" gen2
        (fun (x, y) -> (not (N.leq x y && N.leq y x)) || N.equal x y);
      prop 300 "leq transitive" gen3 (fun (x, y, z) ->
          (not (N.leq x y && N.leq y z)) || N.leq x z);
      prop 300 "join is least upper bound" gen3 (fun (x, y, z) ->
          let j = N.join x y in
          N.leq x j && N.leq y j
          && ((not (N.leq x z && N.leq y z)) || N.leq j z));
      prop 300 "join commutative" gen2 (fun (x, y) ->
          N.equal (N.join x y) (N.join y x));
      prop 300 "join associative" gen3 (fun (x, y, z) ->
          N.equal (N.join (N.join x y) z) (N.join x (N.join y z)));
      prop 300 "join idempotent" Info.gen (fun x -> N.equal (N.join x x) x);
      prop 300 "empty is unit of join" Info.gen (fun x ->
          N.equal (N.join x N.empty) x);
      prop 300 "meet is greatest lower bound" gen3 (fun (x, y, z) ->
          let m = N.meet x y in
          N.leq m x && N.leq m y
          && ((not (N.leq z x && N.leq z y)) || N.leq z m));
      prop 300 "meet commutative" gen2 (fun (x, y) ->
          N.equal (N.meet x y) (N.meet y x));
      prop 300 "meet idempotent" Info.gen (fun x -> N.equal (N.meet x x) x);
      prop 300 "absorption" gen2 (fun (x, y) ->
          N.equal (N.join x (N.meet x y)) x && N.equal (N.meet x (N.join x y)) x);
      prop 300 "leq iff join is right arg" gen2 (fun (x, y) ->
          N.leq x y = N.equal (N.join x y) y);
      prop 300 "append_digit well-formed, monotone right, order-reflecting"
        gen2 (fun (x, y) ->
          let x0 = N.append_digit Bits.Zero x
          and y0 = N.append_digit Bits.Zero y in
          N.well_formed x0
          (* fork extends the id, so domination by the id survives *)
          && ((not (N.leq x y)) || N.leq x y0)
          (* and the appended copies never invent an ordering *)
          && ((not (N.leq x0 y0)) || N.leq x y));
      prop 300 "forks of the same name are incomparable (I2 seed)" Info.gen
        (fun x ->
          N.incomparable_with (N.append_digit Bits.Zero x)
            (N.append_digit Bits.One x));
      prop 300 "of_list . to_list = id" Info.gen (fun x ->
          N.equal x (N.of_list (N.to_list x)));
      prop 300 "well_formed on constructed values" gen2 (fun (x, y) ->
          N.well_formed (N.join x y) && N.well_formed (N.meet x y));
      prop 300 "dominates_string agrees with singleton leq" gen2 (fun (x, _) ->
          List.for_all
            (fun s ->
              N.dominates_string x s = N.leq (N.singleton s) x)
            (Bits.all_of_length 3));
      prop 300 "incomparable_with is symmetric and matches definition" gen2
        (fun (x, y) ->
          N.incomparable_with x y = N.incomparable_with y x
          && N.incomparable_with x y
             = List.for_all
                 (fun r ->
                   List.for_all (fun s -> Bits.incomparable r s) (N.to_list y))
                 (N.to_list x));
      prop 300 "reduce_stamp preserves I1 and only shrinks" gen2 (fun (u0, i) ->
          (* force I1 by meeting u with id *)
          let u = N.meet u0 i in
          let u', i' = N.reduce_stamp ~u ~id:i in
          N.well_formed u' && N.well_formed i' && N.leq u' i' && N.leq i' i
          && N.leq u' u);
      prop 300 "reduce_stamp is idempotent" gen2 (fun (u0, i) ->
          let u = N.meet u0 i in
          let u', i' = N.reduce_stamp ~u ~id:i in
          let u'', i'' = N.reduce_stamp ~u:u' ~id:i' in
          N.equal u' u'' && N.equal i' i'');
    ]

  let tests =
    [
      ( Info.label ^ " basics",
        [
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "of_list keeps maximal" `Quick test_of_list_maximal;
          Alcotest.test_case "mem" `Quick test_mem;
          Alcotest.test_case "to_list sorted" `Quick test_to_list_sorted;
          Alcotest.test_case "size metrics" `Quick test_size_metrics;
        ] );
      ( Info.label ^ " order",
        [
          Alcotest.test_case "paper leq examples" `Quick test_leq_paper_examples;
          Alcotest.test_case "leq basics" `Quick test_leq_basics;
          Alcotest.test_case "paper join example" `Quick test_join_paper_example;
          Alcotest.test_case "join basics" `Quick test_join_basics;
          Alcotest.test_case "meet basics" `Quick test_meet_basics;
          Alcotest.test_case "dominates_string" `Quick test_dominates_string;
          Alcotest.test_case "incomparable_with" `Quick test_incomparable_with;
          Alcotest.test_case "append_digit" `Quick test_append_digit;
        ] );
      ( Info.label ^ " reduction",
        [
          Alcotest.test_case "simple collapse" `Quick test_reduce_simple;
          Alcotest.test_case "u patched" `Quick test_reduce_updates_u;
          Alcotest.test_case "cascades" `Quick test_reduce_cascades;
          Alcotest.test_case "cascade patches u" `Quick
            test_reduce_cascade_patches_u;
          Alcotest.test_case "normal form stays" `Quick test_reduce_no_siblings;
          Alcotest.test_case "partial collapse" `Quick test_reduce_partial;
          Alcotest.test_case "figure 4 collapse" `Quick test_reduce_fig4;
        ] );
      ( Info.label ^ " misc",
        [
          Alcotest.test_case "well_formed" `Quick test_well_formed;
          Alcotest.test_case "printing" `Quick test_pp;
        ] );
      (Info.label ^ " properties", List.map QCheck_alcotest.to_alcotest props);
    ]
end

module List_suite =
  Suite
    (Name)
    (struct
      let label = "list"

      let gen = Vstamp_test_support.Gen.name ()
    end)

module Tree_suite =
  Suite
    (Name_tree)
    (struct
      let label = "tree"

      let gen = Vstamp_test_support.Gen.name_tree ()
    end)

(* --- cross-implementation isomorphism --- *)

let to_tree n = Name_tree.of_list (Name.to_list n)

let cross_props =
  let gen2 =
    QCheck2.Gen.pair
      (Vstamp_test_support.Gen.name ())
      (Vstamp_test_support.Gen.name ())
  in
  [
    QCheck2.Test.make ~name:"to_list . of_list isomorphism" ~count:500
      (Vstamp_test_support.Gen.name ())
      (fun x ->
        Name.equal x (Name.of_list (Name_tree.to_list (to_tree x))));
    QCheck2.Test.make ~name:"leq agrees across implementations" ~count:500 gen2
      (fun (x, y) -> Name.leq x y = Name_tree.leq (to_tree x) (to_tree y));
    QCheck2.Test.make ~name:"join agrees across implementations" ~count:500
      gen2 (fun (x, y) ->
        Name.equal (Name.join x y)
          (Name.of_list (Name_tree.to_list (Name_tree.join (to_tree x) (to_tree y)))));
    QCheck2.Test.make ~name:"meet agrees across implementations" ~count:500
      gen2 (fun (x, y) ->
        Name.equal (Name.meet x y)
          (Name.of_list (Name_tree.to_list (Name_tree.meet (to_tree x) (to_tree y)))));
    QCheck2.Test.make ~name:"reduce agrees across implementations" ~count:500
      gen2 (fun (u0, i) ->
        let u = Name.meet u0 i in
        let lu, li = Name.reduce_stamp ~u ~id:i in
        let tu, ti = Name_tree.reduce_stamp ~u:(to_tree u) ~id:(to_tree i) in
        Name.equal lu (Name.of_list (Name_tree.to_list tu))
        && Name.equal li (Name.of_list (Name_tree.to_list ti)));
    QCheck2.Test.make ~name:"size metrics agree" ~count:500
      (Vstamp_test_support.Gen.name ())
      (fun x ->
        let t = to_tree x in
        Name.cardinal x = Name_tree.cardinal t
        && Name.total_bits x = Name_tree.total_bits t
        && Name.max_depth x = Name_tree.max_depth t);
  ]

let () =
  Alcotest.run "name"
    (List_suite.tests @ Tree_suite.tests
    @ [ ("cross-implementation", List.map QCheck_alcotest.to_alcotest cross_props) ])
