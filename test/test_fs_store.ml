open Vstamp_panasync

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_str = Alcotest.(check string)

let temp_dir () =
  let path = Filename.temp_file "vstamp_test" "" in
  Sys.remove path;
  Sys.mkdir path 0o755;
  path

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let or_fail = function
  | Ok v -> v
  | Error e -> Alcotest.failf "fs_store error: %a" Fs_store.pp_error e

let test_save_load_roundtrip () =
  with_dir (fun dir ->
      let store =
        Store.create ~name:"s"
        |> fun s ->
        Store.add_new s ~path:"a.txt" ~content:"alpha"
        |> fun s -> Store.add_new s ~path:"b.txt" ~content:"beta"
      in
      let store = Store.edit store ~path:"a.txt" ~content:"alpha2" in
      or_fail (Fs_store.save ~dir store);
      let loaded = or_fail (Fs_store.load ~dir ~name:"s") in
      check_int "two files" 2 (Store.file_count loaded);
      (match Store.find loaded "a.txt" with
      | Some c ->
          check_str "content" "alpha2" (File_copy.content c);
          check_bool "stamp preserved exactly" true
            (Vstamp_core.Stamp.equal (File_copy.stamp c)
               (File_copy.stamp (Option.get (Store.find store "a.txt"))))
      | None -> Alcotest.fail "a.txt missing"))

let test_load_missing_dir () =
  match Fs_store.load ~dir:"/nonexistent/dir" ~name:"x" with
  | Error (Fs_store.Not_a_directory _) -> ()
  | _ -> Alcotest.fail "expected Not_a_directory"

let test_adopts_untracked_files () =
  with_dir (fun dir ->
      let oc = open_out (Filename.concat dir "stray.txt") in
      output_string oc "dropped in by hand";
      close_out oc;
      let loaded = or_fail (Fs_store.load ~dir ~name:"s") in
      check_int "adopted" 1 (Store.file_count loaded);
      match Store.find loaded "stray.txt" with
      | Some c ->
          check_bool "fresh lineage" true
            (Vstamp_core.Stamp.has_updates (File_copy.stamp c))
      | None -> Alcotest.fail "stray.txt missing")

let test_corrupt_stamp_reported () =
  with_dir (fun dir ->
      let store =
        Store.add_new (Store.create ~name:"s") ~path:"f" ~content:"x"
      in
      or_fail (Fs_store.save ~dir store);
      let sf = Filename.concat (Filename.concat dir ".vstamp") "f.stamp" in
      let oc = open_out sf in
      output_string oc "zz-not-hex";
      close_out oc;
      match Fs_store.load ~dir ~name:"s" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "corrupt stamp must be reported")

let test_save_removes_deleted () =
  with_dir (fun dir ->
      let store =
        Store.create ~name:"s"
        |> fun s ->
        Store.add_new s ~path:"keep" ~content:"1"
        |> fun s -> Store.add_new s ~path:"drop" ~content:"2"
      in
      or_fail (Fs_store.save ~dir store);
      let store = Store.remove store ~path:"drop" in
      or_fail (Fs_store.save ~dir store);
      let loaded = or_fail (Fs_store.load ~dir ~name:"s") in
      check_int "one file" 1 (Store.file_count loaded);
      check_bool "data gone" false (Sys.file_exists (Filename.concat dir "drop")))

let test_directory_sync_end_to_end () =
  with_dir (fun dir_a ->
      with_dir (fun dir_b ->
          let a =
            Store.add_new (Store.create ~name:"a") ~path:"doc" ~content:"v1"
          in
          or_fail (Fs_store.save ~dir:dir_a a);
          or_fail (Fs_store.save ~dir:dir_b (Store.create ~name:"b"));
          (* session one: replicate through disk *)
          let a = or_fail (Fs_store.load ~dir:dir_a ~name:"a") in
          let b = or_fail (Fs_store.load ~dir:dir_b ~name:"b") in
          let a, b, _ = Sync.session a b in
          or_fail (Fs_store.save ~dir:dir_a a);
          or_fail (Fs_store.save ~dir:dir_b b);
          (* concurrent edits via fresh loads *)
          let a = or_fail (Fs_store.load ~dir:dir_a ~name:"a") in
          let b = or_fail (Fs_store.load ~dir:dir_b ~name:"b") in
          let a = Store.edit a ~path:"doc" ~content:"A" in
          let b = Store.edit b ~path:"doc" ~content:"B" in
          or_fail (Fs_store.save ~dir:dir_a a);
          or_fail (Fs_store.save ~dir:dir_b b);
          (* the conflict survives the round trip through disk *)
          let a = or_fail (Fs_store.load ~dir:dir_a ~name:"a") in
          let b = or_fail (Fs_store.load ~dir:dir_b ~name:"b") in
          let _, _, reports = Sync.session a b in
          check_int "conflict detected across processes" 1
            (List.length (Sync.conflicts reports))))

let test_subdirectories_ignored () =
  with_dir (fun dir ->
      Sys.mkdir (Filename.concat dir "subdir") 0o755;
      let loaded = or_fail (Fs_store.load ~dir ~name:"s") in
      check_int "empty" 0 (Store.file_count loaded))

(* property: random stores round trip, including exotic contents *)
let prop_roundtrip =
  let gen_store =
    let open QCheck2.Gen in
    let fname = map (Printf.sprintf "file%d") (int_bound 4) in
    let content =
      oneof
        [
          string_size ~gen:printable (int_bound 40);
          map Bytes.unsafe_to_string (bytes_size (int_bound 40));
          return "";
          return "line1\nline2\n";
        ]
    in
    list_size (int_bound 6) (pair fname content)
  in
  QCheck2.Test.make ~name:"random stores survive save/load" ~count:100
    ~print:(fun files ->
      String.concat ";" (List.map (fun (f, c) -> f ^ "=" ^ String.escaped c) files))
    gen_store
    (fun files ->
      let dir = temp_dir () in
      Fun.protect
        ~finally:(fun () -> rm_rf dir)
        (fun () ->
          let store =
            List.fold_left
              (fun s (path, content) ->
                if Store.mem s path then Store.edit s ~path ~content
                else Store.add_new s ~path ~content)
              (Store.create ~name:"p") files
          in
          match Fs_store.save ~dir store with
          | Error _ -> false
          | Ok () -> (
              match Fs_store.load ~dir ~name:"p" with
              | Error _ -> false
              | Ok loaded ->
                  Store.file_count loaded = Store.file_count store
                  && List.for_all
                       (fun path ->
                         match (Store.find store path, Store.find loaded path) with
                         | Some a, Some b ->
                             String.equal (File_copy.content a) (File_copy.content b)
                             && Vstamp_core.Stamp.equal (File_copy.stamp a)
                                  (File_copy.stamp b)
                             && String.equal (File_copy.lineage a)
                                  (File_copy.lineage b)
                         | _ -> false)
                       (Store.paths store))))

let () =
  Alcotest.run "fs_store"
    [
      ( "persistence",
        [
          Alcotest.test_case "save/load round trip" `Quick
            test_save_load_roundtrip;
          Alcotest.test_case "missing dir" `Quick test_load_missing_dir;
          Alcotest.test_case "adopts untracked" `Quick
            test_adopts_untracked_files;
          Alcotest.test_case "corrupt stamp" `Quick test_corrupt_stamp_reported;
          Alcotest.test_case "save removes deleted" `Quick
            test_save_removes_deleted;
          Alcotest.test_case "subdirectories ignored" `Quick
            test_subdirectories_ignored;
        ] );
      ( "end to end",
        [
          Alcotest.test_case "conflict across processes" `Quick
            test_directory_sync_end_to_end;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_roundtrip ]);
    ]
