(* Trace contexts and spans: header and JSONL round trips (including a
   qcheck sweep over generated spans), the ambient tracer's nesting and
   parent links, remote continuation, and the detached no-op path. *)

open Vstamp_obs
module Tr = Trace_ctx

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_string = Alcotest.(check string)

(* every test runs with a clean tracer and deterministic ids *)
let fresh ?registry ?sink ?node ?parent () =
  Tr.detach ();
  Tr.set_id_seed 0xfeed;
  Tr.attach ?registry ?sink ?node ?parent ()

(* --- headers --- *)

let test_header_round_trip () =
  Tr.set_id_seed 42;
  let c = Tr.genesis ~node:"node-3" () in
  let h = Tr.to_header c in
  check_bool "prefix" true (String.length h > 14 && String.sub h 0 14 = "vstamp-trace/1");
  (match Tr.of_header h with
  | Ok c' ->
      check_string "trace" c.Tr.trace_id c'.Tr.trace_id;
      check_string "span" c.Tr.span_id c'.Tr.span_id;
      check_string "node" c.Tr.node c'.Tr.node
  | Error m -> Alcotest.failf "of_header: %s" m);
  (match Tr.of_header "not-a-header" with
  | Ok _ -> Alcotest.fail "junk header parsed"
  | Error _ -> ());
  match Tr.of_header "vstamp-trace/9;a;b;c" with
  | Ok _ -> Alcotest.fail "wrong version parsed"
  | Error _ -> ()

let test_child_keeps_trace () =
  Tr.set_id_seed 7;
  let c = Tr.genesis ~node:"n" () in
  let k = Tr.child c in
  check_string "same trace" c.Tr.trace_id k.Tr.trace_id;
  check_bool "fresh span id" true (c.Tr.span_id <> k.Tr.span_id)

(* --- span (de)serialization --- *)

let span ?(parent = None) ?(domain = None) ?(stamp = None) ?(attrs = [])
    name =
  {
    Tr.sp_trace = "74726163652d6964";
    sp_id = "7370616e2d6964";
    sp_parent = parent;
    sp_node = "node-1";
    sp_name = name;
    sp_start_ns = 1_000_000L;
    sp_end_ns = 2_500_000L;
    sp_domain = domain;
    sp_stamp = stamp;
    sp_attrs = attrs;
  }

let test_span_json_round_trip () =
  let sp =
    span "sync.session" ~parent:(Some "abc123") ~domain:(Some "cluster")
      ~stamp:(Some "[1|0]")
      ~attrs:[ ("files", Jsonx.Int 3); ("peer", Jsonx.String "node-2") ]
  in
  match Tr.span_of_string (Tr.span_to_string sp) with
  | Ok sp' -> check_bool "round trip" true (Tr.span_equal sp sp')
  | Error m -> Alcotest.failf "span_of_string: %s" m

let test_spans_jsonl_round_trip () =
  let sps =
    [
      span "a";
      span "b" ~stamp:(Some "[e|1]") ~domain:(Some "d");
      span "c" ~parent:(Some "p") ~attrs:[ ("k", Jsonx.Float 1.5) ];
    ]
  in
  match Tr.spans_of_jsonl (Tr.spans_to_jsonl sps) with
  | Ok sps' ->
      check_int "count" (List.length sps) (List.length sps');
      List.iter2
        (fun a b -> check_bool "equal" true (Tr.span_equal a b))
        sps sps'
  | Error m -> Alcotest.failf "spans_of_jsonl: %s" m

let test_jsonl_skips_blank_lines () =
  let text = "\n" ^ Tr.span_to_string (span "x") ^ "\n\n" in
  match Tr.spans_of_jsonl text with
  | Ok [ sp ] -> check_string "name" "x" sp.Tr.sp_name
  | Ok sps -> Alcotest.failf "expected 1 span, got %d" (List.length sps)
  | Error m -> Alcotest.failf "spans_of_jsonl: %s" m

(* qcheck: random spans survive the JSONL round trip *)
let gen_ident =
  QCheck2.Gen.(
    map
      (fun cs -> String.concat "" (List.map (String.make 1) cs))
      (list_size (int_range 1 12) (char_range 'a' 'z')))

let gen_span =
  QCheck2.Gen.(
    let* name = gen_ident in
    let* node = gen_ident in
    let* parent = option gen_ident in
    let* domain = option gen_ident in
    let* stamp = option gen_ident in
    let* start_ns = int_range 0 1_000_000 in
    let* len_ns = int_range 0 1_000_000 in
    let* attr_n = int_range 0 3 in
    let* attr_keys = list_repeat attr_n gen_ident in
    let* attr_vals = list_repeat attr_n (int_range (-100) 100) in
    return
      {
        Tr.sp_trace = "deadbeef";
        sp_id = name ^ "id";
        sp_parent = parent;
        sp_node = node;
        sp_name = name;
        sp_start_ns = Int64.of_int start_ns;
        sp_end_ns = Int64.of_int (start_ns + len_ns);
        sp_domain = domain;
        sp_stamp = stamp;
        sp_attrs =
          List.map2 (fun k v -> (k, Jsonx.Int v)) attr_keys attr_vals;
      })

let qcheck_span_round_trip =
  QCheck2.Test.make ~name:"span JSONL round trip" ~count:300
    QCheck2.Gen.(list_size (int_bound 8) gen_span)
    (fun sps ->
      match Tr.spans_of_jsonl (Tr.spans_to_jsonl sps) with
      | Ok sps' ->
          List.length sps = List.length sps'
          && List.for_all2 Tr.span_equal sps sps'
      | Error _ -> false)

(* --- the ambient tracer --- *)

let test_detached_is_noop () =
  Tr.detach ();
  check_bool "not attached" false (Tr.attached ());
  check_bool "no current ctx" true (Tr.current () = None);
  (* with_span must just call the body *)
  check_int "body result" 41 (Tr.with_span "x" (fun () -> 41));
  check_int "remote body result" 43
    (Tr.with_remote_span ~header:"vstamp-trace/1;t;s;n" "y" (fun () -> 43));
  Tr.annotate [ ("k", Jsonx.Int 1) ];
  Tr.set_stamp "[1|0]"

let test_with_span_records_and_links () =
  let spans = ref [] in
  fresh ~sink:(fun sp -> spans := sp :: !spans) ~node:"n0" ();
  let root = Option.get (Tr.root ()) in
  Tr.with_span "outer"
    ~attrs:[ ("i", Jsonx.Int 1) ]
    (fun () ->
      let outer_ctx = Option.get (Tr.current ()) in
      check_string "outer trace" root.Tr.trace_id outer_ctx.Tr.trace_id;
      Tr.with_span "inner" (fun () ->
          Tr.annotate [ ("late", Jsonx.Bool true) ];
          Tr.set_stamp ~domain:"d" "[1|0]"));
  Tr.detach ();
  match List.rev !spans with
  | [ inner; outer ] ->
      (* inner finishes first *)
      check_string "inner name" "inner" inner.Tr.sp_name;
      check_string "outer name" "outer" outer.Tr.sp_name;
      check_string "same trace" outer.Tr.sp_trace inner.Tr.sp_trace;
      check_string "inner parent is outer" outer.Tr.sp_id
        (Option.get inner.Tr.sp_parent);
      check_string "outer parent is root" root.Tr.span_id
        (Option.get outer.Tr.sp_parent);
      check_string "node" "n0" outer.Tr.sp_node;
      check_bool "annotate landed" true
        (List.mem_assoc "late" inner.Tr.sp_attrs);
      check_string "stamp landed" "[1|0]" (Option.get inner.Tr.sp_stamp);
      check_string "domain landed" "d" (Option.get inner.Tr.sp_domain);
      check_bool "interval sane" true
        (Int64.compare inner.Tr.sp_start_ns inner.Tr.sp_end_ns <= 0)
  | sps -> Alcotest.failf "expected 2 spans, got %d" (List.length sps)

let test_span_recorded_on_exception () =
  let spans = ref [] in
  fresh ~sink:(fun sp -> spans := sp :: !spans) ();
  (try Tr.with_span "boom" (fun () -> failwith "expected") with
  | Failure _ -> ());
  Tr.detach ();
  match !spans with
  | [ sp ] ->
      check_string "name" "boom" sp.Tr.sp_name;
      check_bool "error attr" true
        (match List.assoc_opt "error" sp.Tr.sp_attrs with
        | Some (Jsonx.Bool true) -> true
        | _ -> false)
  | sps -> Alcotest.failf "expected 1 span, got %d" (List.length sps)

let test_remote_span_continues_trace () =
  Tr.set_id_seed 11;
  let remote = Tr.genesis ~node:"sender" () in
  let header = Tr.to_header remote in
  let spans = ref [] in
  fresh ~sink:(fun sp -> spans := sp :: !spans) ~node:"receiver" ();
  Tr.with_remote_span ~header "apply" (fun () -> ());
  Tr.detach ();
  match !spans with
  | [ sp ] ->
      check_string "continues remote trace" remote.Tr.trace_id sp.Tr.sp_trace;
      check_string "child of remote span" remote.Tr.span_id
        (Option.get sp.Tr.sp_parent);
      check_string "recorded on this node" "receiver" sp.Tr.sp_node;
      check_bool "peer attr" true
        (match List.assoc_opt "peer" sp.Tr.sp_attrs with
        | Some (Jsonx.String "sender") -> true
        | _ -> false)
  | sps -> Alcotest.failf "expected 1 span, got %d" (List.length sps)

let test_attach_parent_continues_trace () =
  Tr.set_id_seed 13;
  let launch = Tr.genesis ~node:"parent" () in
  let spans = ref [] in
  Tr.detach ();
  Tr.attach ~sink:(fun sp -> spans := sp :: !spans) ~node:"worker"
    ~parent:launch ();
  Tr.with_span "iter" (fun () -> ());
  Tr.detach ();
  match !spans with
  | [ sp ] ->
      check_string "same trace as launch" launch.Tr.trace_id sp.Tr.sp_trace;
      check_string "child of launch" launch.Tr.span_id
        (Option.get sp.Tr.sp_parent)
  | sps -> Alcotest.failf "expected 1 span, got %d" (List.length sps)

let test_registry_counts_spans () =
  let registry = Registry.create () in
  fresh ~registry ();
  Tr.with_span "a" (fun () -> Tr.with_span "b" (fun () -> ()));
  Tr.detach ();
  check_int "trace_spans_total" 2
    (Metric.count (Registry.counter registry "trace_spans_total"))

let () =
  Alcotest.run "trace_ctx"
    [
      ( "headers",
        [
          Alcotest.test_case "round trip + rejects junk" `Quick
            test_header_round_trip;
          Alcotest.test_case "child keeps the trace" `Quick
            test_child_keeps_trace;
        ] );
      ( "serialization",
        [
          Alcotest.test_case "span JSON round trip" `Quick
            test_span_json_round_trip;
          Alcotest.test_case "spans JSONL round trip" `Quick
            test_spans_jsonl_round_trip;
          Alcotest.test_case "blank lines skipped" `Quick
            test_jsonl_skips_blank_lines;
          QCheck_alcotest.to_alcotest qcheck_span_round_trip;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "detached is a no-op" `Quick
            test_detached_is_noop;
          Alcotest.test_case "with_span records, nests, links" `Quick
            test_with_span_records_and_links;
          Alcotest.test_case "exception still records" `Quick
            test_span_recorded_on_exception;
          Alcotest.test_case "remote span continues the trace" `Quick
            test_remote_span_continues_trace;
          Alcotest.test_case "attach ~parent continues the trace" `Quick
            test_attach_parent_continues_trace;
          Alcotest.test_case "registry counter" `Quick
            test_registry_counts_spans;
        ] );
    ]
