(* Model-based testing of the file-sync layer.

   The model is a perfect-knowledge interpreter: every write carries a
   globally unique event, every copy carries its exact event history, so
   stale-vs-conflict verdicts are computed from set inclusion (the
   Section 2 oracle transplanted to files).  A random program of
   creates, edits and sync sessions runs against both the model and the
   real Store/Sync implementation; contents and conflict verdicts must
   agree at every step. *)

open Vstamp_panasync
module Iset = Set.Make (Int)
module Smap = Map.Make (String)

(* ---- the model ---- *)

type mcopy = { content : string; events : Iset.t; lineage : string }

type mstore = mcopy Smap.t

type model = { stores : mstore array; next_event : int }

let fresh m = (m.next_event, { m with next_event = m.next_event + 1 })

let m_create m ~store ~path ~content =
  let e, m = fresh m in
  let stores = Array.copy m.stores in
  stores.(store) <-
    Smap.add path
      {
        content;
        events = Iset.singleton e;
        lineage = File_copy.lineage_of ~path ~content;
      }
      stores.(store);
  { m with stores }

let m_edit m ~store ~path ~content =
  match Smap.find_opt path m.stores.(store) with
  | None -> m
  | Some c when String.equal c.content content -> m
  | Some c ->
      let e, m = fresh m in
      let stores = Array.copy m.stores in
      stores.(store) <-
        Smap.add path
          { c with content; events = Iset.add e c.events }
          stores.(store);
      { m with stores }

(* session under Prefer_left; returns the model plus per-path verdicts *)
let m_session m ~left ~right =
  let a = m.stores.(left) and b = m.stores.(right) in
  let paths =
    List.sort_uniq compare
      (List.map fst (Smap.bindings a) @ List.map fst (Smap.bindings b))
  in
  let m, a, b, verdicts =
    List.fold_left
      (fun (m, a, b, verdicts) path ->
        match (Smap.find_opt path a, Smap.find_opt path b) with
        | None, None -> (m, a, b, verdicts)
        | Some c, None ->
            (m, a, Smap.add path c b, verdicts @ [ (path, `Created) ])
        | None, Some c ->
            (m, Smap.add path c a, b, verdicts @ [ (path, `Created) ])
        | Some ca, Some cb ->
            let resolve_into m lineage =
              let e, m = fresh m in
              let c =
                {
                  content = ca.content (* Prefer_left *);
                  events = Iset.add e (Iset.union ca.events cb.events);
                  lineage;
                }
              in
              (m, Smap.add path c a, Smap.add path c b,
               verdicts @ [ (path, `Conflict_resolved) ])
            in
            if not (String.equal ca.lineage cb.lineage) then
              if String.equal ca.content cb.content then
                (m, a, b, verdicts @ [ (path, `Unchanged) ])
              else
                (* cross-lineage conflict: fresh lineage, like the impl *)
                let lo = min ca.lineage cb.lineage
                and hi = max ca.lineage cb.lineage in
                resolve_into m (Digest.string (lo ^ hi ^ ca.content))
            else if Iset.equal ca.events cb.events then
              if String.equal ca.content cb.content then
                (m, a, b, verdicts @ [ (path, `Unchanged) ])
              else resolve_into m ca.lineage
            else if Iset.subset ca.events cb.events then
              (m, Smap.add path cb a, b, verdicts @ [ (path, `Propagated) ])
            else if Iset.subset cb.events ca.events then
              (m, a, Smap.add path ca b, verdicts @ [ (path, `Propagated) ])
            else if String.equal ca.content cb.content then
              (* concurrent histories, identical contents: observationally
                 nothing to do *)
              (m, a, b, verdicts @ [ (path, `Unchanged) ])
            else resolve_into m ca.lineage)
      (m, a, b, []) paths
  in
  let stores = Array.copy m.stores in
  stores.(left) <- a;
  stores.(right) <- b;
  ({ m with stores }, verdicts)

(* ---- program generation and execution ---- *)

type cmd =
  | Create of int * string * string
  | Edit of int * string * string
  | Session of int * int

let paths_pool = [ "a"; "b"; "c" ]

let gen_cmd n_stores =
  let open QCheck2.Gen in
  let store = int_bound (n_stores - 1) in
  let path = oneofl paths_pool in
  let content = map (Printf.sprintf "v%d") (int_bound 1000) in
  oneof
    [
      map3 (fun s p c -> Create (s, p, c)) store path content;
      map3 (fun s p c -> Edit (s, p, c)) store path content;
      map2
        (fun s d ->
          let d = if d >= s then d + 1 else d in
          Session (s, d))
        store
        (int_bound (n_stores - 2));
    ]

let print_cmd = function
  | Create (s, p, c) -> Printf.sprintf "create(%d,%s,%s)" s p c
  | Edit (s, p, c) -> Printf.sprintf "edit(%d,%s,%s)" s p c
  | Session (a, b) -> Printf.sprintf "session(%d,%d)" a b

let n_stores = 3

let outcome_matches verdict (report : Sync.report) =
  match (verdict, report.Sync.outcome) with
  | `Created, Sync.Created -> true
  | `Unchanged, Sync.Unchanged -> true
  | ( `Propagated,
      (Sync.Propagated_left_to_right | Sync.Propagated_right_to_left) ) ->
      true
  | `Conflict_resolved, Sync.Resolved -> true
  | _ -> false

let run_program cmds =
  let model =
    ref { stores = Array.make n_stores Smap.empty; next_event = 0 }
  in
  let stores =
    ref
      (Array.init n_stores (fun i ->
           Store.create ~name:(Printf.sprintf "s%d" i)))
  in
  let ok = ref true in
  let fail _why = ok := false in
  List.iter
    (fun cmd ->
      if !ok then
        match cmd with
        | Create (s, p, content) ->
            if not (Store.mem !stores.(s) p) then begin
              model := m_create !model ~store:s ~path:p ~content;
              let arr = Array.copy !stores in
              arr.(s) <- Store.add_new arr.(s) ~path:p ~content;
              stores := arr
            end
        | Edit (s, p, content) ->
            if Store.mem !stores.(s) p then begin
              model := m_edit !model ~store:s ~path:p ~content;
              let arr = Array.copy !stores in
              arr.(s) <- Store.edit arr.(s) ~path:p ~content;
              stores := arr
            end
        | Session (a, b) ->
            let model', verdicts = m_session !model ~left:a ~right:b in
            model := model';
            let sa, sb, reports =
              Sync.session ~policy:Sync.Prefer_left !stores.(a) !stores.(b)
            in
            let arr = Array.copy !stores in
            arr.(a) <- sa;
            arr.(b) <- sb;
            stores := arr;
            if
              not
                (List.length verdicts = List.length reports
                && List.for_all2
                     (fun (vp, v) r ->
                       String.equal vp r.Sync.path && outcome_matches v r)
                     verdicts reports)
            then fail "verdict mismatch")
    cmds;
  (* final check: contents agree store by store, path by path *)
  if !ok then
    Array.iteri
      (fun i mstore ->
        Smap.iter
          (fun path mcopy ->
            match Store.find !stores.(i) path with
            | Some c ->
                if not (String.equal (File_copy.content c) mcopy.content) then
                  fail "content mismatch"
            | None -> fail "path missing")
          mstore)
      !model.stores;
  !ok

let prop_model_agreement =
  QCheck2.Test.make ~name:"Store/Sync agrees with the perfect-knowledge model"
    ~count:300
    ~print:(fun cmds -> String.concat ";" (List.map print_cmd cmds))
    QCheck2.Gen.(list_size (int_bound 25) (gen_cmd n_stores))
    run_program

(* a couple of directed programs that once caught real behaviour *)
let test_directed_independent_creation () =
  Alcotest.(check bool)
    "create/create/session" true
    (run_program [ Create (0, "a", "x"); Create (1, "a", "y"); Session (0, 1) ])

let test_directed_three_store_chain () =
  Alcotest.(check bool)
    "chain" true
    (run_program
       [
         Create (0, "a", "v1");
         Session (0, 1);
         Session (1, 2);
         Edit (2, "a", "v2");
         Edit (0, "a", "v3");
         Session (2, 1);
         Session (1, 0);
       ])

let test_directed_noop_session () =
  Alcotest.(check bool)
    "empty stores session" true
    (run_program [ Session (0, 1) ])

let () =
  Alcotest.run "panasync_model"
    [
      ( "directed",
        [
          Alcotest.test_case "independent creation" `Quick
            test_directed_independent_creation;
          Alcotest.test_case "three-store chain" `Quick
            test_directed_three_store_chain;
          Alcotest.test_case "no-op session" `Quick test_directed_noop_session;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_model_agreement ] );
    ]
