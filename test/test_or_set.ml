open Vstamp_kvs

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let els s = Or_set.elements s

(* --- local semantics --- *)

let test_empty () =
  let s = Or_set.create ~id:0 in
  check_bool "empty" true (Or_set.is_empty s);
  check_int "cardinal" 0 (Or_set.cardinal s);
  check_bool "well-formed" true (Or_set.well_formed s)

let test_add_remove () =
  let s = Or_set.add (Or_set.create ~id:0) "x" in
  check_bool "mem" true (Or_set.mem s "x");
  let s = Or_set.add s "y" in
  Alcotest.(check (list string)) "elements" [ "x"; "y" ] (els s);
  let s = Or_set.remove s "x" in
  Alcotest.(check (list string)) "removed" [ "y" ] (els s);
  check_bool "remove absent is noop" true
    (els (Or_set.remove s "zz") = els s)

let test_re_add () =
  let s = Or_set.add (Or_set.create ~id:0) "x" in
  let s = Or_set.remove s "x" in
  let s = Or_set.add s "x" in
  check_bool "re-added" true (Or_set.mem s "x")

let test_clear () =
  let s = Or_set.add (Or_set.add (Or_set.create ~id:0) "x") "y" in
  check_bool "cleared" true (Or_set.is_empty (Or_set.clear s))

(* --- replication semantics --- *)

let test_merge_union () =
  let a = Or_set.add (Or_set.create ~id:0) "from-a" in
  let b = Or_set.add (Or_set.create ~id:1) "from-b" in
  let m = Or_set.merge a b in
  Alcotest.(check (list string)) "union" [ "from-a"; "from-b" ] (els m);
  check_bool "well-formed" true (Or_set.well_formed m)

let test_remove_propagates () =
  let a = Or_set.add (Or_set.create ~id:0) "x" in
  let b = Or_set.merge (Or_set.create ~id:1) a in
  (* b observed x and removes it; merging back must not resurrect *)
  let b = Or_set.remove b "x" in
  let m = Or_set.merge a b in
  check_bool "removal wins over stale copy" false (Or_set.mem m "x")

let test_add_wins () =
  let a = Or_set.add (Or_set.create ~id:0) "x" in
  let b = Or_set.merge (Or_set.create ~id:1) a in
  (* concurrently: b removes x, a re-adds it (fresh dot) *)
  let b = Or_set.remove b "x" in
  let a = Or_set.add a "x" in
  let m = Or_set.merge a b in
  check_bool "concurrent add wins" true (Or_set.mem m "x")

let test_merge_idempotent_commutative () =
  let a = Or_set.add (Or_set.create ~id:0) "x" in
  let b = Or_set.remove (Or_set.merge (Or_set.create ~id:1) a) "x" in
  let ab = Or_set.merge a b and ba = Or_set.merge b a in
  Alcotest.(check (list string)) "commutes" (els ab) (els ba);
  Alcotest.(check (list string)) "idempotent" (els ab) (els (Or_set.merge ab ab))

(* --- deltas --- *)

let test_add_delta_equals_add () =
  let s = Or_set.add (Or_set.create ~id:0) "x" in
  let d = Or_set.add_delta s "y" in
  let via_delta = Or_set.apply_delta s d in
  let direct = Or_set.add s "y" in
  Alcotest.(check (list string)) "same elements" (els direct) (els via_delta)

let test_remove_delta_kills_remotely () =
  let a = Or_set.add (Or_set.create ~id:0) "x" in
  let b = Or_set.merge (Or_set.create ~id:1) a in
  let d = Or_set.remove_delta b "x" in
  (* apply the removal delta at a without shipping b's whole state *)
  let a = Or_set.apply_delta a d in
  check_bool "killed at a" false (Or_set.mem a "x")

let test_delta_idempotent_redelivery () =
  let s = Or_set.create ~id:0 in
  let d = Or_set.add_delta s "x" in
  let s1 = Or_set.apply_delta s d in
  let s2 = Or_set.apply_delta s1 d in
  Alcotest.(check (list string)) "re-delivery harmless" (els s1) (els s2)

let test_delta_batching () =
  (* deltas compose by merge before shipping *)
  let s = Or_set.create ~id:0 in
  let d1 = Or_set.add_delta s "x" in
  let s' = Or_set.apply_delta s d1 in
  let d2 = Or_set.add_delta s' "y" in
  let batch = Or_set.merge d1 d2 in
  let remote = Or_set.apply_delta (Or_set.create ~id:1) batch in
  Alcotest.(check (list string)) "batched" [ "x"; "y" ] (els remote)

let prop_delta_stream_equals_state_sync =
  (* shipping every mutation of replica 0 to replica 1 as deltas gives
     replica 1 the same elements as a full state merge would *)
  QCheck2.Test.make ~name:"delta stream equals full-state sync" ~count:300
    ~print:(fun ops ->
      String.concat ";"
        (List.map (function true, v -> "add" ^ string_of_int v | false, v -> "rem" ^ string_of_int v) ops))
    QCheck2.Gen.(list_size (int_bound 20) (pair bool (int_bound 3)))
    (fun ops ->
      let a = ref (Or_set.create ~id:0) in
      let b = ref (Or_set.create ~id:1) in
      List.iter
        (fun (is_add, v) ->
          let delta =
            if is_add then Or_set.add_delta !a v else Or_set.remove_delta !a v
          in
          a := Or_set.apply_delta !a delta;
          b := Or_set.apply_delta !b delta)
        ops;
      Or_set.elements !b = Or_set.elements !a
      && Or_set.well_formed !b)

(* --- property: agrees with an event-set model --- *)

type cmd = Add of int | Rem of int | Merge of int * int

let gen_cmd n =
  QCheck2.Gen.(
    oneof
      [
        map (fun r -> Add r) (int_bound (n - 1));
        map (fun r -> Rem r) (int_bound (n - 1));
        map2
          (fun i j ->
            let j = if j >= i then j + 1 else j in
            Merge (i, j))
          (int_bound (n - 1))
          (int_bound (n - 2));
      ])

let print_cmd = function
  | Add r -> Printf.sprintf "add@%d" r
  | Rem r -> Printf.sprintf "rem@%d" r
  | Merge (i, j) -> Printf.sprintf "merge(%d,%d)" i j

(* shared runner: one element, three replicas, implementation vs model *)
let runs_like_model cmds =
  let module Iset = Set.Make (Int) in
  let n = 3 in
  let sets = Array.init n (fun i -> Or_set.create ~id:i) in
  let live = Array.make n Iset.empty in
  let seen = Array.make n Iset.empty in
  let fresh = ref 0 in
  List.iter
    (fun cmd ->
      match cmd with
      | Add r ->
          sets.(r) <- Or_set.add sets.(r) "e";
          let i = !fresh in
          incr fresh;
          live.(r) <- Iset.add i live.(r);
          seen.(r) <- Iset.add i seen.(r)
      | Rem r ->
          sets.(r) <- Or_set.remove sets.(r) "e";
          live.(r) <- Iset.empty
      | Merge (i, j) ->
          sets.(i) <- Or_set.merge sets.(i) sets.(j);
          let keep mine other_live other_seen =
            Iset.filter
              (fun d -> Iset.mem d other_live || not (Iset.mem d other_seen))
              mine
          in
          let merged =
            Iset.union
              (keep live.(i) live.(j) seen.(j))
              (keep live.(j) live.(i) seen.(i))
          in
          live.(i) <- merged;
          seen.(i) <- Iset.union seen.(i) seen.(j))
    cmds;
  Array.to_list sets
  |> List.mapi (fun i s ->
         Or_set.well_formed s
         && Or_set.mem s "e" = not (Iset.is_empty live.(i)))
  |> List.for_all Fun.id

let test_exhaustive_small_programs () =
  (* all programs of length <= 4 over two replicas: add/rem at each,
     merge both ways -> 1 + 6 + 36 + 216 + 1296 = 1 555 programs *)
  let steps = [ Add 0; Add 1; Rem 0; Rem 1; Merge (0, 1); Merge (1, 0) ] in
  let rec programs k =
    if k = 0 then [ [] ]
    else
      let shorter = programs (k - 1) in
      shorter
      @ List.concat_map
          (fun p -> List.map (fun s -> s :: p) steps)
          (List.filter (fun p -> List.length p = k - 1) shorter)
  in
  let all = programs 4 in
  List.iter
    (fun cmds ->
      if not (runs_like_model cmds) then
        Alcotest.failf "model disagreement on %s"
          (String.concat ";" (List.map print_cmd cmds)))
    all;
  Alcotest.(check bool)
    (Printf.sprintf "all %d programs agree" (List.length all))
    true
    (List.length all > 1500)

(* model: per replica, the set of live instance ids for the single
   element, plus the set of instance ids ever observed *)
let prop_matches_model =
  QCheck2.Test.make ~name:"OR-set agrees with the instance-set model"
    ~count:400
    ~print:(fun cmds -> String.concat ";" (List.map print_cmd cmds))
    QCheck2.Gen.(list_size (int_bound 25) (gen_cmd 3))
    runs_like_model

let () =
  Alcotest.run "or_set"
    [
      ( "local",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "add/remove" `Quick test_add_remove;
          Alcotest.test_case "re-add" `Quick test_re_add;
          Alcotest.test_case "clear" `Quick test_clear;
        ] );
      ( "replication",
        [
          Alcotest.test_case "merge union" `Quick test_merge_union;
          Alcotest.test_case "remove propagates" `Quick test_remove_propagates;
          Alcotest.test_case "add wins" `Quick test_add_wins;
          Alcotest.test_case "merge laws" `Quick
            test_merge_idempotent_commutative;
          Alcotest.test_case "exhaustive small programs" `Slow
            test_exhaustive_small_programs;
        ] );
      ( "deltas",
        [
          Alcotest.test_case "add delta = add" `Quick test_add_delta_equals_add;
          Alcotest.test_case "remove delta remote" `Quick
            test_remove_delta_kills_remotely;
          Alcotest.test_case "re-delivery" `Quick test_delta_idempotent_redelivery;
          Alcotest.test_case "batching" `Quick test_delta_batching;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_matches_model; prop_delta_stream_equals_state_sync ] );
    ]
