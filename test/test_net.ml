(* The [vstamp-sync/1] wire: framing and message codec totality under
   hostile input (truncation, oversized length announcements, bit
   flips), handshake rejection semantics, and real-TCP convergence of
   [Vstamp_net.Node] replicas on loopback. *)

open Vstamp_net
module Registry = Vstamp_obs.Registry
module Metric = Vstamp_obs.Metric
module N = Node.Make (Vstamp_core.Backend.Over_tree)

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

(* --- framing --- *)

let test_frame_roundtrip () =
  List.iter
    (fun payload ->
      match Frame.decode (Frame.encode payload) with
      | Ok (p, consumed) ->
          Alcotest.(check string) "payload" payload p;
          check_int "consumed" (Frame.header_len + String.length payload) consumed
      | Error e -> Alcotest.failf "roundtrip failed: %a" Frame.pp_error e)
    [ ""; "x"; String.make 1000 '\xff'; Proto.encode Proto.Bye ]

let test_frame_truncated () =
  let wire = Frame.encode "hello world" in
  for cut = 0 to String.length wire - 1 do
    match Frame.decode (String.sub wire 0 cut) with
    | Error Frame.Truncated -> ()
    | Ok _ -> Alcotest.failf "cut at %d decoded" cut
    | Error e -> Alcotest.failf "cut at %d: %a" cut Frame.pp_error e
  done

let test_frame_oversized () =
  (* a header announcing more than the cap must be rejected before any
     allocation of that size *)
  let huge = "\x7f\xff\xff\xff" ^ "payload" in
  match Frame.decode huge with
  | Error (Frame.Oversized n) ->
      check_bool "announced length" true (n > Frame.max_payload)
  | Ok _ | Error _ -> Alcotest.fail "oversized frame accepted"

let gen_bytes =
  QCheck2.Gen.(map Bytes.unsafe_to_string (bytes_size (int_bound 64)))

let prop_frame_decode_total =
  QCheck2.Test.make ~name:"frame decoder is total" ~count:2000 gen_bytes
    (fun input ->
      match Frame.decode input with
      | Ok _ | Error _ -> true
      | exception _ -> false)

(* --- message codec --- *)

let sample_hello = { Proto.node_id = "n1"; backend = "tree"; proto = 1 }

let sample_msgs =
  [
    Proto.Hello sample_hello;
    Proto.Hello_ack { sample_hello with node_id = "n2" };
    Proto.Offer ("", []);
    Proto.Offer ("vstamp-trace/1;t;s;n", [ ("k", "stamp-bytes", "digest") ]);
    Proto.Want [];
    Proto.Want [ "a"; "b" ];
    Proto.Items [ ("k", "stamp", [ "v1"; "v2" ]); ("l", "s", []) ];
    Proto.Result [ ("k", "stamp", [ "v" ]) ];
    Proto.Bye;
  ]

let test_proto_roundtrip () =
  List.iter
    (fun msg ->
      match Proto.decode (Proto.encode msg) with
      | Ok m -> check_bool "roundtrip" true (m = msg)
      | Error e -> Alcotest.failf "decode failed: %s" e)
    sample_msgs

let test_proto_rejects_bad_magic () =
  let m = Proto.encode (Proto.Hello sample_hello) in
  (* corrupt one magic byte: the handshake must not parse *)
  let bad = Bytes.of_string m in
  Bytes.set bad 2 'X';
  match Proto.decode (Bytes.to_string bad) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "hello with corrupted magic decoded"

let prop_proto_decode_total =
  QCheck2.Test.make ~name:"message decoder is total" ~count:2000 gen_bytes
    (fun input ->
      match Proto.decode input with
      | Ok _ | Error _ -> true
      | exception _ -> false)

let gen_msg = QCheck2.Gen.oneofl sample_msgs

let prop_proto_bitflip =
  QCheck2.Test.make ~name:"bit-flipped messages never raise" ~count:1000
    QCheck2.Gen.(triple gen_msg (int_bound 1000) (int_bound 7))
    (fun (msg, at, bit) ->
      let s = Bytes.of_string (Proto.encode msg) in
      let at = at mod Bytes.length s in
      Bytes.set s at (Char.chr (Char.code (Bytes.get s at) lxor (1 lsl bit)));
      match Proto.decode (Bytes.to_string s) with
      | Ok _ | Error _ -> true
      | exception _ -> false)

let prop_proto_truncation =
  QCheck2.Test.make ~name:"truncated messages never decode" ~count:1000
    QCheck2.Gen.(pair gen_msg (int_bound 1000))
    (fun (msg, cut) ->
      let s = Proto.encode msg in
      let cut = cut mod String.length s in
      match Proto.decode (String.sub s 0 cut) with
      | Error _ -> true
      | Ok _ -> String.length s = 0
      | exception _ -> false)

(* --- live nodes on loopback --- *)

let with_node ?(peers = fun _ -> []) ~registry ~node_id f =
  let t =
    N.create ~registry ~interval_s:0.05 ~idle_timeout_s:5.0 ~node_id
      ~backend:"tree" ~port:0 ~peers:(peers ()) ()
  in
  Fun.protect ~finally:(fun () -> N.stop t) (fun () -> f t)

let counter r name = Metric.count (Registry.counter r name)

let test_two_nodes_converge () =
  let ra = Registry.create () and rb = Registry.create () in
  with_node ~registry:ra ~node_id:"a" (fun a ->
      with_node ~registry:rb ~node_id:"b"
        ~peers:(fun () -> [ ("127.0.0.1", N.port a) ])
        (fun b ->
          (* bootstrap: replicate the shared key so later writes are
             genuinely concurrent (independently created keys carry
             identical seed stamps and would not conflict) *)
          N.put a ~key:"shared" "base";
          check_int "bootstrap round" 1 (N.sync_now b);
          N.put a ~key:"only-a" "1";
          N.put b ~key:"only-b" "2";
          N.put a ~key:"shared" "from-a";
          N.put b ~key:"shared" "from-b";
          check_int "one peer round" 1 (N.sync_now b);
          Alcotest.(check (list string))
            "a has b's key" [ "2" ] (N.get a "only-b");
          Alcotest.(check (list string))
            "b has a's key" [ "1" ] (N.get b "only-a");
          Alcotest.(check (list string))
            "conflict surfaced both sides"
            [ "from-a"; "from-b" ]
            (List.sort compare (N.get b "shared"));
          check_bool "digests equal" true (N.digest a = N.digest b);
          check_bool "initiator counted rounds" true
            (counter rb "net_rounds_total" = 2);
          check_bool "responder accounted the sessions" true
            (counter ra "net_sync_rounds_total" = 2);
          check_bool "responder shipped bytes" true
            (counter ra "net_sync_shipped_bytes_total" > 0);
          check_bool "bytes moved both ways" true
            (counter rb "net_tx_bytes_total" > 0
            && counter rb "net_rx_bytes_total" > 0);
          (* a second round over converged stores ships no payload *)
          let s0 = counter ra "net_sync_minimal_bytes_total" in
          check_int "second round" 1 (N.sync_now b);
          check_int "minimal delta unchanged" s0
            (counter ra "net_sync_minimal_bytes_total")))

let drain_read fd =
  let b = Bytes.create 256 in
  let rec go n =
    if n > 200 then n
    else
      match Unix.read fd b 0 256 with
      | 0 -> n
      | r -> go (n + r)
      | exception Unix.Unix_error _ -> n
  in
  go 0

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let test_handshake_version_rejected () =
  let r = Registry.create () in
  with_node ~registry:r ~node_id:"a" (fun a ->
      let fd = connect (N.port a) in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let hello =
            Proto.Hello { Proto.node_id = "evil"; backend = "tree"; proto = 99 }
          in
          (match Frame.write fd (Proto.encode hello) with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "write: %a" Frame.pp_error e);
          (* no Hello_ack: the node closes without replying *)
          check_int "connection closed, nothing sent" 0 (drain_read fd);
          check_bool "protocol error counted" true
            (counter r "net_protocol_errors_total" >= 1)))

let test_garbage_frame_rejected () =
  let r = Registry.create () in
  with_node ~registry:r ~node_id:"a" (fun a ->
      let fd = connect (N.port a) in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (match Frame.write fd "\x2a not a message" with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "write: %a" Frame.pp_error e);
          check_int "connection closed, nothing sent" 0 (drain_read fd);
          check_bool "protocol error counted" true
            (counter r "net_protocol_errors_total" >= 1)))

let rec wait_for ?(tries = 100) pred =
  if tries = 0 then false
  else if pred () then true
  else begin
    Thread.delay 0.05;
    wait_for ~tries:(tries - 1) pred
  end

let test_dialer_backoff_on_dead_peer () =
  let r = Registry.create () in
  (* a port nobody listens on: grab one, then close it *)
  let probe = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.bind probe (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let dead_port =
    match Unix.getsockname probe with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  Unix.close probe;
  with_node ~registry:r ~node_id:"a"
    ~peers:(fun () -> [ ("127.0.0.1", dead_port) ])
    (fun a ->
      N.start_dialers a;
      check_bool "reconnects counted" true
        (wait_for (fun () -> counter r "net_reconnects_total" >= 2));
      match N.peers_json a with
      | Vstamp_obs.Jsonx.Obj fields -> (
          match List.assoc "peers" fields with
          | Vstamp_obs.Jsonx.List [ Vstamp_obs.Jsonx.Obj peer ] ->
              let state =
                match List.assoc "state" peer with
                | Vstamp_obs.Jsonx.String s -> s
                | _ -> "?"
              in
              check_bool "backing off or redialing" true
                (List.mem state [ "backoff"; "connecting" ]);
              check_bool "attempts visible" true
                (match List.assoc "attempts" peer with
                | Vstamp_obs.Jsonx.Int n -> n >= 1
                | _ -> false);
              check_bool "last_error recorded" true
                (List.mem_assoc "last_error" peer)
          | _ -> Alcotest.fail "peers array shape")
      | _ -> Alcotest.fail "peers_json shape")

let test_dialer_recovers_and_syncs () =
  let ra = Registry.create () and rb = Registry.create () in
  with_node ~registry:ra ~node_id:"a" (fun a ->
      N.put a ~key:"k" "from-a";
      with_node ~registry:rb ~node_id:"b"
        ~peers:(fun () -> [ ("127.0.0.1", N.port a) ])
        (fun b ->
          N.start_dialers b;
          check_bool "periodic rounds converge" true
            (wait_for (fun () -> N.get b "k" = [ "from-a" ]))))

(* Stopping a responder whose peer keeps hammering it with rounds must
   return promptly: the stop path shuts the live connections down
   rather than waiting for the sessions to go quiet. *)
let test_stop_responder_under_load () =
  let ra = Registry.create () and rb = Registry.create () in
  let a =
    N.create ~registry:ra ~interval_s:0.01 ~idle_timeout_s:5.0 ~node_id:"a"
      ~backend:"tree" ~port:0 ~peers:[] ()
  in
  Fun.protect
    ~finally:(fun () -> N.stop a (* idempotent *))
    (fun () ->
      with_node ~registry:rb ~node_id:"b"
        ~peers:(fun () -> [ ("127.0.0.1", N.port a) ])
        (fun b ->
          N.put a ~key:"k" "v";
          N.start_dialers b;
          check_bool "dialer reached the responder" true
            (wait_for (fun () -> N.get b "k" = [ "v" ]));
          let t0 = Unix.gettimeofday () in
          N.stop a;
          check_bool "stop returned promptly under load" true
            (Unix.gettimeofday () -. t0 < 4.0)))

let () =
  Alcotest.run "net"
    [
      ( "frame",
        [
          Alcotest.test_case "roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "truncation" `Quick test_frame_truncated;
          Alcotest.test_case "oversized" `Quick test_frame_oversized;
          QCheck_alcotest.to_alcotest prop_frame_decode_total;
        ] );
      ( "proto",
        [
          Alcotest.test_case "roundtrip" `Quick test_proto_roundtrip;
          Alcotest.test_case "bad magic" `Quick test_proto_rejects_bad_magic;
          QCheck_alcotest.to_alcotest prop_proto_decode_total;
          QCheck_alcotest.to_alcotest prop_proto_bitflip;
          QCheck_alcotest.to_alcotest prop_proto_truncation;
        ] );
      ( "nodes",
        [
          Alcotest.test_case "two nodes converge" `Quick test_two_nodes_converge;
          Alcotest.test_case "handshake version rejected" `Quick
            test_handshake_version_rejected;
          Alcotest.test_case "garbage frame rejected" `Quick
            test_garbage_frame_rejected;
          Alcotest.test_case "backoff on dead peer" `Quick
            test_dialer_backoff_on_dead_peer;
          Alcotest.test_case "dialer syncs periodically" `Quick
            test_dialer_recovers_and_syncs;
          Alcotest.test_case "stop responder under load" `Quick
            test_stop_responder_under_load;
        ] );
    ]
