open Vstamp_core

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

(* --- op helpers --- *)

let test_size_delta () =
  check_int "update" 0 (Execution.size_delta (Update 0));
  check_int "fork" 1 (Execution.size_delta (Fork 0));
  check_int "join" (-1) (Execution.size_delta (Join (0, 1)))

let test_op_valid () =
  check_bool "update in range" true
    (Execution.op_valid ~frontier_size:2 (Update 1));
  check_bool "update out of range" false
    (Execution.op_valid ~frontier_size:2 (Update 2));
  check_bool "negative" false (Execution.op_valid ~frontier_size:2 (Update (-1)));
  check_bool "join distinct" true
    (Execution.op_valid ~frontier_size:2 (Join (1, 0)));
  check_bool "self join invalid" false
    (Execution.op_valid ~frontier_size:2 (Join (1, 1)));
  check_bool "join out of range" false
    (Execution.op_valid ~frontier_size:2 (Join (0, 2)))

let test_trace_valid () =
  check_bool "empty trace" true (Execution.trace_valid []);
  check_bool "fork then join" true
    (Execution.trace_valid [ Fork 0; Join (0, 1) ]);
  check_bool "join on singleton invalid" false
    (Execution.trace_valid [ Join (0, 1) ]);
  check_bool "update wrong index" false (Execution.trace_valid [ Update 1 ]);
  check_bool "fork twice update deep" true
    (Execution.trace_valid [ Fork 0; Fork 1; Update 2 ])

let test_final_size () =
  check_int "fork fork join" 2
    (Execution.final_frontier_size [ Fork 0; Fork 1; Join (0, 2) ]);
  check_int "empty" 1 (Execution.final_frontier_size [])

let test_op_to_string () =
  Alcotest.(check string) "update" "update(3)" (Execution.op_to_string (Update 3));
  Alcotest.(check string) "fork" "fork(0)" (Execution.op_to_string (Fork 0));
  Alcotest.(check string) "join" "join(1,2)" (Execution.op_to_string (Join (1, 2)))

(* --- positional semantics over the history oracle --- *)

let history = Alcotest.testable Causal_history.pp Causal_history.equal

let run = Execution.Run_histories.run

let test_initial () =
  Alcotest.(check int) "initial frontier" 1 (List.length (run []));
  Alcotest.check history "initial history empty" Causal_history.empty
    (List.hd (run []))

let test_update_replaces_in_place () =
  match run [ Fork 0; Update 1 ] with
  | [ left; right ] ->
      Alcotest.check history "left untouched" Causal_history.empty left;
      check_int "right got an event" 1 (Causal_history.cardinal right)
  | f -> Alcotest.failf "expected 2 elements, got %d" (List.length f)

let test_fork_positions () =
  (* fork the middle of three: positions preserved around it *)
  match run [ Fork 0; Update 0; Fork 0 ] with
  | [ a; b; c ] ->
      check_int "a has the event" 1 (Causal_history.cardinal a);
      check_int "b has the event" 1 (Causal_history.cardinal b);
      Alcotest.check history "c untouched" Causal_history.empty c
  | f -> Alcotest.failf "expected 3 elements, got %d" (List.length f)

let test_join_position () =
  (* join(0,2) inserts merged at position 0 *)
  match run [ Fork 0; Fork 1; Update 0; Update 1; Update 2; Join (0, 2) ] with
  | [ merged; middle ] ->
      check_int "merged saw two events" 2 (Causal_history.cardinal merged);
      check_int "middle saw one" 1 (Causal_history.cardinal middle)
  | f -> Alcotest.failf "expected 2 elements, got %d" (List.length f)

let test_join_order_irrelevant () =
  let a = run [ Fork 0; Update 0; Join (0, 1) ] in
  let b = run [ Fork 0; Update 0; Join (1, 0) ] in
  Alcotest.(check (list history)) "swapped join operands" a b

let test_invalid_raises () =
  Alcotest.check_raises "invalid op raises"
    (Execution.Invalid_op { op = Update 1; frontier_size = 1 })
    (fun () -> ignore (run [ Update 1 ]))

let test_run_steps () =
  let steps = Execution.Run_histories.run_steps [ Fork 0; Update 0 ] in
  check_int "steps include initial" 3 (List.length steps);
  check_int "sizes evolve" 2 (List.length (List.nth steps 1))

let test_fold_visits_transitions () =
  let count =
    Execution.Run_histories.fold
      (fun acc _before _op _after -> acc + 1)
      0
      [ Fork 0; Update 1; Join (0, 1) ]
  in
  check_int "three transitions" 3 count

let test_fresh_events_unique () =
  (* every update event distinct even across branches *)
  let frontier = run [ Fork 0; Update 0; Update 1; Update 0; Join (0, 1) ] in
  match frontier with
  | [ h ] -> check_int "three distinct events" 3 (Causal_history.cardinal h)
  | _ -> Alcotest.fail "single element expected"

(* --- lockstep --- *)

let test_lockstep_alignment () =
  let ops = [ Execution.Fork 0; Update 0; Fork 1; Update 2; Join (0, 2) ] in
  let pairs = Execution.run_lockstep ops in
  check_int "aligned lengths" 2 (List.length pairs);
  List.iter
    (fun (s, _) -> check_bool "stamps well-formed" true (Stamp.well_formed s))
    pairs

(* --- history oracle relations --- *)

let test_history_relations () =
  let e0 = Causal_history.of_events [ 0 ] in
  let e01 = Causal_history.of_events [ 0; 1 ] in
  let e2 = Causal_history.of_events [ 2 ] in
  let rel = Alcotest.testable Relation.pp Relation.equal in
  Alcotest.check rel "equal" Relation.Equal (Causal_history.relation e0 e0);
  Alcotest.check rel "obsolete" Relation.Dominated
    (Causal_history.relation e0 e01);
  Alcotest.check rel "dominates" Relation.Dominates
    (Causal_history.relation e01 e0);
  Alcotest.check rel "concurrent" Relation.Concurrent
    (Causal_history.relation e0 e2);
  check_bool "subset_of_union" true
    (Causal_history.subset_of_union e01 [ e0; Causal_history.of_events [ 1 ] ]);
  check_bool "subset_of_union fails" false
    (Causal_history.subset_of_union e01 [ e0; e2 ])

let test_gen () =
  let g = Causal_history.Gen.initial in
  let e1, g = Causal_history.Gen.fresh g in
  let e2, g = Causal_history.Gen.fresh g in
  check_bool "fresh events distinct" true (e1 <> e2);
  check_int "issued" 2 (Causal_history.Gen.issued g)

(* --- properties: generated traces are valid and interpreters total --- *)

let prop_generated_traces_valid =
  QCheck2.Test.make ~name:"generated traces are valid" ~count:500
    ~print:Vstamp_test_support.Gen.trace_print
    (Vstamp_test_support.Gen.trace ())
    Execution.trace_valid

let prop_frontier_sizes_agree =
  QCheck2.Test.make ~name:"frontier size matches final_frontier_size"
    ~count:300 ~print:Vstamp_test_support.Gen.trace_print
    (Vstamp_test_support.Gen.trace ())
    (fun ops ->
      List.length (Execution.Run_stamps.run ops)
      = Execution.final_frontier_size ops)

let prop_event_count =
  QCheck2.Test.make ~name:"oracle issues exactly one event per update"
    ~count:300 ~print:Vstamp_test_support.Gen.trace_print
    (Vstamp_test_support.Gen.trace ())
    (fun ops ->
      let updates =
        List.length
          (List.filter (function Execution.Update _ -> true | _ -> false) ops)
      in
      let gen, _ = Execution.Run_histories.run_state ops in
      Causal_history.Gen.issued gen = updates)

let () =
  Alcotest.run "execution"
    [
      ( "ops",
        [
          Alcotest.test_case "size_delta" `Quick test_size_delta;
          Alcotest.test_case "op_valid" `Quick test_op_valid;
          Alcotest.test_case "trace_valid" `Quick test_trace_valid;
          Alcotest.test_case "final size" `Quick test_final_size;
          Alcotest.test_case "op_to_string" `Quick test_op_to_string;
        ] );
      ( "positional semantics",
        [
          Alcotest.test_case "initial" `Quick test_initial;
          Alcotest.test_case "update in place" `Quick
            test_update_replaces_in_place;
          Alcotest.test_case "fork positions" `Quick test_fork_positions;
          Alcotest.test_case "join position" `Quick test_join_position;
          Alcotest.test_case "join operand order" `Quick
            test_join_order_irrelevant;
          Alcotest.test_case "invalid raises" `Quick test_invalid_raises;
          Alcotest.test_case "run_steps" `Quick test_run_steps;
          Alcotest.test_case "fold" `Quick test_fold_visits_transitions;
          Alcotest.test_case "fresh events unique" `Quick
            test_fresh_events_unique;
          Alcotest.test_case "lockstep alignment" `Quick test_lockstep_alignment;
        ] );
      ( "history oracle",
        [
          Alcotest.test_case "relations" `Quick test_history_relations;
          Alcotest.test_case "event generator" `Quick test_gen;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_generated_traces_valid;
            prop_frontier_sizes_agree;
            prop_event_count;
          ] );
    ]
