open Vstamp_core
open Vstamp_panasync

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_str = Alcotest.(check string)

let rel = Alcotest.testable Relation.pp Relation.equal

(* --- File_copy --- *)

let test_create () =
  let c = File_copy.create ~path:"notes.txt" ~content:"v1" in
  check_str "path" "notes.txt" (File_copy.path c);
  check_str "content" "v1" (File_copy.content c);
  check_bool "stamp has updates" true (Stamp.has_updates (File_copy.stamp c))

let test_edit_noop () =
  let c = File_copy.create ~path:"f" ~content:"v1" in
  let c' = File_copy.edit c ~content:"v1" in
  Alcotest.check rel "no-op edit leaves equal" Relation.Equal
    (File_copy.relation c c')

let test_replicate_then_edit () =
  let c = File_copy.create ~path:"f" ~content:"v1" in
  let a, b = File_copy.replicate c in
  Alcotest.check rel "replicas equivalent" Relation.Equal (File_copy.relation a b);
  let a = File_copy.edit a ~content:"v2" in
  Alcotest.check rel "edited dominates" Relation.Dominates (File_copy.relation a b);
  Alcotest.check rel "stale dominated" Relation.Dominated (File_copy.relation b a)

let test_conflict_detection () =
  let c = File_copy.create ~path:"f" ~content:"v1" in
  let a, b = File_copy.replicate c in
  let a = File_copy.edit a ~content:"v2a" in
  let b = File_copy.edit b ~content:"v2b" in
  check_bool "concurrent edits conflict" true (File_copy.in_conflict a b);
  let a', b' = File_copy.resolve a b ~content:"merged" in
  check_str "resolved content" "merged" (File_copy.content a');
  Alcotest.check rel "resolution equivalent" Relation.Equal
    (File_copy.relation a' b');
  check_bool "no more conflict" false (File_copy.in_conflict a' b')

let test_propagate () =
  let c = File_copy.create ~path:"f" ~content:"v1" in
  let a, b = File_copy.replicate c in
  let a = File_copy.edit a ~content:"v2" in
  let a', b' = File_copy.propagate ~from:a ~into:b in
  check_str "content propagated" "v2" (File_copy.content b');
  Alcotest.check rel "now equivalent" Relation.Equal (File_copy.relation a' b')

let test_path_mismatch () =
  let a = File_copy.create ~path:"a" ~content:"x" in
  let b = File_copy.create ~path:"b" ~content:"x" in
  Alcotest.check_raises "relation"
    (Invalid_argument "File_copy.relation: different logical files") (fun () ->
      ignore (File_copy.relation a b))

let test_resolution_is_new_event () =
  (* Stamps order only coexisting copies (Section 1.2 of the paper), so
     the resolution cannot be compared with its own retired inputs;
     instead it must strictly dominate a third, still-live stale
     replica. *)
  let c = File_copy.create ~path:"f" ~content:"v1" in
  let left, b = File_copy.replicate c in
  let a, stale = File_copy.replicate left in
  let a = File_copy.edit a ~content:"v2a" in
  let b = File_copy.edit b ~content:"v2b" in
  let a', b' = File_copy.resolve a b ~content:"m" in
  Alcotest.check rel "resolution dominates a coexisting stale copy"
    Relation.Dominates
    (Stamp.relation (File_copy.stamp a') (File_copy.stamp stale));
  Alcotest.check rel "other survivor too" Relation.Dominates
    (Stamp.relation (File_copy.stamp b') (File_copy.stamp stale))

(* --- Store --- *)

let test_store_basics () =
  let s = Store.create ~name:"laptop" in
  check_int "empty" 0 (Store.file_count s);
  let s = Store.add_new s ~path:"a.txt" ~content:"A" in
  let s = Store.add_new s ~path:"b.txt" ~content:"B" in
  check_int "two files" 2 (Store.file_count s);
  Alcotest.(check (list string)) "paths sorted" [ "a.txt"; "b.txt" ] (Store.paths s);
  check_bool "mem" true (Store.mem s "a.txt");
  let s = Store.remove s ~path:"a.txt" in
  check_bool "removed" false (Store.mem s "a.txt")

let test_store_add_duplicate () =
  let s = Store.add_new (Store.create ~name:"x") ~path:"f" ~content:"1" in
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Store.add_new: f already exists in x") (fun () ->
      ignore (Store.add_new s ~path:"f" ~content:"2"))

let test_store_edit_missing () =
  let s = Store.create ~name:"x" in
  Alcotest.check_raises "missing" (Invalid_argument "Store.edit: no f in x")
    (fun () -> ignore (Store.edit s ~path:"f" ~content:"2"))

let test_store_tracking_bits () =
  let s = Store.add_new (Store.create ~name:"x") ~path:"f" ~content:"1" in
  check_bool "non-negative" true (Store.total_tracking_bits s >= 0)

(* --- Sync sessions --- *)

let laptop_and_phone () =
  let laptop = Store.add_new (Store.create ~name:"laptop") ~path:"doc" ~content:"v1" in
  let laptop, phone, reports =
    Sync.session laptop (Store.create ~name:"phone")
  in
  check_int "one report" 1 (List.length reports);
  check_bool "created on phone" true (Store.mem phone "doc");
  (laptop, phone)

let test_session_replicates () =
  let laptop, phone = laptop_and_phone () in
  check_bool "converged after replication" true (Sync.converged laptop phone)

let test_session_fast_forward () =
  let laptop, phone = laptop_and_phone () in
  let laptop = Store.edit laptop ~path:"doc" ~content:"v2" in
  let laptop, phone, reports = Sync.session laptop phone in
  check_bool "no conflicts" true (Sync.conflicts reports = []);
  (match Store.find phone "doc" with
  | Some c -> check_str "fast-forwarded" "v2" (File_copy.content c)
  | None -> Alcotest.fail "file missing");
  check_bool "converged" true (Sync.converged laptop phone)

let test_session_detects_conflicts () =
  let laptop, phone = laptop_and_phone () in
  let laptop = Store.edit laptop ~path:"doc" ~content:"laptop edit" in
  let phone = Store.edit phone ~path:"doc" ~content:"phone edit" in
  let laptop', phone', reports = Sync.session laptop phone in
  check_int "one conflict" 1 (List.length (Sync.conflicts reports));
  (* manual policy: nothing changed *)
  (match Store.find laptop' "doc" with
  | Some c -> check_str "left untouched" "laptop edit" (File_copy.content c)
  | None -> Alcotest.fail "missing");
  check_bool "not converged" false (Sync.converged laptop' phone')

let test_session_policy_resolution () =
  let laptop, phone = laptop_and_phone () in
  let laptop = Store.edit laptop ~path:"doc" ~content:"laptop edit" in
  let phone = Store.edit phone ~path:"doc" ~content:"phone edit" in
  let laptop, phone, reports = Sync.session ~policy:Sync.Prefer_left laptop phone in
  check_bool "no conflicts surface" true (Sync.conflicts reports = []);
  (match Store.find phone "doc" with
  | Some c -> check_str "left preferred" "laptop edit" (File_copy.content c)
  | None -> Alcotest.fail "missing");
  check_bool "converged" true (Sync.converged laptop phone)

let test_session_merge_policy () =
  let laptop, phone = laptop_and_phone () in
  let laptop = Store.edit laptop ~path:"doc" ~content:"A" in
  let phone = Store.edit phone ~path:"doc" ~content:"B" in
  let merge ~left ~right = left ^ "+" ^ right in
  let laptop, phone, _ = Sync.session ~policy:(Sync.Merge merge) laptop phone in
  (match Store.find laptop "doc" with
  | Some c -> check_str "merged" "A+B" (File_copy.content c)
  | None -> Alcotest.fail "missing");
  check_bool "converged" true (Sync.converged laptop phone)

let test_independent_creation_conflict () =
  (* same path created independently on both sides: stamps are blind to
     it (equivalent seed lineages) but the session must flag it *)
  let a = Store.add_new (Store.create ~name:"a") ~path:"f" ~content:"mine" in
  let b = Store.add_new (Store.create ~name:"b") ~path:"f" ~content:"theirs" in
  let _, _, reports = Sync.session a b in
  check_int "conflict surfaced" 1 (List.length (Sync.conflicts reports));
  (* and a policy resolves it like any other conflict *)
  let a', b', reports = Sync.session ~policy:Sync.Prefer_right a b in
  check_bool "resolved" true (Sync.conflicts reports = []);
  (match Store.find a' "f" with
  | Some c -> check_str "right preferred" "theirs" (File_copy.content c)
  | None -> Alcotest.fail "missing");
  check_bool "converged" true (Sync.converged a' b')

let test_independent_identical_creation_ok () =
  (* independent creation with identical content is indistinguishable
     from a replicated copy and needs no conflict *)
  let a = Store.add_new (Store.create ~name:"a") ~path:"f" ~content:"same" in
  let b = Store.add_new (Store.create ~name:"b") ~path:"f" ~content:"same" in
  let _, _, reports = Sync.session a b in
  check_bool "no conflict" true (Sync.conflicts reports = [])

let test_session_disjoint_files () =
  let a = Store.add_new (Store.create ~name:"a") ~path:"x" ~content:"1" in
  let b = Store.add_new (Store.create ~name:"b") ~path:"y" ~content:"2" in
  let a, b, reports = Sync.session a b in
  check_int "two creations" 2 (List.length reports);
  check_bool "both have both" true
    (Store.mem a "y" && Store.mem b "x" && Sync.converged a b)

(* the scenario the paper motivates: three devices, offline replication
   chains, no id service anywhere *)
let test_three_device_chain () =
  let laptop = Store.add_new (Store.create ~name:"laptop") ~path:"doc" ~content:"v1" in
  let laptop, phone, _ = Sync.session laptop (Store.create ~name:"phone") in
  (* phone replicates to a tablet while offline from the laptop *)
  let phone, tablet, _ = Sync.session phone (Store.create ~name:"tablet") in
  (* tablet and laptop edit concurrently *)
  let tablet = Store.edit tablet ~path:"doc" ~content:"tablet edit" in
  let laptop = Store.edit laptop ~path:"doc" ~content:"laptop edit" in
  (* tablet syncs back with the phone: fast-forward, no conflict *)
  let tablet, phone, reports1 = Sync.session tablet phone in
  check_bool "tablet->phone clean" true (Sync.conflicts reports1 = []);
  (* phone meets the laptop: NOW the true conflict surfaces *)
  let _, _, reports2 = Sync.session phone laptop in
  check_int "exactly one true conflict" 1 (List.length (Sync.conflicts reports2));
  ignore tablet

let test_repeated_sync_stamps_stay_small () =
  let a = Store.add_new (Store.create ~name:"a") ~path:"f" ~content:"0" in
  let a, b, _ = Sync.session a (Store.create ~name:"b") in
  let rec rounds k (a, b) =
    if k = 0 then (a, b)
    else
      let a = Store.edit a ~path:"f" ~content:(string_of_int k) in
      let a, b, _ = Sync.session ~policy:Sync.Prefer_left a b in
      rounds (k - 1) (a, b)
  in
  let a, b = rounds 50 (a, b) in
  let bits c = File_copy.size_bits c in
  (match (Store.find a "f", Store.find b "f") with
  | Some ca, Some cb ->
      check_bool "stamps stay bounded over 50 sync rounds" true
        (bits ca <= 16 && bits cb <= 16)
  | _ -> Alcotest.fail "missing");
  check_bool "still converged" true (Sync.converged a b)

(* differential: sync outcomes agree with a causal-history oracle *)
let test_outcomes_match_oracle () =
  (* mirror file edits with explicit histories *)
  let c = File_copy.create ~path:"f" ~content:"v" in
  let a, b = File_copy.replicate c in
  let ha = Causal_history.of_events [ 0 ] and hb = Causal_history.of_events [ 0 ] in
  let a = File_copy.edit a ~content:"va" in
  let ha = Causal_history.add_event 1 ha in
  let b = File_copy.edit b ~content:"vb" in
  let hb = Causal_history.add_event 2 hb in
  Alcotest.check rel "stamps agree with histories"
    (Causal_history.relation ha hb)
    (File_copy.relation a b)

(* --- Obs instrumentation --- *)

let counter_value r name =
  Vstamp_obs.Metric.count (Vstamp_obs.Registry.counter r name)

let test_sync_obs_counters () =
  let module R = Vstamp_obs.Registry in
  let r = R.create () in
  check_bool "detached by default" false (Sync.Obs.attached ());
  Sync.Obs.attach ~registry:r ();
  Fun.protect ~finally:Sync.Obs.detach (fun () ->
      let outcome o = R.with_labels "sync_files_total" [ ("outcome", o) ] in
      let a = Store.create ~name:"a" and b = Store.create ~name:"b" in
      (* session 1: one-sided file replicates over — 5 content bytes *)
      let a = Store.add_new a ~path:"doc.txt" ~content:"hello" in
      let a, b, _ = Sync.session a b in
      check_int "created" 1 (counter_value r (outcome "created"));
      check_int "replicated bytes" 5 (counter_value r "sync_bytes_total");
      (* session 2: one-sided edit propagates — 11 bytes cross *)
      let a = Store.edit a ~path:"doc.txt" ~content:"hello world" in
      let a, b, _ = Sync.session a b in
      check_int "propagated" 1 (counter_value r (outcome "propagated_lr"));
      check_int "propagated bytes" 16 (counter_value r "sync_bytes_total");
      (* session 3: concurrent edits under Manual — a conflict, no bytes *)
      let a = Store.edit a ~path:"doc.txt" ~content:"L1" in
      let b = Store.edit b ~path:"doc.txt" ~content:"R1" in
      let a, b, reports = Sync.session a b in
      check_int "conflict surfaced" 1 (List.length (Sync.conflicts reports));
      check_int "conflict counted" 1 (counter_value r (outcome "conflict"));
      check_int "conflicts total" 1 (counter_value r "sync_conflicts_total");
      check_int "no bytes on standing conflict" 16
        (counter_value r "sync_bytes_total");
      (* session 4: merge policy settles it — the 4-byte merge crosses *)
      let merge = Sync.Merge (fun ~left ~right -> left ^ right) in
      let a, b, _ = Sync.session ~policy:merge a b in
      check_int "resolved" 1 (counter_value r (outcome "resolved"));
      check_int "resolved bytes" 20 (counter_value r "sync_bytes_total");
      (* session 5: nothing to do *)
      let _, _, _ = Sync.session a b in
      check_int "unchanged" 1 (counter_value r (outcome "unchanged"));
      check_int "rounds" 5 (counter_value r "sync_rounds_total"));
  check_bool "detached again" false (Sync.Obs.attached ());
  let a = Store.create ~name:"a" and b = Store.create ~name:"b" in
  let _, _, _ = Sync.session a b in
  check_int "no counting when detached" 5
    (counter_value r "sync_rounds_total")

let test_sync_obs_delta_ledger () =
  let module R = Vstamp_obs.Registry in
  let module M = Vstamp_obs.Metric in
  let r = R.create () in
  Sync.Obs.attach ~registry:r ();
  Fun.protect ~finally:Sync.Obs.detach (fun () ->
      let shipped () = counter_value r "sync_shipped_bytes_total" in
      let minimal () = counter_value r "sync_minimal_bytes_total" in
      let redundant () = counter_value r "sync_redundant_bytes_total" in
      let a = Store.create ~name:"a" and b = Store.create ~name:"b" in
      (* creation: replicating to an empty peer is already minimal *)
      let a = Store.add_new a ~path:"doc.txt" ~content:"hello" in
      let a, b, _ = Sync.session a b in
      check_bool "creation ships" true (shipped () > 0);
      check_int "creation is minimal" (shipped ()) (minimal ());
      check_int "no redundancy yet" 0 (redundant ());
      (* an unchanged round: full-state exchange is pure redundancy *)
      let before = shipped () in
      let a, b, _ = Sync.session a b in
      check_bool "unchanged round still ships state" true (shipped () > before);
      check_int "unchanged round needs nothing" (minimal () + redundant ())
        (shipped ());
      check_bool "redundancy recorded" true (redundant () > 0);
      (* one-sided edit: the minimal delta is the dominant side only *)
      let a = Store.edit a ~path:"doc.txt" ~content:"hello world" in
      let sh0 = shipped () and mi0 = minimal () in
      let _, _, _ = Sync.session a b in
      check_bool "propagation ships" true (shipped () > sh0);
      check_bool "propagation needs some bytes" true (minimal () > mi0);
      check_bool "minimal below shipped" true
        (minimal () - mi0 < shipped () - sh0);
      (* the invariant the gauge reports: minimal / shipped *)
      let eff = M.value (R.gauge r "sync_delta_efficiency") in
      check_bool "efficiency in (0, 1]" true (eff > 0. && eff <= 1.);
      check_int "ledger balances" (shipped ()) (minimal () + redundant ()))

let test_sync_emits_spans () =
  let module Tr = Vstamp_obs.Trace_ctx in
  let spans = ref [] in
  Tr.detach ();
  Tr.set_id_seed 0xabc;
  Tr.attach ~sink:(fun sp -> spans := sp :: !spans) ~node:"laptop" ();
  Fun.protect ~finally:Tr.detach (fun () ->
      let a = Store.add_new (Store.create ~name:"a") ~path:"doc" ~content:"v" in
      let _, _, _ = Sync.session a (Store.create ~name:"b") in
      let names = List.rev_map (fun sp -> sp.Tr.sp_name) !spans in
      check_bool "sync.session span" true (List.mem "sync.session" names);
      check_bool "sync.apply span" true (List.mem "sync.apply" names);
      let session =
        List.find (fun sp -> sp.Tr.sp_name = "sync.session") !spans
      in
      let apply =
        List.find (fun sp -> sp.Tr.sp_name = "sync.apply") !spans
      in
      check_str "apply continues the session trace" session.Tr.sp_trace
        apply.Tr.sp_trace;
      check_bool "apply is a child of the session span" true
        (apply.Tr.sp_parent = Some session.Tr.sp_id);
      check_bool "file count annotated" true
        (List.mem_assoc "files" session.Tr.sp_attrs));
  (* detached: sessions still work, nothing recorded *)
  let n = List.length !spans in
  let a = Store.add_new (Store.create ~name:"a") ~path:"doc" ~content:"v" in
  let _, _, _ = Sync.session a (Store.create ~name:"b") in
  check_int "no spans when detached" n (List.length !spans)

let () =
  Alcotest.run "panasync"
    [
      ( "file_copy",
        [
          Alcotest.test_case "create" `Quick test_create;
          Alcotest.test_case "no-op edit" `Quick test_edit_noop;
          Alcotest.test_case "replicate then edit" `Quick test_replicate_then_edit;
          Alcotest.test_case "conflict detection" `Quick test_conflict_detection;
          Alcotest.test_case "propagate" `Quick test_propagate;
          Alcotest.test_case "path mismatch" `Quick test_path_mismatch;
          Alcotest.test_case "resolution is a new event" `Quick
            test_resolution_is_new_event;
        ] );
      ( "store",
        [
          Alcotest.test_case "basics" `Quick test_store_basics;
          Alcotest.test_case "duplicate add" `Quick test_store_add_duplicate;
          Alcotest.test_case "edit missing" `Quick test_store_edit_missing;
          Alcotest.test_case "tracking bits" `Quick test_store_tracking_bits;
        ] );
      ( "instrumentation",
        [
          Alcotest.test_case "obs counters" `Quick test_sync_obs_counters;
          Alcotest.test_case "delta ledger" `Quick test_sync_obs_delta_ledger;
          Alcotest.test_case "trace spans" `Quick test_sync_emits_spans;
        ] );
      ( "sync",
        [
          Alcotest.test_case "replicates" `Quick test_session_replicates;
          Alcotest.test_case "fast-forward" `Quick test_session_fast_forward;
          Alcotest.test_case "detects conflicts" `Quick
            test_session_detects_conflicts;
          Alcotest.test_case "policy resolution" `Quick
            test_session_policy_resolution;
          Alcotest.test_case "merge policy" `Quick test_session_merge_policy;
          Alcotest.test_case "independent creation conflicts" `Quick
            test_independent_creation_conflict;
          Alcotest.test_case "independent identical creation" `Quick
            test_independent_identical_creation_ok;
          Alcotest.test_case "disjoint files" `Quick test_session_disjoint_files;
          Alcotest.test_case "three-device chain" `Quick test_three_device_chain;
          Alcotest.test_case "stamps stay small" `Quick
            test_repeated_sync_stamps_stay_small;
          Alcotest.test_case "matches oracle" `Quick test_outcomes_match_oracle;
        ] );
    ]
