open Vstamp_sim

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cfg = Churn.default_config

let test_deterministic () =
  let a = Churn.run { cfg with rounds = 12; seed = 7 } in
  let b = Churn.run { cfg with rounds = 12; seed = 7 } in
  check_int "updates" a.Churn.updates b.Churn.updates;
  check_int "forks" a.Churn.forks b.Churn.forks;
  check_int "retires" a.Churn.retires b.Churn.retires;
  check_int "id_bits" a.Churn.stamp_id_bits b.Churn.stamp_id_bits;
  check_int "dvv baggage" a.Churn.dvv_retired_entries b.Churn.dvv_retired_entries;
  check_int "reclaimed" a.Churn.reclaimed_bits b.Churn.reclaimed_bits;
  Alcotest.(check (float 1e-12)) "entropy" a.Churn.entropy b.Churn.entropy

let test_audit_clean_across_rates () =
  List.iter
    (fun rate ->
      let r =
        Churn.run { cfg with churn_rate = rate; rounds = 20; seed = 11 }
      in
      check_bool
        (Printf.sprintf "audit clean at rate %.1f" rate)
        true r.Churn.audit_clean;
      check_int
        (Printf.sprintf "no order disagreement at rate %.1f" rate)
        0 r.Churn.relation_mismatches;
      check_bool "population within bounds" true
        (r.Churn.final_replicas >= cfg.Churn.min_replicas
        && r.Churn.final_replicas <= cfg.Churn.max_replicas
        && r.Churn.peak_replicas <= cfg.Churn.max_replicas))
    [ 0.0; 0.5; 1.0; 3.0 ]

let test_churn_actually_churns () =
  let r = Churn.run { cfg with churn_rate = 2.0; rounds = 24; seed = 3 } in
  check_bool "forks happened" true (r.Churn.forks > 0);
  check_bool "retires happened" true (r.Churn.retires > 0);
  check_bool "retires reclaim id digits" true (r.Churn.reclaimed_bits > 0);
  check_bool "dvv baggage appeared at some point" true
    (r.Churn.dvv_peak_retired_entries > 0 || r.Churn.dvv_gc_dropped > 0);
  check_bool "oracle no larger than actual tiling" true
    (r.Churn.oracle_bits <= r.Churn.stamp_id_bits);
  check_bool "effectiveness in (0,1]" true
    (r.Churn.reduce_effectiveness > 0. && r.Churn.reduce_effectiveness <= 1.)

let test_corruption_injection () =
  let r =
    Churn.run { cfg with rounds = 10; inject_corruption = Some 4; seed = 5 }
  in
  check_bool "audit not clean" false r.Churn.audit_clean;
  check_bool "witness recorded" true (r.Churn.audit.Vstamp_obs.Idspace.violations <> [])

let test_on_round_and_registry () =
  let reg = Vstamp_obs.Registry.create () in
  let seen = ref 0 in
  let r =
    Churn.run ~registry:reg
      ~on_round:(fun o ->
        incr seen;
        check_bool "live positive" true (o.Churn.live > 0))
      { cfg with rounds = 8 }
  in
  check_int "one observation per round" 8 !seen;
  ignore r;
  (match Vstamp_obs.Registry.find reg "vstamp_idspace_live_replicas" with
  | Some (Vstamp_obs.Registry.Gauge _) -> ()
  | _ -> Alcotest.fail "vstamp_idspace_live_replicas not published");
  (match Vstamp_obs.Registry.find reg "sim_churn_population" with
  | Some (Vstamp_obs.Registry.Gauge _) -> ()
  | _ -> Alcotest.fail "sim_churn_population not published");
  match Vstamp_obs.Registry.find reg "sim_churn_forks_total" with
  | Some (Vstamp_obs.Registry.Counter c) ->
      check_int "fork counter matches result" r.Churn.forks
        (Vstamp_obs.Metric.count c)
  | _ -> Alcotest.fail "sim_churn_forks_total not published"

let test_genealogy_export () =
  let r = Churn.run { cfg with rounds = 10 } in
  let dot = Vstamp_obs.Idspace.to_dot r.Churn.genealogy in
  check_bool "dot starts with digraph" true
    (String.length dot > 8 && String.sub dot 0 8 = "digraph ");
  match Vstamp_obs.Jsonx.member "schema" (Vstamp_obs.Idspace.to_json r.Churn.genealogy) with
  | Some (Vstamp_obs.Jsonx.String "vstamp-idspace/1") -> ()
  | _ -> Alcotest.fail "genealogy json schema missing"

let test_config_validation () =
  Alcotest.check_raises "replicas < 1"
    (Invalid_argument "Churn.run: replicas < 1") (fun () ->
      ignore (Churn.run { cfg with replicas = 0 }));
  Alcotest.check_raises "max < initial"
    (Invalid_argument "Churn.run: max_replicas < replicas") (fun () ->
      ignore (Churn.run { cfg with max_replicas = 1 }))

let () =
  Alcotest.run "churn"
    [
      ( "scenario",
        [
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "audit clean across rates" `Quick
            test_audit_clean_across_rates;
          Alcotest.test_case "churns" `Quick test_churn_actually_churns;
          Alcotest.test_case "corruption injection" `Quick
            test_corruption_injection;
          Alcotest.test_case "on_round and registry" `Quick
            test_on_round_and_registry;
          Alcotest.test_case "genealogy export" `Quick test_genealogy_export;
          Alcotest.test_case "config validation" `Quick test_config_validation;
        ] );
    ]
