open Vstamp_obs

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let close msg a b = Alcotest.(check (float 1e-9)) msg a b

let violations inventory = (Idspace.audit_fragments inventory).Idspace.violations

(* --- partition-of-unity audit --- *)

let test_audit_whole_space () =
  check_bool "sole replica owning epsilon tiles" true
    (violations [ ("r0", [ "" ]) ] = []);
  check_bool "two halves tile" true
    (violations [ ("r0", [ "0" ]); ("r1", [ "1" ]) ] = []);
  check_bool "uneven tiling" true
    (violations [ ("a", [ "0" ]); ("b", [ "10" ]); ("c", [ "11" ]) ] = []);
  check_bool "multi-fragment owner" true
    (violations [ ("a", [ "0"; "11" ]); ("b", [ "10" ]) ] = [])

let test_audit_overlap () =
  (match violations [ ("a", [ "" ]); ("b", [ "0" ]) ] with
  | [ Idspace.Overlap { a; a_frag; b; b_frag } ] ->
      Alcotest.(check string) "owner a" "a" a;
      Alcotest.(check string) "frag a" "" a_frag;
      Alcotest.(check string) "owner b" "b" b;
      Alcotest.(check string) "frag b" "0" b_frag
  | vs ->
      Alcotest.failf "expected one overlap, got %d violations"
        (List.length vs));
  (* duplicate fragment *)
  match violations [ ("a", [ "01" ]); ("b", [ "01" ]); ("c", [ "1"; "00" ]) ] with
  | [ Idspace.Overlap { a_frag; b_frag; _ } ] ->
      Alcotest.(check string) "same position" a_frag b_frag
  | vs -> Alcotest.failf "expected one overlap, got %d" (List.length vs)

let test_audit_leak () =
  (match violations [ ("a", [ "0" ]) ] with
  | [ Idspace.Leak { path } ] -> Alcotest.(check string) "missing half" "1" path
  | _ -> Alcotest.fail "expected one leak");
  (match violations [ ("a", [ "00" ]); ("b", [ "1" ]) ] with
  | [ Idspace.Leak { path } ] ->
      Alcotest.(check string) "missing quarter" "01" path
  | _ -> Alcotest.fail "expected one leak");
  match violations [] with
  | [ Idspace.Leak { path } ] ->
      Alcotest.(check string) "empty inventory leaks everything" "" path
  | _ -> Alcotest.fail "expected the whole space to leak"

let test_audit_malformed () =
  match violations [ ("a", [ "" ]); ("b", [ "0x1" ]) ] with
  | [ Idspace.Malformed { owner; frag } ] ->
      Alcotest.(check string) "owner" "b" owner;
      Alcotest.(check string) "frag" "0x1" frag
  | vs ->
      Alcotest.failf "expected malformed (epsilon still tiles), got %d"
        (List.length vs)

let test_audit_deterministic () =
  let inv = [ ("a", [ "0"; "10" ]); ("b", [ "10" ]); ("c", [ "111" ]) ] in
  let a1 = Idspace.audit_fragments inv in
  let a2 = Idspace.audit_fragments (List.rev inv) in
  check_bool "witness order independent of input order" true
    (a1.Idspace.violations = a2.Idspace.violations);
  check_int "fragments counted" 4 a1.Idspace.audit_fragments;
  check_int "owners counted" 3 a1.Idspace.audited

(* --- analytics --- *)

let test_oracle_bits () =
  check_int "n=0" 0 (Idspace.oracle_bits 0);
  check_int "n=1" 0 (Idspace.oracle_bits 1);
  check_int "n=2" 2 (Idspace.oracle_bits 2);
  check_int "n=3" 5 (Idspace.oracle_bits 3);
  check_int "n=4" 8 (Idspace.oracle_bits 4);
  check_int "n=5" 12 (Idspace.oracle_bits 5);
  check_int "n=8" 24 (Idspace.oracle_bits 8);
  (* oracle is a true minimum over the balanced tiling itself *)
  close "entropy n=2" 1.0 (Idspace.oracle_entropy 2);
  close "entropy n=3" 1.5 (Idspace.oracle_entropy 3);
  close "entropy n=4" 2.0 (Idspace.oracle_entropy 4)

let test_stats () =
  let s =
    Idspace.stats_of_fragments
      [ ("a", [ "0" ]); ("b", [ "10"; "11" ]) ]
  in
  check_int "live" 2 s.Idspace.live;
  check_int "fragments" 3 s.Idspace.fragments;
  check_int "id_bits" 5 s.Idspace.id_bits;
  check_int "oracle_bits" 2 s.Idspace.oracle_bits;
  check_int "max_depth" 2 s.Idspace.max_depth;
  check_int "max_width" 2 s.Idspace.max_width;
  close "mean_width" 1.5 s.Idspace.mean_width;
  close "entropy" 1.5 s.Idspace.entropy;
  close "reduce_effectiveness" 0.4 s.Idspace.reduce_effectiveness;
  check_bool "width_dist" true (s.Idspace.width_dist = [ (1, 1); (2, 1) ]);
  check_bool "depth_dist" true (s.Idspace.depth_dist = [ (1, 1); (2, 2) ])

(* --- genealogy inventory --- *)

let test_genealogy_lifecycle () =
  let t = Idspace.create () in
  let r0 = Idspace.seed ~label:"r0" t [ "" ] in
  check_int "one live" 1 (Idspace.live_count t);
  check_bool "seed audit clean" true ((Idspace.audit t).Idspace.violations = []);
  let a, b = Idspace.fork ~labels:("r0", "r1") t r0 ~left:[ "0" ] ~right:[ "1" ] in
  check_int "two live" 2 (Idspace.live_count t);
  check_int "three incarnations" 3 (Idspace.node_count t);
  check_bool "fork audit clean" true ((Idspace.audit t).Idspace.violations = []);
  check_bool "parent consumed" true
    ((match Idspace.find t r0 with Some n -> n.Idspace.died | None -> None)
    <> None);
  let j = Idspace.retire ~label:"r0" t ~survivor:a b [ "" ] in
  check_int "one live after retire" 1 (Idspace.live_count t);
  check_int "retire reclaimed both digits" 2 (Idspace.reclaimed_bits t);
  check_int "fork added two digits" 2 (Idspace.fork_bits t);
  check_int "retires" 1 (Idspace.retires t);
  check_int "forks" 1 (Idspace.forks t);
  check_bool "join audit clean" true ((Idspace.audit t).Idspace.violations = []);
  Idspace.refresh t j [ "0"; "1" ];
  check_int "refresh tracked" 1 (Idspace.refreshes t);
  Alcotest.check_raises "dead node refused"
    (Invalid_argument "Idspace: node 1 is not live") (fun () ->
      Idspace.refresh t a [ "" ])

let test_corrupted_fragment_witness () =
  (* regression: a corrupting refresh must produce a positional
     overlap witness naming both owners *)
  let t = Idspace.create () in
  let r0 = Idspace.seed ~label:"left" t [ "" ] in
  let a, _b = Idspace.fork ~labels:("left", "right") t r0 ~left:[ "0" ] ~right:[ "1" ] in
  Idspace.refresh t a [ "0"; "10" ];
  (match (Idspace.audit t).Idspace.violations with
  | [ Idspace.Overlap { a = oa; a_frag; b = ob; b_frag } ] ->
      Alcotest.(check string) "covering owner" "right" oa;
      Alcotest.(check string) "covering frag" "1" a_frag;
      Alcotest.(check string) "overlapping owner" "left" ob;
      Alcotest.(check string) "overlapping frag" "10" b_frag
  | vs -> Alcotest.failf "expected one overlap, got %d" (List.length vs));
  (* and a lost fragment must leak *)
  Idspace.refresh t a [];
  check_bool "leak witnessed" true
    (List.exists
       (function Idspace.Leak { path } -> path = "0" | _ -> false)
       (Idspace.audit t).Idspace.violations)

let test_dot_and_json () =
  let t = Idspace.create () in
  let r0 = Idspace.seed ~label:"r0" t [ "" ] in
  let _ = Idspace.fork t r0 ~left:[ "0" ] ~right:[ "1" ] in
  let dot = Idspace.to_dot t in
  check_bool "digraph" true
    (String.length dot > 8 && String.sub dot 0 8 = "digraph ");
  check_bool "has edges" true
    (let rec has i =
       i + 2 <= String.length dot
       && (String.sub dot i 2 = "->" || has (i + 1))
     in
     has 0);
  let j = Idspace.to_json t in
  (match Jsonx.member "schema" j with
  | Some (Jsonx.String s) -> Alcotest.(check string) "schema" "vstamp-idspace/1" s
  | _ -> Alcotest.fail "schema missing");
  (match Jsonx.member "nodes" j with
  | Some (Jsonx.List ns) -> check_int "three nodes" 3 (List.length ns)
  | _ -> Alcotest.fail "nodes missing");
  match Jsonx.member "audit" j with
  | Some a -> (
      match Jsonx.member "ok" a with
      | Some (Jsonx.Bool true) -> ()
      | _ -> Alcotest.fail "audit not ok")
  | None -> Alcotest.fail "audit missing"

let test_publish_and_view () =
  let reg = Registry.create () in
  let t = Idspace.create () in
  let r0 = Idspace.seed t [ "" ] in
  let _ = Idspace.fork t r0 ~left:[ "0" ] ~right:[ "1" ] in
  Idspace.publish ~registry:reg t;
  (match Registry.find reg "vstamp_idspace_live_replicas" with
  | Some (Registry.Gauge g) -> close "live gauge" 2.0 (Metric.value g)
  | _ -> Alcotest.fail "live_replicas gauge missing");
  (match Registry.find reg "vstamp_idspace_ops_total{op=\"fork\"}" with
  | Some (Registry.Counter c) -> check_int "fork counter" 1 (Metric.count c)
  | _ -> Alcotest.fail "fork counter missing");
  (* publish is delta-safe: re-publishing without new ops adds nothing *)
  Idspace.publish ~registry:reg t;
  (match Registry.find reg "vstamp_idspace_ops_total{op=\"fork\"}" with
  | Some (Registry.Counter c) -> check_int "no double count" 1 (Metric.count c)
  | _ -> Alcotest.fail "fork counter missing");
  let v = Idspace.view_json reg in
  match Jsonx.member "idspace" v with
  | Some idj -> (
      match Jsonx.member "live_replicas" idj with
      | Some f -> check_bool "view carries live" true (Jsonx.to_float f = Some 2.0)
      | None -> Alcotest.fail "view missing live_replicas")
  | None -> Alcotest.fail "view missing idspace object"

(* --- satellite: qcheck tiling preservation over real stamps --- *)

module Stamp = Vstamp_core.Stamp
module Name = Vstamp_core.Name_tree
module Bits = Vstamp_core.Bits

let frags s = List.map Bits.to_string (Name.to_list (Stamp.id s))

(* Interpret a random op script over a real stamp population mirrored
   into an inventory; the live fragments must tile after every step. *)
let prop_stamp_ops_keep_tiling =
  QCheck2.Test.make
    ~name:"fork/join/reduce/retire sequences keep an exact tiling" ~count:200
    QCheck2.Gen.(list_size (int_range 1 40) (pair (int_bound 3) (pair nat nat)))
    (fun script ->
      let t = Idspace.create () in
      let pop = ref [| (Stamp.seed, Idspace.seed t (frags Stamp.seed)) |] in
      let clean () = (Idspace.audit t).Idspace.violations = [] in
      let ok = ref (clean ()) in
      List.iter
        (fun (op, (x, y)) ->
          let n = Array.length !pop in
          let i = x mod n in
          (match op with
          | 0 when n < 24 ->
              (* fork *)
              let s, node = (!pop).(i) in
              let sa, sb = Stamp.fork s in
              let na, nb =
                Idspace.fork t node ~left:(frags sa) ~right:(frags sb)
              in
              (!pop).(i) <- (sa, na);
              pop := Array.append !pop [| (sb, nb) |]
          | 1 when n >= 2 ->
              (* retire: i joins into j, reduction on *)
              let j = y mod (n - 1) in
              let j = if j >= i then j + 1 else j in
              let si, ni = (!pop).(i) and sj, nj = (!pop).(j) in
              let joined = Stamp.join sj si in
              let node = Idspace.retire t ~survivor:nj ni (frags joined) in
              let keep = ref [] in
              Array.iteri
                (fun k r ->
                  if k <> i then
                    keep := (if k = j then (joined, node) else r) :: !keep)
                !pop;
              pop := Array.of_list (List.rev !keep)
          | 2 when n >= 2 ->
              (* sync = join then fork: ids change in place *)
              let j = y mod (n - 1) in
              let j = if j >= i then j + 1 else j in
              let si, ni = (!pop).(i) and sj, nj = (!pop).(j) in
              let si', sj' = Stamp.sync si sj in
              Idspace.refresh t ni (frags si');
              Idspace.refresh t nj (frags sj');
              (!pop).(i) <- (si', ni);
              (!pop).(j) <- (sj', nj)
          | _ ->
              (* update: id unchanged, but refresh exercises the path *)
              let s, node = (!pop).(i) in
              let s' = Stamp.update s in
              Idspace.refresh t node (frags s');
              (!pop).(i) <- (s', node));
          ok := !ok && clean ())
        script;
      !ok)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "idspace"
    [
      ( "audit",
        [
          Alcotest.test_case "tilings pass" `Quick test_audit_whole_space;
          Alcotest.test_case "overlap witnessed" `Quick test_audit_overlap;
          Alcotest.test_case "leak witnessed" `Quick test_audit_leak;
          Alcotest.test_case "malformed witnessed" `Quick test_audit_malformed;
          Alcotest.test_case "deterministic" `Quick test_audit_deterministic;
        ] );
      ( "analytics",
        [
          Alcotest.test_case "oracle bits/entropy" `Quick test_oracle_bits;
          Alcotest.test_case "stats" `Quick test_stats;
        ] );
      ( "genealogy",
        [
          Alcotest.test_case "lifecycle" `Quick test_genealogy_lifecycle;
          Alcotest.test_case "corrupted fragment witness" `Quick
            test_corrupted_fragment_witness;
          Alcotest.test_case "dot and json" `Quick test_dot_and_json;
          Alcotest.test_case "publish and view" `Quick test_publish_and_view;
        ] );
      ("properties", qcheck [ prop_stamp_ops_keep_tiling ]);
    ]
