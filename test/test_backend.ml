(* The backend registry: the in-tree set, lookup behaviour, duplicate
   rejection, and that registered implementations agree through the
   Backend.S seam (first-class module access, as the CLI uses it). *)

open Vstamp_core

let check_bool = Alcotest.(check bool)

let test_keys () =
  let keys = Backend.keys () in
  List.iter
    (fun k ->
      check_bool (k ^ " registered") true (List.mem k keys))
    [ "tree"; "list"; "packed" ];
  Alcotest.(check (list string)) "sorted" (List.sort compare keys) keys;
  check_bool "default key registered" true
    (List.mem Backend.default_key keys)

let test_find () =
  check_bool "find tree" true (Option.is_some (Backend.find "tree"));
  check_bool "find packed" true (Option.is_some (Backend.find "packed"));
  check_bool "find unknown" true (Option.is_none (Backend.find "bogus"));
  check_bool "find_entry doc non-empty" true
    (match Backend.find_entry "packed" with
    | Some e -> String.length e.Backend.doc > 0 && e.Backend.key = "packed"
    | None -> false)

let test_get_unknown_raises () =
  match Backend.get "bogus" with
  | _ -> Alcotest.fail "get of unknown key should raise"
  | exception Invalid_argument msg ->
      (* the error must list the valid set, as the CLI surfaces it *)
      check_bool "message names the key" true
        (String.length msg > 0
        && List.for_all
             (fun k ->
               (* crude substring check *)
               let rec has i =
                 i + String.length k <= String.length msg
                 && (String.sub msg i (String.length k) = k || has (i + 1))
               in
               has 0)
             [ "bogus"; "tree" ])

let test_duplicate_register_raises () =
  match
    Backend.register ~key:"tree" ~doc:"dup" (module Backend.Over_tree)
  with
  | () -> Alcotest.fail "duplicate key should raise"
  | exception Invalid_argument _ -> ()

let test_register_of_name () =
  (* a fresh backend built from Of_name is reachable like the in-tree
     ones; use a throwaway key so reruns in one process stay safe *)
  let key = "test-list-alias" in
  (match Backend.find key with
  | Some _ -> ()
  | None ->
      let module B = Backend.Of_name (Name) in
      Backend.register ~key ~doc:"list spec under a test alias" (module B));
  check_bool "alias reachable" true (Option.is_some (Backend.find key));
  check_bool "alias listed" true (List.mem key (Backend.keys ()))

let test_first_class_use () =
  (* drive an arbitrary registered backend through the seam exactly the
     way the CLI and smoke tooling do *)
  List.iter
    (fun key ->
      let module B = (val Backend.get key) in
      let s = B.Stamp.update B.Stamp.seed in
      let a, b = B.Stamp.fork s in
      let j = B.Stamp.join (B.Stamp.update a) b in
      check_bool (key ^ " well-formed after ops") true (B.Stamp.well_formed j);
      check_bool (key ^ " update visible") true (B.Stamp.has_updates j))
    (Backend.keys ())

let test_default_is_tree () =
  Alcotest.(check string) "default key" "tree" Backend.default_key;
  let module D = (val Backend.default) in
  let module T = (val Backend.get "tree") in
  check_bool "default seed equals tree seed"
    true
    (String.equal (D.Stamp.to_string D.Stamp.seed)
       (T.Stamp.to_string T.Stamp.seed))

let () =
  Alcotest.run "backend"
    [
      ( "registry",
        [
          Alcotest.test_case "in-tree keys" `Quick test_keys;
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "get unknown raises" `Quick
            test_get_unknown_raises;
          Alcotest.test_case "duplicate register raises" `Quick
            test_duplicate_register_raises;
          Alcotest.test_case "register Of_name" `Quick test_register_of_name;
        ] );
      ( "seam",
        [
          Alcotest.test_case "first-class use" `Quick test_first_class_use;
          Alcotest.test_case "default is tree" `Quick test_default_is_tree;
        ] );
    ]
