open Vstamp_core

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let stamp = Alcotest.testable Stamp.pp Stamp.equal

let rel = Alcotest.testable Relation.pp Relation.equal

let test_initial () =
  let c = Config.initial "a" in
  check_int "one element" 1 (Config.size c);
  Alcotest.check stamp "seed" Stamp.seed (Config.get c "a");
  check_bool "mem" true (Config.mem c "a");
  check_bool "not mem" false (Config.mem c "b")

let test_unknown () =
  let c = Config.initial "a" in
  check_bool "raises" true
    (try
       ignore (Config.get c "zz");
       false
     with Config.Unknown_element "zz" -> true)

(* the full Definition 4.3 derivation of Figure 4, by element name *)
let fig4_config () =
  Config.initial "a1"
  |> Config.update ~elem:"a1" ~result:"a2"
  |> Config.fork ~elem:"a2" ~left:"b1" ~right:"c1"
  |> Config.fork ~elem:"b1" ~left:"d1" ~right:"e1"
  |> Config.update ~elem:"c1" ~result:"c2"
  |> Config.update ~elem:"c2" ~result:"c3"
  |> Config.join ~left:"e1" ~right:"c3" ~result:"f1"
  |> Config.join ~left:"d1" ~right:"f1" ~result:"g1"

let test_fig4_derivation () =
  let c = fig4_config () in
  check_int "single survivor" 1 (Config.size c);
  Alcotest.check stamp "g1 is the seed shape" Stamp.seed (Config.get c "g1")

let test_fig4_intermediate () =
  let c =
    Config.initial "a1"
    |> Config.update ~elem:"a1" ~result:"a2"
    |> Config.fork ~elem:"a2" ~left:"b1" ~right:"c1"
    |> Config.fork ~elem:"b1" ~left:"d1" ~right:"e1"
    |> Config.update ~elem:"c1" ~result:"c2"
  in
  Alcotest.check rel "d1 obsolete vs c2" Relation.Dominated
    (Config.relation c "d1" "c2");
  Alcotest.check rel "d1 equivalent e1" Relation.Equal
    (Config.relation c "d1" "e1");
  Alcotest.(check string)
    "c2 renders" "[1|1]"
    (Stamp.to_string (Config.get c "c2"))

let test_name_reuse () =
  let c =
    Config.initial "a"
    |> Config.update ~elem:"a" ~result:"a"
    |> Config.fork ~elem:"a" ~left:"a" ~right:"b"
    |> Config.join ~left:"a" ~right:"b" ~result:"a"
  in
  check_int "one element" 1 (Config.size c);
  check_bool "named a" true (Config.mem c "a")

let test_clashes () =
  let c = Config.initial "a" |> Config.fork ~elem:"a" ~left:"b" ~right:"c" in
  let raises_clash f =
    try
      ignore (f ());
      false
    with Config.Clash _ -> true
  in
  check_bool "update clash" true
    (raises_clash (fun () -> Config.update c ~elem:"b" ~result:"c"));
  check_bool "fork clash" true
    (raises_clash (fun () -> Config.fork c ~elem:"b" ~left:"c" ~right:"d"));
  check_bool "fork same names" true
    (raises_clash (fun () -> Config.fork c ~elem:"b" ~left:"d" ~right:"d"));
  check_bool "join self" true
    (raises_clash (fun () -> Config.join c ~left:"b" ~right:"b" ~result:"x"));
  check_bool "of_list duplicate" true
    (raises_clash (fun () ->
         Config.of_list [ ("x", Stamp.seed); ("x", Stamp.seed) ]))

let test_sync () =
  let c =
    Config.initial "a"
    |> Config.fork ~elem:"a" ~left:"a" ~right:"b"
    |> Config.update ~elem:"a" ~result:"a"
    |> Config.sync ~left:"a" ~right:"b"
  in
  check_int "both alive" 2 (Config.size c);
  Alcotest.check rel "equivalent after sync" Relation.Equal
    (Config.relation c "a" "b")

let test_frontier_and_invariants () =
  let c =
    Config.initial "a"
    |> Config.fork ~elem:"a" ~left:"a" ~right:"b"
    |> Config.fork ~elem:"b" ~left:"b" ~right:"c"
    |> Config.update ~elem:"b" ~result:"b"
  in
  check_int "three stamps" 3 (List.length (Config.frontier c));
  check_bool "invariants hold" true (Invariants.all (Config.frontier c))

let test_fold_total_bits () =
  let c =
    Config.initial "a" |> Config.fork ~elem:"a" ~left:"a" ~right:"b"
  in
  check_int "fold counts" 2 (Config.fold (fun _ _ n -> n + 1) c 0);
  check_int "total bits" 2 (Config.total_bits c)

let test_names_sorted () =
  let c =
    Config.initial "z" |> Config.fork ~elem:"z" ~left:"m" ~right:"a"
  in
  Alcotest.(check (list string)) "sorted" [ "a"; "m" ] (Config.names c)

let test_pp () =
  let c = Config.initial "a" in
  check_bool "renders" true (String.length (Format.asprintf "%a" Config.pp c) > 0)

(* property: a named replay of a positional trace matches Execution *)
let prop_matches_execution =
  QCheck2.Test.make ~name:"named replay equals positional replay" ~count:200
    ~print:Vstamp_test_support.Gen.trace_print
    (Vstamp_test_support.Gen.trace ())
    (fun ops ->
      (* maintain a name list mirroring the positional semantics *)
      let fresh = ref 0 in
      let next () =
        incr fresh;
        Printf.sprintf "e%d" !fresh
      in
      let config = ref (Config.initial "e0") in
      let names = ref [ "e0" ] in
      List.iter
        (fun op ->
          match op with
          | Execution.Update i ->
              let n = List.nth !names i in
              let n' = next () in
              config := Config.update !config ~elem:n ~result:n';
              names := List.mapi (fun k x -> if k = i then n' else x) !names
          | Execution.Fork i ->
              let n = List.nth !names i in
              let l = next () and r = next () in
              config := Config.fork !config ~elem:n ~left:l ~right:r;
              names :=
                List.concat
                  (List.mapi (fun k x -> if k = i then [ l; r ] else [ x ]) !names)
          | Execution.Join (i, j) ->
              let a = List.nth !names i and b = List.nth !names j in
              let res = next () in
              config := Config.join !config ~left:a ~right:b ~result:res;
              let lo = min i j in
              let kept = List.filteri (fun k _ -> k <> i && k <> j) !names in
              let rec insert pos acc = function
                | rest when pos = lo -> List.rev_append acc (res :: rest)
                | [] -> List.rev (res :: acc)
                | x :: rest -> insert (pos + 1) (x :: acc) rest
              in
              names := insert 0 [] kept)
        ops;
      let positional = Execution.Run_stamps.run ops in
      List.for_all2
        (fun name expected -> Stamp.equal (Config.get !config name) expected)
        !names positional)

let () =
  Alcotest.run "config"
    [
      ( "basics",
        [
          Alcotest.test_case "initial" `Quick test_initial;
          Alcotest.test_case "unknown element" `Quick test_unknown;
          Alcotest.test_case "name reuse" `Quick test_name_reuse;
          Alcotest.test_case "clashes" `Quick test_clashes;
          Alcotest.test_case "names sorted" `Quick test_names_sorted;
          Alcotest.test_case "pp" `Quick test_pp;
        ] );
      ( "derivations",
        [
          Alcotest.test_case "figure 4 full" `Quick test_fig4_derivation;
          Alcotest.test_case "figure 4 intermediate" `Quick
            test_fig4_intermediate;
          Alcotest.test_case "sync" `Quick test_sync;
          Alcotest.test_case "frontier + invariants" `Quick
            test_frontier_and_invariants;
          Alcotest.test_case "fold/total_bits" `Quick test_fold_total_bits;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_matches_execution ] );
    ]
