open Vstamp_core
open Vstamp_codec

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

(* --- Bitio --- *)

let test_bit_roundtrip () =
  let w = Bitio.Writer.create () in
  List.iter (Bitio.Writer.bit w) [ true; false; true; true; false ];
  check_int "bit_length" 5 (Bitio.Writer.bit_length w);
  let r = Bitio.Reader.of_string (Bitio.Writer.contents w) in
  List.iter
    (fun expected -> check_bool "bit" expected (Bitio.Reader.bit r))
    [ true; false; true; true; false ]

let test_bits_roundtrip () =
  let w = Bitio.Writer.create () in
  Bitio.Writer.bits w ~value:0b1011 ~width:4;
  Bitio.Writer.bits w ~value:0 ~width:3;
  Bitio.Writer.bits w ~value:12345 ~width:20;
  let r = Bitio.Reader.of_string (Bitio.Writer.contents w) in
  check_int "4 bits" 0b1011 (Bitio.Reader.bits r ~width:4);
  check_int "3 bits" 0 (Bitio.Reader.bits r ~width:3);
  check_int "20 bits" 12345 (Bitio.Reader.bits r ~width:20)

let test_varint_roundtrip () =
  let values = [ 0; 1; 15; 16; 255; 256; 65535; 1 lsl 30 ] in
  let w = Bitio.Writer.create () in
  List.iter (Bitio.Writer.varint w) values;
  let r = Bitio.Reader.of_string (Bitio.Writer.contents w) in
  List.iter (fun v -> check_int "varint" v (Bitio.Reader.varint r)) values

let test_varint_sizes () =
  check_int "small varint is 5 bits" 5 (Bitio.round_trip_bits 7);
  check_int "16 needs two groups" 10 (Bitio.round_trip_bits 16)

let test_truncated () =
  let r = Bitio.Reader.of_string "" in
  Alcotest.check_raises "empty" Bitio.Truncated (fun () ->
      ignore (Bitio.Reader.bit r));
  let r = Bitio.Reader.of_string "\xff" in
  check_int "remaining" 8 (Bitio.Reader.remaining_bits r);
  ignore (Bitio.Reader.bits r ~width:8);
  Alcotest.check_raises "past end" Bitio.Truncated (fun () ->
      ignore (Bitio.Reader.bit r))

let test_writer_validation () =
  let w = Bitio.Writer.create () in
  Alcotest.check_raises "negative varint"
    (Invalid_argument "Bitio.Writer.varint: negative") (fun () ->
      Bitio.Writer.varint w (-1));
  Alcotest.check_raises "negative bits"
    (Invalid_argument "Bitio.Writer.bits: negative value") (fun () ->
      Bitio.Writer.bits w ~value:(-1) ~width:4)

(* --- Wire: names --- *)

let names =
  List.map Name_tree.of_strings
    [
      [];
      [ "" ];
      [ "0" ];
      [ "1" ];
      [ "0"; "1" ];
      [ "00"; "01"; "1" ];
      [ "000"; "010"; "011"; "10" ];
      [ "010101" ];
    ]

let test_wire_name_roundtrip () =
  List.iter
    (fun n ->
      match Wire.name_of_string (Wire.name_to_string n) with
      | Ok n' ->
          check_bool
            ("round trip " ^ Name_tree.to_string n)
            true (Name_tree.equal n n')
      | Error e -> Alcotest.failf "decode failed: %a" Wire.pp_error e)
    names

let test_wire_name_sizes () =
  check_int "empty is 2 bits" 2 (Wire.name_bits Name_tree.empty);
  check_int "bottom is 2 bits" 2 (Wire.name_bits Name_tree.bottom);
  (* {0,1} = Node(Mark,Mark): 1 + 2 + 2 *)
  check_int "{0,1} is 5 bits" 5 (Wire.name_bits (Name_tree.of_strings [ "0"; "1" ]))

let test_wire_name_truncated () =
  match Wire.name_of_string "" with
  | Error Wire.Truncated -> ()
  | _ -> Alcotest.fail "expected Truncated"

(* --- Wire: stamps --- *)

let stamps =
  let n = Name_tree.of_strings in
  [
    Stamp.seed;
    Stamp.make ~update:(n [ "1" ]) ~id:(n [ "01"; "1" ]);
    Stamp.make ~update:(n []) ~id:(n [ "0" ]);
    Stamp.make ~update:(n [ "00"; "01" ]) ~id:(n [ "00"; "01"; "1" ]);
  ]

let test_wire_stamp_roundtrip () =
  List.iter
    (fun s ->
      match Wire.stamp_of_string (Wire.stamp_to_string s) with
      | Ok s' ->
          check_bool ("round trip " ^ Stamp.to_string s) true (Stamp.equal s s')
      | Error e -> Alcotest.failf "decode failed: %a" Wire.pp_error e)
    stamps

let test_wire_stamp_rejects_bad_i1 () =
  let bad =
    Stamp.make_unchecked
      ~update:(Name_tree.of_strings [ "0" ])
      ~id:(Name_tree.of_strings [ "1" ])
  in
  (match Wire.stamp_of_string (Wire.stamp_to_string bad) with
  | Error (Wire.Malformed _) -> ()
  | _ -> Alcotest.fail "expected Malformed");
  match Wire.stamp_of_string ~validate:false (Wire.stamp_to_string bad) with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "validation off should accept"

let test_wire_stamp_bits_close_to_size () =
  (* encoded size tracks the structural size metric *)
  List.iter
    (fun s ->
      let bits = Wire.stamp_bits s in
      check_bool "within structural bound" true
        (bits <= (4 * (Stamp.size_bits s + 4)) && bits >= 4))
    stamps

(* --- Wire: backend genericity --- *)

module Wire_list = Wire.Make (Backend.Over_list)
module Wire_packed = Wire.Make (Backend.Over_packed)

let as_list_stamp s =
  Stamp.Over_list.make_unchecked
    ~update:(Name.of_list (Name_tree.to_list (Stamp.update_name s)))
    ~id:(Name.of_list (Name_tree.to_list (Stamp.id s)))

let as_packed_stamp s =
  Stamp.Over_packed.make_unchecked
    ~update:(Name_packed.of_list (Name_tree.to_list (Stamp.update_name s)))
    ~id:(Name_packed.of_list (Name_tree.to_list (Stamp.id s)))

(* regression for the codec/backend coupling: the wire bytes are a
   function of the antichain, never of the in-memory representation *)
let test_wire_backend_byte_identity () =
  List.iter
    (fun s ->
      let tree_bytes = Wire.stamp_to_string s in
      Alcotest.(check string)
        ("list bytes for " ^ Stamp.to_string s)
        tree_bytes
        (Wire_list.stamp_to_string (as_list_stamp s));
      Alcotest.(check string)
        ("packed bytes for " ^ Stamp.to_string s)
        tree_bytes
        (Wire_packed.stamp_to_string (as_packed_stamp s)))
    stamps

let test_wire_list_stamp_roundtrip () =
  List.iter
    (fun s ->
      let l = as_list_stamp s in
      let bytes = Wire_list.stamp_to_string l in
      match Wire_list.stamp_of_string bytes with
      | Ok l' ->
          check_bool
            ("round trip " ^ Stamp.to_string s)
            true
            (Stamp.Over_list.equal l l');
          Alcotest.(check string)
            "re-encode is byte-identical" bytes
            (Wire_list.stamp_to_string l')
      | Error e -> Alcotest.failf "decode failed: %a" Wire.pp_error e)
    stamps

let test_wire_cross_backend_decode () =
  (* bytes written by one backend decode under any other *)
  List.iter
    (fun s ->
      let bytes = Wire.stamp_to_string s in
      (match Wire_packed.stamp_of_string bytes with
      | Ok p ->
          check_bool "packed decodes tree bytes" true
            (Stamp.Over_packed.equal p (as_packed_stamp s))
      | Error e -> Alcotest.failf "packed decode failed: %a" Wire.pp_error e);
      match Wire_list.stamp_of_string bytes with
      | Ok l ->
          check_bool "list decodes tree bytes" true
            (Stamp.Over_list.equal l (as_list_stamp s))
      | Error e -> Alcotest.failf "list decode failed: %a" Wire.pp_error e)
    stamps

let test_wire_list_rejects_bad_i1 () =
  let bad =
    Stamp.Over_list.make_unchecked
      ~update:(Name.of_strings [ "0" ])
      ~id:(Name.of_strings [ "1" ])
  in
  let bytes = Wire_list.stamp_to_string bad in
  (match Wire_list.stamp_of_string ~validate:true bytes with
  | Error (Wire.Malformed _) -> ()
  | _ -> Alcotest.fail "expected Malformed under validation");
  match Wire_list.stamp_of_string ~validate:false bytes with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "validation off should accept"

(* --- Wire: version vectors --- *)

let test_wire_vv_roundtrip () =
  let open Vstamp_vv in
  List.iter
    (fun entries ->
      let vv = Version_vector.of_list entries in
      match Wire.vv_of_string (Wire.vv_to_string vv) with
      | Ok vv' -> check_bool "round trip" true (Version_vector.equal vv vv')
      | Error e -> Alcotest.failf "decode failed: %a" Wire.pp_error e)
    [ []; [ (0, 1) ]; [ (0, 2); (3, 1); (17, 300) ] ]

(* --- Text --- *)

let test_text_print_parse () =
  List.iter
    (fun s ->
      match Text.stamp_of_string (Text.stamp_to_string s) with
      | Ok s' -> check_bool (Stamp.to_string s) true (Stamp.equal s s')
      | Error e -> Alcotest.failf "parse failed: %a" Text.pp_error e)
    stamps

let test_text_inputs () =
  let ok input expected =
    match Text.stamp_of_string input with
    | Ok s -> Alcotest.(check string) input expected (Stamp.to_string s)
    | Error e -> Alcotest.failf "parse of %S failed: %a" input Text.pp_error e
  in
  ok "[e|e]" "[\xce\xb5|\xce\xb5]";
  ok "[\xce\xb5|\xce\xb5]" "[\xce\xb5|\xce\xb5]";
  ok "[1|01+1]" "[1|01+1]";
  ok "[ 1 | 00 + 01 + 1 ]" "[1|00+01+1]";
  ok "[0/|0]" "[\xc3\xb8|0]";
  ok "[\xc3\xb8|0]" "[\xc3\xb8|0]"

let test_text_rejects () =
  let fails input =
    match Text.stamp_of_string input with
    | Error _ -> ()
    | Ok s -> Alcotest.failf "%S should not parse, got %s" input (Stamp.to_string s)
  in
  fails "";
  fails "[e|e";
  fails "e|e]";
  fails "[e e]";
  fails "[2|1]";
  fails "[0|1]" (* violates I1 *);
  fails "[e|0+01]" (* not an antichain *);
  fails "[e|e] trailing"

let test_text_name () =
  (match Text.name_of_string "00+01+1" with
  | Ok n -> Alcotest.(check string) "name" "00+01+1" (Text.name_to_string n)
  | Error e -> Alcotest.failf "parse failed: %a" Text.pp_error e);
  match Text.name_of_string "0+01" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-antichain should be rejected"

(* --- properties --- *)

let prop_wire_name_roundtrip =
  QCheck2.Test.make ~name:"wire name round trip" ~count:500
    (Vstamp_test_support.Gen.name_tree ())
    (fun n ->
      match Wire.name_of_string (Wire.name_to_string n) with
      | Ok n' -> Name_tree.equal n n'
      | Error _ -> false)

let prop_wire_name_canonical =
  QCheck2.Test.make ~name:"wire encoding is canonical (re-encode identical)"
    ~count:500
    (Vstamp_test_support.Gen.name_tree ())
    (fun n ->
      let enc = Wire.name_to_string n in
      match Wire.name_of_string enc with
      | Ok n' -> String.equal enc (Wire.name_to_string n')
      | Error _ -> false)

let prop_wire_stamp_roundtrip_traces =
  QCheck2.Test.make ~name:"wire stamp round trip along traces" ~count:200
    ~print:Vstamp_test_support.Gen.trace_print
    (Vstamp_test_support.Gen.trace ())
    (fun ops ->
      List.for_all
        (fun s ->
          match Wire.stamp_of_string (Wire.stamp_to_string s) with
          | Ok s' -> Stamp.equal s s'
          | Error _ -> false)
        (Execution.Run_stamps.run ops))

let prop_text_roundtrip =
  QCheck2.Test.make ~name:"text stamp round trip along traces" ~count:200
    ~print:Vstamp_test_support.Gen.trace_print
    (Vstamp_test_support.Gen.trace ())
    (fun ops ->
      List.for_all
        (fun s ->
          match Text.stamp_of_string (Text.stamp_to_string s) with
          | Ok s' -> Stamp.equal s s'
          | Error _ -> false)
        (Execution.Run_stamps.run ops))

let prop_varint_roundtrip =
  QCheck2.Test.make ~name:"varint round trip" ~count:500
    QCheck2.Gen.(int_bound ((1 lsl 30) - 1))
    (fun v ->
      let w = Bitio.Writer.create () in
      Bitio.Writer.varint w v;
      let r = Bitio.Reader.of_string (Bitio.Writer.contents w) in
      Bitio.Reader.varint r = v)

let () =
  Alcotest.run "codec"
    [
      ( "bitio",
        [
          Alcotest.test_case "bit round trip" `Quick test_bit_roundtrip;
          Alcotest.test_case "bits round trip" `Quick test_bits_roundtrip;
          Alcotest.test_case "varint round trip" `Quick test_varint_roundtrip;
          Alcotest.test_case "varint sizes" `Quick test_varint_sizes;
          Alcotest.test_case "truncated" `Quick test_truncated;
          Alcotest.test_case "writer validation" `Quick test_writer_validation;
        ] );
      ( "wire",
        [
          Alcotest.test_case "name round trip" `Quick test_wire_name_roundtrip;
          Alcotest.test_case "name sizes" `Quick test_wire_name_sizes;
          Alcotest.test_case "name truncated" `Quick test_wire_name_truncated;
          Alcotest.test_case "stamp round trip" `Quick test_wire_stamp_roundtrip;
          Alcotest.test_case "stamp rejects bad I1" `Quick
            test_wire_stamp_rejects_bad_i1;
          Alcotest.test_case "stamp bits sane" `Quick
            test_wire_stamp_bits_close_to_size;
          Alcotest.test_case "vv round trip" `Quick test_wire_vv_roundtrip;
        ] );
      ( "wire backends",
        [
          Alcotest.test_case "byte identity across backends" `Quick
            test_wire_backend_byte_identity;
          Alcotest.test_case "list stamp round trip" `Quick
            test_wire_list_stamp_roundtrip;
          Alcotest.test_case "cross-backend decode" `Quick
            test_wire_cross_backend_decode;
          Alcotest.test_case "list rejects bad I1" `Quick
            test_wire_list_rejects_bad_i1;
        ] );
      ( "text",
        [
          Alcotest.test_case "print/parse" `Quick test_text_print_parse;
          Alcotest.test_case "accepted inputs" `Quick test_text_inputs;
          Alcotest.test_case "rejected inputs" `Quick test_text_rejects;
          Alcotest.test_case "names" `Quick test_text_name;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_wire_name_roundtrip;
            prop_wire_name_canonical;
            prop_wire_stamp_roundtrip_traces;
            prop_text_roundtrip;
            prop_varint_roundtrip;
          ] );
    ]
