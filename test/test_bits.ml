open Vstamp_core

let bits = Alcotest.testable Bits.pp Bits.equal

let b = Bits.of_string

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

(* --- construction and basic observers --- *)

let test_epsilon () =
  check_bool "epsilon is epsilon" true (Bits.is_epsilon Bits.epsilon);
  check_int "epsilon length" 0 (Bits.length Bits.epsilon);
  Alcotest.check bits "of_string \"\"" Bits.epsilon (b "");
  check_bool "non-empty not epsilon" false (Bits.is_epsilon (b "0"))

let test_of_to_string () =
  List.iter
    (fun s -> Alcotest.(check string) s s (Bits.to_string (b s)))
    [ ""; "0"; "1"; "01"; "10"; "0011"; "111111" ]

let test_of_string_invalid () =
  Alcotest.check_raises "bad char" (Invalid_argument "Bits.of_string: '2'")
    (fun () -> ignore (b "02"))

let test_snoc_cons () =
  Alcotest.check bits "snoc 0" (b "010") (Bits.snoc (b "01") Bits.Zero);
  Alcotest.check bits "snoc 1" (b "011") (Bits.snoc (b "01") Bits.One);
  Alcotest.check bits "cons 1" (b "101") (Bits.cons Bits.One (b "01"));
  Alcotest.check bits "snoc on epsilon" (b "1") (Bits.snoc Bits.epsilon Bits.One)

let test_append () =
  Alcotest.check bits "append" (b "0110") (Bits.append (b "01") (b "10"));
  Alcotest.check bits "append eps left" (b "10") (Bits.append Bits.epsilon (b "10"));
  Alcotest.check bits "append eps right" (b "01") (Bits.append (b "01") Bits.epsilon)

let test_uncons_unsnoc () =
  (match Bits.uncons (b "011") with
  | Some (Bits.Zero, rest) -> Alcotest.check bits "uncons rest" (b "11") rest
  | _ -> Alcotest.fail "uncons");
  (match Bits.unsnoc (b "011") with
  | Some (init, Bits.One) -> Alcotest.check bits "unsnoc init" (b "01") init
  | _ -> Alcotest.fail "unsnoc");
  check_bool "uncons eps" true (Bits.uncons Bits.epsilon = None);
  check_bool "unsnoc eps" true (Bits.unsnoc Bits.epsilon = None)

let test_get () =
  check_bool "get 0" true (Bits.get (b "01") 0 = Bits.Zero);
  check_bool "get 1" true (Bits.get (b "01") 1 = Bits.One);
  Alcotest.check_raises "get out of range"
    (Invalid_argument "Bits.get: index out of bounds") (fun () ->
      ignore (Bits.get (b "01") 2))

(* --- prefix order --- *)

let test_is_prefix () =
  check_bool "eps prefix of all" true (Bits.is_prefix Bits.epsilon (b "0110"));
  check_bool "eps prefix of eps" true (Bits.is_prefix Bits.epsilon Bits.epsilon);
  check_bool "01 <= 011" true (Bits.is_prefix (b "01") (b "011"));
  check_bool "01 <= 01" true (Bits.is_prefix (b "01") (b "01"));
  check_bool "011 not <= 01" false (Bits.is_prefix (b "011") (b "01"));
  check_bool "01 vs 00" false (Bits.is_prefix (b "01") (b "00"));
  check_bool "10 vs 01" false (Bits.is_prefix (b "10") (b "01"))

let test_strict_prefix () =
  check_bool "01 < 011" true (Bits.is_strict_prefix (b "01") (b "011"));
  check_bool "01 not < 01" false (Bits.is_strict_prefix (b "01") (b "01"));
  check_bool "eps < 0" true (Bits.is_strict_prefix Bits.epsilon (b "0"))

let test_incomparable () =
  (* paper's examples: 01 <= 011 and 01 || 00 *)
  check_bool "01 || 00" true (Bits.incomparable (b "01") (b "00"));
  check_bool "01 vs 011 comparable" false (Bits.incomparable (b "01") (b "011"));
  check_bool "0 || 1" true (Bits.incomparable (b "0") (b "1"));
  check_bool "s vs s" false (Bits.incomparable (b "01") (b "01"));
  check_bool "eps comparable with all" false (Bits.incomparable Bits.epsilon (b "1"))

let test_prefix_compare () =
  let check_ord msg expected r s =
    check_bool msg true (Bits.prefix_compare (b r) (b s) = expected)
  in
  check_ord "equal" Bits.Equal "01" "01";
  check_ord "prefix" Bits.Prefix "01" "011";
  check_ord "extension" Bits.Extension "011" "01";
  check_ord "incomparable" Bits.Incomparable "00" "01";
  check_ord "eps prefix" Bits.Prefix "" "0";
  check_ord "eps equal" Bits.Equal "" ""

let test_common_prefix () =
  Alcotest.check bits "common 0110/0101" (b "01")
    (Bits.common_prefix (b "0110") (b "0101"));
  Alcotest.check bits "common with eps" Bits.epsilon
    (Bits.common_prefix Bits.epsilon (b "0101"));
  Alcotest.check bits "common disjoint" Bits.epsilon
    (Bits.common_prefix (b "10") (b "01"));
  Alcotest.check bits "common of equal" (b "011")
    (Bits.common_prefix (b "011") (b "011"))

let test_sibling_parent () =
  (match Bits.sibling (b "010") with
  | Some s -> Alcotest.check bits "sibling of 010" (b "011") s
  | None -> Alcotest.fail "sibling");
  (match Bits.sibling (b "1") with
  | Some s -> Alcotest.check bits "sibling of 1" (b "0") s
  | None -> Alcotest.fail "sibling");
  check_bool "sibling of eps" true (Bits.sibling Bits.epsilon = None);
  (match Bits.parent (b "010") with
  | Some p -> Alcotest.check bits "parent of 010" (b "01") p
  | None -> Alcotest.fail "parent");
  check_bool "parent of eps" true (Bits.parent Bits.epsilon = None)

(* --- total orders --- *)

let test_shortlex () =
  let sorted =
    List.sort Bits.compare [ b "1"; b "00"; b ""; b "0"; b "11"; b "01" ]
  in
  Alcotest.(check (list string))
    "shortlex order"
    [ ""; "0"; "1"; "00"; "01"; "11" ]
    (List.map Bits.to_string sorted)

let test_shortlex_prefix_first () =
  (* shortlex puts every proper prefix before its extensions *)
  List.iter
    (fun (r, s) ->
      check_bool
        (Printf.sprintf "%s before %s" r s)
        true
        (Bits.compare (b r) (b s) < 0))
    [ ("", "0"); ("", "1"); ("0", "00"); ("1", "10"); ("01", "011") ]

let test_compare_lex () =
  check_bool "lex 0 < 1" true (Bits.compare_lex (b "0") (b "1") < 0);
  check_bool "lex prefix first" true (Bits.compare_lex (b "0") (b "00") < 0);
  (* lex differs from shortlex here: 00 < 1 lexicographically *)
  check_bool "lex 00 < 1" true (Bits.compare_lex (b "00") (b "1") < 0);
  check_bool "shortlex 1 < 00" true (Bits.compare (b "1") (b "00") < 0)

(* --- digits and enumeration --- *)

let test_digits () =
  check_int "digit round trip 0" 0 Bits.(int_of_digit (digit_of_int 0));
  check_int "digit round trip 1" 1 Bits.(int_of_digit (digit_of_int 1));
  Alcotest.check_raises "digit_of_int 2"
    (Invalid_argument "Bits.digit_of_int: 2") (fun () ->
      ignore (Bits.digit_of_int 2));
  Alcotest.check bits "of_digits" (b "011")
    (Bits.of_digits [ Bits.Zero; Bits.One; Bits.One ]);
  check_bool "to_digits" true
    (Bits.to_digits (b "10") = [ Bits.One; Bits.Zero ])

let test_all_of_length () =
  Alcotest.(check (list string))
    "length 0" [ "" ]
    (List.map Bits.to_string (Bits.all_of_length 0));
  Alcotest.(check (list string))
    "length 2"
    [ "00"; "01"; "10"; "11" ]
    (List.map Bits.to_string (Bits.all_of_length 2));
  check_int "length 5 count" 32 (List.length (Bits.all_of_length 5));
  Alcotest.check_raises "negative" (Invalid_argument "Bits.all_of_length")
    (fun () -> ignore (Bits.all_of_length (-1)))

let test_hash_equal () =
  check_bool "equal strings equal hash" true
    (Bits.hash (b "0101") = Bits.hash (Bits.snoc (b "010") Bits.One));
  check_bool "equal reflexive" true (Bits.equal (b "01") (b "01"));
  check_bool "not equal" false (Bits.equal (b "01") (b "011"))

(* --- properties --- *)

let prop_prefix_partial_order =
  QCheck2.Test.make ~name:"prefix order: reflexive, antisymmetric, transitive"
    ~count:500
    QCheck2.Gen.(
      triple
        (Vstamp_test_support.Gen.bits ())
        (Vstamp_test_support.Gen.bits ())
        (Vstamp_test_support.Gen.bits ()))
    (fun (r, s, t) ->
      Bits.is_prefix r r
      && ((not (Bits.is_prefix r s && Bits.is_prefix s r)) || Bits.equal r s)
      && ((not (Bits.is_prefix r s && Bits.is_prefix s t)) || Bits.is_prefix r t))

let prop_prefix_compare_consistent =
  QCheck2.Test.make ~name:"prefix_compare agrees with is_prefix" ~count:500
    QCheck2.Gen.(
      pair (Vstamp_test_support.Gen.bits ()) (Vstamp_test_support.Gen.bits ()))
    (fun (r, s) ->
      match Bits.prefix_compare r s with
      | Bits.Equal -> Bits.equal r s
      | Bits.Prefix -> Bits.is_strict_prefix r s
      | Bits.Extension -> Bits.is_strict_prefix s r
      | Bits.Incomparable -> Bits.incomparable r s)

let prop_common_prefix =
  QCheck2.Test.make ~name:"common_prefix is the greatest lower bound"
    ~count:500
    QCheck2.Gen.(
      pair (Vstamp_test_support.Gen.bits ()) (Vstamp_test_support.Gen.bits ()))
    (fun (r, s) ->
      let p = Bits.common_prefix r s in
      Bits.is_prefix p r && Bits.is_prefix p s
      &&
      (* one digit longer is no longer common *)
      match
        ( Bits.prefix_compare (Bits.snoc p Bits.Zero) r,
          Bits.prefix_compare (Bits.snoc p Bits.Zero) s,
          Bits.prefix_compare (Bits.snoc p Bits.One) r,
          Bits.prefix_compare (Bits.snoc p Bits.One) s )
      with
      | (Bits.Equal | Bits.Prefix), (Bits.Equal | Bits.Prefix), _, _ -> false
      | _, _, (Bits.Equal | Bits.Prefix), (Bits.Equal | Bits.Prefix) -> false
      | _ -> true)

let prop_sibling_involutive =
  QCheck2.Test.make ~name:"sibling is an involution with the same parent"
    ~count:500
    (Vstamp_test_support.Gen.bits ())
    (fun s ->
      match Bits.sibling s with
      | None -> Bits.is_epsilon s
      | Some sib ->
          Bits.sibling sib = Some s
          && Bits.parent sib = Bits.parent s
          && Bits.incomparable s sib)

let prop_string_roundtrip =
  QCheck2.Test.make ~name:"of_string . to_string = id" ~count:500
    (Vstamp_test_support.Gen.bits ~max_len:16 ())
    (fun s -> Bits.equal s (Bits.of_string (Bits.to_string s)))

let prop_digits_roundtrip =
  QCheck2.Test.make ~name:"of_digits . to_digits = id" ~count:500
    (Vstamp_test_support.Gen.bits ~max_len:16 ())
    (fun s -> Bits.equal s (Bits.of_digits (Bits.to_digits s)))

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "bits"
    [
      ( "construction",
        [
          Alcotest.test_case "epsilon" `Quick test_epsilon;
          Alcotest.test_case "of/to string" `Quick test_of_to_string;
          Alcotest.test_case "of_string invalid" `Quick test_of_string_invalid;
          Alcotest.test_case "snoc/cons" `Quick test_snoc_cons;
          Alcotest.test_case "append" `Quick test_append;
          Alcotest.test_case "uncons/unsnoc" `Quick test_uncons_unsnoc;
          Alcotest.test_case "get" `Quick test_get;
        ] );
      ( "prefix order",
        [
          Alcotest.test_case "is_prefix" `Quick test_is_prefix;
          Alcotest.test_case "strict prefix" `Quick test_strict_prefix;
          Alcotest.test_case "incomparable" `Quick test_incomparable;
          Alcotest.test_case "prefix_compare" `Quick test_prefix_compare;
          Alcotest.test_case "common_prefix" `Quick test_common_prefix;
          Alcotest.test_case "sibling/parent" `Quick test_sibling_parent;
        ] );
      ( "total orders",
        [
          Alcotest.test_case "shortlex" `Quick test_shortlex;
          Alcotest.test_case "shortlex prefix first" `Quick
            test_shortlex_prefix_first;
          Alcotest.test_case "lex vs shortlex" `Quick test_compare_lex;
        ] );
      ( "digits",
        [
          Alcotest.test_case "digit conversions" `Quick test_digits;
          Alcotest.test_case "all_of_length" `Quick test_all_of_length;
          Alcotest.test_case "hash/equal" `Quick test_hash_equal;
        ] );
      ( "properties",
        qcheck
          [
            prop_prefix_partial_order;
            prop_prefix_compare_consistent;
            prop_common_prefix;
            prop_sibling_involutive;
            prop_string_roundtrip;
            prop_digits_roundtrip;
          ] );
    ]
