(* Exhaustive verification on small universes.

   Property tests sample; these tests enumerate.  The name universe of
   depth <= d is finite (a(d) = 1 + a(d-1)^2 antichains: 5 at depth 1,
   26 at depth 2, 677 at depth 3), so the lattice laws, the stamp
   invariants and the reduction's properties can be checked on EVERY
   value, and the main theorem on EVERY execution up to a small size. *)

open Vstamp_core

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

(* all antichains of strings of length <= depth, as tries *)
let rec all_names depth =
  if depth = 0 then [ Name_tree.Empty; Name_tree.Mark ]
  else
    let subs = all_names (depth - 1) in
    Name_tree.Mark
    :: List.concat_map
         (fun l ->
           List.filter_map
             (fun r ->
               match Name_tree.node l r with
               | Name_tree.Empty -> None
               | n -> Some n)
             subs)
         subs
    @ [ Name_tree.Empty ]

let names2 = all_names 2

let names3 = all_names 3

let test_universe_sizes () =
  check_int "depth 0" 2 (List.length (all_names 0));
  check_int "depth 1" 5 (List.length (all_names 1));
  check_int "depth 2" 26 (List.length names2);
  check_int "depth 3" 677 (List.length names3)

let test_all_well_formed () =
  check_bool "every enumerated name is well-formed" true
    (List.for_all Name_tree.well_formed names3)

let test_universe_distinct () =
  let sorted = List.sort_uniq Name_tree.compare names3 in
  check_int "no duplicates" 677 (List.length sorted)

(* --- lattice laws, exhaustively at depth 2 (26^3 = 17 576 triples) --- *)

let test_partial_order_exhaustive () =
  check_bool "reflexive" true (List.for_all (fun x -> Name_tree.leq x x) names3);
  check_bool "antisymmetric" true
    (List.for_all
       (fun x ->
         List.for_all
           (fun y ->
             (not (Name_tree.leq x y && Name_tree.leq y x)) || Name_tree.equal x y)
           names3)
       names3)

let test_transitive_exhaustive_d2 () =
  check_bool "transitive at depth 2" true
    (List.for_all
       (fun x ->
         List.for_all
           (fun y ->
             (not (Name_tree.leq x y))
             || List.for_all
                  (fun z -> (not (Name_tree.leq y z)) || Name_tree.leq x z)
                  names2)
           names2)
       names2)

let test_lattice_laws_exhaustive_d2 () =
  check_bool "join is lub, meet is glb" true
    (List.for_all
       (fun x ->
         List.for_all
           (fun y ->
             let j = Name_tree.join x y and m = Name_tree.meet x y in
             Name_tree.leq x j && Name_tree.leq y j && Name_tree.leq m x
             && Name_tree.leq m y
             && Name_tree.equal (Name_tree.join x y) (Name_tree.join y x)
             && Name_tree.equal (Name_tree.meet x y) (Name_tree.meet y x)
             && Name_tree.equal (Name_tree.join x (Name_tree.meet x y)) x
             && Name_tree.equal (Name_tree.meet x (Name_tree.join x y)) x)
           names2)
       names2)

let test_distributivity_exhaustive_d2 () =
  (* down-set lattices are distributive; verify on all 17 576 triples *)
  check_bool "distributive" true
    (List.for_all
       (fun x ->
         List.for_all
           (fun y ->
             List.for_all
               (fun z ->
                 Name_tree.equal
                   (Name_tree.meet x (Name_tree.join y z))
                   (Name_tree.join (Name_tree.meet x y) (Name_tree.meet x z)))
               names2)
           names2)
       names2)

(* --- reduction, exhaustively over all I1-satisfying stamps at d3 --- *)

let test_reduction_exhaustive () =
  let checked = ref 0 in
  List.iter
    (fun i ->
      List.iter
        (fun u ->
          if Name_tree.leq u i then begin
            incr checked;
            let u', i' = Name_tree.reduce_stamp ~u ~id:i in
            assert (Name_tree.well_formed u' && Name_tree.well_formed i');
            assert (Name_tree.leq u' i');
            (* idempotent *)
            let u'', i'' = Name_tree.reduce_stamp ~u:u' ~id:i' in
            assert (Name_tree.equal u' u'' && Name_tree.equal i' i'');
            (* never grows *)
            assert (Name_tree.total_bits u' <= Name_tree.total_bits u);
            assert (Name_tree.total_bits i' <= Name_tree.total_bits i)
          end)
        names3)
    names3;
  check_bool
    (Printf.sprintf "a meaningful number of I1 pairs checked (%d)" !checked)
    true
    (!checked > 5_000)

let test_reduction_agrees_with_list_exhaustive () =
  let to_list_name n = Name.of_list (Name_tree.to_list n) in
  List.iter
    (fun i ->
      List.iter
        (fun u ->
          if Name_tree.leq u i then begin
            let tu, ti = Name_tree.reduce_stamp ~u ~id:i in
            let lu, li =
              Name.reduce_stamp ~u:(to_list_name u) ~id:(to_list_name i)
            in
            assert (Name.equal lu (to_list_name tu));
            assert (Name.equal li (to_list_name ti))
          end)
        names2)
    names2;
  check_bool "done" true true

(* --- the main theorem on ALL small executions --- *)

(* enumerate every valid trace of exactly [len] ops with frontier <= cap *)
let all_traces ~len ~cap =
  let rec extend size trace k =
    if k = 0 then [ List.rev trace ]
    else
      let updates =
        List.init size (fun i -> (Execution.Update i, size))
      in
      let forks =
        if size < cap then List.init size (fun i -> (Execution.Fork i, size + 1))
        else []
      in
      let joins =
        if size >= 2 then
          List.concat
            (List.init size (fun i ->
                 List.filter_map
                   (fun j -> if i <> j then Some (Execution.Join (i, j), size - 1) else None)
                   (List.init size Fun.id)))
        else []
      in
      List.concat_map
        (fun (op, size') -> extend size' (op :: trace) (k - 1))
        (updates @ forks @ joins)
  in
  extend 1 [] len

module Corr = Correspondence.Make (Stamp.Over_tree)

let check_all_traces len cap =
  let traces = all_traces ~len ~cap in
  List.iter
    (fun ops ->
      let s_steps = Execution.Run_stamps.run_steps ops in
      let h_steps = Execution.Run_histories.run_steps ops in
      List.iter2
        (fun ss hs ->
          match Corr.set_counterexample ss hs with
          | None -> ()
          | Some c ->
              Alcotest.failf "trace %s: %a"
                (Vstamp_test_support.Gen.trace_print ops)
                Corr.pp_counterexample c)
        s_steps h_steps;
      (* invariants at every step too *)
      List.iter
        (fun ss ->
          if not (Invariants.all ss) then
            Alcotest.failf "invariants broken on %s"
              (Vstamp_test_support.Gen.trace_print ops))
        s_steps)
    traces;
  List.length traces

let test_prop51_all_traces_len4 () =
  let n = check_all_traces 4 4 in
  check_bool "checked hundreds of executions" true (n > 300)

let test_prop51_all_traces_len5 () =
  let n = check_all_traces 5 3 in
  check_bool "checked hundreds of executions" true (n > 500)

(* non-reducing model on the same exhaustive trace set *)
let test_prop51_nonreducing_all_traces () =
  let traces = all_traces ~len:4 ~cap:4 in
  List.iter
    (fun ops ->
      let stamps = Execution.Run_stamps_nonreducing.run ops in
      let hists = Execution.Run_histories.run ops in
      match Corr.set_counterexample stamps hists with
      | None -> ()
      | Some c ->
          Alcotest.failf "trace %s: %a"
            (Vstamp_test_support.Gen.trace_print ops)
            Corr.pp_counterexample c)
    traces;
  check_bool "done" true true

(* ITC on the same exhaustive trace set: every length-4 execution agrees
   with the oracle pairwise *)
module Run_itc = Execution.Run (struct
  type t = Vstamp_itc.Itc.t

  type state = unit

  let initial = ((), Vstamp_itc.Itc.seed)

  let update () x = ((), Vstamp_itc.Itc.update x)

  let fork () x = ((), Vstamp_itc.Itc.fork x)

  let join () a b = ((), Vstamp_itc.Itc.join a b)
end)

let test_itc_all_traces_len4 () =
  let traces = all_traces ~len:4 ~cap:4 in
  List.iter
    (fun ops ->
      let stamps = Array.of_list (Run_itc.run ops) in
      let hists = Array.of_list (Execution.Run_histories.run ops) in
      Array.iteri
        (fun x sx ->
          Array.iteri
            (fun y sy ->
              if
                Vstamp_itc.Itc.leq sx sy
                <> Causal_history.subset hists.(x) hists.(y)
              then
                Alcotest.failf "ITC disagrees on %s at (%d,%d)"
                  (Vstamp_test_support.Gen.trace_print ops)
                  x y)
            stamps)
        stamps)
    traces;
  check_bool "done" true true

(* wire codec round trip over the whole depth-3 name universe *)
let test_wire_roundtrip_universe () =
  List.iter
    (fun n ->
      match Vstamp_codec.Wire.name_of_string (Vstamp_codec.Wire.name_to_string n) with
      | Ok n' -> assert (Name_tree.equal n n')
      | Error e ->
          Alcotest.failf "decode failed on %s: %a" (Name_tree.to_string n)
            Vstamp_codec.Wire.pp_error e)
    names3;
  check_bool "all 677 names round trip" true true

(* text codec round trip over the universe *)
let test_text_roundtrip_universe () =
  List.iter
    (fun u ->
      List.iter
        (fun i ->
          if Name_tree.leq u i then
            let s = Stamp.make ~update:u ~id:i in
            match Vstamp_codec.Text.stamp_of_string (Stamp.to_string s) with
            | Ok s' -> assert (Stamp.equal s s')
            | Error e ->
                Alcotest.failf "parse failed on %s: %a" (Stamp.to_string s)
                  Vstamp_codec.Text.pp_error e)
        names2)
    names2;
  check_bool "all depth-2 stamps round trip" true true

let () =
  Alcotest.run "exhaustive"
    [
      ( "universe",
        [
          Alcotest.test_case "sizes" `Quick test_universe_sizes;
          Alcotest.test_case "well-formed" `Quick test_all_well_formed;
          Alcotest.test_case "distinct" `Quick test_universe_distinct;
        ] );
      ( "lattice laws",
        [
          Alcotest.test_case "partial order (d3)" `Quick
            test_partial_order_exhaustive;
          Alcotest.test_case "transitivity (d2)" `Quick
            test_transitive_exhaustive_d2;
          Alcotest.test_case "lub/glb/absorption (d2)" `Quick
            test_lattice_laws_exhaustive_d2;
          Alcotest.test_case "distributivity (d2)" `Quick
            test_distributivity_exhaustive_d2;
        ] );
      ( "reduction",
        [
          Alcotest.test_case "all I1 stamps at d3" `Slow
            test_reduction_exhaustive;
          Alcotest.test_case "agrees with list impl (d2)" `Quick
            test_reduction_agrees_with_list_exhaustive;
        ] );
      ( "main theorem",
        [
          Alcotest.test_case "Prop 5.1 on all len-4 traces" `Slow
            test_prop51_all_traces_len4;
          Alcotest.test_case "Prop 5.1 on all len-5 traces (cap 3)" `Slow
            test_prop51_all_traces_len5;
          Alcotest.test_case "non-reducing model too" `Slow
            test_prop51_nonreducing_all_traces;
          Alcotest.test_case "ITC on all len-4 traces" `Slow
            test_itc_all_traces_len4;
        ] );
      ( "codecs",
        [
          Alcotest.test_case "wire round trip, whole universe" `Quick
            test_wire_roundtrip_universe;
          Alcotest.test_case "text round trip, depth-2 stamps" `Quick
            test_text_roundtrip_universe;
        ] );
    ]
