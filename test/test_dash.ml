(* Registry.diff (the rate arithmetic behind vstamp top) and the Dash
   frame renderer. *)

open Vstamp_obs

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_float = Alcotest.(check (float 1e-9))

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec go i =
    i + m <= n && (String.sub haystack i m = needle || go (i + 1))
  in
  m = 0 || go 0

let find_delta name deltas =
  match List.find_opt (fun d -> d.Registry.name = name) deltas with
  | Some d -> d
  | None -> Alcotest.failf "no delta for %s" name

(* Build a to_json snapshot from a quick throwaway registry. *)
let snapshot build =
  let r = Registry.create () in
  build r;
  Registry.to_json r

(* --- Registry.diff --- *)

let test_diff_counter_rate () =
  let prev = snapshot (fun r -> Metric.add (Registry.counter r "ops") 100) in
  let cur = snapshot (fun r -> Metric.add (Registry.counter r "ops") 350) in
  let deltas = Registry.diff ~elapsed_s:5.0 ~prev cur in
  let d = find_delta "ops" deltas in
  check_bool "kind" true (d.Registry.kind = Registry.Kcounter);
  check_float "value" 350.0 d.Registry.value;
  check_float "change" 250.0 d.Registry.change;
  check_float "rate" 50.0 d.Registry.rate;
  check_bool "no reset" false d.Registry.reset

let test_diff_zero_elapsed () =
  (* two snapshots at the same instant: no rate information, never a
     division by zero *)
  let prev = snapshot (fun r -> Metric.add (Registry.counter r "ops") 1) in
  let cur = snapshot (fun r -> Metric.add (Registry.counter r "ops") 100) in
  List.iter
    (fun elapsed_s ->
      let d = find_delta "ops" (Registry.diff ~elapsed_s ~prev cur) in
      check_float
        (Printf.sprintf "rate at elapsed %g" elapsed_s)
        0.0 d.Registry.rate;
      check_float "change still reported" 99.0 d.Registry.change)
    [ 0.0; -1.0 ]

let test_diff_counter_reset () =
  (* the counter went backwards: the process restarted, so the whole
     current value is the increase since the restart *)
  let prev = snapshot (fun r -> Metric.add (Registry.counter r "ops") 1000) in
  let cur = snapshot (fun r -> Metric.add (Registry.counter r "ops") 40) in
  let d = find_delta "ops" (Registry.diff ~elapsed_s:4.0 ~prev cur) in
  check_bool "reset flagged" true d.Registry.reset;
  check_float "change is the post-reset count" 40.0 d.Registry.change;
  check_float "rate from the post-reset count" 10.0 d.Registry.rate

let test_diff_gauge_moves_freely () =
  let prev = snapshot (fun r -> Metric.set (Registry.gauge r "depth") 9.0) in
  let cur = snapshot (fun r -> Metric.set (Registry.gauge r "depth") 4.0) in
  let d = find_delta "depth" (Registry.diff ~elapsed_s:2.0 ~prev cur) in
  check_bool "kind" true (d.Registry.kind = Registry.Kgauge);
  check_bool "gauges never reset" false d.Registry.reset;
  check_float "negative change" (-5.0) d.Registry.change;
  check_float "negative rate" (-2.5) d.Registry.rate

let test_diff_new_metric_counts_from_zero () =
  let prev = snapshot (fun _ -> ()) in
  let cur = snapshot (fun r -> Metric.add (Registry.counter r "fresh") 10) in
  let d = find_delta "fresh" (Registry.diff ~elapsed_s:2.0 ~prev cur) in
  check_float "change" 10.0 d.Registry.change;
  check_float "rate" 5.0 d.Registry.rate;
  check_bool "not a reset" false d.Registry.reset

let test_diff_histogram_uses_count () =
  let fill n r =
    let h = Registry.histogram r "lat" in
    for i = 1 to n do
      Metric.observe_int h i
    done
  in
  let prev = snapshot (fill 10) and cur = snapshot (fill 30) in
  let d = find_delta "lat" (Registry.diff ~elapsed_s:10.0 ~prev cur) in
  check_bool "kind" true (d.Registry.kind = Registry.Khistogram);
  check_float "value is observation count" 30.0 d.Registry.value;
  check_float "rate" 2.0 d.Registry.rate

let test_diff_sorted_and_dropped () =
  let prev = snapshot (fun r -> Metric.inc (Registry.counter r "gone")) in
  let cur =
    snapshot (fun r ->
        Metric.inc (Registry.counter r "b");
        Metric.inc (Registry.counter r "a"))
  in
  let deltas = Registry.diff ~elapsed_s:1.0 ~prev cur in
  check_int "only current metrics" 2 (List.length deltas);
  check_bool "sorted by name" true
    (List.map (fun d -> d.Registry.name) deltas = [ "a"; "b" ])

(* Labelled series are independent time series: a label set appearing
   between snapshots counts from zero, a disappearing one is dropped,
   and a relabel (old set gone, new set present) is both at once —
   never a reset on the surviving series. *)

let lab base kv = Registry.with_labels base [ kv ]

let test_diff_label_series_appears () =
  let prev =
    snapshot (fun r ->
        Metric.add (Registry.counter r (lab "ops" ("op", "put"))) 10)
  in
  let cur =
    snapshot (fun r ->
        Metric.add (Registry.counter r (lab "ops" ("op", "put"))) 25;
        Metric.add (Registry.counter r (lab "ops" ("op", "del"))) 7)
  in
  let deltas = Registry.diff ~elapsed_s:1.0 ~prev cur in
  check_int "both series reported" 2 (List.length deltas);
  let fresh = find_delta {|ops{op="del"}|} deltas in
  check_float "new label set counts from zero" 7.0 fresh.Registry.change;
  check_bool "not a reset" false fresh.Registry.reset;
  let old = find_delta {|ops{op="put"}|} deltas in
  check_float "existing series unaffected" 15.0 old.Registry.change

let test_diff_label_series_disappears () =
  let prev =
    snapshot (fun r ->
        Metric.add (Registry.counter r (lab "ops" ("op", "put"))) 10;
        Metric.add (Registry.counter r (lab "ops" ("op", "del"))) 5)
  in
  let cur =
    snapshot (fun r ->
        Metric.add (Registry.counter r (lab "ops" ("op", "put"))) 12)
  in
  let deltas = Registry.diff ~elapsed_s:1.0 ~prev cur in
  check_int "vanished series dropped" 1 (List.length deltas);
  check_bool "survivor keeps its labelled name" true
    ((find_delta {|ops{op="put"}|} deltas).Registry.change = 2.0)

let test_diff_relabeled_series () =
  (* e.g. a replica gauge renumbered between scrapes: the old series
     vanishes, the new one starts fresh — no cross-talk between them *)
  let prev =
    snapshot (fun r ->
        Metric.set (Registry.gauge r (lab "vstamp_replica_lag" ("replica", "0"))) 4.0)
  in
  let cur =
    snapshot (fun r ->
        Metric.set (Registry.gauge r (lab "vstamp_replica_lag" ("replica", "3"))) 9.0)
  in
  let deltas = Registry.diff ~elapsed_s:1.0 ~prev cur in
  check_int "only the new label set" 1 (List.length deltas);
  let d = find_delta {|vstamp_replica_lag{replica="3"}|} deltas in
  check_float "change measured from zero, not from the old series" 9.0
    d.Registry.change;
  check_bool "no reset on a relabel" false d.Registry.reset

let test_diff_label_value_not_confused_with_base () =
  (* a bare name and a labelled variant of the same base are distinct
     series; dropping one never disturbs the other *)
  let prev =
    snapshot (fun r ->
        Metric.add (Registry.counter r "ops") 3;
        Metric.add (Registry.counter r (lab "ops" ("op", "put"))) 8)
  in
  let cur = snapshot (fun r -> Metric.add (Registry.counter r "ops") 5) in
  let deltas = Registry.diff ~elapsed_s:1.0 ~prev cur in
  check_int "labelled series dropped, bare kept" 1 (List.length deltas);
  let d = find_delta "ops" deltas in
  check_float "bare series diffed against itself" 2.0 d.Registry.change;
  check_bool "not a reset" false d.Registry.reset

(* --- Dash.render --- *)

let two_snapshots () =
  let prev =
    snapshot (fun r ->
        Metric.add (Registry.counter r "kvs_ops_total{op=\"put\"}") 10;
        Metric.set (Registry.gauge r "core_depth") 3.0)
  in
  let cur =
    snapshot (fun r ->
        Metric.add (Registry.counter r "kvs_ops_total{op=\"put\"}") 110;
        Metric.set (Registry.gauge r "core_depth") 5.0;
        let h = Registry.histogram r "sim_op_ns" in
        List.iter (Metric.observe h) [ 100.0; 200.0; 300.0 ])
  in
  (prev, cur)

let test_render_plain_frame () =
  let prev, cur = two_snapshots () in
  let deltas = Registry.diff ~elapsed_s:2.0 ~prev cur in
  let frame =
    Dash.render ~color:false ~deltas ~snapshot:cur
      ~events:[ "{\"event\":\"soak.tick\"}" ]
      ~health:
        (Jsonx.Obj
           [
             ("status", Jsonx.String "ok");
             ("uptime_s", Jsonx.Float 12.5);
             ("events_total", Jsonx.Int 7);
             ("invariant_violations", Jsonx.Int 0);
           ])
      ()
  in
  check_bool "no ANSI codes when color off" false (contains frame "\x1b[");
  check_bool "header status" true (contains frame "status ok");
  check_bool "rates section" true (contains frame "rates (counters");
  check_bool "counter row with rate" true (contains frame "50/s");
  check_bool "gauge row" true (contains frame "core_depth");
  check_bool "gauge change" true (contains frame "+2");
  check_bool "histogram section" true (contains frame "sim_op_ns");
  check_bool "events tail" true (contains frame "soak.tick")

let test_render_flags_reset () =
  let prev = snapshot (fun r -> Metric.add (Registry.counter r "ops") 500) in
  let cur = snapshot (fun r -> Metric.add (Registry.counter r "ops") 5) in
  let deltas = Registry.diff ~elapsed_s:1.0 ~prev cur in
  let frame = Dash.render ~color:false ~deltas ~snapshot:cur () in
  check_bool "reset marker shown" true (contains frame "reset")

let test_render_color_and_clear () =
  let prev, cur = two_snapshots () in
  let deltas = Registry.diff ~elapsed_s:2.0 ~prev cur in
  let frame = Dash.render ~color:true ~deltas ~snapshot:cur () in
  check_bool "ANSI styling present" true (contains frame "\x1b[");
  check_bool "clear sequence is ANSI" true
    (contains Dash.clear_screen "\x1b[2J")

let test_render_divergence_panel () =
  let cur =
    snapshot (fun r ->
        Metric.set (Registry.gauge r {|vstamp_replica_lag{replica="0"}|}) 2.0;
        Metric.set
          (Registry.gauge r {|vstamp_divergence_pairs{kind="concurrent"}|})
          1.0;
        Metric.set (Registry.gauge r "vstamp_frontier_width") 2.0;
        Metric.set (Registry.gauge r "core_depth") 3.0)
  in
  let deltas = Registry.diff ~elapsed_s:1.0 ~prev:(Jsonx.Obj []) cur in
  let frame = Dash.render ~color:false ~deltas ~snapshot:cur () in
  check_bool "divergence section present" true
    (contains frame "divergence (replica lag, pairs, convergence)");
  check_bool "lag gauge in the panel" true
    (contains frame {|vstamp_replica_lag{replica="0"}|});
  (* without any convergence family the panel disappears *)
  let plain = snapshot (fun r -> Metric.set (Registry.gauge r "d") 1.0) in
  let deltas = Registry.diff ~elapsed_s:1.0 ~prev:(Jsonx.Obj []) plain in
  let frame = Dash.render ~color:false ~deltas ~snapshot:plain () in
  check_bool "no empty divergence section" false
    (contains frame "divergence (replica lag, pairs, convergence)")

let test_render_idspace_panel () =
  let cur =
    snapshot (fun r ->
        Metric.set (Registry.gauge r "vstamp_idspace_live_replicas") 5.0;
        Metric.set (Registry.gauge r "vstamp_idspace_id_bits") 12.0;
        Metric.set (Registry.gauge r "sim_churn_population") 5.0;
        Metric.set (Registry.gauge r "core_depth") 3.0)
  in
  let deltas = Registry.diff ~elapsed_s:1.0 ~prev:(Jsonx.Obj []) cur in
  let frame = Dash.render ~color:false ~deltas ~snapshot:cur () in
  check_bool "idspace section present" true
    (contains frame "identity space (fragments, bits, churn)");
  check_bool "idspace gauge in the panel" true
    (contains frame "vstamp_idspace_live_replicas");
  check_bool "churn gauge in the panel" true
    (contains frame "sim_churn_population");
  (* without any idspace family the panel disappears *)
  let plain = snapshot (fun r -> Metric.set (Registry.gauge r "d") 1.0) in
  let deltas = Registry.diff ~elapsed_s:1.0 ~prev:(Jsonx.Obj []) plain in
  let frame = Dash.render ~color:false ~deltas ~snapshot:plain () in
  check_bool "no empty idspace section" false
    (contains frame "identity space (fragments, bits, churn)")

(* --- sparklines + flight-recorder panels --- *)

let test_sparkline () =
  Alcotest.(check string) "empty" "" (Dash.sparkline []);
  Alcotest.(check string) "flat series renders mid-height" "▄▄▄"
    (Dash.sparkline [ 5.; 5.; 5. ]);
  Alcotest.(check string) "extremes" "▁█" (Dash.sparkline [ 0.; 7. ]);
  Alcotest.(check string) "full ramp" "▁▂▃▄▅▆▇█"
    (Dash.sparkline [ 0.; 1.; 2.; 3.; 4.; 5.; 6.; 7. ]);
  Alcotest.(check string) "width keeps the newest values" "▁█"
    (Dash.sparkline ~width:2 [ 0.; 1.; 2.; 3.; 4.; 5.; 6.; 7. ]);
  Alcotest.(check string) "non-finite values dropped" "▁█"
    (Dash.sparkline [ Float.nan; 1.; Float.infinity; 2. ]);
  Alcotest.(check string) "all non-finite is empty" ""
    (Dash.sparkline [ Float.nan; Float.infinity ])

let test_render_alerts_panel () =
  let alerts =
    Jsonx.Obj
      [
        ( "rules",
          Jsonx.List
            [
              Jsonx.Obj
                [
                  ("name", Jsonx.String "hot");
                  ("rule", Jsonx.String "hot ops > 1");
                  ("state", Jsonx.String "firing");
                  ("value", Jsonx.Float 3.);
                ];
              Jsonx.Obj
                [
                  ("name", Jsonx.String "cold");
                  ("rule", Jsonx.String "cold ops < 0");
                  ("state", Jsonx.String "inactive");
                ];
            ] );
      ]
  in
  let cur = snapshot (fun r -> Metric.inc (Registry.counter r "ops")) in
  let deltas = Registry.diff ~elapsed_s:1.0 ~prev:(Jsonx.Obj []) cur in
  let frame = Dash.render ~color:false ~alerts ~deltas ~snapshot:cur () in
  check_bool "alerts section" true (contains frame "alerts");
  check_bool "firing rule shown" true (contains frame "hot");
  check_bool "firing state shown" true (contains frame "firing");
  check_bool "inactive rule shown" true (contains frame "inactive");
  (* no rules: no panel *)
  let frame =
    Dash.render ~color:false
      ~alerts:(Jsonx.Obj [ ("rules", Jsonx.List []) ])
      ~deltas ~snapshot:cur ()
  in
  check_bool "no empty alerts section" false (contains frame "alerts")

let test_render_history_panel () =
  let cur = snapshot (fun r -> Metric.inc (Registry.counter r "ops")) in
  let deltas = Registry.diff ~elapsed_s:1.0 ~prev:(Jsonx.Obj []) cur in
  let frame =
    Dash.render ~color:false
      ~sparks:[ ("soak_iterations_total", [ 1.; 2.; 3.; 4. ]) ]
      ~deltas ~snapshot:cur ()
  in
  check_bool "history section" true
    (contains frame "history (flight recorder)");
  check_bool "series name shown" true (contains frame "soak_iterations_total");
  check_bool "sparkline glyphs rendered" true (contains frame "█");
  (* empty or all-NaN series render no panel *)
  let frame =
    Dash.render ~color:false
      ~sparks:[ ("dead", [ Float.nan ]) ]
      ~deltas ~snapshot:cur ()
  in
  check_bool "no empty history section" false
    (contains frame "history (flight recorder)")

let test_render_truncates_width () =
  let long = String.make 300 'x' in
  let cur = snapshot (fun r -> Metric.inc (Registry.counter r long)) in
  let deltas = Registry.diff ~elapsed_s:1.0 ~prev:(Jsonx.Obj []) cur in
  let frame = Dash.render ~color:false ~width:60 ~deltas ~snapshot:cur () in
  List.iter
    (fun l ->
      check_bool
        (Printf.sprintf "line within width (%d)" (String.length l))
        true
        (String.length l <= 64))
    (String.split_on_char '\n' frame)

let () =
  Alcotest.run "dash"
    [
      ( "registry-diff",
        [
          Alcotest.test_case "counter rate" `Quick test_diff_counter_rate;
          Alcotest.test_case "zero elapsed time" `Quick test_diff_zero_elapsed;
          Alcotest.test_case "counter reset" `Quick test_diff_counter_reset;
          Alcotest.test_case "gauge moves freely" `Quick
            test_diff_gauge_moves_freely;
          Alcotest.test_case "new metric from zero" `Quick
            test_diff_new_metric_counts_from_zero;
          Alcotest.test_case "histogram count rate" `Quick
            test_diff_histogram_uses_count;
          Alcotest.test_case "sorted, absent dropped" `Quick
            test_diff_sorted_and_dropped;
          Alcotest.test_case "label set appears" `Quick
            test_diff_label_series_appears;
          Alcotest.test_case "label set disappears" `Quick
            test_diff_label_series_disappears;
          Alcotest.test_case "relabeled series" `Quick
            test_diff_relabeled_series;
          Alcotest.test_case "bare vs labelled base" `Quick
            test_diff_label_value_not_confused_with_base;
        ] );
      ( "render",
        [
          Alcotest.test_case "plain frame" `Quick test_render_plain_frame;
          Alcotest.test_case "reset flag" `Quick test_render_flags_reset;
          Alcotest.test_case "color and clear" `Quick
            test_render_color_and_clear;
          Alcotest.test_case "width truncation" `Quick
            test_render_truncates_width;
          Alcotest.test_case "divergence panel" `Quick
            test_render_divergence_panel;
          Alcotest.test_case "idspace panel" `Quick test_render_idspace_panel;
          Alcotest.test_case "sparkline" `Quick test_sparkline;
          Alcotest.test_case "alerts panel" `Quick test_render_alerts_panel;
          Alcotest.test_case "history panel" `Quick test_render_history_panel;
        ] );
    ]
