(* Registry.diff (the rate arithmetic behind vstamp top) and the Dash
   frame renderer. *)

open Vstamp_obs

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_float = Alcotest.(check (float 1e-9))

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec go i =
    i + m <= n && (String.sub haystack i m = needle || go (i + 1))
  in
  m = 0 || go 0

let find_delta name deltas =
  match List.find_opt (fun d -> d.Registry.name = name) deltas with
  | Some d -> d
  | None -> Alcotest.failf "no delta for %s" name

(* Build a to_json snapshot from a quick throwaway registry. *)
let snapshot build =
  let r = Registry.create () in
  build r;
  Registry.to_json r

(* --- Registry.diff --- *)

let test_diff_counter_rate () =
  let prev = snapshot (fun r -> Metric.add (Registry.counter r "ops") 100) in
  let cur = snapshot (fun r -> Metric.add (Registry.counter r "ops") 350) in
  let deltas = Registry.diff ~elapsed_s:5.0 ~prev cur in
  let d = find_delta "ops" deltas in
  check_bool "kind" true (d.Registry.kind = Registry.Kcounter);
  check_float "value" 350.0 d.Registry.value;
  check_float "change" 250.0 d.Registry.change;
  check_float "rate" 50.0 d.Registry.rate;
  check_bool "no reset" false d.Registry.reset

let test_diff_zero_elapsed () =
  (* two snapshots at the same instant: no rate information, never a
     division by zero *)
  let prev = snapshot (fun r -> Metric.add (Registry.counter r "ops") 1) in
  let cur = snapshot (fun r -> Metric.add (Registry.counter r "ops") 100) in
  List.iter
    (fun elapsed_s ->
      let d = find_delta "ops" (Registry.diff ~elapsed_s ~prev cur) in
      check_float
        (Printf.sprintf "rate at elapsed %g" elapsed_s)
        0.0 d.Registry.rate;
      check_float "change still reported" 99.0 d.Registry.change)
    [ 0.0; -1.0 ]

let test_diff_counter_reset () =
  (* the counter went backwards: the process restarted, so the whole
     current value is the increase since the restart *)
  let prev = snapshot (fun r -> Metric.add (Registry.counter r "ops") 1000) in
  let cur = snapshot (fun r -> Metric.add (Registry.counter r "ops") 40) in
  let d = find_delta "ops" (Registry.diff ~elapsed_s:4.0 ~prev cur) in
  check_bool "reset flagged" true d.Registry.reset;
  check_float "change is the post-reset count" 40.0 d.Registry.change;
  check_float "rate from the post-reset count" 10.0 d.Registry.rate

let test_diff_gauge_moves_freely () =
  let prev = snapshot (fun r -> Metric.set (Registry.gauge r "depth") 9.0) in
  let cur = snapshot (fun r -> Metric.set (Registry.gauge r "depth") 4.0) in
  let d = find_delta "depth" (Registry.diff ~elapsed_s:2.0 ~prev cur) in
  check_bool "kind" true (d.Registry.kind = Registry.Kgauge);
  check_bool "gauges never reset" false d.Registry.reset;
  check_float "negative change" (-5.0) d.Registry.change;
  check_float "negative rate" (-2.5) d.Registry.rate

let test_diff_new_metric_counts_from_zero () =
  let prev = snapshot (fun _ -> ()) in
  let cur = snapshot (fun r -> Metric.add (Registry.counter r "fresh") 10) in
  let d = find_delta "fresh" (Registry.diff ~elapsed_s:2.0 ~prev cur) in
  check_float "change" 10.0 d.Registry.change;
  check_float "rate" 5.0 d.Registry.rate;
  check_bool "not a reset" false d.Registry.reset

let test_diff_histogram_uses_count () =
  let fill n r =
    let h = Registry.histogram r "lat" in
    for i = 1 to n do
      Metric.observe_int h i
    done
  in
  let prev = snapshot (fill 10) and cur = snapshot (fill 30) in
  let d = find_delta "lat" (Registry.diff ~elapsed_s:10.0 ~prev cur) in
  check_bool "kind" true (d.Registry.kind = Registry.Khistogram);
  check_float "value is observation count" 30.0 d.Registry.value;
  check_float "rate" 2.0 d.Registry.rate

let test_diff_sorted_and_dropped () =
  let prev = snapshot (fun r -> Metric.inc (Registry.counter r "gone")) in
  let cur =
    snapshot (fun r ->
        Metric.inc (Registry.counter r "b");
        Metric.inc (Registry.counter r "a"))
  in
  let deltas = Registry.diff ~elapsed_s:1.0 ~prev cur in
  check_int "only current metrics" 2 (List.length deltas);
  check_bool "sorted by name" true
    (List.map (fun d -> d.Registry.name) deltas = [ "a"; "b" ])

(* --- Dash.render --- *)

let two_snapshots () =
  let prev =
    snapshot (fun r ->
        Metric.add (Registry.counter r "kvs_ops_total{op=\"put\"}") 10;
        Metric.set (Registry.gauge r "core_depth") 3.0)
  in
  let cur =
    snapshot (fun r ->
        Metric.add (Registry.counter r "kvs_ops_total{op=\"put\"}") 110;
        Metric.set (Registry.gauge r "core_depth") 5.0;
        let h = Registry.histogram r "sim_op_ns" in
        List.iter (Metric.observe h) [ 100.0; 200.0; 300.0 ])
  in
  (prev, cur)

let test_render_plain_frame () =
  let prev, cur = two_snapshots () in
  let deltas = Registry.diff ~elapsed_s:2.0 ~prev cur in
  let frame =
    Dash.render ~color:false ~deltas ~snapshot:cur
      ~events:[ "{\"event\":\"soak.tick\"}" ]
      ~health:
        (Jsonx.Obj
           [
             ("status", Jsonx.String "ok");
             ("uptime_s", Jsonx.Float 12.5);
             ("events_total", Jsonx.Int 7);
             ("invariant_violations", Jsonx.Int 0);
           ])
      ()
  in
  check_bool "no ANSI codes when color off" false (contains frame "\x1b[");
  check_bool "header status" true (contains frame "status ok");
  check_bool "rates section" true (contains frame "rates (counters");
  check_bool "counter row with rate" true (contains frame "50/s");
  check_bool "gauge row" true (contains frame "core_depth");
  check_bool "gauge change" true (contains frame "+2");
  check_bool "histogram section" true (contains frame "sim_op_ns");
  check_bool "events tail" true (contains frame "soak.tick")

let test_render_flags_reset () =
  let prev = snapshot (fun r -> Metric.add (Registry.counter r "ops") 500) in
  let cur = snapshot (fun r -> Metric.add (Registry.counter r "ops") 5) in
  let deltas = Registry.diff ~elapsed_s:1.0 ~prev cur in
  let frame = Dash.render ~color:false ~deltas ~snapshot:cur () in
  check_bool "reset marker shown" true (contains frame "reset")

let test_render_color_and_clear () =
  let prev, cur = two_snapshots () in
  let deltas = Registry.diff ~elapsed_s:2.0 ~prev cur in
  let frame = Dash.render ~color:true ~deltas ~snapshot:cur () in
  check_bool "ANSI styling present" true (contains frame "\x1b[");
  check_bool "clear sequence is ANSI" true
    (contains Dash.clear_screen "\x1b[2J")

let test_render_truncates_width () =
  let long = String.make 300 'x' in
  let cur = snapshot (fun r -> Metric.inc (Registry.counter r long)) in
  let deltas = Registry.diff ~elapsed_s:1.0 ~prev:(Jsonx.Obj []) cur in
  let frame = Dash.render ~color:false ~width:60 ~deltas ~snapshot:cur () in
  List.iter
    (fun l ->
      check_bool
        (Printf.sprintf "line within width (%d)" (String.length l))
        true
        (String.length l <= 64))
    (String.split_on_char '\n' frame)

let () =
  Alcotest.run "dash"
    [
      ( "registry-diff",
        [
          Alcotest.test_case "counter rate" `Quick test_diff_counter_rate;
          Alcotest.test_case "zero elapsed time" `Quick test_diff_zero_elapsed;
          Alcotest.test_case "counter reset" `Quick test_diff_counter_reset;
          Alcotest.test_case "gauge moves freely" `Quick
            test_diff_gauge_moves_freely;
          Alcotest.test_case "new metric from zero" `Quick
            test_diff_new_metric_counts_from_zero;
          Alcotest.test_case "histogram count rate" `Quick
            test_diff_histogram_uses_count;
          Alcotest.test_case "sorted, absent dropped" `Quick
            test_diff_sorted_and_dropped;
        ] );
      ( "render",
        [
          Alcotest.test_case "plain frame" `Quick test_render_plain_frame;
          Alcotest.test_case "reset flag" `Quick test_render_flags_reset;
          Alcotest.test_case "color and clear" `Quick
            test_render_color_and_clear;
          Alcotest.test_case "width truncation" `Quick
            test_render_truncates_width;
        ] );
    ]
