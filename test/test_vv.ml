open Vstamp_core
open Vstamp_vv

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let vv = Alcotest.testable Version_vector.pp Version_vector.equal

let rel = Alcotest.testable Relation.pp Relation.equal

(* --- Version_vector --- *)

let test_vv_zero () =
  check_int "missing entry is zero" 0 (Version_vector.get Version_vector.zero 3);
  check_int "entry_count" 0 (Version_vector.entry_count Version_vector.zero);
  check_int "size_bits" 0 (Version_vector.size_bits Version_vector.zero)

let test_vv_set_get () =
  let v = Version_vector.of_list [ (0, 2); (3, 1) ] in
  check_int "get 0" 2 (Version_vector.get v 0);
  check_int "get 3" 1 (Version_vector.get v 3);
  check_int "get missing" 0 (Version_vector.get v 1);
  Alcotest.check vv "set to zero removes" (Version_vector.of_list [ (3, 1) ])
    (Version_vector.set v 0 0);
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Version_vector.set: negative counter") (fun () ->
      ignore (Version_vector.set v 0 (-1)))

let test_vv_increment () =
  let v = Version_vector.increment Version_vector.zero 5 in
  check_int "incremented" 1 (Version_vector.get v 5);
  let v = Version_vector.increment v 5 in
  check_int "twice" 2 (Version_vector.get v 5);
  check_int "total_events" 2 (Version_vector.total_events v)

let test_vv_leq_relation () =
  let a = Version_vector.of_list [ (0, 1) ] in
  let b = Version_vector.of_list [ (0, 2) ] in
  let c = Version_vector.of_list [ (1, 1) ] in
  check_bool "a <= b" true (Version_vector.leq a b);
  check_bool "b not <= a" false (Version_vector.leq b a);
  check_bool "zero <= all" true (Version_vector.leq Version_vector.zero a);
  Alcotest.check rel "dominated" Relation.Dominated (Version_vector.relation a b);
  Alcotest.check rel "concurrent" Relation.Concurrent (Version_vector.relation a c);
  Alcotest.check rel "equal" Relation.Equal (Version_vector.relation a a)

let test_vv_merge () =
  let a = Version_vector.of_list [ (0, 2); (1, 1) ] in
  let b = Version_vector.of_list [ (0, 1); (2, 3) ] in
  Alcotest.check vv "pointwise max"
    (Version_vector.of_list [ (0, 2); (1, 1); (2, 3) ])
    (Version_vector.merge a b);
  Alcotest.check vv "commutes" (Version_vector.merge a b) (Version_vector.merge b a);
  Alcotest.check vv "idempotent" a (Version_vector.merge a a)

let test_vv_dominated_by_merge () =
  let a = Version_vector.of_list [ (0, 1) ] in
  let b = Version_vector.of_list [ (1, 1) ] in
  let ab = Version_vector.merge a b in
  check_bool "merge covers" true (Version_vector.dominated_by_merge ab [ a; b ]);
  check_bool "half does not" false (Version_vector.dominated_by_merge ab [ a ])

let test_vv_size_bits () =
  (* id 3 -> 2 bits, counter 5 -> 3 bits *)
  check_int "bits" 5 (Version_vector.size_bits (Version_vector.of_list [ (3, 5) ]));
  check_int "bits_for 0" 1 (Version_vector.bits_for 0);
  check_int "bits_for 1" 1 (Version_vector.bits_for 1);
  check_int "bits_for 7" 3 (Version_vector.bits_for 7);
  check_int "bits_for 8" 4 (Version_vector.bits_for 8)

let test_vv_figure1 () =
  (* the exact run of the paper's Figure 1 *)
  let a = Version_vector.Replica.create ~id:0 in
  let b = Version_vector.Replica.create ~id:1 in
  let c = Version_vector.Replica.create ~id:2 in
  let a = Version_vector.Replica.update a in
  let a, b = Version_vector.Replica.sync a b in
  let a = Version_vector.Replica.update a in
  let c = Version_vector.Replica.update c in
  let b, c = Version_vector.Replica.sync b c in
  Alcotest.check vv "A = [2,0,0]" (Version_vector.of_list [ (0, 2) ])
    (Version_vector.Replica.vector a);
  Alcotest.check vv "B = [1,0,1]"
    (Version_vector.of_list [ (0, 1); (2, 1) ])
    (Version_vector.Replica.vector b);
  Alcotest.check rel "B equivalent C" Relation.Equal
    (Version_vector.Replica.relation b c);
  Alcotest.check rel "A inconsistent with B" Relation.Concurrent
    (Version_vector.Replica.relation a b)

let test_vv_pp () =
  Alcotest.(check string) "render" "<0:2,2:1>"
    (Version_vector.to_string (Version_vector.of_list [ (0, 2); (2, 1) ]))

(* --- Dynamic_vv --- *)

let test_dvv_lifecycle () =
  let a = Dynamic_vv.create ~id:0 in
  let a = Dynamic_vv.update a in
  let a, b = Dynamic_vv.fork a ~new_id:1 in
  check_int "parent keeps id" 0 (Dynamic_vv.id a);
  check_int "child gets id" 1 (Dynamic_vv.id b);
  Alcotest.check rel "fork leaves equals" Relation.Equal (Dynamic_vv.relation a b);
  let b = Dynamic_vv.update b in
  Alcotest.check rel "child dominates" Relation.Dominated (Dynamic_vv.relation a b);
  let c = Dynamic_vv.join a b ~survivor_id:2 in
  check_int "joined id" 2 (Dynamic_vv.id c);
  check_bool "join dominates both" true
    (Dynamic_vv.leq a c && Dynamic_vv.leq b c)

let test_dvv_lazy_width () =
  (* entries appear only at first update *)
  let a = Dynamic_vv.create ~id:0 in
  let a, b = Dynamic_vv.fork a ~new_id:1 in
  let _, c = Dynamic_vv.fork b ~new_id:2 in
  check_int "no updates, no entries" 0 (Dynamic_vv.entry_count a);
  let c = Dynamic_vv.update c in
  check_int "one update, one entry" 1 (Dynamic_vv.entry_count c)

let test_dvv_retire_absorb () =
  let a = Dynamic_vv.create ~id:0 in
  let a = Dynamic_vv.update a in
  let a, b = Dynamic_vv.fork a ~new_id:1 in
  let b = Dynamic_vv.update b in
  let departed = Dynamic_vv.retire b in
  let a = Dynamic_vv.absorb a departed in
  check_bool "survivor saw the departed's update" true
    (Version_vector.get (Dynamic_vv.effective a) 1 >= 1)

let test_dvv_compact () =
  let a = Dynamic_vv.create ~id:0 in
  let a = Dynamic_vv.update a in
  let a, b = Dynamic_vv.fork a ~new_id:1 in
  let b = Dynamic_vv.update b in
  let a = Dynamic_vv.absorb a (Dynamic_vv.retire b) in
  let before = Dynamic_vv.entry_count a in
  (* a future replica that has seen everything lets retirement baggage go *)
  let fresh = Dynamic_vv.create ~id:9 in
  let fresh, _ = Dynamic_vv.sync fresh a in
  let a' = Dynamic_vv.compact ~live:[ a; fresh ] a in
  check_bool "baggage dropped or kept consistently" true
    (Dynamic_vv.entry_count a' <= before)

let test_dvv_sync () =
  let a = Dynamic_vv.update (Dynamic_vv.create ~id:0) in
  let b = Dynamic_vv.update (Dynamic_vv.create ~id:1) in
  let a, b = Dynamic_vv.sync a b in
  Alcotest.check rel "synced equal" Relation.Equal (Dynamic_vv.relation a b)

(* --- Vector_clock --- *)

let test_vc_basics () =
  let p = Vector_clock.create ~id:0 in
  let q = Vector_clock.create ~id:1 in
  let p = Vector_clock.tick p in
  let p, msg = Vector_clock.send p in
  let q = Vector_clock.receive q msg in
  check_bool "send happened-before receive" true
    (Vector_clock.happened_before msg (Vector_clock.clock q));
  let r = Vector_clock.tick (Vector_clock.create ~id:2) in
  check_bool "independent events concurrent" true
    (Vector_clock.concurrent (Vector_clock.clock p) (Vector_clock.clock r))

let test_vc_transitive_causality () =
  let p = Vector_clock.tick (Vector_clock.create ~id:0) in
  let e1 = Vector_clock.clock p in
  let p, m1 = Vector_clock.send p in
  let q = Vector_clock.receive (Vector_clock.create ~id:1) m1 in
  let q, m2 = Vector_clock.send q in
  let r = Vector_clock.receive (Vector_clock.create ~id:2) m2 in
  check_bool "e1 -> r's state" true
    (Vector_clock.happened_before e1 (Vector_clock.clock r));
  ignore p;
  ignore q

let test_vc_relation () =
  let p = Vector_clock.tick (Vector_clock.create ~id:0) in
  Alcotest.check rel "self equal" Relation.Equal
    (Vector_clock.relation (Vector_clock.clock p) (Vector_clock.clock p))

(* --- Plausible_clock --- *)

let test_pc_create () =
  let c = Plausible_clock.create ~size:4 in
  check_int "size" 4 (Plausible_clock.size c);
  check_int "zero" 0 (Plausible_clock.get c 0);
  Alcotest.check_raises "bad size"
    (Invalid_argument "Plausible_clock.create: size must be positive")
    (fun () -> ignore (Plausible_clock.create ~size:0))

let test_pc_fold () =
  let c = Plausible_clock.create ~size:4 in
  check_int "slot of 5" 1 (Plausible_clock.slot c ~id:5);
  check_int "slot of 4" 0 (Plausible_clock.slot c ~id:4);
  let c = Plausible_clock.increment c ~id:5 in
  let c = Plausible_clock.increment c ~id:1 in
  check_int "ids 5 and 1 share slot 1" 2 (Plausible_clock.get c 1)

let test_pc_order () =
  let c0 = Plausible_clock.create ~size:2 in
  let a = Plausible_clock.increment c0 ~id:0 in
  let b = Plausible_clock.increment c0 ~id:1 in
  Alcotest.check rel "distinct slots concurrent" Relation.Concurrent
    (Plausible_clock.relation a b);
  let a2 = Plausible_clock.increment c0 ~id:0 in
  Alcotest.check rel "same slot falsely ordered" Relation.Equal
    (Plausible_clock.relation a a2);
  Alcotest.check rel "merge dominates" Relation.Dominates
    (Plausible_clock.relation (Plausible_clock.merge a b) a)

let test_pc_merge_mismatch () =
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Plausible_clock.merge: size mismatch") (fun () ->
      ignore
        (Plausible_clock.merge
           (Plausible_clock.create ~size:2)
           (Plausible_clock.create ~size:3)))

let test_pc_size_bits () =
  let c = Plausible_clock.create ~size:3 in
  check_int "three one-bit slots" 3 (Plausible_clock.size_bits c)

(* --- Id_source --- *)

let test_ids_central () =
  let s = Id_source.make Id_source.Central in
  let id1, s = Result.get_ok (Id_source.alloc s) in
  let id2, s = Result.get_ok (Id_source.alloc s) in
  check_bool "distinct" true (id1 <> id2);
  check_int "issued" 2 (Id_source.issued_count s);
  check_int "no failures" 0 (Id_source.failures s)

let test_ids_partitioned () =
  let s = Id_source.make (Id_source.Partitioned { server_group = 0 }) in
  let _, s = Result.get_ok (Id_source.alloc ~group:0 s) in
  (match Id_source.alloc ~group:1 s with
  | Error (`Unavailable, s') ->
      check_int "failure counted" 1 (Id_source.failures s')
  | Ok _ -> Alcotest.fail "allocation should fail across the partition");
  check_int "one issued" 1 (Id_source.issued_count s)

let test_ids_random_collides () =
  (* 2-bit ids: by the pigeonhole principle 5 allocations must collide *)
  let s = ref (Id_source.make (Id_source.Random { bits = 2 })) in
  for _ = 1 to 5 do
    match Id_source.alloc !s with
    | Ok (_, s') -> s := s'
    | Error _ -> Alcotest.fail "random alloc cannot fail"
  done;
  check_bool "collision detected" true (Id_source.collisions !s > 0)

let test_ids_random_wide_unique () =
  let s = ref (Id_source.make (Id_source.Random { bits = 60 })) in
  for _ = 1 to 100 do
    match Id_source.alloc !s with
    | Ok (_, s') -> s := s'
    | Error _ -> Alcotest.fail "random alloc cannot fail"
  done;
  check_int "no collisions at 60 bits" 0 (Id_source.collisions !s)

let test_ids_policy_pp () =
  List.iter
    (fun p ->
      check_bool "renders" true
        (String.length (Format.asprintf "%a" Id_source.pp_policy p) > 0))
    [
      Id_source.Central;
      Id_source.Partitioned { server_group = 2 };
      Id_source.Random { bits = 16 };
    ]

(* --- properties: vv agrees with stamps on shared runs --- *)

let prop_merge_lattice =
  QCheck2.Test.make ~name:"vv merge is a join semilattice" ~count:300
    QCheck2.Gen.(
      triple
        (list_size (int_bound 5) (pair (int_bound 6) (int_bound 9)))
        (list_size (int_bound 5) (pair (int_bound 6) (int_bound 9)))
        (list_size (int_bound 5) (pair (int_bound 6) (int_bound 9))))
    (fun (a, b, c) ->
      let v = Version_vector.of_list in
      let a = v a and b = v b and c = v c in
      let ( <+> ) = Version_vector.merge in
      Version_vector.equal (a <+> b) (b <+> a)
      && Version_vector.equal ((a <+> b) <+> c) (a <+> (b <+> c))
      && Version_vector.equal (a <+> a) a
      && Version_vector.leq a (a <+> b)
      && (Version_vector.leq a b = Version_vector.equal (a <+> b) b))

let prop_plausible_preserves_order =
  QCheck2.Test.make ~name:"folding a vv into a plausible clock preserves leq"
    ~count:300
    QCheck2.Gen.(
      pair
        (list_size (int_bound 6) (pair (int_bound 9) (int_bound 5)))
        (list_size (int_bound 6) (pair (int_bound 9) (int_bound 5))))
    (fun (a, b) ->
      let fold vv =
        List.fold_left
          (fun c (id, n) ->
            let rec go c k = if k = 0 then c else go (Plausible_clock.increment c ~id) (k - 1) in
            go c n)
          (Plausible_clock.create ~size:3)
          (Version_vector.to_list vv)
      in
      let va = Version_vector.of_list a and vb = Version_vector.of_list b in
      (* build clocks whose counts mirror the normalized vectors *)
      let ca = fold va and cb = fold vb in
      (* folding may only coarsen: vv-leq must imply plausible-leq when
         the clocks are built from the same per-id event counts *)
      (not (Version_vector.leq va vb)) || Plausible_clock.leq ca cb)

(* --- properties: Dynamic_vv.gc soundness --- *)

(* Interpret a random op script into a live dynamic-VV population with
   retirement baggage (update / fork / sync / retire-into-survivor). *)
let dvv_population script =
  let pop = ref [| Dynamic_vv.update (Dynamic_vv.create ~id:0) |] in
  let next = ref 1 in
  List.iter
    (fun (op, (x, y)) ->
      let n = Array.length !pop in
      let i = x mod n in
      match op with
      | 0 when n < 10 ->
          let a, b = Dynamic_vv.fork (!pop).(i) ~new_id:!next in
          incr next;
          (!pop).(i) <- a;
          pop := Array.append !pop [| b |]
      | 1 when n >= 2 ->
          let j = y mod (n - 1) in
          let j = if j >= i then j + 1 else j in
          let dj = Dynamic_vv.absorb (!pop).(j) (Dynamic_vv.retire (!pop).(i)) in
          let keep = ref [] in
          Array.iteri
            (fun k r ->
              if k <> i then keep := (if k = j then dj else r) :: !keep)
            !pop;
          pop := Array.of_list (List.rev !keep)
      | 2 when n >= 2 ->
          let j = y mod (n - 1) in
          let j = if j >= i then j + 1 else j in
          let a, b = Dynamic_vv.sync (!pop).(i) (!pop).(j) in
          (!pop).(i) <- a;
          (!pop).(j) <- b
      | _ -> (!pop).(i) <- Dynamic_vv.update (!pop).(i))
    script;
  Array.to_list !pop

let dvv_script_gen =
  QCheck2.Gen.(
    list_size (int_range 1 40)
      (pair (int_bound 3) (pair (int_bound 1000) (int_bound 1000))))

let prop_gc_preserves_effective_order =
  QCheck2.Test.make
    ~name:"dvv gc never changes effective comparisons among the live"
    ~count:300 dvv_script_gen
    (fun script ->
      let live = dvv_population script in
      let collected = List.map (Dynamic_vv.gc ~live) live in
      (* gc against a live set containing the replica itself keeps
         [effective] literally unchanged ... *)
      List.for_all2
        (fun before after ->
          Version_vector.equal (Dynamic_vv.effective before)
            (Dynamic_vv.effective after))
        live collected
      (* ... so every pairwise relation survives the sweep *)
      && List.for_all2
           (fun a a' ->
             List.for_all2
               (fun b b' ->
                 Relation.equal (Dynamic_vv.relation a b)
                   (Dynamic_vv.relation a' b'))
               live collected)
           live collected)

let prop_gc_drops_only_dominated =
  QCheck2.Test.make
    ~name:"dvv gc drops retired baggage exactly when every live vv dominates"
    ~count:300 dvv_script_gen
    (fun script ->
      let live = dvv_population script in
      let dominated (rid, c) =
        List.for_all
          (fun l -> Version_vector.get (Dynamic_vv.vector l) rid >= c)
          live
      in
      List.for_all
        (fun r ->
          let before = Version_vector.to_list (Dynamic_vv.retired_vector r) in
          let after =
            Version_vector.to_list
              (Dynamic_vv.retired_vector (Dynamic_vv.gc ~live r))
          in
          List.for_all
            (fun entry ->
              if List.mem entry after then
                (* kept: some live replica is still missing it *)
                not (dominated entry)
              else (* dropped: everyone already dominates it *)
                dominated entry)
            before)
        live)

let () =
  Alcotest.run "vv"
    [
      ( "version_vector",
        [
          Alcotest.test_case "zero" `Quick test_vv_zero;
          Alcotest.test_case "set/get" `Quick test_vv_set_get;
          Alcotest.test_case "increment" `Quick test_vv_increment;
          Alcotest.test_case "leq/relation" `Quick test_vv_leq_relation;
          Alcotest.test_case "merge" `Quick test_vv_merge;
          Alcotest.test_case "dominated_by_merge" `Quick test_vv_dominated_by_merge;
          Alcotest.test_case "size_bits" `Quick test_vv_size_bits;
          Alcotest.test_case "figure 1 run" `Quick test_vv_figure1;
          Alcotest.test_case "printing" `Quick test_vv_pp;
        ] );
      ( "dynamic_vv",
        [
          Alcotest.test_case "lifecycle" `Quick test_dvv_lifecycle;
          Alcotest.test_case "lazy width" `Quick test_dvv_lazy_width;
          Alcotest.test_case "retire/absorb" `Quick test_dvv_retire_absorb;
          Alcotest.test_case "compact" `Quick test_dvv_compact;
          Alcotest.test_case "sync" `Quick test_dvv_sync;
        ] );
      ( "vector_clock",
        [
          Alcotest.test_case "basics" `Quick test_vc_basics;
          Alcotest.test_case "transitive causality" `Quick
            test_vc_transitive_causality;
          Alcotest.test_case "relation" `Quick test_vc_relation;
        ] );
      ( "plausible_clock",
        [
          Alcotest.test_case "create" `Quick test_pc_create;
          Alcotest.test_case "folding" `Quick test_pc_fold;
          Alcotest.test_case "order" `Quick test_pc_order;
          Alcotest.test_case "merge mismatch" `Quick test_pc_merge_mismatch;
          Alcotest.test_case "size_bits" `Quick test_pc_size_bits;
        ] );
      ( "id_source",
        [
          Alcotest.test_case "central" `Quick test_ids_central;
          Alcotest.test_case "partitioned" `Quick test_ids_partitioned;
          Alcotest.test_case "random collides" `Quick test_ids_random_collides;
          Alcotest.test_case "random wide unique" `Quick test_ids_random_wide_unique;
          Alcotest.test_case "policy pp" `Quick test_ids_policy_pp;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_merge_lattice;
            prop_plausible_preserves_order;
            prop_gc_preserves_effective_order;
            prop_gc_drops_only_dominated;
          ] );
    ]
