open Vstamp_core

let check_bool = Alcotest.(check bool)

let rel = Alcotest.testable Relation.pp Relation.equal

let test_of_leq_pair () =
  Alcotest.check rel "both" Relation.Equal
    (Relation.of_leq_pair ~leq_ab:true ~leq_ba:true);
  Alcotest.check rel "only ab" Relation.Dominated
    (Relation.of_leq_pair ~leq_ab:true ~leq_ba:false);
  Alcotest.check rel "only ba" Relation.Dominates
    (Relation.of_leq_pair ~leq_ab:false ~leq_ba:true);
  Alcotest.check rel "neither" Relation.Concurrent
    (Relation.of_leq_pair ~leq_ab:false ~leq_ba:false)

let test_inverse () =
  List.iter
    (fun r ->
      Alcotest.check rel "involution" r (Relation.inverse (Relation.inverse r)))
    Relation.all;
  Alcotest.check rel "dominates flips" Relation.Dominated
    (Relation.inverse Relation.Dominates);
  Alcotest.check rel "equal fixed" Relation.Equal (Relation.inverse Relation.Equal);
  Alcotest.check rel "concurrent fixed" Relation.Concurrent
    (Relation.inverse Relation.Concurrent)

let test_is_leq_geq () =
  check_bool "equal is leq" true (Relation.is_leq Relation.Equal);
  check_bool "dominated is leq" true (Relation.is_leq Relation.Dominated);
  check_bool "dominates not leq" false (Relation.is_leq Relation.Dominates);
  check_bool "concurrent not leq" false (Relation.is_leq Relation.Concurrent);
  check_bool "equal is geq" true (Relation.is_geq Relation.Equal);
  check_bool "dominates is geq" true (Relation.is_geq Relation.Dominates);
  (* leq and geq together characterize equality *)
  List.iter
    (fun r ->
      check_bool "leq&geq = equal" true
        (Relation.is_leq r && Relation.is_geq r = Relation.equal r Relation.Equal
        || not (Relation.is_leq r)))
    Relation.all

let test_strings () =
  Alcotest.(check (list string))
    "to_string"
    [ "equal"; "dominates"; "dominated"; "concurrent" ]
    (List.map Relation.to_string Relation.all);
  Alcotest.(check (list string))
    "paper vocabulary"
    [ "equivalent"; "dominating"; "obsolete"; "inconsistent" ]
    (List.map Relation.to_paper_string Relation.all)

let test_all_complete () =
  Alcotest.(check int) "four values" 4 (List.length Relation.all);
  check_bool "distinct" true
    (List.length (List.sort_uniq compare Relation.all) = 4)

let test_consistency_with_of_leq_pair () =
  (* of_leq_pair covers all four and is consistent with is_leq/is_geq *)
  List.iter
    (fun (ab, ba) ->
      let r = Relation.of_leq_pair ~leq_ab:ab ~leq_ba:ba in
      check_bool "is_leq mirrors leq_ab" true (Relation.is_leq r = ab);
      check_bool "is_geq mirrors leq_ba" true (Relation.is_geq r = ba))
    [ (true, true); (true, false); (false, true); (false, false) ]

(* conversions added alongside: representation isomorphism sanity *)
let test_name_conversions () =
  let n = Name.of_strings [ "00"; "01"; "1" ] in
  let t = Name_tree.of_name n in
  check_bool "round trip via tree" true (Name.equal n (Name_tree.to_name t));
  check_bool "tree well-formed" true (Name_tree.well_formed t);
  let t2 = Name_tree.of_strings [ "0"; "11" ] in
  check_bool "round trip via list" true
    (Name_tree.equal t2 (Name_tree.of_name (Name_tree.to_name t2)))

let prop_conversion_iso =
  QCheck2.Test.make ~name:"of_name/to_name are mutually inverse" ~count:500
    (Vstamp_test_support.Gen.name ())
    (fun n ->
      let t = Name_tree.of_name n in
      Name.equal n (Name_tree.to_name t)
      && Name_tree.leq t t
      && Name_tree.equal t (Name_tree.of_name (Name_tree.to_name t)))

let () =
  Alcotest.run "relation"
    [
      ( "relation",
        [
          Alcotest.test_case "of_leq_pair" `Quick test_of_leq_pair;
          Alcotest.test_case "inverse" `Quick test_inverse;
          Alcotest.test_case "is_leq/is_geq" `Quick test_is_leq_geq;
          Alcotest.test_case "strings" `Quick test_strings;
          Alcotest.test_case "all" `Quick test_all_complete;
          Alcotest.test_case "of_leq_pair consistency" `Quick
            test_consistency_with_of_leq_pair;
        ] );
      ( "conversions",
        [ Alcotest.test_case "name <-> tree" `Quick test_name_conversions ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_conversion_iso ]);
    ]
