open Vstamp_core
open Vstamp_sim

let check_bool = Alcotest.(check bool)

let check_str = Alcotest.(check string)

let test_to_string () =
  check_str "render" "update(0);fork(1);join(2,0)"
    (Trace.to_string [ Update 0; Fork 1; Join (2, 0) ]);
  check_str "empty" "" (Trace.to_string [])

let ok_parse input expected =
  match Trace.of_string input with
  | Ok ops -> Alcotest.(check bool) input true (ops = expected)
  | Error e -> Alcotest.failf "parse of %S failed: %a" input Trace.pp_error e

let fails_parse input =
  match Trace.of_string input with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%S should not parse" input

let test_of_string_valid () =
  ok_parse "" [];
  ok_parse "update(0)" [ Update 0 ];
  ok_parse "fork(0);update(1)" [ Fork 0; Update 1 ];
  ok_parse " fork(0) ; join(0, 1) " [ Fork 0; Join (0, 1) ];
  ok_parse "fork(0);fork(1);join(2,0);update(0)"
    [ Fork 0; Fork 1; Join (2, 0); Update 0 ]

let test_of_string_invalid_syntax () =
  fails_parse "update";
  fails_parse "update(x)";
  fails_parse "update(-1)";
  fails_parse "join(0)";
  fails_parse "join(0,1,2)";
  fails_parse "frobnicate(0)";
  fails_parse "update(0) fork(0)"

let test_of_string_invalid_semantics () =
  (* syntactically fine but not applicable *)
  fails_parse "update(1)";
  fails_parse "join(0,1)";
  fails_parse "fork(0);join(0,0)";
  match Trace.of_string "fork(0);update(5)" with
  | Error e -> Alcotest.(check int) "error position" 1 e.Trace.position
  | Ok _ -> Alcotest.fail "should be invalid"

let test_roundtrip_file () =
  let ops = Workload.uniform ~seed:9 ~n_ops:80 () in
  let file = Filename.temp_file "vstamp_trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Trace.save ~file ops;
      match Trace.load ~file with
      | Ok ops' -> check_bool "round trip" true (ops = ops')
      | Error e -> Alcotest.failf "load failed: %a" Trace.pp_error e)

let test_stats () =
  let u, f, j = Trace.stats [ Update 0; Fork 0; Fork 1; Join (0, 1) ] in
  Alcotest.(check (triple int int int)) "counts" (1, 2, 1) (u, f, j)

let prop_roundtrip =
  QCheck2.Test.make ~name:"to_string/of_string round trip" ~count:300
    ~print:Vstamp_test_support.Gen.trace_print
    (Vstamp_test_support.Gen.trace ())
    (fun ops ->
      match Trace.of_string (Trace.to_string ops) with
      | Ok ops' -> ops = ops'
      | Error _ -> false)

(* Inject deterministic whitespace wherever the grammar tolerates it:
   around ';' and ',', after '(' and before ')' — never between an op
   name and its '('. *)
let spaced salt s =
  let fills = [| ""; " "; "  "; "\t"; "\n"; " \t " |] in
  let k = ref (abs salt) in
  let pick () =
    let f = fills.(!k mod Array.length fills) in
    k := ((!k * 31) + 7) mod 9973;
    f
  in
  let b = Buffer.create (String.length s * 2) in
  String.iter
    (fun c ->
      match c with
      | ';' | ',' ->
          Buffer.add_string b (pick ());
          Buffer.add_char b c;
          Buffer.add_string b (pick ())
      | '(' ->
          Buffer.add_char b '(';
          Buffer.add_string b (pick ())
      | ')' ->
          Buffer.add_string b (pick ());
          Buffer.add_char b ')'
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let prop_whitespace_tolerant =
  QCheck2.Test.make ~name:"parser tolerates interleaved whitespace" ~count:300
    ~print:(fun (ops, salt) ->
      Printf.sprintf "%s (salt %d)" (spaced salt (Trace.to_string ops)) salt)
    QCheck2.Gen.(pair (Vstamp_test_support.Gen.trace ()) (int_bound 10_000))
    (fun (ops, salt) ->
      match Trace.of_string (spaced salt (Trace.to_string ops)) with
      | Ok ops' -> ops = ops'
      | Error _ -> false)

(* Appending an op that needs a larger frontier than the trace leaves
   must fail positionally: the reported position is the appended op's. *)
let prop_validation_position =
  QCheck2.Test.make ~name:"validation reports the offending position"
    ~count:300 ~print:Vstamp_test_support.Gen.trace_print
    (Vstamp_test_support.Gen.trace ())
    (fun ops ->
      let final_size =
        List.fold_left (fun n op -> n + Execution.size_delta op) 1 ops
      in
      let bad = ops @ [ Execution.Update final_size ] in
      match Trace.of_string (Trace.to_string bad) with
      | Ok _ -> false
      | Error e -> e.Trace.position = List.length ops)

let prop_parser_total =
  QCheck2.Test.make ~name:"trace parser is total" ~count:1000
    QCheck2.Gen.(string_size ~gen:printable (int_bound 30))
    (fun input ->
      match Trace.of_string input with
      | Ok ops -> Execution.trace_valid ops
      | Error _ -> true
      | exception _ -> false)

let () =
  Alcotest.run "trace"
    [
      ( "format",
        [
          Alcotest.test_case "to_string" `Quick test_to_string;
          Alcotest.test_case "valid inputs" `Quick test_of_string_valid;
          Alcotest.test_case "invalid syntax" `Quick
            test_of_string_invalid_syntax;
          Alcotest.test_case "invalid semantics" `Quick
            test_of_string_invalid_semantics;
          Alcotest.test_case "file round trip" `Quick test_roundtrip_file;
          Alcotest.test_case "stats" `Quick test_stats;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_roundtrip;
            prop_parser_total;
            prop_whitespace_tolerant;
            prop_validation_position;
          ] );
    ]
