open Vstamp_core
open Vstamp_sim

let check_bool = Alcotest.(check bool)

let check_str = Alcotest.(check string)

let test_to_string () =
  check_str "render" "update(0);fork(1);join(2,0)"
    (Trace.to_string [ Update 0; Fork 1; Join (2, 0) ]);
  check_str "empty" "" (Trace.to_string [])

let ok_parse input expected =
  match Trace.of_string input with
  | Ok ops -> Alcotest.(check bool) input true (ops = expected)
  | Error e -> Alcotest.failf "parse of %S failed: %a" input Trace.pp_error e

let fails_parse input =
  match Trace.of_string input with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%S should not parse" input

let test_of_string_valid () =
  ok_parse "" [];
  ok_parse "update(0)" [ Update 0 ];
  ok_parse "fork(0);update(1)" [ Fork 0; Update 1 ];
  ok_parse " fork(0) ; join(0, 1) " [ Fork 0; Join (0, 1) ];
  ok_parse "fork(0);fork(1);join(2,0);update(0)"
    [ Fork 0; Fork 1; Join (2, 0); Update 0 ]

let test_of_string_invalid_syntax () =
  fails_parse "update";
  fails_parse "update(x)";
  fails_parse "update(-1)";
  fails_parse "join(0)";
  fails_parse "join(0,1,2)";
  fails_parse "frobnicate(0)";
  fails_parse "update(0) fork(0)"

let test_of_string_invalid_semantics () =
  (* syntactically fine but not applicable *)
  fails_parse "update(1)";
  fails_parse "join(0,1)";
  fails_parse "fork(0);join(0,0)";
  match Trace.of_string "fork(0);update(5)" with
  | Error e -> Alcotest.(check int) "error position" 1 e.Trace.position
  | Ok _ -> Alcotest.fail "should be invalid"

let test_roundtrip_file () =
  let ops = Workload.uniform ~seed:9 ~n_ops:80 () in
  let file = Filename.temp_file "vstamp_trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Trace.save ~file ops;
      match Trace.load ~file with
      | Ok ops' -> check_bool "round trip" true (ops = ops')
      | Error e -> Alcotest.failf "load failed: %a" Trace.pp_error e)

let test_stats () =
  let u, f, j = Trace.stats [ Update 0; Fork 0; Fork 1; Join (0, 1) ] in
  Alcotest.(check (triple int int int)) "counts" (1, 2, 1) (u, f, j)

let prop_roundtrip =
  QCheck2.Test.make ~name:"to_string/of_string round trip" ~count:300
    ~print:Vstamp_test_support.Gen.trace_print
    (Vstamp_test_support.Gen.trace ())
    (fun ops ->
      match Trace.of_string (Trace.to_string ops) with
      | Ok ops' -> ops = ops'
      | Error _ -> false)

let prop_parser_total =
  QCheck2.Test.make ~name:"trace parser is total" ~count:1000
    QCheck2.Gen.(string_size ~gen:printable (int_bound 30))
    (fun input ->
      match Trace.of_string input with
      | Ok ops -> Execution.trace_valid ops
      | Error _ -> true
      | exception _ -> false)

let () =
  Alcotest.run "trace"
    [
      ( "format",
        [
          Alcotest.test_case "to_string" `Quick test_to_string;
          Alcotest.test_case "valid inputs" `Quick test_of_string_valid;
          Alcotest.test_case "invalid syntax" `Quick
            test_of_string_invalid_syntax;
          Alcotest.test_case "invalid semantics" `Quick
            test_of_string_invalid_semantics;
          Alcotest.test_case "file round trip" `Quick test_roundtrip_file;
          Alcotest.test_case "stats" `Quick test_stats;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_roundtrip; prop_parser_total ] );
    ]
