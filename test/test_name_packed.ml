(* Agreement of the hash-consed backend with the executable list
   specification, plus the interning properties the backend's fast
   paths rely on (equal means physically equal; memoized operations
   return interned nodes). *)

open Vstamp_core

let to_packed n = Name_packed.of_list (Name.to_list n)

let of_packed p = Name.of_list (Name_packed.to_list p)

let gen = Vstamp_test_support.Gen.name ()

let gen2 = QCheck2.Gen.pair gen gen

(* --- agreement with the list specification --- *)

let agreement_props =
  [
    QCheck2.Test.make ~name:"to_list . of_list isomorphism" ~count:500 gen
      (fun x -> Name.equal x (of_packed (to_packed x)));
    QCheck2.Test.make ~name:"leq agrees with the spec" ~count:500 gen2
      (fun (x, y) -> Name.leq x y = Name_packed.leq (to_packed x) (to_packed y));
    QCheck2.Test.make ~name:"join agrees with the spec" ~count:500 gen2
      (fun (x, y) ->
        Name.equal (Name.join x y)
          (of_packed (Name_packed.join (to_packed x) (to_packed y))));
    QCheck2.Test.make ~name:"meet agrees with the spec" ~count:500 gen2
      (fun (x, y) ->
        Name.equal (Name.meet x y)
          (of_packed (Name_packed.meet (to_packed x) (to_packed y))));
    QCheck2.Test.make ~name:"incomparable_with agrees with the spec" ~count:500
      gen2 (fun (x, y) ->
        Name.incomparable_with x y
        = Name_packed.incomparable_with (to_packed x) (to_packed y));
    QCheck2.Test.make ~name:"reduce_stamp agrees with the spec" ~count:500 gen2
      (fun (u0, i) ->
        let u = Name.meet u0 i in
        let lu, li = Name.reduce_stamp ~u ~id:i in
        let pu, pi =
          Name_packed.reduce_stamp ~u:(to_packed u) ~id:(to_packed i)
        in
        Name.equal lu (of_packed pu) && Name.equal li (of_packed pi));
    QCheck2.Test.make ~name:"size metrics agree with the spec" ~count:500 gen
      (fun x ->
        let p = to_packed x in
        Name.cardinal x = Name_packed.cardinal p
        && Name.total_bits x = Name_packed.total_bits p
        && Name.max_depth x = Name_packed.max_depth p);
    QCheck2.Test.make ~name:"append_digit agrees with the spec" ~count:500 gen
      (fun x ->
        List.for_all
          (fun d ->
            Name.equal (Name.append_digit d x)
              (of_packed (Name_packed.append_digit d (to_packed x))))
          [ Bits.Zero; Bits.One ]);
  ]

(* --- hash-consing: structural equality is physical equality --- *)

let interning_props =
  [
    QCheck2.Test.make ~name:"equal names intern to the same node" ~count:500
      gen (fun x ->
        let a = to_packed x and b = to_packed x in
        a == b && Name_packed.equal a b && Name_packed.tag a = Name_packed.tag b);
    QCheck2.Test.make
      ~name:"structurally-equal joins are physically equal (commutativity)"
      ~count:500 gen2
      (fun (x, y) ->
        let px = to_packed x and py = to_packed y in
        Name_packed.join px py == Name_packed.join py px);
    QCheck2.Test.make ~name:"join result is interned" ~count:500 gen2
      (fun (x, y) ->
        let j = Name_packed.join (to_packed x) (to_packed y) in
        j == to_packed (of_packed j));
    QCheck2.Test.make ~name:"distinct names never share a node" ~count:500 gen2
      (fun (x, y) ->
        let px = to_packed x and py = to_packed y in
        Name.equal x y || (px != py && Name_packed.tag px <> Name_packed.tag py));
  ]

(* --- stamp-level agreement along whole traces --- *)

module Packed_subject_maker = Execution.Stamp_subject (Stamp.Over_packed)
module Packed_subject = (val Packed_subject_maker.make ~reduce:true)
module Run_packed = Execution.Run (Packed_subject)

let to_list_stamp (s : Stamp.Over_packed.t) : Stamp.Over_list.t =
  Stamp.Over_list.make_unchecked
    ~update:
      (Name.of_list (Name_packed.to_list (Stamp.Over_packed.update_name s)))
    ~id:(Name.of_list (Name_packed.to_list (Stamp.Over_packed.id s)))

let trace_props =
  let trace_gen = Vstamp_test_support.Gen.trace () in
  [
    QCheck2.Test.make
      ~name:"packed and list stamps agree along any trace (update/fork/join)"
      ~count:300 ~print:Vstamp_test_support.Gen.trace_print trace_gen
      (fun ops ->
        let packed = Run_packed.run ops in
        let listed = Execution.Run_stamps_list.run ops in
        List.for_all2
          (fun p l -> Stamp.Over_list.equal (to_list_stamp p) l)
          packed listed);
    QCheck2.Test.make
      ~name:"size_bits agrees with the list backend along any trace" ~count:300
      ~print:Vstamp_test_support.Gen.trace_print trace_gen
      (fun ops ->
        List.for_all2
          (fun p l -> Stamp.Over_packed.size_bits p = Stamp.Over_list.size_bits l)
          (Run_packed.run ops)
          (Execution.Run_stamps_list.run ops));
    QCheck2.Test.make
      ~name:"every packed stamp along a trace is well-formed and reduced"
      ~count:300 ~print:Vstamp_test_support.Gen.trace_print trace_gen
      (fun ops ->
        Run_packed.run_steps ops
        |> List.for_all
             (List.for_all (fun s ->
                  Stamp.Over_packed.well_formed s
                  && Stamp.Over_packed.is_reduced s)));
  ]

(* --- unit corners --- *)

let test_constants () =
  Alcotest.(check bool) "empty is interned once" true
    (Name_packed.empty == to_packed (Name.of_list []));
  Alcotest.(check bool) "bottom is interned once" true
    (Name_packed.bottom == to_packed (Name.of_strings [ "" ]));
  Alcotest.(check bool) "empty <> bottom" true
    (not (Name_packed.equal Name_packed.empty Name_packed.bottom))

let test_interned_count_monotone () =
  let before = Name_packed.interned_count () in
  (* a fresh, deep name forces new interned nodes *)
  let deep =
    Name_packed.of_list
      [ Bits.of_string "0101010101010101010101"; Bits.of_string "11" ]
  in
  ignore (Name_packed.cardinal deep);
  Alcotest.(check bool) "interning grew the table" true
    (Name_packed.interned_count () >= before)

let () =
  Alcotest.run "name_packed"
    [
      ( "agreement with spec",
        List.map QCheck_alcotest.to_alcotest agreement_props );
      ("hash-consing", List.map QCheck_alcotest.to_alcotest interning_props);
      ("trace agreement", List.map QCheck_alcotest.to_alcotest trace_props);
      ( "corners",
        [
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "interned_count" `Quick
            test_interned_count_monotone;
        ] );
    ]
