open Vstamp_core
open Vstamp_sim
module CT = Vstamp_obs.Causal_trace
module Jsonx = Vstamp_obs.Jsonx

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_str = Alcotest.(check string)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let record ops = fst (Forensics.record Tracker.stamps ops)

let invalid what f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" what

(* --- construction --- *)

let test_add_validation () =
  let t = CT.create () in
  let s = CT.add t ~step:0 ~kind:CT.Seed ~parents:[] ~replica:0 ~label:"s" in
  check_int "seed id" 0 s;
  invalid "update with no parent" (fun () ->
      CT.add t ~step:1 ~kind:CT.Update ~parents:[] ~replica:0 ~label:"");
  invalid "parent out of range" (fun () ->
      CT.add t ~step:1 ~kind:CT.Update ~parents:[ 5 ] ~replica:0 ~label:"");
  invalid "negative step" (fun () ->
      CT.add t ~step:(-1) ~kind:CT.Update ~parents:[ 0 ] ~replica:0 ~label:"");
  invalid "negative replica" (fun () ->
      CT.add t ~step:1 ~kind:CT.Update ~parents:[ 0 ] ~replica:(-1) ~label:"");
  invalid "join with one parent" (fun () ->
      CT.add t ~step:1 ~kind:CT.Join ~parents:[ 0 ] ~replica:0 ~label:"");
  invalid "seed with a parent" (fun () ->
      CT.add t ~step:1 ~kind:CT.Seed ~parents:[ 0 ] ~replica:0 ~label:"");
  let u = CT.add t ~step:1 ~kind:CT.Update ~parents:[ 0 ] ~replica:0 ~label:"u" in
  check_int "ids allocate in order" 1 u;
  check_int "length" 2 (CT.length t)

(* --- recording the paper's Figure 2/4 run --- *)

let test_fig4_structure () =
  let t = record Scenario.Fig4.trace in
  check_int "one node per replica state" 10 (CT.length t);
  (match CT.node t 8 with
  | Some n ->
      check_bool "f1 is a join" true (n.CT.kind = CT.Join);
      check_str "f1 label is the paper's" "[1|01+1]" n.CT.label;
      check_bool "f1 parents" true (n.CT.parents = [ 5; 7 ])
  | None -> Alcotest.fail "node 8 missing");
  check_bool "ancestors of f1" true
    (CT.ancestors t 8 = [ 0; 1; 2; 3; 5; 6; 7; 8 ]);
  Alcotest.(check (option int))
    "d1 and f1 last shared the first fork" (Some 2)
    (CT.latest_common_ancestor t 4 8)

(* --- round trips --- *)

let prop_jsonl_roundtrip =
  QCheck2.Test.make ~name:"JSONL round trip on recorded runs" ~count:100
    ~print:Vstamp_test_support.Gen.trace_print
    (Vstamp_test_support.Gen.trace ())
    (fun ops ->
      let t = record ops in
      match CT.of_jsonl (CT.to_jsonl t) with
      | Ok t' -> CT.equal t t'
      | Error _ -> false)

let prop_ops_reconstruction =
  QCheck2.Test.make ~name:"ops_of_trace inverts recording" ~count:100
    ~print:Vstamp_test_support.Gen.trace_print
    (Vstamp_test_support.Gen.trace ())
    (fun ops -> Forensics.ops_of_trace (record ops) = Ok ops)

let prop_replay_identical =
  QCheck2.Test.make ~name:"replay re-records byte-identically" ~count:50
    ~print:Vstamp_test_support.Gen.trace_print
    (Vstamp_test_support.Gen.trace ())
    (fun ops ->
      match Forensics.replay Tracker.stamps (record ops) with
      | Ok r -> r.Forensics.identical
      | Error _ -> false)

let test_of_jsonl_rejects_garbage () =
  (match CT.of_jsonl "not json\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted");
  (* an orphan parent must be re-validated on load *)
  let t = record [ Execution.Update 0 ] in
  let forged =
    CT.to_jsonl t
    ^ {|{"event":"trace.node","step":9,"id":2,"kind":"join","replica":0,"parents":[0,7],"label":"x"}|}
    ^ "\n"
  in
  match CT.of_jsonl forged with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "forged parent accepted"

let test_ops_of_trace_rejects_malformed () =
  let reject what t =
    match Forensics.ops_of_trace t with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: reconstruction should fail" what
  in
  (* fork.l with no matching fork.r *)
  let t = CT.create () in
  let s = CT.add t ~step:0 ~kind:CT.Seed ~parents:[] ~replica:0 ~label:"s" in
  let _ = CT.add t ~step:1 ~kind:CT.Fork_left ~parents:[ s ] ~replica:0 ~label:"l" in
  reject "orphan fork half" t;
  (* update whose parent is a stale (non-frontier) state *)
  let t = CT.create () in
  let s = CT.add t ~step:0 ~kind:CT.Seed ~parents:[] ~replica:0 ~label:"s" in
  let _ = CT.add t ~step:1 ~kind:CT.Update ~parents:[ s ] ~replica:0 ~label:"u" in
  let _ = CT.add t ~step:2 ~kind:CT.Update ~parents:[ s ] ~replica:0 ~label:"v" in
  reject "stale parent" t;
  (* replica position disagreeing with the structure *)
  let t = CT.create () in
  let s = CT.add t ~step:0 ~kind:CT.Seed ~parents:[] ~replica:0 ~label:"s" in
  let _ = CT.add t ~step:1 ~kind:CT.Update ~parents:[ s ] ~replica:3 ~label:"u" in
  reject "wrong replica" t

(* --- DOT export --- *)

let unescaped_quotes line =
  let n = ref 0 and esc = ref false in
  String.iter
    (fun c ->
      if !esc then esc := false
      else if c = '\\' then esc := true
      else if c = '"' then incr n)
    line;
  !n

let test_dot_escaping () =
  let t = CT.create () in
  let _ =
    CT.add t ~step:0 ~kind:CT.Seed ~parents:[] ~replica:0
      ~label:"a\"b\\c\nd|e+f"
  in
  let dot = CT.to_dot t in
  check_bool "quote escaped" true (contains dot {|\"|});
  check_bool "backslash escaped" true (contains dot {|\\|});
  check_bool "stamp notation survives" true (contains dot "d|e+f");
  (* a label can never smuggle an unterminated quoted string onto a
     line: every DOT line closes the quotes it opens *)
  List.iter
    (fun line ->
      check_int
        (Printf.sprintf "balanced quotes on %S" line)
        0
        (unescaped_quotes line mod 2))
    (String.split_on_char '\n' dot)

(* --- Chrome trace-event export --- *)

let test_chrome_export () =
  let t = record Scenario.Fig4.trace in
  let j = CT.to_chrome t in
  let s = Jsonx.to_string j in
  match Jsonx.of_string s with
  | Error e -> Alcotest.failf "chrome export is not valid JSON: %s" e
  | Ok j' -> (
      check_bool "serialization round trips" true (Jsonx.equal j j');
      match Jsonx.member "traceEvents" j' with
      | Some (Jsonx.List evs) ->
          (* one X slice per node + an s/f flow pair per parent edge;
             Fig4 has 10 nodes and 11 edges *)
          check_int "slices + flow pairs" 32 (List.length evs)
      | _ -> Alcotest.fail "no traceEvents array")

(* --- explain --- *)

let explain_exn t a b =
  match Forensics.explain t a b with
  | Ok e -> e
  | Error m -> Alcotest.failf "explain %s %s: %s" a b m

let test_explain_fig4 () =
  let t = record Scenario.Fig4.trace in
  (* d1 against c3: the paper's obsolescence query *)
  let e = explain_exn t "#4" "#7" in
  check_bool "d1 obsolete wrt c3" true
    (Relation.equal e.Forensics.relation Relation.Dominated);
  check_int "diverged at the first update" 1
    (match e.Forensics.meet with Some m -> m.CT.id | None -> -1);
  check_int "no exclusive updates on d1" 0 (List.length e.Forensics.only_a);
  check_int "c3 has both extra updates" 2 (List.length e.Forensics.only_b);
  (* label-based selection must agree with id-based selection; the d1
     and c3 stamps of the run are [ε|00] and [1|1] *)
  let e' = explain_exn t "[ε|00]" "[1|1]" in
  check_int "label selects d1" e.Forensics.a.CT.id e'.Forensics.a.CT.id;
  check_int "label selects c3" e.Forensics.b.CT.id e'.Forensics.b.CT.id;
  (* fork siblings share their causal history *)
  let e = explain_exn t "#4" "#5" in
  check_bool "siblings equivalent" true
    (Relation.equal e.Forensics.relation Relation.Equal);
  (* f1 dominates d1 and the join that folded c's updates is named *)
  let e = explain_exn t "#8" "#4" in
  check_bool "f1 dominates d1" true
    (Relation.equal e.Forensics.relation Relation.Dominates);
  check_bool "join named in the explanation" true
    (List.exists (fun n -> n.CT.id = 8) e.Forensics.joins_a)

let test_explain_concurrent () =
  let t = record [ Execution.Fork 0; Update 0; Update 1 ] in
  let e = explain_exn t "#3" "#4" in
  check_bool "concurrent" true
    (Relation.equal e.Forensics.relation Relation.Concurrent);
  check_int "one exclusive update each way (a)" 1
    (List.length e.Forensics.only_a);
  check_int "one exclusive update each way (b)" 1
    (List.length e.Forensics.only_b)

let test_resolve_errors () =
  let t = record Scenario.Fig4.trace in
  (match Forensics.resolve t "#99" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out-of-range id resolved");
  (match Forensics.resolve t "#x" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed id resolved");
  (match Forensics.resolve t "[no|such]" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown label resolved");
  (* duplicate labels resolve to the latest node *)
  match Forensics.resolve t "[1|1]" with
  | Ok id -> check_int "latest wins" 7 id
  | Error m -> Alcotest.fail m

let () =
  Alcotest.run "causal_trace"
    [
      ( "dag",
        [
          Alcotest.test_case "add validation" `Quick test_add_validation;
          Alcotest.test_case "figure 4 structure" `Quick test_fig4_structure;
          Alcotest.test_case "of_jsonl rejects garbage" `Quick
            test_of_jsonl_rejects_garbage;
          Alcotest.test_case "reconstruction rejects malformed DAGs" `Quick
            test_ops_of_trace_rejects_malformed;
        ] );
      ( "exports",
        [
          Alcotest.test_case "DOT escaping" `Quick test_dot_escaping;
          Alcotest.test_case "chrome trace JSON" `Quick test_chrome_export;
        ] );
      ( "explain",
        [
          Alcotest.test_case "figure 4 queries" `Quick test_explain_fig4;
          Alcotest.test_case "concurrent states" `Quick test_explain_concurrent;
          Alcotest.test_case "selector errors" `Quick test_resolve_errors;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_jsonl_roundtrip; prop_ops_reconstruction; prop_replay_identical ]
      );
    ]
