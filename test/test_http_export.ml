(* The embedded telemetry server, exercised over real loopback
   sockets: response shapes of every endpoint, concurrent scrapes,
   event streaming, graceful shutdown. *)

open Vstamp_obs

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_string = Alcotest.(check string)

let get_ok srv path =
  match Http_export.Client.get ~port:(Http_export.port srv) path with
  | Ok (status, body) -> (status, body)
  | Error m -> Alcotest.failf "GET %s failed: %s" path m

let with_server ?health ?recent f =
  let registry = Registry.create () in
  let srv = Http_export.create ~registry ?health ?recent ~port:0 () in
  Fun.protect ~finally:(fun () -> Http_export.stop srv) (fun () ->
      f registry srv)

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec go i =
    i + m <= n && (String.sub haystack i m = needle || go (i + 1))
  in
  m = 0 || go 0

(* --- endpoints --- *)

let test_metrics_endpoint () =
  with_server (fun registry srv ->
      Metric.add (Registry.counter registry "soak_ops_total") 42;
      Metric.set (Registry.gauge registry "soak_depth") 7.0;
      let status, body = get_ok srv "/metrics" in
      check_int "status" 200 status;
      check_bool "TYPE line" true
        (contains body "# TYPE soak_ops_total counter");
      check_bool "counter sample" true (contains body "soak_ops_total 42");
      check_bool "gauge sample" true (contains body "soak_depth 7"))

let test_stats_json_endpoint () =
  with_server (fun registry srv ->
      Metric.add (Registry.counter registry "soak_ops_total") 3;
      let status, body = get_ok srv "/stats.json" in
      check_int "status" 200 status;
      match Jsonx.of_string (String.trim body) with
      | Error m -> Alcotest.failf "stats.json did not parse: %s" m
      | Ok j ->
          check_int "counter value" 3
            (Option.value ~default:(-1)
               (Option.bind (Jsonx.member "soak_ops_total" j) Jsonx.to_int)))

let test_healthz_endpoint () =
  with_server
    ~health:(fun () -> [ ("last_step", Jsonx.Int 99) ])
    (fun registry srv ->
      (* a violation counter must flip the reported status *)
      let status, body = get_ok srv "/healthz" in
      check_int "status" 200 status;
      let j =
        match Jsonx.of_string (String.trim body) with
        | Ok j -> j
        | Error m -> Alcotest.failf "healthz did not parse: %s" m
      in
      check_string "ok status" "ok"
        (Option.value ~default:"?"
           (Option.bind (Jsonx.member "status" j) Jsonx.to_str));
      check_int "health callback field" 99
        (Option.value ~default:(-1)
           (Option.bind (Jsonx.member "last_step" j) Jsonx.to_int));
      check_bool "uptime present" true
        (Option.is_some (Jsonx.member "uptime_s" j));
      Metric.inc
        (Registry.counter registry
           "vstamp_invariant_violations_total{monitor=\"stamps\"}");
      let _, body2 = get_ok srv "/healthz" in
      let j2 =
        match Jsonx.of_string (String.trim body2) with
        | Ok j -> j
        | Error m -> Alcotest.failf "healthz did not parse: %s" m
      in
      check_string "violations status" "violations"
        (Option.value ~default:"?"
           (Option.bind (Jsonx.member "status" j2) Jsonx.to_str));
      check_int "violation count" 1
        (Option.value ~default:(-1)
           (Option.bind (Jsonx.member "invariant_violations" j2) Jsonx.to_int)))

let test_lag_json_endpoint () =
  with_server (fun registry srv ->
      (* empty registry: the endpoint answers with null/empty defaults *)
      let status, body = get_ok srv "/lag.json" in
      check_int "status" 200 status;
      (match Jsonx.of_string (String.trim body) with
      | Error m -> Alcotest.failf "lag.json did not parse: %s" m
      | Ok j ->
          check_bool "width null before publication" true
            (Jsonx.member "frontier_width" j = Some Jsonx.Null));
      (* publish the convergence view and read it back *)
      Convergence.publish_lag ~registry [| 0; 2 |];
      Convergence.publish_matrix ~registry
        (Convergence.matrix ~leq:( <= ) [| 1; 2 |]);
      Metric.add (Registry.counter registry "sim_sync_shipped_bytes_total") 50;
      let _, body2 = get_ok srv "/lag.json" in
      match Jsonx.of_string (String.trim body2) with
      | Error m -> Alcotest.failf "lag.json did not parse: %s" m
      | Ok j ->
          let num path name =
            match
              Option.bind
                (Option.bind (Jsonx.member path j) (Jsonx.member name))
                Jsonx.to_float
            with
            | Some f -> f
            | None -> Alcotest.failf "missing %s.%s" path name
          in
          Alcotest.(check (float 0.)) "replica 1 lag" 2. (num "replica_lag" "1");
          Alcotest.(check (float 0.))
            "dominated pair" 1.
            (num "divergence_pairs" "dominated");
          Alcotest.(check (float 0.))
            "delta counter surfaced" 50.
            (num "sync_delta" "sim_sync_shipped_bytes_total");
          check_bool "index lists the endpoint" true
            (let _, index = get_ok srv "/" in
             contains index "/lag.json"))

let test_idspace_json_endpoint () =
  with_server (fun registry srv ->
      (* empty registry: empty families, null counters *)
      let status, body = get_ok srv "/idspace.json" in
      check_int "status" 200 status;
      (match Jsonx.of_string (String.trim body) with
      | Error m -> Alcotest.failf "idspace.json did not parse: %s" m
      | Ok j ->
          check_bool "empty idspace object" true
            (Jsonx.member "idspace" j = Some (Jsonx.Obj []));
          check_bool "null reclaimed counter" true
            (Jsonx.member "reclaimed_bits_total" j = Some Jsonx.Null));
      (* publish an inventory and read the families back *)
      let inv = Idspace.create () in
      let r0 = Idspace.seed inv [ "" ] in
      let _ = Idspace.fork inv r0 ~left:[ "0" ] ~right:[ "1" ] in
      Idspace.publish ~registry inv;
      let _, body2 = get_ok srv "/idspace.json" in
      match Jsonx.of_string (String.trim body2) with
      | Error m -> Alcotest.failf "idspace.json did not parse: %s" m
      | Ok j ->
          let num path name =
            match
              Option.bind
                (Option.bind (Jsonx.member path j) (Jsonx.member name))
                Jsonx.to_float
            with
            | Some f -> f
            | None -> Alcotest.failf "missing %s.%s" path name
          in
          Alcotest.(check (float 0.)) "live replicas" 2. (num "idspace" "live_replicas");
          Alcotest.(check (float 0.)) "id bits" 2. (num "idspace" "id_bits");
          Alcotest.(check (float 0.)) "fork op counted" 1. (num "ops" "fork");
          check_bool "index lists the endpoint" true
            (let _, index = get_ok srv "/" in
             contains index "/idspace.json"))

let test_not_found_and_method () =
  with_server (fun _ srv ->
      let status, _ = get_ok srv "/nope" in
      check_int "404" 404 status;
      let status, _ = get_ok srv "/" in
      check_int "index ok" 200 status)

let test_events_json_ring () =
  with_server ~recent:4 (fun _ srv ->
      let sink = Http_export.event_sink srv in
      for i = 1 to 6 do
        Sink.emit sink
          (Event.v ~ts:(Event.Step i) "soak.tick" [ ("i", Jsonx.Int i) ])
      done;
      (* capacity 4: only events 3..6 survive *)
      check_int "ring trimmed" 4 (List.length (Http_export.recent_events srv));
      let status, body = get_ok srv "/events.json" in
      check_int "status" 200 status;
      check_bool "oldest trimmed" false (contains body "\"i\":1}");
      check_bool "oldest kept is 3" true (contains body "\"i\":3}");
      check_bool "newest kept" true (contains body "\"i\":6}");
      let _, body2 = get_ok srv "/events.json?n=1" in
      check_bool "n=1 keeps newest only" false (contains body2 "\"i\":5}");
      check_bool "n=1 keeps newest" true (contains body2 "\"i\":6}"))

(* --- flight recorder + alert endpoints --- *)

let test_range_json_absent () =
  with_server (fun _ srv ->
      let status, body = get_ok srv "/range.json" in
      check_int "404 without a recorder" 404 status;
      check_bool "explains itself" true (contains body "no flight recorder"))

let test_range_json () =
  let registry = Registry.create () in
  let tsdb = Tsdb.create () in
  Tsdb.observe tsdb ~now_s:10. ~kind:Tsdb.Gauge "depth" 2.;
  Tsdb.observe tsdb ~now_s:11. ~kind:Tsdb.Gauge "depth" 4.;
  let srv = Http_export.create ~registry ~tsdb ~port:0 () in
  Fun.protect ~finally:(fun () -> Http_export.stop srv) (fun () ->
      (* no metric parameter: the index *)
      let status, body = get_ok srv "/range.json" in
      check_int "index status" 200 status;
      let j =
        match Jsonx.of_string (String.trim body) with
        | Ok j -> j
        | Error m -> Alcotest.failf "index did not parse: %s" m
      in
      check_bool "metric listed" true (contains body "\"depth\"");
      check_int "series count" 1
        (Option.value ~default:(-1)
           (Option.bind (Jsonx.member "series" j) Jsonx.to_int));
      check_bool "footprint reported" true
        (Option.is_some (Jsonx.member "footprint_bytes" j));
      (* explicit absolute window *)
      let status, body =
        get_ok srv "/range.json?metric=depth&from=9&to=12&step=10"
      in
      check_int "query status" 200 status;
      let j =
        match Jsonx.of_string (String.trim body) with
        | Ok j -> j
        | Error m -> Alcotest.failf "range did not parse: %s" m
      in
      check_bool "kind" true
        (Option.bind (Jsonx.member "kind" j) Jsonx.to_str = Some "gauge");
      (match Jsonx.member "points" j with
      | Some (Jsonx.List [ p ]) ->
          check_bool "bucket max" true
            (Option.bind (Jsonx.member "max" p) Jsonx.to_float = Some 4.);
          check_bool "bucket avg" true
            (Option.bind (Jsonx.member "avg" p) Jsonx.to_float = Some 3.)
      | _ -> Alcotest.fail "expected one bucket");
      (* unknown metrics answer with an empty series, not an error *)
      let status, body = get_ok srv "/range.json?metric=nope&from=0&to=1" in
      check_int "unknown metric is 200" 200 status;
      check_bool "empty points" true (contains body "\"points\":[]");
      (* malformed parameters are a client error *)
      let status, _ = get_ok srv "/range.json?metric=depth&from=xyz" in
      check_int "bad from" 400 status;
      let status, _ = get_ok srv "/range.json?metric=depth&step=-1" in
      check_int "bad step" 400 status;
      check_bool "index lists the endpoint" true
        (let _, index = get_ok srv "/" in
         contains index "/range.json"))

let test_alerts_json () =
  with_server (fun _ srv ->
      let status, body = get_ok srv "/alerts.json" in
      check_int "404 without an engine" 404 status;
      check_bool "explains itself" true (contains body "no alert engine"));
  let registry = Registry.create () in
  let rule =
    match Alert.parse_rule "deep depth >= 5" with
    | Ok (Some r) -> r
    | _ -> Alcotest.fail "rule did not parse"
  in
  let alerts = Alert.create ~registry [ rule ] in
  Metric.set (Registry.gauge registry "depth") 9.;
  Alert.eval ~now_s:1. alerts;
  let srv = Http_export.create ~registry ~alerts ~port:0 () in
  Fun.protect ~finally:(fun () -> Http_export.stop srv) (fun () ->
      let status, body = get_ok srv "/alerts.json" in
      check_int "status" 200 status;
      check_bool "rule state served" true (contains body "\"state\":\"firing\"");
      check_bool "firing gauge exported" true
        (let _, metrics = get_ok srv "/metrics" in
         contains metrics "vstamp_alerts_firing{rule=\"deep\"} 1");
      check_bool "index lists the endpoint" true
        (let _, index = get_ok srv "/" in
         contains index "/alerts.json"))

(* --- /events ring wraparound --- *)

let parse_events_json body =
  match Jsonx.of_string (String.trim body) with
  | Error m -> Alcotest.failf "events.json did not parse: %s" m
  | Ok (Jsonx.List items) ->
      List.map
        (fun j ->
          match Event.of_json j with
          | Ok e -> e
          | Error m -> Alcotest.failf "torn event in events.json: %s" m)
        items
  | Ok _ -> Alcotest.fail "events.json is not a list"

let test_events_ring_wraparound () =
  with_server ~recent:8 (fun _ srv ->
      let sink = Http_export.event_sink srv in
      (* fill far past capacity: only the newest 8 survive *)
      for i = 1 to 100 do
        Sink.emit sink
          (Event.v ~ts:(Event.Step i) "soak.tick" [ ("i", Jsonx.Int i) ])
      done;
      let _, body = get_ok srv "/events.json" in
      let events = parse_events_json body in
      check_int "ring holds capacity" 8 (List.length events);
      let idx e =
        match List.assoc_opt "i" e.Event.fields with
        | Some (Jsonx.Int i) -> i
        | _ -> Alcotest.fail "event lost its field"
      in
      Alcotest.(check (list int))
        "oldest dropped, order preserved"
        [ 93; 94; 95; 96; 97; 98; 99; 100 ]
        (List.map idx events);
      (* the stream resumes cleanly after wraparound: backlog is the
         wrapped ring, then live events append *)
      let result = ref (Error "not run") in
      let reader =
        Thread.create
          (fun () ->
            result :=
              Http_export.Client.get ~timeout_s:10.0
                ~port:(Http_export.port srv) "/events")
          ()
      in
      Thread.delay 0.2;
      Sink.emit sink
        (Event.v ~ts:(Event.Step 101) "soak.tick" [ ("i", Jsonx.Int 101) ]);
      Thread.delay 0.2;
      Http_export.stop srv;
      Thread.join reader;
      match !result with
      | Error m -> Alcotest.failf "stream after wraparound failed: %s" m
      | Ok (status, body) ->
          check_int "stream status" 200 status;
          let lines =
            String.split_on_char '\n' (String.trim body)
            |> List.filter (fun l -> String.trim l <> "")
          in
          check_int "backlog + live line" 9 (List.length lines);
          check_bool "oldest was dropped from backlog" false
            (contains body "\"i\":92}");
          check_bool "live event streamed" true (contains body "\"i\":101}");
          List.iter
            (fun l ->
              match Event.of_string l with
              | Ok _ -> ()
              | Error m -> Alcotest.failf "torn stream line %S: %s" l m)
            lines)

let test_events_json_never_torn_under_load () =
  with_server ~recent:16 (fun _ srv ->
      let sink = Http_export.event_sink srv in
      let stop = ref false in
      let emitter =
        Thread.create
          (fun () ->
            let i = ref 0 in
            while not !stop do
              incr i;
              Sink.emit sink
                (Event.v ~ts:(Event.Step !i) "soak.tick"
                   [ ("i", Jsonx.Int !i) ])
            done)
          ()
      in
      (* every fetch while the ring churns must be a well-formed list
         of well-formed events, never a torn line *)
      for _ = 1 to 25 do
        let _, body = get_ok srv "/events.json?n=10" in
        let events = parse_events_json body in
        check_bool "n respected" true (List.length events <= 10)
      done;
      stop := true;
      Thread.join emitter)

(* --- concurrency --- *)

let test_concurrent_scrapes () =
  with_server (fun registry srv ->
      Metric.add (Registry.counter registry "soak_ops_total") 1;
      let failures = ref 0 in
      let mutex = Mutex.create () in
      let scraper () =
        for _ = 1 to 5 do
          match
            Http_export.Client.get ~port:(Http_export.port srv) "/metrics"
          with
          | Ok (200, body) when contains body "soak_ops_total" -> ()
          | _ ->
              Mutex.lock mutex;
              incr failures;
              Mutex.unlock mutex
        done
      in
      let threads = List.init 8 (fun _ -> Thread.create scraper ()) in
      List.iter Thread.join threads;
      check_int "no failed scrape" 0 !failures;
      check_bool "request counter advanced" true
        (Http_export.requests srv >= 40))

(* --- streaming --- *)

let test_events_stream () =
  let registry = Registry.create () in
  let srv = Http_export.create ~registry ~port:0 () in
  let sink = Http_export.event_sink srv in
  Sink.emit sink (Event.v "soak.backlog" [ ("k", Jsonx.Int 0) ]);
  let result = ref (Error "not run") in
  let reader =
    Thread.create
      (fun () ->
        result :=
          Http_export.Client.get ~timeout_s:10.0
            ~port:(Http_export.port srv) "/events")
      ()
  in
  (* let the subscriber attach, then publish live events *)
  Thread.delay 0.2;
  for i = 1 to 3 do
    Sink.emit sink (Event.v "soak.live" [ ("k", Jsonx.Int i) ])
  done;
  Thread.delay 0.2;
  (* stop terminates the chunked stream, releasing the reader *)
  Http_export.stop srv;
  Thread.join reader;
  match !result with
  | Error m -> Alcotest.failf "streaming GET failed: %s" m
  | Ok (status, body) ->
      check_int "status" 200 status;
      check_bool "backlog replayed" true (contains body "soak.backlog");
      check_bool "live events streamed" true (contains body "\"k\":3}");
      let lines =
        String.split_on_char '\n' (String.trim body)
        |> List.filter (fun l -> String.trim l <> "")
      in
      check_int "one JSONL line per event" 4 (List.length lines);
      List.iter
        (fun l ->
          match Event.of_string l with
          | Ok _ -> ()
          | Error m -> Alcotest.failf "bad event line %S: %s" l m)
        lines

(* --- lifecycle --- *)

let test_graceful_stop () =
  let registry = Registry.create () in
  let srv = Http_export.create ~registry ~port:0 () in
  let port = Http_export.port srv in
  check_bool "running" true (Http_export.running srv);
  let status, _ = get_ok srv "/healthz" in
  check_int "served before stop" 200 status;
  Http_export.stop srv;
  Http_export.stop srv;
  (* idempotent *)
  check_bool "stopped" false (Http_export.running srv);
  match Http_export.Client.get ~timeout_s:1.0 ~port "/healthz" with
  | Ok (status, _) -> Alcotest.failf "served after stop: %d" status
  | Error _ -> ()

let test_ephemeral_ports_distinct () =
  with_server (fun _ a ->
      with_server (fun _ b ->
          check_bool "distinct ephemeral ports" true
            (Http_export.port a <> Http_export.port b);
          check_bool "nonzero" true (Http_export.port a > 0)))

(* --- methods: HEAD and 405 --- *)

let request_ok ?meth srv path =
  match
    Http_export.Client.request ?meth ~port:(Http_export.port srv) path
  with
  | Ok (status, headers, body) -> (status, headers, body)
  | Error m ->
      Alcotest.failf "%s %s failed: %s"
        (Option.value ~default:"GET" meth)
        path m

let header name headers =
  List.assoc_opt (String.lowercase_ascii name)
    (List.map (fun (k, v) -> (String.lowercase_ascii k, v)) headers)

let test_head_matches_get () =
  with_server (fun registry srv ->
      Metric.add (Registry.counter registry "soak_ops_total") 5;
      List.iter
        (fun path ->
          let _, get_headers, get_body = request_ok srv path in
          let status, head_headers, head_body =
            request_ok ~meth:"HEAD" srv path
          in
          check_int (path ^ " HEAD status") 200 status;
          check_string (path ^ " HEAD body empty") "" head_body;
          check_bool (path ^ " content-length matches GET") true
            (header "content-length" head_headers
            = Some (string_of_int (String.length get_body)));
          check_bool (path ^ " content-type matches GET") true
            (header "content-type" head_headers
            = header "content-type" get_headers))
        [ "/"; "/metrics"; "/stats.json" ];
      (* /healthz embeds a live uptime, so only shape is stable *)
      let status, headers, body = request_ok ~meth:"HEAD" srv "/healthz" in
      check_int "/healthz HEAD status" 200 status;
      check_string "/healthz HEAD body empty" "" body;
      check_bool "/healthz content-length positive" true
        (match header "content-length" headers with
        | Some n -> int_of_string_opt n <> None && int_of_string n > 0
        | None -> false);
      (* HEAD on a missing path is still a 404, still bodyless *)
      let status, _, body = request_ok ~meth:"HEAD" srv "/nope" in
      check_int "HEAD 404" 404 status;
      check_string "HEAD 404 body empty" "" body)

let test_unsupported_method_405 () =
  with_server (fun _ srv ->
      List.iter
        (fun meth ->
          let status, headers, _ = request_ok ~meth srv "/metrics" in
          check_int (meth ^ " is 405") 405 status;
          check_bool (meth ^ " lists allowed methods") true
            (header "allow" headers = Some "GET, HEAD"))
        [ "POST"; "PUT"; "DELETE" ])

(* --- client receive timeout --- *)

let test_client_timeout () =
  (* a listener that accepts but never answers must not hang the
     client: the configured receive deadline turns it into an error *)
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen sock 1;
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      let started = Unix.gettimeofday () in
      match Http_export.Client.get ~timeout_s:0.5 ~port "/healthz" with
      | Ok (status, _) -> Alcotest.failf "silent server answered: %d" status
      | Error _ ->
          let elapsed = Unix.gettimeofday () -. started in
          check_bool "gave up promptly" true (elapsed < 4.0))

(* --- federation: /cluster.json over two live member servers --- *)

let test_cluster_json_absent () =
  with_server (fun _ srv ->
      let status, body = get_ok srv "/cluster.json" in
      check_int "404 without a cluster callback" 404 status;
      check_bool "explains itself" true (contains body "no cluster"))

let test_cluster_federation () =
  (* two member servers with their own registries… *)
  let mk id =
    let registry = Registry.create () in
    let srv =
      Http_export.create ~registry
        ~health:(fun () -> [ ("node", Jsonx.String id) ])
        ~port:0 ()
    in
    (registry, srv)
  in
  let reg_a, srv_a = mk "node-a" in
  let _reg_b, srv_b = mk "node-b" in
  Metric.add (Registry.counter reg_a "soak_ops_total") 7;
  let nodes =
    [
      { Cluster.id = "node-a"; host = "127.0.0.1";
        port = Http_export.port srv_a };
      { Cluster.id = "node-b"; host = "127.0.0.1";
        port = Http_export.port srv_b };
      (* …plus one that is down *)
      { Cluster.id = "node-c"; host = "127.0.0.1"; port = 1 };
    ]
  in
  (* …federated behind a third server's /cluster.json *)
  let parent_reg = Registry.create () in
  let parent =
    Http_export.create ~registry:parent_reg
      ~cluster:(fun () ->
        Cluster.collect ~timeout_s:2.0
          ~meta:[ ("trace", Jsonx.String "t-123") ]
          nodes)
      ~port:0 ()
  in
  Fun.protect
    ~finally:(fun () ->
      Http_export.stop parent;
      Http_export.stop srv_a;
      Http_export.stop srv_b)
    (fun () ->
      let status, body = get_ok parent "/cluster.json" in
      check_int "status" 200 status;
      let j =
        match Jsonx.of_string (String.trim body) with
        | Ok j -> j
        | Error m -> Alcotest.failf "cluster.json did not parse: %s" m
      in
      let int name =
        Option.value ~default:(-1)
          (Option.bind (Jsonx.member name j) Jsonx.to_int)
      in
      check_bool "schema" true
        (Option.bind (Jsonx.member "schema" j) Jsonx.to_str
        = Some Cluster.schema);
      check_int "nodes_total" 3 (int "nodes_total");
      check_int "nodes_up" 2 (int "nodes_up");
      check_bool "meta passed through" true
        (Option.bind (Jsonx.member "trace" j) Jsonx.to_str = Some "t-123");
      match Jsonx.member "nodes" j with
      | Some (Jsonx.List rows) ->
          check_int "one row per node" 3 (List.length rows);
          let row id =
            match
              List.find_opt
                (fun r ->
                  Option.bind (Jsonx.member "id" r) Jsonx.to_str = Some id)
                rows
            with
            | Some r -> r
            | None -> Alcotest.failf "node %s missing from roll-up" id
          in
          let up r =
            Option.bind (Jsonx.member "up" r) Jsonx.to_bool = Some true
          in
          check_bool "node-a up" true (up (row "node-a"));
          check_bool "node-b up" true (up (row "node-b"));
          check_bool "node-c down" false (up (row "node-c"));
          check_bool "member health federated" true
            (Option.bind
               (Option.bind (Jsonx.member "health" (row "node-a"))
                  (Jsonx.member "node"))
               Jsonx.to_str
            = Some "node-a");
          check_bool "member stats federated" true
            (Option.bind
               (Option.bind (Jsonx.member "stats" (row "node-a"))
                  (Jsonx.member "soak_ops_total"))
               Jsonx.to_int
            = Some 7);
          check_bool "down node records its error" true
            (Option.is_some (Jsonx.member "error" (row "node-c")));
          check_bool "index lists the endpoint" true
            (let _, index = get_ok parent "/" in
             contains index "/cluster.json")
      | _ -> Alcotest.fail "cluster.json has no nodes list")

let () =
  Alcotest.run "http_export"
    [
      ( "endpoints",
        [
          Alcotest.test_case "/metrics" `Quick test_metrics_endpoint;
          Alcotest.test_case "/stats.json" `Quick test_stats_json_endpoint;
          Alcotest.test_case "/healthz" `Quick test_healthz_endpoint;
          Alcotest.test_case "/lag.json" `Quick test_lag_json_endpoint;
          Alcotest.test_case "/idspace.json" `Quick test_idspace_json_endpoint;
          Alcotest.test_case "404 and index" `Quick test_not_found_and_method;
          Alcotest.test_case "/events.json ring" `Quick test_events_json_ring;
          Alcotest.test_case "/range.json without recorder" `Quick
            test_range_json_absent;
          Alcotest.test_case "/range.json" `Quick test_range_json;
          Alcotest.test_case "/alerts.json" `Quick test_alerts_json;
        ] );
      ( "ring wraparound",
        [
          Alcotest.test_case "backlog wrap + stream resume" `Quick
            test_events_ring_wraparound;
          Alcotest.test_case "no torn lines under churn" `Quick
            test_events_json_never_torn_under_load;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "8 threads x 5 scrapes" `Quick
            test_concurrent_scrapes;
        ] );
      ( "streaming",
        [ Alcotest.test_case "/events chunked feed" `Quick test_events_stream ]
      );
      ( "lifecycle",
        [
          Alcotest.test_case "graceful stop" `Quick test_graceful_stop;
          Alcotest.test_case "ephemeral ports" `Quick
            test_ephemeral_ports_distinct;
        ] );
      ( "methods",
        [
          Alcotest.test_case "HEAD matches GET" `Quick test_head_matches_get;
          Alcotest.test_case "405 with Allow" `Quick
            test_unsupported_method_405;
        ] );
      ( "client",
        [ Alcotest.test_case "receive timeout" `Quick test_client_timeout ] );
      ( "federation",
        [
          Alcotest.test_case "/cluster.json without callback" `Quick
            test_cluster_json_absent;
          Alcotest.test_case "two live members + one down" `Quick
            test_cluster_federation;
        ] );
    ]
