open Vstamp_vv
open Vstamp_kvs

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let no_ctx = Version_vector.zero

let values n k = List.sort compare (fst (Kv_node.get n k))

(* --- single node --- *)

let test_empty_get () =
  let n = Kv_node.create ~id:0 in
  Alcotest.(check (list string)) "empty" [] (fst (Kv_node.get n "k"));
  Alcotest.(check (list string)) "no keys" [] (Kv_node.keys n)

let test_put_get () =
  let n = Kv_node.put (Kv_node.create ~id:0) ~key:"k" ~context:no_ctx "v1" in
  Alcotest.(check (list string)) "read back" [ "v1" ] (values n "k");
  Alcotest.(check (list string)) "keys" [ "k" ] (Kv_node.keys n)

let test_read_modify_write () =
  let n = Kv_node.put (Kv_node.create ~id:0) ~key:"k" ~context:no_ctx "v1" in
  let _, ctx = Kv_node.get n "k" in
  let n = Kv_node.put n ~key:"k" ~context:ctx "v2" in
  Alcotest.(check (list string)) "overwritten" [ "v2" ] (values n "k");
  check_bool "no conflict" false (Kv_node.conflict n "k")

let test_keys_independent () =
  let n = Kv_node.create ~id:0 in
  let n = Kv_node.put n ~key:"a" ~context:no_ctx "1" in
  let n = Kv_node.put n ~key:"b" ~context:no_ctx "2" in
  let _, ctx_a = Kv_node.get n "a" in
  let n = Kv_node.put n ~key:"a" ~context:ctx_a "1b" in
  Alcotest.(check (list string)) "a overwritten" [ "1b" ] (values n "a");
  Alcotest.(check (list string)) "b untouched" [ "2" ] (values n "b")

let test_lost_update_becomes_siblings () =
  let n = Kv_node.put (Kv_node.create ~id:0) ~key:"k" ~context:no_ctx "base" in
  let _, ctx = Kv_node.get n "k" in
  (* two clients read the same version and write back *)
  let n = Kv_node.put n ~key:"k" ~context:ctx "from-c1" in
  let n = Kv_node.put n ~key:"k" ~context:ctx "from-c2" in
  Alcotest.(check (list string))
    "no lost update"
    [ "from-c1"; "from-c2" ]
    (values n "k");
  check_bool "conflict visible" true (Kv_node.conflict n "k")

(* --- deletes --- *)

let test_delete () =
  let n = Kv_node.put (Kv_node.create ~id:0) ~key:"k" ~context:no_ctx "v1" in
  let _, ctx = Kv_node.get n "k" in
  let n = Kv_node.delete n ~key:"k" ~context:ctx in
  Alcotest.(check (list string)) "gone" [] (values n "k");
  Alcotest.(check (list string)) "tombstone remains" [ "k" ] (Kv_node.tombstones n)

let test_delete_keeps_concurrent () =
  let n = Kv_node.put (Kv_node.create ~id:0) ~key:"k" ~context:no_ctx "v1" in
  let _, ctx = Kv_node.get n "k" in
  (* a concurrent write the deleting client never saw *)
  let n = Kv_node.put n ~key:"k" ~context:no_ctx "concurrent" in
  let n = Kv_node.delete n ~key:"k" ~context:ctx in
  Alcotest.(check (list string)) "survivor" [ "concurrent" ] (values n "k")

let test_no_resurrection () =
  (* the classic tombstone test: delete on one node, then anti-entropy
     with a stale peer must not bring the value back *)
  let a = Kv_node.put (Kv_node.create ~id:0) ~key:"k" ~context:no_ctx "v1" in
  let b = Kv_node.create ~id:1 in
  let a, b = Kv_node.anti_entropy a b in
  Alcotest.(check (list string)) "replicated" [ "v1" ] (values b "k");
  let _, ctx = Kv_node.get a "k" in
  let a = Kv_node.delete a ~key:"k" ~context:ctx in
  (* b still holds v1; the sync must kill it, not resurrect it at a *)
  let a, b = Kv_node.anti_entropy a b in
  Alcotest.(check (list string)) "stays deleted at a" [] (values a "k");
  Alcotest.(check (list string)) "deleted at b too" [] (values b "k")

(* --- anti-entropy --- *)

let test_anti_entropy_converges () =
  let a = Kv_node.put (Kv_node.create ~id:0) ~key:"x" ~context:no_ctx "ax" in
  let b = Kv_node.put (Kv_node.create ~id:1) ~key:"y" ~context:no_ctx "by" in
  let a, b = Kv_node.anti_entropy a b in
  check_bool "converged" true (Kv_node.converged a b);
  Alcotest.(check (list string)) "a has both" [ "x"; "y" ] (Kv_node.keys a)

let test_concurrent_servers_siblings () =
  let a = Kv_node.put (Kv_node.create ~id:0) ~key:"k" ~context:no_ctx "at-a" in
  let b = Kv_node.put (Kv_node.create ~id:1) ~key:"k" ~context:no_ctx "at-b" in
  let a, _ = Kv_node.anti_entropy a b in
  Alcotest.(check (list string)) "siblings" [ "at-a"; "at-b" ] (values a "k");
  (* a client reads through a and reconciles *)
  let _, ctx = Kv_node.get a "k" in
  let a = Kv_node.put a ~key:"k" ~context:ctx "merged" in
  Alcotest.(check (list string)) "reconciled" [ "merged" ] (values a "k")

let test_three_node_ring () =
  let nodes =
    Array.init 3 (fun i -> Kv_node.put (Kv_node.create ~id:i) ~key:"k" ~context:no_ctx (Printf.sprintf "w%d" i))
  in
  (* ring gossip twice *)
  for _ = 1 to 2 do
    for i = 0 to 2 do
      let j = (i + 1) mod 3 in
      let a, b = Kv_node.anti_entropy nodes.(i) nodes.(j) in
      nodes.(i) <- a;
      nodes.(j) <- b
    done
  done;
  check_bool "all converged" true
    (Kv_node.converged nodes.(0) nodes.(1)
    && Kv_node.converged nodes.(1) nodes.(2));
  check_int "three siblings everywhere" 3 (List.length (values nodes.(0) "k"))

let test_size_bits () =
  let n = Kv_node.put (Kv_node.create ~id:0) ~key:"k" ~context:no_ctx "v" in
  check_bool "positive" true (Kv_node.size_bits n > 0);
  check_int "empty node" 0 (Kv_node.size_bits (Kv_node.create ~id:9))

(* --- property: random client/server programs never lose live writes --- *)

type cmd =
  | CPut of int * string  (* via node, key; value generated *)
  | CRmw of int * string  (* read-modify-write through a node *)
  | CDel of int * string
  | CSync of int * int

let gen_cmd n_nodes =
  let open QCheck2.Gen in
  let node = int_bound (n_nodes - 1) in
  let key = oneofl [ "a"; "b" ] in
  oneof
    [
      map2 (fun n k -> CPut (n, k)) node key;
      map2 (fun n k -> CRmw (n, k)) node key;
      map2 (fun n k -> CDel (n, k)) node key;
      map2
        (fun i j ->
          let j = if j >= i then j + 1 else j in
          CSync (i, j))
        node
        (int_bound (n_nodes - 2));
    ]

let print_cmd = function
  | CPut (n, k) -> Printf.sprintf "put(%d,%s)" n k
  | CRmw (n, k) -> Printf.sprintf "rmw(%d,%s)" n k
  | CDel (n, k) -> Printf.sprintf "del(%d,%s)" n k
  | CSync (i, j) -> Printf.sprintf "sync(%d,%d)" i j

let prop_sound =
  QCheck2.Test.make
    ~name:"random kv programs: entries stay well-formed; full gossip converges"
    ~count:300
    ~print:(fun cmds -> String.concat ";" (List.map print_cmd cmds))
    QCheck2.Gen.(list_size (int_bound 30) (gen_cmd 3))
    (fun cmds ->
      let nodes = Array.init 3 (fun i -> Kv_node.create ~id:i) in
      let counter = ref 0 in
      let value () =
        incr counter;
        Printf.sprintf "w%d" !counter
      in
      List.iter
        (fun cmd ->
          match cmd with
          | CPut (n, k) ->
              nodes.(n) <- Kv_node.put nodes.(n) ~key:k ~context:no_ctx (value ())
          | CRmw (n, k) ->
              let _, ctx = Kv_node.get nodes.(n) k in
              nodes.(n) <- Kv_node.put nodes.(n) ~key:k ~context:ctx (value ())
          | CDel (n, k) ->
              let _, ctx = Kv_node.get nodes.(n) k in
              nodes.(n) <- Kv_node.delete nodes.(n) ~key:k ~context:ctx
          | CSync (i, j) ->
              let a, b = Kv_node.anti_entropy nodes.(i) nodes.(j) in
              nodes.(i) <- a;
              nodes.(j) <- b)
        cmds;
      (* entries all well-formed *)
      let wf =
        Array.for_all
          (fun n ->
            List.for_all
              (fun k -> Dotted_vv.well_formed (Kv_node.entry n k))
              (Kv_node.keys n @ Kv_node.tombstones n))
          nodes
      in
      (* a full gossip round converges everyone *)
      for _ = 1 to 2 do
        for i = 0 to 2 do
          let j = (i + 1) mod 3 in
          let a, b = Kv_node.anti_entropy nodes.(i) nodes.(j) in
          nodes.(i) <- a;
          nodes.(j) <- b
        done
      done;
      wf
      && Kv_node.converged nodes.(0) nodes.(1)
      && Kv_node.converged nodes.(1) nodes.(2))

(* --- Obs instrumentation --- *)

let counter_value r name =
  Vstamp_obs.Metric.count (Vstamp_obs.Registry.counter r name)

let test_obs_counters () =
  let module R = Vstamp_obs.Registry in
  let r = R.create () in
  check_bool "detached by default" false (Kv_node.Obs.attached ());
  Kv_node.Obs.attach ~registry:r ();
  Fun.protect ~finally:Kv_node.Obs.detach (fun () ->
      check_bool "attached" true (Kv_node.Obs.attached ());
      let a = Kv_node.create ~id:0 and b = Kv_node.create ~id:1 in
      let _, ctx = Kv_node.get a "k" in
      let a = Kv_node.put a ~key:"k" ~context:ctx "v1" in
      let _, ctx = Kv_node.get a "k" in
      let a = Kv_node.delete a ~key:"k" ~context:ctx in
      let a, _b = Kv_node.anti_entropy a b in
      ignore (Kv_node.get a "k");
      let op o = R.with_labels "kvs_ops_total" [ ("op", o) ] in
      check_int "gets" 3 (counter_value r (op "get"));
      check_int "puts" 1 (counter_value r (op "put"));
      check_int "deletes" 1 (counter_value r (op "delete"));
      check_int "anti-entropy rounds" 1 (counter_value r (op "anti_entropy"));
      check_int "sibling widths observed" 3
        (Vstamp_obs.Metric.observations (R.histogram r "kvs_get_siblings"));
      (* one anti-entropy round observes both endpoints' sizes *)
      check_int "node sizes observed" 2
        (Vstamp_obs.Metric.observations (R.histogram r "kvs_node_size_bits")));
  check_bool "detached again" false (Kv_node.Obs.attached ());
  (* instrumentation off: ops no longer count *)
  let a = Kv_node.create ~id:0 in
  ignore (Kv_node.get a "k");
  check_int "no counting when detached" 3
    (counter_value r (R.with_labels "kvs_ops_total" [ ("op", "get") ]))

let test_stamped_kv_delta_ledger () =
  let module R = Vstamp_obs.Registry in
  let module M = Vstamp_obs.Metric in
  let r = R.create () in
  check_bool "detached by default" false (Stamped_kv.Obs.attached ());
  Stamped_kv.Obs.attach ~registry:r ();
  Fun.protect ~finally:Stamped_kv.Obs.detach (fun () ->
      check_bool "attached" true (Stamped_kv.Obs.attached ());
      let shipped () = counter_value r "kvs_sync_shipped_bytes_total" in
      let minimal () = counter_value r "kvs_sync_minimal_bytes_total" in
      let redundant () = counter_value r "kvs_sync_redundant_bytes_total" in
      (* replicate one key to an empty peer: shipping it IS the delta *)
      let a = Stamped_kv.put Stamped_kv.empty ~key:"k" "hello" in
      let a, b = Stamped_kv.sync a Stamped_kv.empty in
      check_int "rounds" 1 (counter_value r "kvs_sync_rounds_total");
      check_bool "replication ships" true (shipped () > 0);
      check_int "replication is minimal" (shipped ()) (minimal ());
      (* re-sync of equal replicas: the whole exchange is redundant *)
      let before_min = minimal () in
      let a, b = Stamped_kv.sync a b in
      check_bool "equal keys ship metadata" true (shipped () > minimal ());
      check_int "equal keys need nothing" before_min (minimal ());
      check_bool "redundancy recorded" true (redundant () > 0);
      (* a one-sided edit: the dominant side plus its value is needed *)
      let a = Stamped_kv.put a ~key:"k" "hello world" in
      let sh0 = shipped () and mi0 = minimal () in
      let a, b = Stamped_kv.sync a b in
      check_bool "propagation needs bytes" true (minimal () > mi0);
      check_bool "but fewer than shipped" true
        (minimal () - mi0 < shipped () - sh0);
      (* concurrent edits: nothing can be elided, the delta is the lot *)
      let a = Stamped_kv.put a ~key:"k" "left" in
      let b = Stamped_kv.put b ~key:"k" "right" in
      let sh1 = shipped () and mi1 = minimal () in
      let _, _ = Stamped_kv.sync a b in
      check_int "concurrent keys are irreducible" (shipped () - sh1)
        (minimal () - mi1);
      let eff = M.value (R.gauge r "kvs_sync_delta_efficiency") in
      check_bool "efficiency in (0, 1]" true (eff > 0. && eff <= 1.);
      check_int "ledger balances" (shipped ()) (minimal () + redundant ()));
  check_bool "detached again" false (Stamped_kv.Obs.attached ());
  let rounds = counter_value r "kvs_sync_rounds_total" in
  let a = Stamped_kv.put Stamped_kv.empty ~key:"x" "v" in
  let _ = Stamped_kv.sync a Stamped_kv.empty in
  check_int "no counting when detached" rounds
    (counter_value r "kvs_sync_rounds_total")

let test_stamped_kv_emits_spans () =
  let module Tr = Vstamp_obs.Trace_ctx in
  let spans = ref [] in
  Tr.detach ();
  Tr.set_id_seed 0xabc;
  Tr.attach ~sink:(fun sp -> spans := sp :: !spans) ~node:"server-a" ();
  Fun.protect ~finally:Tr.detach (fun () ->
      let a = Stamped_kv.put Stamped_kv.empty ~key:"k" "v" in
      let _, _ = Stamped_kv.sync a Stamped_kv.empty in
      let names = List.rev_map (fun sp -> sp.Tr.sp_name) !spans in
      check_bool "kvs.sync span" true (List.mem "kvs.sync" names);
      check_bool "kvs.apply span" true (List.mem "kvs.apply" names);
      let walk = List.find (fun sp -> sp.Tr.sp_name = "kvs.sync") !spans in
      let apply = List.find (fun sp -> sp.Tr.sp_name = "kvs.apply") !spans in
      check_bool "apply continues the walk's trace" true
        (String.equal walk.Tr.sp_trace apply.Tr.sp_trace);
      check_bool "apply is a child of the walk" true
        (apply.Tr.sp_parent = Some walk.Tr.sp_id);
      check_bool "key count annotated" true
        (List.mem_assoc "keys" walk.Tr.sp_attrs));
  (* detached: syncs still work, nothing recorded *)
  let n = List.length !spans in
  let a = Stamped_kv.put Stamped_kv.empty ~key:"x" "v" in
  let _ = Stamped_kv.sync a Stamped_kv.empty in
  check_int "no spans when detached" n (List.length !spans)

let () =
  Alcotest.run "kvs"
    [
      ( "single node",
        [
          Alcotest.test_case "empty get" `Quick test_empty_get;
          Alcotest.test_case "put/get" `Quick test_put_get;
          Alcotest.test_case "read-modify-write" `Quick test_read_modify_write;
          Alcotest.test_case "keys independent" `Quick test_keys_independent;
          Alcotest.test_case "no lost updates" `Quick
            test_lost_update_becomes_siblings;
        ] );
      ( "deletes",
        [
          Alcotest.test_case "delete" `Quick test_delete;
          Alcotest.test_case "delete keeps concurrent" `Quick
            test_delete_keeps_concurrent;
          Alcotest.test_case "no resurrection" `Quick test_no_resurrection;
        ] );
      ( "anti-entropy",
        [
          Alcotest.test_case "converges" `Quick test_anti_entropy_converges;
          Alcotest.test_case "server siblings" `Quick
            test_concurrent_servers_siblings;
          Alcotest.test_case "three-node ring" `Quick test_three_node_ring;
          Alcotest.test_case "size" `Quick test_size_bits;
        ] );
      ( "instrumentation",
        [
          Alcotest.test_case "obs counters" `Quick test_obs_counters;
          Alcotest.test_case "stamped-kv delta ledger" `Quick
            test_stamped_kv_delta_ledger;
          Alcotest.test_case "trace spans" `Quick test_stamped_kv_emits_spans;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_sound ]);
    ]
