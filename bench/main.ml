(* Benchmark and experiment harness.

   Regenerates every figure of the paper (F1-F4) and runs the
   quantitative experiments the paper's claims imply (E1-E8), as indexed
   in DESIGN.md; then runs the bechamel micro-benchmarks for operation
   latency (E3).  Everything is deterministic except wall-clock
   latencies.  Results are recorded in EXPERIMENTS.md. *)

open Vstamp_core
open Vstamp_vv
open Vstamp_sim

let section title =
  Format.printf "@.%s@.%s@.@." title (String.make (String.length title) '=')

let table = Stats.pp_table Format.std_formatter

(* ITC as a tracker (lives here because vstamp.sim does not depend on
   vstamp.itc). *)
module Itc_tracker = struct
  type t = Vstamp_itc.Itc.t

  type state = unit

  let name = "itc"

  let initial = ((), Vstamp_itc.Itc.seed)

  let update () x = ((), Vstamp_itc.Itc.update x)

  let fork () x = ((), Vstamp_itc.Itc.fork x)

  let join () a b = ((), Vstamp_itc.Itc.join a b)

  let leq = Vstamp_itc.Itc.leq

  let size_bits = Vstamp_itc.Itc.size_bits

  let invariants _ = []

  let pp = Vstamp_itc.Itc.pp
end

let itc_tracker = Tracker.Packed (module Itc_tracker)

(* ------------------------------------------------------------------ *)
(* F1-F4: the paper's figures                                          *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  section "F1: Figure 1 - version vectors among three fixed replicas";
  let f = Scenario.Fig1.run () in
  table ~header:[ "replica"; "final vector"; "paper" ]
    (List.map2
       (fun (name, v) (_, expected) ->
         [
           name;
           Version_vector.to_string v;
           "[" ^ String.concat "," (List.map string_of_int expected) ^ "]";
         ])
       f.Scenario.Fig1.final Scenario.Fig1.expected_final);
  List.iter
    (fun (x, y, r) ->
      Format.printf "  %s vs %s: %s@." x y (Relation.to_paper_string r))
    f.Scenario.Fig1.relations;
  Format.printf "  reproduces the paper: %b@." (Scenario.Fig1.matches_paper f)

let fig2_4 () =
  section "F2+F4: Figures 2 and 4 - fork/join evolution and its stamps";
  let f = Scenario.Fig4.run () in
  table ~header:[ "element"; "stamp" ]
    (List.map
       (fun (n, s) -> [ n; Stamp.to_string s ])
       f.Scenario.Fig4.named_steps);
  Format.printf "  rewrite chain: %s@."
    (String.concat " -> "
       (List.map Stamp.to_string f.Scenario.Fig4.g_reduction_chain));
  Format.printf "  frontier sizes along the run: %s@."
    (String.concat "->"
       (List.map string_of_int (Scenario.Frontiers.frontier_sizes ())));
  Format.printf "  reproduces the paper: %b@." (Scenario.Fig4.matches_paper f)

let fig3 () =
  section "F3: Figure 3 - fixed replicas encoded under fork-and-join";
  let f = Scenario.Fig3.run () in
  table ~header:[ "pair"; "stamps say"; "vectors say" ]
    (List.map2
       (fun (x, y, rs) (_, _, rv) ->
         [
           x ^ " vs " ^ y;
           Relation.to_paper_string rs;
           Relation.to_paper_string rv;
         ])
       f.Scenario.Fig3.stamp_relations f.Scenario.Fig3.vv_relations);
  Format.printf "  encodings agree: %b@." (Scenario.Fig3.encodings_agree f)

(* ------------------------------------------------------------------ *)
(* E1: size growth across workloads and scales                         *)
(* ------------------------------------------------------------------ *)

let e1_trackers =
  [
    Tracker.stamps;
    Tracker.version_vectors;
    Tracker.dynamic_vv;
    itc_tracker;
    Tracker.histories;
  ]

let e1 () =
  section "E1: tracking-data size (bits/replica, mean/p95) by workload and scale";
  let scales = [ 50; 100; 200; 400 ] in
  let workload_families =
    [
      ("uniform", fun n -> Workload.uniform ~seed:7 ~n_ops:n ());
      ("deep-fork", fun n -> Workload.deep_fork ~depth:(n / 2) ());
      (* sustained star sync compounds id widths exponentially in the
         number of rounds (see EXPERIMENTS.md), so its scale axis is
         rounds over 4 peers, kept in the tractable range *)
      ( "sync-star",
        fun n -> Workload.sync_star ~peers:4 ~rounds:(max 1 (n / 64)) () );
      ( "gossip",
        fun n -> Workload.gossip ~seed:7 ~replicas:8 ~rounds:(max 1 (n / 10)) () );
      ("churn", fun n -> Workload.churn ~seed:7 ~target:8 ~n_ops:n ());
    ]
  in
  let json_rows = ref [] in
  List.iter
    (fun (wname, mk) ->
      Format.printf "@.workload: %s@." wname;
      let header =
        "tracker" :: List.map (fun n -> Printf.sprintf "n=%d" n) scales
      in
      let rows =
        List.map
          (fun t ->
            Tracker.name t
            :: List.map
                 (fun n ->
                   let r = System.run ~with_oracle:false t (mk n) in
                   let f = r.System.final in
                   json_rows :=
                     Vstamp_obs.Jsonx.Obj
                       [
                         ("workload", Vstamp_obs.Jsonx.String wname);
                         ("n", Vstamp_obs.Jsonx.Int n);
                         ("tracker", Vstamp_obs.Jsonx.String r.System.tracker);
                         ("mean_bits", Vstamp_obs.Jsonx.Float f.System.mean_bits);
                         ("p50_bits", Vstamp_obs.Jsonx.Float f.System.p50_bits);
                         ("p95_bits", Vstamp_obs.Jsonx.Float f.System.p95_bits);
                         ("p99_bits", Vstamp_obs.Jsonx.Float f.System.p99_bits);
                         ("max_bits", Vstamp_obs.Jsonx.Int f.System.max_bits);
                         ("peak_bits", Vstamp_obs.Jsonx.Int r.System.peak_bits);
                       ]
                     :: !json_rows;
                   Printf.sprintf "%.0f/%.0f" f.System.mean_bits
                     f.System.p95_bits)
                 scales)
          e1_trackers
      in
      table ~header rows)
    workload_families;
  Format.printf "  (cells: mean/p95 bits per replica on the final frontier)@.";
  Vstamp_obs.Jsonx.List (List.rev !json_rows)

(* ------------------------------------------------------------------ *)
(* E2: reduction efficacy                                              *)
(* ------------------------------------------------------------------ *)

let e2 () =
  section "E2: Section 6 reduction - reduced vs non-reducing stamp sizes";
  let cases =
    [
      ( "fork-storm then full merge",
        Workload.deep_fork ~depth:8 ()
        @ List.init 8 (fun _ -> Execution.Join (0, 1)) );
      ("churn (target 5, 120 ops)", Workload.churn ~seed:3 ~target:5 ~n_ops:120 ());
      (* non-reducing widths double per pair sync: 12 rounds = 4096-wide
         ids, already a 2^12 blowup the reduced model keeps at width 1 *)
      ("repeated pair sync x12", Workload.gossip ~seed:3 ~replicas:2 ~rounds:12 ());
      ("uniform small", Workload.uniform ~seed:3 ~n_ops:60 ~max_frontier:5 ());
    ]
  in
  let json_rows = ref [] in
  table
    ~header:
      [ "trace"; "reduced bits"; "p95"; "non-reducing bits"; "p95"; "ratio" ]
    (List.map
       (fun (name, ops) ->
         let reduced =
           (System.run ~with_oracle:false Tracker.stamps ops).System.final
         in
         let raw =
           (System.run ~with_oracle:false Tracker.stamps_nonreducing ops)
             .System.final
         in
         let red = reduced.System.total_bits
         and rawb = raw.System.total_bits in
         let ratio =
           if red = 0 then 0.0 else float_of_int rawb /. float_of_int red
         in
         json_rows :=
           Vstamp_obs.Jsonx.Obj
             [
               ("trace", Vstamp_obs.Jsonx.String name);
               ("reduced_bits", Vstamp_obs.Jsonx.Int red);
               ("reduced_p95_bits", Vstamp_obs.Jsonx.Float reduced.System.p95_bits);
               ("raw_bits", Vstamp_obs.Jsonx.Int rawb);
               ("raw_p95_bits", Vstamp_obs.Jsonx.Float raw.System.p95_bits);
               ("ratio", Vstamp_obs.Jsonx.Float ratio);
             ]
           :: !json_rows;
         [
           name;
           string_of_int red;
           Printf.sprintf "%.0f" reduced.System.p95_bits;
           string_of_int rawb;
           Printf.sprintf "%.0f" raw.System.p95_bits;
           (if red = 0 then "inf" else Printf.sprintf "%.1fx" ratio);
         ])
       cases);
  Vstamp_obs.Jsonx.List (List.rev !json_rows)

(* ------------------------------------------------------------------ *)
(* E4: ordering accuracy against the causal-history oracle             *)
(* ------------------------------------------------------------------ *)

let e4 () =
  section "E4: ordering accuracy vs the causal-history oracle";
  let ops = Workload.uniform ~seed:11 ~n_ops:300 () in
  let trackers =
    [
      Tracker.stamps;
      Tracker.stamps_list;
      Tracker.version_vectors;
      Tracker.dynamic_vv;
      itc_tracker;
      Tracker.plausible 2;
      Tracker.plausible 4;
      Tracker.plausible 8;
    ]
  in
  table
    ~header:[ "tracker"; "comparisons"; "spurious"; "missed" ]
    (List.map
       (fun t ->
         let r = System.run t ops in
         match r.System.accuracy with
         | Some a ->
             [
               r.System.tracker;
               string_of_int a.System.comparisons;
               string_of_int a.System.spurious_orderings;
               string_of_int a.System.missed_orderings;
             ]
         | None -> [ r.System.tracker; "-"; "-"; "-" ])
       trackers)

(* ------------------------------------------------------------------ *)
(* E5: plausible-clock accuracy sweep                                  *)
(* ------------------------------------------------------------------ *)

let e5 () =
  section "E5: plausible clocks - misclassification rate by slot count";
  let ops = Workload.gossip ~seed:5 ~replicas:10 ~rounds:12 () in
  table
    ~header:[ "slots"; "size bits"; "comparisons"; "spurious"; "error %" ]
    (List.map
       (fun slots ->
         let r = System.run (Tracker.plausible slots) ops in
         match r.System.accuracy with
         | Some a ->
             [
               string_of_int slots;
               Printf.sprintf "%.0f" r.System.final.System.mean_bits;
               string_of_int a.System.comparisons;
               string_of_int a.System.spurious_orderings;
               Printf.sprintf "%.1f"
                 (100.0
                 *. float_of_int a.System.spurious_orderings
                 /. float_of_int (max 1 a.System.comparisons));
             ]
         | None -> assert false)
       [ 1; 2; 4; 8; 16; 32 ])

(* ------------------------------------------------------------------ *)
(* E6: replica creation under partition                                *)
(* ------------------------------------------------------------------ *)

let e6 () =
  section "E6: replica creation under partition (the motivating scenario)";
  (* n devices in the cut-off group each try to spawn a replica *)
  let attempts = 40 in
  let server = Id_source.make (Id_source.Partitioned { server_group = 0 }) in
  let blocked = ref 0 and src = ref server in
  for _ = 1 to attempts do
    match Id_source.alloc ~group:1 !src with
    | Ok (_, s) -> src := s
    | Error (`Unavailable, s) ->
        incr blocked;
        src := s
  done;
  (* random ids at various widths: collision counts for the same burst *)
  let collisions bits =
    let src = ref (Id_source.make (Id_source.Random { bits })) in
    for _ = 1 to attempts do
      match Id_source.alloc ~group:1 !src with
      | Ok (_, s) -> src := s
      | Error _ -> assert false
    done;
    Id_source.collisions !src
  in
  (* version stamps: the same burst is just forks *)
  let rec forks k s acc =
    if k = 0 then acc
    else
      let l, r = Stamp.fork s in
      forks (k - 1) l (r :: acc)
  in
  let spawned = forks attempts Stamp.seed [] in
  table
    ~header:[ "mechanism"; "created"; "blocked"; "silent collisions" ]
    [
      [
        "version vectors (served ids)";
        string_of_int (attempts - !blocked);
        string_of_int !blocked;
        "0";
      ];
      [
        "version vectors (random 8-bit ids)";
        string_of_int attempts;
        "0";
        string_of_int (collisions 8);
      ];
      [
        "version vectors (random 16-bit ids)";
        string_of_int attempts;
        "0";
        string_of_int (collisions 16);
      ];
      [ "version stamps (fork)"; string_of_int (List.length spawned); "0"; "0" ];
    ]

(* ------------------------------------------------------------------ *)
(* E7: wire sizes of the codec                                         *)
(* ------------------------------------------------------------------ *)

let e7 () =
  section "E7: wire encoding size (bits, whole final frontier)";
  let cases =
    [
      ("uniform n=200", Workload.uniform ~seed:7 ~n_ops:200 ());
      ("deep-fork n=100", Workload.deep_fork ~depth:50 ());
      ("sync-star 4x6", Workload.sync_star ~peers:4 ~rounds:6 ());
      ("churn n=150", Workload.churn ~seed:7 ~target:6 ~n_ops:150 ());
    ]
  in
  table
    ~header:[ "trace"; "stamps (wire)"; "stamps (struct)"; "vv (wire)" ]
    (List.map
       (fun (name, ops) ->
         let stamps = Execution.Run_stamps.run ops in
         let wire =
           Stats.sum_int (List.map Vstamp_codec.Wire.stamp_bits stamps)
         in
         let structural = Stats.sum_int (List.map Stamp.size_bits stamps) in
         (* replay over version vectors *)
         let module R = Execution.Run (struct
           type t = Version_vector.Replica.t

           type state = int

           let initial = (1, Version_vector.Replica.create ~id:0)

           let update next r = (next, Version_vector.Replica.update r)

           let fork next r =
             let child = Version_vector.Replica.create ~id:next in
             let r', child' = Version_vector.Replica.sync r child in
             (next + 1, (r', child'))

           let join next a b = (next, fst (Version_vector.Replica.sync a b))
         end) in
         let vvs = R.run ops in
         let vv_wire =
           Stats.sum_int
             (List.map
                (fun r ->
                  Vstamp_codec.Wire.vv_bits (Version_vector.Replica.vector r))
                vvs)
         in
         [ name; string_of_int wire; string_of_int structural; string_of_int vv_wire ])
       cases)

(* ------------------------------------------------------------------ *)
(* E8: version stamps vs interval tree clocks                          *)
(* ------------------------------------------------------------------ *)

let e8 () =
  section "E8: version stamps vs interval tree clocks (mean bits/replica)";
  let cases =
    [
      ("uniform n=300", Workload.uniform ~seed:7 ~n_ops:300 ());
      ("deep-fork n=150", Workload.deep_fork ~depth:75 ());
      ("sync-star 8x4", Workload.sync_star ~peers:8 ~rounds:4 ());
      ("gossip 8x15", Workload.gossip ~seed:7 ~replicas:8 ~rounds:15 ());
      ("churn n=250", Workload.churn ~seed:7 ~target:8 ~n_ops:250 ());
    ]
  in
  table
    ~header:[ "trace"; "stamps"; "itc"; "itc exact?" ]
    (List.map
       (fun (name, ops) ->
         let s = System.run ~with_oracle:false Tracker.stamps ops in
         let i = System.run itc_tracker ops in
         [
           name;
           Printf.sprintf "%.0f" s.System.final.System.mean_bits;
           Printf.sprintf "%.0f" i.System.final.System.mean_bits;
           (match i.System.accuracy with
           | Some a -> string_of_bool (System.perfect a)
           | None -> "-");
         ])
       cases)

(* ------------------------------------------------------------------ *)
(* E9: stamp size as a function of frontier narrowing                  *)
(* ------------------------------------------------------------------ *)

let e9 () =
  section "E9: stamp size vs how often the frontier narrows back";
  (* fixed op budget; sweep the fraction of joins relative to forks by
     reweighting the uniform generator.  More narrowing (joins) means
     more sibling reunification and smaller stamps. *)
  let sweeps =
    [
      ("fork-heavy  (u3 f4 j1)", Workload.{ update = 3; fork = 4; join = 1 });
      ("balanced    (u3 f2 j2)", Workload.{ update = 3; fork = 2; join = 2 });
      ("join-heavy  (u3 f1 j4)", Workload.{ update = 3; fork = 1; join = 4 });
    ]
  in
  table
    ~header:[ "op mix"; "stamps mean bits"; "itc mean bits"; "vv mean bits" ]
    (List.map
       (fun (label, weights) ->
         let ops =
           Workload.uniform ~seed:13 ~weights ~max_frontier:10 ~n_ops:300 ()
         in
         let cell t =
           Printf.sprintf "%.0f"
             (System.run ~with_oracle:false t ops).System.final.System.mean_bits
         in
         [ label; cell Tracker.stamps; cell itc_tracker; cell Tracker.version_vectors ])
       sweeps)

(* ------------------------------------------------------------------ *)
(* E10: server-side vs autonomous tracking for the same value          *)
(* ------------------------------------------------------------------ *)

let e10 () =
  section
    "E10: metadata per replica - dotted vv (server ids) vs stamps (autonomous)";
  (* the same logical workload on one value: [n] replicas, each round one
     random replica writes, then one random pair reconciles *)
  let replicas = 4 in
  let rows =
    List.map
      (fun rounds ->
        let rng = ref (Rng.make 23) in
        let draw bound =
          let x, r = Rng.int !rng bound in
          rng := r;
          x
        in
        (* dotted vv side: fixed server ids *)
        let servers =
          Array.init replicas (fun i ->
              Vstamp_kvs.Kv_node.create ~id:i)
        in
        (* stamp side: registers forked from one seed *)
        let regs = Array.make replicas (Vstamp_crdt.Mv_register.create "v0") in
        let rec fan i reg =
          if i < replicas - 1 then begin
            let a, b = Vstamp_crdt.Mv_register.fork reg in
            regs.(i) <- a;
            fan (i + 1) b
          end
          else regs.(i) <- reg
        in
        fan 0 regs.(0);
        for k = 1 to rounds do
          let w = draw replicas in
          let _, ctx = Vstamp_kvs.Kv_node.get servers.(w) "k" in
          servers.(w) <-
            Vstamp_kvs.Kv_node.put servers.(w) ~key:"k" ~context:ctx
              (Printf.sprintf "v%d" k);
          regs.(w) <- Vstamp_crdt.Mv_register.write regs.(w) (Printf.sprintf "v%d" k);
          let i = draw replicas in
          let j0 = draw (replicas - 1) in
          let j = if j0 >= i then j0 + 1 else j0 in
          let a, b = Vstamp_kvs.Kv_node.anti_entropy servers.(i) servers.(j) in
          servers.(i) <- a;
          servers.(j) <- b;
          let ra, rb = Vstamp_crdt.Mv_register.sync regs.(i) regs.(j) in
          regs.(i) <- ra;
          regs.(j) <- rb
        done;
        let dvv_bits =
          Stats.mean_int
            (Array.to_list (Array.map Vstamp_kvs.Kv_node.size_bits servers))
        in
        let stamp_bits =
          Stats.mean_int
            (Array.to_list
               (Array.map
                  (fun r -> Stamp.size_bits (Vstamp_crdt.Mv_register.stamp r))
                  regs))
        in
        [
          string_of_int rounds;
          Printf.sprintf "%.0f" dvv_bits;
          Printf.sprintf "%.0f" stamp_bits;
        ])
      [ 5; 10; 20; 30 ]
  in
  table ~header:[ "rounds"; "dotted vv bits"; "stamp bits" ] rows;
  Format.printf
    "  (dotted vv needs deployment-time server ids and stays counter-flat;@.";
  Format.printf
    "   stamps need nothing and pay in id fragmentation under gossip)@."

(* ------------------------------------------------------------------ *)
(* E3: operation latency (bechamel)                                    *)
(* ------------------------------------------------------------------ *)

let make_deep_stamp depth =
  (* a stamp with a fragmented id, representative of a busy replica *)
  let rec go s k =
    if k = 0 then s
    else
      let a, b = Stamp.fork (Stamp.update s) in
      go (Stamp.join ~reduce:false (Stamp.update a) b) (k - 1)
  in
  go Stamp.seed depth

let make_deep_list_stamp depth =
  let rec go s k =
    if k = 0 then s
    else
      let a, b = Stamp.Over_list.fork (Stamp.Over_list.update s) in
      go (Stamp.Over_list.join ~reduce:false (Stamp.Over_list.update a) b) (k - 1)
  in
  go Stamp.Over_list.seed depth

let latency_tests () =
  let open Bechamel in
  let stamp8 = make_deep_stamp 8 and stamp16 = make_deep_stamp 16 in
  let list8 = make_deep_list_stamp 8 in
  let other8 = snd (Stamp.fork stamp8) in
  let other_list8 = snd (Stamp.Over_list.fork list8) in
  let vv =
    List.fold_left
      (fun v i -> Version_vector.increment v i)
      Version_vector.zero
      (List.init 16 (fun i -> i mod 8))
  in
  let itc8 =
    let rec go s k =
      if k = 0 then s
      else
        let a, b = Vstamp_itc.Itc.fork (Vstamp_itc.Itc.update s) in
        go (Vstamp_itc.Itc.join (Vstamp_itc.Itc.update a) b) (k - 1)
    in
    go Vstamp_itc.Itc.seed 8
  in
  let wire8 = Vstamp_codec.Wire.stamp_to_string stamp8 in
  Test.make_grouped ~name:"ops"
    [
      Test.make ~name:"stamp/update d8" (Staged.stage (fun () -> Stamp.update stamp8));
      Test.make ~name:"stamp/fork d8" (Staged.stage (fun () -> Stamp.fork stamp8));
      Test.make ~name:"stamp/join d8"
        (Staged.stage (fun () -> Stamp.join stamp8 other8));
      Test.make ~name:"stamp/reduce d8" (Staged.stage (fun () -> Stamp.reduce stamp8));
      Test.make ~name:"stamp/leq d8" (Staged.stage (fun () -> Stamp.leq stamp8 other8));
      Test.make ~name:"stamp/leq d16"
        (Staged.stage
           (let o = snd (Stamp.fork stamp16) in
            fun () -> Stamp.leq stamp16 o));
      Test.make ~name:"stamp-list/join d8"
        (Staged.stage (fun () -> Stamp.Over_list.join list8 other_list8));
      Test.make ~name:"stamp-list/leq d8"
        (Staged.stage (fun () -> Stamp.Over_list.leq list8 other_list8));
      Test.make ~name:"vv/increment w8"
        (Staged.stage (fun () -> Version_vector.increment vv 3));
      Test.make ~name:"vv/merge w8" (Staged.stage (fun () -> Version_vector.merge vv vv));
      Test.make ~name:"vv/leq w8" (Staged.stage (fun () -> Version_vector.leq vv vv));
      Test.make ~name:"itc/update d8"
        (Staged.stage (fun () -> Vstamp_itc.Itc.update itc8));
      Test.make ~name:"itc/leq d8"
        (Staged.stage (fun () -> Vstamp_itc.Itc.leq itc8 itc8));
      Test.make ~name:"wire/encode d8"
        (Staged.stage (fun () -> Vstamp_codec.Wire.stamp_to_string stamp8));
      Test.make ~name:"wire/decode d8"
        (Staged.stage (fun () -> Vstamp_codec.Wire.stamp_of_string wire8));
    ]

(* ablation A: representation choice (trie vs sorted list) as id
   fragmentation deepens; the indexed tests sweep the construction
   depth so the scaling shape is visible, not just one point *)
let ablation_tests () =
  let open Bechamel in
  let depths = [ 2; 4; 8; 12 ] in
  let tree_stamp = List.map (fun d -> (d, make_deep_stamp d)) depths in
  let list_stamp = List.map (fun d -> (d, make_deep_list_stamp d)) depths in
  Test.make_grouped ~name:"ablation"
    [
      Test.make_indexed ~name:"tree/leq" ~args:depths (fun d ->
          let s = List.assoc d tree_stamp in
          let o = snd (Stamp.fork s) in
          Staged.stage (fun () -> Stamp.leq s o));
      Test.make_indexed ~name:"list/leq" ~args:depths (fun d ->
          let s = List.assoc d list_stamp in
          let o = snd (Stamp.Over_list.fork s) in
          Staged.stage (fun () -> Stamp.Over_list.leq s o));
      Test.make_indexed ~name:"tree/join" ~args:depths (fun d ->
          let s = List.assoc d tree_stamp in
          let o = snd (Stamp.fork s) in
          Staged.stage (fun () -> Stamp.join s o));
      Test.make_indexed ~name:"list/join" ~args:depths (fun d ->
          let s = List.assoc d list_stamp in
          let o = snd (Stamp.Over_list.fork s) in
          Staged.stage (fun () -> Stamp.Over_list.join s o));
      Test.make_indexed ~name:"tree/reduce" ~args:depths (fun d ->
          let s = List.assoc d tree_stamp in
          Staged.stage (fun () -> Stamp.reduce s));
    ]

(* ablation B: eager reduction at join vs deferring it to a single final
   normalization — measures what keeping normal form continuously
   costs/saves on a frontier-narrowing trace *)
let e2b () =
  section "E2b: ablation - eager vs deferred reduction (churn trace)";
  let ops = Workload.churn ~seed:9 ~target:6 ~n_ops:150 () in
  let eager = Execution.Run_stamps.run ops in
  let deferred =
    List.map Stamp.reduce (Execution.Run_stamps_nonreducing.run ops)
  in
  let bits f = Stats.sum_int (List.map Stamp.size_bits f) in
  table
    ~header:[ "strategy"; "final frontier bits"; "peak frontier bits" ]
    [
      [
        "reduce at every join";
        string_of_int (bits eager);
        string_of_int
          (Stats.max_int_list
             (List.map bits (Execution.Run_stamps.run_steps ops)));
      ];
      [
        "reduce once at the end";
        string_of_int (bits deferred);
        string_of_int
          (Stats.max_int_list
             (List.map bits (Execution.Run_stamps_nonreducing.run_steps ops)));
      ];
    ];
  let orders_agree =
    List.for_all
      (fun (a, a') ->
        List.for_all
          (fun (b, b') ->
            Vstamp_core.Relation.equal (Stamp.relation a b) (Stamp.relation a' b'))
          (List.combine eager deferred))
      (List.combine eager deferred)
  in
  Format.printf
    "  (the stamps differ structurally — reduction changes what later@.";
  Format.printf
    "   forks append to — but the frontier order is identical: %b)@."
    orders_agree

(* ------------------------------------------------------------------ *)
(* E11: what observability costs at runtime                            *)
(* ------------------------------------------------------------------ *)

(* Wall-clock throughput of the same run plain, with the I1-I3 runtime
   monitors evaluating the whole frontier after every step, and with the
   causal-trace recorder labelling every state.  Best of three runs so a
   stray scheduler hiccup cannot dominate. *)
let e11 () =
  section "E11: observability overhead (ops/s: plain, +monitors, +recording)";
  let best_of_3 f =
    let rec go k best =
      if k = 0 then best
      else begin
        let t0 = Unix.gettimeofday () in
        f ();
        go (k - 1) (min best (Unix.gettimeofday () -. t0))
      end
    in
    go 3 infinity
  in
  (* op counts are deliberately modest: I2/I3 are quadratic in frontier
     width and linear in name size, so a wide frontier (deep-fork) or
     fragmented ids (churn, see E1) make the monitored column measure
     blow-up rather than the monitor *)
  let workloads =
    [
      ("uniform", Workload.uniform ~seed:7 ~n_ops:400 ());
      ("deep-fork", Workload.deep_fork ~depth:100 ());
      ("churn", Workload.churn ~seed:7 ~target:8 ~n_ops:200 ());
    ]
  in
  let rows, payload =
    List.split
      (List.map
         (fun (wname, ops) ->
           let n = List.length ops in
           let run ?check_invariants ?trace () =
             ignore
               (System.run ~with_oracle:false ?check_invariants ?trace
                  Tracker.stamps ops
                 : System.result)
           in
           let throughput f = float_of_int n /. best_of_3 f in
           let plain = throughput (fun () -> run ()) in
           let monitored = throughput (fun () -> run ~check_invariants:true ()) in
           let recording =
             throughput (fun () ->
                 run ~trace:(Vstamp_obs.Causal_trace.create ()) ())
           in
           ( [
               wname;
               string_of_int n;
               Printf.sprintf "%.2e" plain;
               Printf.sprintf "%.2e" monitored;
               Printf.sprintf "%.2e" recording;
               Printf.sprintf "%.1fx" (plain /. monitored);
             ],
             ( wname,
               Vstamp_obs.Jsonx.Obj
                 [
                   ("ops", Vstamp_obs.Jsonx.Int n);
                   ("plain_ops_per_s", Vstamp_obs.Jsonx.Float plain);
                   ("monitored_ops_per_s", Vstamp_obs.Jsonx.Float monitored);
                   ("recording_ops_per_s", Vstamp_obs.Jsonx.Float recording);
                   ( "monitor_slowdown",
                     Vstamp_obs.Jsonx.Float (plain /. monitored) );
                 ] ) ))
         workloads)
  in
  table
    ~header:
      [ "workload"; "ops"; "plain ops/s"; "+monitors"; "+recording"; "monitor cost" ]
    rows;
  Vstamp_obs.Jsonx.Obj payload

let e3 () =
  section "E3: operation latency (bechamel, ns/op)";
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None ()
  in
  let raw = Benchmark.all cfg [ instance ] (latency_tests ()) in
  let raw_ablation = Benchmark.all cfg [ instance ] (ablation_tests ()) in
  Hashtbl.iter (fun k v -> Hashtbl.replace raw k v) raw_ablation;
  let results = Analyze.all ols instance raw in
  let estimates =
    Hashtbl.fold
      (fun name ols acc ->
        match Analyze.OLS.estimates ols with
        | Some (e :: _) -> (name, e) :: acc
        | _ -> acc)
      results []
    |> List.sort compare
  in
  table
    ~header:[ "operation"; "ns/op" ]
    (List.map (fun (name, ns) -> [ name; Printf.sprintf "%.0f" ns ]) estimates);
  Vstamp_obs.Jsonx.Obj
    (List.map (fun (name, ns) -> (name, Vstamp_obs.Jsonx.Float ns)) estimates)

(* ------------------------------------------------------------------ *)

let read_first_line path =
  try
    let ic = open_in path in
    let line = try Some (input_line ic) with End_of_file -> None in
    close_in ic;
    line
  with Sys_error _ -> None

(* Resolve HEAD to a commit hash with plain file IO so the bench binary
   stays usable without a git executable on PATH. *)
let git_rev () =
  let root = ".git" in
  match read_first_line (Filename.concat root "HEAD") with
  | None -> "unknown"
  | Some head -> (
      let prefix = "ref: " in
      if String.length head > String.length prefix
         && String.sub head 0 (String.length prefix) = prefix
      then
        let refname =
          String.sub head (String.length prefix)
            (String.length head - String.length prefix)
        in
        match read_first_line (Filename.concat root refname) with
        | Some hash -> hash
        | None -> (
            (* the ref may only exist in packed-refs *)
            match
              read_first_line (Filename.concat root "packed-refs")
            with
            | None -> "unknown"
            | Some _ -> (
                let ic = open_in (Filename.concat root "packed-refs") in
                let found = ref "unknown" in
                (try
                   while true do
                     let line = input_line ic in
                     match String.index_opt line ' ' with
                     | Some i
                       when String.sub line (i + 1)
                              (String.length line - i - 1)
                            = refname ->
                         found := String.sub line 0 i;
                         raise Exit
                     | _ -> ()
                   done
                 with End_of_file | Exit -> ());
                close_in ic;
                !found))
      else head)

let core_counters () =
  let open Vstamp_core in
  Instr.reset ();
  let was_enabled = !Instr.enabled in
  Instr.enabled := true;
  let ops = Workload.uniform ~seed:7 ~n_ops:400 () in
  let frontier = Execution.Run_stamps.run ops in
  List.iter
    (fun s -> ignore (Vstamp_codec.Wire.stamp_to_string s))
    frontier;
  Instr.enabled := was_enabled;
  let fields = Vstamp_sim.Telemetry.counter_fields () in
  Instr.reset ();
  Vstamp_obs.Jsonx.Obj
    (List.map (fun (k, v) -> (k, Vstamp_obs.Jsonx.Int v)) fields)

(* /2 adds the monitor_overhead block (E11); every /1 field is kept
   unchanged so existing consumers keep parsing. *)
let bench_json_schema = "vstamp-bench-core/2"

let write_bench_json ~sizes ~reduction ~latencies ~monitor_overhead =
  let open Vstamp_obs in
  let json =
    Jsonx.Obj
      [
        ("schema", Jsonx.String bench_json_schema);
        ("seed", Jsonx.Int 7);
        ("git_rev", Jsonx.String (git_rev ()));
        ("op_latency_ns", latencies);
        ("sizes", sizes);
        ("reduction", reduction);
        ("core_counters", core_counters ());
        ("monitor_overhead", monitor_overhead);
      ]
  in
  let oc = open_out "BENCH_core.json" in
  output_string oc (Jsonx.to_string json);
  output_char oc '\n';
  close_out oc;
  Format.printf "@.wrote BENCH_core.json (schema %s)@." bench_json_schema

let () =
  Vstamp_obs.Clock.set_source Unix.gettimeofday;
  Format.printf "Version Stamps - experiment harness@.";
  Format.printf "(deterministic except E3 latencies; see EXPERIMENTS.md)@.";
  fig1 ();
  fig2_4 ();
  fig3 ();
  let sizes = e1 () in
  let reduction = e2 () in
  e2b ();
  let latencies = e3 () in
  e4 ();
  e5 ();
  e6 ();
  e7 ();
  e8 ();
  e9 ();
  e10 ();
  let monitor_overhead = e11 () in
  write_bench_json ~sizes ~reduction ~latencies ~monitor_overhead;
  Format.printf "@.done.@."
