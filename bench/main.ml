(* Benchmark and experiment harness.

   Regenerates every figure of the paper (F1-F4) and runs the
   quantitative experiments the paper's claims imply (E1-E8), as indexed
   in DESIGN.md; then runs the bechamel micro-benchmarks for operation
   latency (E3).  Everything is deterministic except wall-clock
   latencies.  Results are recorded in EXPERIMENTS.md.

   Usage: main.exe [--quick] [--out FILE] [--history FILE]

   --quick shrinks the iteration budgets and skips the prose-only
   experiments (E2b, E4-E10) so the JSON-producing lane finishes in
   seconds — the mode scripts/bench_smoke.sh gates on.  The effective
   knobs are recorded in the JSON's "config" block, and `vstamp bench
   diff` refuses to compare runs whose configs differ. *)

open Vstamp_core
open Vstamp_vv
open Vstamp_sim

type opts = { quick : bool; out : string; history : string }

let parse_argv () =
  let quick = ref false
  and out = ref "BENCH_core.json"
  and history = ref "BENCH_history.jsonl" in
  let rec go = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        go rest
    | "--out" :: file :: rest ->
        out := file;
        go rest
    | "--history" :: file :: rest ->
        history := file;
        go rest
    | arg :: _ ->
        Printf.eprintf
          "unknown argument %s\nusage: main.exe [--quick] [--out FILE] \
           [--history FILE]\n"
          arg;
        exit 2
  in
  go (List.tl (Array.to_list Sys.argv));
  { quick = !quick; out = !out; history = !history }

(* Every knob that changes what the numbers mean lives here and is
   dumped into the JSON's "config" block, so the regression gate can
   refuse to compare apples to oranges (see Vstamp_obs.Bench_store). *)
type bench_config = {
  quick : bool;
  e1_scales : int list;
  latency_quota_s : float;
  latency_limit : int;
  case_budget_ms : float;
  e11_uniform_ops : int;
  e11_deep_fork_depth : int;
  e11_churn_ops : int;
  e11_every_n : int;
  e11_best_of : int;
  e14_replicas : int;
  e14_rounds : int;
  e14_severities : float list;
  e15_series : int;
  e15_ticks : int;
  e15_best_of : int;
  e16_spans : int;
  e16_best_of : int;
  e17_replicas : int;
  e17_rounds : int;
  e17_rates : float list;
  e18_nodes : int;
  e18_keys : int;
  e18_value_bytes : int;
  e18_round_budget : int;
}

let bench_config ~quick =
  if quick then
    {
      quick;
      e1_scales = [ 50; 100 ];
      latency_quota_s = 0.1;
      latency_limit = 1000;
      case_budget_ms = 25.0;
      e11_uniform_ops = 100;
      e11_deep_fork_depth = 40;
      e11_churn_ops = 60;
      e11_every_n = 100;
      e11_best_of = 1;
      e14_replicas = 4;
      e14_rounds = 8;
      e14_severities = [ 0.2; 0.5; 1.0 ];
      e15_series = 64;
      e15_ticks = 200;
      e15_best_of = 1;
      e16_spans = 2000;
      e16_best_of = 1;
      e17_replicas = 4;
      e17_rounds = 10;
      e17_rates = [ 0.5; 1.0; 2.0 ];
      e18_nodes = 3;
      e18_keys = 8;
      e18_value_bytes = 160;
      e18_round_budget = 16;
    }
  else
    {
      quick;
      e1_scales = [ 50; 100; 200; 400 ];
      latency_quota_s = 0.25;
      latency_limit = 2000;
      case_budget_ms = 100.0;
      e11_uniform_ops = 400;
      e11_deep_fork_depth = 100;
      e11_churn_ops = 200;
      e11_every_n = 100;
      e11_best_of = 3;
      e14_replicas = 4;
      e14_rounds = 20;
      e14_severities = [ 0.2; 0.5; 1.0 ];
      e15_series = 256;
      e15_ticks = 2000;
      e15_best_of = 3;
      e16_spans = 20000;
      e16_best_of = 3;
      e17_replicas = 4;
      e17_rounds = 24;
      e17_rates = [ 0.5; 1.0; 2.0; 4.0 ];
      e18_nodes = 3;
      e18_keys = 24;
      e18_value_bytes = 128;
      e18_round_budget = 16;
    }

let config_json c =
  let open Vstamp_obs in
  Jsonx.Obj
    [
      ("quick", Jsonx.Bool c.quick);
      ("e1_scales", Jsonx.List (List.map (fun n -> Jsonx.Int n) c.e1_scales));
      ("latency_quota_s", Jsonx.Float c.latency_quota_s);
      ("latency_limit", Jsonx.Int c.latency_limit);
      ("case_budget_ms", Jsonx.Float c.case_budget_ms);
      ("e11_uniform_ops", Jsonx.Int c.e11_uniform_ops);
      ("e11_deep_fork_depth", Jsonx.Int c.e11_deep_fork_depth);
      ("e11_churn_ops", Jsonx.Int c.e11_churn_ops);
      ("e11_every_n", Jsonx.Int c.e11_every_n);
      ("e11_best_of", Jsonx.Int c.e11_best_of);
      ("e14_replicas", Jsonx.Int c.e14_replicas);
      ("e14_rounds", Jsonx.Int c.e14_rounds);
      ( "e14_severities",
        Jsonx.List (List.map (fun s -> Jsonx.Float s) c.e14_severities) );
      ("e15_series", Jsonx.Int c.e15_series);
      ("e15_ticks", Jsonx.Int c.e15_ticks);
      ("e15_best_of", Jsonx.Int c.e15_best_of);
      ("e16_spans", Jsonx.Int c.e16_spans);
      ("e16_best_of", Jsonx.Int c.e16_best_of);
      ("e17_replicas", Jsonx.Int c.e17_replicas);
      ("e17_rounds", Jsonx.Int c.e17_rounds);
      ( "e17_rates",
        Jsonx.List (List.map (fun r -> Jsonx.Float r) c.e17_rates) );
      ("e18_nodes", Jsonx.Int c.e18_nodes);
      ("e18_keys", Jsonx.Int c.e18_keys);
      ("e18_value_bytes", Jsonx.Int c.e18_value_bytes);
      ("e18_round_budget", Jsonx.Int c.e18_round_budget);
      ( "backends",
        Jsonx.List
          (List.map (fun k -> Jsonx.String k) (Vstamp_core.Backend.keys ())) );
    ]

let section title =
  Format.printf "@.%s@.%s@.@." title (String.make (String.length title) '=')

let table = Stats.pp_table Format.std_formatter

(* ITC as a tracker (lives here because vstamp.sim does not depend on
   vstamp.itc). *)
module Itc_tracker = struct
  type t = Vstamp_itc.Itc.t

  type state = unit

  let name = "itc"

  let initial = ((), Vstamp_itc.Itc.seed)

  let update () x = ((), Vstamp_itc.Itc.update x)

  let fork () x = ((), Vstamp_itc.Itc.fork x)

  let join () a b = ((), Vstamp_itc.Itc.join a b)

  let leq = Vstamp_itc.Itc.leq

  let size_bits = Vstamp_itc.Itc.size_bits

  let invariants _ = []

  let pp = Vstamp_itc.Itc.pp
end

let itc_tracker = Tracker.Packed (module Itc_tracker)

(* ------------------------------------------------------------------ *)
(* F1-F4: the paper's figures                                          *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  section "F1: Figure 1 - version vectors among three fixed replicas";
  let f = Scenario.Fig1.run () in
  table ~header:[ "replica"; "final vector"; "paper" ]
    (List.map2
       (fun (name, v) (_, expected) ->
         [
           name;
           Version_vector.to_string v;
           "[" ^ String.concat "," (List.map string_of_int expected) ^ "]";
         ])
       f.Scenario.Fig1.final Scenario.Fig1.expected_final);
  List.iter
    (fun (x, y, r) ->
      Format.printf "  %s vs %s: %s@." x y (Relation.to_paper_string r))
    f.Scenario.Fig1.relations;
  Format.printf "  reproduces the paper: %b@." (Scenario.Fig1.matches_paper f)

let fig2_4 () =
  section "F2+F4: Figures 2 and 4 - fork/join evolution and its stamps";
  let f = Scenario.Fig4.run () in
  table ~header:[ "element"; "stamp" ]
    (List.map
       (fun (n, s) -> [ n; Stamp.to_string s ])
       f.Scenario.Fig4.named_steps);
  Format.printf "  rewrite chain: %s@."
    (String.concat " -> "
       (List.map Stamp.to_string f.Scenario.Fig4.g_reduction_chain));
  Format.printf "  frontier sizes along the run: %s@."
    (String.concat "->"
       (List.map string_of_int (Scenario.Frontiers.frontier_sizes ())));
  Format.printf "  reproduces the paper: %b@." (Scenario.Fig4.matches_paper f)

let fig3 () =
  section "F3: Figure 3 - fixed replicas encoded under fork-and-join";
  let f = Scenario.Fig3.run () in
  table ~header:[ "pair"; "stamps say"; "vectors say" ]
    (List.map2
       (fun (x, y, rs) (_, _, rv) ->
         [
           x ^ " vs " ^ y;
           Relation.to_paper_string rs;
           Relation.to_paper_string rv;
         ])
       f.Scenario.Fig3.stamp_relations f.Scenario.Fig3.vv_relations);
  Format.printf "  encodings agree: %b@." (Scenario.Fig3.encodings_agree f)

(* ------------------------------------------------------------------ *)
(* E1: size growth across workloads and scales                         *)
(* ------------------------------------------------------------------ *)

let e1_trackers =
  [
    Tracker.stamps;
    Tracker.stamps_packed;
    Tracker.version_vectors;
    Tracker.dynamic_vv;
    itc_tracker;
    Tracker.histories;
  ]

let e1 ~scales () =
  section "E1: tracking-data size (bits/replica, mean/p95) by workload and scale";
  let workload_families =
    [
      ("uniform", fun n -> Workload.uniform ~seed:7 ~n_ops:n ());
      ("deep-fork", fun n -> Workload.deep_fork ~depth:(n / 2) ());
      (* sustained star sync compounds id widths exponentially in the
         number of rounds (see EXPERIMENTS.md), so its scale axis is
         rounds over 4 peers, kept in the tractable range *)
      ( "sync-star",
        fun n -> Workload.sync_star ~peers:4 ~rounds:(max 1 (n / 64)) () );
      ( "gossip",
        fun n -> Workload.gossip ~seed:7 ~replicas:8 ~rounds:(max 1 (n / 10)) () );
      ("churn", fun n -> Workload.churn ~seed:7 ~target:8 ~n_ops:n ());
    ]
  in
  let json_rows = ref [] in
  List.iter
    (fun (wname, mk) ->
      Format.printf "@.workload: %s@." wname;
      let header =
        "tracker" :: List.map (fun n -> Printf.sprintf "n=%d" n) scales
      in
      let rows =
        List.map
          (fun t ->
            Tracker.name t
            :: List.map
                 (fun n ->
                   let r = System.run ~with_oracle:false t (mk n) in
                   let f = r.System.final in
                   json_rows :=
                     Vstamp_obs.Jsonx.Obj
                       [
                         ("workload", Vstamp_obs.Jsonx.String wname);
                         ("n", Vstamp_obs.Jsonx.Int n);
                         ("tracker", Vstamp_obs.Jsonx.String r.System.tracker);
                         ("mean_bits", Vstamp_obs.Jsonx.Float f.System.mean_bits);
                         ("p50_bits", Vstamp_obs.Jsonx.Float f.System.p50_bits);
                         ("p95_bits", Vstamp_obs.Jsonx.Float f.System.p95_bits);
                         ("p99_bits", Vstamp_obs.Jsonx.Float f.System.p99_bits);
                         ("max_bits", Vstamp_obs.Jsonx.Int f.System.max_bits);
                         ("peak_bits", Vstamp_obs.Jsonx.Int r.System.peak_bits);
                       ]
                     :: !json_rows;
                   Printf.sprintf "%.0f/%.0f" f.System.mean_bits
                     f.System.p95_bits)
                 scales)
          e1_trackers
      in
      table ~header rows)
    workload_families;
  Format.printf "  (cells: mean/p95 bits per replica on the final frontier)@.";
  Vstamp_obs.Jsonx.List (List.rev !json_rows)

(* ------------------------------------------------------------------ *)
(* E2: reduction efficacy                                              *)
(* ------------------------------------------------------------------ *)

let e2 () =
  section "E2: Section 6 reduction - reduced vs non-reducing stamp sizes";
  let cases =
    [
      ( "fork-storm then full merge",
        Workload.deep_fork ~depth:8 ()
        @ List.init 8 (fun _ -> Execution.Join (0, 1)) );
      ("churn (target 5, 120 ops)", Workload.churn ~seed:3 ~target:5 ~n_ops:120 ());
      (* non-reducing widths double per pair sync: 12 rounds = 4096-wide
         ids, already a 2^12 blowup the reduced model keeps at width 1 *)
      ("repeated pair sync x12", Workload.gossip ~seed:3 ~replicas:2 ~rounds:12 ());
      ("uniform small", Workload.uniform ~seed:3 ~n_ops:60 ~max_frontier:5 ());
    ]
  in
  let json_rows = ref [] in
  table
    ~header:
      [ "trace"; "reduced bits"; "p95"; "non-reducing bits"; "p95"; "ratio" ]
    (List.map
       (fun (name, ops) ->
         let reduced =
           (System.run ~with_oracle:false Tracker.stamps ops).System.final
         in
         let raw =
           (System.run ~with_oracle:false Tracker.stamps_nonreducing ops)
             .System.final
         in
         let red = reduced.System.total_bits
         and rawb = raw.System.total_bits in
         let ratio =
           if red = 0 then 0.0 else float_of_int rawb /. float_of_int red
         in
         json_rows :=
           Vstamp_obs.Jsonx.Obj
             [
               ("trace", Vstamp_obs.Jsonx.String name);
               ("reduced_bits", Vstamp_obs.Jsonx.Int red);
               ("reduced_p95_bits", Vstamp_obs.Jsonx.Float reduced.System.p95_bits);
               ("raw_bits", Vstamp_obs.Jsonx.Int rawb);
               ("raw_p95_bits", Vstamp_obs.Jsonx.Float raw.System.p95_bits);
               ("ratio", Vstamp_obs.Jsonx.Float ratio);
             ]
           :: !json_rows;
         [
           name;
           string_of_int red;
           Printf.sprintf "%.0f" reduced.System.p95_bits;
           string_of_int rawb;
           Printf.sprintf "%.0f" raw.System.p95_bits;
           (if red = 0 then "inf" else Printf.sprintf "%.1fx" ratio);
         ])
       cases);
  Vstamp_obs.Jsonx.List (List.rev !json_rows)

(* ------------------------------------------------------------------ *)
(* E4: ordering accuracy against the causal-history oracle             *)
(* ------------------------------------------------------------------ *)

let e4 () =
  section "E4: ordering accuracy vs the causal-history oracle";
  let ops = Workload.uniform ~seed:11 ~n_ops:300 () in
  let trackers =
    [
      Tracker.stamps;
      Tracker.stamps_list;
      Tracker.version_vectors;
      Tracker.dynamic_vv;
      itc_tracker;
      Tracker.plausible 2;
      Tracker.plausible 4;
      Tracker.plausible 8;
    ]
  in
  table
    ~header:[ "tracker"; "comparisons"; "spurious"; "missed" ]
    (List.map
       (fun t ->
         let r = System.run t ops in
         match r.System.accuracy with
         | Some a ->
             [
               r.System.tracker;
               string_of_int a.System.comparisons;
               string_of_int a.System.spurious_orderings;
               string_of_int a.System.missed_orderings;
             ]
         | None -> [ r.System.tracker; "-"; "-"; "-" ])
       trackers)

(* ------------------------------------------------------------------ *)
(* E5: plausible-clock accuracy sweep                                  *)
(* ------------------------------------------------------------------ *)

let e5 () =
  section "E5: plausible clocks - misclassification rate by slot count";
  let ops = Workload.gossip ~seed:5 ~replicas:10 ~rounds:12 () in
  table
    ~header:[ "slots"; "size bits"; "comparisons"; "spurious"; "error %" ]
    (List.map
       (fun slots ->
         let r = System.run (Tracker.plausible slots) ops in
         match r.System.accuracy with
         | Some a ->
             [
               string_of_int slots;
               Printf.sprintf "%.0f" r.System.final.System.mean_bits;
               string_of_int a.System.comparisons;
               string_of_int a.System.spurious_orderings;
               Printf.sprintf "%.1f"
                 (100.0
                 *. float_of_int a.System.spurious_orderings
                 /. float_of_int (max 1 a.System.comparisons));
             ]
         | None -> assert false)
       [ 1; 2; 4; 8; 16; 32 ])

(* ------------------------------------------------------------------ *)
(* E6: replica creation under partition                                *)
(* ------------------------------------------------------------------ *)

let e6 () =
  section "E6: replica creation under partition (the motivating scenario)";
  (* n devices in the cut-off group each try to spawn a replica *)
  let attempts = 40 in
  let server = Id_source.make (Id_source.Partitioned { server_group = 0 }) in
  let blocked = ref 0 and src = ref server in
  for _ = 1 to attempts do
    match Id_source.alloc ~group:1 !src with
    | Ok (_, s) -> src := s
    | Error (`Unavailable, s) ->
        incr blocked;
        src := s
  done;
  (* random ids at various widths: collision counts for the same burst *)
  let collisions bits =
    let src = ref (Id_source.make (Id_source.Random { bits })) in
    for _ = 1 to attempts do
      match Id_source.alloc ~group:1 !src with
      | Ok (_, s) -> src := s
      | Error _ -> assert false
    done;
    Id_source.collisions !src
  in
  (* version stamps: the same burst is just forks *)
  let rec forks k s acc =
    if k = 0 then acc
    else
      let l, r = Stamp.fork s in
      forks (k - 1) l (r :: acc)
  in
  let spawned = forks attempts Stamp.seed [] in
  table
    ~header:[ "mechanism"; "created"; "blocked"; "silent collisions" ]
    [
      [
        "version vectors (served ids)";
        string_of_int (attempts - !blocked);
        string_of_int !blocked;
        "0";
      ];
      [
        "version vectors (random 8-bit ids)";
        string_of_int attempts;
        "0";
        string_of_int (collisions 8);
      ];
      [
        "version vectors (random 16-bit ids)";
        string_of_int attempts;
        "0";
        string_of_int (collisions 16);
      ];
      [ "version stamps (fork)"; string_of_int (List.length spawned); "0"; "0" ];
    ]

(* ------------------------------------------------------------------ *)
(* E7: wire sizes of the codec                                         *)
(* ------------------------------------------------------------------ *)

let e7 () =
  section "E7: wire encoding size (bits, whole final frontier)";
  let cases =
    [
      ("uniform n=200", Workload.uniform ~seed:7 ~n_ops:200 ());
      ("deep-fork n=100", Workload.deep_fork ~depth:50 ());
      ("sync-star 4x6", Workload.sync_star ~peers:4 ~rounds:6 ());
      ("churn n=150", Workload.churn ~seed:7 ~target:6 ~n_ops:150 ());
    ]
  in
  table
    ~header:[ "trace"; "stamps (wire)"; "stamps (struct)"; "vv (wire)" ]
    (List.map
       (fun (name, ops) ->
         let stamps = Execution.Run_stamps.run ops in
         let wire =
           Stats.sum_int (List.map Vstamp_codec.Wire.stamp_bits stamps)
         in
         let structural = Stats.sum_int (List.map Stamp.size_bits stamps) in
         (* replay over version vectors *)
         let module R = Execution.Run (struct
           type t = Version_vector.Replica.t

           type state = int

           let initial = (1, Version_vector.Replica.create ~id:0)

           let update next r = (next, Version_vector.Replica.update r)

           let fork next r =
             let child = Version_vector.Replica.create ~id:next in
             let r', child' = Version_vector.Replica.sync r child in
             (next + 1, (r', child'))

           let join next a b = (next, fst (Version_vector.Replica.sync a b))
         end) in
         let vvs = R.run ops in
         let vv_wire =
           Stats.sum_int
             (List.map
                (fun r ->
                  Vstamp_codec.Wire.vv_bits (Version_vector.Replica.vector r))
                vvs)
         in
         [ name; string_of_int wire; string_of_int structural; string_of_int vv_wire ])
       cases)

(* ------------------------------------------------------------------ *)
(* E8: version stamps vs interval tree clocks                          *)
(* ------------------------------------------------------------------ *)

let e8 () =
  section "E8: version stamps vs interval tree clocks (mean bits/replica)";
  let cases =
    [
      ("uniform n=300", Workload.uniform ~seed:7 ~n_ops:300 ());
      ("deep-fork n=150", Workload.deep_fork ~depth:75 ());
      ("sync-star 8x4", Workload.sync_star ~peers:8 ~rounds:4 ());
      ("gossip 8x15", Workload.gossip ~seed:7 ~replicas:8 ~rounds:15 ());
      ("churn n=250", Workload.churn ~seed:7 ~target:8 ~n_ops:250 ());
    ]
  in
  table
    ~header:[ "trace"; "stamps"; "itc"; "itc exact?" ]
    (List.map
       (fun (name, ops) ->
         let s = System.run ~with_oracle:false Tracker.stamps ops in
         let i = System.run itc_tracker ops in
         [
           name;
           Printf.sprintf "%.0f" s.System.final.System.mean_bits;
           Printf.sprintf "%.0f" i.System.final.System.mean_bits;
           (match i.System.accuracy with
           | Some a -> string_of_bool (System.perfect a)
           | None -> "-");
         ])
       cases)

(* ------------------------------------------------------------------ *)
(* E9: stamp size as a function of frontier narrowing                  *)
(* ------------------------------------------------------------------ *)

let e9 () =
  section "E9: stamp size vs how often the frontier narrows back";
  (* fixed op budget; sweep the fraction of joins relative to forks by
     reweighting the uniform generator.  More narrowing (joins) means
     more sibling reunification and smaller stamps. *)
  let sweeps =
    [
      ("fork-heavy  (u3 f4 j1)", Workload.{ update = 3; fork = 4; join = 1 });
      ("balanced    (u3 f2 j2)", Workload.{ update = 3; fork = 2; join = 2 });
      ("join-heavy  (u3 f1 j4)", Workload.{ update = 3; fork = 1; join = 4 });
    ]
  in
  table
    ~header:[ "op mix"; "stamps mean bits"; "itc mean bits"; "vv mean bits" ]
    (List.map
       (fun (label, weights) ->
         let ops =
           Workload.uniform ~seed:13 ~weights ~max_frontier:10 ~n_ops:300 ()
         in
         let cell t =
           Printf.sprintf "%.0f"
             (System.run ~with_oracle:false t ops).System.final.System.mean_bits
         in
         [ label; cell Tracker.stamps; cell itc_tracker; cell Tracker.version_vectors ])
       sweeps)

(* ------------------------------------------------------------------ *)
(* E10: server-side vs autonomous tracking for the same value          *)
(* ------------------------------------------------------------------ *)

let e10 () =
  section
    "E10: metadata per replica - dotted vv (server ids) vs stamps (autonomous)";
  (* the same logical workload on one value: [n] replicas, each round one
     random replica writes, then one random pair reconciles *)
  let replicas = 4 in
  let rows =
    List.map
      (fun rounds ->
        let rng = ref (Rng.make 23) in
        let draw bound =
          let x, r = Rng.int !rng bound in
          rng := r;
          x
        in
        (* dotted vv side: fixed server ids *)
        let servers =
          Array.init replicas (fun i ->
              Vstamp_kvs.Kv_node.create ~id:i)
        in
        (* stamp side: registers forked from one seed *)
        let regs = Array.make replicas (Vstamp_crdt.Mv_register.create "v0") in
        let rec fan i reg =
          if i < replicas - 1 then begin
            let a, b = Vstamp_crdt.Mv_register.fork reg in
            regs.(i) <- a;
            fan (i + 1) b
          end
          else regs.(i) <- reg
        in
        fan 0 regs.(0);
        for k = 1 to rounds do
          let w = draw replicas in
          let _, ctx = Vstamp_kvs.Kv_node.get servers.(w) "k" in
          servers.(w) <-
            Vstamp_kvs.Kv_node.put servers.(w) ~key:"k" ~context:ctx
              (Printf.sprintf "v%d" k);
          regs.(w) <- Vstamp_crdt.Mv_register.write regs.(w) (Printf.sprintf "v%d" k);
          let i = draw replicas in
          let j0 = draw (replicas - 1) in
          let j = if j0 >= i then j0 + 1 else j0 in
          let a, b = Vstamp_kvs.Kv_node.anti_entropy servers.(i) servers.(j) in
          servers.(i) <- a;
          servers.(j) <- b;
          let ra, rb = Vstamp_crdt.Mv_register.sync regs.(i) regs.(j) in
          regs.(i) <- ra;
          regs.(j) <- rb
        done;
        let dvv_bits =
          Stats.mean_int
            (Array.to_list (Array.map Vstamp_kvs.Kv_node.size_bits servers))
        in
        let stamp_bits =
          Stats.mean_int
            (Array.to_list
               (Array.map
                  (fun r -> Stamp.size_bits (Vstamp_crdt.Mv_register.stamp r))
                  regs))
        in
        [
          string_of_int rounds;
          Printf.sprintf "%.0f" dvv_bits;
          Printf.sprintf "%.0f" stamp_bits;
        ])
      [ 5; 10; 20; 30 ]
  in
  table ~header:[ "rounds"; "dotted vv bits"; "stamp bits" ] rows;
  Format.printf
    "  (dotted vv needs deployment-time server ids and stays counter-flat;@.";
  Format.printf
    "   stamps need nothing and pay in id fragmentation under gossip)@."

(* ------------------------------------------------------------------ *)
(* E3: operation latency (bechamel)                                    *)
(* ------------------------------------------------------------------ *)

let make_deep_stamp depth =
  (* a stamp with a fragmented id, representative of a busy replica *)
  let rec go s k =
    if k = 0 then s
    else
      let a, b = Stamp.fork (Stamp.update s) in
      go (Stamp.join ~reduce:false (Stamp.update a) b) (k - 1)
  in
  go Stamp.seed depth

let make_deep_list_stamp depth =
  let rec go s k =
    if k = 0 then s
    else
      let a, b = Stamp.Over_list.fork (Stamp.Over_list.update s) in
      go (Stamp.Over_list.join ~reduce:false (Stamp.Over_list.update a) b) (k - 1)
  in
  go Stamp.Over_list.seed depth

let make_deep_packed_stamp depth =
  let rec go s k =
    if k = 0 then s
    else
      let a, b = Stamp.Over_packed.fork (Stamp.Over_packed.update s) in
      go
        (Stamp.Over_packed.join ~reduce:false (Stamp.Over_packed.update a) b)
        (k - 1)
  in
  go Stamp.Over_packed.seed depth

(* Latency cases as plain (group, name, thunk) triples so they can be
   screened against the per-case time budget before bechamel sees them;
   names reproduce the historical bechamel keys ("ops/stamp/join d8",
   "ablation/list/join:12") so BENCH_history.jsonl stays comparable
   across the restructuring. *)
let latency_cases () =
  let stamp8 = make_deep_stamp 8 and stamp16 = make_deep_stamp 16 in
  let list8 = make_deep_list_stamp 8 in
  let other8 = snd (Stamp.fork stamp8) in
  let other16 = snd (Stamp.fork stamp16) in
  let other_list8 = snd (Stamp.Over_list.fork list8) in
  let vv =
    List.fold_left
      (fun v i -> Version_vector.increment v i)
      Version_vector.zero
      (List.init 16 (fun i -> i mod 8))
  in
  let itc8 =
    let rec go s k =
      if k = 0 then s
      else
        let a, b = Vstamp_itc.Itc.fork (Vstamp_itc.Itc.update s) in
        go (Vstamp_itc.Itc.join (Vstamp_itc.Itc.update a) b) (k - 1)
    in
    go Vstamp_itc.Itc.seed 8
  in
  let wire8 = Vstamp_codec.Wire.stamp_to_string stamp8 in
  [
    ("ops", "stamp/update d8", fun () -> ignore (Stamp.update stamp8));
    ("ops", "stamp/fork d8", fun () -> ignore (Stamp.fork stamp8));
    ("ops", "stamp/join d8", fun () -> ignore (Stamp.join stamp8 other8));
    ("ops", "stamp/reduce d8", fun () -> ignore (Stamp.reduce stamp8));
    ("ops", "stamp/leq d8", fun () -> ignore (Stamp.leq stamp8 other8));
    ("ops", "stamp/leq d16", fun () -> ignore (Stamp.leq stamp16 other16));
    ( "ops",
      "stamp-list/join d8",
      fun () -> ignore (Stamp.Over_list.join list8 other_list8) );
    ( "ops",
      "stamp-list/leq d8",
      fun () -> ignore (Stamp.Over_list.leq list8 other_list8) );
    ("ops", "vv/increment w8", fun () -> ignore (Version_vector.increment vv 3));
    ("ops", "vv/merge w8", fun () -> ignore (Version_vector.merge vv vv));
    ("ops", "vv/leq w8", fun () -> ignore (Version_vector.leq vv vv));
    ("ops", "itc/update d8", fun () -> ignore (Vstamp_itc.Itc.update itc8));
    ("ops", "itc/leq d8", fun () -> ignore (Vstamp_itc.Itc.leq itc8 itc8));
    ( "ops",
      "wire/encode d8",
      fun () -> ignore (Vstamp_codec.Wire.stamp_to_string stamp8) );
    ( "ops",
      "wire/decode d8",
      fun () -> ignore (Vstamp_codec.Wire.stamp_of_string wire8) );
  ]

(* ablation A: representation choice (trie vs sorted list vs hash-consed
   trie) as id fragmentation deepens; the depth sweep makes the scaling
   shape visible, not just one point.  The packed lanes deliberately
   benchmark the steady state — interning and memo tables warm — since
   that is how a long-lived replica runs; the first-call cost is the
   tree lane's. *)
let ablation_cases () =
  let depths = [ 2; 4; 8; 12 ] in
  List.concat_map
    (fun d ->
      let tree = make_deep_stamp d in
      let tree_o = snd (Stamp.fork tree) in
      let lst = make_deep_list_stamp d in
      let lst_o = snd (Stamp.Over_list.fork lst) in
      let pkd = make_deep_packed_stamp d in
      let pkd_o = snd (Stamp.Over_packed.fork pkd) in
      [
        ( "ablation",
          Printf.sprintf "tree/leq:%d" d,
          fun () -> ignore (Stamp.leq tree tree_o) );
        ( "ablation",
          Printf.sprintf "list/leq:%d" d,
          fun () -> ignore (Stamp.Over_list.leq lst lst_o) );
        ( "ablation",
          Printf.sprintf "packed/leq:%d" d,
          fun () -> ignore (Stamp.Over_packed.leq pkd pkd_o) );
        ( "ablation",
          Printf.sprintf "tree/join:%d" d,
          fun () -> ignore (Stamp.join tree tree_o) );
        ( "ablation",
          Printf.sprintf "list/join:%d" d,
          fun () -> ignore (Stamp.Over_list.join lst lst_o) );
        ( "ablation",
          Printf.sprintf "packed/join:%d" d,
          fun () -> ignore (Stamp.Over_packed.join pkd pkd_o) );
        ( "ablation",
          Printf.sprintf "tree/reduce:%d" d,
          fun () -> ignore (Stamp.reduce tree) );
        ( "ablation",
          Printf.sprintf "list/reduce:%d" d,
          fun () -> ignore (Stamp.Over_list.reduce lst) );
        ( "ablation",
          Printf.sprintf "packed/reduce:%d" d,
          fun () -> ignore (Stamp.Over_packed.reduce pkd) );
      ])
    depths

(* ablation B: eager reduction at join vs deferring it to a single final
   normalization — measures what keeping normal form continuously
   costs/saves on a frontier-narrowing trace *)
let e2b () =
  section "E2b: ablation - eager vs deferred reduction (churn trace)";
  let ops = Workload.churn ~seed:9 ~target:6 ~n_ops:150 () in
  let eager = Execution.Run_stamps.run ops in
  let deferred =
    List.map Stamp.reduce (Execution.Run_stamps_nonreducing.run ops)
  in
  let bits f = Stats.sum_int (List.map Stamp.size_bits f) in
  table
    ~header:[ "strategy"; "final frontier bits"; "peak frontier bits" ]
    [
      [
        "reduce at every join";
        string_of_int (bits eager);
        string_of_int
          (Stats.max_int_list
             (List.map bits (Execution.Run_stamps.run_steps ops)));
      ];
      [
        "reduce once at the end";
        string_of_int (bits deferred);
        string_of_int
          (Stats.max_int_list
             (List.map bits (Execution.Run_stamps_nonreducing.run_steps ops)));
      ];
    ];
  let orders_agree =
    List.for_all
      (fun (a, a') ->
        List.for_all
          (fun (b, b') ->
            Vstamp_core.Relation.equal (Stamp.relation a b) (Stamp.relation a' b'))
          (List.combine eager deferred))
      (List.combine eager deferred)
  in
  Format.printf
    "  (the stamps differ structurally — reduction changes what later@.";
  Format.printf
    "   forks append to — but the frontier order is identical: %b)@."
    orders_agree

(* ------------------------------------------------------------------ *)
(* E11: what observability costs at runtime                            *)
(* ------------------------------------------------------------------ *)

(* Wall-clock throughput of the same run plain, with the I1-I3 runtime
   monitors evaluating the whole frontier after every step, with the
   same monitors sampled 1-in-N, and with the causal-trace recorder
   labelling every state.  Best of [cfg.e11_best_of] runs so a stray
   scheduler hiccup cannot dominate. *)
let e11 ~cfg () =
  section
    "E11: observability overhead (ops/s: plain, full monitors, sampled, \
     +recording)";
  let best_of f =
    let rec go k best =
      if k = 0 then best
      else begin
        let t0 = Unix.gettimeofday () in
        f ();
        go (k - 1) (min best (Unix.gettimeofday () -. t0))
      end
    in
    go (max 1 cfg.e11_best_of) infinity
  in
  (* effective coverage read back from the gauge of a separate untimed
     run with a private registry, so the gauge bookkeeping never sits
     inside the timed lane *)
  let coverage_of ~sampling ops =
    let registry = Vstamp_obs.Registry.create () in
    ignore
      (System.run ~with_oracle:false ~registry ~check_invariants:true ~sampling
         Tracker.stamps ops
        : System.result);
    match
      Vstamp_obs.Registry.find registry
        "vstamp_monitor_coverage{monitor=\"stamps\"}"
    with
    | Some (Vstamp_obs.Registry.Gauge g) -> Vstamp_obs.Metric.value g
    | _ -> nan
  in
  (* op counts are deliberately modest: I2/I3 are quadratic in frontier
     width and linear in name size, so a wide frontier (deep-fork) or
     fragmented ids (churn, see E1) make the monitored column measure
     blow-up rather than the monitor *)
  let workloads =
    [
      ("uniform", Workload.uniform ~seed:7 ~n_ops:cfg.e11_uniform_ops ());
      ("deep-fork", Workload.deep_fork ~depth:cfg.e11_deep_fork_depth ());
      ("churn", Workload.churn ~seed:7 ~target:8 ~n_ops:cfg.e11_churn_ops ());
    ]
  in
  let sampling = Vstamp_obs.Monitor.Every_n cfg.e11_every_n in
  let rows, payload =
    List.split
      (List.map
         (fun (wname, ops) ->
           let n = List.length ops in
           let run ?check_invariants ?sampling ?trace () =
             ignore
               (System.run ~with_oracle:false ?check_invariants ?sampling
                  ?trace Tracker.stamps ops
                 : System.result)
           in
           let throughput f = float_of_int n /. best_of f in
           let plain = throughput (fun () -> run ()) in
           (* same workload over the hash-consed backend, unmonitored:
              how much of the monitorable budget the representation
              itself buys back *)
           let packed_plain =
             throughput (fun () ->
                 ignore
                   (System.run ~with_oracle:false Tracker.stamps_packed ops
                     : System.result))
           in
           let monitored = throughput (fun () -> run ~check_invariants:true ()) in
           let sampled =
             throughput (fun () -> run ~check_invariants:true ~sampling ())
           in
           let recording =
             throughput (fun () ->
                 run ~trace:(Vstamp_obs.Causal_trace.create ()) ())
           in
           let coverage = coverage_of ~sampling ops in
           ( [
               wname;
               string_of_int n;
               Printf.sprintf "%.2e" plain;
               Printf.sprintf "%.2e" packed_plain;
               Printf.sprintf "%.2e" monitored;
               Printf.sprintf "%.2e" sampled;
               Printf.sprintf "%.2e" recording;
               Printf.sprintf "%.1fx" (plain /. monitored);
               Printf.sprintf "%.1fx" (plain /. sampled);
             ],
             ( wname,
               Vstamp_obs.Jsonx.Obj
                 [
                   ("ops", Vstamp_obs.Jsonx.Int n);
                   ("plain_ops_per_s", Vstamp_obs.Jsonx.Float plain);
                   ("packed_plain_ops_per_s", Vstamp_obs.Jsonx.Float packed_plain);
                   ("monitored_ops_per_s", Vstamp_obs.Jsonx.Float monitored);
                   ("sampled_ops_per_s", Vstamp_obs.Jsonx.Float sampled);
                   ("recording_ops_per_s", Vstamp_obs.Jsonx.Float recording);
                   ( "monitor_slowdown",
                     Vstamp_obs.Jsonx.Float (plain /. monitored) );
                   ("sampled_slowdown", Vstamp_obs.Jsonx.Float (plain /. sampled));
                   ("sampled_coverage", Vstamp_obs.Jsonx.Float coverage);
                   ("every_n", Vstamp_obs.Jsonx.Int cfg.e11_every_n);
                 ] ) ))
         workloads)
  in
  table
    ~header:
      [
        "workload";
        "ops";
        "plain ops/s";
        "packed";
        "full mon";
        Printf.sprintf "1-in-%d" cfg.e11_every_n;
        "+recording";
        "full cost";
        "sampled cost";
      ]
    rows;
  (* E13's curve: how the overhead and coverage trade off as the
     sampling period stretches, on the workload where full monitoring
     hurts most *)
  let churn = Workload.churn ~seed:7 ~target:8 ~n_ops:cfg.e11_churn_ops () in
  let n = List.length churn in
  let plain =
    float_of_int n
    /. best_of (fun () ->
           ignore
             (System.run ~with_oracle:false Tracker.stamps churn
               : System.result))
  in
  Format.printf "@.sampling sweep (churn): slowdown vs coverage by period@.";
  let sweep =
    List.map
      (fun every_n ->
        let sampling = Vstamp_obs.Monitor.Every_n every_n in
        let sampled =
          float_of_int n
          /. best_of (fun () ->
                 ignore
                   (System.run ~with_oracle:false ~check_invariants:true
                      ~sampling Tracker.stamps churn
                     : System.result))
        in
        let coverage = coverage_of ~sampling churn in
        Format.printf "  every_n=%-5d %8.2e ops/s  %5.1fx slowdown  %5.1f%% \
                       coverage@."
          every_n sampled (plain /. sampled) (100.0 *. coverage);
        Vstamp_obs.Jsonx.Obj
          [
            ("every_n", Vstamp_obs.Jsonx.Int every_n);
            ("ops_per_s", Vstamp_obs.Jsonx.Float sampled);
            ("slowdown", Vstamp_obs.Jsonx.Float (plain /. sampled));
            ("coverage", Vstamp_obs.Jsonx.Float coverage);
          ])
      [ 1; 10; 100; 1000 ]
  in
  (Vstamp_obs.Jsonx.Obj payload, Vstamp_obs.Jsonx.List sweep)

let e3 ~cfg () =
  section "E3: operation latency (bechamel, ns/op)";
  let open Bechamel in
  (* screen every case against the per-case time budget with one timed
     probe call; a pathological case (list/join at depth 12 costs
     ~300 ms per call) would otherwise own the whole run's wall clock *)
  let survivors, timed_out =
    List.partition_map
      (fun (group, name, fn) ->
        let t0 = Unix.gettimeofday () in
        fn ();
        let ms = (Unix.gettimeofday () -. t0) *. 1e3 in
        if ms <= cfg.case_budget_ms then Either.Left (group, name, fn)
        else Either.Right (group ^ "/" ^ name, ms))
      (latency_cases () @ ablation_cases ())
  in
  List.iter
    (fun (key, ms) ->
      Format.printf "  %s: over budget (probe %.1f ms > %.0f ms), recorded as \
                     timed out@."
        key ms cfg.case_budget_ms)
    timed_out;
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let bcfg =
    Benchmark.cfg ~limit:cfg.latency_limit
      ~quota:(Time.second cfg.latency_quota_s)
      ~kde:None ()
  in
  let groups =
    List.sort_uniq compare (List.map (fun (g, _, _) -> g) survivors)
  in
  let raw = Hashtbl.create 64 in
  List.iter
    (fun g ->
      let tests =
        List.filter_map
          (fun (g', name, fn) ->
            if g' = g then Some (Test.make ~name (Staged.stage fn)) else None)
          survivors
      in
      Hashtbl.iter
        (fun k v -> Hashtbl.replace raw k v)
        (Benchmark.all bcfg [ instance ] (Test.make_grouped ~name:g tests)))
    groups;
  let results = Analyze.all ols instance raw in
  let estimates =
    Hashtbl.fold
      (fun name ols acc ->
        match Analyze.OLS.estimates ols with
        | Some (e :: _) -> (name, e) :: acc
        | _ -> acc)
      results []
    |> List.sort compare
  in
  table
    ~header:[ "operation"; "ns/op" ]
    (List.map (fun (name, ns) -> [ name; Printf.sprintf "%.0f" ns ]) estimates);
  Vstamp_obs.Jsonx.Obj
    (List.sort compare
       (List.map
          (fun (name, ns) -> (name, Vstamp_obs.Jsonx.Float ns))
          estimates
       @ List.map
           (fun (key, ms) ->
             ( key,
               Vstamp_obs.Jsonx.Obj
                 [
                   ("timed_out", Vstamp_obs.Jsonx.Bool true);
                   ("probe_ms", Vstamp_obs.Jsonx.Float ms);
                 ] ))
           timed_out))

(* ------------------------------------------------------------------ *)

let read_first_line path =
  try
    let ic = open_in path in
    let line = try Some (input_line ic) with End_of_file -> None in
    close_in ic;
    line
  with Sys_error _ -> None

(* Resolve HEAD to a commit hash with plain file IO so the bench binary
   stays usable without a git executable on PATH. *)
let git_rev () =
  let root = ".git" in
  match read_first_line (Filename.concat root "HEAD") with
  | None -> "unknown"
  | Some head -> (
      let prefix = "ref: " in
      if String.length head > String.length prefix
         && String.sub head 0 (String.length prefix) = prefix
      then
        let refname =
          String.sub head (String.length prefix)
            (String.length head - String.length prefix)
        in
        match read_first_line (Filename.concat root refname) with
        | Some hash -> hash
        | None -> (
            (* the ref may only exist in packed-refs *)
            match
              read_first_line (Filename.concat root "packed-refs")
            with
            | None -> "unknown"
            | Some _ -> (
                let ic = open_in (Filename.concat root "packed-refs") in
                let found = ref "unknown" in
                (try
                   while true do
                     let line = input_line ic in
                     match String.index_opt line ' ' with
                     | Some i
                       when String.sub line (i + 1)
                              (String.length line - i - 1)
                            = refname ->
                         found := String.sub line 0 i;
                         raise Exit
                     | _ -> ()
                   done
                 with End_of_file | Exit -> ());
                close_in ic;
                !found))
      else head)

let core_counters () =
  let open Vstamp_core in
  Instr.reset ();
  let was_enabled = !Instr.enabled in
  Instr.enabled := true;
  let ops = Workload.uniform ~seed:7 ~n_ops:400 () in
  let frontier = Execution.Run_stamps.run ops in
  List.iter
    (fun s -> ignore (Vstamp_codec.Wire.stamp_to_string s))
    frontier;
  Instr.enabled := was_enabled;
  let fields = Vstamp_sim.Telemetry.counter_fields () in
  Instr.reset ();
  Vstamp_obs.Jsonx.Obj
    (List.map (fun (k, v) -> (k, Vstamp_obs.Jsonx.Int v)) fields)

(* ------------------------------------------------------------------ *)
(* E14: divergence and convergence time vs partition severity          *)
(* ------------------------------------------------------------------ *)

(* Stamps vs version vectors under partition weather: the Lag scenario
   (writes plus weather-filtered syncs, then quiescence and gossip
   sweeps) at several severities, measuring how far the replicas drift
   (peak/mean oracle lag, frontier width), how many sync steps bring
   them back to global dominance, and what fraction of the shipped
   bytes a frontier-exchange protocol would have needed
   (delta_efficiency).  Deterministic in the seed except for the
   wall-clock convergence_ns column, which is informational and not
   extracted by the regression gate. *)
let e14_trackers = [ Tracker.stamps; Tracker.version_vectors ]

let e14 ~cfg () =
  section
    "E14: divergence / convergence time vs partition severity (stamps vs vv)";
  let rows =
    List.concat_map
      (fun severity ->
        List.map
          (fun tracker ->
            let lag_cfg =
              {
                Lag.replicas = cfg.e14_replicas;
                rounds = cfg.e14_rounds;
                p_update = 0.5;
                syncs_per_round = 2;
                severity;
                seed = 7;
                epoch = 4;
                max_heal_rounds = 16;
              }
            in
            (severity, Tracker.name tracker, Lag.run lag_cfg tracker))
          e14_trackers)
      cfg.e14_severities
  in
  table
    ~header:
      [
        "severity";
        "tracker";
        "peak lag";
        "mean lag";
        "width";
        "conv steps";
        "heal rounds";
        "shipped B";
        "redundant B";
        "efficiency";
      ]
    (List.map
       (fun (severity, name, (r : Lag.result)) ->
         [
           Printf.sprintf "%.1f" severity;
           name;
           string_of_int r.Lag.peak_lag;
           Printf.sprintf "%.2f" r.Lag.mean_lag;
           string_of_int r.Lag.peak_width;
           (match r.Lag.convergence with
           | Some (_, steps) -> string_of_int steps
           | None -> "-");
           string_of_int r.Lag.heal_rounds;
           string_of_int r.Lag.shipped_bytes;
           string_of_int r.Lag.redundant_bytes;
           Printf.sprintf "%.3f" r.Lag.delta_efficiency;
         ])
       rows);
  Vstamp_obs.Jsonx.List
    (List.map
       (fun (severity, name, (r : Lag.result)) ->
         let open Vstamp_obs in
         Jsonx.Obj
           [
             ("severity", Jsonx.Float severity);
             ("tracker", Jsonx.String name);
             ("replicas", Jsonx.Int r.Lag.replicas);
             ("converged", Jsonx.Bool r.Lag.converged);
             ( "convergence_steps",
               match r.Lag.convergence with
               | Some (_, steps) -> Jsonx.Int steps
               | None -> Jsonx.Null );
             ( "convergence_ns",
               match r.Lag.convergence with
               | Some (ns, _) -> Jsonx.Float (Int64.to_float ns)
               | None -> Jsonx.Null );
             ("heal_rounds", Jsonx.Int r.Lag.heal_rounds);
             ("peak_lag", Jsonx.Int r.Lag.peak_lag);
             ("mean_lag", Jsonx.Float r.Lag.mean_lag);
             ("peak_width", Jsonx.Int r.Lag.peak_width);
             ("peak_entropy", Jsonx.Float r.Lag.peak_entropy);
             ("shipped_bytes", Jsonx.Int r.Lag.shipped_bytes);
             ("minimal_bytes", Jsonx.Int r.Lag.minimal_bytes);
             ("redundant_bytes", Jsonx.Int r.Lag.redundant_bytes);
             ("sync_delta_efficiency", Jsonx.Float r.Lag.delta_efficiency);
           ])
       rows)

(* E15: the flight recorder's duty cycle.  One recorder tick is a GC
   sample, an alert-engine evaluation and a Tsdb snapshot of a
   soak-shaped registry; the soak driver runs one per --record-every.
   Reported as ns/tick (best of [cfg.e15_best_of] batches of
   [cfg.e15_ticks]) and as the percentage of a 1 s and a 100 ms cadence
   that cost represents, plus the recorder's fixed ring footprint. *)
let e15 ~cfg () =
  section "E15: flight recorder overhead (tick cost vs cadence)";
  let open Vstamp_obs in
  let registry = Registry.create () in
  (* a live-soak-shaped registry: a mix of counters, gauges and
     histograms across [cfg.e15_series] distinct names *)
  let counters =
    Array.init cfg.e15_series (fun i ->
        Registry.counter registry (Printf.sprintf "bench_e15_ctr_%03d" i))
  in
  Array.iteri (fun i c -> Metric.add c (i * 17)) counters;
  for i = 0 to (cfg.e15_series / 2) - 1 do
    Metric.set
      (Registry.gauge registry (Printf.sprintf "bench_e15_gauge_%03d" i))
      (float_of_int i)
  done;
  for i = 0 to (cfg.e15_series / 4) - 1 do
    let h = Registry.histogram registry (Printf.sprintf "bench_e15_hist_%03d" i) in
    for v = 1 to 16 do
      Metric.observe_int h (v * (i + 1))
    done
  done;
  let rules =
    match
      Alert.parse_rules
        "hot bench_e15_ctr_000 > 1e12\n\
         fast rate(bench_e15_ctr_001) > 1e12\n\
         gone absent(bench_e15_ctr_002)\n\
         broken invariant_violation\n"
    with
    | Ok rs -> rs
    | Error m -> failwith ("E15 rules: " ^ m)
  in
  let runtime = Runtime.create ~registry () in
  let alerts = Alert.create ~registry rules in
  let tsdb = Tsdb.create () in
  let now = ref 0.0 in
  let tick () =
    now := !now +. 1.0;
    (* a little registry churn so counter deltas are non-trivial *)
    Metric.inc counters.(0);
    Metric.add counters.(1) 3;
    Runtime.sample ~now_s:!now runtime;
    Alert.eval ~now_s:!now alerts;
    Tsdb.sample tsdb ~now_s:!now registry
  in
  (* first tick registers every series in the recorder *)
  tick ();
  let best =
    let rec go k best =
      if k = 0 then best
      else begin
        let t0 = Unix.gettimeofday () in
        for _ = 1 to cfg.e15_ticks do
          tick ()
        done;
        go (k - 1) (min best (Unix.gettimeofday () -. t0))
      end
    in
    go (max 1 cfg.e15_best_of) infinity
  in
  let tick_ns = best /. float_of_int cfg.e15_ticks *. 1e9 in
  let pct_of cadence_s = 100.0 *. tick_ns /. (cadence_s *. 1e9) in
  let overhead_pct_1s = pct_of 1.0 in
  let overhead_pct_100ms = pct_of 0.1 in
  let footprint = Tsdb.footprint_bytes tsdb in
  table
    ~header:
      [ "series"; "ticks"; "ns/tick"; "@1s"; "@100ms"; "ring footprint" ]
    [
      [
        string_of_int (List.length (Tsdb.names tsdb));
        string_of_int cfg.e15_ticks;
        Printf.sprintf "%.0f" tick_ns;
        Printf.sprintf "%.3f%%" overhead_pct_1s;
        Printf.sprintf "%.2f%%" overhead_pct_100ms;
        Printf.sprintf "%dB" footprint;
      ];
    ]
    ;
  Jsonx.Obj
    [
      ("series", Jsonx.Int (List.length (Tsdb.names tsdb)));
      ("ticks", Jsonx.Int cfg.e15_ticks);
      ("tick_ns", Jsonx.Float tick_ns);
      ("overhead_pct_1s", Jsonx.Float overhead_pct_1s);
      ("overhead_pct_100ms", Jsonx.Float overhead_pct_100ms);
      ("footprint_bytes", Jsonx.Int footprint);
      ("points_retained", Jsonx.Int (Tsdb.points_retained tsdb));
    ]

(* E16: distributed-tracing overhead.  What context propagation costs
   the sync layers: the per-call cost of recording a span (attached,
   with a throwaway sink) against the detached no-op path every
   uninstrumented run takes, the remote continuation (header parse +
   child span), and the fixed wire overhead — the header bytes a sync
   envelope carries and the JSONL record one span adds to a node's
   log. *)
let e16 ~cfg () =
  section "E16: trace propagation overhead (span cost, wire bytes)";
  let open Vstamp_obs in
  let n = cfg.e16_spans in
  let best_of f =
    let rec go k best =
      if k = 0 then best
      else begin
        let t0 = Unix.gettimeofday () in
        f ();
        go (k - 1) (min best (Unix.gettimeofday () -. t0))
      end
    in
    go (max 1 cfg.e16_best_of) infinity
  in
  let spans body =
    best_of (fun () ->
        for i = 1 to n do
          Trace_ctx.with_span "bench.span"
            ~attrs:[ ("i", Jsonx.Int i) ]
            body
        done)
  in
  Trace_ctx.set_id_seed 0x5eed;
  let sink_count = ref 0 in
  Trace_ctx.attach ~sink:(fun _ -> incr sink_count) ~node:"bench" ();
  let header =
    match Trace_ctx.current () with
    | Some c -> Trace_ctx.to_header c
    | None -> ""
  in
  let attached_s = spans (fun () -> ()) in
  let remote_s =
    best_of (fun () ->
        for _ = 1 to n do
          Trace_ctx.with_remote_span ~header "bench.apply" (fun () -> ())
        done)
  in
  (* one representative record, shaped like the soak's sync spans *)
  let recorded = ref [] in
  Trace_ctx.detach ();
  Trace_ctx.attach ~sink:(fun sp -> recorded := sp :: !recorded) ~node:"bench" ();
  Trace_ctx.with_span "sync.session" ~stamp:"[1|0]" ~domain:"cluster"
    ~attrs:[ ("files", Jsonx.Int 5); ("conflicts", Jsonx.Int 0) ]
    (fun () -> ());
  Trace_ctx.detach ();
  let span_json_bytes =
    match !recorded with
    | sp :: _ -> String.length (Trace_ctx.span_to_string sp)
    | [] -> 0
  in
  (* the same instrumented call sites with no tracer attached: the
     price every un-traced run pays *)
  let detached_s = spans (fun () -> ()) in
  let per s = s /. float_of_int n *. 1e9 in
  table
    ~header:
      [ "spans"; "with_span ns"; "detached ns"; "remote ns"; "header B";
        "record B" ]
    [
      [
        string_of_int n;
        Printf.sprintf "%.0f" (per attached_s);
        Printf.sprintf "%.1f" (per detached_s);
        Printf.sprintf "%.0f" (per remote_s);
        string_of_int (String.length header);
        string_of_int span_json_bytes;
      ];
    ];
  Jsonx.Obj
    [
      ("spans", Jsonx.Int n);
      ("with_span_ns", Jsonx.Float (per attached_s));
      ("detached_ns", Jsonx.Float (per detached_s));
      ("remote_span_ns", Jsonx.Float (per remote_s));
      ("header_bytes", Jsonx.Int (String.length header));
      ("span_json_bytes", Jsonx.Int span_json_bytes);
    ]

(* E17: identity-space reclamation under replica churn.  One Churn.run
   per churn rate — high-rate autonomous fork, weather-gated retire —
   comparing the stamp lane's id-digit footprint (and what join/reduce
   reclaimed of the fork-added digits, against the oracle minimum for
   the final population) with the lockstep dynamic-VV lane's
   retired-entry baggage awaiting garbage collection.  The
   partition-of-unity audit must stay clean on every observed round;
   an unclean lane is a correctness bug, not a performance number. *)
let e17 ~cfg () =
  section "E17: id-space reclamation vs dynamic-VV baggage under churn";
  let rows =
    List.map
      (fun rate ->
        let ch_cfg =
          {
            Churn.replicas = cfg.e17_replicas;
            min_replicas = 2;
            max_replicas = 4 * cfg.e17_replicas;
            rounds = cfg.e17_rounds;
            p_update = 0.5;
            syncs_per_round = 2;
            churn_rate = rate;
            gc_every = 1;
            severity = 0.4;
            seed = 7;
            epoch = 4;
            inject_corruption = None;
          }
        in
        (rate, Churn.run ch_cfg))
      cfg.e17_rates
  in
  table
    ~header:
      [
        "rate";
        "forks";
        "retires";
        "pop";
        "id bits";
        "oracle";
        "reclaimed";
        "effect.";
        "entropy";
        "dvv entries";
        "retired";
        "gc dropped";
        "audit";
      ]
    (List.map
       (fun (rate, (r : Churn.result)) ->
         [
           Printf.sprintf "%.1f" rate;
           string_of_int r.Churn.forks;
           string_of_int r.Churn.retires;
           string_of_int r.Churn.final_replicas;
           string_of_int r.Churn.stamp_id_bits;
           string_of_int r.Churn.oracle_bits;
           string_of_int r.Churn.reclaimed_bits;
           Printf.sprintf "%.3f" r.Churn.reduce_effectiveness;
           Printf.sprintf "%.2f" r.Churn.entropy;
           string_of_int r.Churn.dvv_entries;
           string_of_int r.Churn.dvv_retired_entries;
           string_of_int r.Churn.dvv_gc_dropped;
           (if r.Churn.audit_clean then "clean" else "VIOLATED");
         ])
       rows);
  Vstamp_obs.Jsonx.List
    (List.map
       (fun (rate, (r : Churn.result)) ->
         let open Vstamp_obs in
         Jsonx.Obj
           [
             ("churn_rate", Jsonx.Float rate);
             ("rounds", Jsonx.Int r.Churn.rounds);
             ("forks", Jsonx.Int r.Churn.forks);
             ("retires", Jsonx.Int r.Churn.retires);
             ("blocked_retires", Jsonx.Int r.Churn.blocked_retires);
             ("peak_replicas", Jsonx.Int r.Churn.peak_replicas);
             ("final_replicas", Jsonx.Int r.Churn.final_replicas);
             ("stamp_id_bits", Jsonx.Int r.Churn.stamp_id_bits);
             ("stamp_id_width", Jsonx.Int r.Churn.stamp_id_width);
             ("stamp_max_depth", Jsonx.Int r.Churn.stamp_max_depth);
             ("stamp_size_bits", Jsonx.Int r.Churn.stamp_size_bits);
             ("reclaimed_bits", Jsonx.Int r.Churn.reclaimed_bits);
             ("fork_bits", Jsonx.Int r.Churn.fork_bits);
             ("oracle_bits", Jsonx.Int r.Churn.oracle_bits);
             ("entropy", Jsonx.Float r.Churn.entropy);
             ("oracle_entropy", Jsonx.Float r.Churn.oracle_entropy);
             ( "reduce_effectiveness",
               Jsonx.Float r.Churn.reduce_effectiveness );
             ("dvv_entries", Jsonx.Int r.Churn.dvv_entries);
             ("dvv_retired_entries", Jsonx.Int r.Churn.dvv_retired_entries);
             ( "dvv_peak_retired_entries",
               Jsonx.Int r.Churn.dvv_peak_retired_entries );
             ("dvv_size_bits", Jsonx.Int r.Churn.dvv_size_bits);
             ("dvv_gc_dropped", Jsonx.Int r.Churn.dvv_gc_dropped);
             ( "relation_mismatches",
               Jsonx.Int r.Churn.relation_mismatches );
             ("audit_clean", Jsonx.Bool r.Churn.audit_clean);
           ])
       rows)

(* E18: the networked anti-entropy plane measured end to end.  A
   3-node loopback-TCP cluster (Vstamp_net.Node speaking the real
   vstamp-sync/1 framed protocol) seeds disjoint keys per node and is
   driven by deterministic [sync_now] rounds until every store digest
   agrees.  Recorded: total bytes the sockets carried (frames,
   handshakes, frontiers, payloads — everything) against the engine
   ledger's minimal delta (the same minimal-frontier accounting the
   E14 lane gates on), as [overhead_ratio]; plus rounds to
   convergence.  The wall-clock convergence time is informational only
   and excluded from the regression gate.  Budget: wire bytes must
   stay within 2x of the minimal delta. *)
let e18 ~cfg () =
  section "E18: networked anti-entropy - wire bytes vs minimal delta";
  let module N = Vstamp_net.Node.Make (Vstamp_core.Backend.Over_tree) in
  let value node k =
    let tag = Printf.sprintf "e18/n%d/k%03d:" node k in
    let b = Buffer.create (cfg.e18_value_bytes + String.length tag) in
    while Buffer.length b < cfg.e18_value_bytes do
      Buffer.add_string b tag
    done;
    Buffer.sub b 0 cfg.e18_value_bytes
  in
  (* Cascade mesh: node i dials every node created before it, so the
     cluster is a full mesh over ephemeral loopback ports. *)
  let nodes =
    let rec go i acc =
      if i >= cfg.e18_nodes then List.rev acc
      else
        let registry = Vstamp_obs.Registry.create () in
        let peers = List.map (fun (_, _, n) -> ("127.0.0.1", N.port n)) acc in
        let node =
          N.create ~registry ~interval_s:60.0 ~idle_timeout_s:10.0
            ~node_id:(Printf.sprintf "bench-n%d" i)
            ~backend:Vstamp_core.Backend.default_key ~port:0 ~peers ()
        in
        go (i + 1) ((i, registry, node) :: acc)
    in
    go 0 []
  in
  Fun.protect
    ~finally:(fun () -> List.iter (fun (_, _, n) -> N.stop n) nodes)
    (fun () ->
      List.iter
        (fun (i, _, n) ->
          for k = 0 to cfg.e18_keys - 1 do
            N.put n ~key:(Printf.sprintf "n%d-k%03d" i k) (value i k)
          done)
        nodes;
      let converged () =
        match List.map (fun (_, _, n) -> N.digest n) nodes with
        | [] -> true
        | d :: rest -> List.for_all (( = ) d) rest
      in
      let rounds = ref 0 in
      let t0 = Unix.gettimeofday () in
      while (not (converged ())) && !rounds < cfg.e18_round_budget do
        incr rounds;
        List.iter (fun (_, _, n) -> ignore (N.sync_now n)) nodes
      done;
      let convergence_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
      let count r name =
        Vstamp_obs.Metric.count (Vstamp_obs.Registry.counter r name)
      in
      let total name =
        List.fold_left (fun acc (_, r, _) -> acc + count r name) 0 nodes
      in
      (* The responder threads count their bytes after their writes
         return, so they can lag the initiator's view of a completed
         session.  Wait for the totals to go quiescent and conserved
         (cluster-wide tx = rx: every byte sent was received and both
         ends counted it) so wire_bytes is the settled, deterministic
         figure. *)
      let totals () =
        (total "net_tx_bytes_total", total "net_rx_bytes_total")
      in
      let rec settle prev n =
        if n > 0 then begin
          Thread.delay 0.02;
          let cur = totals () in
          if not (cur = prev && fst cur = snd cur) then settle cur (n - 1)
        end
      in
      settle (totals ()) 100;
      let wire_bytes = total "net_tx_bytes_total" in
      let rx_bytes = total "net_rx_bytes_total" in
      let shipped = total "net_sync_shipped_bytes_total" in
      let minimal = total "net_sync_minimal_bytes_total" in
      let redundant = total "net_sync_redundant_bytes_total" in
      let proto_errors = total "net_protocol_errors_total" in
      let sessions = total "net_sync_rounds_total" in
      let overhead_ratio =
        float_of_int wire_bytes /. float_of_int (max 1 minimal)
      in
      let within_budget = overhead_ratio <= 2.0 in
      table
        ~header:[ "node"; "keys"; "tx bytes"; "rx bytes"; "sessions" ]
        (List.map
           (fun (i, r, n) ->
             [
               Printf.sprintf "n%d" i;
               string_of_int (List.length (N.keys n));
               string_of_int (count r "net_tx_bytes_total");
               string_of_int (count r "net_rx_bytes_total");
               string_of_int (count r "net_sync_rounds_total");
             ])
           nodes);
      Format.printf
        "  converged=%b rounds=%d sessions=%d wire=%dB minimal=%dB \
         overhead=%.2fx (budget <= 2.0x: %s)@."
        (converged ()) !rounds sessions wire_bytes minimal overhead_ratio
        (if within_budget then "ok" else "OVER BUDGET");
      let open Vstamp_obs in
      Jsonx.Obj
        [
          ("nodes", Jsonx.Int cfg.e18_nodes);
          ("keys_per_node", Jsonx.Int cfg.e18_keys);
          ("value_bytes", Jsonx.Int cfg.e18_value_bytes);
          ("converged", Jsonx.Bool (converged ()));
          ("rounds_to_convergence", Jsonx.Int !rounds);
          ("sessions", Jsonx.Int sessions);
          ("wire_bytes", Jsonx.Int wire_bytes);
          ("rx_bytes", Jsonx.Int rx_bytes);
          ("shipped_bytes", Jsonx.Int shipped);
          ("minimal_bytes", Jsonx.Int minimal);
          ("redundant_bytes", Jsonx.Int redundant);
          ("protocol_errors", Jsonx.Int proto_errors);
          ("overhead_ratio", Jsonx.Float overhead_ratio);
          ("within_budget", Jsonx.Bool within_budget);
          ("convergence_ns", Jsonx.Float convergence_ns);
        ])

(* /3 keeps every /2 field and adds the config and wall_clock blocks
   (Bench_store's comparability key and run metadata), the E11 sampled
   columns, the E13 sampling_sweep, and {"timed_out": true} markers for
   latency cases over the per-case budget.  /4 keeps every /3 field and
   adds the registered backend set to the config block plus the
   packed-backend ablation lanes.  /5 keeps every /4 field and adds the
   E14 convergence block (divergence / time-to-convergence /
   sync-delta efficiency vs partition severity).  /6 keeps every /5
   field and adds the E15 recorder block (flight-recorder tick cost,
   cadence duty cycles, ring footprint).  /7 keeps every /6 field and
   adds the E16 trace block (span-record and remote-continuation
   costs, context-propagation wire bytes).  /8 keeps every /7 field and
   adds the E17 idspace block (id-digit reclamation vs dynamic-VV
   retired-entry baggage across churn rates, with the
   partition-of-unity audit verdict).  /9 keeps every /8 field and
   adds the E18 net block (bytes on the wire for a real 3-node TCP
   cluster against the engine ledger's minimal delta, with the
   2x overhead budget verdict). *)
let bench_json_schema = "vstamp-bench-core/9"

let write_bench_json ~opts ~cfg ~elapsed_s ~sizes ~reduction ~latencies
    ~monitor_overhead ~sampling_sweep ~convergence ~recorder ~trace ~idspace
    ~net =
  let open Vstamp_obs in
  let json =
    Jsonx.Obj
      [
        ("schema", Jsonx.String bench_json_schema);
        ("seed", Jsonx.Int 7);
        ("git_rev", Jsonx.String (git_rev ()));
        ("config", config_json cfg);
        ( "wall_clock",
          Jsonx.Obj
            [
              ("recorded_unix_s", Jsonx.Float (Unix.gettimeofday ()));
              ("elapsed_s", Jsonx.Float elapsed_s);
            ] );
        ("op_latency_ns", latencies);
        ("sizes", sizes);
        ("reduction", reduction);
        ("core_counters", core_counters ());
        ("monitor_overhead", monitor_overhead);
        ("sampling_sweep", sampling_sweep);
        ("convergence", convergence);
        ("recorder", recorder);
        ("trace", trace);
        ("idspace", idspace);
        ("net", net);
      ]
  in
  let oc = open_out opts.out in
  output_string oc (Jsonx.to_string json);
  output_char oc '\n';
  close_out oc;
  Bench_store.append ~file:opts.history json;
  Format.printf "@.wrote %s (schema %s); appended to %s@." opts.out
    bench_json_schema opts.history

let () =
  let opts = parse_argv () in
  let cfg = bench_config ~quick:opts.quick in
  Vstamp_obs.Clock.set_source Unix.gettimeofday;
  let t_start = Unix.gettimeofday () in
  Format.printf "Version Stamps - experiment harness%s@."
    (if cfg.quick then " (quick mode)" else "");
  Format.printf "(deterministic except E3/E11 wall-clock lanes; see \
                 EXPERIMENTS.md)@.";
  fig1 ();
  fig2_4 ();
  fig3 ();
  let sizes = e1 ~scales:cfg.e1_scales () in
  let reduction = e2 () in
  if not cfg.quick then e2b ();
  let latencies = e3 ~cfg () in
  if not cfg.quick then begin
    e4 ();
    e5 ();
    e6 ();
    e7 ();
    e8 ();
    e9 ();
    e10 ()
  end;
  let monitor_overhead, sampling_sweep = e11 ~cfg () in
  let convergence = e14 ~cfg () in
  let recorder = e15 ~cfg () in
  let trace = e16 ~cfg () in
  let idspace = e17 ~cfg () in
  let net = e18 ~cfg () in
  let elapsed_s = Unix.gettimeofday () -. t_start in
  write_bench_json ~opts ~cfg ~elapsed_s ~sizes ~reduction ~latencies
    ~monitor_overhead ~sampling_sweep ~convergence ~recorder ~trace ~idspace
    ~net;
  Format.printf "@.done.@."
