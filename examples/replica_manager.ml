(* A replica manager for a replicated configuration value.

   Combines the multi-value register (vstamp.crdt) with frontier queries
   (Frontier): a fleet of nodes each holds a register replica; the
   manager periodically inspects the fleet, fast-forwards stale nodes,
   surfaces genuine conflicts, and retires replicas so ids shrink back.

   Run with: dune exec examples/replica_manager.exe *)

open Vstamp_core
open Vstamp_crdt

let show_fleet label fleet =
  Format.printf "@.%s@." label;
  List.iteri
    (fun i r ->
      Format.printf "  node%d: %a@." i
        (Mv_register.pp Format.pp_print_string)
        r)
    fleet

let frontier_of fleet = Frontier.of_list (List.map Mv_register.stamp fleet)

let report fleet =
  let f = frontier_of fleet in
  Format.printf "  frontier: %d replicas, %d conflict pair(s), %s@."
    (Frontier.size f)
    (List.length (Frontier.conflicts f))
    (if Frontier.all_equivalent f then "all equivalent"
     else
       Printf.sprintf "%d dominant / %d stale"
         (List.length (Frontier.dominant f))
         (List.length (Frontier.obsolete f)))

let () =
  Format.printf "== Replica manager over a multi-value register ==@.";

  (* bootstrap a fleet of four nodes, forked with no coordination *)
  let n0 = Mv_register.create "config-v1" in
  let n0, n1 = Mv_register.fork n0 in
  let n1, n2 = Mv_register.fork n1 in
  let n2, n3 = Mv_register.fork n2 in
  let fleet = [ n0; n1; n2; n3 ] in
  show_fleet "fleet bootstrapped (no id service involved)" fleet;
  report fleet;

  (* node1 rolls out a new config; node3 concurrently rolls out another *)
  let n1 = Mv_register.write n1 "config-v2-from-node1" in
  let n3 = Mv_register.write n3 "config-v2-from-node3" in
  let fleet = [ n0; n1; n2; n3 ] in
  show_fleet "after two concurrent rollouts" fleet;
  report fleet;

  (* gossip pass: pairwise syncs propagate both candidates *)
  let n0, n1 = Mv_register.sync n0 n1 in
  let n2, n3 = Mv_register.sync n2 n3 in
  let n1, n2 = Mv_register.sync n1 n2 in
  let n0, n3 = Mv_register.sync n0 n3 in
  let n0, n1 = Mv_register.sync n0 n1 in
  let fleet = [ n0; n1; n2; n3 ] in
  show_fleet "after a gossip round" fleet;
  report fleet;
  Format.printf "  node0 candidates: %s@."
    (String.concat " | " (Mv_register.read n0));

  (* the manager resolves the conflict fleet-wide *)
  let n0 = Mv_register.resolve n0 ~value:"config-v2-merged" in
  let n0, n1 = Mv_register.sync n0 n1 in
  let n1, n2 = Mv_register.sync n1 n2 in
  let n2, n3 = Mv_register.sync n2 n3 in
  let n0, n3 = Mv_register.sync n0 n3 in
  let fleet = [ n0; n1; n2; n3 ] in
  show_fleet "after resolution and propagation" fleet;
  report fleet;

  (* scale the fleet down: retire node1..3 into node0 *)
  let survivor =
    Frontier.merge_all
      (Frontier.of_list (List.map Mv_register.stamp fleet))
  in
  Format.printf "@.fleet scaled down to a single node@.";
  Format.printf "  node0 stamp after absorbing everyone: %a@." Stamp.pp survivor;
  Format.printf
    "  (the frontier narrowed to one replica, so the Section 6 reduction@.";
  Format.printf
    "   collapsed the fragmented ids all the way back to the seed shape)@."
