(* A guided tour of the paper, section by section, using the named
   configurations of Definition 2.1 / 4.3 — the exact presentation style
   of the paper, executable.

   Run with: dune exec examples/paper_tour.exe *)

open Vstamp_core

let heading title = Format.printf "@.== %s ==@.@." title

let show c = Format.printf "  %a@." Config.pp c

let () =
  Format.printf "Version Stamps, the guided tour (following the paper)@.";

  (* ---------------------------------------------------------------- *)
  heading "Section 2: causal histories (the global-view model)";
  Format.printf
    "  The oracle: each element maps to its set of update events.@.";
  let gen = Causal_history.Gen.initial in
  let e1, gen = Causal_history.Gen.fresh gen in
  let e2, _gen = Causal_history.Gen.fresh gen in
  let ha = Causal_history.of_events [ e1 ] in
  let hb = Causal_history.of_events [ e1; e2 ] in
  Format.printf "  C(a) = %a, C(b) = %a: a is %s relative to b@."
    Causal_history.pp ha Causal_history.pp hb
    (Relation.to_paper_string (Causal_history.relation ha hb));
  Format.printf
    "  Events carry globally unique identities -- precisely what is@.";
  Format.printf "  unavailable under partitioned operation.@.";

  (* ---------------------------------------------------------------- *)
  heading "Section 3-4: version stamps, no global view";
  Format.printf "  The same Definition 4.3 derivation, by element name:@.@.";
  let c = Config.initial "a1" in
  show c;
  let c = Config.update c ~elem:"a1" ~result:"a2" in
  Format.printf "  after update(a1):@.";
  show c;
  let c = Config.fork c ~elem:"a2" ~left:"b1" ~right:"c1" in
  Format.printf "  after fork(a2) -- purely local, no identifiers served:@.";
  show c;
  let c = Config.fork c ~elem:"b1" ~left:"d1" ~right:"e1" in
  let c = Config.update c ~elem:"c1" ~result:"c2" in
  let c = Config.update c ~elem:"c2" ~result:"c3" in
  Format.printf "  after fork(b1), update(c1) twice (Figure 2's frontier):@.";
  show c;

  Format.printf "@.  Frontier queries (the paper's comparison relation):@.";
  List.iter
    (fun (x, y) ->
      Format.printf "    %s vs %s: %s@." x y
        (Relation.to_paper_string (Config.relation c x y)))
    [ ("d1", "e1"); ("d1", "c3"); ("e1", "c3") ];

  Format.printf "@.  Invariants I1-I3 hold on this configuration: %b@."
    (Invariants.all (Config.frontier c));

  (* ---------------------------------------------------------------- *)
  heading "Section 5: the correspondence theorem, checked live";
  let trace =
    Execution.
      [ Update 0; Fork 0; Fork 0; Update 2; Update 2; Join (1, 2); Join (0, 1) ]
  in
  let stamps = Execution.Run_stamps.run trace in
  let hists = Execution.Run_histories.run trace in
  let module Corr = Correspondence.Make (Stamp.Over_tree) in
  Format.printf
    "  Running Figure 2's trace over stamps and histories in lockstep:@.";
  Format.printf "  Proposition 5.1 (all elements x, all subsets S): %s@."
    (match Corr.set_counterexample stamps hists with
    | None -> "no disagreement found"
    | Some cex -> Format.asprintf "COUNTEREXAMPLE %a" Corr.pp_counterexample cex);

  (* ---------------------------------------------------------------- *)
  heading "Section 6: simplification after joins";
  let c = Config.join c ~left:"e1" ~right:"c3" ~result:"f1" in
  Format.printf "  after join(e1, c3):@.";
  show c;
  let c = Config.join c ~left:"d1" ~right:"f1" ~result:"g1" in
  Format.printf
    "  after join(d1, f1) -- [1|00+01+1] rewrote through [1|0+1] to:@.";
  show c;
  Format.printf
    "@.  The sole survivor is exactly the seed: the id space healed as@.";
  Format.printf "  the frontier narrowed, with zero coordination anywhere.@.";

  (* ---------------------------------------------------------------- *)
  heading "Epilogue: what the execution looked like";
  Format.printf "%s@."
    (Vstamp_sim.Viz.header trace);
  Format.printf "%s" (Vstamp_sim.Viz.draw ~with_stamps:true trace)
