(* Quickstart: the version-stamp lifecycle in twenty lines of API.

   Run with: dune exec examples/quickstart.exe *)

open Vstamp_core

let show name s = Format.printf "  %-28s %a@." name Stamp.pp s

let () =
  Format.printf "== Version stamps quickstart ==@.@.";

  (* One replica exists at the start of the world. *)
  let origin = Stamp.seed in
  show "origin (seed)" origin;

  (* Replicate it with NO coordination: no id server, no network.  Each
     side autonomously gets a distinguishable identity. *)
  let laptop, phone = Stamp.fork origin in
  Format.printf "@.fork: two replicas, created offline@.";
  show "laptop" laptop;
  show "phone" phone;
  Format.printf "  relation: %s@." (Relation.to_string (Stamp.relation laptop phone));

  (* The laptop modifies its copy. *)
  let laptop = Stamp.update laptop in
  Format.printf "@.update on the laptop@.";
  show "laptop" laptop;
  Format.printf "  phone vs laptop: %s (phone's copy is stale)@."
    (Relation.to_string (Stamp.relation phone laptop));

  (* Both modify: a genuine conflict. *)
  let phone = Stamp.update phone in
  Format.printf "@.update on the phone too@.";
  show "phone" phone;
  Format.printf "  phone vs laptop: %s (real conflict, reconcile!)@."
    (Relation.to_string (Stamp.relation phone laptop));

  (* Synchronize: join the knowledge, fork fresh identities. *)
  let laptop, phone = Stamp.sync laptop phone in
  Format.printf "@.sync (join + fork)@.";
  show "laptop" laptop;
  show "phone" phone;
  Format.printf "  relation: %s@." (Relation.to_string (Stamp.relation laptop phone));

  (* Retire the phone's replica into the laptop: the id space heals and
     the stamp shrinks back to the seed shape (Section 6 reduction). *)
  let merged = Stamp.join laptop phone in
  Format.printf "@.join (phone replica retires)@.";
  show "merged" merged;
  Format.printf "  is the seed again: %b@." (Stamp.equal merged Stamp.seed);

  (* Stamps go on the wire compactly. *)
  let a, _ = Stamp.fork (Stamp.update merged) in
  Format.printf "@.wire encoding of %a: %d bits@." Stamp.pp a
    (Vstamp_codec.Wire.stamp_bits a);

  (* And parse back from the paper's notation. *)
  match Vstamp_codec.Text.stamp_of_string "[1|01+1]" with
  | Ok s -> Format.printf "parsed \"[1|01+1]\" back to %a@." Stamp.pp s
  | Error e -> Format.printf "parse error: %a@." Vstamp_codec.Text.pp_error e
