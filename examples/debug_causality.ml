(* Frontier ordering vs ordering-all-events — Section 1.2 of the paper.

   Version stamps deliberately answer only queries about COEXISTING
   replicas.  To relate any two events of a recorded execution (e.g.
   "did c2 happen after a1?" while debugging), one needs vector clocks —
   which is exactly the extra expressiveness whose price is the global
   identifier requirement.  This example records the Figure 2 run both
   ways and contrasts the queries each mechanism can answer.

   Run with: dune exec examples/debug_causality.exe *)

open Vstamp_core
open Vstamp_vv

let () =
  Format.printf "== Frontier ordering vs overall event ordering ==@.@.";

  (* --- the Figure 2 run with version stamps (frontier ordering) --- *)
  let a1 = Stamp.seed in
  let a2 = Stamp.update a1 in
  let b1, c1 = Stamp.fork a2 in
  let d1, e1 = Stamp.fork b1 in
  let c2 = Stamp.update c1 in
  let f1 = Stamp.join e1 c2 in

  Format.printf "-- version stamps: queries between coexisting elements --@.";
  List.iter
    (fun (x, sx, y, sy) ->
      Format.printf "  %s vs %s: %s@." x y
        (Relation.to_paper_string (Stamp.relation sx sy)))
    [ ("d1", d1, "e1", e1); ("d1", d1, "c2", c2); ("d1", d1, "f1", f1) ];
  Format.printf
    "  (c2 vs a1 is NOT a meaningful stamp query: they never coexist;@.";
  Format.printf
    "   the stamps would compare as '%s', which only describes frontiers)@."
    (Relation.to_string (Stamp.relation c2 a1));

  (* --- the same run recorded with vector clocks (overall ordering) --- *)
  Format.printf "@.-- vector clocks: queries between ANY two events --@.";
  (* processes: pa tracks the a/b/d line, pc the c line, pe the e/f line;
     ids 0,1,2 must be globally unique — the cost of this power *)
  let pa = Vector_clock.create ~id:0 in
  let pa = Vector_clock.tick pa in
  let ev_a1 = Vector_clock.clock pa in
  let pa = Vector_clock.tick pa in
  let ev_a2 = Vector_clock.clock pa in
  (* fork a2 -> b (stays on pa) and c: c starts by receiving a2's time *)
  let pa, m_fork_c = Vector_clock.send pa in
  let pc = Vector_clock.receive (Vector_clock.create ~id:1) m_fork_c in
  (* fork b -> d (pa) and e *)
  let pa, m_fork_e = Vector_clock.send pa in
  let pe = Vector_clock.receive (Vector_clock.create ~id:2) m_fork_e in
  let pa = Vector_clock.tick pa in
  let ev_d1 = Vector_clock.clock pa in
  let pc = Vector_clock.tick pc in
  let ev_c2 = Vector_clock.clock pc in
  (* join e with c -> f: e receives c's time *)
  let _pc, m_join = Vector_clock.send pc in
  let pe = Vector_clock.receive pe m_join in
  let ev_f1 = Vector_clock.clock pe in

  let describe name_x x name_y y =
    let verdict =
      if Vector_clock.happened_before x y then "happened before"
      else if Vector_clock.happened_before y x then "happened after"
      else "concurrent with"
    in
    Format.printf "  %s %s %s   (%s=%s, %s=%s)@." name_x verdict name_y name_x
      (Version_vector.to_string x) name_y
      (Version_vector.to_string y)
  in
  describe "a1" ev_a1 "c2" ev_c2;
  describe "a1" ev_a1 "f1" ev_f1;
  describe "d1" ev_d1 "c2" ev_c2;
  describe "a2" ev_a2 "d1" ev_d1;

  Format.printf
    "@.Vector clocks can order c2 against the long-gone a1 — at the price@.";
  Format.printf
    "of globally unique process ids (0, 1, 2 above) that no one can@.";
  Format.printf
    "allocate inside a partition.  Version stamps give up exactly that@.";
  Format.printf
    "query (meaningless for update tracking) and in exchange need no@.";
  Format.printf "identity infrastructure at all.@."
