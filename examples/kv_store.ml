(* A Dynamo-style key-value store: the server-side of the causality
   world, for contrast with version stamps' peer-to-peer side.

   Three fixed server nodes (ids assigned at deployment — possible here,
   impossible for ad-hoc replicas) accept reads and writes from
   anonymous clients.  Dotted version vectors give exact per-key
   causality: read-modify-write overwrites, concurrent writes become
   siblings, deletes leave tombstones.

   Run with: dune exec examples/kv_store.exe *)

open Vstamp_vv
open Vstamp_kvs

let show name node = Format.printf "%a" Kv_node.pp node; ignore name

let () =
  Format.printf "== Replicated KV store on dotted version vectors ==@.@.";
  let n0 = Kv_node.create ~id:0 in
  let n1 = Kv_node.create ~id:1 in
  let n2 = Kv_node.create ~id:2 in

  (* a client creates a cart through node 0 *)
  let n0 = Kv_node.put n0 ~key:"cart:42" ~context:Version_vector.zero "[book]" in
  Format.printf "client PUT cart:42 = [book] via node0@.";
  show "node0" n0;

  (* anti-entropy spreads it *)
  let n0, n1 = Kv_node.anti_entropy n0 n1 in
  let n1, n2 = Kv_node.anti_entropy n1 n2 in
  Format.printf "@.after anti-entropy, node2 has it too:@.";
  show "node2" n2;

  (* two clients do read-modify-write through different nodes while the
     nodes cannot talk to each other *)
  let _, ctx0 = Kv_node.get n0 "cart:42" in
  let n0 = Kv_node.put n0 ~key:"cart:42" ~context:ctx0 "[book, coffee]" in
  let _, ctx2 = Kv_node.get n2 "cart:42" in
  let n2 = Kv_node.put n2 ~key:"cart:42" ~context:ctx2 "[book, keyboard]" in
  Format.printf "@.concurrent RMWs via node0 and node2 (partition)@.";

  (* the partition heals *)
  let n0, n2 = Kv_node.anti_entropy n0 n2 in
  Format.printf "@.partition heals: both writes survive as siblings@.";
  show "node0" n0;
  assert (Kv_node.conflict n0 "cart:42");

  (* a reader reconciles *)
  let siblings, ctx = Kv_node.get n0 "cart:42" in
  Format.printf "@.client reads %d siblings and writes the merge@."
    (List.length siblings);
  let n0 = Kv_node.put n0 ~key:"cart:42" ~context:ctx "[book, coffee, keyboard]" in
  let n0, n1 = Kv_node.anti_entropy n0 n1 in
  let n1, n2 = Kv_node.anti_entropy n1 n2 in
  show "node0" n0;
  assert (not (Kv_node.conflict n0 "cart:42"));

  (* checkout: delete the cart; a stale replica cannot resurrect it *)
  let _, ctx = Kv_node.get n0 "cart:42" in
  let n0 = Kv_node.delete n0 ~key:"cart:42" ~context:ctx in
  let n0, n1 = Kv_node.anti_entropy n0 n1 in
  let n0, n2 = Kv_node.anti_entropy n0 n2 in
  Format.printf "@.checkout: cart deleted, tombstone kept@.";
  Format.printf "  node0 live keys: [%s], tombstones: [%s]@."
    (String.concat ";" (Kv_node.keys n0))
    (String.concat ";" (Kv_node.tombstones n0));
  assert (Kv_node.converged n0 n1 && Kv_node.converged n0 n2);
  ignore (n1, n2);

  Format.printf
    "@.The mirror image of version stamps: servers have deployment-time@.";
  Format.printf
    "ids so counters work, and clients stay anonymous.  When the replicas@.";
  Format.printf
    "themselves are born in the field, no such ids exist -- that is the@.";
  Format.printf "world version stamps (and ITC) were built for.@."
