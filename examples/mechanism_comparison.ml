(* Run every tracking mechanism over the same workloads and compare
   size and accuracy against the causal-history oracle.

   Run with: dune exec examples/mechanism_comparison.exe *)

open Vstamp_sim

(* stamps_list (the O(width^2) reference implementation) and
   stamps_nonreducing (exponential under sustained gossip) are compared
   on small traces in the benchmark harness instead. *)
let trackers =
  [
    Tracker.stamps;
    Tracker.version_vectors;
    Tracker.dynamic_vv;
    Tracker.plausible 4;
    Tracker.plausible 8;
    Tracker.histories;
  ]

let () =
  Format.printf "== Mechanism comparison across workloads ==@.";
  List.iter
    (fun (wname, ops) ->
      Format.printf "@.workload: %s (%d ops)@." wname (List.length ops);
      let rows = List.map System.to_row (System.run_all trackers ops) in
      Stats.pp_table Format.std_formatter ~header:System.header rows)
    (Workload.all_named ~n_ops:150);
  Format.printf
    "@.Reading guide: stamps and (dynamic) version vectors are always@.\
     'exact'; plausible clocks trade accuracy for constant size; the@.\
     causal-history oracle is exact by definition but its size grows@.\
     with every update ever made.@."
