(* File synchronization among three devices — the PANASYNC scenario the
   paper's authors built version stamps for.

   A document is created on a laptop, carried to a phone, replicated
   onward to a tablet while the laptop is unreachable, edited in two
   places, and reconciled.  Version stamps distinguish the stale copy
   (fast-forwarded silently) from the true conflict (surfaced exactly
   once) — with no server and no device registry anywhere.

   Run with: dune exec examples/file_sync.exe *)

open Vstamp_panasync

let print_reports tag reports =
  Format.printf "@.-- sync %s --@." tag;
  List.iter (fun r -> Format.printf "  %a@." Sync.pp_report r) reports

let show_store s =
  Format.printf "%a" Store.pp s

let () =
  Format.printf "== Offline file synchronization ==@.@.";

  (* Day 1: write a trip plan on the laptop. *)
  let laptop =
    Store.add_new (Store.create ~name:"laptop") ~path:"trip-plan.md"
      ~content:"Day 1: fly to Porto"
  in
  let laptop =
    Store.add_new laptop ~path:"packing.txt" ~content:"boots, jacket"
  in
  show_store laptop;

  (* Sync laptop -> phone over a cable. *)
  let laptop, phone, reports = Sync.session laptop (Store.create ~name:"phone") in
  print_reports "laptop <-> phone" reports;

  (* On the train (laptop unreachable), the phone replicates the files to
     a tablet.  This is the operation version vectors cannot do without a
     unique-id source: here it is a local fork of each stamp. *)
  let phone, tablet, reports = Sync.session phone (Store.create ~name:"tablet") in
  print_reports "phone <-> tablet (laptop offline)" reports;

  (* Concurrent edits while everyone is disconnected. *)
  let tablet =
    Store.edit tablet ~path:"trip-plan.md"
      ~content:"Day 1: fly to Porto\nDay 2: Douro valley"
  in
  let laptop =
    Store.edit laptop ~path:"trip-plan.md"
      ~content:"Day 1: fly to Porto\nDay 2: Guimaraes"
  in
  let laptop = Store.edit laptop ~path:"packing.txt" ~content:"boots, jacket, hat" in

  (* Tablet meets phone again: the phone's copy is merely stale, so the
     tablet's edit fast-forwards without any conflict. *)
  let tablet, phone, reports = Sync.session tablet phone in
  print_reports "tablet <-> phone" reports;
  assert (Sync.conflicts reports = []);

  (* Phone finally meets the laptop: trip-plan.md was edited on both
     branches — exactly one true conflict; packing.txt fast-forwards. *)
  let phone, laptop, reports = Sync.session phone laptop in
  print_reports "phone <-> laptop" reports;
  assert (List.length (Sync.conflicts reports) = 1);

  (* Resolve by merging the two day-2 plans. *)
  let merge ~left ~right =
    if String.length left > String.length right then left ^ "\n" ^ "(also: " ^ right ^ ")"
    else right ^ "\n" ^ "(also: " ^ left ^ ")"
  in
  let phone, laptop, reports =
    Sync.session ~policy:(Sync.Merge merge) phone laptop
  in
  print_reports "phone <-> laptop (merge policy)" reports;
  assert (Sync.converged phone laptop);

  (* One more round so the tablet converges too. *)
  let tablet, phone, _ = Sync.session tablet phone in
  assert (Sync.converged tablet phone);

  Format.printf "@.All three devices converged.@.";
  Format.printf "Tracking overhead per store (bits): laptop=%d phone=%d tablet=%d@."
    (Store.total_tracking_bits laptop)
    (Store.total_tracking_bits phone)
    (Store.total_tracking_bits tablet);
  show_store laptop
