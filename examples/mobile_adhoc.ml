(* Replica creation under partition: the motivating scenario.

   A fleet of field devices splits into two radio clusters.  Devices
   need to spawn new replicas *inside* a cluster that cannot reach the
   identity server.  With version vectors the operation blocks (the
   Id_source model returns `Unavailable`); with version stamps it is a
   local fork.  When the partition heals, everything reconciles and the
   causal relations are exactly right.

   Run with: dune exec examples/mobile_adhoc.exe *)

open Vstamp_core
open Vstamp_vv

let () =
  Format.printf "== Ad-hoc operation under partition ==@.@.";

  (* The identity server lives in cluster 0. *)
  let ids = Id_source.make (Id_source.Partitioned { server_group = 0 }) in

  (* Before the partition: one device exists, with a served id. *)
  let id0, ids = Result.get_ok (Id_source.alloc ~group:0 ids) in
  let vv_base = Version_vector.Replica.create ~id:id0 in
  let stamp_base = Stamp.seed in

  Format.printf "cluster 0 holds the id server; cluster 1 is cut off@.@.";

  (* --- version vectors: replica creation in cluster 1 fails --- *)
  Format.printf "-- version vectors --@.";
  (match Id_source.alloc ~group:1 ids with
  | Ok _ -> assert false
  | Error (`Unavailable, ids') ->
      Format.printf
        "  cluster 1 requests a replica id: UNAVAILABLE (failures so far: %d)@."
        (Id_source.failures ids');
      Format.printf
        "  -> the new field device cannot start tracking updates at all@.");

  (* The workaround the paper rejects: random ids.  They appear to work
     but collide silently; at 8 bits a handful of devices already clash. *)
  let random_ids = Id_source.make (Id_source.Random { bits = 8 }) in
  let rec spawn n src acc =
    if n = 0 then (acc, src)
    else
      match Id_source.alloc ~group:1 src with
      | Ok (id, src) -> spawn (n - 1) src (id :: acc)
      | Error _ -> assert false
  in
  let _, random_ids = spawn 40 random_ids [] in
  Format.printf
    "  probabilistic ids instead? 40 devices at 8 bits: %d silent collisions@.@."
    (Id_source.collisions random_ids);

  (* --- version stamps: forks are local --- *)
  Format.printf "-- version stamps --@.";
  let a, b = Stamp.fork stamp_base in
  let b, c = Stamp.fork b in
  let c, d = Stamp.fork c in
  Format.printf "  cluster 1 spawns three replicas by forking, zero messages:@.";
  List.iter
    (fun (name, s) -> Format.printf "    %-3s %a@." name Stamp.pp s)
    [ ("a", a); ("b", b); ("c", c); ("d", d) ];

  (* Field updates happen in both clusters. *)
  let b = Stamp.update b in
  let d = Stamp.update d in
  let a = Stamp.update a in
  Format.printf "@.  updates at a, b and d while partitioned@.";
  Format.printf "  b vs d: %s@." (Relation.to_string (Stamp.relation b d));
  Format.printf "  c vs b: %s (c is merely stale)@."
    (Relation.to_string (Stamp.relation c b));

  (* Heal: everyone merges back, pairwise. *)
  let bd = Stamp.join b d in
  let bdc = Stamp.join bd c in
  let survivor = Stamp.join a bdc in
  Format.printf "@.  partition heals; replicas merge back@.";
  Format.printf "    survivor: %a (id space healed: %b)@." Stamp.pp survivor
    (Backend.Over_tree.Name.is_bottom (Stamp.id survivor));

  (* Version vectors in the same story needed four served ids before any
     of this could happen. *)
  Format.printf "@.-- bookkeeping comparison --@.";
  Format.printf
    "  vv ids consumed from the server: %d (and the cut-off cluster stayed blocked)@."
    (Id_source.issued_count ids);
  Format.printf "  stamp coordination messages:     0@.";
  ignore vv_base
