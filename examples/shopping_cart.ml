(* The classic shopping cart, Dynamo-style, over version stamps.

   A cart is a multi-value register holding a list of items.  Replicas
   of the cart live on different app servers; writes go to whichever
   replica is reachable; merges keep every concurrent cart version so no
   addition is ever silently dropped, and the application reconciles by
   unioning the candidate carts.

   Run with: dune exec examples/shopping_cart.exe *)

open Vstamp_crdt

let pp_cart ppf items =
  Format.fprintf ppf "{%s}" (String.concat ", " items)

let show label r =
  Format.printf "  %-10s %a@." label
    (Mv_register.pp pp_cart)
    r

let union_carts candidates =
  List.sort_uniq compare (List.concat candidates)

let () =
  Format.printf "== Shopping cart on two app servers ==@.@.";

  (* the cart is created on server A and replicated to server B *)
  let a = Mv_register.create [ "book" ] in
  let a, b = Mv_register.fork a in
  show "server A" a;
  show "server B" b;

  (* the user's phone talks to A, the laptop to B (a network split, a
     load balancer flap — any reason) *)
  let add r item =
    Mv_register.write r (union_carts [ List.concat (Mv_register.read r); [ item ] ])
  in
  let a = add a "coffee" in
  let b = add b "keyboard" in
  Format.printf "@.concurrent additions on both servers@.";
  show "server A" a;
  show "server B" b;

  (* anti-entropy: the servers sync; both candidate carts survive *)
  let a, b = Mv_register.sync a b in
  Format.printf "@.after anti-entropy@.";
  show "server A" a;
  Format.printf "  conflicted: %b (both cart versions preserved)@."
    (Mv_register.is_conflicted a);

  (* next read repairs: the app unions the candidates and writes back *)
  let repaired = union_carts (Mv_register.read a) in
  let a = Mv_register.resolve a ~value:repaired in
  let a, b = Mv_register.sync a b in
  Format.printf "@.read repair (union of candidates)@.";
  show "server A" a;
  show "server B" b;
  assert ((not (Mv_register.is_conflicted a)) && not (Mv_register.is_conflicted b));
  assert (Mv_register.value_exn a = [ "book"; "coffee"; "keyboard" ]);

  (* a removal is just a write that causally follows the repair: no
     amnesia, because it dominates both old versions *)
  let a =
    Mv_register.write a
      (List.filter (fun i -> i <> "book") (Mv_register.value_exn a))
  in
  let a, b = Mv_register.sync a b in
  Format.printf "@.remove 'book' on A, then sync@.";
  show "server A" a;
  show "server B" b;
  assert (Mv_register.value_exn b = [ "coffee"; "keyboard" ]);

  Format.printf
    "@.No identity service was involved: the replica on server B was@.";
  Format.printf "created by forking, and could have been created during the@.";
  Format.printf "network split just as well.@."
