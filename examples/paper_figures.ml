(* Regenerate the paper's four figures as text.

   Run with: dune exec examples/paper_figures.exe *)

open Vstamp_core
open Vstamp_vv
open Vstamp_sim

let rule title =
  Format.printf "@.%s@.%s@." title (String.make (String.length title) '-')

let () =
  Format.printf "Version Stamps (Almeida, Baquero, Fonte; ICDCS 2002)@.";
  Format.printf "The paper's figures, regenerated from the implementation.@.";

  (* ---------------- Figure 1 ---------------- *)
  rule "Figure 1: version vectors among three fixed replicas";
  let f1 = Scenario.Fig1.run () in
  List.iter
    (fun (name, steps) ->
      Format.printf "  %s: " name;
      List.iteri
        (fun k (s : Scenario.Fig1.step) ->
          if k > 0 then Format.printf " -> ";
          Format.printf "%a" Version_vector.pp s.Scenario.Fig1.vector)
        steps;
      Format.printf "@.")
    f1.Scenario.Fig1.timeline;
  List.iter
    (fun (x, y, r) ->
      Format.printf "  %s vs %s: %s@." x y (Relation.to_paper_string r))
    f1.Scenario.Fig1.relations;
  Format.printf "  matches the published values: %b@."
    (Scenario.Fig1.matches_paper f1);

  (* ---------------- Figure 2 ---------------- *)
  rule "Figure 2: fork/join evolution (frontier sizes along the run)";
  Format.printf "  trace: %s@."
    (String.concat "; " (List.map Execution.op_to_string Scenario.Fig4.trace));
  Format.printf "  frontier sizes: %s@."
    (String.concat " -> "
       (List.map string_of_int (Scenario.Frontiers.frontier_sizes ())));

  (* ---------------- Figure 3 ---------------- *)
  rule "Figure 3: the fixed-replica run encoded under fork-and-join";
  let f3 = Scenario.Fig3.run () in
  List.iter
    (fun (name, s) -> Format.printf "  stamp  %s: %a@." name Stamp.pp s)
    f3.Scenario.Fig3.stamps;
  List.iter
    (fun (name, v) -> Format.printf "  vector %s: %a@." name Version_vector.pp v)
    f3.Scenario.Fig3.vectors;
  List.iter2
    (fun (x, y, rs) (_, _, rv) ->
      Format.printf "  %s vs %s: stamps say %s, vectors say %s@." x y
        (Relation.to_paper_string rs)
        (Relation.to_paper_string rv))
    f3.Scenario.Fig3.stamp_relations f3.Scenario.Fig3.vv_relations;
  Format.printf "  encodings agree: %b@." (Scenario.Fig3.encodings_agree f3);

  (* ---------------- Figure 4 ---------------- *)
  rule "Figure 4: the version stamps of the Figure 2 run";
  let f4 = Scenario.Fig4.run () in
  List.iter
    (fun (name, s) -> Format.printf "  %-3s %a@." name Stamp.pp s)
    f4.Scenario.Fig4.named_steps;
  Format.printf "  rewrite chain after the final join: %s@."
    (String.concat " -> "
       (List.map Stamp.to_string f4.Scenario.Fig4.g_reduction_chain));
  List.iter
    (fun (x, y, r) ->
      Format.printf "  frontier query %s vs %s: %s@." x y
        (Relation.to_paper_string r))
    (Scenario.Fig4.frontier_queries f4);
  Format.printf "  matches the published stamps: %b@."
    (Scenario.Fig4.matches_paper f4)
