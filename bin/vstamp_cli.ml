(* vstamp — command-line front end for the version-stamp library.

   Subcommands:
     figures              regenerate the paper's figures
     relate / frontier    classify stamps given in the paper's notation
     update/fork/join/reduce   apply stamp operations
     simulate / gen-trace      run or generate workload traces
     compare              run one trace over several mechanisms
     metrics              run instrumented and expose the metric registry
     bench                diff/check benchmark runs, browse the ledger
     profile              attribute a run's time and allocation per op
     draw                 ASCII lineage diagram of a trace
     encode / decode      wire format round trips *)

open Cmdliner
open Vstamp_core
open Vstamp_sim

let stamp_conv =
  let parse s =
    match Vstamp_codec.Text.stamp_of_string s with
    | Ok stamp -> Ok stamp
    | Error e -> Error (`Msg (Format.asprintf "%a" Vstamp_codec.Text.pp_error e))
  in
  Arg.conv (parse, Stamp.pp)

(* --- figures --- *)

let figures () =
  let f1 = Scenario.Fig1.run () in
  Format.printf "Figure 1 (version vectors): %s@."
    (if Scenario.Fig1.matches_paper f1 then "reproduced" else "MISMATCH");
  List.iter
    (fun (name, v) ->
      Format.printf "  %s final: %a@." name Vstamp_vv.Version_vector.pp v)
    f1.Scenario.Fig1.final;
  let f4 = Scenario.Fig4.run () in
  Format.printf "Figures 2+4 (version stamps): %s@."
    (if Scenario.Fig4.matches_paper f4 then "reproduced" else "MISMATCH");
  List.iter
    (fun (name, s) -> Format.printf "  %-3s %a@." name Stamp.pp s)
    f4.Scenario.Fig4.named_steps;
  Format.printf "  rewrite chain: %s@."
    (String.concat " -> "
       (List.map Stamp.to_string f4.Scenario.Fig4.g_reduction_chain));
  let f3 = Scenario.Fig3.run () in
  Format.printf "Figure 3 (encoding fixed replicas): %s@."
    (if Scenario.Fig3.encodings_agree f3 then "orders agree" else "MISMATCH")

let figures_cmd =
  Cmd.v
    (Cmd.info "figures" ~doc:"Regenerate the paper's figures and check them")
    Term.(const figures $ const ())

(* --- relate --- *)

let relate a b =
  Format.printf "%a vs %a: %s@." Stamp.pp a Stamp.pp b
    (Relation.to_paper_string (Stamp.relation a b))

let relate_cmd =
  let a =
    Arg.(required & pos 0 (some stamp_conv) None & info [] ~docv:"STAMP1")
  in
  let b =
    Arg.(required & pos 1 (some stamp_conv) None & info [] ~docv:"STAMP2")
  in
  Cmd.v
    (Cmd.info "relate"
       ~doc:
         "Classify two coexisting stamps (equivalent / obsolete / \
          inconsistent), e.g. vstamp relate '[1|1]' '[e|0]'")
    Term.(const relate $ a $ b)

(* --- op --- *)

let op_update s = Format.printf "%a@." Stamp.pp (Stamp.update s)

let op_fork s =
  let l, r = Stamp.fork s in
  Format.printf "%a@.%a@." Stamp.pp l Stamp.pp r

let op_join reduce a b =
  Format.printf "%a@." Stamp.pp (Stamp.join ~reduce a b)

let op_reduce s = Format.printf "%a@." Stamp.pp (Stamp.reduce s)

let stamp_pos n docv =
  Arg.(required & pos n (some stamp_conv) None & info [] ~docv)

let update_cmd =
  Cmd.v
    (Cmd.info "update" ~doc:"Apply the update operation to STAMP")
    Term.(const op_update $ stamp_pos 0 "STAMP")

let fork_cmd =
  Cmd.v
    (Cmd.info "fork" ~doc:"Fork STAMP; prints the two resulting stamps")
    Term.(const op_fork $ stamp_pos 0 "STAMP")

let join_cmd =
  let no_reduce =
    Arg.(value & flag & info [ "no-reduce" ] ~doc:"Skip Section 6 reduction")
  in
  Cmd.v
    (Cmd.info "join" ~doc:"Join two stamps")
    Term.(const (fun nr a b -> op_join (not nr) a b) $ no_reduce
          $ stamp_pos 0 "STAMP1" $ stamp_pos 1 "STAMP2")

let reduce_cmd =
  Cmd.v
    (Cmd.info "reduce" ~doc:"Rewrite STAMP to its Section 6 normal form")
    Term.(const op_reduce $ stamp_pos 0 "STAMP")

(* --- simulate --- *)

(* The stamp trackers come from the backend registry (one per
   registered name backend); only the baselines are spelled out. *)
let tracker_names () =
  List.map Tracker.name (Tracker.of_registry ())
  @ [ "stamps-noreduce"; "vv"; "dvv"; "oracle"; "plausible-<slots>" ]

let tracker_of_name = function
  | "stamps-noreduce" -> Ok Tracker.stamps_nonreducing
  | "vv" -> Ok Tracker.version_vectors
  | "dvv" -> Ok Tracker.dynamic_vv
  | "oracle" -> Ok Tracker.histories
  | s when String.length s > 10 && String.sub s 0 10 = "plausible-" -> (
      match int_of_string_opt (String.sub s 10 (String.length s - 10)) with
      | Some k when k > 0 -> Ok (Tracker.plausible k)
      | _ -> Error (`Msg "plausible-<slots> needs a positive slot count"))
  | s -> (
      match
        List.find_opt
          (fun t -> String.equal (Tracker.name t) s)
          (Tracker.of_registry ())
      with
      | Some t -> Ok t
      | None ->
          Error
            (`Msg
               (Printf.sprintf "unknown tracker %S (known: %s)" s
                  (String.concat ", " (tracker_names ())))))

(* --backend KEY is shorthand for the stamp tracker over that name
   backend; the valid set is whatever the registry holds. *)
let tracker_for_backend key =
  match Backend.find key with
  | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown backend %S (valid: %s)" key
              (String.concat ", " (Backend.keys ()))))
  | Some _ -> tracker_of_name (Tracker.stamp_tracker_name key)

let backend_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:
          (Printf.sprintf
             "Name backend for the stamp tracker: %s.  Shorthand for \
              --tracker stamps[-BACKEND]; overrides --tracker."
             (String.concat ", " (Backend.keys ()))))

let tracker_conv =
  Arg.conv
    ( tracker_of_name,
      fun ppf t -> Format.pp_print_string ppf (Tracker.name t) )

let workload_of_name ~seed ~n_ops = function
  | "uniform" -> Ok (Workload.uniform ~seed ~n_ops ())
  | "deep-fork" -> Ok (Workload.deep_fork ~depth:(max 1 (n_ops / 2)) ())
  | "sync-star" ->
      Ok (Workload.sync_star ~peers:8 ~rounds:(max 1 (n_ops / 32)) ())
  | "gossip" ->
      Ok (Workload.gossip ~seed ~replicas:8 ~rounds:(max 1 (n_ops / 10)) ())
  | "churn" -> Ok (Workload.churn ~seed ~target:8 ~n_ops ())
  | "partitioned" ->
      Ok
        (Workload.partitioned ~seed ~replicas:8 ~groups:2 ~phases:4
           ~syncs_per_phase:(max 1 (n_ops / 40)) ())
  | s -> Error (`Msg (Printf.sprintf "unknown workload %S" s))

let load_ops ~workload ~seed ~n_ops = function
  | Some file -> (
      match Trace.load ~file with
      | Ok ops -> Ok ops
      | Error e -> Error (`Msg (Format.asprintf "%s: %a" file Trace.pp_error e)))
  | None -> workload_of_name ~seed ~n_ops workload

let with_metrics_sink metrics_out f =
  match metrics_out with
  | None -> f None
  | Some file ->
      let sink = Vstamp_obs.Sink.to_file file in
      Fun.protect
        ~finally:(fun () ->
          Vstamp_obs.Sink.close sink;
          Format.printf "wrote %d events to %s@."
            (Vstamp_obs.Sink.emitted sink) file)
        (fun () -> f (Some sink))

(* --sample-every / --sample-prob thin the invariant monitor; the
   probability draws come from the simulation RNG seeded with the
   workload seed, so a sampled run is as reproducible as the plain
   one. *)
let sampling_of sample_every sample_prob =
  match (sample_every, sample_prob) with
  | None, None -> Ok Vstamp_obs.Monitor.Always
  | Some n, None ->
      if n > 0 then Ok (Vstamp_obs.Monitor.Every_n n)
      else Error (`Msg "--sample-every needs a positive period")
  | None, Some p ->
      if p >= 0.0 && p <= 1.0 then Ok (Vstamp_obs.Monitor.Probability p)
      else Error (`Msg "--sample-prob needs a probability in [0, 1]")
  | Some _, Some _ ->
      Error (`Msg "--sample-every and --sample-prob are mutually exclusive")

let simulate tracker backend workload seed n_ops no_oracle trace_file
    metrics_out check_invariants sample_every sample_prob violation_out =
  let tracker_or_err =
    match backend with None -> Ok tracker | Some key -> tracker_for_backend key
  in
  let ops_or_err = load_ops ~workload ~seed ~n_ops trace_file in
  match (tracker_or_err, ops_or_err, sampling_of sample_every sample_prob) with
  | Error (`Msg m), _, _ | _, Error (`Msg m), _ | _, _, Error (`Msg m) ->
      Format.eprintf "error: %s@." m;
      exit 1
  | Ok tracker, Ok ops, Ok sampling ->
      with_metrics_sink metrics_out (fun sink ->
          try
            let registry = Vstamp_obs.Registry.create () in
            let r =
              System.run ~with_oracle:(not no_oracle) ~registry ?sink
                ~check_invariants ~sampling ~sample_seed:seed ?violation_out
                tracker ops
            in
            Format.printf "%a@." System.pp_result r;
            if check_invariants && sampling <> Vstamp_obs.Monitor.Always then begin
              let gauge name =
                match
                  Vstamp_obs.Registry.find registry
                    (Printf.sprintf "%s{monitor=%S}" name (Tracker.name tracker))
                with
                | Some (Vstamp_obs.Registry.Gauge g) -> Vstamp_obs.Metric.value g
                | _ -> nan
              in
              Format.printf
                "monitor sampling: %.1f%% of steps checked, %.1f%% of run \
                 time in checks@."
                (100.0 *. gauge "vstamp_monitor_coverage")
                (100.0 *. gauge "vstamp_monitor_time_fraction")
            end
          with System.Invariant_violation _ as e ->
            Format.eprintf "error: %s@." (Printexc.to_string e);
            exit 2)

let simulate_cmd =
  let tracker =
    Arg.(
      value
      & opt tracker_conv Tracker.stamps
      & info [ "t"; "tracker" ] ~docv:"TRACKER"
          ~doc:("Mechanism: " ^ String.concat ", " (tracker_names ())))
  in
  let workload =
    Arg.(
      value & opt string "uniform"
      & info [ "w"; "workload" ] ~docv:"WORKLOAD"
          ~doc:
            "Workload: uniform, deep-fork, sync-star, gossip, churn, \
             partitioned")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"RNG seed")
  in
  let n_ops =
    Arg.(
      value & opt int 400
      & info [ "n"; "ops" ] ~docv:"N" ~doc:"Approximate operation count")
  in
  let no_oracle =
    Arg.(
      value & flag
      & info [ "no-oracle" ] ~doc:"Skip the causal-history accuracy check")
  in
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Replay a trace file instead of generating a workload")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write a JSONL telemetry stream (sim.start / sim.step / \
             sim.result events, logical-step timestamps) to FILE")
  in
  let check_invariants =
    Arg.(
      value & flag
      & info [ "check-invariants" ]
          ~doc:
            "Evaluate the mechanism's invariants (I1-I3 for stamps) after \
             every step; fail loudly with a minimal witness on violation")
  in
  let sample_every =
    Arg.(
      value
      & opt (some int) None
      & info [ "sample-every" ] ~docv:"N"
          ~doc:
            "With --check-invariants: check only one step in N (plus the \
             final frontier, always)")
  in
  let sample_prob =
    Arg.(
      value
      & opt (some float) None
      & info [ "sample-prob" ] ~docv:"P"
          ~doc:
            "With --check-invariants: check each step with probability P, \
             drawn from the deterministic simulation RNG")
  in
  let violation_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "violation-out" ] ~docv:"FILE"
          ~doc:
            "With --check-invariants: save the minimal failing op prefix to \
             FILE as a replayable trace")
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Run a workload over a tracking mechanism and report size/accuracy")
    Term.(
      const simulate $ tracker $ backend_arg $ workload $ seed $ n_ops
      $ no_oracle $ trace_file $ metrics_out $ check_invariants $ sample_every
      $ sample_prob $ violation_out)

(* --- compare --- *)

let compare_cmd =
  let default_trackers =
    [ Tracker.stamps; Tracker.stamps_list; Tracker.version_vectors; Tracker.dynamic_vv ]
  in
  let trackers =
    Arg.(
      value
      & opt (list tracker_conv) default_trackers
      & info [ "t"; "trackers" ] ~docv:"TRACKERS"
          ~doc:"Comma-separated mechanisms to compare")
  in
  let workload =
    Arg.(
      value & opt string "uniform"
      & info [ "w"; "workload" ] ~docv:"WORKLOAD" ~doc:"Workload family")
  in
  let seed = Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED") in
  let n_ops = Arg.(value & opt int 400 & info [ "n"; "ops" ] ~docv:"N") in
  let no_oracle =
    Arg.(
      value & flag
      & info [ "no-oracle" ] ~doc:"Skip the causal-history accuracy check")
  in
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE" ~doc:"Replay a trace file")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"Write the JSONL telemetry of every run to FILE")
  in
  let compare trackers workload seed n_ops no_oracle trace_file metrics_out =
    match load_ops ~workload ~seed ~n_ops trace_file with
    | Error (`Msg m) ->
        Format.eprintf "error: %s@." m;
        exit 1
    | Ok ops ->
        with_metrics_sink metrics_out (fun sink ->
            let rs =
              System.run_all ~with_oracle:(not no_oracle) ?sink trackers ops
            in
            Stats.pp_table Format.std_formatter ~header:System.header
              (List.map System.to_row rs))
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Run one trace over several mechanisms and tabulate the results")
    Term.(
      const compare $ trackers $ workload $ seed $ n_ops $ no_oracle
      $ trace_file $ metrics_out)

(* --- metrics --- *)

let metrics tracker workload seed n_ops format =
  match workload_of_name ~seed ~n_ops workload with
  | Error (`Msg m) ->
      Format.eprintf "error: %s@." m;
      exit 1
  | Ok ops ->
      let registry = Vstamp_obs.Registry.create () in
      (* final stamp frontier computed before instrumentation starts, so
         the replay does not double the core op counters *)
      let final_stamps = Execution.Run_stamps.run ops in
      Vstamp_core.Instr.reset ();
      Telemetry.attach ~registry ();
      Fun.protect ~finally:Telemetry.detach (fun () ->
          let (_ : System.result) =
            System.run ~with_oracle:false ~registry
              (Tracker.with_metrics ~registry tracker)
              ops
          in
          (* exercise the wire codec on the final stamp frontier so the
             encoded/decoded byte counters mean something *)
          List.iter
            (fun s ->
              let bytes = Vstamp_codec.Wire.stamp_to_string s in
              ignore (Vstamp_codec.Wire.stamp_of_string bytes))
            final_stamps);
      Telemetry.sync_counters registry;
      (match format with
      | `Prom -> print_string (Vstamp_obs.Registry.to_prometheus registry)
      | `Json ->
          print_endline
            (Vstamp_obs.Jsonx.to_string (Vstamp_obs.Registry.to_json registry))
      | `Table -> Vstamp_obs.Registry.pp_table Format.std_formatter registry)

let metrics_cmd =
  let tracker =
    Arg.(
      value
      & opt tracker_conv Tracker.stamps
      & info [ "t"; "tracker" ] ~docv:"TRACKER" ~doc:"Mechanism to instrument")
  in
  let workload =
    Arg.(
      value & opt string "uniform"
      & info [ "w"; "workload" ] ~docv:"WORKLOAD" ~doc:"Workload family")
  in
  let seed = Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED") in
  let n_ops = Arg.(value & opt int 400 & info [ "n"; "ops" ] ~docv:"N") in
  let format =
    Arg.(
      value
      & opt (enum [ ("table", `Table); ("prom", `Prom); ("json", `Json) ]) `Table
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:"Output format: table, prom (Prometheus text), or json")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run a workload with full instrumentation (core op counters, \
          reduction stats, wire bytes, op latencies) and print the metric \
          registry")
    Term.(const metrics $ tracker $ workload $ seed $ n_ops $ format)

(* --- gen-trace --- *)

let gen_trace workload seed n_ops output =
  match workload_of_name ~seed ~n_ops workload with
  | Error (`Msg m) ->
      Format.eprintf "error: %s@." m;
      exit 1
  | Ok ops -> (
      match output with
      | Some file ->
          Trace.save ~file ops;
          let u, f, j = Trace.stats ops in
          Format.printf "wrote %d ops (u=%d f=%d j=%d) to %s@."
            (List.length ops) u f j file
      | None -> Format.printf "%s@." (Trace.to_string ops))

let gen_trace_cmd =
  let workload =
    Arg.(
      value & opt string "uniform"
      & info [ "w"; "workload" ] ~docv:"WORKLOAD" ~doc:"Workload family")
  in
  let seed = Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED") in
  let n_ops = Arg.(value & opt int 400 & info [ "n"; "ops" ] ~docv:"N") in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to FILE instead of stdout")
  in
  Cmd.v
    (Cmd.info "gen-trace" ~doc:"Generate a workload trace for later replay")
    Term.(const gen_trace $ workload $ seed $ n_ops $ output)

(* --- frontier --- *)

let frontier stamps =
  let f = Frontier.of_list stamps in
  if not (Vstamp_core.Invariants.i2 stamps) then
    Format.printf
      "warning: these stamps do not form a valid frontier (I2 fails);@ answers below describe name order only@.";
  List.iteri
    (fun i s ->
      let status =
        if List.memq s (Frontier.obsolete f) then "obsolete"
        else if List.exists (fun (a, b) -> a == s || b == s) (Frontier.conflicts f)
        then "in conflict"
        else "dominant"
      in
      Format.printf "%d: %a  %s@." i Stamp.pp s status)
    stamps;
  Format.printf "conflict pairs: %d; all equivalent: %b@."
    (List.length (Frontier.conflicts f))
    (Frontier.all_equivalent f)

let frontier_cmd =
  let stamps =
    Arg.(non_empty & pos_all stamp_conv [] & info [] ~docv:"STAMP...")
  in
  Cmd.v
    (Cmd.info "frontier"
       ~doc:"Classify a whole frontier of stamps: dominant / obsolete / conflicts")
    Term.(const frontier $ stamps)

(* --- draw --- *)

let draw trace_file with_stamps =
  match Trace.load ~file:trace_file with
  | Error e ->
      Format.eprintf "error: %s: %a@." trace_file Trace.pp_error e;
      exit 1
  | Ok ops ->
      Format.printf "%s@." (Viz.header ops);
      Format.printf "%s" (Viz.draw ~with_stamps ops)

let draw_cmd =
  let trace_file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE_FILE")
  in
  let with_stamps =
    Arg.(
      value & flag
      & info [ "stamps" ] ~doc:"Label surviving lineages with their stamps")
  in
  Cmd.v
    (Cmd.info "draw" ~doc:"Render a trace file as an ASCII lineage diagram")
    Term.(const draw $ trace_file $ with_stamps)

(* --- encode / decode --- *)

let to_hex s =
  String.concat "" (List.init (String.length s) (fun i -> Printf.sprintf "%02x" (Char.code s.[i])))

let of_hex s =
  if String.length s mod 2 <> 0 then Error (`Msg "odd-length hex string")
  else
    try
      Ok
        (String.init (String.length s / 2) (fun i ->
             Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2))))
    with _ -> Error (`Msg "invalid hex string")

let encode s =
  let bytes = Vstamp_codec.Wire.stamp_to_string s in
  Format.printf "%s (%d bits)@." (to_hex bytes) (Vstamp_codec.Wire.stamp_bits s)

let encode_cmd =
  Cmd.v
    (Cmd.info "encode" ~doc:"Wire-encode STAMP as hex")
    Term.(const encode $ stamp_pos 0 "STAMP")

let decode hex =
  match of_hex hex with
  | Error (`Msg m) ->
      Format.eprintf "error: %s@." m;
      exit 1
  | Ok bytes -> (
      match Vstamp_codec.Wire.stamp_of_string bytes with
      | Ok s -> Format.printf "%a@." Stamp.pp s
      | Error e ->
          Format.eprintf "error: %a@." Vstamp_codec.Wire.pp_error e;
          exit 1)

let decode_cmd =
  let hex = Arg.(required & pos 0 (some string) None & info [] ~docv:"HEX") in
  Cmd.v
    (Cmd.info "decode" ~doc:"Decode a hex wire encoding into a stamp")
    Term.(const decode $ hex)

(* --- trace: causal-trace forensics --- *)

module CT = Vstamp_obs.Causal_trace

let die fmt = Format.kasprintf (fun m -> Format.eprintf "error: %s@." m; exit 1) fmt

let read_file file =
  try
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Ok (really_input_string ic (in_channel_length ic)))
  with Sys_error m -> Error (`Msg m)

(* Data goes to [output] verbatim (byte-identity matters for replay), or
   to stdout when no file is given; progress chatter only ever goes to
   stdout when the data went to a file. *)
let write_data output data =
  match output with
  | None -> print_string data
  | Some file ->
      let oc = open_out_bin file in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc data)

let load_causal file =
  match read_file file with
  | Error (`Msg m) -> Error (`Msg (Printf.sprintf "%s: %s" file m))
  | Ok s -> (
      match CT.of_jsonl s with
      | Ok tr -> Ok tr
      | Error m -> Error (`Msg (Printf.sprintf "%s: %s" file m)))

let trace_record tracker workload seed n_ops trace_file check_invariants
    violation_out ops_out output =
  match load_ops ~workload ~seed ~n_ops trace_file with
  | Error (`Msg m) -> die "%s" m
  | Ok ops -> (
      try
        let tr, (_ : System.result) =
          Forensics.record ~check_invariants ?violation_out tracker ops
        in
        (match ops_out with
        | Some file -> Trace.save ~file ops
        | None -> ());
        write_data output (CT.to_jsonl tr);
        match output with
        | Some file ->
            Format.printf "recorded %d ops as %d nodes to %s@."
              (List.length ops) (CT.length tr) file
        | None -> ()
      with System.Invariant_violation _ as e ->
        Format.eprintf "error: %s@." (Printexc.to_string e);
        exit 2)

let trace_record_cmd =
  let tracker =
    Arg.(
      value
      & opt tracker_conv Tracker.stamps
      & info [ "t"; "tracker" ] ~docv:"TRACKER" ~doc:"Mechanism to record")
  in
  let workload =
    Arg.(
      value & opt string "uniform"
      & info [ "w"; "workload" ] ~docv:"WORKLOAD" ~doc:"Workload family")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"RNG seed")
  in
  let n_ops =
    Arg.(
      value & opt int 400
      & info [ "n"; "ops" ] ~docv:"N" ~doc:"Approximate operation count")
  in
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Record a trace file instead of generating a workload")
  in
  let check_invariants =
    Arg.(
      value & flag
      & info [ "check-invariants" ]
          ~doc:"Monitor the mechanism's invariants while recording")
  in
  let violation_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "violation-out" ] ~docv:"FILE"
          ~doc:"Save the minimal failing op prefix to FILE on violation")
  in
  let ops_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "ops-out" ] ~docv:"FILE"
          ~doc:"Also save the op sequence as a replayable trace file")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the causal-trace JSONL to FILE instead of stdout")
  in
  Cmd.v
    (Cmd.info "record"
       ~doc:
         "Run a workload and record its causal event DAG (one JSONL node \
          event per replica state, deterministic logical-step timestamps)")
    Term.(
      const trace_record $ tracker $ workload $ seed $ n_ops $ trace_file
      $ check_invariants $ violation_out $ ops_out $ output)

let trace_replay tracker file output =
  match load_causal file with
  | Error (`Msg m) -> die "%s" m
  | Ok tr -> (
      match Forensics.replay ~check_invariants:true tracker tr with
      | Error m -> die "%s: %s" file m
      | Ok r ->
          (match output with
          | Some _ ->
              write_data output (CT.to_jsonl r.Forensics.replayed)
          | None -> ());
          let u, f, j = Trace.stats r.Forensics.ops in
          if r.Forensics.identical then
            Format.printf
              "replay OK: %d ops (u=%d f=%d j=%d) over %s, %d nodes, \
               byte-identical event stream@."
              (List.length r.Forensics.ops)
              u f j (Tracker.name tracker)
              (CT.length r.Forensics.replayed)
          else begin
            Format.printf
              "replay MISMATCH: reconstructed %d ops (u=%d f=%d j=%d) over \
               %s but the re-recorded stream differs@."
              (List.length r.Forensics.ops)
              u f j (Tracker.name tracker);
            exit 1
          end)

let trace_replay_cmd =
  let file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE_JSONL")
  in
  let tracker =
    Arg.(
      value
      & opt tracker_conv Tracker.stamps
      & info [ "t"; "tracker" ] ~docv:"TRACKER"
          ~doc:"Mechanism to replay over (must match the recording)")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the re-recorded JSONL to FILE")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Reconstruct the op sequence from a recorded causal trace, re-run \
          it with invariant monitors on, and verify the event stream is \
          byte-identical (exit 1 if not)")
    Term.(const trace_replay $ tracker $ file $ output)

let trace_explain file sel_a sel_b =
  match load_causal file with
  | Error (`Msg m) -> die "%s" m
  | Ok tr -> (
      match Forensics.explain tr sel_a sel_b with
      | Error m -> die "%s" m
      | Ok e -> (
          Format.printf "%a@." Forensics.pp_explanation e;
          (* When both labels parse as stamps, confirm Proposition 5.1:
             the stamp order must coincide with the causal-history
             relation the DAG walk just derived. *)
          match
            ( Vstamp_codec.Text.stamp_of_string e.Forensics.a.CT.label,
              Vstamp_codec.Text.stamp_of_string e.Forensics.b.CT.label )
          with
          | Ok sa, Ok sb ->
              let stamp_rel = Stamp.relation sa sb in
              Format.printf "stamp order: A is %s relative to B (%s)@."
                (Relation.to_paper_string stamp_rel)
                (if Relation.equal stamp_rel e.Forensics.relation then
                   "agrees with the causal history, as Prop. 5.1 promises"
                 else "DISAGREES with the causal history")
          | _ -> ()))

let trace_explain_cmd =
  let file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE_JSONL")
  in
  let sel_a =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"A")
  in
  let sel_b =
    Arg.(required & pos 2 (some string) None & info [] ~docv:"B")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Explain how two recorded states relate: the update events one has \
          and the other lacks, where their lineages diverged, and the joins \
          that folded knowledge.  Select states by node id (#7) or by stamp \
          label ('[1|01+1]')")
    Term.(const trace_explain $ file $ sel_a $ sel_b)

let trace_export file format output =
  match load_causal file with
  | Error (`Msg m) -> die "%s" m
  | Ok tr ->
      let data =
        match format with
        | `Dot -> CT.to_dot tr
        | `Chrome -> Vstamp_obs.Jsonx.to_string (CT.to_chrome tr) ^ "\n"
        | `Jsonl -> CT.to_jsonl tr
      in
      write_data output data;
      (match output with
      | Some f -> Format.printf "wrote %d nodes to %s@." (CT.length tr) f
      | None -> ())

let trace_export_cmd =
  let file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE_JSONL")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("dot", `Dot); ("chrome", `Chrome); ("jsonl", `Jsonl) ]) `Dot
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:
            "Output format: dot (Graphviz), chrome (trace-event JSON, loads \
             in Perfetto / chrome://tracing), or jsonl (canonical form)")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to FILE instead of stdout")
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Convert a recorded causal trace to DOT, Chrome trace JSON or JSONL")
    Term.(const trace_export $ file $ format $ output)

let trace_cmd =
  Cmd.group
    (Cmd.info "trace"
       ~doc:
         "Causal-trace forensics: record a run's event DAG, replay it \
          byte-identically, explain the relation between two states, export \
          for Graphviz or Perfetto")
    [ trace_record_cmd; trace_replay_cmd; trace_explain_cmd; trace_export_cmd ]

(* --- bench: benchmark ledger and regression gate --- *)

module BS = Vstamp_obs.Bench_store

let load_run file =
  match BS.load ~file with Error m -> die "%s" m | Ok run -> run

let pp_run_id ppf run =
  match BS.git_rev run with
  | Some rev ->
      Format.fprintf ppf "%s (%s)"
        (String.sub rev 0 (min 12 (String.length rev)))
        (BS.schema run)
  | None -> Format.pp_print_string ppf (BS.schema run)

let bench_diff ignore_config limit old_file new_file =
  let baseline = load_run old_file and current = load_run new_file in
  match BS.compare_runs ~ignore_config ~baseline current with
  | Error m -> die "%s" m
  | Ok deltas ->
      Format.printf "baseline: %s %a@.current:  %s %a@.@." old_file pp_run_id
        baseline new_file pp_run_id current;
      BS.pp_delta_table ~limit Format.std_formatter deltas;
      let n = List.length deltas in
      let worse = List.length (BS.regressions ~tolerance:0.0 deltas) in
      let better = List.length (BS.improvements ~tolerance:0.0 deltas) in
      Format.printf "@.%d comparable metrics: %d worse, %d better, %d equal@."
        n worse better (n - worse - better)

let bench_diff_cmd =
  let old_file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OLD_JSON")
  in
  let new_file =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"NEW_JSON")
  in
  let ignore_config =
    Arg.(
      value & flag
      & info [ "ignore-config" ]
          ~doc:
            "Compare runs even when their config blocks (iteration budgets, \
             workload scales) differ")
  in
  let limit =
    Arg.(
      value & opt int 20
      & info [ "limit" ] ~docv:"N" ~doc:"Table rows to show (worst first)")
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two benchmark runs metric by metric (op latencies, sizes, \
          reduction efficacy, monitor overheads), worst regression first")
    Term.(const bench_diff $ ignore_config $ limit $ old_file $ new_file)

let bench_check baseline_file current_file tolerance ignore_config limit =
  let baseline = load_run baseline_file and current = load_run current_file in
  match BS.compare_runs ~ignore_config ~baseline current with
  | Error m -> die "%s" m
  | Ok deltas -> (
      let regs = BS.regressions ~tolerance deltas in
      let imps = BS.improvements ~tolerance deltas in
      Format.printf
        "checked %d metrics of %s %a against baseline %s %a (tolerance \
         %.1f%%)@."
        (List.length deltas) current_file pp_run_id current baseline_file
        pp_run_id baseline tolerance;
      match regs with
      | [] ->
          Format.printf "OK: no regressions beyond %.1f%%; %d improvements@."
            tolerance (List.length imps)
      | _ ->
          Format.printf "@.REGRESSIONS (worse by more than %.1f%%):@.@."
            tolerance;
          BS.pp_delta_table ~limit Format.std_formatter regs;
          exit 1)

let bench_check_cmd =
  let baseline_file =
    Arg.(
      required
      & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE" ~doc:"Baseline benchmark JSON")
  in
  let current_file =
    Arg.(
      value
      & pos 0 string "BENCH_core.json"
      & info [] ~docv:"CURRENT_JSON"
          ~doc:"Run to gate (default BENCH_core.json)")
  in
  let tolerance =
    Arg.(
      value & opt float 10.0
      & info [ "tolerance" ] ~docv:"PCT"
          ~doc:"Allowed regression per metric, in percent")
  in
  let ignore_config =
    Arg.(
      value & flag
      & info [ "ignore-config" ]
          ~doc:"Compare runs even when their config blocks differ")
  in
  let limit =
    Arg.(
      value & opt int 20
      & info [ "limit" ] ~docv:"N" ~doc:"Regression rows to show")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Regression gate: exit non-zero when any metric of the current run \
          is worse than the baseline by more than the tolerance")
    Term.(
      const bench_check $ baseline_file $ current_file $ tolerance
      $ ignore_config $ limit)

let bench_history file limit =
  match BS.history ~file with
  | Error m -> die "%s" m
  | Ok entries ->
      let entries =
        let n = List.length entries in
        if limit > 0 && n > limit then
          List.filteri (fun i _ -> i >= n - limit) entries
        else entries
      in
      let rows =
        List.mapi
          (fun i j ->
            let str path =
              match Vstamp_obs.Jsonx.member path j with
              | Some (Vstamp_obs.Jsonx.String s) -> s
              | _ -> "-"
            in
            let recorded =
              match Vstamp_obs.Jsonx.member "wall_clock" j with
              | Some wc -> (
                  match
                    Option.bind
                      (Vstamp_obs.Jsonx.member "recorded_unix_s" wc)
                      Vstamp_obs.Jsonx.to_float
                  with
                  | Some s ->
                      let tm = Unix.localtime s in
                      Printf.sprintf "%04d-%02d-%02d %02d:%02d"
                        (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
                        tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
                  | None -> "-")
              | None -> "-"
            in
            let metrics =
              match BS.of_json j with
              | Ok run -> string_of_int (List.length (BS.metrics run))
              | Error _ -> "-"
            in
            let rev = str "git_rev" in
            [
              string_of_int i;
              str "schema";
              String.sub rev 0 (min 12 (String.length rev));
              recorded;
              metrics;
            ])
          entries
      in
      Stats.pp_table Format.std_formatter
        ~header:[ "#"; "schema"; "git_rev"; "recorded"; "metrics" ]
        rows

let bench_history_cmd =
  let file =
    Arg.(
      value
      & pos 0 string "BENCH_history.jsonl"
      & info [] ~docv:"LEDGER"
          ~doc:"Benchmark ledger (default BENCH_history.jsonl)")
  in
  let limit =
    Arg.(
      value & opt int 0
      & info [ "limit" ] ~docv:"N"
          ~doc:"Show only the newest N entries (0: all)")
  in
  Cmd.v
    (Cmd.info "history"
       ~doc:"List the runs accumulated in a benchmark ledger, oldest first")
    Term.(const bench_history $ file $ limit)

let bench_cmd =
  Cmd.group
    (Cmd.info "bench"
       ~doc:
         "Benchmark regression tooling over BENCH_core.json runs: diff two \
          runs, gate against a baseline, browse the ledger")
    [ bench_diff_cmd; bench_check_cmd; bench_history_cmd ]

(* --- profile --- *)

let profile tracker workload seed n_ops no_oracle trace_file check_invariants
    out weight top_n by =
  match load_ops ~workload ~seed ~n_ops trace_file with
  | Error (`Msg m) -> die "%s" m
  | Ok ops ->
      let p = Vstamp_obs.Profile.create () in
      (try
         ignore
           (System.run ~with_oracle:(not no_oracle) ~check_invariants
              ~profile:p tracker ops
             : System.result)
       with System.Invariant_violation _ as e ->
         Format.eprintf "error: %s@." (Printexc.to_string e);
         exit 2);
      Vstamp_obs.Profile.pp_top ~by ~n:top_n Format.std_formatter p;
      Format.printf "attributed total: %.3f ms over %d stacks@."
        (Int64.to_float (Vstamp_obs.Profile.total_ns p) /. 1e6)
        (List.length (Vstamp_obs.Profile.rows p));
      match out with
      | None -> ()
      | Some file ->
          write_data (Some file) (Vstamp_obs.Profile.to_folded ~weight p);
          Format.printf
            "wrote collapsed stacks to %s (flamegraph.pl %s > prof.svg)@." file
            file

let profile_cmd =
  let tracker =
    Arg.(
      value
      & opt tracker_conv Tracker.stamps
      & info [ "t"; "tracker" ] ~docv:"TRACKER" ~doc:"Mechanism to profile")
  in
  let workload =
    Arg.(
      value & opt string "uniform"
      & info [ "w"; "workload" ] ~docv:"WORKLOAD" ~doc:"Workload family")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"RNG seed")
  in
  let n_ops =
    Arg.(
      value & opt int 400
      & info [ "n"; "ops" ] ~docv:"N" ~doc:"Approximate operation count")
  in
  let no_oracle =
    Arg.(
      value & flag
      & info [ "no-oracle" ]
          ~doc:"Skip (and so leave unprofiled) the causal-history oracle")
  in
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Profile a trace file instead of a generated workload")
  in
  let check_invariants =
    Arg.(
      value & flag
      & info [ "check-invariants" ]
          ~doc:"Also run (and attribute) the invariant monitors")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:
            "Write collapsed-stack output (one 'frame;frame weight' line \
             per stack, flamegraph.pl input) to FILE")
  in
  let weight =
    Arg.(
      value
      & opt (enum [ ("ns", `Ns); ("alloc", `Alloc) ]) `Ns
      & info [ "weight" ] ~docv:"WEIGHT"
          ~doc:"Folded-stack weight: ns (time) or alloc (bytes)")
  in
  let top_n =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"N" ~doc:"Rows in the hot-op table")
  in
  let by =
    Arg.(
      value
      & opt (enum [ ("ns", `Ns); ("alloc", `Alloc); ("count", `Count) ]) `Ns
      & info [ "by" ] ~docv:"KEY" ~doc:"Hot-op table order: ns, alloc, count")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run a workload under the op-level profiler and report where the \
          time and allocation went, per tracker operation (update / fork / \
          join / monitor / record / oracle)")
    Term.(
      const profile $ tracker $ workload $ seed $ n_ops $ no_oracle
      $ trace_file $ check_invariants $ out $ weight $ top_n $ by)

(* --- soak / top / scrape: the live telemetry plane --- *)

module HE = Vstamp_obs.Http_export
module Obs_registry = Vstamp_obs.Registry
module Obs_sink = Vstamp_obs.Sink
module Obs_event = Vstamp_obs.Event
module Jx = Vstamp_obs.Jsonx
module Tr = Vstamp_obs.Trace_ctx
module Tmerge = Vstamp_obs.Trace_merge

(* Stamp comparison over text labels, for the merge layer (which lives
   below the stamp mechanism and sees only strings).  Memoized: a
   cluster merge compares every label pair within a scope. *)
let stamp_label_leq : Tmerge.leq =
  let cache : (string, Stamp.t option) Hashtbl.t = Hashtbl.create 64 in
  let parse label =
    match Hashtbl.find_opt cache label with
    | Some v -> v
    | None ->
        let v =
          match Vstamp_codec.Text.stamp_of_string label with
          | Ok s -> Some s
          | Error _ -> None
        in
        Hashtbl.add cache label v;
        v
  in
  fun a b ->
    match (parse a, parse b) with
    | Some sa, Some sb -> Some (Stamp.leq sa sb)
    | _ -> None

(* One continuous key-value phase: three server replicas take causal
   puts/gets/deletes and anti-entropy rounds, all counted by
   Kv_node.Obs into the live registry. *)
let soak_kv_phase rng ~ops_n =
  let open Vstamp_kvs in
  let keys = [| "alpha"; "beta"; "gamma"; "delta"; "epsilon"; "zeta" |] in
  let nodes = Array.init 3 (fun i -> Kv_node.create ~id:i) in
  let rec go rng k =
    if k = 0 then rng
    else
      let op, rng =
        Rng.pick_weighted rng
          [ (5, `Put); (4, `Get); (1, `Delete); (2, `Sync) ]
      in
      let ni, rng = Rng.int rng (Array.length nodes) in
      let ki, rng = Rng.int rng (Array.length keys) in
      let key = keys.(ki) in
      (match op with
      | `Put ->
          let _, context = Kv_node.get nodes.(ni) key in
          nodes.(ni) <-
            Kv_node.put nodes.(ni) ~key ~context (Printf.sprintf "v%d" k)
      | `Get -> ignore (Kv_node.get nodes.(ni) key)
      | `Delete ->
          let _, context = Kv_node.get nodes.(ni) key in
          nodes.(ni) <- Kv_node.delete nodes.(ni) ~key ~context
      | `Sync ->
          let nj = (ni + 1) mod Array.length nodes in
          let a, b = Kv_node.anti_entropy nodes.(ni) nodes.(nj) in
          nodes.(ni) <- a;
          nodes.(nj) <- b);
      go rng (k - 1)
  in
  go rng ops_n

(* One continuous file-sync phase: two devices share some files,
   create others independently (colliding paths surface as conflicts),
   edit concurrently, and reconcile — counted by Sync.Obs. *)
let soak_sync_phase rng =
  let open Vstamp_panasync in
  let content rng tag =
    let n, rng = Rng.int rng 48 in
    (Printf.sprintf "%s:%s" tag (String.make (8 + n) '#'), rng)
  in
  let add store path rng =
    let c, rng = content rng path in
    (Store.add_new store ~path ~content:c, rng)
  in
  let merge = Sync.Merge (fun ~left ~right -> left ^ "|" ^ right) in
  let a = Store.create ~name:"left" and b = Store.create ~name:"right" in
  let a, rng = add a "notes.txt" rng in
  let a, rng = add a "todo.txt" rng in
  let b, rng = add b "photos.idx" rng in
  (* the same logical path created independently on both devices: an
     unrelated-lineage conflict the stamps cannot order *)
  let a, rng = add a "shared.cfg" rng in
  let b, rng = add b "shared.cfg" rng in
  let a, b, _ = Sync.session ~policy:merge a b in
  (* concurrent edits of a now-shared file: a genuine stamp conflict *)
  let c1, rng = content rng "notes-left" in
  let c2, rng = content rng "notes-right" in
  let a = Store.edit a ~path:"notes.txt" ~content:c1 in
  let b = Store.edit b ~path:"notes.txt" ~content:c2 in
  let a, b, _ = Sync.session ~policy:merge a b in
  (* a one-sided edit: propagation, no conflict *)
  let c3, rng = content rng "todo" in
  let a = Store.edit a ~path:"todo.txt" ~content:c3 in
  let a, b, _ = Sync.session ~policy:merge a b in
  ignore (Sync.converged a b);
  rng

(* One stamped-KV anti-entropy phase: ad-hoc replicas write
   concurrently and reconcile — the kvs_sync_* delta ledger counted by
   Stamped_kv.Obs (a creation round, a concurrent round and an
   already-equal round, so shipped/minimal/redundant all move). *)
let soak_stamped_kv_phase rng =
  let open Vstamp_kvs in
  let value rng tag =
    let n, rng = Rng.int rng 24 in
    (Printf.sprintf "%s#%d" tag n, rng)
  in
  let v1, rng = value rng "x" in
  let v2, rng = value rng "y" in
  let v3, rng = value rng "x'" in
  let a = Stamped_kv.put Stamped_kv.empty ~key:"x" v1 in
  let a = Stamped_kv.put a ~key:"y" v2 in
  let a, b = Stamped_kv.sync a Stamped_kv.empty in
  let b = Stamped_kv.put b ~key:"x" v3 in
  let a = Stamped_kv.put a ~key:"x" v1 in
  let a, b = Stamped_kv.sync a b in
  let a, b = Stamped_kv.sync a b in
  ignore (Stamped_kv.converged a b : bool);
  rng

let soak_checkpoint ~history ~registry ~srv ~sink ~t0 ~iteration ~final =
  let j =
    Jx.Obj
      [
        ("schema", Jx.String "vstamp-soak-checkpoint/1");
        ("final", Jx.Bool final);
        ("iteration", Jx.Int iteration);
        ("elapsed_s", Jx.Float (Unix.gettimeofday () -. t0));
        ("events_total", Jx.Int (Obs_sink.emitted sink));
        ("requests_total", Jx.Int (HE.requests srv));
        ("port", Jx.Int (HE.port srv));
        ("registry", Obs_registry.to_json registry);
      ]
  in
  Vstamp_obs.Bench_store.append ~file:history j

let parse_hostport ~flag spec =
  match String.rindex_opt spec ':' with
  | Some i -> (
      let host = String.sub spec 0 i
      and port = String.sub spec (i + 1) (String.length spec - i - 1) in
      match int_of_string_opt port with
      | Some p when host <> "" -> (host, p)
      | _ -> die "%s %s: expected HOST:PORT" flag spec)
  | None -> die "%s %s: expected HOST:PORT" flag spec

let soak port addr duration iterations n_ops seed backend sample_every
    sample_prob checkpoint_every history events_out port_file quiet
    partition_weather churn_rate rules_file retention record_every tsdb_out
    node_id span_out trace_parent stamp_seed net_port net_peers =
  let tracker =
    match backend with
    | None -> Tracker.stamps
    | Some key -> (
        match tracker_for_backend key with
        | Ok t -> t
        | Error (`Msg m) -> die "%s" m)
  in
  (match partition_weather with
  | Some s when not (s >= 0.0 && s <= 1.0) ->
      die "--partition-weather needs a severity in [0, 1]"
  | _ -> ());
  (match churn_rate with
  | Some r when not (r >= 0.0) -> die "--churn needs a non-negative rate"
  | _ -> ());
  if record_every <= 0.0 then die "--record-every needs a positive cadence";
  let rules =
    match rules_file with
    | None -> None
    | Some file -> (
        match read_file file with
        | Error (`Msg m) -> die "--rules %s: %s" file m
        | Ok text -> (
            match Vstamp_obs.Alert.parse_rules text with
            | Ok rs -> Some rs
            | Error m -> die "--rules %s: %s" file m))
  in
  let retention_s =
    match retention with
    | None -> None
    | Some dur -> (
        match Vstamp_obs.Alert.duration_of_string dur with
        | Ok s when s > 0.0 -> Some s
        | Ok _ -> die "--retention needs a positive duration"
        | Error m -> die "--retention: %s" m)
  in
  let sampling =
    match (sampling_of sample_every sample_prob, sample_every, sample_prob) with
    | Error (`Msg m), _, _ -> die "%s" m
    (* soak default: sampled monitors — full I2/I3 checking on every
       step would dominate the workload (EXPERIMENTS E13) *)
    | Ok Vstamp_obs.Monitor.Always, None, None -> Vstamp_obs.Monitor.Every_n 8
    | Ok s, _, _ -> s
  in
  let registry = Obs_registry.create () in
  (* Distributed tracing: with --span-out every iteration (and the
     sync rounds inside it) becomes a span appended to a JSONL log;
     with --trace-parent those spans continue the launching process's
     trace, so a whole cluster's workers land in one trace (merged by
     `vstamp report --cluster`). *)
  let trace_root =
    match trace_parent with
    | None -> None
    | Some h -> (
        match Tr.of_header h with
        | Ok ctx -> Some ctx
        | Error m -> die "--trace-parent: %s" m)
  in
  let span_oc =
    match span_out with
    | None -> None
    | Some file -> Some (open_out_bin file)
  in
  if span_oc <> None || trace_root <> None then begin
    let sink =
      match span_oc with
      | None -> fun _ -> ()
      | Some oc ->
          fun sp ->
            output_string oc (Tr.span_to_string sp);
            output_char oc '\n';
            flush oc
    in
    Tr.attach ~registry ~sink ~node:node_id ?parent:trace_root ()
  end;
  (* Each iteration advances this stamp and labels its span with it:
     inside one process the labels are linearly ordered by [update],
     and across a cluster the parent forks the seed so every worker's
     labels stay mutually comparable (domain "cluster"). *)
  let soak_stamp = ref (Option.value ~default:Stamp.seed stamp_seed) in
  let stop = ref false in
  let iterations_done = ref 0 in
  let last_step = ref 0 in
  let health () =
    [
      ("last_step", Jx.Int !last_step);
      ("iterations", Jx.Int !iterations_done);
      ("sampling", Jx.String (Vstamp_obs.Monitor.sampling_to_string sampling));
    ]
  in
  (* Flight recorder: a bounded multi-resolution history of every
     registry metric, sampled on the recorder cadence.  [--retention]
     sizes the rings so the coarsest tier reaches back that far. *)
  let tsdb =
    let capacity =
      match retention_s with
      | None -> 240
      | Some r ->
          let coarsest_period = record_every *. 144.0 (* downsample^2 *) in
          max 16 (int_of_float (ceil (r /. coarsest_period)))
    in
    Vstamp_obs.Tsdb.create ~capacity ~tiers:3 ~downsample:12 ()
  in
  let runtime = Vstamp_obs.Runtime.create ~registry () in
  (* The alert engine's transition events must reach the live /events
     feed, but the sink tees off the server — which itself needs the
     engine for /alerts.json.  Break the cycle with an indirection. *)
  let sink_ref = ref Obs_sink.null in
  let alerts =
    Option.map
      (fun rs ->
        Vstamp_obs.Alert.create ~registry
          ~sink:(Obs_sink.of_fn (fun e -> Obs_sink.emit !sink_ref e))
          rs)
      rules
  in
  (* --net: a real networked anti-entropy plane alongside the workload —
     this process runs a Stamped_kv replica speaking vstamp-sync/1 on
     TCP, writes one key per iteration and converges with its
     --net-peer nodes; the peer lifecycle shows up on /peers.json and
     the net_* metric families on /metrics *)
  let net_node =
    match net_port with
    | None -> None
    | Some sync_port ->
        let bkey = Option.value ~default:Backend.default_key backend in
        let peers = List.map (parse_hostport ~flag:"--net-peer") net_peers in
        let module B = (val Backend.get bkey) in
        let module N = Vstamp_net.Node.Make (B) in
        let node =
          try
            N.create ~registry ~interval_s:0.5 ~addr ~node_id ~backend:bkey
              ~port:sync_port ~peers ()
          with Unix.Unix_error (e, _, _) ->
            die "cannot bind %s:%d: %s" addr sync_port (Unix.error_message e)
        in
        N.start_dialers node;
        Some
          ( (fun i -> N.put node ~key:("soak-" ^ node_id) (string_of_int i)),
            (fun () -> N.peers_json node),
            (fun () -> N.stop node) )
  in
  let srv =
    (* a deeper /events ring than the default 64: one workload iteration
       emits ~n_ops sim events, which would evict sparse-but-important
       lines (alert transitions) before anyone can scrape them *)
    try
      HE.create ~registry ~health ~tsdb ?alerts
        ?peers:(Option.map (fun (_, pj, _) -> pj) net_node)
        ~recent:512 ~addr ~port ()
    with Unix.Unix_error (e, _, _) ->
      die "cannot bind %s:%d: %s" addr port (Unix.error_message e)
  in
  (match port_file with
  | Some file -> write_data (Some file) (string_of_int (HE.port srv) ^ "\n")
  | None -> ());
  if not quiet then
    Format.printf
      "soak: serving on http://%s:%d (/metrics /healthz /stats.json \
       /range.json /alerts.json /events) — SIGINT/SIGTERM for graceful \
       shutdown@."
      addr (HE.port srv);
  let sink =
    let live = HE.event_sink srv in
    match events_out with
    | Some file -> Obs_sink.tee (Obs_sink.to_file file) live
    | None -> live
  in
  sink_ref := sink;
  (* GC sampling, alert evaluation and time-series capture run on
     their own cadence so history and debounce stay even-paced no
     matter how long an iteration takes. *)
  let record_tick () =
    Vstamp_obs.Runtime.sample runtime;
    (match alerts with Some a -> Vstamp_obs.Alert.eval a | None -> ());
    Vstamp_obs.Tsdb.sample tsdb registry
  in
  let recorder_stop = ref false in
  let recorder =
    Thread.create
      (fun () ->
        while not !recorder_stop do
          record_tick ();
          Thread.delay record_every
        done)
      ()
  in
  let on_signal _ = stop := true in
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  Vstamp_kvs.Kv_node.Obs.attach ~registry ();
  Vstamp_kvs.Stamped_kv.Obs.attach ~registry ();
  Vstamp_panasync.Sync.Obs.attach ~registry ();
  let sim_failures = Obs_registry.counter registry "soak_sim_failures_total" in
  let iter_counter = Obs_registry.counter registry "soak_iterations_total" in
  let step_gauge = Obs_registry.gauge registry "soak_last_step" in
  let t0 = Unix.gettimeofday () in
  let workloads =
    [| "uniform"; "gossip"; "churn"; "partitioned"; "sync-star" |]
  in
  let expired i =
    !stop
    || (iterations > 0 && i > iterations)
    || (duration > 0.0 && Unix.gettimeofday () -. t0 >= duration)
  in
  let rec loop i =
    if expired i then ()
    else begin
      let wname = workloads.((i - 1) mod Array.length workloads) in
      let iteration_body () =
        (match workload_of_name ~seed:(seed + i) ~n_ops wname with
        | Error (`Msg m) -> die "%s" m (* unreachable: names are known *)
        | Ok ops -> (
            (try
               ignore
                 (System.run ~with_oracle:false ~registry ~sink
                    ~check_invariants:true ~sampling ~sample_seed:(seed + i)
                    tracker ops
                   : System.result)
             with System.Invariant_violation _ ->
               Vstamp_obs.Metric.inc sim_failures);
            last_step := !last_step + List.length ops));
        let rng = Rng.make (seed + i) in
        let rng = soak_kv_phase rng ~ops_n:(max 16 (n_ops / 2)) in
        let rng = soak_sync_phase rng in
        let (_ : Rng.t) = soak_stamped_kv_phase rng in
        (* partition-weather phase: a 3-replica convergence scenario per
           iteration, publishing the vstamp_replica_lag /
           vstamp_divergence_* / vstamp_convergence_* gauges and the
           sim-level delta ledger into the live registry *)
        (match partition_weather with
        | None -> ()
        | Some severity ->
            let cfg =
              {
                Lag.default_config with
                Lag.severity;
                seed = seed + i;
                rounds = max 4 (n_ops / 32);
              }
            in
            ignore (Lag.run ~registry cfg tracker : Lag.result));
        (* replica-churn phase: a fork/retire lifecycle scenario per
           iteration, publishing the vstamp_idspace_* fragmentation and
           genealogy gauges (and the sim_churn_* op counters) into the
           live registry — the data behind /idspace.json and the `top`
           identity-space panel *)
        match churn_rate with
        | None -> ()
        | Some rate ->
            let cfg =
              {
                Churn.default_config with
                Churn.churn_rate = rate;
                seed = seed + i;
                rounds = max 4 (n_ops / 32);
              }
            in
            ignore (Churn.run ~registry cfg : Churn.result)
      in
      (* One iteration is one span, labelled with this worker's stamp
         after a fresh [update] — so the cluster merge can place the
         iteration in the causal order by stamp leq alone. *)
      if Tr.attached () then begin
        soak_stamp := Stamp.update !soak_stamp;
        Tr.with_span "soak.iteration"
          ~stamp:(Stamp.to_string !soak_stamp)
          ~domain:"cluster"
          ~attrs:[ ("iteration", Jx.Int i); ("workload", Jx.String wname) ]
          iteration_body
      end
      else iteration_body ();
      incr iterations_done;
      Vstamp_obs.Metric.inc iter_counter;
      Vstamp_obs.Metric.set step_gauge (float_of_int !last_step);
      (match net_node with
      | Some (net_put, _, _) -> net_put i
      | None -> ());
      Obs_sink.emit sink
        (Obs_event.v ~ts:(Obs_event.Step !last_step) "soak.iteration"
           [ ("iteration", Jx.Int i); ("workload", Jx.String wname) ]);
      (match history with
      | Some file when checkpoint_every > 0 && i mod checkpoint_every = 0 ->
          soak_checkpoint ~history:file ~registry ~srv ~sink ~t0 ~iteration:i
            ~final:false
      | _ -> ());
      loop (i + 1)
    end
  in
  loop 1;
  (* graceful shutdown.  One last recorder tick so the dump and the
     exit status reflect the end state, then stop the server *before*
     the final checkpoint and the events fsync — an in-flight scrape
     must never observe (or race) a half-written checkpoint. *)
  recorder_stop := true;
  Thread.join recorder;
  record_tick ();
  (match net_node with Some (_, _, stop_node) -> stop_node () | None -> ());
  HE.stop srv;
  (match history with
  | Some file ->
      soak_checkpoint ~history:file ~registry ~srv ~sink ~t0
        ~iteration:!iterations_done ~final:true
  | None -> ());
  Obs_sink.flush sink;
  Obs_sink.close sink;
  (match tsdb_out with
  | Some file ->
      let alerts_json = Option.map Vstamp_obs.Alert.to_json alerts in
      write_data (Some file)
        (Jx.to_string (Vstamp_obs.Tsdb.to_json ?alerts:alerts_json tsdb) ^ "\n")
  | None -> ());
  Vstamp_kvs.Kv_node.Obs.detach ();
  Vstamp_kvs.Stamped_kv.Obs.detach ();
  Vstamp_panasync.Sync.Obs.detach ();
  if Tr.attached () then Tr.detach ();
  (match span_oc with None -> () | Some oc -> close_out_noerr oc);
  if not quiet then
    Format.printf
      "soak: %d iterations, %d logical steps, %d events, %d requests in \
       %.1fs@."
      !iterations_done !last_step (Obs_sink.emitted sink) (HE.requests srv)
      (Unix.gettimeofday () -. t0);
  match alerts with
  | Some a when Vstamp_obs.Alert.any_firing a ->
      let names =
        List.map
          (fun r -> r.Vstamp_obs.Alert.name)
          (Vstamp_obs.Alert.firing a)
      in
      Format.eprintf "soak: alerts firing at shutdown: %s@."
        (String.concat ", " names);
      exit 4
  | _ -> ()

(* --- soak --cluster: the multi-process cluster observatory ---

   The parent forks N soak workers (each with its own telemetry port,
   flight recorder and span log), hands each a trace header and a
   forked stamp seed, federates their telemetry behind /cluster.json,
   and on shutdown merges every node's span log into one causally
   ordered Chrome trace plus a causal-ordering validation report. *)

let soak_cluster n port addr duration iterations n_ops seed backend quiet
    partition_weather rules_file record_every port_file dir net net_base_port
    =
  if n < 2 then die "--cluster needs at least 2 workers";
  if net && (net_base_port < 1 || net_base_port + n > 65536) then
    die "--net-base-port %d leaves no room for %d workers" net_base_port n;
  (try Unix.mkdir dir 0o755
   with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let path p = Filename.concat dir p in
  (* the parent's own spans (the launch) go to memory, written out at
     the end next to the workers' logs *)
  let parent_spans = ref [] in
  Tr.attach ~sink:(fun sp -> parent_spans := sp :: !parent_spans)
    ~node:"parent" ();
  (* one n-way fork of the seed: every worker's stamp lineage stays
     mutually comparable, and the launch (labelled with the seed
     itself) is strictly below every worker iteration — the cross-node
     ordered pairs wall clocks could not justify *)
  let worker_stamps = Stamp.fork_many Stamp.seed n in
  let spawn header i stamp =
    let name = Printf.sprintf "node-%d" i in
    (try Sys.remove (path (name ^ ".port")) with Sys_error _ -> ());
    let argv =
      [
        "vstamp"; "soak"; "--port"; "0"; "--addr"; addr;
        "--port-file"; path (name ^ ".port");
        "--node-id"; name;
        "--span-out"; path (name ^ ".spans.jsonl");
        "--trace-parent"; header;
        "--stamp-seed"; Stamp.to_string stamp;
        "--tsdb-out"; path (name ^ ".tsdb.json");
        "--seed"; string_of_int (seed + (1000 * i));
        "--ops"; string_of_int n_ops;
        "--record-every"; string_of_float record_every;
        "--no-history"; "--quiet";
      ]
      @ (if duration > 0.0 then [ "--duration"; string_of_float duration ]
         else [])
      @ (if iterations > 0 then
           [ "--iterations"; string_of_int iterations ]
         else [])
      @ (match partition_weather with
        | None -> []
        | Some s -> [ "--partition-weather"; string_of_float s ])
      @ (match rules_file with None -> [] | Some f -> [ "--rules"; f ])
      @ (match backend with None -> [] | Some b -> [ "--backend"; b ])
      @ (if not net then []
         else
           (* real-TCP anti-entropy: deterministic sync ports base+i,
              full mesh — every worker peers with every other *)
           [ "--net-port"; string_of_int (net_base_port + i) ]
           @ List.concat
               (List.init n (fun j ->
                    if j = i then []
                    else
                      [
                        "--net-peer";
                        Printf.sprintf "%s:%d" addr (net_base_port + j);
                      ])))
    in
    let pid =
      Unix.create_process Sys.executable_name (Array.of_list argv)
        Unix.stdin Unix.stdout Unix.stderr
    in
    (name, pid)
  in
  let workers =
    Tr.with_span "cluster.launch"
      ~stamp:(Stamp.to_string Stamp.seed)
      ~domain:"cluster"
      ~attrs:[ ("workers", Jx.Int n) ]
      (fun () ->
        let header =
          match Tr.current () with Some c -> Tr.to_header c | None -> ""
        in
        List.mapi (spawn header) worker_stamps)
  in
  (* children die with us: forward the signal, then keep reaping *)
  let forward _ =
    List.iter
      (fun (_, pid) ->
        try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ())
      workers
  in
  Sys.set_signal Sys.sigint (Sys.Signal_handle forward);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle forward);
  (* wait for every worker's ephemeral port to land in its port file *)
  let await_port name =
    let file = path (name ^ ".port") in
    let deadline = Unix.gettimeofday () +. 15.0 in
    let rec go () =
      let p =
        match read_file file with
        | Ok s -> int_of_string_opt (String.trim s)
        | Error _ -> None
      in
      match p with
      | Some p -> p
      | None ->
          if Unix.gettimeofday () > deadline then
            die "cluster: %s did not publish a port within 15s" name
          else begin
            (try Unix.sleepf 0.05
             with Unix.Unix_error (Unix.EINTR, _, _) -> ());
            go ()
          end
    in
    go ()
  in
  let nodes =
    List.map
      (fun (name, _) ->
        { Vstamp_obs.Cluster.id = name; host = "127.0.0.1";
          port = await_port name })
      workers
  in
  let trace_id =
    match Tr.root () with Some c -> c.Tr.trace_id | None -> "?"
  in
  let registry = Obs_registry.create () in
  let srv =
    try
      HE.create ~registry
        ~health:(fun () -> [ ("cluster_workers", Jx.Int n) ])
        ~cluster:(fun () ->
          Vstamp_obs.Cluster.collect ~timeout_s:2.0
            ~meta:[ ("trace", Jx.String trace_id) ]
            nodes)
        ~addr ~port ()
    with Unix.Unix_error (e, _, _) ->
      die "cannot bind %s:%d: %s" addr port (Unix.error_message e)
  in
  (match port_file with
  | Some file -> write_data (Some file) (string_of_int (HE.port srv) ^ "\n")
  | None -> ());
  if not quiet then begin
    Format.printf
      "cluster: %d workers (%s), parent on http://%s:%d/cluster.json, \
       trace %s@."
      n
      (String.concat ", "
         (List.map
            (fun nd ->
              Printf.sprintf "%s:%d" nd.Vstamp_obs.Cluster.id
                nd.Vstamp_obs.Cluster.port)
            nodes))
      addr (HE.port srv) trace_id;
    Format.print_flush ()
  end;
  (* reap until every worker has exited (waitpid is interruptible —
     the signal handler above already forwarded the TERM) *)
  let statuses = Hashtbl.create n in
  let rec reap () =
    if Hashtbl.length statuses < List.length workers then begin
      List.iter
        (fun (name, pid) ->
          if not (Hashtbl.mem statuses pid) then
            match Unix.waitpid [ Unix.WNOHANG ] pid with
            | 0, _ -> ()
            | _, st -> Hashtbl.replace statuses pid (name, st)
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
                Hashtbl.replace statuses pid (name, Unix.WEXITED 0))
        workers;
      if Hashtbl.length statuses < List.length workers then begin
        (try Unix.sleepf 0.1
         with Unix.Unix_error (Unix.EINTR, _, _) -> ());
        reap ()
      end
    end
  in
  reap ();
  HE.stop srv;
  Tr.detach ();
  write_data
    (Some (path "parent.spans.jsonl"))
    (Tr.spans_to_jsonl (List.rev !parent_spans));
  (* the cross-node post-mortem: merge every node's span log into one
     stamp-ordered timeline and validate every stamp-ordered pair
     against the wall clocks *)
  let all_spans =
    List.concat_map
      (fun file ->
        match Tmerge.load_file (path file) with
        | Ok sps -> sps
        | Error m ->
            Format.eprintf "cluster: %s@." m;
            [])
      ("parent.spans.jsonl"
      :: List.map (fun (name, _) -> name ^ ".spans.jsonl") workers)
  in
  let merged = Tmerge.merge ~leq:stamp_label_leq all_spans in
  write_data
    (Some (path "trace.chrome.json"))
    (Jx.to_string (Tmerge.to_chrome merged) ^ "\n");
  let rep = Tmerge.validate ~leq:stamp_label_leq all_spans in
  write_data
    (Some (path "causal-report.json"))
    (Jx.to_string (Tmerge.report_json rep) ^ "\n");
  if not quiet then
    Format.printf
      "cluster: %d spans over %d nodes, %d stamped, %d stamp-ordered \
       pairs (%d cross-node), %d contradictions — %s, %s@."
      rep.Tmerge.rp_spans
      (List.length rep.Tmerge.rp_nodes)
      rep.Tmerge.rp_stamped rep.Tmerge.rp_ordered_pairs
      rep.Tmerge.rp_cross_node_ordered_pairs
      (List.length rep.Tmerge.rp_contradictions)
      (path "trace.chrome.json")
      (path "causal-report.json");
  let worst =
    Hashtbl.fold
      (fun _ (name, st) acc ->
        match st with
        | Unix.WEXITED 0 -> acc
        | Unix.WEXITED c ->
            Format.eprintf "cluster: %s exited %d@." name c;
            max acc c
        | Unix.WSIGNALED _ | Unix.WSTOPPED _ ->
            Format.eprintf "cluster: %s killed by signal@." name;
            max acc 1)
      statuses 0
  in
  if worst <> 0 then exit worst;
  if rep.Tmerge.rp_contradictions <> [] then begin
    Format.eprintf
      "cluster: %d span pairs contradict stamp order@."
      (List.length rep.Tmerge.rp_contradictions);
    exit 5
  end

let soak_cmd =
  let port =
    Arg.(
      value & opt int 9464
      & info [ "p"; "port" ] ~docv:"PORT"
          ~doc:"Telemetry port (0 picks an ephemeral one; see --port-file)")
  in
  let addr =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "addr" ] ~docv:"ADDR" ~doc:"Address to bind")
  in
  let duration =
    Arg.(
      value & opt float 0.0
      & info [ "duration" ] ~docv:"SECONDS"
          ~doc:"Stop after this long (0: run until signalled)")
  in
  let iterations =
    Arg.(
      value & opt int 0
      & info [ "iterations" ] ~docv:"N"
          ~doc:"Stop after N iterations (0: run until signalled)")
  in
  let n_ops =
    Arg.(
      value & opt int 300
      & info [ "n"; "ops" ] ~docv:"N" ~doc:"Simulator ops per iteration")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"Base seed")
  in
  let sample_every =
    Arg.(
      value
      & opt (some int) None
      & info [ "sample-every" ] ~docv:"N"
          ~doc:"Invariant-monitor sampling period (default 8)")
  in
  let sample_prob =
    Arg.(
      value
      & opt (some float) None
      & info [ "sample-prob" ] ~docv:"P"
          ~doc:"Invariant-monitor sampling probability")
  in
  let checkpoint_every =
    Arg.(
      value & opt int 25
      & info [ "checkpoint-every" ] ~docv:"K"
          ~doc:"Append a ledger checkpoint every K iterations")
  in
  let history =
    Arg.(
      value
      & opt (some string) (Some "BENCH_history.jsonl")
      & info [ "history" ] ~docv:"FILE"
          ~doc:"Checkpoint ledger (JSONL, appended); empty to disable")
  in
  let no_history =
    Arg.(
      value & flag
      & info [ "no-history" ] ~doc:"Do not append ledger checkpoints")
  in
  let events_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "events-out" ] ~docv:"FILE"
          ~doc:
            "Also persist the live event feed to FILE as JSONL (flushed and \
             fsynced on shutdown)")
  in
  let port_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "port-file" ] ~docv:"FILE"
          ~doc:"Write the bound port to FILE (for scripts with --port 0)")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No chatter") in
  let partition_weather =
    Arg.(
      value
      & opt (some float) None
      & info [ "partition-weather" ] ~docv:"SEVERITY"
          ~doc:
            "Also run a partition-weather convergence phase each \
             iteration (severity in [0,1]: evolving asymmetric \
             connectivity), charting replica lag, divergence and \
             sync-delta efficiency on /metrics and /lag.json")
  in
  let churn =
    Arg.(
      value
      & opt (some float) None
      & info [ "churn" ] ~docv:"RATE"
          ~doc:
            "Also run a replica-churn phase each iteration (RATE: \
             expected forks and retire attempts per scenario round), \
             charting identity-space fragmentation, id-bit reclamation \
             and the partition-of-unity audit on /metrics and \
             /idspace.json (single-process soak only)")
  in
  let rules =
    Arg.(
      value
      & opt (some string) None
      & info [ "rules" ] ~docv:"FILE"
          ~doc:
            "Alert rules file (one `name condition [for duration]` per \
             line; see doc/telemetry.md).  Firing/resolved transitions \
             appear on /events and /alerts.json; alerts still firing at \
             shutdown make soak exit 4")
  in
  let retention =
    Arg.(
      value
      & opt (some string) None
      & info [ "retention" ] ~docv:"DURATION"
          ~doc:
            "How far back the flight recorder's coarsest tier reaches \
             (e.g. 30m, 4h; default ~9.6h at the default cadence).  \
             Memory stays fixed: the rings are sized once, up front")
  in
  let record_every =
    Arg.(
      value & opt float 1.0
      & info [ "record-every" ] ~docv:"SECONDS"
          ~doc:"Flight-recorder cadence: registry sampling, GC telemetry \
                and alert evaluation")
  in
  let tsdb_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "tsdb-out" ] ~docv:"FILE"
          ~doc:
            "Dump the recorded time series (and alert state) as JSON on \
             shutdown — the input of `vstamp report --dump`")
  in
  let node_id =
    Arg.(
      value & opt string "node-0"
      & info [ "node-id" ] ~docv:"NAME"
          ~doc:"This process's node name in span records")
  in
  let span_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "span-out" ] ~docv:"FILE"
          ~doc:
            "Record every iteration and sync round as a trace span, \
             appended to FILE as JSONL — the input of `vstamp report \
             --cluster`")
  in
  let trace_parent =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-parent" ] ~docv:"HEADER"
          ~doc:
            "Continue a propagated trace: a vstamp-trace/1 header (the \
             cluster driver passes the launch span's) that becomes the \
             parent of this process's spans")
  in
  let stamp_seed =
    Arg.(
      value
      & opt (some stamp_conv) None
      & info [ "stamp-seed" ] ~docv:"STAMP"
          ~doc:
            "Starting stamp for the per-iteration span labels, in the \
             paper's text notation (default the seed [1|0]); the \
             cluster driver forks the seed n ways so workers' labels \
             stay mutually comparable")
  in
  let cluster =
    Arg.(
      value & opt int 0
      & info [ "cluster" ] ~docv:"N"
          ~doc:
            "Fork N soak worker processes (each with its own telemetry \
             port, flight recorder and span log), federate them behind \
             this process's /cluster.json, and merge their span logs \
             into a causally ordered Chrome trace on shutdown")
  in
  let cluster_dir =
    Arg.(
      value & opt string "cluster-out"
      & info [ "cluster-dir" ] ~docv:"DIR"
          ~doc:
            "Where --cluster keeps its artifacts (port files, span \
             logs, tsdb dumps, trace.chrome.json, causal-report.json)")
  in
  let net_port =
    Arg.(
      value
      & opt (some int) None
      & info [ "net-port" ] ~docv:"PORT"
          ~doc:
            "Also run a networked anti-entropy node: a stamped \
             key-value replica speaking vstamp-sync/1 on PORT (0 for \
             ephemeral) that writes one key per iteration and \
             converges with the --net-peer nodes; peer lifecycle on \
             /peers.json, net_* families on /metrics")
  in
  let net_peer =
    Arg.(
      value & opt_all string []
      & info [ "net-peer" ] ~docv:"HOST:PORT"
          ~doc:"A peer node's sync endpoint for --net-port; repeatable")
  in
  let net =
    Arg.(
      value & flag
      & info [ "net" ]
          ~doc:
            "With --cluster: wire the workers into a real-TCP full \
             mesh (deterministic sync ports from --net-base-port) so \
             anti-entropy rounds cross process boundaries")
  in
  let net_base_port =
    Arg.(
      value & opt int 9600
      & info [ "net-base-port" ] ~docv:"PORT"
          ~doc:"First sync port for --cluster --net (worker i gets \
                PORT+i)")
  in
  let wrap port addr duration iterations n_ops seed backend sample_every
      sample_prob checkpoint_every history no_history events_out port_file
      quiet partition_weather churn rules retention record_every tsdb_out
      node_id span_out trace_parent stamp_seed cluster cluster_dir net_port
      net_peer net net_base_port =
    if cluster > 0 then
      soak_cluster cluster port addr duration iterations n_ops seed backend
        quiet partition_weather rules record_every port_file cluster_dir net
        net_base_port
    else begin
      if net then die "--net needs --cluster (use --net-port standalone)";
      soak port addr duration iterations n_ops seed backend sample_every
        sample_prob checkpoint_every
        (if no_history then None else history)
        events_out port_file quiet partition_weather churn rules retention
        record_every tsdb_out node_id span_out trace_parent stamp_seed
        net_port net_peer
    end
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Long-running soak driver: continuously exercises the simulator, \
          the replicated key-value store and file-sync sessions with \
          sampled invariant monitors on, serving live telemetry over HTTP \
          (/metrics for Prometheus, /stats.json for vstamp top, \
          /range.json for recorded history, /alerts.json for the alert \
          plane, /events for streaming) and appending periodic \
          checkpoints to the bench ledger.  --cluster N forks N workers \
          and federates them behind /cluster.json; --cluster N --net \
          additionally wires the workers into a real-TCP anti-entropy \
          mesh")
    Term.(
      const wrap $ port $ addr $ duration $ iterations $ n_ops $ seed
      $ backend_arg $ sample_every $ sample_prob $ checkpoint_every $ history
      $ no_history $ events_out $ port_file $ quiet $ partition_weather
      $ churn $ rules $ retention $ record_every $ tsdb_out $ node_id
      $ span_out $ trace_parent $ stamp_seed $ cluster $ cluster_dir
      $ net_port $ net_peer $ net $ net_base_port)

(* --- top --- *)

(* Transport errors (refused connection, timeout) are retried with
   exponential backoff when [retries > 0] — a live command racing a
   soak process that is still binding its port waits it out instead of
   dying on the first refusal.  HTTP-level errors are never retried:
   the server answered, it just doesn't like the request.  This is the
   one retry policy behind every `--retry` flag (`top`, `scrape`,
   `lag`, `churn`, `report`). *)
let retry_transport ?(retries = 0) f =
  let rec go attempt delay =
    match f () with
    | Ok _ as ok -> ok
    | Error _ as e ->
        if attempt >= retries then e
        else begin
          Unix.sleepf delay;
          go (attempt + 1) (Float.min 5.0 (delay *. 2.0))
        end
  in
  go 0 0.2

let retry_arg =
  Arg.(
    value & opt int 0
    & info [ "retry" ] ~docv:"N"
        ~doc:
          "Retry a failed connection up to N times with exponential \
           backoff (0.2s doubling, capped at 5s) — for scripts racing \
           a soak process that is still binding its port.  HTTP errors \
           are not retried")

let fetch ?retries ?timeout_s ~host ~port path =
  match
    retry_transport ?retries (fun () ->
        HE.Client.get ?timeout_s ~host ~port path)
  with
  | Ok (200, body) -> Ok body
  | Ok (status, _) -> Error (Printf.sprintf "GET %s: HTTP %d" path status)
  | Error m -> Error (Printf.sprintf "GET %s: %s" path m)

let fetch_json ?retries ?timeout_s ~host ~port path =
  match fetch ?retries ?timeout_s ~host ~port path with
  | Error _ as e -> e
  | Ok body -> (
      match Jx.of_string (String.trim body) with
      | Ok j -> Ok j
      | Error m -> Error (Printf.sprintf "GET %s: bad JSON: %s" path m))

(* Cluster mode: one /cluster.json fetch per frame, rendered as the
   multi-node panel. *)
let top_cluster ~host ~port ~timeout_s ~retries interval frames no_color =
  let frame () =
    match fetch_json ~retries ~timeout_s ~host ~port "/cluster.json" with
    | Ok j -> Vstamp_obs.Dash.render_cluster ~color:(not no_color) j
    | Error m -> die "%s" m
  in
  if frames = 1 then begin
    print_string (frame ());
    flush stdout
  end
  else begin
    let rec loop n =
      print_string Vstamp_obs.Dash.clear_screen;
      print_string (frame ());
      flush stdout;
      if frames = 0 || n < frames then begin
        Unix.sleepf interval;
        loop (n + 1)
      end
    in
    loop 1
  end

let top host port timeout_s retries interval frames events_n no_color
    spark_arg =
  let fetch_json ~host ~port path =
    fetch_json ~retries ~timeout_s ~host ~port path
  in
  let stats () =
    match fetch_json ~host ~port "/stats.json" with
    | Ok j -> j
    | Error m -> die "%s" m
  in
  let spark_names =
    String.split_on_char ',' spark_arg
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  (* Flight-recorder panels: both endpoints 404 on a server without a
     recorder or alert engine — the panels just don't render then. *)
  let fetch_sparks () =
    List.filter_map
      (fun metric ->
        match
          fetch_json ~host ~port
            (Printf.sprintf "/range.json?metric=%s&from=-120" metric)
        with
        | Ok j -> (
            match Jx.member "points" j with
            | Some (Jx.List (_ :: _ as pts)) ->
                Some
                  ( metric,
                    List.filter_map
                      (fun p -> Option.bind (Jx.member "avg" p) Jx.to_float)
                      pts )
            | _ -> None)
        | Error _ -> None)
      spark_names
  in
  let fetch_alerts () =
    match fetch_json ~host ~port "/alerts.json" with
    | Ok j -> Some j
    | Error _ -> None
  in
  let frame_of prev prev_t =
    let cur = stats () in
    let now = Unix.gettimeofday () in
    let deltas = Obs_registry.diff ~elapsed_s:(now -. prev_t) ~prev cur in
    let health =
      match fetch_json ~host ~port "/healthz" with
      | Ok j -> Some j
      | Error _ -> None
    in
    let events =
      match
        fetch_json ~host ~port (Printf.sprintf "/events.json?n=%d" events_n)
      with
      | Ok (Jx.List l) -> List.map Jx.to_string l
      | _ -> []
    in
    ( Vstamp_obs.Dash.render ~color:(not no_color) ~events ?health
        ?alerts:(fetch_alerts ()) ~sparks:(fetch_sparks ()) ~deltas
        ~snapshot:cur (),
      cur,
      now )
  in
  let first = stats () in
  if frames = 1 then begin
    (* --once: a single frame, immediately, from one snapshot (rates
       read 0 — there is no second sample to difference against), no
       screen clearing, exit 0.  Scriptable in CI and over ssh pipes. *)
    let frame, _, _ = frame_of first (Unix.gettimeofday ()) in
    print_string frame;
    flush stdout
  end
  else begin
    let rec loop n prev prev_t =
      Unix.sleepf interval;
      let frame, cur, now = frame_of prev prev_t in
      print_string Vstamp_obs.Dash.clear_screen;
      print_string frame;
      flush stdout;
      if frames = 0 || n < frames then loop (n + 1) cur now
    in
    loop 1 first (Unix.gettimeofday ())
  end

let top_cmd =
  let host =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"HOST" ~doc:"Server address")
  in
  let port =
    Arg.(
      value & opt int 9464
      & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Server port")
  in
  let interval =
    Arg.(
      value & opt float 2.0
      & info [ "i"; "interval" ] ~docv:"SECONDS" ~doc:"Poll interval")
  in
  let frames =
    Arg.(
      value & opt int 0
      & info [ "frames" ] ~docv:"N" ~doc:"Stop after N frames (0: forever)")
  in
  let once =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:"Render a single frame and exit (no screen clearing)")
  in
  let events_n =
    Arg.(
      value & opt int 8
      & info [ "events" ] ~docv:"N" ~doc:"Recent events to show")
  in
  let no_color =
    Arg.(value & flag & info [ "no-color" ] ~doc:"Disable ANSI styling")
  in
  let spark =
    Arg.(
      value
      & opt string
          "soak_iterations_total,runtime_heap_words,runtime_allocation_rate_words_per_s"
      & info [ "spark" ] ~docv:"METRICS"
          ~doc:
            "Comma-separated metric names to render as flight-recorder \
             sparklines (needs a server with /range.json; missing series \
             are skipped)")
  in
  let timeout =
    Arg.(
      value & opt float 5.0
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Socket timeout per fetch (a stalled endpoint errors out \
                instead of freezing the panel)")
  in
  let retry = retry_arg in
  let cluster =
    Arg.(
      value & flag
      & info [ "cluster" ]
          ~doc:
            "Render the multi-node cluster panel from /cluster.json (a \
             `soak --cluster` parent) instead of the single-process \
             dashboard")
  in
  let wrap host port timeout retry interval frames once events_n no_color
      spark cluster =
    let frames = if once then 1 else frames in
    if retry < 0 then die "--retry needs a non-negative count";
    if cluster then
      top_cluster ~host ~port ~timeout_s:timeout ~retries:retry interval
        frames no_color
    else top host port timeout retry interval frames events_n no_color spark
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live terminal dashboard over a soaking process: polls \
          /stats.json, differences successive snapshots into per-second \
          rates (Registry.diff), and repaints alerts, op rates, gauges, \
          flight-recorder sparklines, histogram summaries and the latest \
          events.  --once renders a single frame immediately and exits 0 \
          (no screen clearing) for CI and ssh pipes; --cluster renders \
          the multi-node panel of a `soak --cluster` parent")
    Term.(
      const wrap $ host $ port $ timeout $ retry $ interval $ frames $ once
      $ events_n $ no_color $ spark $ cluster)

(* --- scrape --- *)

let scrape host port timeout retries path =
  match
    retry_transport ~retries (fun () ->
        HE.Client.get ~host ~timeout_s:timeout ~port path)
  with
  | Ok (200, body) -> print_string body
  | Ok (status, body) ->
      Format.eprintf "error: GET %s: HTTP %d@.%s" path status body;
      exit 1
  | Error m -> die "GET %s: %s" path m

let scrape_cmd =
  let host =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"HOST" ~doc:"Server address")
  in
  let port =
    Arg.(
      value & opt int 9464
      & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Server port")
  in
  let timeout =
    Arg.(
      value & opt float 5.0
      & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Socket timeout")
  in
  let retry = retry_arg in
  let path =
    Arg.(
      value & pos 0 string "/metrics"
      & info [] ~docv:"PATH" ~doc:"Endpoint path (default /metrics)")
  in
  let wrap host port timeout retry path =
    if retry < 0 then die "--retry needs a non-negative count";
    scrape host port timeout retry path
  in
  Cmd.v
    (Cmd.info "scrape"
       ~doc:
         "Fetch one telemetry endpoint (curl-free, for scripts and CI \
          smoke): prints the body of GET PATH, exits non-zero on any \
          HTTP or transport error; --retry N waits out a server that \
          is still coming up")
    Term.(const wrap $ host $ port $ timeout $ retry $ path)

(* --- lag --- *)

module Obs_conv = Vstamp_obs.Convergence

(* Sim mode: run the Lag convergence scenario and render its report —
   the divergence matrix at quiescence, per-replica staleness, the
   convergence timing and the sync-delta ledger. *)
let lag_sim tracker backend replicas rounds p_update syncs_per_round severity
    seed epoch json =
  let tracker =
    match backend with
    | None -> tracker
    | Some key -> (
        match tracker_for_backend key with
        | Ok t -> t
        | Error (`Msg m) -> die "%s" m)
  in
  if not (severity >= 0.0 && severity <= 1.0) then
    die "--severity needs a value in [0, 1]";
  if replicas < 2 then die "--replicas needs at least 2";
  let cfg =
    {
      Lag.replicas;
      rounds;
      p_update;
      syncs_per_round;
      severity;
      seed;
      epoch;
      max_heal_rounds = 16;
    }
  in
  let rounds_log = ref [] in
  let r = Lag.run ~on_round:(fun o -> rounds_log := o :: !rounds_log) cfg tracker in
  if json then begin
    let matrix_j = Obs_conv.matrix_to_json in
    let conv_j =
      match r.Lag.convergence with
      | None -> Jx.Null
      | Some (ns, steps) ->
          Jx.Obj
            [
              ("ns", Jx.Float (Int64.to_float ns)); ("steps", Jx.Int steps);
            ]
    in
    print_endline
      (Jx.to_string
         (Jx.Obj
            [
              ("tracker", Jx.String (Tracker.name tracker));
              ("replicas", Jx.Int r.Lag.replicas);
              ("severity", Jx.Float severity);
              ("updates", Jx.Int r.Lag.updates);
              ("syncs", Jx.Int r.Lag.syncs);
              ("blocked_syncs", Jx.Int r.Lag.blocked_syncs);
              ("heal_rounds", Jx.Int r.Lag.heal_rounds);
              ("converged", Jx.Bool r.Lag.converged);
              ("convergence", conv_j);
              ("peak_width", Jx.Int r.Lag.peak_width);
              ("peak_lag", Jx.Int r.Lag.peak_lag);
              ("mean_lag", Jx.Float r.Lag.mean_lag);
              ("peak_entropy", Jx.Float r.Lag.peak_entropy);
              ("divergence", matrix_j r.Lag.divergence);
              ("final", matrix_j r.Lag.final);
              ("shipped_bytes", Jx.Int r.Lag.shipped_bytes);
              ("minimal_bytes", Jx.Int r.Lag.minimal_bytes);
              ("redundant_bytes", Jx.Int r.Lag.redundant_bytes);
              ("delta_efficiency", Jx.Float r.Lag.delta_efficiency);
            ]))
  end
  else begin
    Format.printf
      "lag: tracker=%s replicas=%d rounds=%d severity=%.2f seed=%d@."
      (Tracker.name tracker) replicas rounds severity seed;
    Format.printf
      "  %d updates, %d syncs (%d blocked by weather), peak width %d, \
       peak lag %d, mean lag %.2f@."
      r.Lag.updates r.Lag.syncs r.Lag.blocked_syncs r.Lag.peak_width
      r.Lag.peak_lag r.Lag.mean_lag;
    Format.printf "divergence at quiescence (= equal, > dominates, < \
                   dominated, # concurrent):@.%a"
      Obs_conv.pp_matrix r.Lag.divergence;
    Format.printf "converged: %b (%d heal rounds)@." r.Lag.converged
      r.Lag.heal_rounds;
    (match r.Lag.convergence with
    | Some (ns, steps) ->
        Format.printf "  convergence: %d steps, %Ld ns after last write@."
          steps ns
    | None -> ());
    Format.printf
      "sync delta: shipped=%dB minimal=%dB redundant=%dB efficiency=%.3f@."
      r.Lag.shipped_bytes r.Lag.minimal_bytes r.Lag.redundant_bytes
      r.Lag.delta_efficiency;
    if not r.Lag.converged then exit 3
  end

(* Live mode: render the /lag.json view of a soaking process. *)
let lag_live host port timeout_s retries json =
  match fetch_json ~retries ~timeout_s ~host ~port "/lag.json" with
  | Error m -> die "%s" m
  | Ok j ->
      if json then print_endline (Jx.to_string j)
      else begin
        let obj name =
          match Jx.member name j with Some (Jx.Obj kvs) -> kvs | _ -> []
        in
        let num name =
          match Option.bind (Jx.member name j) Jx.to_float with
          | Some f -> Printf.sprintf "%g" f
          | None -> "-"
        in
        Format.printf "lag: live http://%s:%d/lag.json@." host port;
        let fields label kvs =
          Format.printf "  %s:%s@." label
            (if kvs = [] then " (none)"
             else
               String.concat ""
                 (List.map
                    (fun (k, v) ->
                      Printf.sprintf " %s=%s" k
                        (match Jx.to_float v with
                        | Some f -> Printf.sprintf "%g" f
                        | None -> "-"))
                    kvs))
        in
        fields "replica lag" (obj "replica_lag");
        fields "divergence pairs" (obj "divergence_pairs");
        Format.printf "  frontier width: %s, entropy %s@."
          (num "frontier_width") (num "divergence_entropy");
        (match
           ( Option.bind (Jx.member "convergence_ns" j) Jx.to_float,
             Option.bind (Jx.member "convergence_steps" j) Jx.to_float )
         with
        | Some ns, Some steps ->
            Format.printf "  convergence: %.0f steps, %.0f ns after last \
                           write@."
              steps ns
        | _ -> Format.printf "  convergence: not yet observed@.");
        fields "sync delta" (obj "sync_delta")
      end

let lag_cmd =
  let host =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"HOST" ~doc:"Server address (live mode)")
  in
  let port =
    Arg.(
      value
      & opt (some int) None
      & info [ "p"; "port" ] ~docv:"PORT"
          ~doc:
            "Render the /lag.json view of a live soak on PORT instead of \
             running the simulation")
  in
  let tracker_arg =
    Arg.(
      value
      & opt tracker_conv Tracker.stamps
      & info [ "t"; "tracker" ] ~docv:"TRACKER"
          ~doc:"Tracking mechanism for the simulated scenario")
  in
  let replicas =
    Arg.(
      value & opt int 3
      & info [ "replicas" ] ~docv:"N" ~doc:"Frontier size (>= 2)")
  in
  let rounds =
    Arg.(
      value & opt int 12
      & info [ "rounds" ] ~docv:"N" ~doc:"Active rounds before quiescence")
  in
  let p_update =
    Arg.(
      value & opt float 0.5
      & info [ "p-update" ] ~docv:"P"
          ~doc:"Per-replica write probability per round")
  in
  let syncs_per_round =
    Arg.(
      value & opt int 2
      & info [ "syncs-per-round" ] ~docv:"N"
          ~doc:"Sync attempts per round (the weather may block them)")
  in
  let severity =
    Arg.(
      value & opt float 0.6
      & info [ "severity" ] ~docv:"S"
          ~doc:"Partition-weather severity in [0, 1]")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"Seed")
  in
  let epoch =
    Arg.(
      value & opt int 4
      & info [ "epoch" ] ~docv:"N" ~doc:"Weather epoch length, in rounds")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable output")
  in
  let timeout =
    Arg.(
      value & opt float 5.0
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Socket timeout for the live fetch")
  in
  let retry = retry_arg in
  let wrap host port timeout retry tracker backend replicas rounds p_update
      syncs_per_round severity seed epoch json =
    if retry < 0 then die "--retry needs a non-negative count";
    match port with
    | Some p -> lag_live host p timeout retry json
    | None ->
        lag_sim tracker backend replicas rounds p_update syncs_per_round
          severity seed epoch json
  in
  Cmd.v
    (Cmd.info "lag"
       ~doc:
         "Convergence report: run a partition-weather scenario and render \
          the divergence matrix, per-replica staleness against the \
          causal-history oracle, time-to-convergence and the sync-delta \
          ledger — or, with --port, render the live /lag.json view of a \
          soaking process")
    Term.(
      const wrap $ host $ port $ timeout $ retry $ tracker_arg $ backend_arg
      $ replicas $ rounds $ p_update $ syncs_per_round $ severity $ seed
      $ epoch $ json)

(* --- churn: the identity-space observatory's scenario --- *)

module Obs_id = Vstamp_obs.Idspace

(* Sim mode: run the replica-churn scenario — high-rate fork/retire
   under partition weather, a lockstep dynamic-VV lane — and render the
   identity-space report: fragmentation and reclamation analytics, the
   dynamic-VV baggage comparison, and the partition-of-unity audit
   (witnesses and exit 3 when it fails). *)
let churn_sim replicas min_replicas max_replicas rounds p_update
    syncs_per_round churn_rate gc_every severity seed epoch
    inject_corruption dot_out genealogy_out json =
  if not (severity >= 0.0 && severity <= 1.0) then
    die "--severity needs a value in [0, 1]";
  if replicas < 1 then die "--replicas needs at least 1";
  if min_replicas < 1 then die "--min-replicas needs at least 1";
  if max_replicas < replicas then
    die "--max-replicas needs a value >= --replicas";
  if churn_rate < 0.0 then die "--churn-rate needs a non-negative rate";
  if gc_every < 1 then die "--gc-every needs at least 1";
  let cfg =
    {
      Churn.replicas;
      min_replicas;
      max_replicas;
      rounds;
      p_update;
      syncs_per_round;
      churn_rate;
      gc_every;
      severity;
      seed;
      epoch;
      inject_corruption;
    }
  in
  let r = Churn.run cfg in
  let out_of file = if file = "-" then None else Some file in
  (match dot_out with
  | Some file -> write_data (out_of file) (Obs_id.to_dot r.Churn.genealogy)
  | None -> ());
  (match genealogy_out with
  | Some file ->
      write_data (out_of file)
        (Jx.to_string (Obs_id.to_json r.Churn.genealogy) ^ "\n")
  | None -> ());
  let audit = r.Churn.audit in
  if json then
    print_endline
      (Jx.to_string
         (Jx.Obj
            [
              ("replicas", Jx.Int replicas);
              ("max_replicas", Jx.Int max_replicas);
              ("rounds", Jx.Int r.Churn.rounds);
              ("churn_rate", Jx.Float churn_rate);
              ("severity", Jx.Float severity);
              ("updates", Jx.Int r.Churn.updates);
              ("syncs", Jx.Int r.Churn.syncs);
              ("blocked_syncs", Jx.Int r.Churn.blocked_syncs);
              ("forks", Jx.Int r.Churn.forks);
              ("retires", Jx.Int r.Churn.retires);
              ("blocked_retires", Jx.Int r.Churn.blocked_retires);
              ("peak_replicas", Jx.Int r.Churn.peak_replicas);
              ("final_replicas", Jx.Int r.Churn.final_replicas);
              ("stamp_id_bits", Jx.Int r.Churn.stamp_id_bits);
              ("stamp_peak_id_bits", Jx.Int r.Churn.stamp_peak_id_bits);
              ("stamp_id_width", Jx.Int r.Churn.stamp_id_width);
              ("stamp_max_depth", Jx.Int r.Churn.stamp_max_depth);
              ("stamp_size_bits", Jx.Int r.Churn.stamp_size_bits);
              ("reclaimed_bits", Jx.Int r.Churn.reclaimed_bits);
              ("fork_bits", Jx.Int r.Churn.fork_bits);
              ("oracle_bits", Jx.Int r.Churn.oracle_bits);
              ("entropy", Jx.Float r.Churn.entropy);
              ("oracle_entropy", Jx.Float r.Churn.oracle_entropy);
              ( "reduce_effectiveness",
                Jx.Float r.Churn.reduce_effectiveness );
              ("dvv_entries", Jx.Int r.Churn.dvv_entries);
              ("dvv_retired_entries", Jx.Int r.Churn.dvv_retired_entries);
              ( "dvv_peak_retired_entries",
                Jx.Int r.Churn.dvv_peak_retired_entries );
              ("dvv_size_bits", Jx.Int r.Churn.dvv_size_bits);
              ("dvv_gc_dropped", Jx.Int r.Churn.dvv_gc_dropped);
              ("relation_mismatches", Jx.Int r.Churn.relation_mismatches);
              ("audit_clean", Jx.Bool r.Churn.audit_clean);
              ( "audit",
                Jx.Obj
                  [
                    ("audited", Jx.Int audit.Obs_id.audited);
                    ("fragments", Jx.Int audit.Obs_id.audit_fragments);
                    ( "violations",
                      Jx.List
                        (List.map Obs_id.violation_json
                           audit.Obs_id.violations) );
                  ] );
            ]))
  else begin
    Format.printf
      "churn: replicas=%d..%d rounds=%d rate=%.2f severity=%.2f seed=%d@."
      replicas max_replicas r.Churn.rounds churn_rate severity seed;
    Format.printf
      "  %d updates, %d syncs (%d blocked by weather), %d forks, %d \
       retires (%d blocked), population %d -> %d (peak %d)@."
      r.Churn.updates r.Churn.syncs r.Churn.blocked_syncs r.Churn.forks
      r.Churn.retires r.Churn.blocked_retires replicas
      r.Churn.final_replicas r.Churn.peak_replicas;
    Format.printf
      "  identity space: %d fragments, %d id bits (oracle %d), entropy \
       %.3f (oracle %.3f), max depth %d@."
      r.Churn.stamp_id_width r.Churn.stamp_id_bits r.Churn.oracle_bits
      r.Churn.entropy r.Churn.oracle_entropy r.Churn.stamp_max_depth;
    Format.printf
      "  reclamation: %d bits reclaimed of %d forked, reduce \
       effectiveness %.3f@."
      r.Churn.reclaimed_bits r.Churn.fork_bits r.Churn.reduce_effectiveness;
    Format.printf
      "  dynamic vv: %d entries (%d retired baggage, peak %d), %d size \
       bits, gc dropped %d@."
      r.Churn.dvv_entries r.Churn.dvv_retired_entries
      r.Churn.dvv_peak_retired_entries r.Churn.dvv_size_bits
      r.Churn.dvv_gc_dropped;
    Format.printf "  relation mismatches: %d@." r.Churn.relation_mismatches;
    if r.Churn.audit_clean then
      Format.printf "  audit: clean (%d replicas, %d fragments audited)@."
        audit.Obs_id.audited audit.Obs_id.audit_fragments
    else begin
      Format.printf "  audit: %d violation(s)@."
        (List.length audit.Obs_id.violations);
      List.iter
        (fun v -> Format.printf "    %a@." Obs_id.pp_violation v)
        audit.Obs_id.violations
    end
  end;
  if not r.Churn.audit_clean then exit 3

(* Live mode: render the /idspace.json view of a soaking process. *)
let churn_live host port timeout_s retries json =
  match fetch_json ~retries ~timeout_s ~host ~port "/idspace.json" with
  | Error m -> die "%s" m
  | Ok j ->
      if json then print_endline (Jx.to_string j)
      else begin
        let obj name =
          match Jx.member name j with Some (Jx.Obj kvs) -> kvs | _ -> []
        in
        let num name =
          match Option.bind (Jx.member name j) Jx.to_float with
          | Some f -> Printf.sprintf "%g" f
          | None -> "-"
        in
        Format.printf "churn: live http://%s:%d/idspace.json@." host port;
        let fields label kvs =
          Format.printf "  %s:%s@." label
            (if kvs = [] then " (none — has the soak run with --churn?)"
             else
               String.concat ""
                 (List.map
                    (fun (k, v) ->
                      Printf.sprintf " %s=%s" k
                        (match Jx.to_float v with
                        | Some f -> Printf.sprintf "%g" f
                        | None -> "-"))
                    kvs))
        in
        fields "identity space" (obj "idspace");
        fields "ops" (obj "ops");
        Format.printf "  reclaimed bits: %s, fork bits: %s@."
          (num "reclaimed_bits_total") (num "fork_bits_total")
      end

let churn_cmd =
  let host =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"HOST" ~doc:"Server address (live mode)")
  in
  let port =
    Arg.(
      value
      & opt (some int) None
      & info [ "p"; "port" ] ~docv:"PORT"
          ~doc:
            "Render the /idspace.json view of a live soak on PORT \
             instead of running the simulation")
  in
  let replicas =
    Arg.(
      value & opt int 4
      & info [ "replicas" ] ~docv:"N" ~doc:"Initial population (>= 1)")
  in
  let min_replicas =
    Arg.(
      value & opt int 2
      & info [ "min-replicas" ] ~docv:"N"
          ~doc:"Retires stop at this population floor")
  in
  let max_replicas =
    Arg.(
      value & opt int 16
      & info [ "max-replicas" ] ~docv:"N"
          ~doc:"Forks stop at this population ceiling")
  in
  let rounds =
    Arg.(
      value & opt int 16 & info [ "rounds" ] ~docv:"N" ~doc:"Scenario rounds")
  in
  let p_update =
    Arg.(
      value & opt float 0.5
      & info [ "p-update" ] ~docv:"P"
          ~doc:"Per-replica write probability per round")
  in
  let syncs_per_round =
    Arg.(
      value & opt int 2
      & info [ "syncs-per-round" ] ~docv:"N"
          ~doc:"Sync attempts per round (the weather may block them)")
  in
  let churn_rate =
    Arg.(
      value & opt float 1.0
      & info [ "churn-rate" ] ~docv:"RATE"
          ~doc:
            "Expected forks per round, and independently expected \
             retire attempts per round.  Forks are autonomous (never \
             weather-blocked — the paper's point); retires need \
             connectivity")
  in
  let gc_every =
    Arg.(
      value & opt int 1
      & info [ "gc-every" ] ~docv:"N"
          ~doc:"Dynamic-VV gc sweep cadence, in rounds")
  in
  let severity =
    Arg.(
      value & opt float 0.4
      & info [ "severity" ] ~docv:"S"
          ~doc:"Partition-weather severity in [0, 1]")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"Seed")
  in
  let epoch =
    Arg.(
      value & opt int 4
      & info [ "epoch" ] ~docv:"N" ~doc:"Weather epoch length, in rounds")
  in
  let inject_corruption =
    Arg.(
      value
      & opt (some int) None
      & info [ "inject-corruption" ] ~docv:"ROUND"
          ~doc:
            "Fault injection: at ROUND, corrupt one live replica's \
             fragment inventory so the partition-of-unity audit must \
             produce an overlap witness (and the command exit 3) — \
             proof the auditor is actually wired in")
  in
  let dot_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"FILE"
          ~doc:
            "Write the genealogy DAG as Graphviz DOT to FILE (- for \
             stdout): live nodes bold, consumed nodes grey, retire \
             edges dashed")
  in
  let genealogy_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "genealogy" ] ~docv:"FILE"
          ~doc:
            "Write the full genealogy export (vstamp-idspace/1 JSON: \
             every incarnation with lineage and fragment, stats and the \
             audit) to FILE (- for stdout)")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable output")
  in
  let timeout =
    Arg.(
      value & opt float 5.0
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Socket timeout for the live fetch")
  in
  let retry = retry_arg in
  let wrap host port timeout retry replicas min_replicas max_replicas rounds
      p_update syncs_per_round churn_rate gc_every severity seed epoch
      inject_corruption dot_out genealogy_out json =
    if retry < 0 then die "--retry needs a non-negative count";
    match port with
    | Some p -> churn_live host p timeout retry json
    | None ->
        churn_sim replicas min_replicas max_replicas rounds p_update
          syncs_per_round churn_rate gc_every severity seed epoch
          inject_corruption dot_out genealogy_out json
  in
  Cmd.v
    (Cmd.info "churn"
       ~doc:
         "Identity-space observatory: run the replica-churn scenario \
          (high-rate autonomous fork / weather-gated retire, a lockstep \
          dynamic-VV lane) and render fragmentation analytics, id-digit \
          reclamation vs the oracle minimum, the dynamic-VV retired- \
          entry baggage comparison and the partition-of-unity audit \
          (exit 3 on a violation); --dot/--genealogy export the lineage \
          DAG; or, with --port, render the live /idspace.json view of a \
          soaking process")
    Term.(
      const wrap $ host $ port $ timeout $ retry $ replicas $ min_replicas
      $ max_replicas $ rounds $ p_update $ syncs_per_round $ churn_rate
      $ gc_every $ severity $ seed $ epoch $ inject_corruption $ dot_out
      $ genealogy_out $ json)

(* --- report: markdown soak post-mortem --- *)

module Obs_tsdb = Vstamp_obs.Tsdb
module Obs_alert = Vstamp_obs.Alert

(* One recorded series, uniform across the live (/range.json) and dump
   (--dump) sources: buckets of (t, min, max, avg, last, count). *)
type report_series = {
  rs_name : string;
  rs_kind : string;
  rs_points : (float * float * float * float * float * int) list;
}

let report_points_of_json j =
  match Jx.member "points" j with
  | Some (Jx.List pts) ->
      List.filter_map
        (fun p ->
          let f k = Option.bind (Jx.member k p) Jx.to_float in
          let i k = Option.bind (Jx.member k p) Jx.to_int in
          match (f "t", f "min", f "max", f "avg", f "last", i "count") with
          | Some t, Some mn, Some mx, Some avg, Some last, Some n ->
              Some (t, mn, mx, avg, last, n)
          | _ -> None)
        pts
  | _ -> []

let report_series_live ~host ~port ~timeout_s ~retries ~window_s ~step_s =
  let fetch_json ~host ~port path =
    fetch_json ~retries ~timeout_s ~host ~port path
  in
  let index =
    match fetch_json ~host ~port "/range.json" with
    | Ok j -> j
    | Error m -> die "%s" m
  in
  let metrics =
    match Jx.member "metrics" index with
    | Some (Jx.List ms) -> List.filter_map Jx.to_str ms
    | _ -> die "GET /range.json: no metrics index in response"
  in
  let series =
    List.filter_map
      (fun metric ->
        match
          fetch_json ~host ~port
            (Printf.sprintf "/range.json?from=-%g&step=%g&metric=%s" window_s
               step_s metric)
        with
        | Error _ -> None
        | Ok j -> (
            match report_points_of_json j with
            | [] -> None
            | points ->
                let kind =
                  match Option.bind (Jx.member "kind" j) Jx.to_str with
                  | Some k -> k
                  | None -> "?"
                in
                Some { rs_name = metric; rs_kind = kind; rs_points = points }))
      metrics
  in
  let alerts =
    match fetch_json ~host ~port "/alerts.json" with
    | Ok j -> Some j
    | Error _ -> None
  in
  (series, alerts)

let report_series_dump ~file ~window_s ~step_s =
  let json =
    match read_file file with
    | Error (`Msg m) -> die "%s: %s" file m
    | Ok text -> (
        match Jx.of_string (String.trim text) with
        | Ok j -> j
        | Error m -> die "%s: bad JSON: %s" file m)
  in
  match Obs_tsdb.of_json json with
  | Error m -> die "%s: %s" file m
  | Ok (tsdb, alerts) ->
      let series =
        match Obs_tsdb.time_bounds tsdb with
        | None -> []
        | Some (lo, hi) ->
            let from_s =
              if window_s > 0.0 then Stdlib.max lo (hi -. window_s) else lo
            in
            let to_s = hi +. 1e-6 in
            let step_s =
              if step_s > 0.0 then step_s
              else Stdlib.max 1e-9 ((to_s -. from_s) /. 60.0)
            in
            List.filter_map
              (fun name ->
                match
                  Obs_tsdb.query tsdb ~metric:name ~from_s ~to_s ~step_s
                with
                | [] -> None
                | points ->
                    let kind =
                      match Obs_tsdb.series_kind tsdb name with
                      | Some Obs_tsdb.Counter -> "counter"
                      | Some Obs_tsdb.Gauge -> "gauge"
                      | Some Obs_tsdb.Histogram -> "histogram"
                      | None -> "?"
                    in
                    Some
                      {
                        rs_name = name;
                        rs_kind = kind;
                        rs_points =
                          List.map
                            (fun p ->
                              ( p.Obs_tsdb.t_s,
                                p.Obs_tsdb.min,
                                p.Obs_tsdb.max,
                                (if p.Obs_tsdb.count = 0 then 0.0
                                 else
                                   p.Obs_tsdb.sum
                                   /. float_of_int p.Obs_tsdb.count),
                                p.Obs_tsdb.last,
                                p.Obs_tsdb.count ))
                            points;
                      })
              (Obs_tsdb.names tsdb)
      in
      (series, alerts)

let report_percentile sorted q =
  match Array.length sorted with
  | 0 -> 0.0
  | n ->
      let idx = int_of_float (Float.round (q *. float_of_int (n - 1))) in
      sorted.(Stdlib.max 0 (Stdlib.min (n - 1) idx))

let report_time t =
  let tm = Unix.gmtime t in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let report_num f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.4g" f

(* The post-mortem document: summary, alert timeline, GC summary, then
   a sparkline block and percentile table per recorded metric. *)
let render_report ~source ~series ~alerts =
  let buf = Buffer.create 8192 in
  let out fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s) fmt in
  out "# vstamp soak post-mortem\n\n";
  out "- source: %s\n" source;
  let bounds =
    List.concat_map
      (fun rs -> List.map (fun (t, _, _, _, _, _) -> t) rs.rs_points)
      series
  in
  (match bounds with
  | [] -> out "- window: (no recorded samples)\n"
  | ts ->
      let lo = List.fold_left Float.min infinity ts in
      let hi = List.fold_left Float.max neg_infinity ts in
      out "- window: %s → %s (%.1f s)\n" (report_time lo) (report_time hi)
        (hi -. lo));
  out "- series recorded: %d\n\n" (List.length series);
  (* alerts *)
  out "## Alerts\n\n";
  (match Option.bind alerts (Jx.member "rules") with
  | Some (Jx.List (_ :: _ as rules)) ->
      out "| rule | state | condition | value |\n";
      out "|---|---|---|---|\n";
      List.iter
        (fun r ->
          let str k =
            Option.value ~default:"-"
              (Option.bind (Jx.member k r) Jx.to_str)
          in
          let value =
            match Option.bind (Jx.member "value" r) Jx.to_float with
            | Some v -> report_num v
            | None -> "-"
          in
          out "| %s | %s | `%s` | %s |\n" (str "name") (str "state")
            (str "rule") value)
        rules
  | _ -> out "No alert rules were loaded.\n");
  (match Option.bind alerts (Jx.member "transitions") with
  | Some (Jx.List (_ :: _ as trs)) ->
      out "\n### Timeline\n\n";
      out "| time | rule | transition |\n";
      out "|---|---|---|\n";
      List.iter
        (fun tr ->
          let t =
            match Option.bind (Jx.member "t_s" tr) Jx.to_float with
            | Some t -> report_time t
            | None -> "-"
          in
          let str k =
            Option.value ~default:"-"
              (Option.bind (Jx.member k tr) Jx.to_str)
          in
          out "| %s | %s | %s |\n" t (str "rule") (str "to"))
        trs
  | _ -> ());
  out "\n";
  (* GC summary *)
  let stats_of rs =
    let avgs =
      Array.of_list (List.map (fun (_, _, _, a, _, _) -> a) rs.rs_points)
    in
    Array.sort compare avgs;
    let mins = List.map (fun (_, m, _, _, _, _) -> m) rs.rs_points in
    let maxs = List.map (fun (_, _, m, _, _, _) -> m) rs.rs_points in
    let n = List.fold_left (fun a (_, _, _, _, _, c) -> a + c) 0 rs.rs_points in
    let weighted_sum =
      List.fold_left
        (fun a (_, _, _, avg, _, c) -> a +. (avg *. float_of_int c))
        0.0 rs.rs_points
    in
    let last =
      match List.rev rs.rs_points with
      | (_, _, _, _, l, _) :: _ -> l
      | [] -> 0.0
    in
    ( n,
      List.fold_left Float.min infinity mins,
      (if n = 0 then 0.0 else weighted_sum /. float_of_int n),
      report_percentile avgs 0.5,
      report_percentile avgs 0.95,
      List.fold_left Float.max neg_infinity maxs,
      last )
  in
  let runtime_series =
    List.filter
      (fun rs -> String.starts_with ~prefix:"runtime_" rs.rs_name)
      series
  in
  out "## Runtime / GC\n\n";
  (match runtime_series with
  | [] -> out "No runtime telemetry was recorded.\n\n"
  | rts ->
      out "| metric | last | min | mean | max |\n";
      out "|---|---|---|---|---|\n";
      List.iter
        (fun rs ->
          let _, mn, mean, _, _, mx, last = stats_of rs in
          out "| `%s` | %s | %s | %s | %s |\n" rs.rs_name (report_num last)
            (report_num mn) (report_num mean) (report_num mx))
        rts;
      out "\n");
  (* per-metric blocks *)
  out "## Metrics\n\n";
  List.iter
    (fun rs ->
      out "### `%s` (%s)\n\n" rs.rs_name rs.rs_kind;
      let avgs = List.map (fun (_, _, _, a, _, _) -> a) rs.rs_points in
      out "```\n%s\n```\n\n" (Vstamp_obs.Dash.sparkline ~width:60 avgs);
      let n, mn, mean, p50, p95, mx, last = stats_of rs in
      out "| samples | min | mean | p50 | p95 | max | last |\n";
      out "|---|---|---|---|---|---|---|\n";
      out "| %d | %s | %s | %s | %s | %s | %s |\n\n" n (report_num mn)
        (report_num mean) (report_num p50) (report_num p95) (report_num mx)
        (report_num last))
    series;
  Buffer.contents buf

(* Cluster mode: a cross-node post-mortem from a `soak --cluster`
   artifact directory — merge every node's span log into one
   stamp-ordered timeline, validate it against the wall clocks, and
   summarize each worker's flight-recorder dump. *)
let report_cluster dir output =
  let entries =
    match Sys.readdir dir with
    | files -> List.sort compare (Array.to_list files)
    | exception Sys_error m -> die "--cluster %s: %s" dir m
  in
  let span_files =
    List.filter (fun f -> Filename.check_suffix f ".spans.jsonl") entries
  in
  if span_files = [] then die "--cluster %s: no *.spans.jsonl span logs" dir;
  let spans =
    List.concat_map
      (fun f ->
        match Tmerge.load_file (Filename.concat dir f) with
        | Ok sps -> sps
        | Error m -> die "%s" m)
      span_files
  in
  let merged = Tmerge.merge ~leq:stamp_label_leq spans in
  let rep = Tmerge.validate ~leq:stamp_label_leq spans in
  let buf = Buffer.create 8192 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "# vstamp cluster post-mortem\n\n";
  out "- source: `%s` (%d span logs)\n" dir (List.length span_files);
  out "- spans: %d over %d nodes (%s), %d carrying stamp labels\n"
    rep.Tmerge.rp_spans
    (List.length rep.Tmerge.rp_nodes)
    (String.concat ", " rep.Tmerge.rp_nodes)
    rep.Tmerge.rp_stamped;
  out "- stamp-ordered pairs: %d (%d cross-node — the orderings wall \
       clocks could not justify)\n"
    rep.Tmerge.rp_ordered_pairs rep.Tmerge.rp_cross_node_ordered_pairs;
  out "- contradictions (wall clock vs stamp order): %d\n\n"
    (List.length rep.Tmerge.rp_contradictions);
  (match rep.Tmerge.rp_contradictions with
  | [] -> ()
  | prs ->
      out "## Contradictions\n\n";
      out "| stamp-before | wall-before |\n|---|---|\n";
      List.iter
        (fun (a, b) ->
          out "| %s/%s | %s/%s |\n" a.Tr.sp_node a.Tr.sp_name b.Tr.sp_node
            b.Tr.sp_name)
        prs;
      out "\n");
  out "## Merged timeline (stamp order)\n\n";
  out "| seq | node | span | stamp | ms |\n|---|---|---|---|---|\n";
  let shown = 40 in
  List.iteri
    (fun i sp ->
      if i < shown then
        out "| %d | %s | %s | %s | %.3f |\n" i sp.Tr.sp_node sp.Tr.sp_name
          (match sp.Tr.sp_stamp with
          | Some s -> Printf.sprintf "`%s`" s
          | None -> "-")
          (Int64.to_float (Int64.sub sp.Tr.sp_end_ns sp.Tr.sp_start_ns)
          /. 1e6))
    merged;
  if List.length merged > shown then
    out "\n… %d more spans (full trace: `%s`)\n"
      (List.length merged - shown)
      (Filename.concat dir "trace.chrome.json");
  out "\n## Workers\n\n";
  let tsdbs =
    List.filter (fun f -> Filename.check_suffix f ".tsdb.json") entries
  in
  if tsdbs = [] then out "No per-worker flight-recorder dumps found.\n"
  else begin
    out "| worker | recorded series | window (s) |\n|---|---|---|\n";
    List.iter
      (fun f ->
        let name = Filename.chop_suffix f ".tsdb.json" in
        match read_file (Filename.concat dir f) with
        | Error (`Msg m) -> out "| `%s` | (unreadable: %s) | - |\n" name m
        | Ok text -> (
            match Jx.of_string (String.trim text) with
            | Error m -> out "| `%s` | (bad JSON: %s) | - |\n" name m
            | Ok j -> (
                match Obs_tsdb.of_json j with
                | Error m -> out "| `%s` | (%s) | - |\n" name m
                | Ok (tsdb, _) ->
                    let window =
                      match Obs_tsdb.time_bounds tsdb with
                      | Some (lo, hi) -> Printf.sprintf "%.1f" (hi -. lo)
                      | None -> "-"
                    in
                    out "| `%s` | %d | %s |\n" name
                      (List.length (Obs_tsdb.names tsdb))
                      window)))
      tsdbs
  end;
  write_data output (Buffer.contents buf)

let report host port timeout_s retries dump cluster output window step =
  if retries < 0 then die "--retry needs a non-negative count";
  match cluster with
  | Some dir ->
      if port <> None || dump <> None then
        die "--cluster is its own source; drop --port/--dump";
      report_cluster dir output
  | None ->
      let window_s =
        match Obs_alert.duration_of_string window with
        | Ok s -> s
        | Error m -> die "--window: %s" m
      in
      let series, alerts =
        match (port, dump) with
        | Some _, Some _ ->
            die "use either --port (live) or --dump (file), not both"
        | Some port, None ->
            let step_s =
              if step > 0.0 then step else Stdlib.max 0.001 (window_s /. 60.0)
            in
            report_series_live ~host ~port ~timeout_s ~retries ~window_s
              ~step_s
        | None, Some file -> report_series_dump ~file ~window_s ~step_s:step
        | None, None ->
            die
              "need a source: --port for a live soak, --dump for a tsdb \
               dump, --cluster for a cluster directory"
      in
      let source =
        match (port, dump) with
        | Some port, _ -> Printf.sprintf "live soak at http://%s:%d" host port
        | _, Some file -> Printf.sprintf "tsdb dump `%s`" file
        | _ -> assert false
      in
      write_data output (render_report ~source ~series ~alerts)

let report_cmd =
  let host =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"HOST" ~doc:"Server address (live mode)")
  in
  let port =
    Arg.(
      value
      & opt (some int) None
      & info [ "p"; "port" ] ~docv:"PORT"
          ~doc:"Read the history from a live soak's /range.json")
  in
  let dump =
    Arg.(
      value
      & opt (some string) None
      & info [ "dump" ] ~docv:"FILE"
          ~doc:"Read the history from a `vstamp soak --tsdb-out` dump")
  in
  let cluster =
    Arg.(
      value
      & opt (some string) None
      & info [ "cluster" ] ~docv:"DIR"
          ~doc:
            "Render a cross-node post-mortem from a `soak --cluster` \
             artifact directory: the stamp-ordered merged timeline, the \
             causal-ordering validation and per-worker summaries")
  in
  let timeout =
    Arg.(
      value & opt float 5.0
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Socket timeout per live fetch")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Write the markdown here (default stdout)")
  in
  let window =
    Arg.(
      value & opt string "10m"
      & info [ "window" ] ~docv:"DURATION"
          ~doc:"How far back to report (e.g. 90s, 10m, 2h)")
  in
  let step =
    Arg.(
      value & opt float 0.0
      & info [ "step" ] ~docv:"SECONDS"
          ~doc:"Bucket width (default: window/60)")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Render a markdown soak post-mortem — alert timeline, GC \
          summary, and a sparkline block plus percentile table per \
          recorded metric — from a live soak's /range.json and \
          /alerts.json or from a --tsdb-out dump file; or, with \
          --cluster DIR, a cross-node post-mortem with the \
          stamp-ordered merged trace")
    Term.(
      const report $ host $ port $ timeout $ retry_arg $ dump $ cluster
      $ output $ window $ step)

(* --- serve: a networked anti-entropy node --- *)

(* One real replica on the network: a Stamped_kv store served over the
   vstamp-sync/1 framed protocol (lib/net), converging with its peers
   through periodic anti-entropy rounds, with the HTTP observability
   plane (/metrics, /healthz, /stats.json, /peers.json) embedded. *)
let serve sync_port http_port addr peers node_id backend_key interval
    duration puts port_file quiet =
  if interval <= 0.0 then die "--interval needs a positive cadence";
  if duration < 0.0 then die "--duration needs a non-negative duration";
  let backend_key = Option.value ~default:Backend.default_key backend_key in
  (match Backend.find backend_key with
  | Some _ -> ()
  | None ->
      die "unknown backend %S (valid: %s)" backend_key
        (String.concat ", " (Backend.keys ())));
  let peers = List.map (parse_hostport ~flag:"--peer") peers in
  let puts =
    List.map
      (fun spec ->
        match String.index_opt spec '=' with
        | Some i ->
            ( String.sub spec 0 i,
              String.sub spec (i + 1) (String.length spec - i - 1) )
        | None -> die "--put %s: expected KEY=VALUE" spec)
      puts
  in
  let node_id =
    match node_id with
    | Some id -> id
    | None -> Printf.sprintf "%s-%d" (Unix.gethostname ()) (Unix.getpid ())
  in
  let registry = Obs_registry.create () in
  let module B = (val Backend.get backend_key) in
  let module N = Vstamp_net.Node.Make (B) in
  let node =
    try
      N.create ~registry ~interval_s:interval ~addr ~node_id
        ~backend:backend_key ~port:sync_port ~peers ()
    with Unix.Unix_error (e, _, _) ->
      die "cannot bind %s:%d: %s" addr sync_port (Unix.error_message e)
  in
  List.iter (fun (key, value) -> N.put node ~key value) puts;
  let health () =
    [
      ("node_id", Jx.String node_id);
      ("sync_port", Jx.Int (N.port node));
      ("store_keys", Jx.Int (List.length (N.keys node)));
    ]
  in
  let srv =
    try
      HE.create ~registry ~health
        ~peers:(fun () -> N.peers_json node)
        ~addr ~port:http_port ()
    with Unix.Unix_error (e, _, _) ->
      N.stop node;
      die "cannot bind %s:%d: %s" addr http_port (Unix.error_message e)
  in
  (* two lines: the sync port, then the HTTP port — scripts race-free
     against ephemeral (--port 0) binds *)
  (match port_file with
  | Some file ->
      write_data (Some file)
        (Printf.sprintf "%d\n%d\n" (N.port node) (HE.port srv))
  | None -> ());
  if not quiet then
    Format.printf
      "serve: node %s syncing on %s:%d (%d peer%s, every %gs), http on \
       http://%s:%d (/metrics /healthz /stats.json /peers.json) — \
       SIGINT/SIGTERM for graceful shutdown@."
      node_id addr (N.port node) (List.length peers)
      (if List.length peers = 1 then "" else "s")
      interval addr (HE.port srv);
  let stop = ref false in
  let on_signal _ = stop := true in
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  N.start_dialers node;
  let t0 = Unix.gettimeofday () in
  while
    (not !stop) && (duration = 0.0 || Unix.gettimeofday () -. t0 < duration)
  do
    Thread.delay 0.1
  done;
  N.stop node;
  HE.stop srv;
  if not quiet then
    Format.printf "serve: node %s stopped (%d keys)@." node_id
      (List.length (N.keys node))

let serve_cmd =
  let sync_port =
    Arg.(
      value & opt int 9470
      & info [ "p"; "port" ] ~docv:"PORT"
          ~doc:"TCP port for the vstamp-sync/1 protocol (0 for ephemeral)")
  in
  let http_port =
    Arg.(
      value & opt int 9464
      & info [ "http-port" ] ~docv:"PORT"
          ~doc:"Port for the embedded HTTP plane (0 for ephemeral)")
  in
  let addr =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "addr" ] ~docv:"ADDR" ~doc:"Bind address for both planes")
  in
  let peers =
    Arg.(
      value & opt_all string []
      & info [ "peer" ] ~docv:"HOST:PORT"
          ~doc:
            "A peer's sync endpoint; repeatable.  Each peer gets its own \
             dial thread running an anti-entropy round every --interval, \
             reconnecting with exponential backoff (0.2s doubling, capped \
             at 5s) when the peer is down")
  in
  let node_id =
    Arg.(
      value
      & opt (some string) None
      & info [ "node-id" ] ~docv:"ID"
          ~doc:"Node id for the handshake (default: hostname-pid)")
  in
  let interval =
    Arg.(
      value & opt float 1.0
      & info [ "interval" ] ~docv:"SECONDS"
          ~doc:"Anti-entropy round cadence per peer")
  in
  let duration =
    Arg.(
      value & opt float 0.0
      & info [ "duration" ] ~docv:"SECONDS"
          ~doc:"Stop after this long (0 = run until signalled)")
  in
  let puts =
    Arg.(
      value & opt_all string []
      & info [ "put" ] ~docv:"KEY=VALUE"
          ~doc:"Seed the store with a write before syncing; repeatable")
  in
  let port_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "port-file" ] ~docv:"FILE"
          ~doc:
            "Write the bound ports (sync then HTTP, one per line) to \
             FILE once listening — for scripts using ephemeral ports")
  in
  let quiet =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No startup banner")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run a networked anti-entropy node: a stamped key-value replica \
          speaking the framed vstamp-sync/1 protocol on TCP, converging \
          with its --peer nodes through periodic engine sessions \
          (frontier offer, delta request, reconcile), with /metrics, \
          /healthz, /stats.json and /peers.json served per node")
    Term.(
      const serve $ sync_port $ http_port $ addr $ peers $ node_id
      $ backend_arg $ interval $ duration $ puts $ port_file $ quiet)

(* --- main --- *)

let main_cmd =
  Cmd.group
    (Cmd.info "vstamp" ~version:"1.0.0"
       ~doc:
         "Version stamps: decentralized version vectors (Almeida, Baquero, \
          Fonte; ICDCS 2002)")
    [
      figures_cmd;
      relate_cmd;
      update_cmd;
      fork_cmd;
      join_cmd;
      reduce_cmd;
      simulate_cmd;
      compare_cmd;
      metrics_cmd;
      bench_cmd;
      soak_cmd;
      serve_cmd;
      top_cmd;
      scrape_cmd;
      lag_cmd;
      churn_cmd;
      report_cmd;
      profile_cmd;
      gen_trace_cmd;
      trace_cmd;
      draw_cmd;
      frontier_cmd;
      encode_cmd;
      decode_cmd;
    ]

let () =
  (* the CLI links unix, so spans get a real wall clock instead of the
     dependency-free Sys.time default *)
  Vstamp_obs.Clock.set_source Unix.gettimeofday;
  exit (Cmd.eval main_cmd)
