(* panasync — dependency tracking among file copies, on real directories.

   A reimplementation of the workflow of the authors' PANASYNC project:
   directories are replicas, `sync` reconciles two of them using version
   stamps persisted next to the data, and only genuinely concurrent edits
   surface as conflicts. *)

open Cmdliner
open Vstamp_panasync

let or_die = function
  | Ok v -> v
  | Error e ->
      Format.eprintf "panasync: %a@." Fs_store.pp_error e;
      exit 1

let load dir = or_die (Fs_store.load ~dir ~name:dir)

let save dir store = or_die (Fs_store.save ~dir store)

(* --- init --- *)

let init dir =
  save dir (Store.create ~name:dir);
  Format.printf "initialized empty store in %s@." dir

let dir_arg p doc = Arg.(required & pos p (some string) None & info [] ~docv:"DIR" ~doc)

let init_cmd =
  Cmd.v
    (Cmd.info "init" ~doc:"Create an empty store directory")
    Term.(const init $ dir_arg 0 "store directory")

(* --- add / edit --- *)

let add dir path content =
  let store = load dir in
  let store =
    if Store.mem store path then Store.edit store ~path ~content
    else Store.add_new store ~path ~content
  in
  save dir store;
  Format.printf "%s: wrote %s@." dir path

let add_cmd =
  let path = Arg.(required & pos 1 (some string) None & info [] ~docv:"FILE") in
  let content =
    Arg.(required & pos 2 (some string) None & info [] ~docv:"CONTENT")
  in
  Cmd.v
    (Cmd.info "write"
       ~doc:"Create or edit FILE in the store with the given CONTENT")
    Term.(const add $ dir_arg 0 "store directory" $ path $ content)

(* --- show --- *)

let show dir =
  let store = load dir in
  Format.printf "%a" Store.pp store;
  Format.printf "tracking overhead: %d bits@." (Store.total_tracking_bits store)

let show_cmd =
  Cmd.v
    (Cmd.info "show" ~doc:"List files with their stamps")
    Term.(const show $ dir_arg 0 "store directory")

(* --- status: compare two stores without modifying them --- *)

let status dir_a dir_b =
  let a = load dir_a and b = load dir_b in
  let paths = List.sort_uniq compare (Store.paths a @ Store.paths b) in
  List.iter
    (fun path ->
      match (Store.find a path, Store.find b path) with
      | Some ca, Some cb ->
          Format.printf "%-24s %s@." path
            (Vstamp_core.Relation.to_paper_string (File_copy.relation ca cb))
      | Some _, None -> Format.printf "%-24s only in %s@." path dir_a
      | None, Some _ -> Format.printf "%-24s only in %s@." path dir_b
      | None, None -> ())
    paths

let status_cmd =
  Cmd.v
    (Cmd.info "status" ~doc:"Classify every file across two stores")
    Term.(const status $ dir_arg 0 "first store" $ dir_arg 1 "second store")

(* --- sync --- *)

let policy_conv =
  let parse = function
    | "manual" -> Ok Sync.Manual
    | "left" -> Ok Sync.Prefer_left
    | "right" -> Ok Sync.Prefer_right
    | "concat" ->
        Ok
          (Sync.Merge
             (fun ~left ~right ->
               left ^ "\n<<<<<<< concurrent >>>>>>>\n" ^ right))
    | s -> Error (`Msg (Printf.sprintf "unknown policy %S" s))
  in
  let print ppf _ = Format.pp_print_string ppf "<policy>" in
  Arg.conv (parse, print)

let sync_session dir_a dir_b policy =
  let a = load dir_a and b = load dir_b in
  let a, b, reports = Sync.session ~policy a b in
  List.iter (fun r -> Format.printf "%a@." Sync.pp_report r) reports;
  save dir_a a;
  save dir_b b;
  let conflicts = List.length (Sync.conflicts reports) in
  (if conflicts = 0 then Format.printf "synchronized: stores converged@."
   else
     Format.printf
       "%d conflict(s) left in place; re-run with --policy left|right|concat@."
       conflicts);
  conflicts

let sync dir_a dir_b policy =
  if sync_session dir_a dir_b policy > 0 then exit 3

let sync_cmd =
  let policy =
    Arg.(
      value
      & opt policy_conv Sync.Manual
      & info [ "p"; "policy" ] ~docv:"POLICY"
          ~doc:"Conflict policy: manual (default), left, right, concat")
  in
  Cmd.v
    (Cmd.info "sync"
       ~doc:"Synchronize two store directories (offline, peer-to-peer)")
    Term.(const sync $ dir_arg 0 "first store" $ dir_arg 1 "second store" $ policy)

(* --- demo: the three-device story on temp directories --- *)

let demo () =
  let root = Filename.temp_file "panasync" "" in
  Sys.remove root;
  Sys.mkdir root 0o755;
  let laptop = Filename.concat root "laptop"
  and phone = Filename.concat root "phone"
  and tablet = Filename.concat root "tablet" in
  Format.printf "demo directories under %s@.@." root;
  init laptop;
  init phone;
  init tablet;
  add laptop "notes.txt" "v1 from laptop";
  Format.printf "@.-- laptop -> phone --@.";
  ignore (sync_session laptop phone Sync.Manual);
  Format.printf "@.-- phone -> tablet (laptop offline) --@.";
  ignore (sync_session phone tablet Sync.Manual);
  add tablet "notes.txt" "v2 from tablet";
  add laptop "notes.txt" "v2 from laptop";
  Format.printf "@.-- tablet -> phone: fast-forward, no conflict --@.";
  ignore (sync_session tablet phone Sync.Manual);
  Format.printf "@.-- phone -> laptop: the true conflict surfaces --@.";
  ignore (sync_session phone laptop Sync.Manual);
  Format.printf "@.-- resolve with --policy concat --@.";
  ignore
    (sync_session phone laptop
       (Sync.Merge
          (fun ~left ~right -> left ^ "\n<<<<<<< concurrent >>>>>>>\n" ^ right)));
  Format.printf "@.final state of the laptop store:@.";
  show laptop

let demo_cmd =
  Cmd.v
    (Cmd.info "demo" ~doc:"Run the three-device story on temp directories")
    Term.(const demo $ const ())

let main =
  Cmd.group
    (Cmd.info "panasync" ~version:"1.0.0"
       ~doc:
         "Dependency tracking among file copies with version stamps \
          (after the PANASYNC project)")
    [ init_cmd; add_cmd; show_cmd; status_cmd; sync_cmd; demo_cmd ]

let () = exit (Cmd.eval main)
