#!/bin/sh
# Live-telemetry smoke: start a soaking process on an ephemeral port,
# scrape every endpoint while the workload is running, check the
# payloads are well-formed, then verify graceful SIGTERM shutdown
# (final checkpoint appended, event log flushed, port released).
# Wired to the @serve-smoke dune alias (see the root dune file); not
# part of @runtest so the tier-1 suite stays fast.
set -eu

VSTAMP="$1"
tmpdir=$(mktemp -d)
soak_pid=""
cleanup() {
  [ -n "$soak_pid" ] && kill "$soak_pid" 2>/dev/null || true
  rm -rf "$tmpdir"
}
trap cleanup EXIT

"$VSTAMP" soak --port 0 --port-file "$tmpdir/port" --quiet \
  --ops 150 --checkpoint-every 10 \
  --history "$tmpdir/hist.jsonl" --events-out "$tmpdir/events.jsonl" &
soak_pid=$!

# wait for the server to come up (the port file is written post-bind)
i=0
while [ ! -s "$tmpdir/port" ]; do
  i=$((i + 1))
  [ "$i" -gt 50 ] && { echo "soak never bound a port" >&2; exit 1; }
  sleep 0.1
done
port=$(cat "$tmpdir/port")

scrape() { "$VSTAMP" scrape --port "$port" "$1"; }

# /metrics: Prometheus text with TYPE headers and the live counters
scrape /metrics > "$tmpdir/metrics"
grep -q '^# TYPE soak_iterations_total counter' "$tmpdir/metrics"
grep -q '^kvs_ops_total{op="put"} ' "$tmpdir/metrics"
grep -q '^sync_rounds_total ' "$tmpdir/metrics"

# concurrent scrapes while the workload keeps running
pids=""
for i in 1 2 3 4; do
  scrape /metrics > "$tmpdir/m$i" &
  pids="$pids $!"
done
for p in $pids; do wait "$p"; done
for i in 1 2 3 4; do
  grep -q '^# TYPE' "$tmpdir/m$i"
done

# /healthz and /stats.json: well-formed JSON with the expected fields
scrape /healthz > "$tmpdir/healthz"
grep -q '"status":"ok"' "$tmpdir/healthz"
grep -q '"last_step":' "$tmpdir/healthz"
scrape /stats.json > "$tmpdir/stats"
grep -q '"soak_iterations_total":' "$tmpdir/stats"

# /events.json: a JSON array of recent events
scrape '/events.json?n=5' > "$tmpdir/events"
grep -q '"event":' "$tmpdir/events"

# vstamp top renders a frame off two live snapshots
"$VSTAMP" top --port "$port" --once --interval 0.3 --no-color \
  > "$tmpdir/frame"
grep -q 'vstamp top' "$tmpdir/frame"
grep -q 'rates (counters, per second)' "$tmpdir/frame"

# graceful shutdown: SIGTERM, then the final checkpoint must be in the
# ledger, the event log flushed, and the port closed
kill -TERM "$soak_pid"
wait "$soak_pid" || true
soak_pid=""
grep -q '"final":true' "$tmpdir/hist.jsonl"
tail -n 1 "$tmpdir/events.jsonl" | grep -q '"event":'
if scrape /healthz >/dev/null 2>&1; then
  echo "server still answering after shutdown" >&2
  exit 1
fi

echo "serve smoke ok"
