#!/bin/sh
# Trace forensics smoke: record -> replay must round-trip byte-identically
# and both exports must be well-formed.  Wired to the @trace-smoke dune
# alias (see the root dune file); not part of @runtest so the tier-1
# suite stays fast.
set -eu

VSTAMP="$1"
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

"$VSTAMP" trace record -w gossip -s 11 -n 120 --check-invariants \
  -o "$tmpdir/run.jsonl" >/dev/null
"$VSTAMP" trace replay "$tmpdir/run.jsonl" -o "$tmpdir/replay.jsonl" >/dev/null
cmp "$tmpdir/run.jsonl" "$tmpdir/replay.jsonl"

"$VSTAMP" trace export "$tmpdir/run.jsonl" --format dot \
  -o "$tmpdir/run.dot" >/dev/null
grep -q '^digraph' "$tmpdir/run.dot"

"$VSTAMP" trace export "$tmpdir/run.jsonl" --format chrome \
  -o "$tmpdir/run.json" >/dev/null
grep -q '"traceEvents"' "$tmpdir/run.json"

echo "trace smoke ok"
