#!/bin/sh
# Benchmark regression-gate smoke: a quick-mode bench run must feed the
# ledger, pass its own gate, trip the gate on a synthetic regression,
# and be refused against a run recorded under a different config.
# Wired to the @bench-smoke dune alias (see the root dune file); not
# part of @runtest because the bench lane costs a few wall-clock
# seconds.
set -eu

VSTAMP="$1"
BENCH="$2"
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

"$BENCH" --quick --out "$tmpdir/run.json" --history "$tmpdir/history.jsonl" \
  >/dev/null

# every run appends exactly one ledger entry
[ "$(wc -l < "$tmpdir/history.jsonl")" -eq 1 ] || {
  echo "bench smoke: history did not gain exactly one entry" >&2
  exit 1
}
"$VSTAMP" bench history "$tmpdir/history.jsonl" >/dev/null

# self-comparison must pass even at zero tolerance
"$VSTAMP" bench check --baseline "$tmpdir/run.json" "$tmpdir/run.json" \
  --tolerance 0 >/dev/null

# a synthetic latency blow-up must trip the gate
sed 's|"ops/stamp/update d8":[0-9.e+-]*|"ops/stamp/update d8":9e9|' \
  "$tmpdir/run.json" > "$tmpdir/slow.json"
if "$VSTAMP" bench check --baseline "$tmpdir/run.json" "$tmpdir/slow.json" \
  --tolerance 50 >/dev/null 2>&1; then
  echo "bench smoke: gate missed a synthetic regression" >&2
  exit 1
fi

# runs recorded under different configs (here: the same run with its
# recorded bechamel budget edited) must be refused, not misjudged
sed 's|"latency_limit":[0-9]*|"latency_limit":31337|' \
  "$tmpdir/run.json" > "$tmpdir/other_config.json"
if "$VSTAMP" bench check --baseline "$tmpdir/other_config.json" \
  "$tmpdir/run.json" --tolerance 50 >/dev/null 2>&1; then
  echo "bench smoke: gate compared runs with different configs" >&2
  exit 1
fi

# ...and --ignore-config must still allow an informational diff
"$VSTAMP" bench diff --ignore-config "$tmpdir/other_config.json" \
  "$tmpdir/run.json" >/dev/null

echo "bench smoke ok"
