#!/bin/sh
# Identity-space-observatory smoke: run the replica-churn scenario
# offline (fragmentation analytics, the partition-of-unity audit, the
# genealogy exports, determinism, the injected-corruption exit path),
# then boot a soaking process with --churn on an ephemeral port and
# check the live surfaces — /idspace.json, the vstamp_idspace_* gauges
# on /metrics, vstamp churn in live mode, and the dashboard's
# identity-space panel.  Wired to the @churn-smoke dune alias (see the
# root dune file); not part of @runtest so the tier-1 suite stays fast.
set -eu

VSTAMP="$1"
tmpdir=$(mktemp -d)
soak_pid=""
cleanup() {
  [ -n "$soak_pid" ] && kill "$soak_pid" 2>/dev/null || true
  rm -rf "$tmpdir"
}
trap cleanup EXIT

# --- offline: churn must fork, retire, and keep the tiling audit clean
"$VSTAMP" churn --rounds 12 > "$tmpdir/churn.txt"
grep -q 'identity space:' "$tmpdir/churn.txt"
grep -q 'reclamation:' "$tmpdir/churn.txt"
grep -q 'dynamic vv:' "$tmpdir/churn.txt"
grep -q 'relation mismatches: 0' "$tmpdir/churn.txt"
grep -q 'audit: clean' "$tmpdir/churn.txt"
# churn actually churned: forks happened
if grep -q ' 0 forks,' "$tmpdir/churn.txt"; then
  echo "no forks under churn rate 1.0" >&2
  exit 1
fi

# same scenario as JSON: both lanes and the audit block must be present
"$VSTAMP" churn --rounds 12 --json > "$tmpdir/churn.json"
grep -q '"stamp_id_bits":' "$tmpdir/churn.json"
grep -q '"oracle_bits":' "$tmpdir/churn.json"
grep -q '"reduce_effectiveness":' "$tmpdir/churn.json"
grep -q '"dvv_retired_entries":' "$tmpdir/churn.json"
grep -q '"relation_mismatches":0' "$tmpdir/churn.json"
grep -q '"audit_clean":true' "$tmpdir/churn.json"

# determinism: same seed, same report
"$VSTAMP" churn --rounds 12 --json > "$tmpdir/churn2.json"
cmp "$tmpdir/churn.json" "$tmpdir/churn2.json"

# fault injection: a corrupted fragment inventory must produce an
# overlap witness and exit 3 — proof the auditor is really wired in
set +e
"$VSTAMP" churn --rounds 12 --inject-corruption 6 > "$tmpdir/corrupt.txt" 2>&1
rc=$?
set -e
[ "$rc" -eq 3 ] || { echo "expected exit 3 on corruption, got $rc" >&2; exit 1; }
grep -q 'audit: .* violation' "$tmpdir/corrupt.txt"
grep -q 'overlap:' "$tmpdir/corrupt.txt"

# genealogy exports: a DOT digraph with edges, and the JSON lineage
"$VSTAMP" churn --rounds 8 --dot "$tmpdir/gen.dot" --genealogy "$tmpdir/gen.json" > /dev/null
grep -q '^digraph idspace' "$tmpdir/gen.dot"
grep -q ' -> ' "$tmpdir/gen.dot"
grep -q '"schema":"vstamp-idspace/1"' "$tmpdir/gen.json"
grep -q '"nodes":' "$tmpdir/gen.json"

# --- live: soak under --churn exposes the identity-space surfaces
"$VSTAMP" soak --port 0 --port-file "$tmpdir/port" --quiet \
  --ops 200 --churn 1.0 --no-history &
soak_pid=$!

i=0
while [ ! -s "$tmpdir/port" ]; do
  i=$((i + 1))
  [ "$i" -gt 50 ] && { echo "soak never bound a port" >&2; exit 1; }
  sleep 0.1
done
port=$(cat "$tmpdir/port")

# --retry also covers the races this loop used to need
scrape() { "$VSTAMP" scrape --retry 3 --port "$port" "$1"; }

# give the first iteration a moment to publish the churn phase
i=0
until scrape /metrics 2>/dev/null | grep -q '^vstamp_idspace_live_replicas '; do
  i=$((i + 1))
  [ "$i" -gt 50 ] && { echo "idspace gauges never appeared" >&2; exit 1; }
  sleep 0.1
done

scrape /metrics > "$tmpdir/metrics"
grep -q '^# TYPE vstamp_idspace_live_replicas gauge' "$tmpdir/metrics"
grep -q '^vstamp_idspace_id_bits ' "$tmpdir/metrics"
grep -q '^vstamp_idspace_oracle_bits ' "$tmpdir/metrics"
grep -q '^vstamp_idspace_audit_violations 0' "$tmpdir/metrics"
grep -q '^vstamp_idspace_ops_total{op="fork"} ' "$tmpdir/metrics"
grep -q '^sim_churn_population ' "$tmpdir/metrics"

# /idspace.json: the structured identity-space view
scrape /idspace.json > "$tmpdir/idjson"
grep -q '"idspace":' "$tmpdir/idjson"
grep -q '"live_replicas":' "$tmpdir/idjson"
grep -q '"ops":' "$tmpdir/idjson"
grep -q '"reclaimed_bits_total":' "$tmpdir/idjson"

# vstamp churn in live mode renders the same data
"$VSTAMP" churn --port "$port" > "$tmpdir/live.txt"
grep -q 'identity space:' "$tmpdir/live.txt"
grep -q 'live_replicas=' "$tmpdir/live.txt"

# the dashboard picks the gauges up in its identity-space panel
"$VSTAMP" top --port "$port" --retry 3 --once --interval 0.3 --no-color \
  > "$tmpdir/frame"
grep -q 'identity space (fragments, bits, churn)' "$tmpdir/frame"

kill -TERM "$soak_pid"
wait "$soak_pid" || true
soak_pid=""

echo "churn smoke ok"
