#!/bin/sh
# Backend smoke: every registered name backend must drive a simulation
# end to end, produce deterministic telemetry, and the CLI must reject
# unknown keys with the valid set.  The set of backends is discovered
# from the CLI's own error message, so a newly registered backend is
# picked up without editing this script.  Wired to the @backend-smoke
# dune alias (see the root dune file); not part of @runtest.
set -eu

VSTAMP="$1"
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

# unknown keys must fail, and the failure lists the registry
if "$VSTAMP" simulate --backend __none__ -n 10 >/dev/null 2>"$tmpdir/err"; then
  echo "backend smoke: unknown backend was accepted" >&2
  exit 1
fi
keys=$(sed -n 's/.*valid: \(.*\)).*/\1/p' "$tmpdir/err" | tr -d ',')
if [ -z "$keys" ]; then
  echo "backend smoke: could not discover registered backends" >&2
  cat "$tmpdir/err" >&2
  exit 1
fi
echo "backends: $keys"

for b in $keys; do
  # a churny trace exercises update/fork/join/reduce on the backend
  "$VSTAMP" simulate --backend "$b" -w churn -s 11 -n 150 \
    --metrics-out "$tmpdir/$b-a.jsonl" >"$tmpdir/$b-a.out"
  grep -q "ops=150" "$tmpdir/$b-a.out"
  # same seed, same backend: the telemetry must be byte-identical
  "$VSTAMP" simulate --backend "$b" -w churn -s 11 -n 150 \
    --metrics-out "$tmpdir/$b-b.jsonl" >/dev/null
  cmp "$tmpdir/$b-a.jsonl" "$tmpdir/$b-b.jsonl"
done

# every backend must agree with the causal-history oracle (on by default)
for b in $keys; do
  "$VSTAMP" simulate --backend "$b" -w gossip -s 7 -n 120 \
    >"$tmpdir/$b-oracle.out"
  grep -q "acc=exact" "$tmpdir/$b-oracle.out"
done

echo "backend smoke ok"
