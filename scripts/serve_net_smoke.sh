#!/bin/sh
# Networked anti-entropy smoke: boot three `vstamp serve` nodes on
# ephemeral loopback ports (cascade mesh: each node dials the nodes
# booted before it), seed one disjoint write per node, wait until the
# HTTP planes report equal store digests on all three, then kill one
# node and watch a survivor's /peers.json report the reconnect
# backoff.  Finally, graceful shutdown.  Wired to the @net-smoke dune
# alias (see the root dune file); not part of @runtest because it runs
# three real servers for a few seconds.
set -eu

VSTAMP="$1"
tmpdir=$(mktemp -d)
pids=""
cleanup() {
  for p in $pids; do kill "$p" 2>/dev/null || true; done
  rm -rf "$tmpdir"
}
trap cleanup EXIT

# the port file carries two lines (sync port, then HTTP port), written
# only after both planes are bound
wait_ports() {
  i=0
  while [ "$(wc -l 2>/dev/null < "$1" || echo 0)" -lt 2 ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "node never bound: $1" >&2; exit 1; }
    sleep 0.1
  done
}

serve_node() { # serve_node NAME [--peer ...]
  name="$1"; shift
  "$VSTAMP" serve --port 0 --http-port 0 --quiet --interval 0.2 \
    --node-id "$name" --port-file "$tmpdir/$name.ports" \
    --put "owner-$name=$name" "$@" &
  pids="$pids $!"
}

serve_node n0
p0=$!
wait_ports "$tmpdir/n0.ports"
sync0=$(sed -n 1p "$tmpdir/n0.ports")
http0=$(sed -n 2p "$tmpdir/n0.ports")

serve_node n1 --peer "127.0.0.1:$sync0"
wait_ports "$tmpdir/n1.ports"
sync1=$(sed -n 1p "$tmpdir/n1.ports")
http1=$(sed -n 2p "$tmpdir/n1.ports")

serve_node n2 --peer "127.0.0.1:$sync0" --peer "127.0.0.1:$sync1"
p2=$!
wait_ports "$tmpdir/n2.ports"
http2=$(sed -n 2p "$tmpdir/n2.ports")

scrape() { "$VSTAMP" scrape --port "$1" "$2"; }
digest() { scrape "$1" /metrics | sed -n 's/^net_store_digest \(.*\)$/\1/p'; }

# convergence: the three disjoint writes replicate everywhere, so the
# content digests agree across the cluster
i=0
while :; do
  d0=$(digest "$http0"); d1=$(digest "$http1"); d2=$(digest "$http2")
  [ -n "$d0" ] && [ "$d0" = "$d1" ] && [ "$d1" = "$d2" ] && break
  i=$((i + 1))
  [ "$i" -gt 100 ] && {
    echo "cluster never converged: '$d0' / '$d1' / '$d2'" >&2; exit 1; }
  sleep 0.1
done

# the net metric families are live and clean on a converged node
scrape "$http1" /metrics > "$tmpdir/m1"
grep -q '^# TYPE net_rounds_total counter' "$tmpdir/m1"
grep -q '^net_store_keys 3$' "$tmpdir/m1"
grep -q '^net_protocol_errors_total 0$' "$tmpdir/m1"
grep -q '^net_sync_shipped_bytes_total ' "$tmpdir/m1"
scrape "$http1" /stats.json | grep -q '"net_store_keys":3'

# /peers.json: identity plus a connected dial peer
scrape "$http1" /peers.json > "$tmpdir/peers1"
grep -q '"node_id":"n1"' "$tmpdir/peers1"
grep -q '"protocol":"vstamp-sync/1"' "$tmpdir/peers1"
grep -q '"state":"connected"' "$tmpdir/peers1"

# kill n0; n1 dials it, so its /peers.json must show the reconnect
# machinery: state backoff/connecting with the attempt counter climbing
kill -TERM "$p0"
wait "$p0" || true
pids=$(echo "$pids" | sed "s/ $p0//")
i=0
while :; do
  scrape "$http1" /peers.json > "$tmpdir/peers1" 2>/dev/null || true
  if grep -Eq '"state":"(backoff|connecting)"' "$tmpdir/peers1" \
    && grep -Eq '"attempts":[1-9]' "$tmpdir/peers1"; then
    break
  fi
  i=$((i + 1))
  [ "$i" -gt 100 ] && {
    echo "survivor never reported reconnect backoff" >&2
    cat "$tmpdir/peers1" >&2
    exit 1
  }
  sleep 0.1
done
grep -q '"last_error":' "$tmpdir/peers1"

# the rest of the cluster keeps serving through the outage
scrape "$http2" /healthz | grep -q '"status":"ok"'
kill -TERM "$p2"
wait "$p2" || true
pids=$(echo "$pids" | sed "s/ $p2//")
if scrape "$http2" /healthz >/dev/null 2>&1; then
  echo "n2 still answering after shutdown" >&2
  exit 1
fi

echo "serve net smoke ok"
