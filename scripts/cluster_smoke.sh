#!/bin/sh
# Multi-process cluster smoke: fork a 3-worker soak cluster, scrape the
# parent's /cluster.json federation roll-up and the vstamp top cluster
# panel while the workers run, then check the merged artifacts — the
# Chrome trace with one lane per process, the causal-ordering report
# (zero contradictions, cross-node stamp-ordered pairs present), and
# the cross-node post-mortem.  Wired to the @cluster-smoke dune alias
# (see the root dune file); not part of @runtest.
set -eu

VSTAMP="$1"
tmpdir=$(mktemp -d)
cluster_pid=""
cleanup() {
  [ -n "$cluster_pid" ] && kill "$cluster_pid" 2>/dev/null || true
  rm -rf "$tmpdir"
}
trap cleanup EXIT

"$VSTAMP" soak --cluster 3 --cluster-dir "$tmpdir/cl" \
  --port 0 --port-file "$tmpdir/port" --quiet \
  --duration 5 --ops 64 --partition-weather 0.5 &
cluster_pid=$!

# the parent writes its port file only after every worker came up
i=0
while [ ! -s "$tmpdir/port" ]; do
  i=$((i + 1))
  [ "$i" -gt 100 ] && { echo "cluster never bound a port" >&2; exit 1; }
  sleep 0.1
done
port=$(cat "$tmpdir/port")

# /cluster.json: the federation roll-up with all three workers up
"$VSTAMP" scrape --port "$port" /cluster.json > "$tmpdir/cluster.json"
grep -q '"schema":"vstamp-cluster/1"' "$tmpdir/cluster.json"
grep -q '"nodes_total":3' "$tmpdir/cluster.json"
grep -q '"nodes_up":3' "$tmpdir/cluster.json"
grep -q '"trace":"' "$tmpdir/cluster.json"
grep -q '"id":"node-2"' "$tmpdir/cluster.json"

# the cluster panel renders one row per worker
"$VSTAMP" top --cluster --port "$port" --once --no-color > "$tmpdir/panel"
grep -q 'vstamp cluster' "$tmpdir/panel"
grep -q '3/3 nodes up' "$tmpdir/panel"
grep -q 'node-1' "$tmpdir/panel"

# the run must finish cleanly (workers 0, no contradictions)
wait "$cluster_pid"
cluster_pid=""

# per-process span logs plus the parent's own
for f in parent.spans.jsonl node-0.spans.jsonl node-1.spans.jsonl \
  node-2.spans.jsonl; do
  [ -s "$tmpdir/cl/$f" ] || { echo "missing span log $f" >&2; exit 1; }
done

# merged Chrome trace: one named lane per process
grep -q '"traceEvents"' "$tmpdir/cl/trace.chrome.json"
grep -q '"process_name"' "$tmpdir/cl/trace.chrome.json"
for node in parent node-0 node-1 node-2; do
  grep -q "\"$node\"" "$tmpdir/cl/trace.chrome.json"
done

# causal-ordering report: stamps and wall clocks never contradict, and
# at least one ordered pair crosses a process boundary — the pairs no
# wall clock could have ordered
grep -q '"schema":"vstamp-causal-report/1"' "$tmpdir/cl/causal-report.json"
grep -q '"contradiction_count":0' "$tmpdir/cl/causal-report.json"
cross=$(sed -n 's/.*"cross_node_ordered_pairs":\([0-9][0-9]*\).*/\1/p' \
  "$tmpdir/cl/causal-report.json")
if [ -z "$cross" ] || [ "$cross" -lt 1 ]; then
  echo "expected cross-node ordered pairs, got '${cross:-none}'" >&2
  exit 1
fi

# the cross-node post-mortem renders from the span-log directory
"$VSTAMP" report --cluster "$tmpdir/cl" > "$tmpdir/postmortem.md"
grep -q '# vstamp cluster post-mortem' "$tmpdir/postmortem.md"
grep -q 'Merged timeline (stamp order)' "$tmpdir/postmortem.md"
grep -q 'cluster.launch' "$tmpdir/postmortem.md"
grep -q 'node-1' "$tmpdir/postmortem.md"

echo "cluster smoke ok"
