#!/bin/sh
# Flight-recorder smoke: soak with an alert rules file on a short,
# rule-triggering run; scrape the recorded history via /range.json and
# the alert plane via /alerts.json; verify that a rule still firing at
# shutdown makes soak exit non-zero; and render the markdown
# post-mortem from the --tsdb-out dump with `vstamp report`.
# Wired to the @report-smoke dune alias (see the root dune file); not
# part of @runtest so the tier-1 suite stays fast.
set -eu

VSTAMP="$1"
tmpdir=$(mktemp -d)
soak_pid=""
cleanup() {
  [ -n "$soak_pid" ] && kill "$soak_pid" 2>/dev/null || true
  rm -rf "$tmpdir"
}
trap cleanup EXIT

# one rule that fires as soon as the workload iterates, one that can
# never fire inside this smoke's lifetime
cat > "$tmpdir/rules.txt" <<'EOF'
# report-smoke rules
iterating soak_iterations_total >= 1
stalled   absent(soak_iterations_total) for 10m
EOF

# a bad rules file must be rejected up front with a line number
printf 'broken soak_iterations_total >!> 1\n' > "$tmpdir/bad_rules.txt"
if "$VSTAMP" soak --rules "$tmpdir/bad_rules.txt" --iterations 1 \
    --port 0 --quiet --no-history 2> "$tmpdir/badrules.err"; then
  echo "soak accepted an unparseable rules file" >&2
  exit 1
fi
grep -q 'line 1' "$tmpdir/badrules.err"

"$VSTAMP" soak --port 0 --port-file "$tmpdir/port" --quiet \
  --ops 60 --no-history --record-every 0.1 \
  --rules "$tmpdir/rules.txt" --tsdb-out "$tmpdir/dump.json" \
  --events-out "$tmpdir/events.jsonl" &
soak_pid=$!

i=0
while [ ! -s "$tmpdir/port" ]; do
  i=$((i + 1))
  [ "$i" -gt 50 ] && { echo "soak never bound a port" >&2; exit 1; }
  sleep 0.1
done
port=$(cat "$tmpdir/port")

scrape() { "$VSTAMP" scrape --port "$port" "$1"; }

# give the recorder a few cadences and the first iteration time to land
sleep 2

# /range.json without a metric: the series index
scrape /range.json > "$tmpdir/index.json"
grep -q '"metrics":' "$tmpdir/index.json"
grep -q 'soak_iterations_total' "$tmpdir/index.json"
grep -q '"footprint_bytes":' "$tmpdir/index.json"

# /range.json with a metric: rolled-up buckets of the recorded history
scrape '/range.json?metric=soak_iterations_total&from=-60' \
  > "$tmpdir/range.json"
grep -q '"metric":"soak_iterations_total"' "$tmpdir/range.json"
grep -q '"kind":"counter"' "$tmpdir/range.json"
grep -q '"points":\[{' "$tmpdir/range.json"

# GC telemetry is on by default in soak
scrape '/range.json?metric=runtime_heap_words&from=-60' \
  | grep -q '"kind":"gauge"'

# /alerts.json: the threshold rule must be firing by now, the absence
# rule must not
scrape /alerts.json > "$tmpdir/alerts.json"
grep -q '"name":"iterating"' "$tmpdir/alerts.json"
grep -q '"state":"firing"' "$tmpdir/alerts.json"
grep -q '"to":"firing"' "$tmpdir/alerts.json"
if grep -q '"name":"stalled","rule":[^}]*"state":"firing"' \
    "$tmpdir/alerts.json"; then
  echo "absence rule fired during an active soak" >&2
  exit 1
fi

# the firing gauge is exported to Prometheus too
scrape /metrics | grep -q '^vstamp_alerts_firing{rule="iterating"} 1'

# the alert transition reached the event plane (the durable file is
# checked after shutdown; the live ring may have rotated past it)
scrape '/events.json?n=500' | grep -q '"event":"soak.iteration"'

# vstamp top --once renders the alerts panel and exits 0
"$VSTAMP" top --port "$port" --once --no-color > "$tmpdir/frame"
grep -q 'alerts' "$tmpdir/frame"
grep -q 'iterating' "$tmpdir/frame"

# a live post-mortem straight off the endpoints
"$VSTAMP" report --port "$port" --window 2m > "$tmpdir/live.md"
grep -q '^# vstamp soak post-mortem' "$tmpdir/live.md"

# shutdown with the rule still firing: soak must exit non-zero
kill -TERM "$soak_pid"
rc=0
wait "$soak_pid" || rc=$?
soak_pid=""
if [ "$rc" -eq 0 ]; then
  echo "soak exited 0 with an alert firing at shutdown" >&2
  exit 1
fi

# the firing transition reached the durable event log
grep -q '"event":"alert.firing"' "$tmpdir/events.jsonl"

# the dump was written after the server stopped; the post-mortem
# renders from it
[ -s "$tmpdir/dump.json" ]
grep -q '"schema":"vstamp-tsdb/1"' "$tmpdir/dump.json"
"$VSTAMP" report --dump "$tmpdir/dump.json" --out "$tmpdir/report.md"
grep -q '^# vstamp soak post-mortem' "$tmpdir/report.md"
grep -q '^## Alerts' "$tmpdir/report.md"
grep -q '^### Timeline' "$tmpdir/report.md"
grep -q '^## Runtime / GC' "$tmpdir/report.md"
grep -q '^## Metrics' "$tmpdir/report.md"
grep -q '| iterating | firing |' "$tmpdir/report.md"
grep -q 'runtime_heap_words' "$tmpdir/report.md"
# every table row is well-formed markdown (starts and ends with a pipe)
if grep '^|' "$tmpdir/report.md" | grep -qv '|$'; then
  echo "report emitted a torn markdown table row" >&2
  exit 1
fi

echo "report smoke ok"
