#!/bin/sh
# Convergence-observatory smoke: run the partition-weather lag
# simulation offline (divergence must show up, then heal), then boot a
# soaking process with --partition-weather on an ephemeral port and
# check the live surfaces — /lag.json, the divergence gauges on
# /metrics, the vstamp top panel, and vstamp lag in live mode.
# Wired to the @lag-smoke dune alias (see the root dune file); not part
# of @runtest so the tier-1 suite stays fast.
set -eu

VSTAMP="$1"
tmpdir=$(mktemp -d)
soak_pid=""
cleanup() {
  [ -n "$soak_pid" ] && kill "$soak_pid" 2>/dev/null || true
  rm -rf "$tmpdir"
}
trap cleanup EXIT

# --- offline: the simulation must diverge under weather, then converge
"$VSTAMP" lag --severity 0.8 --rounds 10 > "$tmpdir/lag.txt"
grep -q 'divergence at quiescence' "$tmpdir/lag.txt"
grep -q 'converged: true' "$tmpdir/lag.txt"
grep -q 'sync delta: shipped=' "$tmpdir/lag.txt"
# weather actually bit: some syncs were blocked and width exceeded 1
grep -q 'blocked by weather' "$tmpdir/lag.txt"
if grep -q 'peak width 1,' "$tmpdir/lag.txt"; then
  echo "no divergence observed under severity 0.8" >&2
  exit 1
fi

# same scenario as JSON: matrices and the delta ledger must be present
"$VSTAMP" lag --severity 0.8 --rounds 10 --json > "$tmpdir/lag.json"
grep -q '"divergence":{"n":3' "$tmpdir/lag.json"
grep -q '"final":{"n":3' "$tmpdir/lag.json"
grep -q '"converged":true' "$tmpdir/lag.json"
grep -q '"redundant_bytes":' "$tmpdir/lag.json"

# the two tracker families must both survive the same weather
"$VSTAMP" lag -t vv --severity 0.8 --rounds 10 >/dev/null

# determinism: same seed, same report (modulo the wall-clock ns field)
"$VSTAMP" lag --severity 0.8 --rounds 10 --json > "$tmpdir/lag2.json"
strip_ns() { sed 's/"ns":[0-9.eE+-]*/"ns":0/g' "$1"; }
strip_ns "$tmpdir/lag.json" > "$tmpdir/lag.norm"
strip_ns "$tmpdir/lag2.json" > "$tmpdir/lag2.norm"
cmp "$tmpdir/lag.norm" "$tmpdir/lag2.norm"

# --- live: soak under partition weather exposes the gauges
"$VSTAMP" soak --port 0 --port-file "$tmpdir/port" --quiet \
  --ops 200 --partition-weather 0.7 --no-history &
soak_pid=$!

i=0
while [ ! -s "$tmpdir/port" ]; do
  i=$((i + 1))
  [ "$i" -gt 50 ] && { echo "soak never bound a port" >&2; exit 1; }
  sleep 0.1
done
port=$(cat "$tmpdir/port")

scrape() { "$VSTAMP" scrape --port "$port" "$1"; }

# give the first iteration a moment to publish the weather phase
i=0
until scrape /metrics 2>/dev/null | grep -q '^vstamp_replica_lag{replica="0"} '; do
  i=$((i + 1))
  [ "$i" -gt 50 ] && { echo "divergence gauges never appeared" >&2; exit 1; }
  sleep 0.1
done

scrape /metrics > "$tmpdir/metrics"
grep -q '^# TYPE vstamp_replica_lag gauge' "$tmpdir/metrics"
grep -q '^vstamp_divergence_pairs{kind="equal"} ' "$tmpdir/metrics"
grep -q '^vstamp_frontier_width ' "$tmpdir/metrics"
grep -q '^vstamp_convergence_steps ' "$tmpdir/metrics"
grep -q '^sim_sync_shipped_bytes_total ' "$tmpdir/metrics"
grep -q '^kvs_sync_delta_efficiency ' "$tmpdir/metrics"

# /lag.json: the structured convergence view
scrape /lag.json > "$tmpdir/lagjson"
grep -q '"replica_lag":' "$tmpdir/lagjson"
grep -q '"divergence_pairs":' "$tmpdir/lagjson"
grep -q '"frontier_width":' "$tmpdir/lagjson"
grep -q '"sync_delta":' "$tmpdir/lagjson"

# vstamp lag in live mode renders the same data
"$VSTAMP" lag --port "$port" > "$tmpdir/live.txt"
grep -q 'replica lag' "$tmpdir/live.txt"
grep -q 'divergence pairs' "$tmpdir/live.txt"

# the dashboard picks the gauges up in its divergence panel
"$VSTAMP" top --port "$port" --once --interval 0.3 --no-color \
  > "$tmpdir/frame"
grep -q 'divergence (replica lag, pairs, convergence)' "$tmpdir/frame"

kill -TERM "$soak_pid"
wait "$soak_pid" || true
soak_pid=""

echo "lag smoke ok"
