#!/bin/sh
# Local CI: build, tests, docs (when odoc is available), CLI smoke.
# Run from the repository root: scripts/ci.sh
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

if command -v odoc >/dev/null 2>&1; then
  echo "== dune build @doc =="
  dune build @doc
else
  echo "== skipping dune build @doc (odoc not installed) =="
fi

echo "== trace smoke (record -> replay byte-identity, exports) =="
dune build @trace-smoke --force

echo "== bench smoke (quick bench -> regression gate pass/fail/refuse) =="
dune build @bench-smoke --force

echo "== backend smoke (every registered backend end to end) =="
dune build @backend-smoke --force

echo "== serve smoke (soak server, live scrapes, graceful shutdown) =="
dune build @serve-smoke --force

echo "== CLI smoke: vstamp metrics =="
dune exec bin/vstamp_cli.exe -- metrics -t stamps -w churn -n 100 >/dev/null
dune exec bin/vstamp_cli.exe -- metrics -t stamps -w churn -n 100 --format prom >/dev/null
dune exec bin/vstamp_cli.exe -- metrics -t stamps -w churn -n 100 --format json >/dev/null

echo "== CLI smoke: deterministic telemetry =="
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
dune exec bin/vstamp_cli.exe -- simulate -t stamps -w churn -n 100 \
  --metrics-out "$tmpdir/a.jsonl" >/dev/null
dune exec bin/vstamp_cli.exe -- simulate -t stamps -w churn -n 100 \
  --metrics-out "$tmpdir/b.jsonl" >/dev/null
cmp "$tmpdir/a.jsonl" "$tmpdir/b.jsonl"

echo "ok"
