#!/bin/sh
# Local CI: build, tests, docs (when odoc is available), CLI smoke.
# Run from the repository root: scripts/ci.sh
set -eu

cd "$(dirname "$0")/.."

echo "== bench ledger presence =="
if [ ! -f BENCH_core.json ]; then
  echo "error: BENCH_core.json is missing from the repository root." >&2
  echo "The perf trajectory needs a committed baseline; regenerate it with" >&2
  echo "  dune exec bench/main.exe" >&2
  echo "and commit BENCH_core.json (and the BENCH_history.jsonl it appends)." >&2
  exit 1
fi
schema=$(sed -n 's/.*"schema":"vstamp-bench-core\/\([0-9][0-9]*\)".*/\1/p' \
  BENCH_core.json)
if [ -z "$schema" ]; then
  echo "error: BENCH_core.json carries no vstamp-bench-core schema field." >&2
  echo "Regenerate it with: dune exec bench/main.exe" >&2
  exit 1
fi
if [ "$schema" -lt 4 ]; then
  echo "error: BENCH_core.json is schema vstamp-bench-core/$schema, which" >&2
  echo "predates /4 (no monitor_overhead block) — the regression gate" >&2
  echo "cannot cover the observability lanes against it.  Regenerate the" >&2
  echo "baseline with: dune exec bench/main.exe" >&2
  exit 1
fi
echo "BENCH_core.json present (schema vstamp-bench-core/$schema)"

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

if command -v odoc >/dev/null 2>&1; then
  echo "== dune build @doc =="
  dune build @doc
else
  echo "== skipping dune build @doc (odoc not installed) =="
fi

echo "== trace smoke (record -> replay byte-identity, exports) =="
dune build @trace-smoke --force

echo "== bench smoke (quick bench -> regression gate pass/fail/refuse) =="
dune build @bench-smoke --force

echo "== backend smoke (every registered backend end to end) =="
dune build @backend-smoke --force

echo "== serve smoke (soak server, live scrapes, graceful shutdown) =="
dune build @serve-smoke --force

echo "== lag smoke (partition weather, /lag.json, divergence panel) =="
dune build @lag-smoke --force

echo "== report smoke (flight recorder, alerts, post-mortem) =="
dune build @report-smoke --force

echo "== churn smoke (replica churn, /idspace.json, identity-space panel) =="
dune build @churn-smoke --force

echo "== cluster smoke (3-process cluster, federation, causal merge) =="
dune build @cluster-smoke --force

echo "== net smoke (3-node TCP mesh, convergence, reconnect backoff) =="
dune build @net-smoke --force

echo "== CLI smoke: vstamp metrics =="
dune exec bin/vstamp_cli.exe -- metrics -t stamps -w churn -n 100 >/dev/null
dune exec bin/vstamp_cli.exe -- metrics -t stamps -w churn -n 100 --format prom >/dev/null
dune exec bin/vstamp_cli.exe -- metrics -t stamps -w churn -n 100 --format json >/dev/null

echo "== CLI smoke: deterministic telemetry =="
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
dune exec bin/vstamp_cli.exe -- simulate -t stamps -w churn -n 100 \
  --metrics-out "$tmpdir/a.jsonl" >/dev/null
dune exec bin/vstamp_cli.exe -- simulate -t stamps -w churn -n 100 \
  --metrics-out "$tmpdir/b.jsonl" >/dev/null
cmp "$tmpdir/a.jsonl" "$tmpdir/b.jsonl"

echo "ok"
