(* Persistence: a store is a directory of plain files plus a ".vstamp"
   subdirectory holding, per file, one line with the hex-encoded wire
   stamp and one line with the hex lineage tag.  A file with no recorded
   metadata is adopted as newly created — which is the right semantics:
   to the tracking layer it IS a new lineage. *)

type error =
  | Not_a_directory of string
  | Io_error of string
  | Bad_stamp of { path : string; detail : string }

let pp_error ppf = function
  | Not_a_directory d -> Format.fprintf ppf "%s is not a directory" d
  | Io_error m -> Format.fprintf ppf "I/O error: %s" m
  | Bad_stamp { path; detail } ->
      Format.fprintf ppf "corrupt stamp for %s: %s" path detail

let meta_dir dir = Filename.concat dir ".vstamp"

let stamp_file dir path = Filename.concat (meta_dir dir) (path ^ ".stamp")

let to_hex s =
  String.concat ""
    (List.init (String.length s) (fun i -> Printf.sprintf "%02x" (Char.code s.[i])))

let of_hex s =
  if String.length s mod 2 <> 0 then None
  else
    try
      Some
        (String.init (String.length s / 2) (fun i ->
             Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2))))
    with _ -> None

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path content =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content)

(* Logical paths are flat file names; anything else (subdirectories,
   the metadata directory itself) is ignored by design. *)
let data_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f ->
         (not (String.equal f ".vstamp"))
         && not (Sys.is_directory (Filename.concat dir f)))
  |> List.sort compare

let load ~dir ~name =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    Error (Not_a_directory dir)
  else
    try
      let store =
        List.fold_left
          (fun store path ->
            let content = read_file (Filename.concat dir path) in
            let sf = stamp_file dir path in
            if Sys.file_exists sf then begin
              let bad detail =
                raise
                  (Failure
                     (Format.asprintf "%a" pp_error (Bad_stamp { path; detail })))
              in
              match
                String.split_on_char '\n' (String.trim (read_file sf))
              with
              | [ stamp_hex; lineage_hex ] -> (
                  match (of_hex stamp_hex, of_hex lineage_hex) with
                  | Some wire, Some lineage -> (
                      match Vstamp_codec.Wire.stamp_of_string wire with
                      | Ok stamp ->
                          Store.set store
                            (File_copy.restore ~path ~content ~stamp ~lineage)
                      | Error e ->
                          bad (Format.asprintf "%a" Vstamp_codec.Wire.pp_error e))
                  | _ -> bad "invalid hex")
              | _ -> bad "expected stamp and lineage lines"
            end
            else Store.add_new store ~path ~content)
          (Store.create ~name) (data_files dir)
      in
      Ok store
    with
    | Failure m -> Error (Io_error m)
    | Sys_error m -> Error (Io_error m)

let save ~dir store =
  try
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    if not (Sys.is_directory dir) then Error (Not_a_directory dir)
    else begin
      let meta = meta_dir dir in
      if not (Sys.file_exists meta) then Sys.mkdir meta 0o755;
      (* remove data and stamps for files no longer present *)
      let keep = Store.paths store in
      List.iter
        (fun f ->
          if not (List.mem f keep) then begin
            Sys.remove (Filename.concat dir f);
            let sf = stamp_file dir f in
            if Sys.file_exists sf then Sys.remove sf
          end)
        (data_files dir);
      Store.fold
        (fun copy () ->
          let path = File_copy.path copy in
          write_file (Filename.concat dir path) (File_copy.content copy);
          write_file (stamp_file dir path)
            (to_hex (Vstamp_codec.Wire.stamp_to_string (File_copy.stamp copy))
            ^ "\n"
            ^ to_hex (File_copy.lineage copy)))
        store ();
      Ok ()
    end
  with Sys_error m -> Error (Io_error m)
