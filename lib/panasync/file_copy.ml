open Vstamp_core

module Make (St : Stamp.S) = struct
  type t = {
    path : string;
    content : string;
    stamp : St.t;
    lineage : string;
        (* Digest of (path, initial content): stamps order copies within
           one creation lineage; copies of the same path created
           independently carry unrelated stamps whose comparison would be
           meaningless (and, worse, sometimes plausible).  The tag keeps
           such pairs apart: different lineages are always concurrent. *)
  }

  let lineage_of ~path ~content = Digest.string (path ^ "\x00" ^ content)

  let create ~path ~content =
    {
      path;
      content;
      stamp = St.update St.seed;
      lineage = lineage_of ~path ~content;
    }

  let restore ~path ~content ~stamp ~lineage =
    if not (St.well_formed stamp) then
      invalid_arg "File_copy.restore: ill-formed stamp"
    else { path; content; stamp; lineage }

  let path c = c.path

  let content c = c.content

  let stamp c = c.stamp

  let lineage c = c.lineage

  let same_lineage a b = String.equal a.lineage b.lineage

  let edit c ~content =
    if String.equal content c.content then c
    else { c with content; stamp = St.update c.stamp }

  let touch c = { c with stamp = St.update c.stamp }

  let replicate c =
    let left, right = St.fork c.stamp in
    ({ c with stamp = left }, { c with stamp = right })

  let check_same_file op a b =
    if not (String.equal a.path b.path) then
      invalid_arg (Printf.sprintf "File_copy.%s: different logical files" op)

  let relation a b =
    check_same_file "relation" a b;
    if same_lineage a b then St.relation a.stamp b.stamp
    else Relation.Concurrent

  let in_conflict a b = relation a b = Relation.Concurrent

  (* Merge the tracking data of two copies whose content conflict has been
     resolved to [content]; both survivors get fresh coexisting ids and an
     update records the resolution as a new event.  Resolving across
     lineages mints a brand-new lineage (a symmetric digest of both tags
     and the chosen content): the restarted stamps must never be compared
     against either old lineage, where they would look spuriously
     equivalent or stale. *)
  let resolve a b ~content =
    check_same_file "resolve" a b;
    if same_lineage a b then begin
      let joined = St.update (St.join a.stamp b.stamp) in
      let sa, sb = St.fork joined in
      ({ a with content; stamp = sa }, { b with content; stamp = sb })
    end
    else begin
      let lo = min a.lineage b.lineage and hi = max a.lineage b.lineage in
      let lineage = Digest.string (lo ^ hi ^ content) in
      let sa, sb = St.fork (St.update St.seed) in
      ( { a with content; stamp = sa; lineage },
        { b with content; stamp = sb; lineage } )
    end

  (* Propagate the dominant copy's content; both sides keep distinct ids
     but share the same causal knowledge afterwards. *)
  let propagate ~from ~into =
    check_same_file "propagate" from into;
    if not (same_lineage from into) then
      invalid_arg "File_copy.propagate: unrelated lineages never dominate";
    let sa, sb = St.sync from.stamp into.stamp in
    ({ from with stamp = sa }, { into with content = from.content; stamp = sb })

  let size_bits c = St.size_bits c.stamp

  (* The frontier view of a copy: everything a peer needs to order it
     against its own copy (stamp and lineage tag) with no payload.  An
     anti-entropy offer ships one [meta] per path; a copy the receiver
     dominates is then reconstructed with [of_meta] — propagation only
     ever reads the dominant side's content, so the phantom's empty
     content is never observed. *)
  type meta = { m_stamp : St.t; m_lineage : string }

  let meta c = { m_stamp = c.stamp; m_lineage = c.lineage }

  let meta_relation a b =
    if String.equal a.m_lineage b.m_lineage then
      St.relation a.m_stamp b.m_stamp
    else Relation.Concurrent

  let meta_bits m = St.size_bits m.m_stamp

  let of_meta ~path m =
    { path; content = ""; stamp = m.m_stamp; lineage = m.m_lineage }

  let pp ppf c =
    Format.fprintf ppf "%s%a %S" c.path St.pp c.stamp
      (if String.length c.content > 24 then String.sub c.content 0 24 ^ "..."
       else c.content)
end

module Over_tree = Make (Stamp.Over_tree)
module Over_list = Make (Stamp.Over_list)
module Over_packed = Make (Stamp.Over_packed)

include Over_tree
