(** A single copy of a replicated file, stamped for dependency tracking.

    This is the PANASYNC usage of version stamps (the authors' own
    application, SIGOPS EW 2000): each physical copy of a logical file
    carries a version stamp; copying a file is a fork (fully offline — no
    registry of copies exists anywhere), editing is an update, and
    reconciliation uses the stamp relation to distinguish stale copies
    from genuine conflicts.

    Stamps only order copies descending from {e one} creation of the
    file.  Copies of the same path created independently carry unrelated
    stamps whose raw comparison is meaningless — and occasionally
    plausible-looking, which would silently lose data.  Every copy
    therefore also carries a {e lineage tag} (a digest of path and
    initial content, computable offline): {!relation} answers
    [Concurrent] across lineages unconditionally, and {!resolve} unifies
    the lineages of a settled conflict.

    Generic in the stamp backend via {!Make}; the top level is the
    default (tree) instantiation. *)

module Make (St : Vstamp_core.Stamp.S) : sig
  type t

  val create : path:string -> content:string -> t
  (** A brand-new logical file: seed stamp, already marked updated (its
      creation is an event), lineage derived from path and content. *)

  val restore :
    path:string -> content:string -> stamp:St.t -> lineage:string -> t
  (** Rebuild a copy from persisted parts (see {!Fs_store}).
      @raise Invalid_argument if the stamp is ill-formed. *)

  val lineage_of : path:string -> content:string -> string
  (** The tag {!create} derives. *)

  val path : t -> string

  val content : t -> string

  val stamp : t -> St.t

  val lineage : t -> string

  val same_lineage : t -> t -> bool

  val edit : t -> content:string -> t
  (** Replace content, recording an update.  Editing to identical content
      is a no-op. *)

  val touch : t -> t
  (** Record an update without changing content. *)

  val replicate : t -> t * t
  (** Fork: the copy and its new replica, distinguishable forever after —
      created without any coordination. *)

  val relation : t -> t -> Vstamp_core.Relation.t
  (** How two copies of the same logical file relate; [Concurrent] across
      lineages.  @raise Invalid_argument if the paths differ. *)

  val in_conflict : t -> t -> bool
  (** Both copies carry updates the other has not seen (or they belong to
      unrelated lineages). *)

  val resolve : t -> t -> content:string -> t * t
  (** Settle a conflict on [content]: stamps join, the resolution is
      recorded as a fresh update and both survivors re-fork.  Across
      lineages the stamps restart from a fresh seed under a brand-new
      lineage tag (a symmetric digest of both old tags and the content),
      so the survivors are never mis-compared against either old lineage.  The input copies are retired
      by this operation: stamps order only {e coexisting} copies, so
      comparing a survivor against a retired input is meaningless
      (survivors do correctly dominate every still-live stale copy of the
      same lineage).
      @raise Invalid_argument if the paths differ. *)

  val propagate : from:t -> into:t -> t * t
  (** Bring a stale copy up to date with the dominant one; afterwards the
      copies are equivalent but keep distinct identities.
      @raise Invalid_argument if the paths differ or the lineages are
      unrelated. *)

  val size_bits : t -> int
  (** Tracking overhead of this copy. *)

  type meta
  (** The frontier view of a copy: its stamp and lineage tag, no
      payload — what one anti-entropy offer entry carries per path. *)

  val meta : t -> meta

  val meta_relation : meta -> meta -> Vstamp_core.Relation.t
  (** {!relation} on frontier views ([Concurrent] across lineages);
      no path check — the caller pairs metas of one logical file. *)

  val meta_bits : meta -> int

  val of_meta : path:string -> meta -> t
  (** A phantom copy: the frontier metadata with empty content.  Only
      meaningful as the {e dominated} side of {!propagate}, which never
      reads it. *)

  val pp : Format.formatter -> t -> unit
end

module Over_tree : module type of Make (Vstamp_core.Stamp.Over_tree)

module Over_list : module type of Make (Vstamp_core.Stamp.Over_list)

module Over_packed : module type of Make (Vstamp_core.Stamp.Over_packed)

include module type of Over_tree with type t = Over_tree.t
(** The default (tree-backed) instantiation. *)
