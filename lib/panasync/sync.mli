(** Pairwise synchronization sessions between stores.

    A session walks the union of both stores' paths: files present on one
    side are replicated to the other (a fork — no global registry is
    consulted or updated), and files present on both are reconciled by
    their stamp relation.  Only truly concurrent copies surface as
    conflicts; stale copies are fast-forwarded silently, which is the
    paper's obsolete-vs-inconsistent distinction doing its job.

    One situation stamps alone cannot handle: the same logical path
    created {e independently} on both sides.  Such copies carry unrelated
    lineages (see {!File_copy}), so they always compare concurrent and
    surface as conflicts — unless their contents are identical, in which
    case there is observationally nothing to reconcile and the session
    reports them unchanged.

    Sessions run on the shared transport-agnostic anti-entropy engine
    ({!Vstamp_sync.Engine}): the initiator offers its frontier (stamp
    metadata plus a content digest per path), the responder requests
    only what it cannot prove redundant, and reconciliation happens
    responder-side with replica branches shipped back.  In-process the
    legs compose directly, so the result is indistinguishable from the
    historical full walk.

    Generic in the file-copy and store implementations (and hence the
    stamp backend) via {!Make}; the top level is the default (tree)
    instantiation. *)

type policy =
  | Manual  (** Leave conflicting copies untouched and report them. *)
  | Prefer_left
  | Prefer_right
  | Merge of (left:string -> right:string -> string)
      (** Settle conflicts with a content-level merge function. *)

type outcome =
  | Created
  | Unchanged
  | Propagated_left_to_right
  | Propagated_right_to_left
  | Resolved
  | Conflict

type report = {
  path : string;
  relation : Vstamp_core.Relation.t option;
      (** [None] when the file existed on one side only. *)
  outcome : outcome;
}

val outcome_to_string : outcome -> string

val pp_report : Format.formatter -> report -> unit

val conflicts : report list -> report list

module Make (F : sig
  type t

  val path : t -> string

  val content : t -> string

  val size_bits : t -> int
  (** Causality-metadata size of one copy — the wire-size estimate the
      delta accounting charges per compared stamp. *)

  val relation : t -> t -> Vstamp_core.Relation.t

  val resolve : t -> t -> content:string -> t * t

  val propagate : from:t -> into:t -> t * t

  val replicate : t -> t * t

  type meta
  (** The frontier view of one copy (stamp metadata, no payload) — what
      an anti-entropy offer ships per path (see {!Vstamp_sync.Engine}). *)

  val meta : t -> meta

  val meta_relation : meta -> meta -> Vstamp_core.Relation.t

  val meta_bits : meta -> int

  val of_meta : path:string -> meta -> t
  (** A payload-less phantom used as the dominated side of {!propagate};
      its content is never read. *)
end) (St : sig
  type t

  val paths : t -> string list

  val find : t -> string -> F.t option

  val set : t -> F.t -> t
end) : sig
  val sync_file : policy -> F.t -> F.t -> F.t * F.t * report
  (** Reconcile two copies of one logical file.
      @raise Invalid_argument if their paths differ. *)

  val session : ?policy:policy -> St.t -> St.t -> St.t * St.t * report list
  (** Synchronize two stores; returns both updated stores and one report
      per logical path (sorted by path).  Default policy is [Manual]. *)

  val converged : St.t -> St.t -> bool
  (** Both stores hold content-identical copies of every logical path
      (observational convergence; further sessions are no-ops). *)
end

module Over_tree : module type of Make (File_copy.Over_tree) (Store.Over_tree)

module Over_list : module type of Make (File_copy.Over_list) (Store.Over_list)

module Over_packed :
    module type of Make (File_copy.Over_packed) (Store.Over_packed)

include module type of Over_tree
(** The default (tree-backed) instantiation. *)

(** {1 Live instrumentation}

    Off by default.  When attached, every {!session} bumps
    [sync_rounds_total], every reconciled logical file bumps
    [sync_files_total{outcome=...}] (outcomes as slugs: [created],
    [unchanged], [propagated_lr], [propagated_rl], [resolved],
    [conflict]), the content bytes that crossed between the devices
    (replicated, propagated or resolved payloads) accumulate in
    [sync_bytes_total], and surfaced conflicts in
    [sync_conflicts_total].  Counters are shared by every instantiation
    of {!Make}.

    Delta accounting rides along: [sync_shipped_bytes_total] counts
    what the session's full walk exchanges (both copies' stamp metadata
    for every shared path, plus moved content),
    [sync_minimal_bytes_total] the minimal delta a frontier-exchange
    protocol would need (nothing for equivalent copies, the dominant
    side only for ordered ones), [sync_redundant_bytes_total] their
    difference, and the [sync_delta_efficiency] gauge the running
    [minimal / shipped] ratio ([1.0] = nothing wasted). *)
module Obs : sig
  val attach : ?registry:Vstamp_obs.Registry.t -> unit -> unit
  (** Start counting into [registry] (default
      {!Vstamp_obs.Registry.default}).  Re-attaching rebinds to the
      registry given last. *)

  val detach : unit -> unit

  val attached : unit -> bool
end
