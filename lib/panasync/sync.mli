(** Pairwise synchronization sessions between stores.

    A session walks the union of both stores' paths: files present on one
    side are replicated to the other (a fork — no global registry is
    consulted or updated), and files present on both are reconciled by
    their stamp relation.  Only truly concurrent copies surface as
    conflicts; stale copies are fast-forwarded silently, which is the
    paper's obsolete-vs-inconsistent distinction doing its job.

    One situation stamps alone cannot handle: the same logical path
    created {e independently} on both sides.  Such copies carry unrelated
    lineages (see {!File_copy}), so they always compare concurrent and
    surface as conflicts — unless their contents are identical, in which
    case there is observationally nothing to reconcile and the session
    reports them unchanged. *)

type policy =
  | Manual  (** Leave conflicting copies untouched and report them. *)
  | Prefer_left
  | Prefer_right
  | Merge of (left:string -> right:string -> string)
      (** Settle conflicts with a content-level merge function. *)

type outcome =
  | Created
  | Unchanged
  | Propagated_left_to_right
  | Propagated_right_to_left
  | Resolved
  | Conflict

type report = {
  path : string;
  relation : Vstamp_core.Relation.t option;
      (** [None] when the file existed on one side only. *)
  outcome : outcome;
}

val outcome_to_string : outcome -> string

val pp_report : Format.formatter -> report -> unit

val sync_file :
  policy -> File_copy.t -> File_copy.t -> File_copy.t * File_copy.t * report
(** Reconcile two copies of one logical file.
    @raise Invalid_argument if their paths differ. *)

val session :
  ?policy:policy -> Store.t -> Store.t -> Store.t * Store.t * report list
(** Synchronize two stores; returns both updated stores and one report
    per logical path (sorted by path).  Default policy is [Manual]. *)

val conflicts : report list -> report list

val converged : Store.t -> Store.t -> bool
(** Both stores hold content-identical copies of every logical path
    (observational convergence; further sessions are no-ops). *)

(** {1 Live instrumentation}

    Off by default.  When attached, every {!session} bumps
    [sync_rounds_total], every reconciled logical file bumps
    [sync_files_total{outcome=...}] (outcomes as slugs: [created],
    [unchanged], [propagated_lr], [propagated_rl], [resolved],
    [conflict]), the content bytes that crossed between the devices
    (replicated, propagated or resolved payloads) accumulate in
    [sync_bytes_total], and surfaced conflicts in
    [sync_conflicts_total]. *)
module Obs : sig
  val attach : ?registry:Vstamp_obs.Registry.t -> unit -> unit
  (** Start counting into [registry] (default
      {!Vstamp_obs.Registry.default}).  Re-attaching rebinds to the
      registry given last. *)

  val detach : unit -> unit

  val attached : unit -> bool
end
