(** Directory-backed stores: the PANASYNC tool experience.

    A store persists as a directory of plain files plus a [.vstamp/]
    subdirectory holding one hex-encoded wire stamp per file.  Files that
    appear in the directory without a recorded stamp are adopted as newly
    created lineages on {!load}.  Only flat, regular files are tracked;
    subdirectories are ignored.

    This is the substrate of the [panasync] command-line tool: two
    directories can be synchronized offline exactly like two in-memory
    {!Store.t} values, with dependency tracking surviving across runs. *)

type error =
  | Not_a_directory of string
  | Io_error of string
  | Bad_stamp of { path : string; detail : string }

val pp_error : Format.formatter -> error -> unit

val load : dir:string -> name:string -> (Store.t, error) result
(** Read a directory into a store named [name]. *)

val save : dir:string -> Store.t -> (unit, error) result
(** Write a store back: contents, stamps, and removal of files the store
    no longer holds.  Creates the directory (and [.vstamp/]) if needed. *)
