open Vstamp_core

(* Optional live instrumentation, off by default (mirrors
   Kv_node.Obs): when attached, every session, reconciled file and
   propagated byte counts into a registry for the embedded telemetry
   server to expose.  The counters are shared by every instantiation of
   {!Make}, whichever backend it runs over. *)
module Obs = struct
  module R = Vstamp_obs.Registry
  module M = Vstamp_obs.Metric

  type counters = {
    rounds : M.counter;  (* sync_rounds_total: one per session *)
    bytes : M.counter;  (* sync_bytes_total: content bytes moved *)
    conflicts : M.counter;
    files : string -> M.counter;  (* sync_files_total{outcome=...} *)
    (* delta accounting: what a full walk ships (stamp metadata for
       every compared copy plus the moved content) vs the minimal
       wire-encoded delta a frontier-exchange protocol would need
       (metadata and content only where something changes) *)
    shipped : M.counter;  (* sync_shipped_bytes_total *)
    minimal : M.counter;  (* sync_minimal_bytes_total *)
    redundant : M.counter;  (* sync_redundant_bytes_total *)
    efficiency : M.gauge;  (* sync_delta_efficiency: minimal / shipped *)
  }

  let state : counters option ref = ref None

  let attach ?(registry = R.default) () =
    let outcome_tbl = Hashtbl.create 8 in
    let files outcome =
      match Hashtbl.find_opt outcome_tbl outcome with
      | Some c -> c
      | None ->
          let c =
            R.counter registry
              (R.with_labels "sync_files_total" [ ("outcome", outcome) ])
          in
          Hashtbl.add outcome_tbl outcome c;
          c
    in
    state :=
      Some
        {
          rounds = R.counter registry "sync_rounds_total";
          bytes = R.counter registry "sync_bytes_total";
          conflicts = R.counter registry "sync_conflicts_total";
          files;
          shipped = R.counter registry "sync_shipped_bytes_total";
          minimal = R.counter registry "sync_minimal_bytes_total";
          redundant = R.counter registry "sync_redundant_bytes_total";
          efficiency = R.gauge registry "sync_delta_efficiency";
        }

  let detach () = state := None

  let attached () = Option.is_some !state

  let[@inline] on f = match !state with Some c -> f c | None -> ()

  let account c ~shipped ~minimal =
    M.add c.shipped shipped;
    M.add c.minimal minimal;
    M.add c.redundant (shipped - minimal);
    let s = M.count c.shipped in
    M.set c.efficiency
      (if s = 0 then 1. else float_of_int (M.count c.minimal) /. float_of_int s)
end

type policy =
  | Manual
  | Prefer_left
  | Prefer_right
  | Merge of (left:string -> right:string -> string)

type outcome =
  | Created  (* the file existed on only one side: a replica was made *)
  | Unchanged  (* equivalent copies *)
  | Propagated_left_to_right
  | Propagated_right_to_left
  | Resolved  (* conflict settled by the policy *)
  | Conflict  (* Manual policy: both sides left untouched *)

type report = { path : string; relation : Relation.t option; outcome : outcome }

let outcome_to_string = function
  | Created -> "created"
  | Unchanged -> "unchanged"
  | Propagated_left_to_right -> "propagated ->"
  | Propagated_right_to_left -> "propagated <-"
  | Resolved -> "resolved"
  | Conflict -> "CONFLICT"

let pp_report ppf r =
  Format.fprintf ppf "%-20s %-12s %s" r.path
    (match r.relation with None -> "-" | Some rel -> Relation.to_string rel)
    (outcome_to_string r.outcome)

let outcome_slug = function
  | Created -> "created"
  | Unchanged -> "unchanged"
  | Propagated_left_to_right -> "propagated_lr"
  | Propagated_right_to_left -> "propagated_rl"
  | Resolved -> "resolved"
  | Conflict -> "conflict"

let conflicts reports = List.filter (fun r -> r.outcome = Conflict) reports

module Make (F : sig
  type t

  val path : t -> string

  val content : t -> string

  val size_bits : t -> int

  val relation : t -> t -> Relation.t

  val resolve : t -> t -> content:string -> t * t

  val propagate : from:t -> into:t -> t * t

  val replicate : t -> t * t
end) (St : sig
  type t

  val paths : t -> string list

  val find : t -> string -> F.t option

  val set : t -> F.t -> t
end) =
struct
  (* Content bytes a reconciliation moved between the devices: the
     propagated or resolved payload; nothing for equivalent copies or a
     conflict left standing. *)
  let moved_bytes outcome l r =
    match outcome with
    | Propagated_left_to_right -> String.length (F.content l)
    | Propagated_right_to_left -> String.length (F.content r)
    | Resolved -> String.length (F.content l)
    | Created | Unchanged | Conflict -> 0

  let meta_bytes c = (F.size_bits c + 7) / 8

  (* Wire accounting for one reconciled pair.  Shipped: the session's
     walk exchanges both copies' stamp metadata for every shared path,
     plus the moved content.  Minimal: what a frontier-exchange
     protocol needs — nothing for equivalent copies, the dominant
     side's metadata plus its content for ordered ones, both metadatas
     (plus any resolution payload) when concurrency must be surfaced. *)
  let delta_bytes outcome l r =
    let moved = moved_bytes outcome l r in
    let shipped = meta_bytes l + meta_bytes r + moved in
    let minimal =
      match outcome with
      | Unchanged -> 0
      | Propagated_left_to_right -> meta_bytes l + moved
      | Propagated_right_to_left -> meta_bytes r + moved
      | Resolved | Conflict -> meta_bytes l + meta_bytes r + moved
      | Created -> shipped
    in
    (shipped, minimal)

  let observe_report outcome l r =
    Obs.on (fun c ->
        Vstamp_obs.Metric.inc (c.Obs.files (outcome_slug outcome));
        (match moved_bytes outcome l r with
        | 0 -> ()
        | n -> Vstamp_obs.Metric.add c.Obs.bytes n);
        let shipped, minimal = delta_bytes outcome l r in
        Obs.account c ~shipped ~minimal;
        if outcome = Conflict then Vstamp_obs.Metric.inc c.Obs.conflicts)

  let sync_file_raw policy left right =
    match F.relation left right with
    | Relation.Equal
      when not (String.equal (F.content left) (F.content right)) -> (
        (* Equivalent stamps with different content can only mean the two
           copies were created independently (separate seed lineages share
           no causal context), so this is a genuine conflict even though
           the stamps cannot see it. *)
        let resolve content =
          let l, r = F.resolve left right ~content in
          (l, r, { path = F.path left; relation = Some Equal; outcome = Resolved })
        in
        match policy with
        | Manual ->
            ( left,
              right,
              { path = F.path left; relation = Some Equal; outcome = Conflict }
            )
        | Prefer_left -> resolve (F.content left)
        | Prefer_right -> resolve (F.content right)
        | Merge f ->
            resolve (f ~left:(F.content left) ~right:(F.content right)))
    | Relation.Equal ->
        ( left,
          right,
          { path = F.path left; relation = Some Equal; outcome = Unchanged } )
    | Relation.Dominates ->
        let l, r = F.propagate ~from:left ~into:right in
        ( l,
          r,
          {
            path = F.path left;
            relation = Some Dominates;
            outcome = Propagated_left_to_right;
          } )
    | Relation.Dominated ->
        let r, l = F.propagate ~from:right ~into:left in
        ( l,
          r,
          {
            path = F.path left;
            relation = Some Dominated;
            outcome = Propagated_right_to_left;
          } )
    | Relation.Concurrent
      when String.equal (F.content left) (F.content right) ->
        (* concurrent histories (possibly unrelated lineages) but identical
           contents: observationally nothing to reconcile *)
        ( left,
          right,
          {
            path = F.path left;
            relation = Some Concurrent;
            outcome = Unchanged;
          } )
    | Relation.Concurrent -> (
        let resolve content =
          let l, r = F.resolve left right ~content in
          ( l,
            r,
            {
              path = F.path left;
              relation = Some Concurrent;
              outcome = Resolved;
            } )
        in
        match policy with
        | Manual ->
            ( left,
              right,
              {
                path = F.path left;
                relation = Some Concurrent;
                outcome = Conflict;
              } )
        | Prefer_left -> resolve (F.content left)
        | Prefer_right -> resolve (F.content right)
        | Merge f ->
            resolve (f ~left:(F.content left) ~right:(F.content right)))

  let sync_file policy left right =
    let l, r, report = sync_file_raw policy left right in
    observe_report report.outcome l r;
    (l, r, report)

  (* A replica made for the peer: its whole content crosses the wire,
     and the frontier-exchange minimum is the same — creations carry no
     redundancy. *)
  let observe_created copy =
    Obs.on (fun cs ->
        Vstamp_obs.Metric.inc (cs.Obs.files "created");
        Vstamp_obs.Metric.add cs.Obs.bytes (String.length (F.content copy));
        let b = meta_bytes copy + String.length (F.content copy) in
        Obs.account cs ~shipped:b ~minimal:b)

  let session_body policy left right =
    Obs.on (fun c -> Vstamp_obs.Metric.inc c.Obs.rounds);
    let all_paths =
      List.sort_uniq compare (St.paths left @ St.paths right)
    in
    List.fold_left
      (fun (l, r, reports) path ->
        match (St.find l path, St.find r path) with
        | None, None -> (l, r, reports)
        | Some c, None ->
            let mine, theirs = F.replicate c in
            observe_created c;
            ( St.set l mine,
              St.set r theirs,
              { path; relation = None; outcome = Created } :: reports )
        | None, Some c ->
            let theirs, mine = F.replicate c in
            observe_created c;
            ( St.set l mine,
              St.set r theirs,
              { path; relation = None; outcome = Created } :: reports )
        | Some cl, Some cr ->
            let cl, cr, report = sync_file policy cl cr in
            (St.set l cl, St.set r cr, report :: reports))
      (left, right, []) all_paths
    |> fun (l, r, reports) -> (l, r, List.rev reports)

  (* A session is one span; its trace context rides the session
     envelope (the header an on-the-wire protocol would carry in its
     first message), and the receiving side's work is a child span
     extracted from that header — so the remote half of every sync
     round continues the same trace, across processes once the
     envelope crosses a socket. *)
  let session ?(policy = Manual) left right =
    let module Tr = Vstamp_obs.Trace_ctx in
    let module J = Vstamp_obs.Jsonx in
    if not (Tr.attached ()) then session_body policy left right
    else
      Tr.with_span "sync.session" (fun () ->
          let header =
            match Tr.current () with
            | Some ctx -> Tr.to_header ctx
            | None -> ""
          in
          let l, r, reports = session_body policy left right in
          let conflicts_n = List.length (conflicts reports) in
          Tr.annotate
            [
              ("files", J.Int (List.length reports));
              ("conflicts", J.Int conflicts_n);
            ];
          Tr.with_remote_span ~header
            ~attrs:[ ("files", J.Int (List.length reports)) ]
            "sync.apply"
            (fun () -> ());
          (l, r, reports))

  (* Observational convergence: both stores hold every path with equal
     content.  (Stamp equivalence is deliberately not required: copies of
     colliding-but-independent lineages stay formally concurrent while
     being indistinguishable to any reader, and a session on them is a
     no-op.) *)
  let converged left right =
    List.for_all
      (fun path ->
        match (St.find left path, St.find right path) with
        | Some a, Some b -> String.equal (F.content a) (F.content b)
        | _ -> false)
      (List.sort_uniq compare (St.paths left @ St.paths right))
end

module Over_tree = Make (File_copy.Over_tree) (Store.Over_tree)
module Over_list = Make (File_copy.Over_list) (Store.Over_list)
module Over_packed = Make (File_copy.Over_packed) (Store.Over_packed)

include Over_tree
