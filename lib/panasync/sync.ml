open Vstamp_core
module Engine = Vstamp_sync.Engine
module Ledger = Vstamp_sync.Ledger

(* Optional live instrumentation, off by default (mirrors
   Kv_node.Obs): when attached, every session, reconciled file and
   propagated byte counts into a registry for the embedded telemetry
   server to expose.  The counters are shared by every instantiation of
   {!Make}, whichever backend it runs over.  The delta ledger (shipped /
   minimal / redundant / efficiency) is the shared {!Vstamp_sync.Ledger}
   family under the [sync_] prefix. *)
module Obs = struct
  module R = Vstamp_obs.Registry
  module M = Vstamp_obs.Metric

  type counters = {
    ledger : Ledger.counters;
        (* sync_rounds_total, sync_{shipped,minimal,redundant}_bytes_total,
           sync_delta_efficiency *)
    bytes : M.counter;  (* sync_bytes_total: content bytes moved *)
    conflicts : M.counter;
    files : string -> M.counter;  (* sync_files_total{outcome=...} *)
  }

  let state : counters option ref = ref None

  let attach ?(registry = R.default) () =
    let outcome_tbl = Hashtbl.create 8 in
    let files outcome =
      match Hashtbl.find_opt outcome_tbl outcome with
      | Some c -> c
      | None ->
          let c =
            R.counter registry
              (R.with_labels "sync_files_total" [ ("outcome", outcome) ])
          in
          Hashtbl.add outcome_tbl outcome c;
          c
    in
    state :=
      Some
        {
          ledger = Ledger.counters ~registry ~prefix:"sync_" ();
          bytes = R.counter registry "sync_bytes_total";
          conflicts = R.counter registry "sync_conflicts_total";
          files;
        }

  let detach () = state := None

  let attached () = Option.is_some !state

  let[@inline] on f = match !state with Some c -> f c | None -> ()
end

type policy =
  | Manual
  | Prefer_left
  | Prefer_right
  | Merge of (left:string -> right:string -> string)

type outcome =
  | Created  (* the file existed on only one side: a replica was made *)
  | Unchanged  (* equivalent copies *)
  | Propagated_left_to_right
  | Propagated_right_to_left
  | Resolved  (* conflict settled by the policy *)
  | Conflict  (* Manual policy: both sides left untouched *)

type report = { path : string; relation : Relation.t option; outcome : outcome }

let outcome_to_string = function
  | Created -> "created"
  | Unchanged -> "unchanged"
  | Propagated_left_to_right -> "propagated ->"
  | Propagated_right_to_left -> "propagated <-"
  | Resolved -> "resolved"
  | Conflict -> "CONFLICT"

let pp_report ppf r =
  Format.fprintf ppf "%-20s %-12s %s" r.path
    (match r.relation with None -> "-" | Some rel -> Relation.to_string rel)
    (outcome_to_string r.outcome)

let outcome_slug = function
  | Created -> "created"
  | Unchanged -> "unchanged"
  | Propagated_left_to_right -> "propagated_lr"
  | Propagated_right_to_left -> "propagated_rl"
  | Resolved -> "resolved"
  | Conflict -> "conflict"

let conflicts reports = List.filter (fun r -> r.outcome = Conflict) reports

(* The session walks left-as-initiator, right-as-responder, so the
   engine's a→b direction is left→right. *)
let of_engine_outcome = function
  | Engine.Created -> Created
  | Engine.Unchanged -> Unchanged
  | Engine.Propagated_ab -> Propagated_left_to_right
  | Engine.Propagated_ba -> Propagated_right_to_left
  | Engine.Resolved -> Resolved
  | Engine.Conflict -> Conflict

let to_engine_outcome = function
  | Created -> Engine.Created
  | Unchanged -> Engine.Unchanged
  | Propagated_left_to_right -> Engine.Propagated_ab
  | Propagated_right_to_left -> Engine.Propagated_ba
  | Resolved -> Engine.Resolved
  | Conflict -> Engine.Conflict

module Make (F : sig
  type t

  val path : t -> string

  val content : t -> string

  val size_bits : t -> int

  val relation : t -> t -> Relation.t

  val resolve : t -> t -> content:string -> t * t

  val propagate : from:t -> into:t -> t * t

  val replicate : t -> t * t

  type meta

  val meta : t -> meta

  val meta_relation : meta -> meta -> Relation.t

  val meta_bits : meta -> int

  val of_meta : path:string -> meta -> t
end) (St : sig
  type t

  val paths : t -> string list

  val find : t -> string -> F.t option

  val set : t -> F.t -> t
end) =
struct
  (* Content bytes a reconciliation moved between the devices: the
     propagated or resolved payload; nothing for equivalent copies or a
     conflict left standing. *)
  let moved_bytes outcome l r =
    match outcome with
    | Propagated_left_to_right -> String.length (F.content l)
    | Propagated_right_to_left -> String.length (F.content r)
    | Resolved -> String.length (F.content l)
    | Created | Unchanged | Conflict -> 0

  let meta_bytes c = (F.size_bits c + 7) / 8

  let sync_file_raw policy left right =
    match F.relation left right with
    | Relation.Equal
      when not (String.equal (F.content left) (F.content right)) -> (
        (* Equivalent stamps with different content can only mean the two
           copies were created independently (separate seed lineages share
           no causal context), so this is a genuine conflict even though
           the stamps cannot see it. *)
        let resolve content =
          let l, r = F.resolve left right ~content in
          (l, r, { path = F.path left; relation = Some Equal; outcome = Resolved })
        in
        match policy with
        | Manual ->
            ( left,
              right,
              { path = F.path left; relation = Some Equal; outcome = Conflict }
            )
        | Prefer_left -> resolve (F.content left)
        | Prefer_right -> resolve (F.content right)
        | Merge f ->
            resolve (f ~left:(F.content left) ~right:(F.content right)))
    | Relation.Equal ->
        ( left,
          right,
          { path = F.path left; relation = Some Equal; outcome = Unchanged } )
    | Relation.Dominates ->
        let l, r = F.propagate ~from:left ~into:right in
        ( l,
          r,
          {
            path = F.path left;
            relation = Some Dominates;
            outcome = Propagated_left_to_right;
          } )
    | Relation.Dominated ->
        let r, l = F.propagate ~from:right ~into:left in
        ( l,
          r,
          {
            path = F.path left;
            relation = Some Dominated;
            outcome = Propagated_right_to_left;
          } )
    | Relation.Concurrent
      when String.equal (F.content left) (F.content right) ->
        (* concurrent histories (possibly unrelated lineages) but identical
           contents: observationally nothing to reconcile *)
        ( left,
          right,
          {
            path = F.path left;
            relation = Some Concurrent;
            outcome = Unchanged;
          } )
    | Relation.Concurrent -> (
        let resolve content =
          let l, r = F.resolve left right ~content in
          ( l,
            r,
            {
              path = F.path left;
              relation = Some Concurrent;
              outcome = Resolved;
            } )
        in
        match policy with
        | Manual ->
            ( left,
              right,
              {
                path = F.path left;
                relation = Some Concurrent;
                outcome = Conflict;
              } )
        | Prefer_left -> resolve (F.content left)
        | Prefer_right -> resolve (F.content right)
        | Merge f ->
            resolve (f ~left:(F.content left) ~right:(F.content right)))

  (* Wire accounting for one reconciled pair, charged on the
     post-reconciliation copies (what actually crossed, with the stamps
     the session left behind).  The split is the engine's unified
     formula: shipped = both metadatas + moved payload; minimal = what a
     frontier-exchange protocol needs. *)
  let charge_of outcome l r =
    {
      Engine.meta_a = meta_bytes l;
      meta_b = meta_bytes r;
      payload = moved_bytes outcome l r;
    }

  let observe_report outcome l r =
    Obs.on (fun c ->
        Vstamp_obs.Metric.inc (c.Obs.files (outcome_slug outcome));
        (match moved_bytes outcome l r with
        | 0 -> ()
        | n -> Vstamp_obs.Metric.add c.Obs.bytes n);
        let shipped, minimal =
          Engine.delta (to_engine_outcome outcome) (charge_of outcome l r)
        in
        Ledger.account c.Obs.ledger ~shipped ~minimal;
        if outcome = Conflict then Vstamp_obs.Metric.inc c.Obs.conflicts)

  let sync_file policy left right =
    let l, r, report = sync_file_raw policy left right in
    observe_report report.outcome l r;
    (l, r, report)

  (* The engine store adapter: a panasync store keyed by path, with the
     copies' frontier view (stamp + lineage, no payload) as metadata and
     an MD5 content digest standing in for the old direct content
     comparison of observationally-equal copies. *)
  module ES = struct
    type t = St.t

    type item = F.t

    type meta = F.meta

    let keys = St.paths

    let find = St.find

    let set store _key item = St.set store item

    let meta_of = F.meta

    let relation = F.meta_relation

    let meta_bytes m = (F.meta_bits m + 7) / 8

    let payload_bytes item = String.length (F.content item)

    let digest item = Digest.string (F.content item)

    let of_meta ~key m = F.of_meta ~path:key m
  end

  module E = Engine.Make (ES)

  (* The per-path reconciliation the engine drives: [item_a] is the
     initiator's copy (a payload-less phantom when this side dominates
     it — propagation never reads the dominated content), [item_b] this
     side's. *)
  let engine_config policy =
    {
      E.reconcile =
        (fun ~key:_ item_a item_b ->
          let l, r, report = sync_file_raw policy item_a item_b in
          let relation =
            match report.relation with Some rel -> rel | None -> assert false
          in
          {
            E.item_a = l;
            item_b = r;
            relation;
            outcome = to_engine_outcome report.outcome;
            charge = charge_of report.outcome l r;
          });
      replicate = F.replicate;
    }

  let spans =
    { E.span_session = "sync.session"; span_apply = "sync.apply"; unit_key = "files" }

  let session ?(policy = Manual) left right =
    let config = engine_config policy in
    let ledger = Option.map (fun c -> c.Obs.ledger) !Obs.state in
    let on_report (er : E.report) =
      Obs.on (fun c ->
          let outcome = of_engine_outcome er.E.outcome in
          Vstamp_obs.Metric.inc (c.Obs.files (outcome_slug outcome));
          (match er.E.payload with
          | 0 -> ()
          | n -> Vstamp_obs.Metric.add c.Obs.bytes n);
          if outcome = Conflict then Vstamp_obs.Metric.inc c.Obs.conflicts)
    in
    let left, right, ereports =
      E.session ?ledger ~on_report ~spans config left right
    in
    let reports =
      List.map
        (fun (er : E.report) ->
          {
            path = er.E.key;
            relation = er.E.relation;
            outcome = of_engine_outcome er.E.outcome;
          })
        ereports
    in
    (left, right, reports)

  (* Observational convergence: both stores hold every path with equal
     content.  (Stamp equivalence is deliberately not required: copies of
     colliding-but-independent lineages stay formally concurrent while
     being indistinguishable to any reader, and a session on them is a
     no-op.) *)
  let converged left right =
    List.for_all
      (fun path ->
        match (St.find left path, St.find right path) with
        | Some a, Some b -> String.equal (F.content a) (F.content b)
        | _ -> false)
      (List.sort_uniq compare (St.paths left @ St.paths right))
end

module Over_tree = Make (File_copy.Over_tree) (Store.Over_tree)
module Over_list = Make (File_copy.Over_list) (Store.Over_list)
module Over_packed = Make (File_copy.Over_packed) (Store.Over_packed)

include Over_tree
