module Smap = Map.Make (String)

(* The store only needs the copy operations involved in local editing
   and accounting; the reconciliation operations stay in {!Sync}. *)
module Make (F : sig
  type t

  val create : path:string -> content:string -> t

  val edit : t -> content:string -> t

  val path : t -> string

  val size_bits : t -> int

  val pp : Format.formatter -> t -> unit
end) =
struct
  type file = F.t

  type t = { name : string; files : F.t Smap.t }

  let create ~name = { name; files = Smap.empty }

  let name s = s.name

  let paths s = List.map fst (Smap.bindings s.files)

  let find s path = Smap.find_opt path s.files

  let file_count s = Smap.cardinal s.files

  let mem s path = Smap.mem path s.files

  let add_new s ~path ~content =
    if Smap.mem path s.files then
      invalid_arg
        (Printf.sprintf "Store.add_new: %s already exists in %s" path s.name)
    else { s with files = Smap.add path (F.create ~path ~content) s.files }

  let edit s ~path ~content =
    match Smap.find_opt path s.files with
    | None -> invalid_arg (Printf.sprintf "Store.edit: no %s in %s" path s.name)
    | Some c -> { s with files = Smap.add path (F.edit c ~content) s.files }

  let remove s ~path = { s with files = Smap.remove path s.files }

  let set s copy = { s with files = Smap.add (F.path copy) copy s.files }

  let fold f s acc = Smap.fold (fun _ c acc -> f c acc) s.files acc

  let total_tracking_bits s = fold (fun c acc -> acc + F.size_bits c) s 0

  let pp ppf s =
    Format.fprintf ppf "store %s:@." s.name;
    Smap.iter (fun _ c -> Format.fprintf ppf "  %a@." F.pp c) s.files
end

module Over_tree = Make (File_copy.Over_tree)
module Over_list = Make (File_copy.Over_list)
module Over_packed = Make (File_copy.Over_packed)

include Over_tree
