(** One device's collection of stamped file copies.

    A store models a laptop, phone or server holding copies of replicated
    files.  Stores never talk to a central service: files appear by local
    creation ({!add_new}) or by receiving a replica during a
    {!Sync.session}. *)

type t

val create : name:string -> t

val name : t -> string

val paths : t -> string list
(** Sorted logical paths present in this store. *)

val find : t -> string -> File_copy.t option

val file_count : t -> int

val mem : t -> string -> bool

val add_new : t -> path:string -> content:string -> t
(** Create a brand-new logical file on this device.
    @raise Invalid_argument if the path already exists here. *)

val edit : t -> path:string -> content:string -> t
(** @raise Invalid_argument if the path is absent. *)

val remove : t -> path:string -> t

val set : t -> File_copy.t -> t
(** Insert or replace the copy at its own path. *)

val fold : (File_copy.t -> 'a -> 'a) -> t -> 'a -> 'a

val total_tracking_bits : t -> int
(** Total stamp overhead across the store. *)

val pp : Format.formatter -> t -> unit
