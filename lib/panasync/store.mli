(** One device's collection of stamped file copies.

    A store models a laptop, phone or server holding copies of replicated
    files.  Stores never talk to a central service: files appear by local
    creation ({!add_new}) or by receiving a replica during a
    {!Sync.session}.

    Generic in the file-copy implementation (and hence the stamp
    backend) via {!Make}; the top level is the default (tree)
    instantiation, whose [file] type is {!File_copy.t}. *)

module Make (F : sig
  type t

  val create : path:string -> content:string -> t

  val edit : t -> content:string -> t

  val path : t -> string

  val size_bits : t -> int

  val pp : Format.formatter -> t -> unit
end) : sig
  type file = F.t

  type t

  val create : name:string -> t

  val name : t -> string

  val paths : t -> string list
  (** Sorted logical paths present in this store. *)

  val find : t -> string -> file option

  val file_count : t -> int

  val mem : t -> string -> bool

  val add_new : t -> path:string -> content:string -> t
  (** Create a brand-new logical file on this device.
      @raise Invalid_argument if the path already exists here. *)

  val edit : t -> path:string -> content:string -> t
  (** @raise Invalid_argument if the path is absent. *)

  val remove : t -> path:string -> t

  val set : t -> file -> t
  (** Insert or replace the copy at its own path. *)

  val fold : (file -> 'a -> 'a) -> t -> 'a -> 'a

  val total_tracking_bits : t -> int
  (** Total stamp overhead across the store. *)

  val pp : Format.formatter -> t -> unit
end

module Over_tree : module type of Make (File_copy.Over_tree)

module Over_list : module type of Make (File_copy.Over_list)

module Over_packed : module type of Make (File_copy.Over_packed)

include module type of Over_tree with type t = Over_tree.t
(** The default (tree-backed) instantiation. *)
