(** Interval Tree Clocks (Almeida, Baquero & Fonte, OPODIS 2008).

    The same authors' successor to version stamps, included here as the
    paper's "future work" line made concrete: where a version stamp's id
    is an antichain of binary strings and its update component a second
    antichain, an ITC stamp splits the real interval [0,1) into an {e id
    tree} and counts events per region in an {e event tree}.  The fork /
    event (update) / join protocol and the frontier-only ordering are the
    same; the payoff is counters: repeated updates cost increments, not
    structure, so ITC stamps stay smaller under update-heavy workloads.
    Experiment E8 compares the two quantitatively. *)

(** Id trees: a binary partition of the identifier space.  [One] owns the
    whole subinterval, [Zero] none of it. *)
module Id : sig
  type t = Zero | One | Branch of t * t

  val norm : t -> t
  (** Collapse [(0,0)] and [(1,1)]. *)

  val well_formed : t -> bool
  (** Normalized everywhere. *)

  val split : t -> t * t
  (** Autonomous division of ownership — the id part of fork. *)

  exception Overlap
  (** Raised by {!sum} on overlapping ids (impossible in correct use:
      live ids are pairwise disjoint). *)

  val sum : t -> t -> t
  (** Union of disjoint ids — the id part of join. *)

  val disjoint : t -> t -> bool

  val node_count : t -> int

  val pp : Format.formatter -> t -> unit
end

(** Event trees: per-region update counters. *)
module Event : sig
  type t = Leaf of int | Node of int * t * t

  val zero : t

  val value : t -> int
  (** Root counter. *)

  val min_value : t -> int

  val max_value : t -> int

  val norm : t -> t
  (** Canonical form: equal sibling leaves collapse, common minima sink
      into the root. *)

  val well_formed : t -> bool
  (** Normalized and non-negative. *)

  val leq : t -> t -> bool
  (** Region-wise comparison (expects normalized trees, which every
      operation here maintains). *)

  val join : t -> t -> t
  (** Region-wise maximum, normalized. *)

  val equal : t -> t -> bool
  (** Equality of normal forms. *)

  val node_count : t -> int

  val pp : Format.formatter -> t -> unit
end

type t
(** An ITC stamp: id tree plus event tree. *)

val seed : t
(** [(1; 0)] — sole owner, no events. *)

val make : id:Id.t -> event:Event.t -> t
(** Assemble a stamp (the event tree is normalized). *)

val id : t -> Id.t

val event_tree : t -> Event.t

val update : t -> t
(** Record an event: inflate the event tree inside the owned region
    ([fill]), or grow it minimally when inflation cannot absorb the event.
    @raise Invalid_argument on an anonymous (zero-id) stamp. *)

val fork : t -> t * t
(** Split ownership; both sides keep the event tree. *)

val join : t -> t -> t
(** Merge ids and event knowledge.
    @raise Id.Overlap if the ids are not disjoint. *)

val peek : t -> t
(** An anonymous copy (zero id): carries knowledge, cannot update —
    useful as a message timestamp. *)

val sync : t -> t -> t * t
(** [fork (join a b)]. *)

val leq : t -> t -> bool
(** Frontier order on coexisting stamps — compares event trees only. *)

val relation : t -> t -> Vstamp_core.Relation.t

val equal : t -> t -> bool

val size_bits : t -> int
(** Exact wire size under a prefix-free tree code with varint counters —
    comparable with {!Vstamp_core.Stamp.size_bits} and
    {!Vstamp_codec.Wire.stamp_bits}. *)

val well_formed : t -> bool

val pp : Format.formatter -> t -> unit
(** Renders as [(id;event)], e.g. [((1,0);(0,1,0))]. *)

val to_string : t -> string

(** Compact wire format: prefix-free tree codes with varint counters.
    The encoding is canonical on normalized stamps (which every operation
    maintains); the decoder rejects unnormalized trees. *)
module Wire : sig
  type error = Truncated | Malformed of string

  val pp_error : Format.formatter -> error -> unit

  val to_string : t -> string

  val of_string : string -> (t, error) result

  val bits : t -> int
  (** Exact encoded length (equals {!size_bits}). *)
end
