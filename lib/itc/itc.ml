open Vstamp_core

module Id = struct
  type t = Zero | One | Branch of t * t

  let norm = function
    | Branch (Zero, Zero) -> Zero
    | Branch (One, One) -> One
    | i -> i

  let rec well_formed = function
    | Zero | One -> true
    | Branch (Zero, Zero) | Branch (One, One) -> false
    | Branch (l, r) -> well_formed l && well_formed r

  let rec split = function
    | Zero -> (Zero, Zero)
    | One -> (Branch (One, Zero), Branch (Zero, One))
    | Branch (Zero, i) ->
        let l, r = split i in
        (Branch (Zero, l), Branch (Zero, r))
    | Branch (i, Zero) ->
        let l, r = split i in
        (Branch (l, Zero), Branch (r, Zero))
    | Branch (l, r) -> (Branch (l, Zero), Branch (Zero, r))

  exception Overlap

  let rec sum a b =
    match (a, b) with
    | Zero, i | i, Zero -> i
    | One, One | One, Branch _ | Branch _, One -> raise Overlap
    | Branch (l1, r1), Branch (l2, r2) -> norm (Branch (sum l1 l2, sum r1 r2))

  let rec disjoint a b =
    match (a, b) with
    | Zero, _ | _, Zero -> true
    | One, _ | _, One -> false
    | Branch (l1, r1), Branch (l2, r2) -> disjoint l1 l2 && disjoint r1 r2

  let rec node_count = function
    | Zero | One -> 1
    | Branch (l, r) -> 1 + node_count l + node_count r

  let rec pp ppf = function
    | Zero -> Format.pp_print_char ppf '0'
    | One -> Format.pp_print_char ppf '1'
    | Branch (l, r) -> Format.fprintf ppf "(%a,%a)" pp l pp r
end

module Event = struct
  type t = Leaf of int | Node of int * t * t

  let zero = Leaf 0

  let value = function Leaf n -> n | Node (n, _, _) -> n

  let lift m = function
    | Leaf n -> Leaf (n + m)
    | Node (n, l, r) -> Node (n + m, l, r)

  let sink m = function
    | Leaf n -> Leaf (n - m)
    | Node (n, l, r) -> Node (n - m, l, r)

  let rec min_value = function
    | Leaf n -> n
    | Node (n, l, r) -> n + min (min_value l) (min_value r)

  let rec max_value = function
    | Leaf n -> n
    | Node (n, l, r) -> n + max (max_value l) (max_value r)

  let rec norm = function
    | Leaf n -> Leaf n
    | Node (n, l, r) -> (
        match (norm l, norm r) with
        | Leaf m1, Leaf m2 when m1 = m2 -> Leaf (n + m1)
        | l, r ->
            let m = min (min_value l) (min_value r) in
            Node (n + m, sink m l, sink m r))

  let rec well_formed = function
    | Leaf n -> n >= 0
    | Node (_, Leaf m1, Leaf m2) when m1 = m2 -> false
    | Node (n, l, r) ->
        n >= 0 && well_formed l && well_formed r
        && min (min_value l) (min_value r) = 0

  (* [leq] with the root offsets tracked explicitly *)
  let leq a b =
    let rec go da a db b =
      match (a, b) with
      | Leaf n1, Leaf n2 -> da + n1 <= db + n2
      (* normalized trees have a zero-minimum child, so the root value is
         the tree minimum: a uniform region fits iff it fits the root *)
      | Leaf n1, Node (n2, _, _) -> da + n1 <= db + n2
      | Node (n1, l1, r1), (Leaf _ as leaf) ->
          go (da + n1) l1 db leaf && go (da + n1) r1 db leaf
      | Node (n1, l1, r1), Node (n2, l2, r2) ->
          da + n1 <= db + n2
          && go (da + n1) l1 (db + n2) l2
          && go (da + n1) r1 (db + n2) r2
    in
    go 0 a 0 b

  let rec join a b =
    match (a, b) with
    | Leaf n1, Leaf n2 -> Leaf (max n1 n2)
    | Leaf n1, (Node _ as e) -> join (Node (n1, Leaf 0, Leaf 0)) e
    | (Node _ as e), Leaf n2 -> join e (Node (n2, Leaf 0, Leaf 0))
    | Node (n1, l1, r1), Node (n2, l2, r2) ->
        if n1 > n2 then join b a
        else
          norm
            (Node (n1, join l1 (lift (n2 - n1) l2), join r1 (lift (n2 - n1) r2)))

  let equal a b = norm a = norm b

  let rec node_count = function
    | Leaf _ -> 1
    | Node (_, l, r) -> 1 + node_count l + node_count r

  let rec pp ppf = function
    | Leaf n -> Format.pp_print_int ppf n
    | Node (n, l, r) -> Format.fprintf ppf "(%d,%a,%a)" n pp l pp r
end

type t = { id : Id.t; event : Event.t }

let seed = { id = Id.One; event = Event.zero }

let id t = t.id

let event_tree t = t.event

let make ~id ~event = { id; event = Event.norm event }

(* --- fill and grow: the event (update) operation --- *)

let rec fill i e =
  match (i, e) with
  | Id.Zero, e -> e
  | Id.One, e -> Event.Leaf (Event.max_value e)
  | _, Event.Leaf _ -> e
  | Id.Branch (Id.One, ir), Event.Node (n, el, er) ->
      let er' = fill ir er in
      let el' = Event.Leaf (max (Event.max_value el) (Event.min_value er')) in
      Event.norm (Event.Node (n, el', er'))
  | Id.Branch (il, Id.One), Event.Node (n, el, er) ->
      let el' = fill il el in
      let er' = Event.Leaf (max (Event.max_value er) (Event.min_value el')) in
      Event.norm (Event.Node (n, el', er'))
  | Id.Branch (il, ir), Event.Node (n, el, er) ->
      Event.norm (Event.Node (n, fill il el, fill ir er))

let rec grow i e =
  match (i, e) with
  | Id.One, Event.Leaf n -> (Event.Leaf (n + 1), 0)
  | _, Event.Leaf n ->
      let e', c = grow i (Event.Node (n, Event.Leaf 0, Event.Leaf 0)) in
      (e', c + 1000)
  | Id.Branch (Id.Zero, ir), Event.Node (n, el, er) ->
      let er', c = grow ir er in
      (Event.Node (n, el, er'), c + 1)
  | Id.Branch (il, Id.Zero), Event.Node (n, el, er) ->
      let el', c = grow il el in
      (Event.Node (n, el', er), c + 1)
  | Id.Branch (il, ir), Event.Node (n, el, er) ->
      let el', cl = grow il el in
      let er', cr = grow ir er in
      if cl < cr then (Event.Node (n, el', er), cl + 1)
      else (Event.Node (n, el, er'), cr + 1)
  | Id.Zero, _ | Id.One, Event.Node _ ->
      invalid_arg "Itc.grow: anonymous or saturated id cannot grow"

let update t =
  if t.id = Id.Zero then
    invalid_arg "Itc.update: anonymous stamp (zero id) cannot record events";
  let filled = fill t.id t.event in
  if not (Event.equal filled t.event) then { t with event = Event.norm filled }
  else
    let grown, _ = grow t.id t.event in
    { t with event = Event.norm grown }

let fork t =
  let l, r = Id.split t.id in
  ({ id = l; event = t.event }, { id = r; event = t.event })

let join a b =
  { id = Id.sum a.id b.id; event = Event.join a.event b.event }

let peek t = { id = Id.Zero; event = t.event }

let sync a b = fork (join a b)

let leq a b = Event.leq a.event b.event

let relation a b = Relation.of_leq_pair ~leq_ab:(leq a b) ~leq_ba:(leq b a)

let equal a b = a.id = b.id && Event.equal a.event b.event

(* --- wire size: prefix-free tree codes plus varint counters --- *)

let size_bits t =
  let w = Vstamp_codec.Bitio.Writer.create () in
  let rec write_id = function
    | Id.Zero ->
        Vstamp_codec.Bitio.Writer.bit w false;
        Vstamp_codec.Bitio.Writer.bit w false
    | Id.One ->
        Vstamp_codec.Bitio.Writer.bit w false;
        Vstamp_codec.Bitio.Writer.bit w true
    | Id.Branch (l, r) ->
        Vstamp_codec.Bitio.Writer.bit w true;
        write_id l;
        write_id r
  in
  let rec write_event = function
    | Event.Leaf n ->
        Vstamp_codec.Bitio.Writer.bit w false;
        Vstamp_codec.Bitio.Writer.varint w n
    | Event.Node (n, l, r) ->
        Vstamp_codec.Bitio.Writer.bit w true;
        Vstamp_codec.Bitio.Writer.varint w n;
        write_event l;
        write_event r
  in
  write_id t.id;
  write_event t.event;
  Vstamp_codec.Bitio.Writer.bit_length w

let well_formed t = Id.well_formed t.id && Event.well_formed (Event.norm t.event)

let pp ppf t = Format.fprintf ppf "(%a;%a)" Id.pp t.id Event.pp t.event

let to_string t = Format.asprintf "%a" pp t

(* --- wire codec: prefix-free tree codes, varint counters --- *)

module Wire = struct
  type error = Truncated | Malformed of string

  let pp_error ppf = function
    | Truncated -> Format.pp_print_string ppf "truncated input"
    | Malformed what -> Format.fprintf ppf "malformed input: %s" what

  let write_stamp w t =
    let module W = Vstamp_codec.Bitio.Writer in
    let rec write_id = function
      | Id.Zero ->
          W.bit w false;
          W.bit w false
      | Id.One ->
          W.bit w false;
          W.bit w true
      | Id.Branch (l, r) ->
          W.bit w true;
          write_id l;
          write_id r
    in
    let rec write_event = function
      | Event.Leaf n ->
          W.bit w false;
          W.varint w n
      | Event.Node (n, l, r) ->
          W.bit w true;
          W.varint w n;
          write_event l;
          write_event r
    in
    write_id t.id;
    write_event t.event

  let to_string t =
    let w = Vstamp_codec.Bitio.Writer.create () in
    write_stamp w t;
    Vstamp_codec.Bitio.Writer.contents w

  let read_stamp r =
    let module R = Vstamp_codec.Bitio.Reader in
    let rec read_id () =
      if R.bit r then
        let l = read_id () in
        let right = read_id () in
        match Id.norm (Id.Branch (l, right)) with
        | Id.Branch _ as b -> b
        | Id.Zero | Id.One -> failwith "unnormalized id branch"
      else if R.bit r then Id.One
      else Id.Zero
    in
    let rec read_event () =
      if R.bit r then begin
        let n = R.varint r in
        let l = read_event () in
        let right = read_event () in
        match Event.norm (Event.Node (n, l, right)) with
        | Event.Node _ as node -> node
        | Event.Leaf _ -> failwith "unnormalized event node"
      end
      else Event.Leaf (R.varint r)
    in
    let id = read_id () in
    let event = read_event () in
    { id; event }

  let of_string data =
    match
      let r = Vstamp_codec.Bitio.Reader.of_string data in
      read_stamp r
    with
    | t -> Ok t
    | exception Vstamp_codec.Bitio.Truncated -> Error Truncated
    | exception Failure m -> Error (Malformed m)

  let bits t =
    let w = Vstamp_codec.Bitio.Writer.create () in
    write_stamp w t;
    Vstamp_codec.Bitio.Writer.bit_length w
end
