module Imap = Map.Make (Int)
open Vstamp_core

type id = int

type t = int Imap.t
(* Invariant: no zero entries are stored, so structural equality of maps
   coincides with vector equality under the missing-entry-is-zero
   convention. *)

let zero = Imap.empty

let get t id = match Imap.find_opt id t with Some c -> c | None -> 0

let set t id c =
  if c < 0 then invalid_arg "Version_vector.set: negative counter"
  else if c = 0 then Imap.remove id t
  else Imap.add id c t

let increment t id = Imap.add id (get t id + 1) t

let of_list entries = List.fold_left (fun acc (i, c) -> set acc i c) zero entries

let to_list t = Imap.bindings t

let entry_count t = Imap.cardinal t

let total_events t = Imap.fold (fun _ c acc -> acc + c) t 0

(* Wire-size estimate in bits: each stored entry pays its id and its
   counter, both as minimal-width binary numbers (at least one bit). *)
let bits_for n = if n <= 1 then 1 else
  let rec go acc n = if n = 0 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let size_bits t =
  Imap.fold (fun id c acc -> acc + bits_for id + bits_for c) t 0

let equal = Imap.equal Int.equal

let compare = Imap.compare Int.compare

let leq a b = Imap.for_all (fun id c -> c <= get b id) a

let relation a b = Relation.of_leq_pair ~leq_ab:(leq a b) ~leq_ba:(leq b a)

let merge a b = Imap.union (fun _ ca cb -> Some (max ca cb)) a b

let dominated_by_merge x vs = leq x (List.fold_left merge zero vs)

let pp ppf t =
  Format.fprintf ppf "<%a>"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
       (fun ppf (id, c) -> Format.fprintf ppf "%d:%d" id c))
    (to_list t)

let to_string t = Format.asprintf "%a" pp t

(* A replica owning a vector: the paper's Figure 1 setting. *)
module Replica = struct
  type nonrec t = { self : id; vv : t }

  let create ~id = { self = id; vv = zero }

  let id r = r.self

  let vector r = r.vv

  let update r = { r with vv = increment r.vv r.self }

  let sync a b =
    let merged = merge a.vv b.vv in
    ({ a with vv = merged }, { b with vv = merged })

  let relation a b = relation a.vv b.vv

  let pp ppf r = Format.fprintf ppf "r%d%a" r.self pp r.vv
end
