(** Classic version vectors (Parker et al. 1983) — the paper's baseline.

    A version vector maps replica identifiers to update counters; missing
    entries count as zero.  Replicas detect mutual inconsistency by
    pointwise comparison and synchronize by pointwise maximum.  The
    mechanism {e requires} every replica to hold a unique identifier
    obtained from some global source — the limitation version stamps
    remove ({!Id_source} models the ways that acquisition can fail). *)

type id = int
(** Replica identifier.  Uniqueness is the caller's obligation. *)

type t
(** A version vector.  Zero entries are never stored, so {!equal} is
    structural. *)

val zero : t
(** The empty vector (all counters zero). *)

val get : t -> id -> int

val set : t -> id -> int -> t
(** @raise Invalid_argument on a negative counter. *)

val increment : t -> id -> t
(** Bump one replica's counter — an update at that replica. *)

val of_list : (id * int) list -> t

val to_list : t -> (id * int) list
(** Non-zero entries, sorted by id. *)

val entry_count : t -> int
(** Number of non-zero entries — vector width. *)

val total_events : t -> int
(** Sum of all counters. *)

val bits_for : int -> int
(** Minimal binary width of a non-negative integer (at least 1). *)

val size_bits : t -> int
(** Wire-size estimate: minimal binary width of each stored id and
    counter.  Comparable with {!Vstamp_core.Stamp.size_bits}. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order for containers. *)

val leq : t -> t -> bool
(** Pointwise comparison — causal domination. *)

val relation : t -> t -> Vstamp_core.Relation.t
(** Equivalent / obsolete / inconsistent, as in the paper's Figure 1. *)

val merge : t -> t -> t
(** Pointwise maximum — synchronization. *)

val dominated_by_merge : t -> t list -> bool
(** Set-quantified domination, mirroring
    {!Vstamp_core.Stamp.dominated_by_join}. *)

val pp : Format.formatter -> t -> unit
(** Renders as [<id:count,...>]. *)

val to_string : t -> string

(** A replica paired with its vector — the Figure 1 usage pattern. *)
module Replica : sig
  type vv := t

  type t

  val create : id:id -> t
  (** A replica with a fresh, externally allocated identity. *)

  val id : t -> id

  val vector : t -> vv

  val update : t -> t
  (** Local update: bump own counter. *)

  val sync : t -> t -> t * t
  (** Both replicas leave with the merged vector. *)

  val relation : t -> t -> Vstamp_core.Relation.t

  val pp : Format.formatter -> t -> unit
end
