(** Models of unique-identifier acquisition.

    Version vectors, dynamic version vectors and vector clocks all need a
    globally unique id per participant.  The paper's motivation is that
    the usual ways of getting one break under partitioned operation:

    - {!Central} — an always-reachable counter service (the
      well-connected assumption; never fails, never collides);
    - {!Partitioned} — the same service, but reachable only from the
      network partition it lives in: allocation from any other group
      fails with [`Unavailable].  This is the scenario of experiment E6
      where replica creation simply cannot proceed;
    - {!Random} — probabilistic ids (the workaround the paper explicitly
      rejects): always "succeeds", but collisions silently corrupt
      causality; the model counts them.

    Version stamps need none of this: {!Vstamp_core.Stamp.fork} is local. *)

type error = [ `Unavailable ]

type policy =
  | Central
  | Partitioned of { server_group : int }
  | Random of { bits : int }

type t

val make : ?seed:int64 -> policy -> t

val alloc : ?group:int -> t -> (int * t, error * t) result
(** Request an id from a replica living in [group] (default [0]).
    [Partitioned] refuses requests from other groups and counts the
    failure; [Random] may silently reuse an id and counts the
    collision. *)

val issued_count : t -> int

val collisions : t -> int
(** Ids issued more than once (only [Random] can be non-zero). *)

val failures : t -> int
(** Refused allocations (only [Partitioned] can be non-zero). *)

val policy : t -> policy

val pp_policy : Format.formatter -> policy -> unit
