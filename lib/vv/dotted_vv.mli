(** Dotted version vectors (Almeida, Baquero, Gonçalves, Preguiça &
    Fonte, 2012/2014) — server-side causality for key-value stores.

    The same research lineage as version stamps, attacking a different
    corner of the problem: a {e fixed, known} set of server replicas
    accepts writes from {e unboundedly many anonymous clients}.  Each
    stored value carries the {e dot} (server id, per-server sequence) of
    the write that produced it, and the whole entry carries one causal
    context.  A put echoing the context of a previous get causally
    overwrites exactly the siblings that get returned; anything written
    concurrently survives as a sibling — with one context per entry
    rather than one vector per value (the "sibling explosion" fix Riak
    adopted).

    Servers still need unique ids — this is the mechanism for the
    data-center side of the world, where version stamps' autonomous forks
    are unnecessary; the contrast is part of the repository's survey. *)

type dot = { replica : Version_vector.id; counter : int }
(** Identity of one write event. *)

val pp_dot : Format.formatter -> dot -> unit

val dot_compare : dot -> dot -> int

type 'a t
(** The server-side state of one key. *)

val empty : 'a t

val is_empty : 'a t -> bool

val values : 'a t -> 'a list
(** Current siblings (concurrent values). *)

val dots : 'a t -> dot list

val context : 'a t -> Version_vector.t
(** Everything this replica has seen for the key. *)

val conflict : 'a t -> bool
(** More than one sibling. *)

val get : 'a t -> 'a list * Version_vector.t
(** Client read: values plus the context to echo into the next {!put}. *)

val put : 'a t -> replica:Version_vector.id -> context:Version_vector.t -> 'a -> 'a t
(** Server write at [replica].  Siblings covered by the client's
    [context] are superseded; concurrent ones survive.  A blind put
    (zero context) supersedes nothing. *)

val remove_covered : 'a t -> context:Version_vector.t -> 'a t
(** Causal delete: siblings covered by [context] disappear, concurrent
    ones survive, and the merged context remains as a tombstone that
    prevents resurrection through {!sync}. *)

val sync : 'a t -> 'a t -> 'a t
(** Anti-entropy: a sibling survives iff the other side also stores it
    or has never seen its dot.  Commutative and idempotent. *)

val covered : dot -> Version_vector.t -> bool
(** [covered d vv] iff [vv] includes the event [d]. *)

val well_formed : 'a t -> bool
(** Sibling dots are distinct and covered by the context. *)

val size_bits : 'a t -> int
(** Metadata size (context plus dots; values not counted). *)

val pp :
  (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
