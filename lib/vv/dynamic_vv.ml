type t = {
  self : Version_vector.id;
  vv : Version_vector.t;
  retired : Version_vector.t;
      (* Final counter values of retired replicas still being tracked;
         an entry leaves once every live replica's vv dominates it, which
         the caller establishes via [compact]. *)
}

let create ~id = { self = id; vv = Version_vector.zero; retired = Version_vector.zero }

let id r = r.self

let vector r = r.vv

let update r = { r with vv = Version_vector.increment r.vv r.self }

let fork r ~new_id =
  (* the child starts with the parent's knowledge; its entry appears in
     vectors only at its first update — the Ratner-style lazy growth *)
  (r, { r with self = new_id })

let effective r = Version_vector.merge r.vv r.retired

let join a b ~survivor_id =
  {
    self = survivor_id;
    vv = Version_vector.merge a.vv b.vv;
    retired = Version_vector.merge a.retired b.retired;
  }

let retire r =
  (* the replica disappears; its counter becomes retirement baggage that
     some surviving replica must absorb *)
  { r with vv = Version_vector.zero; retired = effective r }

let absorb survivor departed =
  {
    survivor with
    vv = Version_vector.merge survivor.vv departed.vv;
    retired = Version_vector.merge survivor.retired departed.retired;
  }

let sync a b =
  let vv = Version_vector.merge a.vv b.vv in
  let retired = Version_vector.merge a.retired b.retired in
  ({ a with vv; retired }, { b with vv; retired })

let compact ~live r =
  (* drop retired entries that every live replica already dominates *)
  let retired =
    List.filter
      (fun (rid, c) ->
        not
          (List.for_all (fun other -> Version_vector.get other.vv rid >= c) live))
      (Version_vector.to_list r.retired)
    |> Version_vector.of_list
  in
  { r with retired }

let gc ~live r = compact ~live r

let retired_vector r = r.retired

let retired_entry_count r = Version_vector.entry_count r.retired

let relation a b = Version_vector.relation (effective a) (effective b)

let leq a b = Version_vector.leq (effective a) (effective b)

let entry_count r =
  Version_vector.entry_count r.vv + Version_vector.entry_count r.retired

let size_bits r =
  Version_vector.size_bits r.vv + Version_vector.size_bits r.retired

let pp ppf r =
  Format.fprintf ppf "r%d%a" r.self Version_vector.pp (effective r)

let to_string r = Format.asprintf "%a" pp r
