(** Vector clocks (Fidge 1989, Mattern 1989) — version vectors' twin.

    Where version vectors order {e replicas in a frontier}, vector clocks
    order {e all events} of a distributed computation ([happened_before]
    is Lamport causality).  The paper contrasts the two roles in its
    introduction; this module exists so the simulator can demonstrate the
    distinction: vector clocks can order any two recorded events, version
    stamps deliberately discard the information needed for that in
    exchange for autonomous identity management. *)

type t
(** A process with its clock. *)

val create : id:Version_vector.id -> t
(** A process with an externally allocated unique id. *)

val id : t -> Version_vector.id

val clock : t -> Version_vector.t
(** Current clock value — the timestamp of the latest local event. *)

val tick : t -> t
(** Local event. *)

val send : t -> t * Version_vector.t
(** Local send event; returns the timestamp to attach to the message. *)

val receive : t -> Version_vector.t -> t
(** Receive event: merge the message timestamp, then tick. *)

val leq : Version_vector.t -> Version_vector.t -> bool
(** Timestamp comparison. *)

val happened_before : Version_vector.t -> Version_vector.t -> bool
(** Strict causal precedence of events. *)

val concurrent : Version_vector.t -> Version_vector.t -> bool

val relation : Version_vector.t -> Version_vector.t -> Vstamp_core.Relation.t

val pp : Format.formatter -> t -> unit

val to_string : t -> string
