open Vstamp_core

type t = { self : Version_vector.id; clock : Version_vector.t }

let create ~id = { self = id; clock = Version_vector.zero }

let id t = t.self

let clock t = t.clock

let tick t = { t with clock = Version_vector.increment t.clock t.self }

let send t =
  let t = tick t in
  (t, t.clock)

let receive t msg =
  { t with clock = Version_vector.increment (Version_vector.merge t.clock msg) t.self }

let leq a b = Version_vector.leq a b

let happened_before a b = leq a b && not (Version_vector.equal a b)

let concurrent a b = (not (leq a b)) && not (leq b a)

let relation a b = Relation.of_leq_pair ~leq_ab:(leq a b) ~leq_ba:(leq b a)

let pp ppf t = Format.fprintf ppf "p%d%a" t.self Version_vector.pp t.clock

let to_string t = Format.asprintf "%a" pp t
