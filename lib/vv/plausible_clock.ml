open Vstamp_core

type t = { entries : int array; total : int }
(* [entries.(k)] sums the updates of all replicas with [id mod r = k];
   [total] is the sum of all entries, the Lamport-style tiebreaker the
   REV construction carries. *)

let create ~size =
  if size <= 0 then invalid_arg "Plausible_clock.create: size must be positive";
  { entries = Array.make size 0; total = 0 }

let size t = Array.length t.entries

let slot t ~id =
  let r = Array.length t.entries in
  ((id mod r) + r) mod r

let get t k = t.entries.(k)

let increment t ~id =
  let entries = Array.copy t.entries in
  let k = slot t ~id in
  entries.(k) <- entries.(k) + 1;
  { entries; total = t.total + 1 }

let merge a b =
  if Array.length a.entries <> Array.length b.entries then
    invalid_arg "Plausible_clock.merge: size mismatch";
  let entries = Array.mapi (fun i c -> max c b.entries.(i)) a.entries in
  { entries; total = Array.fold_left ( + ) 0 entries }

let leq a b =
  if Array.length a.entries <> Array.length b.entries then
    invalid_arg "Plausible_clock.leq: size mismatch";
  let ok = ref true in
  Array.iteri (fun i c -> if c > b.entries.(i) then ok := false) a.entries;
  !ok

let equal a b = a.entries = b.entries

let relation a b = Relation.of_leq_pair ~leq_ab:(leq a b) ~leq_ba:(leq b a)

let size_bits t =
  Array.fold_left
    (fun acc c -> acc + Version_vector.bits_for c)
    0 t.entries

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
       Format.pp_print_int)
    (Array.to_list t.entries)

let to_string t = Format.asprintf "%a" pp t
