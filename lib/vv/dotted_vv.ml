type dot = { replica : Version_vector.id; counter : int }

let pp_dot ppf d = Format.fprintf ppf "(%d,%d)" d.replica d.counter

let dot_compare a b =
  match Int.compare a.replica b.replica with
  | 0 -> Int.compare a.counter b.counter
  | c -> c

type 'a t = { ctx : Version_vector.t; siblings : ('a * dot) list }
(* [ctx] summarizes every write event this replica has ever seen for the
   key; [siblings] are the concurrent values still alive, each tagged
   with the dot (server id, per-server sequence) of the write that
   produced it.  Invariant: every sibling dot is covered by [ctx]. *)

let empty = { ctx = Version_vector.zero; siblings = [] }

let is_empty s = s.siblings = []

let values s = List.map fst s.siblings

let dots s = List.map snd s.siblings

let context s = s.ctx

let covered dot vv = Version_vector.get vv dot.replica >= dot.counter

let well_formed s =
  List.for_all (fun (_, d) -> covered d s.ctx) s.siblings
  && List.length (List.sort_uniq dot_compare (dots s)) = List.length s.siblings

(* Client read: the values plus the causal context to echo into the next
   put.  Reading the context is what makes a later overwrite causal. *)
let get s = (values s, s.ctx)

(* Server-side write.  [context] is what the client last read (or zero
   for a blind put).  Siblings the client had seen are superseded; the
   others were written concurrently and survive next to the new value. *)
let put s ~replica ~context value =
  let counter = Version_vector.get s.ctx replica + 1 in
  let dot = { replica; counter } in
  let survivors = List.filter (fun (_, d) -> not (covered d context)) s.siblings in
  {
    ctx = Version_vector.set (Version_vector.merge s.ctx context) replica counter;
    siblings = (value, dot) :: survivors;
  }

(* Causal delete: drop the siblings a client context covers, keep the
   concurrent ones, and retain the merged context as a tombstone so
   anti-entropy with stale peers cannot resurrect the deleted writes. *)
let remove_covered s ~context =
  {
    ctx = Version_vector.merge s.ctx context;
    siblings = List.filter (fun (_, d) -> not (covered d context)) s.siblings;
  }

(* Anti-entropy between two replicas of the key: a sibling survives if
   the other side also has it, or has never seen it (its dot escapes the
   other's context). *)
let sync a b =
  let in_both (_, d) other = List.exists (fun (_, d') -> dot_compare d d' = 0) other in
  let keep mine other other_ctx =
    List.filter
      (fun ((_, d) as sib) -> in_both sib other || not (covered d other_ctx))
      mine
  in
  let kept_a = keep a.siblings b.siblings b.ctx in
  let kept_b =
    List.filter
      (fun ((_, d) as sib) -> not (in_both sib kept_a) && (in_both sib a.siblings || not (covered d a.ctx)))
      b.siblings
  in
  { ctx = Version_vector.merge a.ctx b.ctx; siblings = kept_a @ kept_b }

let size_bits s =
  Version_vector.size_bits s.ctx
  + List.fold_left
      (fun acc (_, d) ->
        acc + Version_vector.bits_for d.replica + Version_vector.bits_for d.counter)
      0 s.siblings

let conflict s = List.length s.siblings > 1

let pp pp_value ppf s =
  Format.fprintf ppf "%a[%a]" Version_vector.pp s.ctx
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " | ")
       (fun ppf (v, d) -> Format.fprintf ppf "%a%a" pp_value v pp_dot d))
    s.siblings
