(** Plausible clocks (Torres-Rojas & Ahamad 1999) — constant-size
    approximate causality.

    The R-entries-vector construction folds every replica id onto a fixed
    number of counter slots ([id mod size]).  The resulting order is
    {e plausible}: whenever it reports two values ordered-or-equal it may
    be wrong (two concurrent histories can fold onto comparable vectors),
    but whenever it reports them concurrent they truly are — folding can
    only lose distinctions, never invent them, so real causal order is
    always preserved.  Experiment E5 measures the misclassification rate
    against the causal-history oracle as a function of [size]. *)

type t

val create : size:int -> t
(** All-zero clock with [size] slots.
    @raise Invalid_argument if [size <= 0]. *)

val size : t -> int

val slot : t -> id:int -> int
(** The slot a replica id folds onto. *)

val get : t -> int -> int
(** Counter in a slot. *)

val increment : t -> id:int -> t
(** An update by replica [id]. *)

val merge : t -> t -> t
(** Pointwise maximum.
    @raise Invalid_argument on size mismatch. *)

val leq : t -> t -> bool
(** Pointwise comparison — the plausible order.
    @raise Invalid_argument on size mismatch. *)

val equal : t -> t -> bool

val relation : t -> t -> Vstamp_core.Relation.t
(** May answer [Equal]/[Dominated]/[Dominates] for truly concurrent
    histories; never answers [Concurrent] for ordered ones. *)

val size_bits : t -> int
(** Wire-size estimate (no ids on the wire — the vector is positional). *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
