(** Dynamic version vectors (after Ratner, Reiher & Popek 1997).

    Classic version vectors assume a fixed replica set.  The dynamic
    variant lets replicas be created and retired: a new replica's entry
    appears in vectors only at its first update (lazy growth), and
    retired replicas leave behind their final counters until every live
    replica has absorbed them, at which point {!compact} drops the entry.

    Creation still needs a fresh unique identifier ([new_id]) — the
    allocation problem remains; this baseline exists to compare sizes and
    to show exactly which operation version stamps make autonomous. *)

type t
(** A replica with its dynamic version vector. *)

val create : id:Version_vector.id -> t

val id : t -> Version_vector.id

val vector : t -> Version_vector.t
(** Live entries only (excludes retirement baggage). *)

val effective : t -> Version_vector.t
(** Live entries merged with retired baggage — what comparisons use. *)

val update : t -> t

val fork : t -> new_id:Version_vector.id -> t * t
(** Parent and child; the child carries the parent's knowledge and a
    fresh identity that must be globally unique. *)

val join : t -> t -> survivor_id:Version_vector.id -> t
(** Merge two replicas into one surviving identity. *)

val retire : t -> t
(** The replica stops updating; its counters become baggage to be handed
    to a survivor with {!absorb}. *)

val absorb : t -> t -> t
(** [absorb survivor departed] merges a retired replica's state in. *)

val sync : t -> t -> t * t
(** Bidirectional synchronization (merge both ways). *)

val compact : live:t list -> t -> t
(** Drop retired entries that every live replica already dominates —
    the garbage-collection step that keeps dynamic vectors small. *)

val gc : live:t list -> t -> t
(** Alias of {!compact}: the name the churn scenario and the property
    tests use.  Soundness contract: gc never changes {!effective}
    comparisons among the live population, and a retired entry is
    dropped only when every live replica's vector dominates it. *)

val retired_vector : t -> Version_vector.t
(** The retirement baggage alone. *)

val retired_entry_count : t -> int
(** Width of the retirement baggage — the quantity E17 charts against
    stamp id-bit reclamation. *)

val relation : t -> t -> Vstamp_core.Relation.t

val leq : t -> t -> bool

val entry_count : t -> int
(** Width including retirement baggage. *)

val size_bits : t -> int
(** Wire-size estimate, comparable with {!Vstamp_core.Stamp.size_bits}. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
