type error = [ `Unavailable ]

type policy =
  | Central
  | Partitioned of { server_group : int }
  | Random of { bits : int }

type t = {
  policy : policy;
  next : int;
  issued : int list;
  collisions : int;
  failures : int;
  rng : int64;
}

let make ?(seed = 0x9E3779B97F4A7C15L) policy =
  { policy; next = 0; issued = []; collisions = 0; failures = 0; rng = seed }

(* splitmix64 step, enough for the probabilistic-id model *)
let next_rng state =
  let open Int64 in
  let z = add state 0x9E3779B97F4A7C15L in
  let z' = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z'' = mul (logxor z' (shift_right_logical z' 27)) 0x94D049BB133111EBL in
  (logxor z'' (shift_right_logical z'' 31), z)

let alloc ?(group = 0) t =
  match t.policy with
  | Central ->
      Ok (t.next, { t with next = t.next + 1; issued = t.next :: t.issued })
  | Partitioned { server_group } ->
      if group = server_group then
        Ok (t.next, { t with next = t.next + 1; issued = t.next :: t.issued })
      else Error (`Unavailable, { t with failures = t.failures + 1 })
  | Random { bits } ->
      let raw, rng = next_rng t.rng in
      let mask = if bits >= 62 then max_int else (1 lsl bits) - 1 in
      let id = Int64.to_int raw land mask in
      let collisions =
        if List.mem id t.issued then t.collisions + 1 else t.collisions
      in
      Ok (id, { t with rng; issued = id :: t.issued; collisions })

let issued_count t = List.length t.issued

let collisions t = t.collisions

let failures t = t.failures

let policy t = t.policy

let pp_policy ppf = function
  | Central -> Format.pp_print_string ppf "central"
  | Partitioned { server_group } ->
      Format.fprintf ppf "partitioned(server in group %d)" server_group
  | Random { bits } -> Format.fprintf ppf "random(%d bits)" bits
