(** Zero-cost-when-disabled instrumentation hook for the core.

    The hot paths ({!Stamp.Make} operations, the Section 6 reducers,
    the wire codec) consult a single boolean ref; when it is [false]
    (the default) instrumentation costs one load-and-branch per
    operation.  When enabled, operations bump plain counters and, if an
    observer is installed, publish a per-operation record with size,
    depth and width measurements.

    The counters are global process state — deliberately, so any stamp
    activity (whichever [Name] representation backs it) is visible from
    one place.  They are deterministic for a deterministic run: nothing
    here touches a clock. *)

val enabled : bool ref
(** Master switch, default [false]. *)

type op_kind = Update | Fork | Join | Reduce

val op_kind_to_string : op_kind -> string
(** ["update"] / ["fork"] / ["join"] / ["reduce"]. *)

type op_event = {
  op : op_kind;
  bits_before : int;  (** Structural bits of the operand(s). *)
  bits_after : int;  (** Structural bits of the result(s). *)
  depth : int;  (** Max name depth of the result. *)
  width : int;  (** Id-component cardinal of the result. *)
  parents : string list;
      (** Causal parent info: the operand stamp(s) in paper notation —
          one entry for update/fork/reduce, two for join.  Lets an
          observer reconstruct the causal DAG (which stamps each result
          descends from) without positional frontier bookkeeping. *)
}

val set_observer : (op_event -> unit) option -> unit
(** Install (or remove) the per-operation observer, called on every
    instrumented stamp operation while {!enabled}. *)

(** {1 Counter snapshot} *)

type counters = {
  updates : int;
  forks : int;
  joins : int;
  reduces : int;  (** Explicit [Stamp.reduce] calls. *)
  reduce_rewrites : int;
      (** Individual sibling-collapse rewrite steps inside the Section 6
          fixpoint (both name representations). *)
  reduce_bits_saved : int;
      (** Structural bits removed by reduction, summed over joins and
          explicit reduces. *)
  wire_stamps_encoded : int;
  wire_bytes_encoded : int;
  wire_stamps_decoded : int;
  wire_bytes_decoded : int;
}

val read : unit -> counters

val reset : unit -> unit
(** Zero every counter (leaves {!enabled} and the observer alone). *)

(** {1 Recording — for instrumented modules, not end users} *)

val note_op : op_event -> unit

val note_reduce_rewrite : unit -> unit

val note_bits_saved : int -> unit

val note_wire_encode : bytes:int -> unit

val note_wire_decode : bytes:int -> unit
