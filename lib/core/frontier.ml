module Make (S : Stamp.S) = struct
  type elt = S.t

  type t = S.t list

  let of_list = Fun.id

  let to_list = Fun.id

  let initial = [ S.seed ]

  let size = List.length

  let nth = List.nth

  let classify frontier x =
    List.filter_map
      (fun y -> if y == x then None else Some (S.relation x y))
      frontier

  let dominant frontier =
    List.filter
      (fun x ->
        List.for_all (fun y -> x == y || not (S.obsolete x y)) frontier)
      frontier

  let obsolete frontier =
    List.filter
      (fun x -> List.exists (fun y -> (not (x == y)) && S.obsolete x y) frontier)
      frontier

  let conflicts frontier =
    let indexed = List.mapi (fun i x -> (i, x)) frontier in
    List.concat_map
      (fun (i, x) ->
        List.filter_map
          (fun (j, y) ->
            if i < j && S.inconsistent x y then Some (x, y) else None)
          indexed)
      indexed

  let consistent frontier = conflicts frontier = []

  let all_equivalent = function
    | [] -> true
    | x :: rest -> List.for_all (S.equivalent x) rest

  let total_bits frontier =
    List.fold_left (fun acc s -> acc + S.size_bits s) 0 frontier

  (* Retire every obsolete element by joining it into a dominant member
     that already dominates it.  Joining into a dominator adds no new
     knowledge to the survivor (its update component is unchanged), so no
     fresh domination relations appear among the survivors; only the ids
     merge and shrink under the Section 6 reduction. *)
  let prune frontier =
    let dominants = dominant frontier in
    let stale = List.filter (fun x -> not (List.memq x dominants)) frontier in
    List.fold_left
      (fun survivors x ->
        let rec place = function
          | [] ->
              (* every obsolete element is transitively dominated by a
                 maximal one, so a host always exists *)
              assert false
          | d :: rest when S.leq x d -> S.join d x :: rest
          | d :: rest -> d :: place rest
        in
        place survivors)
      dominants stale

  let merge_all = function
    | [] -> invalid_arg "Frontier.merge_all: empty frontier"
    | x :: rest -> List.fold_left (fun acc s -> S.join acc s) x rest

  let pp ppf frontier =
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         S.pp)
      frontier
end

module Over_tree = Make (Stamp.Over_tree)
module Over_list = Make (Stamp.Over_list)

include Over_tree
