(** Executions of dynamic replica systems, replayable over any mechanism.

    An execution is a list of operations on an evolving frontier of
    replicas, addressed positionally (the frontier is an ordered list;
    every interpreter uses the same positional semantics, so running the
    same trace over version stamps and over causal histories yields
    element-aligned frontiers — the shape Proposition 5.1 quantifies
    over).

    The frontier starts as a single element.  [Update i] replaces the
    element at position [i] with its updated successor; [Fork i] replaces
    it with its two fork results (left one staying at [i]); [Join (i, j)]
    removes both operands and inserts the merge at [min i j]. *)

type op =
  | Update of int  (** Local update of the replica at this position. *)
  | Fork of int  (** Autonomous creation of a sibling replica. *)
  | Join of int * int  (** Merge two replicas into one. *)

val pp_op : Format.formatter -> op -> unit

val op_to_string : op -> string

val size_delta : op -> int
(** Frontier-size change: [0], [+1], [-1]. *)

val op_valid : frontier_size:int -> op -> bool
(** Indices in range and, for joins, distinct. *)

val trace_valid : op list -> bool
(** Whether every op is valid when the trace is played from the initial
    single-element frontier. *)

val final_frontier_size : op list -> int
(** Frontier size after a (valid) trace. *)

exception Invalid_op of { op : op; frontier_size : int }

val fork_positions : 'a list -> int -> left:'a -> right:'a -> 'a list
(** The positional fork surgery: replace position [i] with [left] and
    insert [right] after it.  Exposed so structures mirroring a frontier
    (partition groups, labels, display rows) share the exact same
    semantics. *)

val join_positions : 'a list -> int -> int -> merged:'a -> 'a list
(** The positional join surgery: remove positions [i] and [j], insert
    [merged] at [min i j]. *)

(** What an interpreter needs from a tracking mechanism.  [state] threads
    whatever global resource the mechanism requires: [unit] for version
    stamps (the point of the paper), a fresh-event generator for causal
    histories, an id allocator for version vectors. *)
module type SUBJECT = sig
  type t

  type state

  val initial : state * t

  val update : state -> t -> state * t

  val fork : state -> t -> state * (t * t)

  val join : state -> t -> t -> state * t
end

(** Trace interpreter over a subject. *)
module Run (S : SUBJECT) : sig
  type frontier = S.t list

  val init : S.state * frontier

  val apply : S.state -> frontier -> op -> S.state * frontier
  (** @raise Invalid_op on an out-of-range or self-join op. *)

  val run_state : op list -> S.state * frontier

  val run : op list -> frontier
  (** Final frontier of a trace played from the initial configuration. *)

  val run_steps : op list -> frontier list
  (** All frontiers, initial one first — one per prefix of the trace. *)

  val fold : ('a -> frontier -> op -> frontier -> 'a) -> 'a -> op list -> 'a
  (** Visit every transition [before, op, after]. *)
end

module Stamp_subject (S : Stamp.S) : sig
  val make :
    reduce:bool ->
    (module SUBJECT with type t = S.t and type state = unit)
  (** Subject for any stamp instantiation, with or without Section 6
      reduction at joins. *)
end

module Stamps_reduced :
  SUBJECT with type t = Stamp.t and type state = unit
(** Default stamps, reduction on (the realistic configuration). *)

module Stamps_nonreducing :
  SUBJECT with type t = Stamp.t and type state = unit
(** The Section 4 non-reducing model. *)

module Stamps_list :
  SUBJECT with type t = Stamp.Over_list.t and type state = unit
(** Stamps over the list-based reference names. *)

module Histories :
  SUBJECT with type t = Causal_history.t and type state = Causal_history.Gen.t
(** The Section 2 oracle. *)

module Run_stamps : module type of Run (Stamps_reduced)

module Run_stamps_nonreducing : module type of Run (Stamps_nonreducing)

module Run_stamps_list : module type of Run (Stamps_list)

module Run_histories : module type of Run (Histories)

val run_lockstep : op list -> (Stamp.t * Causal_history.t) list
(** Play a trace over default stamps and the oracle; the resulting
    frontiers are element-aligned and zipped. *)
