(** Version stamps: decentralized, counter-free version vectors.

    A version stamp is a pair [(update, id)] of {{!Name_intf.S} names}
    (Definition 4.3 of the paper):

    - [id] distinguishes the replica from every other coexisting replica —
      the ids of a frontier partition the binary-string space into
      pairwise-incomparable regions (invariant I2);
    - [update] records which updates the replica has seen, as the ids the
      ancestor replicas had when those updates happened.

    Three operations drive the lifecycle:

    - {!update} marks a local modification: the id is copied into the
      update component;
    - {!fork} creates a new replica {e autonomously} — no id server, no
      coordination: each side appends a distinct digit to every id string;
    - {!join} merges two replicas, taking the name join componentwise and
      (by default) applying the Section 6 reduction so ids shrink back as
      the frontier narrows.

    Synchronization of two live replicas is [fork (join a b)] — see
    {!sync}.

    Ordering coexisting replicas compares {e update components only}:
    [leq a b] iff [update a <= update b] in the name order.  By
    Proposition 5.1 this coincides exactly with inclusion of causal
    histories, so {!relation} classifies two frontier replicas as
    equivalent, obsolete one way or the other, or mutually inconsistent. *)

module type S = sig
  type name
  (** The underlying name representation. *)

  type t
  (** A version stamp.  Immutable. *)

  (** {1 Construction} *)

  val seed : t
  (** The initial stamp [({epsilon}, {epsilon})] — a brand-new, sole
      replica owning the whole id space. *)

  val make : update:name -> id:name -> t
  (** Build a stamp from raw components.
      @raise Invalid_argument if invariant I1 ([update <= id]) fails. *)

  val make_unchecked : update:name -> id:name -> t
  (** [make] without the I1 check; for decoders that validate separately
      with {!well_formed}. *)

  (** {1 Components} *)

  val update_name : t -> name
  (** The update component (what this replica has seen). *)

  val id : t -> name
  (** The id component (who this replica is, within its frontier). *)

  (** {1 The three operations} *)

  val update : t -> t
  (** Record a local update: [(u, i)] becomes [(i, i)].  Idempotent until
      the next fork or join changes the id. *)

  val fork : t -> t * t
  (** Split into two replicas: [(u, i)] becomes [(u, i.0)] and [(u, i.1)].
      Requires no communication with anyone — this is the operation
      version vectors cannot do without an identity source. *)

  val join : ?reduce:bool -> t -> t -> t
  (** Merge two replicas: componentwise name join.  [reduce] (default
      [true]) applies the Section 6 rewriting to normal form, collapsing
      sibling id strings freed by the merge; [~reduce:false] gives the
      non-reducing model of Section 4 (used by the correctness proofs and
      the differential tests). *)

  val sync : ?reduce:bool -> t -> t -> t * t
  (** [sync a b = fork (join a b)]: the synchronization idiom — both
      replicas stay alive and leave with identical update components. *)

  val fork_many : t -> int -> t list
  (** [fork_many t n] splits one replica into [n] by repeated forking
      (a fan-out of the whole fleet, still with zero coordination).
      [fork_many t 1] is [[t]].
      @raise Invalid_argument if [n < 1]. *)

  val reduce : t -> t
  (** Normalize a stamp with the Section 6 rule.  All stamps produced by
      {!join} with the default flag are already in normal form. *)

  val is_reduced : t -> bool
  (** Whether the stamp is its own normal form. *)

  (** {1 Ordering coexisting replicas} *)

  val leq : t -> t -> bool
  (** [leq a b] iff [a]'s update component is dominated by [b]'s — [a]'s
      known updates are all known to [b].  Only meaningful for replicas of
      the same frontier. *)

  val relation : t -> t -> Relation.t
  (** Classify two coexisting replicas. *)

  val equivalent : t -> t -> bool
  (** Same causal history. *)

  val obsolete : t -> t -> bool
  (** [obsolete a b] iff [a] is strictly dominated: it can be discarded in
      favour of [b]. *)

  val inconsistent : t -> t -> bool
  (** Mutually inconsistent — a genuine conflict requiring reconciliation. *)

  val dominates_all : t -> t list -> bool
  (** [dominates_all x s] iff [x]'s update component dominates the join of
      the update components of [s] — [x] has seen every update seen by
      any member of [s]. *)

  val dominated_by_join : t -> t list -> bool
  (** [dominated_by_join x s] iff [x]'s update component is dominated by
      the join of the update components of [s] — the set-quantified
      relation [R(V)] of Proposition 5.1: everything [x] has seen, some
      member of [s] has seen. *)

  (** {1 Equality, size, diagnostics} *)

  val equal : t -> t -> bool
  (** Componentwise name equality (both [update] and [id]). *)

  val compare : t -> t -> int
  (** Arbitrary total order for containers; compatible with {!equal}. *)

  val size_bits : t -> int
  (** Total length of all strings in both components — the wire-size
      metric used by the experiments. *)

  val id_width : t -> int
  (** Number of strings in the id component. *)

  val max_depth : t -> int
  (** Longest string in either component. *)

  val well_formed : t -> bool
  (** Representation invariants plus I1. *)

  val has_updates : t -> bool
  (** Whether any update is recorded ([update] is non-empty).  [seed] has
      [has_updates = true] since its update component is [{epsilon}]. *)

  val pp : Format.formatter -> t -> unit
  (** Paper notation: [[u|i]], e.g. [[1|0+1]]. *)

  val to_string : t -> string
end

module Make (N : Name_intf.S) : S with type name = N.t
(** Build the stamp structure over any name representation. *)

module Over_list : S with type name = Name.t
(** Stamps over {!Name} (sorted lists) — the executable specification. *)

module Over_tree : S with type name = Name_tree.t
(** Stamps over {!Name_tree} (binary tries) — the fast path. *)

module Over_packed : S with type name = Name_packed.t
(** Stamps over {!Name_packed} (hash-consed tries with memoized
    operations) — the packed backend. *)

include S with type name = Name_tree.t and type t = Over_tree.t
(** The default implementation is {!Over_tree}. *)
