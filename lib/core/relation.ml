type t = Equal | Dominates | Dominated | Concurrent

let inverse = function
  | Equal -> Equal
  | Dominates -> Dominated
  | Dominated -> Dominates
  | Concurrent -> Concurrent

let of_leq_pair ~leq_ab ~leq_ba =
  match (leq_ab, leq_ba) with
  | true, true -> Equal
  | true, false -> Dominated
  | false, true -> Dominates
  | false, false -> Concurrent

let is_leq = function Equal | Dominated -> true | Dominates | Concurrent -> false

let is_geq = function Equal | Dominates -> true | Dominated | Concurrent -> false

let equal (a : t) (b : t) = a = b

let to_string = function
  | Equal -> "equal"
  | Dominates -> "dominates"
  | Dominated -> "dominated"
  | Concurrent -> "concurrent"

let to_paper_string = function
  | Equal -> "equivalent"
  | Dominates -> "dominating"
  | Dominated -> "obsolete"
  | Concurrent -> "inconsistent"

let pp ppf r = Format.pp_print_string ppf (to_string r)

let all = [ Equal; Dominates; Dominated; Concurrent ]
