(** Queries over a frontier of coexisting replicas.

    A frontier is the set of replicas alive in some reachable
    configuration — the only elements version stamps are designed to
    order (Section 1.2 of the paper).  This module packages the queries a
    replica manager actually asks: who is stale, which pairs genuinely
    conflict, and how to retire obsolete replicas so the Section 6
    reduction can shrink identities. *)

module Make (S : Stamp.S) : sig
  type elt = S.t

  type t
  (** A frontier.  Order of elements is preserved but not meaningful. *)

  val of_list : S.t list -> t

  val to_list : t -> S.t list

  val initial : t
  (** The single seed replica. *)

  val size : t -> int

  val nth : t -> int -> S.t

  val classify : t -> S.t -> Relation.t list
  (** Relations of one member against every other member (physical
      identity picks the member out). *)

  val dominant : t -> S.t list
  (** Members not strictly dominated by anyone — the maximal antichain
      of current versions. *)

  val obsolete : t -> S.t list
  (** Members some other member strictly dominates: safe to discard. *)

  val conflicts : t -> (S.t * S.t) list
  (** All mutually inconsistent pairs. *)

  val consistent : t -> bool
  (** No conflicts. *)

  val all_equivalent : t -> bool
  (** Everyone has seen the same updates (e.g. right after a global
      sync). *)

  val total_bits : t -> int

  val prune : t -> t
  (** Retire every obsolete member by joining it into a dominant one.
      Knowledge is preserved; identities heal as the frontier narrows. *)

  val merge_all : t -> S.t
  (** Collapse the whole frontier into one replica.
      @raise Invalid_argument on an empty frontier. *)

  val pp : Format.formatter -> t -> unit
end

module Over_tree : module type of Make (Stamp.Over_tree)

module Over_list : module type of Make (Stamp.Over_list)

include module type of Over_tree
(** Frontier queries for the default trie-backed stamps. *)
