(** Signature of {e names}: finite antichains of binary strings.

    Names are the building block of version stamps (Section 4 of the paper).
    The set [N] of finite antichains of {!Bits.t}, ordered by

    {v n1 <= n2  iff  forall r in n1. exists s in n2. r prefix-of s v}

    is a partial order and a join semilattice ([N] is isomorphic to the
    down-sets of strings ordered by inclusion; the antichain holds the
    maximal elements of the down-set it denotes).

    Two implementations satisfy this signature: {!Name} (sorted lists, the
    executable specification) and {!Name_tree} (binary tries, compact and
    fast).  {!Stamp.Make} is a functor over it. *)

module type S = sig
  type t
  (** A name: a finite antichain of binary strings. *)

  (** {1 Constructors} *)

  val empty : t
  (** The empty antichain, denoting the empty down-set; bottom of [N]. *)

  val bottom : t
  (** The antichain [{epsilon}].  This is the id of the initial stamp: it
      denotes ownership of the whole identifier space. *)

  val singleton : Bits.t -> t
  (** [singleton s] is the antichain [{s}]. *)

  val of_list : Bits.t list -> t
  (** [of_list ss] is the name denoting the union of the down-sets of [ss],
      i.e. the maximal elements of [ss] (duplicates and proper prefixes of
      other members are dropped). *)

  val of_strings : string list -> t
  (** [of_strings] composes {!of_list} with {!Bits.of_string}; convenience
      for tests and examples. *)

  (** {1 Observers} *)

  val to_list : t -> Bits.t list
  (** Members in shortlex ({!Bits.compare}) order. *)

  val is_empty : t -> bool

  val is_bottom : t -> bool
  (** [is_bottom n] iff [n = {epsilon}]. *)

  val mem : Bits.t -> t -> bool
  (** Exact membership of a string in the antichain. *)

  val cardinal : t -> int
  (** Number of strings in the antichain. *)

  val total_bits : t -> int
  (** Sum of the lengths of all member strings — the paper's space metric
      (each string costs its length in bits on the wire). *)

  val max_depth : t -> int
  (** Length of the longest member string; [0] for [empty] and [bottom]. *)

  val exists : (Bits.t -> bool) -> t -> bool

  val for_all : (Bits.t -> bool) -> t -> bool

  val fold : (Bits.t -> 'a -> 'a) -> t -> 'a -> 'a
  (** Fold over members in shortlex order. *)

  (** {1 Order and lattice structure} *)

  val equal : t -> t -> bool
  (** Antichain equality (equivalently: equality of denoted down-sets,
      since [N] is a partial order). *)

  val compare : t -> t -> int
  (** An arbitrary total order, for use as container keys.  Compatible with
      [equal], {e not} with {!leq}. *)

  val leq : t -> t -> bool
  (** The partial order of [N]: [leq n1 n2] iff every string of [n1] has an
      extension (or itself) in [n2]. *)

  val join : t -> t -> t
  (** Least upper bound: maximal elements of the union. *)

  val meet : t -> t -> t
  (** Greatest lower bound: maximal common prefixes, i.e. the maximal
      elements of the intersection of the denoted down-sets. *)

  val dominates_string : t -> Bits.t -> bool
  (** [dominates_string n r] iff [{r} <= n], i.e. some member of [n]
      extends [r].  Used by invariant I3. *)

  val incomparable_with : t -> t -> bool
  (** [incomparable_with n1 n2] iff every string of [n1] is prefix-incomparable
      with every string of [n2] — the pairwise condition of invariant I2. *)

  (** {1 Stamp operations on names} *)

  val append_digit : Bits.digit -> t -> t
  (** [append_digit d n] appends [d] on the right of every member: the
      [n.d] lift used by fork.  Preserves antichain-ness. *)

  val reduce_stamp : u:t -> id:t -> t * t
  (** Normal form of the stamp [(u, id)] under the Section 6 rewriting rule

      {v (u, {i; s0, s1}) -> (u', {i; s}) v}

      where [u' = u \ {s0,s1} + {s}] if [s0] or [s1] belongs to [u], and
      [u' = u] otherwise.  The rule is applied to fixpoint; confluence and
      termination make the result unique.  Requires invariant I1
      ([leq u id]); behaviour is unspecified otherwise. *)

  (** {1 Well-formedness and printing} *)

  val well_formed : t -> bool
  (** Check the representation invariants (antichain-ness plus any
      implementation-specific structure).  Always [true] for values built
      through this interface; exposed for tests and decoders. *)

  val pp : Format.formatter -> t -> unit
  (** Prints in the paper's notation: members joined by [+], e.g.
      [0+01+1]; [empty] prints as [0-slash glyph], [bottom] as epsilon. *)

  val to_string : t -> string
  (** [to_string n] is [pp] rendered to a string. *)
end
