type t = string
(* Digits stored as characters '0' and '1'.  The module boundary keeps the
   invariant that no other character ever appears. *)

type digit = Zero | One

let epsilon = ""

let is_epsilon s = String.length s = 0

let length = String.length

let char_of_digit = function Zero -> '0' | One -> '1'

let digit_of_char = function
  | '0' -> Zero
  | '1' -> One
  | c -> invalid_arg (Printf.sprintf "Bits.digit_of_char: %C" c)

let snoc s d = s ^ String.make 1 (char_of_digit d)

let cons d s = String.make 1 (char_of_digit d) ^ s

let append = ( ^ )

let uncons s =
  if is_epsilon s then None
  else Some (digit_of_char s.[0], String.sub s 1 (String.length s - 1))

let unsnoc s =
  let n = String.length s in
  if n = 0 then None
  else Some (String.sub s 0 (n - 1), digit_of_char s.[n - 1])

let get s i =
  if i < 0 || i >= String.length s then invalid_arg "Bits.get: index out of bounds"
  else digit_of_char s.[i]

let is_prefix r s =
  let nr = String.length r and ns = String.length s in
  nr <= ns
  &&
  let rec go i = i >= nr || (r.[i] = s.[i] && go (i + 1)) in
  go 0

let is_strict_prefix r s = String.length r < String.length s && is_prefix r s

let incomparable r s = not (is_prefix r s) && not (is_prefix s r)

type ordering = Equal | Prefix | Extension | Incomparable

let prefix_compare r s =
  let nr = String.length r and ns = String.length s in
  let n = min nr ns in
  let rec agree i = i >= n || (r.[i] = s.[i] && agree (i + 1)) in
  if agree 0 then
    if nr = ns then Equal else if nr < ns then Prefix else Extension
  else Incomparable

let common_prefix r s =
  let n = min (String.length r) (String.length s) in
  let rec go i = if i < n && r.[i] = s.[i] then go (i + 1) else i in
  String.sub r 0 (go 0)

let parent s =
  let n = String.length s in
  if n = 0 then None else Some (String.sub s 0 (n - 1))

let sibling s =
  let n = String.length s in
  if n = 0 then None
  else
    let b = Bytes.of_string s in
    Bytes.set b (n - 1) (if s.[n - 1] = '0' then '1' else '0');
    Some (Bytes.to_string b)

let equal = String.equal

(* Shortlex: shorter strings first, then lexicographic.  This places every
   proper prefix before all of its extensions, so a left-to-right scan of a
   shortlex-sorted list meets prefixes before the strings they dominate. *)
let compare r s =
  let c = Int.compare (String.length r) (String.length s) in
  if c <> 0 then c else String.compare r s

let compare_lex = String.compare

let hash = Hashtbl.hash

let of_string str =
  String.iter
    (function
      | '0' | '1' -> ()
      | c -> invalid_arg (Printf.sprintf "Bits.of_string: %C" c))
    str;
  str

let to_string s = s

let of_digits ds =
  let b = Buffer.create (List.length ds) in
  List.iter (fun d -> Buffer.add_char b (char_of_digit d)) ds;
  Buffer.contents b

let to_digits s = List.init (String.length s) (fun i -> digit_of_char s.[i])

let pp ppf s =
  if is_epsilon s then Format.pp_print_string ppf "\xce\xb5"
  else Format.pp_print_string ppf s

let digit_of_int = function
  | 0 -> Zero
  | 1 -> One
  | n -> invalid_arg (Printf.sprintf "Bits.digit_of_int: %d" n)

let int_of_digit = function Zero -> 0 | One -> 1

let all_of_length n =
  if n < 0 || n > 20 then invalid_arg "Bits.all_of_length";
  let count = 1 lsl n in
  List.init count (fun v ->
      String.init n (fun i ->
          if (v lsr (n - 1 - i)) land 1 = 1 then '1' else '0'))
