(** The three structural invariants of version-stamp frontiers.

    Section 4 of the paper proves that every reachable configuration
    satisfies:

    - {b I1} — in every stamp, [update <= id];
    - {b I2} — across any two frontier stamps, every id string of one is
      prefix-incomparable with every id string of the other (frontier ids
      partition the space);
    - {b I3} — for any two frontier stamps [x], [y] and any string [r] of
      [x]'s update component, [{r} <= id(y)] implies [{r} <= update(y)]
      (what [y]'s id region covers of other replicas' knowledge, [y]
      itself knows).

    Section 6 proves the reduction rule preserves all three.  These
    checkers are the executable form of those statements, used by the
    property tests, the simulator's runtime monitors and the
    [vstamp trace] forensics. *)

type violation =
  | I1 of int  (** Frontier position of the offending stamp. *)
  | I2 of int * int  (** Unordered pair of positions with comparable ids. *)
  | I3 of int * int  (** Ordered pair [(x, y)] witnessing the failure. *)

(** The witness type is shared by every instantiation of {!Make} (it
    only mentions frontier positions), so monitors can report violations
    uniformly whichever name representation backs the stamps. *)

val pp_violation : Format.formatter -> violation -> unit

val violation_to_string : violation -> string
(** Compact machine-friendly form: ["I1(3)"], ["I2(0,2)"], ["I3(1,0)"]. *)

module Make (N : Name_intf.S) (S : Stamp.S with type name = N.t) : sig
  val i1 : S.t -> bool
  (** Local invariant of a single stamp. *)

  val i2 : S.t list -> bool
  (** Pairwise id incomparability over a frontier. *)

  val i3 : S.t list -> bool
  (** Knowledge-coverage invariant over a frontier. *)

  val all : S.t list -> bool
  (** Conjunction of I1 on every member, I2 and I3. *)

  val check : S.t list -> violation list
  (** All violations, for diagnostics; empty iff {!all} holds. *)
end

module Over_tree : module type of Make (Name_tree) (Stamp.Over_tree)

module Over_list : module type of Make (Name) (Stamp.Over_list)

module Over_packed : module type of Make (Name_packed) (Stamp.Over_packed)

include module type of Over_tree
(** Checkers for the default (trie-backed) stamps. *)
