(* Names as binary tries.

   A trie node stands for a prefix [p]: [Mark] says "the string [p] is a
   member", [Empty] says "no member at or below [p]", and [Node (l, r)]
   descends into [p.0] (left) and [p.1] (right).  Because [Mark] is a leaf,
   no member can lie below another — antichains are the only representable
   values, and the representation is canonical (one trie per antichain)
   provided no [Node (Empty, Empty)] appears.

   This is the compact, dynamically-adapting shape the paper alludes to
   ("their complexity adjusts dynamically, reflecting the granularity of
   the frontier"), and the representation Interval Tree Clocks later
   refined. *)

type t = Empty | Mark | Node of t * t

(* Smart constructor maintaining the no-[Node (Empty, Empty)] invariant. *)
let node l r = match (l, r) with Empty, Empty -> Empty | _ -> Node (l, r)

let empty = Empty

let bottom = Mark

let is_empty n = n = Empty

let is_bottom n = n = Mark

let rec singleton s =
  match Bits.uncons s with
  | None -> Mark
  | Some (Bits.Zero, rest) -> Node (singleton rest, Empty)
  | Some (Bits.One, rest) -> Node (Empty, singleton rest)

let rec mem s n =
  match (n, Bits.uncons s) with
  | Mark, None -> true
  | Node (l, _), Some (Bits.Zero, rest) -> mem rest l
  | Node (_, r), Some (Bits.One, rest) -> mem rest r
  | (Empty | Mark | Node _), _ -> false

let rec cardinal = function
  | Empty -> 0
  | Mark -> 1
  | Node (l, r) -> cardinal l + cardinal r

(* Members, collected with an accumulator of reversed digit paths. *)
let to_list n =
  let rec go path acc = function
    | Empty -> acc
    | Mark -> Bits.of_digits (List.rev path) :: acc
    | Node (l, r) ->
        let acc = go (Bits.Zero :: path) acc l in
        go (Bits.One :: path) acc r
  in
  List.sort Bits.compare (go [] [] n)

let total_bits n =
  let rec go depth = function
    | Empty -> 0
    | Mark -> depth
    | Node (l, r) -> go (depth + 1) l + go (depth + 1) r
  in
  go 0 n

let max_depth n =
  let rec go depth = function
    | Empty | Mark -> depth
    | Node (l, r) -> max (go (depth + 1) l) (go (depth + 1) r)
  in
  go 0 n

let exists f n = List.exists f (to_list n)

let for_all f n = List.for_all f (to_list n)

let fold f n acc = List.fold_left (fun acc s -> f s acc) acc (to_list n)

let equal (n1 : t) (n2 : t) = n1 = n2

let compare (n1 : t) (n2 : t) = Stdlib.compare n1 n2

let rec leq n1 n2 =
  match (n1, n2) with
  | Empty, _ -> true
  | _, Empty -> false
  (* A mark needs any member at or below its prefix on the right. *)
  | Mark, (Mark | Node _) -> true
  (* Members strictly below the prefix cannot extend the bare prefix. *)
  | Node _, Mark -> false
  | Node (l1, r1), Node (l2, r2) -> leq l1 l2 && leq r1 r2

let rec join n1 n2 =
  match (n1, n2) with
  | Empty, n | n, Empty -> n
  | Mark, Mark -> Mark
  (* The deeper side's members extend the mark's prefix: they are the
     maximal elements of the union. *)
  | Mark, (Node _ as n) | (Node _ as n), Mark -> n
  | Node (l1, r1), Node (l2, r2) -> Node (join l1 l2, join r1 r2)

let rec meet n1 n2 =
  match (n1, n2) with
  | Empty, _ | _, Empty -> Empty
  (* The mark's prefix is a common prefix of everything on the other,
     non-empty side, and nothing longer is shared. *)
  | Mark, (Mark | Node _) | Node _, Mark -> Mark
  | Node (l1, r1), Node (l2, r2) -> (
      match node (meet l1 l2) (meet r1 r2) with
      (* No common member strictly below this prefix, but the prefix
         itself is below members of both sides. *)
      | Empty -> Mark
      | n -> n)

let rec dominates_string n r =
  match (n, Bits.uncons r) with
  | Empty, _ -> false
  | (Mark | Node _), None -> true
  | Mark, Some _ -> false
  | Node (l, _), Some (Bits.Zero, rest) -> dominates_string l rest
  | Node (_, r'), Some (Bits.One, rest) -> dominates_string r' rest

let rec incomparable_with n1 n2 =
  match (n1, n2) with
  | Empty, _ | _, Empty -> true
  (* A mark's prefix is comparable with every member at or below it. *)
  | Mark, (Mark | Node _) | Node _, Mark -> false
  | Node (l1, r1), Node (l2, r2) ->
      incomparable_with l1 l2 && incomparable_with r1 r2

let rec append_digit d n =
  match n with
  | Empty -> Empty
  | Mark -> (
      match d with
      | Bits.Zero -> Node (Mark, Empty)
      | Bits.One -> Node (Empty, Mark))
  | Node (l, r) -> Node (append_digit d l, append_digit d r)

(* Bottom-up application of the Section 6 rule.  Children are reduced
   first so collapses cascade towards the root in a single pass; the
   result is the (unique) normal form. *)
let rec reduce_stamp ~u ~id =
  match id with
  | Empty | Mark -> (u, id)
  | Node (il, ir) ->
      let ul, ur, u_marked =
        match u with
        | Empty -> (Empty, Empty, false)
        | Mark -> (Empty, Empty, true)
        | Node (ul, ur) -> (ul, ur, false)
      in
      let ul', il' = reduce_stamp ~u:ul ~id:il in
      let ur', ir' = reduce_stamp ~u:ur ~id:ir in
      if il' = Mark && ir' = Mark then begin
        (* id holds the sibling pair {p.0, p.1}: collapse to {p} and patch
           the update component when it mentioned either sibling. *)
        if !Instr.enabled then Instr.note_reduce_rewrite ();
        let u' =
          if u_marked then Mark
          else
            match (ul', ur') with
            | Empty, Empty -> Empty
            | (Mark | Empty), (Mark | Empty) -> Mark
            | _ ->
                (* Update strings strictly below a bare id mark would
                   contradict invariant I1. *)
                invalid_arg "Name_tree.reduce_stamp: invariant I1 violated"
        in
        (u', Mark)
      end
      else
        let u' = if u_marked then Mark else node ul' ur' in
        (u', node il' ir')

let of_list ss = List.fold_left (fun acc s -> join acc (singleton s)) Empty ss

let of_name n = of_list (Name.to_list n)

let to_name t = Name.of_list (to_list t)

let of_strings ss = of_list (List.map Bits.of_string ss)

let rec well_formed = function
  | Empty | Mark -> true
  | Node (Empty, Empty) -> false
  | Node (l, r) -> well_formed l && well_formed r

(* Lexicographic member order, matching the paper's figures. *)
let pp ppf n =
  match List.sort Bits.compare_lex (to_list n) with
  | [] -> Format.pp_print_string ppf "\xc3\xb8"
  | members ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_char ppf '+')
        Bits.pp ppf members

let to_string n = Format.asprintf "%a" pp n
