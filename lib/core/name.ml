(* Reference implementation of names as sorted lists.

   Representation invariant: the list is strictly sorted by shortlex
   ({!Bits.compare}) and is an antichain (no member is a prefix of
   another).  Shortlex sorting means any prefix of a member appears
   before it, which keeps the normalization scans left-to-right. *)

type t = Bits.t list

let empty = []

let bottom = [ Bits.epsilon ]

let singleton s = [ s ]

let is_empty n = n = []

let is_bottom = function [ s ] -> Bits.is_epsilon s | _ -> false

let to_list n = n

let mem s n = List.exists (Bits.equal s) n

let cardinal = List.length

let total_bits n = List.fold_left (fun acc s -> acc + Bits.length s) 0 n

let max_depth n = List.fold_left (fun acc s -> max acc (Bits.length s)) 0 n

let exists = List.exists

let for_all = List.for_all

let fold f n acc = List.fold_left (fun acc s -> f s acc) acc n

let equal n1 n2 = List.equal Bits.equal n1 n2

let compare n1 n2 = List.compare Bits.compare n1 n2

(* Keep the maximal elements of an arbitrary string list: drop duplicates
   and any string that is a proper prefix of another.  O(n^2) in the worst
   case; n is the antichain width, small in practice. *)
let maximal_of_list ss =
  let sorted = List.sort_uniq Bits.compare ss in
  List.filter
    (fun r -> not (List.exists (fun s -> Bits.is_strict_prefix r s) sorted))
    sorted

let of_list = maximal_of_list

let of_strings ss = of_list (List.map Bits.of_string ss)

let dominates_string n r = List.exists (fun s -> Bits.is_prefix r s) n

let leq n1 n2 = List.for_all (dominates_string n2) n1

let join n1 n2 = maximal_of_list (List.rev_append n1 n2)

let meet n1 n2 =
  let prefixes =
    List.concat_map (fun r -> List.map (Bits.common_prefix r) n2) n1
  in
  let candidates =
    List.filter
      (fun p ->
        List.exists (fun r -> Bits.is_prefix p r) n1
        && List.exists (fun s -> Bits.is_prefix p s) n2)
      prefixes
  in
  maximal_of_list candidates

let incomparable_with n1 n2 =
  List.for_all (fun r -> List.for_all (Bits.incomparable r) n2) n1

let append_digit d n =
  (* Appending the same digit on the right preserves both shortlex order
     and pairwise incomparability, so the invariant holds without
     re-normalizing. *)
  List.map (fun s -> Bits.snoc s d) n

(* One step of the Section 6 rewriting rule: find a sibling pair
   {s0, s1} inside [id], collapse it to the parent [s], and patch [u]
   when it mentions either sibling.  Returns [None] at normal form. *)
let reduce_step ~u ~id =
  let rec find = function
    | [] -> None
    | s0 :: rest -> (
        match Bits.sibling s0 with
        | None -> find rest
        | Some s1 -> if mem s1 rest then Some (s0, s1) else find rest)
  in
  match find id with
  | None -> None
  | Some (s0, s1) ->
      let s =
        match Bits.parent s0 with
        | Some p -> p
        | None -> assert false (* siblings are non-empty strings *)
      in
      let id' =
        of_list (s :: List.filter (fun r -> not (Bits.equal r s0 || Bits.equal r s1)) id)
      in
      let u' =
        if mem s0 u || mem s1 u then
          of_list
            (s :: List.filter (fun r -> not (Bits.equal r s0 || Bits.equal r s1)) u)
        else u
      in
      Some (u', id')

let rec reduce_stamp ~u ~id =
  match reduce_step ~u ~id with
  | None -> (u, id)
  | Some (u', id') ->
      if !Instr.enabled then Instr.note_reduce_rewrite ();
      reduce_stamp ~u:u' ~id:id'

let well_formed n =
  let rec sorted = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> Bits.compare a b < 0 && sorted rest
  in
  sorted n
  && List.for_all
       (fun r ->
         List.for_all (fun s -> Bits.equal r s || Bits.incomparable r s) n)
       n

(* Members print in plain lexicographic order ("00+01+1"), matching the
   paper's figures; the shortlex order of the representation is an
   internal detail. *)
let pp ppf = function
  | [] -> Format.pp_print_string ppf "\xc3\xb8"
  | n ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_char ppf '+')
        Bits.pp ppf
        (List.sort Bits.compare_lex n)

let to_string n = Format.asprintf "%a" pp n
