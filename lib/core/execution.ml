type op = Update of int | Fork of int | Join of int * int

let pp_op ppf = function
  | Update i -> Format.fprintf ppf "update(%d)" i
  | Fork i -> Format.fprintf ppf "fork(%d)" i
  | Join (i, j) -> Format.fprintf ppf "join(%d,%d)" i j

let op_to_string op = Format.asprintf "%a" pp_op op

let size_delta = function Update _ -> 0 | Fork _ -> 1 | Join _ -> -1

let op_valid ~frontier_size = function
  | Update i | Fork i -> 0 <= i && i < frontier_size
  | Join (i, j) -> i <> j && 0 <= i && i < frontier_size && 0 <= j && j < frontier_size

let trace_valid ops =
  let rec go size = function
    | [] -> true
    | op :: rest ->
        op_valid ~frontier_size:size op && go (size + size_delta op) rest
  in
  go 1 ops

let final_frontier_size ops =
  List.fold_left (fun size op -> size + size_delta op) 1 ops

exception Invalid_op of { op : op; frontier_size : int }

(* The positional list surgeries, shared by every structure that mirrors
   a frontier (stamps, histories, partition groups, labels, display
   rows). *)

let fork_positions frontier i ~left ~right =
  List.concat
    (List.mapi (fun k x -> if k = i then [ left; right ] else [ x ]) frontier)

let join_positions frontier i j ~merged =
  let lo = min i j in
  let kept = List.filteri (fun k _ -> k <> i && k <> j) frontier in
  let rec insert pos acc = function
    | rest when pos = lo -> List.rev_append acc (merged :: rest)
    | [] -> List.rev (merged :: acc)
    | x :: rest -> insert (pos + 1) (x :: acc) rest
  in
  insert 0 [] kept

module type SUBJECT = sig
  type t

  type state

  val initial : state * t

  val update : state -> t -> state * t

  val fork : state -> t -> state * (t * t)

  val join : state -> t -> t -> state * t
end

module Run (S : SUBJECT) = struct
  type frontier = S.t list

  let init =
    let st, x = S.initial in
    (st, [ x ])

  (* Positional frontier semantics shared by every subject so lockstep
     runs stay element-aligned: update replaces in place, fork widens at
     the element's position, join contracts to the smaller position. *)
  let apply st frontier op =
    let n = List.length frontier in
    if not (op_valid ~frontier_size:n op) then
      raise (Invalid_op { op; frontier_size = n });
    match op with
    | Update i ->
        let st', x' = S.update st (List.nth frontier i) in
        (st', List.mapi (fun k x -> if k = i then x' else x) frontier)
    | Fork i ->
        let st', (a, b) = S.fork st (List.nth frontier i) in
        (st', fork_positions frontier i ~left:a ~right:b)
    | Join (i, j) ->
        let st', c = S.join st (List.nth frontier i) (List.nth frontier j) in
        (st', join_positions frontier i j ~merged:c)

  let run_state ops =
    let st, frontier = init in
    List.fold_left (fun (st, f) op -> apply st f op) (st, frontier) ops

  let run ops = snd (run_state ops)

  let run_steps ops =
    let st, frontier = init in
    let _, rev_steps =
      List.fold_left
        (fun ((st, f), acc) op ->
          let st', f' = apply st f op in
          ((st', f'), f' :: acc))
        ((st, frontier), [ frontier ])
        ops
    in
    List.rev rev_steps

  let fold visit acc ops =
    let st, frontier = init in
    let _, _, acc =
      List.fold_left
        (fun (st, f, acc) op ->
          let st', f' = apply st f op in
          (st', f', visit acc f op f'))
        (st, frontier, acc) ops
    in
    acc
end

module Stamp_subject (S : Stamp.S) = struct
  let make ~reduce =
    (module struct
      type t = S.t

      type state = unit

      let initial = ((), S.seed)

      let update () x = ((), S.update x)

      let fork () x = ((), S.fork x)

      let join () a b = ((), S.join ~reduce a b)
    end : SUBJECT
      with type t = S.t
       and type state = unit)
end

module Stamps_reduced = struct
  type t = Stamp.t

  type state = unit

  let initial = ((), Stamp.seed)

  let update () x = ((), Stamp.update x)

  let fork () x = ((), Stamp.fork x)

  let join () a b = ((), Stamp.join ~reduce:true a b)
end

module Stamps_nonreducing = struct
  type t = Stamp.t

  type state = unit

  let initial = ((), Stamp.seed)

  let update () x = ((), Stamp.update x)

  let fork () x = ((), Stamp.fork x)

  let join () a b = ((), Stamp.join ~reduce:false a b)
end

module Stamps_list = struct
  type t = Stamp.Over_list.t

  type state = unit

  let initial = ((), Stamp.Over_list.seed)

  let update () x = ((), Stamp.Over_list.update x)

  let fork () x = ((), Stamp.Over_list.fork x)

  let join () a b = ((), Stamp.Over_list.join ~reduce:true a b)
end

module Histories = struct
  type t = Causal_history.t

  type state = Causal_history.Gen.t

  let initial = (Causal_history.Gen.initial, Causal_history.empty)

  let update gen h =
    let e, gen' = Causal_history.Gen.fresh gen in
    (gen', Causal_history.add_event e h)

  let fork gen h = (gen, (h, h))

  let join gen a b = (gen, Causal_history.union a b)
end

module Run_stamps = Run (Stamps_reduced)
module Run_stamps_nonreducing = Run (Stamps_nonreducing)
module Run_stamps_list = Run (Stamps_list)
module Run_histories = Run (Histories)

let run_lockstep ops =
  let stamps = Run_stamps.run ops in
  let histories = Run_histories.run ops in
  List.combine stamps histories
