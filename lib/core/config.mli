(** Named configurations — the paper's presentation style, executable.

    Definitions 2.1 and 4.3 present the transformations on configurations
    that map {e element names} to stamps, where every operation consumes
    its operands and binds freshly named results ([a] becomes [a'] after
    an update, [fork a] yields [b] and [c], ...).  This module is that
    presentation: useful for writing paper-style derivations in tests,
    examples and documentation, where {!Execution} addresses elements
    positionally for random-trace replay instead.

    Names are arbitrary strings, unique within the configuration. *)

exception Unknown_element of string
(** Raised when an operand name is not bound. *)

exception Clash of string
(** Raised when a result name is already bound (or two result names
    coincide). *)

module Make (S : Stamp.S) : sig
  type t
  (** A configuration: a finite map from element names to stamps. *)

  val initial : string -> t
  (** One seed element with the given name. *)

  val of_list : (string * S.t) list -> t
  (** Explicit configuration.  @raise Clash on duplicate names. *)

  val to_list : t -> (string * S.t) list
  (** Sorted by name. *)

  val names : t -> string list

  val find : t -> string -> S.t option

  val get : t -> string -> S.t
  (** @raise Unknown_element *)

  val mem : t -> string -> bool

  val size : t -> int

  val update : t -> elem:string -> result:string -> t
  (** [update c ~elem:"a" ~result:"a'"] — Definition 4.3's
      [update(a)].  [result] may equal [elem].
      @raise Unknown_element or Clash *)

  val fork : t -> elem:string -> left:string -> right:string -> t
  (** Definition 4.3's [fork(a)]; one result may reuse [elem]'s name.
      @raise Unknown_element or Clash *)

  val join : t -> left:string -> right:string -> result:string -> t
  (** Definition 4.3's [join(a, b)]; [result] may reuse either operand
      name.  @raise Unknown_element or Clash *)

  val sync : t -> left:string -> right:string -> t
  (** Synchronization keeping both names alive: join then fork, the left
      result staying under [left]. *)

  val relation : t -> string -> string -> Relation.t
  (** Frontier relation of two named elements.  @raise Unknown_element *)

  val frontier : t -> S.t list
  (** The stamps, for {!Invariants} and {!Frontier} queries. *)

  val fold : (string -> S.t -> 'a -> 'a) -> t -> 'a -> 'a

  val total_bits : t -> int

  val pp : Format.formatter -> t -> unit
end

module Over_tree : module type of Make (Stamp.Over_tree)

module Over_list : module type of Make (Stamp.Over_list)

include module type of Over_tree
(** Named configurations over the default trie-backed stamps. *)
