(** First-class registry of name backends.

    A {e backend} bundles one {{!Name_intf.S} name implementation} with
    the {{!Stamp.S} stamp structure} built over it.  Layers above the
    core (codec, simulator trackers, KV store, CRDTs, CLI) are functors
    over this signature or consult the registry at run time, instead of
    pinning a concrete name module.

    Three backends register themselves when the library is linked:

    - ["tree"] — {!Name_tree}, plain binary tries (the default);
    - ["list"] — {!Name}, sorted lists (the executable specification);
    - ["packed"] — {!Name_packed}, hash-consed tries with memoized
      operations (fastest on deep, shared structure).

    Register additional implementations with {!register}, typically by
    applying {!Of_name}. *)

module type S = sig
  module Name : Name_intf.S

  module Stamp : Stamp.S with type name = Name.t
end

(** {1 Registry} *)

type entry = { key : string; doc : string; impl : (module S) }

val register : key:string -> ?doc:string -> (module S) -> unit
(** Add a backend under a stable key.
    @raise Invalid_argument if the key is already taken. *)

val find : string -> (module S) option

val get : string -> (module S)
(** @raise Invalid_argument on unknown keys, listing the valid set. *)

val find_entry : string -> entry option

val keys : unit -> string list
(** Registered keys, sorted. *)

val entries : unit -> entry list
(** Registered entries in key order. *)

val default_key : string
(** ["tree"]. *)

val default : (module S)

(** {1 The in-tree backends} *)

module Over_tree : S with module Name = Name_tree and module Stamp = Stamp.Over_tree

module Over_list : S with module Name = Name and module Stamp = Stamp.Over_list

module Over_packed :
  S with module Name = Name_packed and module Stamp = Stamp.Over_packed

(** {1 Building new backends} *)

module Of_name (N : Name_intf.S) :
  S with module Name = N and type Stamp.t = Stamp.Make(N).t
(** Wrap any name implementation into a backend by applying
    {!Stamp.Make}; pass the result to {!register} to make it reachable
    from the CLI and smoke tooling. *)
