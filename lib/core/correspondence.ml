module Make (S : Stamp.S) = struct
  type counterexample = {
    position : int;
    subset : int list;
    stamp_leq : bool;
    history_subset : bool;
  }

  let pp_counterexample ppf c =
    Format.fprintf ppf
      "element %d vs {%a}: stamps say %b, histories say %b" c.position
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
         Format.pp_print_int)
      c.subset c.stamp_leq c.history_subset

  (* Enumerate the non-empty subsets of positions [0..n-1] as bitmasks.
     Frontiers in the property tests stay small (<= ~12), so 2^n is
     tolerable; [max_subset_size] caps the width otherwise. *)
  let subsets ?max_subset_size n =
    let cap = match max_subset_size with Some c -> c | None -> n in
    let masks = ref [] in
    for mask = (1 lsl n) - 1 downto 1 do
      let members = ref [] in
      for i = n - 1 downto 0 do
        if mask land (1 lsl i) <> 0 then members := i :: !members
      done;
      if List.length !members <= cap then masks := !members :: !masks
    done;
    !masks

  let pairwise_counterexample stamps histories =
    let s = Array.of_list stamps and h = Array.of_list histories in
    assert (Array.length s = Array.length h);
    let n = Array.length s in
    let found = ref None in
    (try
       for x = 0 to n - 1 do
         for y = 0 to n - 1 do
           let stamp_leq = S.leq s.(x) s.(y) in
           let history_subset = Causal_history.subset h.(x) h.(y) in
           if stamp_leq <> history_subset then begin
             found :=
               Some { position = x; subset = [ y ]; stamp_leq; history_subset };
             raise Exit
           end
         done
       done
     with Exit -> ());
    !found

  let pairwise_agree stamps histories =
    pairwise_counterexample stamps histories = None

  let set_counterexample ?max_subset_size stamps histories =
    let s = Array.of_list stamps and h = Array.of_list histories in
    assert (Array.length s = Array.length h);
    let n = Array.length s in
    let found = ref None in
    (try
       List.iter
         (fun subset ->
           let sub_stamps = List.map (fun i -> s.(i)) subset in
           let sub_hist = List.map (fun i -> h.(i)) subset in
           for x = 0 to n - 1 do
             let stamp_leq = S.dominated_by_join s.(x) sub_stamps in
             let history_subset =
               Causal_history.subset_of_union h.(x) sub_hist
             in
             if stamp_leq <> history_subset then begin
               found := Some { position = x; subset; stamp_leq; history_subset };
               raise Exit
             end
           done)
         (subsets ?max_subset_size n)
     with Exit -> ());
    !found

  let set_agree ?max_subset_size stamps histories =
    set_counterexample ?max_subset_size stamps histories = None
end
