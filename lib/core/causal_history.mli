(** Causal histories with a global view — the correctness oracle.

    Section 2 of the paper models update tracking by mapping each frontier
    element to the set of update events in its causal past.  Events carry
    globally unique identities, which is exactly the global view version
    stamps exist to avoid; here the model serves as the oracle against
    which stamps (and every baseline mechanism) are differentially tested:
    Proposition 5.1 says stamp comparison and history inclusion must agree
    on every frontier.

    Histories follow the transformations of Definition 2.1:
    update adds one fresh event, fork duplicates the set, join unions the
    two sets.  The {!Execution} module drives them in lockstep with
    stamps. *)

type event = int
(** A globally unique update event. *)

module Event_set : Set.S with type elt = event

type t = Event_set.t
(** A causal history: the set of update events an element has seen. *)

val empty : t
(** The history of the initial element (Definition 2.1). *)

val of_events : event list -> t

val events : t -> event list
(** Sorted. *)

val add_event : event -> t -> t
(** The update transformation (the caller supplies a fresh event,
    normally from {!Gen}). *)

val union : t -> t -> t
(** The join transformation. *)

val cardinal : t -> int

val mem : event -> t -> bool

val subset : t -> t -> bool
(** History inclusion — the pre-order on frontier elements. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order for containers. *)

val subset_of_union : t -> t list -> bool
(** [subset_of_union x hs] iff [x]'s history is contained in the union of
    [hs] — the set-quantified relation of Proposition 5.1. *)

val relation : t -> t -> Relation.t
(** Equivalent / obsolete / inconsistent, per Section 2. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** Fresh-event generator: the explicit "global view". *)
module Gen : sig
  type t

  val initial : t

  val fresh : t -> event * t
  (** A globally unique event plus the advanced generator. *)

  val issued : t -> int
  (** How many events have been issued. *)
end
