(** Executable form of the paper's main theorem.

    Proposition 5.1: for any execution played over both causal histories
    [C] and version stamps [V] (element-aligned frontiers), and for every
    element [x] and non-empty subset [S] of the frontier,

    {v C(x) included-in Union C[S]  iff  fst(V(x)) <= Join fst[V[S]] v}

    Corollary 5.2 is the pairwise case [S = {y}].  These checkers take the
    two frontiers produced by {!Execution.run_lockstep} (or any aligned
    pair) and search for a disagreement; the property tests assert none is
    ever found, and the mutation tests assert one {e is} found when the
    mechanism is deliberately broken. *)

module Make (S : Stamp.S) : sig
  type counterexample = {
    position : int;  (** The element [x]. *)
    subset : int list;  (** The set [S] of frontier positions. *)
    stamp_leq : bool;  (** What the stamps answered. *)
    history_subset : bool;  (** What the oracle answered. *)
  }

  val pp_counterexample : Format.formatter -> counterexample -> unit

  val subsets : ?max_subset_size:int -> int -> int list list
  (** Non-empty subsets of [0..n-1]; exponential, intended for the small
      frontiers of property tests. *)

  val pairwise_counterexample :
    S.t list -> Causal_history.t list -> counterexample option
  (** Corollary 5.2: first pairwise disagreement, if any. *)

  val pairwise_agree : S.t list -> Causal_history.t list -> bool

  val set_counterexample :
    ?max_subset_size:int ->
    S.t list ->
    Causal_history.t list ->
    counterexample option
  (** Proposition 5.1: first set-quantified disagreement, if any. *)

  val set_agree :
    ?max_subset_size:int -> S.t list -> Causal_history.t list -> bool
end
