(** Names as strictly-sorted antichain lists — the executable specification.

    This implementation favours transparency over speed: every operation is
    a direct transcription of the paper's set-theoretic definition.  Use
    {!Name_tree} when stamp size or throughput matters; the two are
    cross-validated property-by-property in the test suite. *)

include Name_intf.S
