(* First-class registry of name backends.

   Every layer that used to pin a concrete name module (codec, sim
   trackers, CLI) goes through this seam instead: a backend bundles a
   name implementation with the stamp structure built over it, keyed by
   a stable string.  The three in-tree implementations register
   themselves at module initialization; third parties add theirs with
   [register] (typically via [Of_name]). *)

module type S = sig
  module Name : Name_intf.S

  module Stamp : Stamp.S with type name = Name.t
end

type entry = { key : string; doc : string; impl : (module S) }

let registry : (string, entry) Hashtbl.t = Hashtbl.create 8

let register ~key ?(doc = "") impl =
  if Hashtbl.mem registry key then
    invalid_arg (Printf.sprintf "Backend.register: key %S already taken" key);
  Hashtbl.replace registry key { key; doc; impl }

let find key =
  match Hashtbl.find_opt registry key with
  | Some e -> Some e.impl
  | None -> None

let find_entry key = Hashtbl.find_opt registry key

let keys () =
  Hashtbl.fold (fun k _ acc -> k :: acc) registry []
  |> List.sort String.compare

let entries () =
  List.filter_map (fun k -> Hashtbl.find_opt registry k) (keys ())

(* --- the in-tree backends --- *)

(* These reuse the existing [Stamp.Over_*] modules rather than applying
   [Stamp.Make] afresh, so the registry's stamp types are equal to the
   ones the rest of the tree already names. *)

module Over_tree = struct
  module Name = Name_tree
  module Stamp = Stamp.Over_tree
end

module Over_list = struct
  module Name = Name
  module Stamp = Stamp.Over_list
end

module Over_packed = struct
  module Name = Name_packed
  module Stamp = Stamp.Over_packed
end

let default_key = "tree"

let () =
  register ~key:"tree" ~doc:"binary tries (default)" (module Over_tree);
  register ~key:"list"
    ~doc:"sorted lists (the executable specification; slow at depth)"
    (module Over_list);
  register ~key:"packed"
    ~doc:"hash-consed tries with memoized leq/join/reduce"
    (module Over_packed)

let default = (module Over_tree : S)

let get key =
  match find key with
  | Some b -> b
  | None ->
      invalid_arg
        (Printf.sprintf "Backend.get: unknown backend %S (valid: %s)" key
           (String.concat ", " (keys ())))

module Of_name (N : Name_intf.S) = struct
  module Name = N
  module Stamp = Stamp.Make (N)
end
