(* The witness type lives outside [Make] so every instantiation shares
   it: a violation only names frontier positions, never stamps, and the
   runtime monitors report it uniformly for both name representations. *)
type violation = I1 of int | I2 of int * int | I3 of int * int

let pp_violation ppf = function
  | I1 i -> Format.fprintf ppf "I1 violated at frontier position %d" i
  | I2 (i, j) ->
      Format.fprintf ppf "I2 violated between positions %d and %d" i j
  | I3 (i, j) ->
      Format.fprintf ppf "I3 violated from position %d towards %d" i j

let violation_to_string = function
  | I1 i -> Printf.sprintf "I1(%d)" i
  | I2 (i, j) -> Printf.sprintf "I2(%d,%d)" i j
  | I3 (i, j) -> Printf.sprintf "I3(%d,%d)" i j

module Make (N : Name_intf.S) (S : Stamp.S with type name = N.t) = struct
  let i1 stamp = N.leq (S.update_name stamp) (S.id stamp)

  (* Every string of every id incomparable with every string of every
     other id: check all unordered pairs of distinct frontier members. *)
  let i2 frontier =
    let rec pairs = function
      | [] -> true
      | x :: rest ->
          List.for_all
            (fun y -> N.incomparable_with (S.id x) (S.id y))
            rest
          && pairs rest
    in
    pairs frontier

  (* For every ordered pair (x, y) and every string r of x's update:
     {r} <= id(y) implies {r} <= update(y). *)
  let i3 frontier =
    List.for_all
      (fun x ->
        List.for_all
          (fun y ->
            x == y
            || N.for_all
                 (fun r ->
                   (not (N.dominates_string (S.id y) r))
                   || N.dominates_string (S.update_name y) r)
                 (S.update_name x))
          frontier)
      frontier

  let all frontier =
    List.for_all i1 frontier && i2 frontier && i3 frontier

  let check frontier =
    let indexed = List.mapi (fun i s -> (i, s)) frontier in
    let i1_violations =
      List.filter_map (fun (i, s) -> if i1 s then None else Some (I1 i)) indexed
    in
    let i2_violations =
      List.concat_map
        (fun (i, x) ->
          List.filter_map
            (fun (j, y) ->
              if i < j && not (N.incomparable_with (S.id x) (S.id y)) then
                Some (I2 (i, j))
              else None)
            indexed)
        indexed
    in
    let i3_violations =
      List.concat_map
        (fun (i, x) ->
          List.filter_map
            (fun (j, y) ->
              if
                i <> j
                && not
                     (N.for_all
                        (fun r ->
                          (not (N.dominates_string (S.id y) r))
                          || N.dominates_string (S.update_name y) r)
                        (S.update_name x))
              then Some (I3 (i, j))
              else None)
            indexed)
        indexed
    in
    i1_violations @ i2_violations @ i3_violations
end

module Over_tree = Make (Name_tree) (Stamp.Over_tree)
module Over_list = Make (Name) (Stamp.Over_list)
module Over_packed = Make (Name_packed) (Stamp.Over_packed)

include Over_tree
