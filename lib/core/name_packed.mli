(** Names as hash-consed binary tries — the high-performance backend.

    Shape-identical to {!Name_tree}, but every node is interned in a
    weak table so structural equality coincides with physical equality.
    [equal] is a pointer comparison, size metrics are cached per node and
    read in O(1), and [leq] / [join] / [meet] / [reduce_stamp] memoize on
    interned node ids — deep tries shared across a forking fleet are
    traversed once, then answered from the table.

    Values are immutable and canonical: two names built by any sequence
    of operations are physically equal iff they denote the same
    antichain.  Interning tables are global to the process; nodes are
    held weakly and reclaimed when no live name references them.

    Cross-validated against the {!Name} list specification by the qcheck
    agreement suite ([test/test_name_packed.ml]). *)

include Name_intf.S

(** {1 Hash-consing introspection} *)

val tag : t -> int
(** The unique interning id of this node.  [tag a = tag b] iff [a == b]
    iff [equal a b].  Not stable across runs (or across garbage
    collections of dead nodes). *)

val interned_count : unit -> int
(** Number of live interned nodes, for tests and diagnostics. *)
