module Smap = Map.Make (String)

exception Unknown_element of string

exception Clash of string

let find_or_raise elems name =
  match Smap.find_opt name elems with
  | Some v -> v
  | None -> raise (Unknown_element name)

let fresh_or_raise elems name =
  if Smap.mem name elems then raise (Clash name) else name

module Make (S : Stamp.S) = struct
  type t = { elems : S.t Smap.t }

  let initial name = { elems = Smap.singleton name S.seed }

  let of_list bindings =
    List.fold_left
      (fun acc (name, stamp) ->
        if Smap.mem name acc then raise (Clash name)
        else Smap.add name stamp acc)
      Smap.empty bindings
    |> fun elems -> { elems }

  let to_list c = Smap.bindings c.elems

  let names c = List.map fst (Smap.bindings c.elems)

  let find c name = Smap.find_opt name c.elems

  let get c name = find_or_raise c.elems name

  let mem c name = Smap.mem name c.elems

  let size c = Smap.cardinal c.elems

  (* Definition 4.3's transformations, with the paper's "element gets a
     new name" convention: each transformation consumes its operands and
     binds freshly named results. *)

  let update c ~elem ~result =
    let stamp = find_or_raise c.elems elem in
    let base = Smap.remove elem c.elems in
    let result = fresh_or_raise base result in
    { elems = Smap.add result (S.update stamp) base }

  let fork c ~elem ~left ~right =
    if left = right then raise (Clash left);
    let stamp = find_or_raise c.elems elem in
    let base = Smap.remove elem c.elems in
    let left = fresh_or_raise base left in
    let right = fresh_or_raise base right in
    let l, r = S.fork stamp in
    { elems = Smap.add right r (Smap.add left l base) }

  let join c ~left ~right ~result =
    if left = right then raise (Clash left);
    let a = find_or_raise c.elems left in
    let b = find_or_raise c.elems right in
    let base = Smap.remove right (Smap.remove left c.elems) in
    let result = fresh_or_raise base result in
    { elems = Smap.add result (S.join a b) base }

  let sync c ~left ~right =
    let a = find_or_raise c.elems left in
    let b = find_or_raise c.elems right in
    let a', b' = S.sync a b in
    { elems = Smap.add left a' (Smap.add right b' c.elems) }

  let relation c x y = S.relation (get c x) (get c y)

  let frontier c = List.map snd (Smap.bindings c.elems)

  let fold f c acc = Smap.fold (fun name s acc -> f name s acc) c.elems acc

  let total_bits c = fold (fun _ s acc -> acc + S.size_bits s) c 0

  let pp ppf c =
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
         (fun ppf (name, s) -> Format.fprintf ppf "%s %a" name S.pp s))
      (Smap.bindings c.elems)
end

module Over_tree = Make (Stamp.Over_tree)
module Over_list = Make (Stamp.Over_list)

include Over_tree
