(** Names as binary tries — the compact representation.

    A trie node stands for a string prefix: [Mark] asserts membership of
    the prefix itself, [Node (zero, one)] descends into the two one-digit
    extensions.  Since [Mark] is a leaf, only antichains are representable,
    and each antichain has exactly one trie (given the
    no-[Node (Empty, Empty)] invariant) — the representation is canonical.

    All lattice operations run in time proportional to the overlap of the
    two tries rather than to the product of antichain widths, and
    {!reduce_stamp} is a single bottom-up pass.  The trie shape is exposed
    because it is canonical; build values through the smart constructors
    ({!singleton}, {!of_list}, {!join}, ...) to maintain the invariant, and
    use {!well_formed} to vet externally decoded trees. *)

type t = Empty | Mark | Node of t * t

include Name_intf.S with type t := t

val node : t -> t -> t
(** Invariant-preserving constructor: [node Empty Empty = Empty], otherwise
    [Node (l, r)].  For codecs and tests. *)

val of_name : Name.t -> t
(** Convert from the sorted-list representation.  The two represent the
    same antichain: [to_name (of_name n) = n]. *)

val to_name : t -> Name.t
(** Convert to the sorted-list representation. *)
