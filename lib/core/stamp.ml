module type S = sig
  type name

  type t

  val seed : t

  val make : update:name -> id:name -> t

  val make_unchecked : update:name -> id:name -> t

  val update_name : t -> name

  val id : t -> name

  val update : t -> t

  val fork : t -> t * t

  val join : ?reduce:bool -> t -> t -> t

  val sync : ?reduce:bool -> t -> t -> t * t

  val fork_many : t -> int -> t list

  val reduce : t -> t

  val is_reduced : t -> bool

  val leq : t -> t -> bool

  val relation : t -> t -> Relation.t

  val equivalent : t -> t -> bool

  val obsolete : t -> t -> bool

  val inconsistent : t -> t -> bool

  val dominates_all : t -> t list -> bool

  val dominated_by_join : t -> t list -> bool

  val equal : t -> t -> bool

  val compare : t -> t -> int

  val size_bits : t -> int

  val id_width : t -> int

  val max_depth : t -> int

  val well_formed : t -> bool

  val has_updates : t -> bool

  val pp : Format.formatter -> t -> unit

  val to_string : t -> string
end

module Make (N : Name_intf.S) = struct
  type name = N.t

  type t = { u : N.t; i : N.t }
  (* Invariant I1: [N.leq u i].  Maintained by every operation below;
     [make] checks it, [make_unchecked] is for decoders that re-validate. *)

  let seed = { u = N.bottom; i = N.bottom }

  let make ~update ~id =
    if not (N.leq update id) then
      invalid_arg "Stamp.make: update component not dominated by id (I1)";
    { u = update; i = id }

  let make_unchecked ~update ~id = { u = update; i = id }

  let update_name t = t.u

  let id t = t.i

  let size_bits t = N.total_bits t.u + N.total_bits t.i

  let id_width t = N.cardinal t.i

  let max_depth t = max (N.max_depth t.u) (N.max_depth t.i)

  let pp ppf t = Format.fprintf ppf "[%a|%a]" N.pp t.u N.pp t.i

  let to_string t = Format.asprintf "%a" pp t

  (* Instrumentation: one load-and-branch on [Instr.enabled] per
     operation when telemetry is off; measurements (including rendering
     the causal parents) happen only when it is on. *)
  let observe op ~parents ~bits_before t =
    Instr.note_op
      {
        Instr.op;
        bits_before;
        bits_after = size_bits t;
        depth = max_depth t;
        width = id_width t;
        parents = List.map to_string parents;
      }

  let update t =
    let t' = { u = t.i; i = t.i } in
    if !Instr.enabled then
      observe Instr.Update ~parents:[ t ] ~bits_before:(size_bits t) t';
    t'

  let fork t =
    let l = { t with i = N.append_digit Bits.Zero t.i }
    and r = { t with i = N.append_digit Bits.One t.i } in
    if !Instr.enabled then begin
      (* the fork's whole footprint: both resulting stamps *)
      Instr.note_op
        {
          Instr.op = Instr.Fork;
          bits_before = size_bits t;
          bits_after = size_bits l + size_bits r;
          depth = max (max_depth l) (max_depth r);
          width = id_width l + id_width r;
          parents = [ to_string t ];
        }
    end;
    (l, r)

  let reduce t =
    let u, i = N.reduce_stamp ~u:t.u ~id:t.i in
    let t' = { u; i } in
    if !Instr.enabled then begin
      let before = size_bits t in
      Instr.note_bits_saved (before - size_bits t');
      observe Instr.Reduce ~parents:[ t ] ~bits_before:before t'
    end;
    t'

  let join ?(reduce = true) a b =
    let joined = { u = N.join a.u b.u; i = N.join a.i b.i } in
    let result =
      if reduce then
        let u, i = N.reduce_stamp ~u:joined.u ~id:joined.i in
        { u; i }
      else joined
    in
    if !Instr.enabled then begin
      if reduce then Instr.note_bits_saved (size_bits joined - size_bits result);
      observe Instr.Join ~parents:[ a; b ]
        ~bits_before:(size_bits a + size_bits b)
        result
    end;
    result

  let sync ?reduce a b = fork (join ?reduce a b)

  let fork_many t n =
    if n < 1 then invalid_arg "Stamp.fork_many: need at least one replica";
    (* the head of the result continues the leftmost lineage *)
    let rec go k t acc =
      if k = 1 then t :: acc
      else
        let l, r = fork t in
        go (k - 1) l (r :: acc)
    in
    go n t []

  let is_reduced t =
    let u, i = N.reduce_stamp ~u:t.u ~id:t.i in
    N.equal u t.u && N.equal i t.i

  let leq a b = N.leq a.u b.u

  let relation a b = Relation.of_leq_pair ~leq_ab:(leq a b) ~leq_ba:(leq b a)

  let equivalent a b = relation a b = Relation.Equal

  let obsolete a b = relation a b = Relation.Dominated

  let inconsistent a b = relation a b = Relation.Concurrent

  let joined_updates others =
    List.fold_left (fun acc o -> N.join acc o.u) N.empty others

  let dominates_all t others = N.leq (joined_updates others) t.u

  let dominated_by_join t others = N.leq t.u (joined_updates others)

  let equal a b = N.equal a.u b.u && N.equal a.i b.i

  let compare a b =
    let c = N.compare a.u b.u in
    if c <> 0 then c else N.compare a.i b.i

  let well_formed t = N.well_formed t.u && N.well_formed t.i && N.leq t.u t.i

  let has_updates t = not (N.is_empty t.u)
end

module Over_list = Make (Name)
(** Stamps over the sorted-list name representation (the specification). *)

module Over_tree = Make (Name_tree)
(** Stamps over the trie name representation (the fast path). *)

module Over_packed = Make (Name_packed)
(** Stamps over the hash-consed trie representation (the memoized fast
    path; see {!Name_packed}). *)

include Over_tree
(** The default stamp implementation is the trie-backed one. *)
