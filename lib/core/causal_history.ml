module Event_set = Set.Make (Int)

type event = int

type t = Event_set.t

let empty = Event_set.empty

let of_events = Event_set.of_list

let events h = Event_set.elements h

let add_event = Event_set.add

let union = Event_set.union

let cardinal = Event_set.cardinal

let mem = Event_set.mem

let subset = Event_set.subset

let equal = Event_set.equal

let compare = Event_set.compare

let subset_of_union x hs =
  let combined = List.fold_left union empty hs in
  subset x combined

let relation a b =
  Relation.of_leq_pair ~leq_ab:(subset a b) ~leq_ba:(subset b a)

let pp ppf h =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
       Format.pp_print_int)
    (events h)

let to_string h = Format.asprintf "%a" pp h

(* The "global view": a monotone counter handing out globally unique
   update-event identities.  Threaded explicitly so executions are pure
   and reproducible. *)
module Gen = struct
  type nonrec t = { next : int }

  let initial = { next = 0 }

  let fresh g = (g.next, { next = g.next + 1 })

  let issued g = g.next
end
