(* Names as hash-consed binary tries.

   Same shape as {!Name_tree} — [Mark] is a member, [Empty] a hole,
   [Node (l, r)] descends into [p.0] / [p.1] — but every node is interned
   in a weak table, so structural equality coincides with physical
   equality.  That buys three things the plain trie cannot offer:

   - [equal] / [is_empty] / [is_bottom] are single pointer comparisons;
   - size metrics (cardinal, total bits, depth) are cached in each node
     and read in O(1);
   - [leq] / [join] / [meet] / [reduce_stamp] memoize on the unique node
     tags, so the deep shared substructure that forking fleets produce is
     traversed once and then answered from the table.

   Tags are allocated once per distinct trie and never reused while the
   node is alive, so a memo entry can never alias two different values:
   the entry itself keeps both key nodes reachable for as long as it
   exists, and tables are cleared wholesale when they grow past a bound.

   Note on instrumentation: [reduce_stamp] calls
   [Instr.note_reduce_rewrite] only when it actually recomputes a
   collapse — a memo hit replays the cached result without re-noting the
   rewrites, so rewrite counters under this backend count distinct
   reductions, not applications. *)

type t = { tag : int; node : node; card : int; bits : int; depth : int }

and node = Empty | Mark | Node of t * t

(* --- interning --- *)

module H = struct
  type nonrec t = t

  (* Children are interned before their parent is built, so one level of
     physical comparison suffices. *)
  let equal a b =
    match (a.node, b.node) with
    | Empty, Empty | Mark, Mark -> true
    | Node (l1, r1), Node (l2, r2) -> l1 == l2 && r1 == r2
    | (Empty | Mark | Node _), _ -> false

  let hash a =
    match a.node with
    | Empty -> 0
    | Mark -> 1
    | Node (l, r) -> (((l.tag * 65599) + r.tag) * 2 + 3) land max_int
end

module W = Weak.Make (H)

let table = W.create 4096

let counter = ref 0

let hashcons node ~card ~bits ~depth =
  let tentative = { tag = !counter; node; card; bits; depth } in
  let interned = W.merge table tentative in
  if interned == tentative then incr counter;
  interned

(* [empty] and [bottom] are interned first and held forever, so the
   physical comparisons below are total. *)
let empty = hashcons Empty ~card:0 ~bits:0 ~depth:0

let bottom = hashcons Mark ~card:1 ~bits:0 ~depth:0

(* Smart constructor: maintains the no-[Node (Empty, Empty)] invariant
   and computes the cached metrics compositionally (every member of a
   child is one bit longer seen from the parent). *)
let node l r =
  if l == empty && r == empty then empty
  else
    hashcons
      (Node (l, r))
      ~card:(l.card + r.card)
      ~bits:(l.bits + l.card + r.bits + r.card)
      ~depth:(1 + max l.depth r.depth)

(* --- memo tables on node tags --- *)

(* Cleared wholesale when they outgrow the bound; entries pin their key
   nodes (and so their tags) alive, so a live entry is never stale. *)
let memo_limit = 1 lsl 16

let note tbl key v =
  if Hashtbl.length tbl >= memo_limit then Hashtbl.reset tbl;
  Hashtbl.add tbl key v;
  v

(* --- constructors --- *)

let is_empty n = n == empty

let is_bottom n = n == bottom

let rec singleton s =
  match Bits.uncons s with
  | None -> bottom
  | Some (Bits.Zero, rest) -> node (singleton rest) empty
  | Some (Bits.One, rest) -> node empty (singleton rest)

(* --- observers --- *)

let rec mem s n =
  match (n.node, Bits.uncons s) with
  | Mark, None -> true
  | Node (l, _), Some (Bits.Zero, rest) -> mem rest l
  | Node (_, r), Some (Bits.One, rest) -> mem rest r
  | (Empty | Mark | Node _), _ -> false

let cardinal n = n.card

let total_bits n = n.bits

let max_depth n = n.depth

let to_list n =
  let rec go path acc n =
    match n.node with
    | Empty -> acc
    | Mark -> Bits.of_digits (List.rev path) :: acc
    | Node (l, r) ->
        let acc = go (Bits.Zero :: path) acc l in
        go (Bits.One :: path) acc r
  in
  List.sort Bits.compare (go [] [] n)

let exists f n = List.exists f (to_list n)

let for_all f n = List.for_all f (to_list n)

let fold f n acc = List.fold_left (fun acc s -> f s acc) acc (to_list n)

(* --- order and lattice structure --- *)

let equal (n1 : t) (n2 : t) = n1 == n2

(* Tag order: an arbitrary total order compatible with [equal] (tags are
   unique per live interned node).  Not stable across runs. *)
let compare (n1 : t) (n2 : t) = Int.compare n1.tag n2.tag

let leq_tbl : (int * int, bool) Hashtbl.t = Hashtbl.create 1024

let rec leq n1 n2 =
  if n1 == n2 then true
  else
    match (n1.node, n2.node) with
    | Empty, _ -> true
    | _, Empty -> false
    | Mark, (Mark | Node _) -> true
    | Node _, Mark -> false
    | Node (l1, r1), Node (l2, r2) -> (
        let key = (n1.tag, n2.tag) in
        match Hashtbl.find_opt leq_tbl key with
        | Some v -> v
        | None -> note leq_tbl key (leq l1 l2 && leq r1 r2))

let join_tbl : (int * int, t) Hashtbl.t = Hashtbl.create 1024

let rec join n1 n2 =
  if n1 == n2 then n1
  else
    match (n1.node, n2.node) with
    | Empty, _ -> n2
    | _, Empty -> n1
    | Mark, (Mark | Node _) -> n2
    | Node _, Mark -> n1
    | Node (l1, r1), Node (l2, r2) -> (
        let key = (n1.tag, n2.tag) in
        match Hashtbl.find_opt join_tbl key with
        | Some v -> v
        | None -> note join_tbl key (node (join l1 l2) (join r1 r2)))

let meet_tbl : (int * int, t) Hashtbl.t = Hashtbl.create 1024

let rec meet n1 n2 =
  if n1 == n2 then n1
  else
    match (n1.node, n2.node) with
    | Empty, _ | _, Empty -> empty
    | Mark, (Mark | Node _) | Node _, Mark -> bottom
    | Node (l1, r1), Node (l2, r2) -> (
        let key = (n1.tag, n2.tag) in
        match Hashtbl.find_opt meet_tbl key with
        | Some v -> v
        | None ->
            let m = node (meet l1 l2) (meet r1 r2) in
            note meet_tbl key (if m == empty then bottom else m))

let rec dominates_string n r =
  match (n.node, Bits.uncons r) with
  | Empty, _ -> false
  | (Mark | Node _), None -> true
  | Mark, Some _ -> false
  | Node (l, _), Some (Bits.Zero, rest) -> dominates_string l rest
  | Node (_, r'), Some (Bits.One, rest) -> dominates_string r' rest

let incomp_tbl : (int * int, bool) Hashtbl.t = Hashtbl.create 1024

let rec incomparable_with n1 n2 =
  match (n1.node, n2.node) with
  | Empty, _ | _, Empty -> true
  | Mark, (Mark | Node _) | Node _, Mark -> false
  | Node (l1, r1), Node (l2, r2) -> (
      let key = (n1.tag, n2.tag) in
      match Hashtbl.find_opt incomp_tbl key with
      | Some v -> v
      | None ->
          note incomp_tbl key
            (incomparable_with l1 l2 && incomparable_with r1 r2))

let append0_tbl : (int, t) Hashtbl.t = Hashtbl.create 1024

let append1_tbl : (int, t) Hashtbl.t = Hashtbl.create 1024

let rec append_digit d n =
  match n.node with
  | Empty -> empty
  | Mark -> (
      match d with
      | Bits.Zero -> node bottom empty
      | Bits.One -> node empty bottom)
  | Node (l, r) -> (
      let tbl = match d with Bits.Zero -> append0_tbl | Bits.One -> append1_tbl in
      match Hashtbl.find_opt tbl n.tag with
      | Some v -> v
      | None -> note tbl n.tag (node (append_digit d l) (append_digit d r)))

(* --- stamp reduction --- *)

let reduce_tbl : (int * int, t * t) Hashtbl.t = Hashtbl.create 1024

(* Same bottom-up Section 6 pass as {!Name_tree.reduce_stamp}, memoized
   on the (u, id) tag pair.  [invalid_arg] raises before the memo write,
   so only lawful results are cached. *)
let rec reduce_stamp ~u ~id =
  match id.node with
  | Empty | Mark -> (u, id)
  | Node (il, ir) -> (
      let key = (u.tag, id.tag) in
      match Hashtbl.find_opt reduce_tbl key with
      | Some v -> v
      | None ->
          let ul, ur, u_marked =
            match u.node with
            | Empty -> (empty, empty, false)
            | Mark -> (empty, empty, true)
            | Node (ul, ur) -> (ul, ur, false)
          in
          let ul', il' = reduce_stamp ~u:ul ~id:il in
          let ur', ir' = reduce_stamp ~u:ur ~id:ir in
          let result =
            if il' == bottom && ir' == bottom then begin
              if !Instr.enabled then Instr.note_reduce_rewrite ();
              let u' =
                if u_marked then bottom
                else if ul' == empty && ur' == empty then empty
                else if
                  (ul' == empty || ul' == bottom)
                  && (ur' == empty || ur' == bottom)
                then bottom
                else
                  invalid_arg
                    "Name_packed.reduce_stamp: invariant I1 violated"
              in
              (u', bottom)
            end
            else
              let u' = if u_marked then bottom else node ul' ur' in
              (u', node il' ir')
          in
          note reduce_tbl key result)

(* --- bulk constructors, well-formedness, printing --- *)

let of_list ss = List.fold_left (fun acc s -> join acc (singleton s)) empty ss

let of_strings ss = of_list (List.map Bits.of_string ss)

(* The smart constructor makes ill-formed values unrepresentable through
   this interface; the recursive check mirrors the other backends for
   decoders that build via [of_list] anyway. *)
let rec well_formed n =
  match n.node with
  | Empty | Mark -> true
  | Node (l, r) ->
      not (l == empty && r == empty) && well_formed l && well_formed r

let pp ppf n =
  match List.sort Bits.compare_lex (to_list n) with
  | [] -> Format.pp_print_string ppf "\xc3\xb8"
  | members ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_char ppf '+')
        Bits.pp ppf members

let to_string n = Format.asprintf "%a" pp n

(* --- introspection for tests and diagnostics --- *)

let tag n = n.tag

let interned_count () = W.count table
