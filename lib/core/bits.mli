(** Finite binary strings with the prefix partial order.

    Binary strings are the alphabet of version-stamp names (Section 4 of the
    paper): the set [Sigma] of all finite sequences over [{0,1}] ordered by
    [r <= s] iff [r] is a prefix of [s].  The empty string [epsilon] is the
    bottom of this order.

    The representation is abstract; values are immutable and structural
    equality coincides with string equality. *)

type t
(** A finite binary string. *)

type digit = Zero | One
(** One binary digit. *)

val epsilon : t
(** The empty string, bottom of the prefix order. *)

val is_epsilon : t -> bool
(** [is_epsilon s] is [true] iff [s] is the empty string. *)

val length : t -> int
(** Number of digits. [length epsilon = 0]. *)

val snoc : t -> digit -> t
(** [snoc s d] appends digit [d] on the right of [s].  This is the
    concatenation used by the fork operation. *)

val cons : digit -> t -> t
(** [cons d s] prepends digit [d] on the left of [s]. *)

val append : t -> t -> t
(** [append r s] is the concatenation [r.s]. *)

val uncons : t -> (digit * t) option
(** [uncons s] splits off the leftmost digit, or [None] on [epsilon]. *)

val unsnoc : t -> (t * digit) option
(** [unsnoc s] splits off the rightmost digit, or [None] on [epsilon]. *)

val get : t -> int -> digit
(** [get s i] is the [i]-th digit (0-based).
    @raise Invalid_argument if [i] is out of bounds. *)

val is_prefix : t -> t -> bool
(** [is_prefix r s] is [true] iff [r] is a (non-strict) prefix of [s],
    i.e. [r <= s] in the prefix order. *)

val is_strict_prefix : t -> t -> bool
(** [is_strict_prefix r s] is [true] iff [r] is a prefix of [s] and
    [r <> s]. *)

val incomparable : t -> t -> bool
(** [incomparable r s] is [true] iff neither is a prefix of the other
    (written [r || s] in the paper). *)

type ordering = Equal | Prefix | Extension | Incomparable
(** Result of comparing two strings in the prefix order:
    [Prefix] means the first is a strict prefix of the second,
    [Extension] means the second is a strict prefix of the first. *)

val prefix_compare : t -> t -> ordering
(** Classify the prefix-order relation between two strings. *)

val common_prefix : t -> t -> t
(** Longest common prefix of two strings. *)

val sibling : t -> t option
(** [sibling s] is the string differing from [s] only in its last digit,
    or [None] for [epsilon].  Siblings are the pairs collapsed by the
    stamp reduction rule. *)

val parent : t -> t option
(** [parent s] drops the last digit, or [None] for [epsilon]. *)

val equal : t -> t -> bool
(** Structural equality. *)

val compare : t -> t -> int
(** A total order suitable for [Set]/[Map]: shortlex
    (by length, then lexicographically).  Shortlex guarantees that proper
    prefixes sort before their extensions, which the antichain algorithms
    in {!Name} rely on. *)

val compare_lex : t -> t -> int
(** Plain lexicographic order with [Zero < One] and prefixes first. *)

val hash : t -> int
(** Hash consistent with [equal]. *)

val of_string : string -> t
(** Parse from a string of ['0']/['1'] characters.
    @raise Invalid_argument on any other character. *)

val to_string : t -> string
(** Render as a string of ['0']/['1'] characters; [epsilon] renders as
    [""]. *)

val of_digits : digit list -> t
(** Build from a digit list, left to right. *)

val to_digits : t -> digit list
(** Digits, left to right. *)

val pp : Format.formatter -> t -> unit
(** Pretty-print; [epsilon] prints as ["\xce\xb5"] (the epsilon glyph). *)

val digit_of_int : int -> digit
(** [digit_of_int 0 = Zero], [digit_of_int 1 = One].
    @raise Invalid_argument otherwise. *)

val int_of_digit : digit -> int
(** Inverse of {!digit_of_int}. *)

val all_of_length : int -> t list
(** All [2^n] strings of length [n], in {!compare} order.  Intended for
    tests and small exhaustive checks.
    @raise Invalid_argument if [n < 0] or [n > 20]. *)
