(** The four possible relations between two coexisting replicas.

    The paper (Section 2) distinguishes {e equivalence} (same causal
    history), {e obsolescence} (one history strictly contains the other)
    and {e mutual inconsistency} (each has seen an update the other has
    not).  This type names all four directed cases. *)

type t =
  | Equal  (** Same causal history — typically right after a synchronization. *)
  | Dominates  (** The first has seen strictly more updates: the second is obsolete. *)
  | Dominated  (** The first is obsolete relative to the second. *)
  | Concurrent  (** Mutually inconsistent: a real conflict. *)

val inverse : t -> t
(** Swap the roles of the two operands. *)

val of_leq_pair : leq_ab:bool -> leq_ba:bool -> t
(** Classify from the two directions of a pre-order:
    [of_leq_pair ~leq_ab:(a <= b) ~leq_ba:(b <= a)]. *)

val is_leq : t -> bool
(** [true] on [Equal] and [Dominated] — the "first at or below second"
    half-plane. *)

val is_geq : t -> bool
(** [true] on [Equal] and [Dominates]. *)

val equal : t -> t -> bool

val to_string : t -> string
(** ["equal"], ["dominates"], ["dominated"], ["concurrent"]. *)

val to_paper_string : t -> string
(** The paper's vocabulary: ["equivalent"], ["dominating"], ["obsolete"],
    ["inconsistent"]. *)

val pp : Format.formatter -> t -> unit

val all : t list
(** The four values, for exhaustive tests. *)
