let enabled = ref false

type op_kind = Update | Fork | Join | Reduce

let op_kind_to_string = function
  | Update -> "update"
  | Fork -> "fork"
  | Join -> "join"
  | Reduce -> "reduce"

type op_event = {
  op : op_kind;
  bits_before : int;
  bits_after : int;
  depth : int;
  width : int;
  parents : string list;
}

let observer : (op_event -> unit) option ref = ref None

let set_observer f = observer := f

let updates = ref 0

let forks = ref 0

let joins = ref 0

let reduces = ref 0

let reduce_rewrites = ref 0

let reduce_bits_saved = ref 0

let wire_stamps_encoded = ref 0

let wire_bytes_encoded = ref 0

let wire_stamps_decoded = ref 0

let wire_bytes_decoded = ref 0

type counters = {
  updates : int;
  forks : int;
  joins : int;
  reduces : int;
  reduce_rewrites : int;
  reduce_bits_saved : int;
  wire_stamps_encoded : int;
  wire_bytes_encoded : int;
  wire_stamps_decoded : int;
  wire_bytes_decoded : int;
}

let read () =
  {
    updates = !updates;
    forks = !forks;
    joins = !joins;
    reduces = !reduces;
    reduce_rewrites = !reduce_rewrites;
    reduce_bits_saved = !reduce_bits_saved;
    wire_stamps_encoded = !wire_stamps_encoded;
    wire_bytes_encoded = !wire_bytes_encoded;
    wire_stamps_decoded = !wire_stamps_decoded;
    wire_bytes_decoded = !wire_bytes_decoded;
  }

let reset () =
  updates := 0;
  forks := 0;
  joins := 0;
  reduces := 0;
  reduce_rewrites := 0;
  reduce_bits_saved := 0;
  wire_stamps_encoded := 0;
  wire_bytes_encoded := 0;
  wire_stamps_decoded := 0;
  wire_bytes_decoded := 0

let note_op ev =
  (match ev.op with
  | Update -> incr updates
  | Fork -> incr forks
  | Join -> incr joins
  | Reduce -> incr reduces);
  match !observer with None -> () | Some f -> f ev

let note_reduce_rewrite () = incr reduce_rewrites

let note_bits_saved n = reduce_bits_saved := !reduce_bits_saved + n

let note_wire_encode ~bytes =
  incr wire_stamps_encoded;
  wire_bytes_encoded := !wire_bytes_encoded + bytes

let note_wire_decode ~bytes =
  incr wire_stamps_decoded;
  wire_bytes_decoded := !wire_bytes_decoded + bytes
