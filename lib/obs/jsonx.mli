(** A minimal JSON value type with a deterministic printer and a strict
    parser — just enough for machine-readable telemetry (JSONL events,
    metric snapshots, bench dumps) without an external dependency.

    The printer is canonical for a given value: no optional whitespace,
    object fields in the order given, floats rendered so that
    [of_string (to_string v)] recovers [v] exactly for finite floats.
    Integers and floats are distinct constructors; a float always prints
    with a ['.'] or an exponent so the distinction survives a round
    trip. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** Finite floats only; NaN and infinities print as [null]. *)
  | String of string  (** UTF-8 bytes; control characters are escaped. *)
  | List of t list
  | Obj of (string * t) list  (** Field order is preserved. *)

val equal : t -> t -> bool

val to_string : t -> string
(** Compact single-line rendering (never contains a newline). *)

val of_string : string -> (t, string) result
(** Strict parse of exactly one JSON value (surrounding whitespace
    allowed); the error is a human-readable message with an offset. *)

val pp : Format.formatter -> t -> unit

(** {1 Accessors} *)

val member : string -> t -> t option
(** First binding of the field in an [Obj]; [None] otherwise. *)

val to_int : t -> int option
(** [Int n] gives [n]; everything else [None]. *)

val to_float : t -> float option
(** [Float f] or [Int n] (as a float); everything else [None]. *)

val to_str : t -> string option

val to_bool : t -> bool option
