type metric =
  | Counter of Metric.counter
  | Gauge of Metric.gauge
  | Histogram of Metric.histogram

type t = { tbl : (string, metric) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

let default = create ()

let counter t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Counter c) -> c
  | Some _ -> invalid_arg (Printf.sprintf "Registry: %S is not a counter" name)
  | None ->
      let c = Metric.counter () in
      Hashtbl.add t.tbl name (Counter c);
      c

let gauge t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Gauge g) -> g
  | Some _ -> invalid_arg (Printf.sprintf "Registry: %S is not a gauge" name)
  | None ->
      let g = Metric.gauge () in
      Hashtbl.add t.tbl name (Gauge g);
      g

let histogram t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Histogram h) -> h
  | Some _ -> invalid_arg (Printf.sprintf "Registry: %S is not a histogram" name)
  | None ->
      let h = Metric.histogram () in
      Hashtbl.add t.tbl name (Histogram h);
      h

let find t name = Hashtbl.find_opt t.tbl name

let cardinal t = Hashtbl.length t.tbl

let snapshot t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset t =
  Hashtbl.iter
    (fun _ -> function
      | Counter c -> Metric.reset_counter c
      | Gauge g -> Metric.reset_gauge g
      | Histogram h -> Metric.reset_histogram h)
    t.tbl

let clear t = Hashtbl.reset t.tbl

(* --- exposition --- *)

(* split "name{labels}" into the base name and the label text *)
let split_labels name =
  match String.index_opt name '{' with
  | Some i when String.length name > 0 && name.[String.length name - 1] = '}' ->
      ( String.sub name 0 i,
        Some (String.sub name (i + 1) (String.length name - i - 2)) )
  | _ -> (name, None)

let with_label name extra =
  match split_labels name with
  | base, None -> Printf.sprintf "%s{%s}" base extra
  | base, Some labels -> Printf.sprintf "%s{%s,%s}" base labels extra

let num f =
  if Float.is_integer f && Float.abs f < 1e16 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let to_prometheus t =
  let buf = Buffer.create 1024 in
  let typed = Hashtbl.create 16 in
  let type_line base kind =
    if not (Hashtbl.mem typed base) then begin
      Hashtbl.add typed base ();
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" base kind)
    end
  in
  List.iter
    (fun (name, m) ->
      let base, _ = split_labels name in
      match m with
      | Counter c ->
          type_line base "counter";
          Buffer.add_string buf (Printf.sprintf "%s %d\n" name (Metric.count c))
      | Gauge g ->
          type_line base "gauge";
          Buffer.add_string buf (Printf.sprintf "%s %s\n" name (num (Metric.value g)))
      | Histogram h ->
          type_line base "summary";
          let p = Metric.percentiles h in
          Buffer.add_string buf
            (Printf.sprintf "%s %s\n" (with_label name "quantile=\"0.5\"") (num p.Metric.p50));
          Buffer.add_string buf
            (Printf.sprintf "%s %s\n" (with_label name "quantile=\"0.95\"") (num p.Metric.p95));
          Buffer.add_string buf
            (Printf.sprintf "%s %s\n" (with_label name "quantile=\"0.99\"") (num p.Metric.p99));
          let suffix sfx v =
            match split_labels name with
            | base, None -> Printf.sprintf "%s%s %s\n" base sfx v
            | base, Some labels -> Printf.sprintf "%s%s{%s} %s\n" base sfx labels v
          in
          Buffer.add_string buf (suffix "_sum" (num (Metric.sum h)));
          Buffer.add_string buf (suffix "_count" (string_of_int (Metric.observations h)));
          Buffer.add_string buf (suffix "_max" (num (Metric.max_value h))))
    (snapshot t);
  Buffer.contents buf

let histogram_json h =
  let p = Metric.percentiles h in
  Jsonx.Obj
    [
      ("count", Jsonx.Int (Metric.observations h));
      ("sum", Jsonx.Float (Metric.sum h));
      ("mean", Jsonx.Float (Metric.mean h));
      ("min", Jsonx.Float (Metric.min_value h));
      ("max", Jsonx.Float (Metric.max_value h));
      ("p50", Jsonx.Float p.Metric.p50);
      ("p95", Jsonx.Float p.Metric.p95);
      ("p99", Jsonx.Float p.Metric.p99);
    ]

let to_json t =
  Jsonx.Obj
    (List.map
       (fun (name, m) ->
         ( name,
           match m with
           | Counter c -> Jsonx.Int (Metric.count c)
           | Gauge g -> Jsonx.Float (Metric.value g)
           | Histogram h -> histogram_json h ))
       (snapshot t))

let pp_table ppf t =
  let rows =
    List.map
      (fun (name, m) ->
        match m with
        | Counter c -> (name, string_of_int (Metric.count c), "counter")
        | Gauge g -> (name, num (Metric.value g), "gauge")
        | Histogram h ->
            let p = Metric.percentiles h in
            ( name,
              Printf.sprintf "n=%d" (Metric.observations h),
              Printf.sprintf "mean=%s p50=%s p95=%s p99=%s max=%s"
                (num (Metric.mean h)) (num p.Metric.p50) (num p.Metric.p95)
                (num p.Metric.p99) (num (Metric.max_value h)) ))
      (snapshot t)
  in
  let w1 =
    List.fold_left (fun acc (a, _, _) -> max acc (String.length a)) 6 rows
  in
  let w2 =
    List.fold_left (fun acc (_, b, _) -> max acc (String.length b)) 5 rows
  in
  Format.fprintf ppf "%-*s  %-*s  %s@." w1 "metric" w2 "value" "detail";
  List.iter
    (fun (a, b, c) -> Format.fprintf ppf "%-*s  %-*s  %s@." w1 a w2 b c)
    rows
