type metric =
  | Counter of Metric.counter
  | Gauge of Metric.gauge
  | Histogram of Metric.histogram

type t = { tbl : (string, metric) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

let default = create ()

let counter t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Counter c) -> c
  | Some _ -> invalid_arg (Printf.sprintf "Registry: %S is not a counter" name)
  | None ->
      let c = Metric.counter () in
      Hashtbl.add t.tbl name (Counter c);
      c

let gauge t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Gauge g) -> g
  | Some _ -> invalid_arg (Printf.sprintf "Registry: %S is not a gauge" name)
  | None ->
      let g = Metric.gauge () in
      Hashtbl.add t.tbl name (Gauge g);
      g

let histogram t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Histogram h) -> h
  | Some _ -> invalid_arg (Printf.sprintf "Registry: %S is not a histogram" name)
  | None ->
      let h = Metric.histogram () in
      Hashtbl.add t.tbl name (Histogram h);
      h

let find t name = Hashtbl.find_opt t.tbl name

let cardinal t = Hashtbl.length t.tbl

let snapshot t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset t =
  Hashtbl.iter
    (fun _ -> function
      | Counter c -> Metric.reset_counter c
      | Gauge g -> Metric.reset_gauge g
      | Histogram h -> Metric.reset_histogram h)
    t.tbl

let clear t = Hashtbl.reset t.tbl

(* --- exposition --- *)

(* split "name{labels}" into the base name and the label text *)
let split_labels name =
  match String.index_opt name '{' with
  | Some i when String.length name > 0 && name.[String.length name - 1] = '}' ->
      ( String.sub name 0 i,
        Some (String.sub name (i + 1) (String.length name - i - 2)) )
  | _ -> (name, None)

let with_label name extra =
  match split_labels name with
  | base, None -> Printf.sprintf "%s{%s}" base extra
  | base, Some labels -> Printf.sprintf "%s{%s,%s}" base labels extra

(* Exposition-format escaping for label values: backslash, double
   quote and line feed, per the Prometheus text-format spec. *)
let escape_label_value s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape_label_value s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then Ok (Buffer.contents buf)
    else
      match s.[i] with
      | '\\' ->
          if i + 1 >= n then Error "dangling backslash"
          else (
            (match s.[i + 1] with
            | '\\' -> Ok '\\'
            | '"' -> Ok '"'
            | 'n' -> Ok '\n'
            | c -> Error (Printf.sprintf "unknown escape \\%c" c))
            |> function
            | Ok c ->
                Buffer.add_char buf c;
                go (i + 2)
            | Error _ as e -> e)
      | c ->
          Buffer.add_char buf c;
          go (i + 1)
  in
  go 0

let with_labels name labels =
  match labels with
  | [] -> name
  | labels ->
      Printf.sprintf "%s{%s}" name
        (String.concat ","
           (List.map
              (fun (k, v) ->
                Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
              labels))

let num f =
  if Float.is_integer f && Float.abs f < 1e16 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let to_prometheus t =
  let buf = Buffer.create 1024 in
  let typed = Hashtbl.create 16 in
  let type_line base kind =
    if not (Hashtbl.mem typed base) then begin
      Hashtbl.add typed base ();
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" base kind)
    end
  in
  List.iter
    (fun (name, m) ->
      let base, _ = split_labels name in
      match m with
      | Counter c ->
          type_line base "counter";
          Buffer.add_string buf (Printf.sprintf "%s %d\n" name (Metric.count c))
      | Gauge g ->
          type_line base "gauge";
          Buffer.add_string buf (Printf.sprintf "%s %s\n" name (num (Metric.value g)))
      | Histogram h ->
          type_line base "summary";
          let p = Metric.percentiles h in
          Buffer.add_string buf
            (Printf.sprintf "%s %s\n" (with_label name "quantile=\"0.5\"") (num p.Metric.p50));
          Buffer.add_string buf
            (Printf.sprintf "%s %s\n" (with_label name "quantile=\"0.95\"") (num p.Metric.p95));
          Buffer.add_string buf
            (Printf.sprintf "%s %s\n" (with_label name "quantile=\"0.99\"") (num p.Metric.p99));
          let suffix sfx v =
            match split_labels name with
            | base, None -> Printf.sprintf "%s%s %s\n" base sfx v
            | base, Some labels -> Printf.sprintf "%s%s{%s} %s\n" base sfx labels v
          in
          Buffer.add_string buf (suffix "_sum" (num (Metric.sum h)));
          Buffer.add_string buf (suffix "_count" (string_of_int (Metric.observations h)));
          Buffer.add_string buf (suffix "_max" (num (Metric.max_value h))))
    (snapshot t);
  Buffer.contents buf

let histogram_json h =
  let p = Metric.percentiles h in
  Jsonx.Obj
    [
      ("count", Jsonx.Int (Metric.observations h));
      ("sum", Jsonx.Float (Metric.sum h));
      ("mean", Jsonx.Float (Metric.mean h));
      ("min", Jsonx.Float (Metric.min_value h));
      ("max", Jsonx.Float (Metric.max_value h));
      ("p50", Jsonx.Float p.Metric.p50);
      ("p95", Jsonx.Float p.Metric.p95);
      ("p99", Jsonx.Float p.Metric.p99);
    ]

let to_json t =
  Jsonx.Obj
    (List.map
       (fun (name, m) ->
         ( name,
           match m with
           | Counter c -> Jsonx.Int (Metric.count c)
           | Gauge g -> Jsonx.Float (Metric.value g)
           | Histogram h -> histogram_json h ))
       (snapshot t))

let pp_table ppf t =
  let rows =
    List.map
      (fun (name, m) ->
        match m with
        | Counter c -> (name, string_of_int (Metric.count c), "counter")
        | Gauge g -> (name, num (Metric.value g), "gauge")
        | Histogram h ->
            let p = Metric.percentiles h in
            ( name,
              Printf.sprintf "n=%d" (Metric.observations h),
              Printf.sprintf "mean=%s p50=%s p95=%s p99=%s max=%s"
                (num (Metric.mean h)) (num p.Metric.p50) (num p.Metric.p95)
                (num p.Metric.p99) (num (Metric.max_value h)) ))
      (snapshot t)
  in
  let w1 =
    List.fold_left (fun acc (a, _, _) -> max acc (String.length a)) 6 rows
  in
  let w2 =
    List.fold_left (fun acc (_, b, _) -> max acc (String.length b)) 5 rows
  in
  Format.fprintf ppf "%-*s  %-*s  %s@." w1 "metric" w2 "value" "detail";
  List.iter
    (fun (a, b, c) -> Format.fprintf ppf "%-*s  %-*s  %s@." w1 a w2 b c)
    rows

(* --- snapshot differencing --- *)

type kind = Kcounter | Kgauge | Khistogram

type delta = {
  name : string;
  kind : kind;
  value : float;
  change : float;
  rate : float;
  reset : bool;
}

(* Recognize a metric by its to_json shape: counters encode as Int,
   gauges as Float, histograms as an Obj with a "count" field. *)
let classify = function
  | Jsonx.Int n -> Some (Kcounter, float_of_int n)
  | Jsonx.Float f -> Some (Kgauge, f)
  | Jsonx.Obj _ as o -> (
      match Option.bind (Jsonx.member "count" o) Jsonx.to_int with
      | Some n -> Some (Khistogram, float_of_int n)
      | None -> None)
  | _ -> None

let diff ~elapsed_s ~prev cur =
  let fields = function Jsonx.Obj kvs -> kvs | _ -> [] in
  List.filter_map
    (fun (name, v) ->
      match classify v with
      | None -> None
      | Some (kind, value) ->
          let previous =
            match Option.bind (Jsonx.member name prev) classify with
            | Some (k, p) when k = kind -> p
            | _ -> 0.0
          in
          (* Counters and histogram counts are monotone; going
             backwards means the process (or registry) restarted, so
             the whole current value is the increase since then.
             Gauges move freely and never "reset". *)
          let reset = kind <> Kgauge && value < previous in
          let change = if reset then value else value -. previous in
          let rate = if elapsed_s <= 0.0 then 0.0 else change /. elapsed_s in
          Some { name; kind; value; change; rate; reset })
    (fields cur)
  |> List.sort (fun a b -> String.compare a.name b.name)
