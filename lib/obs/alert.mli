(** Declarative alerting over a {!Registry}: threshold, rate-over-
    window, counter-absence and invariant-violation rules with
    for-duration debounce and a firing → resolved lifecycle.

    {1 Rules file grammar}

    One rule per line; blank lines and [#] comments ignored:

    {v
    NAME  CONDITION  [for DURATION]

    CONDITION :=
      METRIC OP VALUE           threshold on the current value
      rate(METRIC) OP VALUE     per-second rate between evaluations
      absent(METRIC)            metric missing, or not increasing
      invariant_violation       any vstamp_invariant_violations_total
                                counter increased since the engine
                                started

    OP       := > | < | >= | <= | == | !=
    DURATION := <float><ms|s|m|h>     e.g. 500ms, 5s, 2m, 1h
    v}

    A rule's condition must hold continuously for [DURATION] (default
    [0s]: immediately) before the rule {e fires}; when the condition
    stops holding a firing rule {e resolves}.  Transitions emit
    [alert.firing] / [alert.resolved] events to the engine's sink and
    drive a [vstamp_alerts_firing{rule="NAME"}] gauge (1 firing, 0
    otherwise) in the engine's registry. *)

type op = Gt | Lt | Ge | Le | Eq | Ne

type cond =
  | Threshold of { metric : string; op : op; value : float }
  | Rate of { metric : string; op : op; value : float }
  | Absent of { metric : string }
  | Invariant_violation

type rule = { name : string; cond : cond; for_s : float }

type state = Inactive | Pending | Firing

type transition = { at_s : float; rule : string; to_firing : bool }

type t

(** {1 Parsing} *)

val duration_of_string : string -> (float, string) result
(** ["500ms"], ["5s"], ["2m"], ["1.5h"] → seconds. *)

val parse_rule : string -> (rule option, string) result
(** One line; [Ok None] for blanks and comments. *)

val parse_rules : string -> (rule list, string) result
(** A whole rules file; the error carries the 1-based line number.
    Duplicate rule names are rejected. *)

val rule_to_string : rule -> string
(** Round-trips through {!parse_rule}. *)

(** {1 Engine} *)

val create : ?registry:Registry.t -> ?sink:Sink.t -> rule list -> t
(** The engine reads metric values from [registry] (default
    {!Registry.default}) and publishes the firing gauges back into it;
    transition events go to [sink] (default {!Sink.null}).  Each
    rule's gauge is registered (at 0) immediately. *)

val eval : ?now_s:float -> t -> unit
(** One evaluation round.  [now_s] defaults to {!Clock.now_s}; tests
    drive the debounce with an explicit clock. *)

val rules : t -> rule list

val states : t -> (rule * state) list

val firing : t -> rule list

val any_firing : t -> bool

val transitions : t -> transition list
(** Most recent transitions, oldest first (bounded ring of 256). *)

val evals : t -> int

val to_json : t -> Jsonx.t
(** The [/alerts.json] payload: per-rule state (with the last observed
    value and how long the rule has been in its state) and the
    transition timeline. *)

val state_to_string : state -> string
