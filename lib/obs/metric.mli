(** Metric primitives: counters, gauges, and log-scaled histograms.

    All three are plain mutable records with O(1) operations, safe to
    keep on hot paths.  The histogram buckets observations at 8 buckets
    per octave (relative resolution about 9%), which makes quantile
    queries O(buckets) and memory constant regardless of how many
    values are observed.  [count], [sum], [min] and [max] are exact;
    quantiles are approximate within one bucket. *)

(** {1 Counters} *)

type counter

val counter : unit -> counter

val inc : counter -> unit

val add : counter -> int -> unit
(** @raise Invalid_argument on a negative increment (counters are
    monotone). *)

val count : counter -> int

val reset_counter : counter -> unit

(** {1 Gauges} *)

type gauge

val gauge : unit -> gauge

val set : gauge -> float -> unit

val add_gauge : gauge -> float -> unit

val value : gauge -> float

val reset_gauge : gauge -> unit

(** {1 Histograms} *)

type histogram

val histogram : unit -> histogram

val observe : histogram -> float -> unit
(** Record one observation.  Negative values are clamped to the lowest
    bucket (they still contribute to count and sum). *)

val observe_int : histogram -> int -> unit

val observations : histogram -> int

val sum : histogram -> float

val mean : histogram -> float
(** [0.] when empty. *)

val min_value : histogram -> float
(** Exact smallest observation; [0.] when empty. *)

val max_value : histogram -> float
(** Exact largest observation; [0.] when empty. *)

val quantile : histogram -> float -> float
(** [quantile h q] for [q] in [(0, 1]]: the bucket-resolution estimate
    of the [q]-quantile, clamped into [[min, max]]; [0.] when empty. *)

type percentiles = { p50 : float; p95 : float; p99 : float; max : float }

val percentiles : histogram -> percentiles

val reset_histogram : histogram -> unit
